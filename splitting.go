// Package splitting is a Go reproduction of "On the Complexity of
// Distributed Splitting Problems" (Bamberger, Ghaffari, Kuhn, Maus, Uitto;
// PODC 2019). It implements the weak splitting problem and its relatives in
// a simulated LOCAL model, together with every algorithm, reduction and
// derandomization the paper describes:
//
//   - weak splitting (Definition 1.1): the zero-round randomized baseline,
//     the derandomized Lemma 2.1/2.2 algorithms, the main deterministic
//     algorithm (Theorem 1.1/2.5) built on Degree-Rank Reduction I, the
//     δ ≥ 6r algorithm (Theorem 2.7) built on Degree-Rank Reduction II, the
//     shattering-based randomized algorithm (Theorem 1.2), and the
//     high-girth variants of Section 5;
//   - multicolor splittings (Definitions 1.2/1.3) and the completeness
//     reductions of Theorems 3.2/3.3;
//   - the Figure 1 reduction from sinkless orientation (Theorem 2.10), the
//     (1+o(1))Δ-coloring of Lemma 4.1 and the MIS of Lemma 4.2.
//
// This package is the façade: thin, documented wrappers over the internal
// packages, which examples/ and cmd/ build upon. Instances are bipartite
// graphs B = (U ∪ V, E) whose left side holds constraints and whose right
// side holds 2-colorable variables, stored in compressed-sparse-row form so
// million-node instances simulate at hardware speed; see DESIGN.md for the
// full system inventory (including the CSR graph core and the engine
// architecture) and EXPERIMENTS.md for the measured validation of every
// theorem and the benchmark tables.
package splitting

import (
	"io"
	"os"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// Re-exported instance types.
type (
	// Graph is a simple undirected graph.
	Graph = graph.Graph
	// Bipartite is a weak-splitting instance B = (U ∪ V, E).
	Bipartite = graph.Bipartite
	// Multigraph supports the directed degree splitting substrate.
	Multigraph = graph.Multigraph
	// Result is a weak splitting together with its simulated LOCAL cost.
	Result = core.Result
	// Source is the reproducible randomness used by all randomized
	// algorithms.
	Source = prob.Source
	// Engine executes LOCAL node programs (sequential, goroutine-based, or
	// worker-pool sharded).
	Engine = local.Engine
	// Topology is a port-numbered network over a graph's CSR layout.
	Topology = local.Topology
	// Trial is one independent run of a Batch: a LOCAL node-program factory
	// plus its per-trial options (seed source, ID assignment, round cap).
	Trial = local.Trial
	// RunOptions configure a single LOCAL run (local.Options).
	RunOptions = local.Options
	// Stats reports the simulated cost of a LOCAL run.
	Stats = local.Stats
	// View is the static information a LOCAL node program starts with.
	View = local.View
	// Node is a per-node LOCAL program.
	Node = local.Node
	// Factory creates the program instance for one node.
	Factory = local.Factory
	// Message is an arbitrary value exchanged between neighbors.
	Message = local.Message
	// Word is a compact one-uint64 message (tag bits + payload) for the
	// engines' zero-allocation fast path; the zero value NilWord means
	// "no message".
	Word = local.Word
	// WordNode is the zero-allocation per-node program interface: RoundW
	// reads and writes engine-owned word buffers instead of allocating
	// message slices. Wrap with WordProgram to obtain a Node.
	WordNode = local.WordNode
	// WordFunc adapts a closure to WordNode.
	WordFunc = local.WordFunc
	// BitRow is a packed view of one node's inbox or outbox on the bit
	// plane: one presence bit plus 1–2 value bits per port.
	BitRow = local.BitRow
	// Bit2Row is a BitRow with 2-bit (trit) values.
	Bit2Row = local.Bit2Row
	// BitNode is the bit-plane fast path: single-bit messages packed 32
	// per word, planes cache-resident at million-node scale. Wrap with
	// BitProgram to obtain a Node.
	BitNode = local.BitNode
	// Bit2Node marks a BitNode whose messages are trits (2-bit values).
	Bit2Node = local.Bit2Node
	// BitFunc adapts a closure to BitNode.
	BitFunc = local.BitFunc
	// Bit2Func adapts a closure to a Bit2Node.
	Bit2Func = local.Bit2Func
	// Plane selects the message-plane representation of a run; see
	// ForcePlane.
	Plane = local.Plane
	// FaultPlan is a seeded, keyed fault model (message drops, bounded
	// redelivery delay, crash-stop failures); see ForceFaults. The same plan
	// replays bit-identically on every engine, plane and worker count.
	FaultPlan = local.FaultPlan
)

// Plane values, in fallback-ladder order.
const (
	PlaneAuto  = local.PlaneAuto
	PlaneBoxed = local.PlaneBoxed
	PlaneWord  = local.PlaneWord
	PlaneBit   = local.PlaneBit
)

// NilWord is the reserved "no message" word.
const NilWord = local.NilWord

// NodeFunc adapts a closure to the Node interface, for programs without
// per-node state.
type NodeFunc func(r int, recv []Message) ([]Message, bool)

// Round implements Node.
func (f NodeFunc) Round(r int, recv []Message) ([]Message, bool) { return f(r, recv) }

// MakeWord packs a tag (1..7) and a payload into a Word; see local.MakeWord.
func MakeWord(tag uint8, payload uint64) Word { return local.MakeWord(tag, payload) }

// MakeIntWord packs a signed payload under the given tag; see
// local.MakeIntWord.
func MakeIntWord(tag uint8, x int) Word { return local.MakeIntWord(tag, x) }

// Broadcast fills every slot of a send buffer with w — the shared broadcast
// helper of word programs.
func Broadcast(send []Word, w Word) { local.Broadcast(send, w) }

// WordProgram adapts a WordNode to the Node interface. Engines detect the
// underlying WordNode and run it on the flat word planes — a steady-state
// round then performs zero heap allocations; on any engine (or mixed
// program) that cannot, the adapter exchanges the same Words boxed.
func WordProgram(w WordNode) Node { return local.WordProgram(w) }

// BitProgram adapts a BitNode to the Node interface. Engines detect the
// underlying BitNode and run it on the packed bit planes (1–3 bits per arc
// per plane, zero allocations per round); mixed runs fall down the
// boxed ← word ← bit ladder with unchanged meaning.
func BitProgram(b BitNode) Node { return local.BitProgram(b) }

// IntLane zigzag-encodes a small signed value (a splitting trit) into a
// bit-plane value lane; LaneInt decodes it.
func IntLane(x int) uint64 { return local.IntLane(x) }

// LaneInt decodes a zigzag-encoded value lane.
func LaneInt(v uint64) int { return local.LaneInt(v) }

// ParsePlane resolves a plane name ("auto", "boxed", "word", "bit").
func ParsePlane(name string) (Plane, error) { return local.ParsePlane(name) }

// ForcePlane wraps an engine so every run takes the given message plane;
// programs that cannot take it fail loudly instead of falling back.
func ForcePlane(e Engine, p Plane) Engine { return local.ForcePlane(e, p) }

// ForceFaults wraps an engine so every run executes under the given fault
// plan; an inactive plan (Drop and Crash both zero) returns the engine
// unchanged. Stats report the injected Dropped/Delayed/Crashed counts.
func ForceFaults(e Engine, fp FaultPlan) Engine { return local.ForceFaults(e, fp) }

// Colors of a weak splitting.
const (
	Red  = core.Red
	Blue = core.Blue
)

// NewSource returns a reproducible randomness source for the given seed.
func NewSource(seed uint64) *Source { return prob.NewSource(seed) }

// Sequential returns the single-goroutine LOCAL engine.
func Sequential() Engine { return local.SequentialEngine{} }

// Goroutines returns the one-goroutine-per-node LOCAL engine; it produces
// bit-for-bit the same outputs as Sequential.
func Goroutines() Engine { return local.GoroutineEngine{} }

// WorkerPool returns the sharded worker-pool LOCAL engine — the fastest
// choice on large instances. workers <= 0 means GOMAXPROCS. Like every
// engine it produces bit-for-bit the same outputs as Sequential.
func WorkerPool(workers int) Engine { return local.WorkerPoolEngine{Workers: workers} }

// NewTopology builds the port-numbered topology of a graph once, so that a
// multi-trial sweep can share it across Batch calls and engine runs.
func NewTopology(g *Graph) *Topology { return local.NewTopology(g) }

// Batch executes independent trials of LOCAL node programs over one shared
// topology in a single batched pass — the amortized path for multi-seed
// experiment sweeps. It returns one Stats and one error slot per trial, in
// order; every trial is bit-identical to a standalone sequential run with
// the same options. workers sizes the shared pool (<= 0 means GOMAXPROCS).
func Batch(t *Topology, trials []Trial, workers int) ([]Stats, []error) {
	return local.BatchRun(t, trials, local.BatchOptions{Workers: workers})
}

// TrivialRandomizedBatch solves one instance under many seeds in a single
// batched pass; result i is bit-identical to TrivialRandomized(b, srcs[i]).
func TrivialRandomizedBatch(b *Bipartite, srcs []*Source) ([]*Result, []error) {
	return core.ZeroRoundRandomRetryBatch(b, srcs, 16, 0, nil)
}

// --- Instance construction -------------------------------------------------

// NewBipartite returns an empty instance with nu constraints and nv
// variables; add edges with AddEdge and finish with Normalize.
func NewBipartite(nu, nv int) *Bipartite { return graph.NewBipartite(nu, nv) }

// FromGraph encodes a general graph as a weak-splitting instance
// (Section 1.2): both sides get one copy of every node, and a splitting
// 2-colors the nodes of the original graph.
func FromGraph(g *Graph) *Bipartite { return graph.FromGraph(g) }

// RandomInstance returns a random bipartite instance where every constraint
// has degree exactly d.
func RandomInstance(nu, nv, d int, src *Source) (*Bipartite, error) {
	return graph.RandomBipartiteLeftRegular(nu, nv, d, src.Rand())
}

// RandomBiregularInstance returns a random instance with constraint degree
// exactly d and variable degrees balanced to within one.
func RandomBiregularInstance(nu, nv, d int, src *Source) (*Bipartite, error) {
	return graph.RandomBipartiteBiregular(nu, nv, d, src.Rand())
}

// HighGirthStarInstance returns the girth-∞, rank-2 instance of constraint
// degree d used by the Section 5 experiments (a subdivided star of stars).
func HighGirthStarInstance(d int) (*Bipartite, error) {
	return graph.SubdividedStar(d)
}

// --- Instance and graph file I/O --------------------------------------------

// ReadInstanceFile loads a splitting instance from any supported on-disk
// format, dispatching on content: a binary CSR snapshot (bipartite loads
// directly; a graph snapshot converts via FromGraph), a SNAP-style edge
// list (first non-blank line is a '#'/'%' comment; converts via FromGraph),
// or the "nu nv"-header instance text format.
func ReadInstanceFile(path string) (*Bipartite, error) { return graph.ReadBipartiteFile(path) }

// ReadInstance parses the "nu nv"-header instance text format from a file.
func ReadInstance(path string) (*Bipartite, error) { return graph.ReadInstance(path) }

// EdgeListOptions is the input-hygiene policy of ReadEdgeList; the zero
// value rejects self loops and duplicate edges with descriptive errors.
type EdgeListOptions = graph.EdgeListOptions

// ReadEdgeList parses a SNAP-style edge-list/adjacency text file, remapping
// arbitrary node IDs to dense indices (returned alongside the graph).
func ReadEdgeList(path string, opt EdgeListOptions) (*Graph, []int64, error) {
	return graph.ReadEdgeList(path, opt)
}

// ReadGraphSnapshot loads a graph from a binary CSR snapshot file with no
// O(m) rebuild: payloads are checksum-verified, structurally validated, and
// used in place. Write snapshots with WriteGraphSnapshot or cmd/csrpack.
func ReadGraphSnapshot(path string) (*Graph, error) { return graph.ReadSnapshot(path) }

// ReadInstanceSnapshot is ReadGraphSnapshot for bipartite instances.
func ReadInstanceSnapshot(path string) (*Bipartite, error) { return graph.ReadBipartiteSnapshot(path) }

// WriteGraphSnapshot writes g to path in the binary CSR snapshot format
// (DESIGN.md §CSR snapshot format).
func WriteGraphSnapshot(path string, g *Graph) error {
	return writeSnapshotFile(path, g.ExportSnapshot)
}

// WriteInstanceSnapshot writes b to path in the binary CSR snapshot format.
func WriteInstanceSnapshot(path string, b *Bipartite) error {
	return writeSnapshotFile(path, b.ExportSnapshot)
}

func writeSnapshotFile(path string, export func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// --- Weak splitting algorithms ----------------------------------------------

// TrivialRandomized is the zero-round randomized splitter of Section 2.1
// with bounded retries; it succeeds w.h.p. whenever δ ≥ 2·log n.
func TrivialRandomized(b *Bipartite, src *Source) (*Result, error) {
	return core.ZeroRoundRandomRetry(b, src, 16)
}

// Deterministic is the paper's main deterministic algorithm
// (Theorem 1.1 / 2.5): O((r/δ)·log²n + log³n·(loglog n)^1.1) simulated
// rounds when δ ≥ 2·log n.
func Deterministic(b *Bipartite) (*Result, error) {
	return core.DeterministicSplit(b, core.DeterministicOptions{})
}

// DeterministicOn is Deterministic with an explicit simulation engine;
// engines only change wall-clock time, never the output.
func DeterministicOn(b *Bipartite, eng Engine) (*Result, error) {
	return core.DeterministicSplit(b, core.DeterministicOptions{Engine: eng})
}

// Randomized is the shattering-based randomized algorithm (Theorem 1.2):
// O((r/δ)·poly log(r·log n)) simulated rounds when δ ≥ c·log(r·log n).
func Randomized(b *Bipartite, src *Source) (*Result, error) {
	return core.RandomizedSplit(b, src, core.RandomizedOptions{})
}

// RandomizedOn is Randomized with an explicit simulation engine.
func RandomizedOn(b *Bipartite, src *Source, eng Engine) (*Result, error) {
	return core.RandomizedSplit(b, src, core.RandomizedOptions{Engine: eng})
}

// SixR solves instances with δ ≥ 6·r deterministically (Theorem 2.7).
func SixR(b *Bipartite) (*Result, error) {
	return core.SixRSplit(b, core.SixROptions{})
}

// SixROn is SixR with an explicit simulation engine.
func SixROn(b *Bipartite, eng Engine) (*Result, error) {
	return core.SixRSplit(b, core.SixROptions{Engine: eng})
}

// HighGirthDeterministic is Theorem 5.2 (girth ≥ 10, derandomized
// shattering over a B⁴ coloring).
func HighGirthDeterministic(b *Bipartite) (*Result, error) {
	return core.HighGirthDeterministic(b, local.SequentialEngine{})
}

// HighGirthRandomized is Theorem 5.3 (girth ≥ 10, shattering + Theorem 2.7
// on the residual components).
func HighGirthRandomized(b *Bipartite, src *Source) (*Result, error) {
	return core.HighGirthRandomized(b, src, 8)
}

// Reference is the centralized backtracking existence oracle; it is not a
// LOCAL algorithm but solves any satisfiable instance (subject to a search
// budget), including regimes below every algorithmic threshold.
func Reference(b *Bipartite) (*Result, error) {
	return core.ExhaustiveSplit(b, 0)
}

// Verify checks a weak splitting: every constraint with degree ≥ minDeg
// must see both colors (use minDeg = 0 to constrain everyone).
func Verify(b *Bipartite, colors []int, minDeg int) error {
	return check.WeakSplit(b, colors, minDeg)
}

// Degradation is the graded verdict on one faulty run's output: valid
// (invariants hold with full coverage), degraded (crash holes, consistent
// on surviving data) or shattered (an invariant failed on fully-reported
// data). See Grade.
type Degradation = check.Degradation

// Outcome is the three-band grade a Degradation carries.
type Outcome = check.Outcome

// Outcome bands, in decreasing order of health.
const (
	OutcomeValid     = check.OutcomeValid
	OutcomeDegraded  = check.OutcomeDegraded
	OutcomeShattered = check.OutcomeShattered
)

// Grade classifies a weak splitting produced under faults (see ForceFaults):
// pass-fail verification is the wrong instrument once crash-stop holes are
// expected, so Grade separates degraded coverage from broken logic.
func Grade(b *Bipartite, colors []int, minDeg int) Degradation {
	return check.WeakSplitDegradation(b, colors, minDeg)
}
