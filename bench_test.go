package splitting_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	splitting "repro"
	"repro/internal/coloring"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/orient"
	"repro/internal/prob"
)

// benchExperiment runs one experiment table per benchmark iteration; these
// are the regeneration targets for EXPERIMENTS.md (DESIGN.md §3).
func benchExperiment(b *testing.B, id string) {
	runner := experiments.All()[id]
	cfg := experiments.Config{Quick: true, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := runner(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1(b *testing.B)  { benchExperiment(b, "E1") }  // Thm 1.1/2.5
func BenchmarkE2(b *testing.B)  { benchExperiment(b, "E2") }  // Thm 1.2
func BenchmarkE3(b *testing.B)  { benchExperiment(b, "E3") }  // Thm 2.7
func BenchmarkE4(b *testing.B)  { benchExperiment(b, "E4") }  // Lemma 2.4
func BenchmarkE5(b *testing.B)  { benchExperiment(b, "E5") }  // Lemma 2.6
func BenchmarkE6(b *testing.B)  { benchExperiment(b, "E6") }  // Lemma 2.9
func BenchmarkE7(b *testing.B)  { benchExperiment(b, "E7") }  // Thm 2.10 / Fig 1
func BenchmarkE8(b *testing.B)  { benchExperiment(b, "E8") }  // Thm 3.2
func BenchmarkE9(b *testing.B)  { benchExperiment(b, "E9") }  // Thm 3.3
func BenchmarkE10(b *testing.B) { benchExperiment(b, "E10") } // Lemma 4.1
func BenchmarkE11(b *testing.B) { benchExperiment(b, "E11") } // Lemma 4.2
func BenchmarkE12(b *testing.B) { benchExperiment(b, "E12") } // Section 5
func BenchmarkE13(b *testing.B) { benchExperiment(b, "E13") } // Thm 2.3 substrate
func BenchmarkE14(b *testing.B) { benchExperiment(b, "E14") } // ablations
func BenchmarkE15(b *testing.B) { benchExperiment(b, "E15") } // §1.1 edge splitting

// --- Microbenchmarks of the primitives -------------------------------------

func BenchmarkDeterministicSplit(b *testing.B) {
	src := splitting.NewSource(1)
	inst, err := splitting.RandomBiregularInstance(128, 256, 36, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splitting.Deterministic(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomizedSplit(b *testing.B) {
	inst, err := splitting.RandomBiregularInstance(256, 1024, 12, splitting.NewSource(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splitting.Randomized(inst, splitting.NewSource(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrivialRandomized(b *testing.B) {
	inst, err := splitting.RandomInstance(512, 1024, 30, splitting.NewSource(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splitting.TrivialRandomized(inst, splitting.NewSource(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEulerianSplitter(b *testing.B) {
	g, err := graph.RandomRegular(512, 32, prob.NewSource(4).Rand())
	if err != nil {
		b.Fatal(err)
	}
	m, _ := graph.MultigraphFromGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orient.EulerianSplit(m)
	}
}

func BenchmarkApproxSplitter(b *testing.B) {
	g, err := graph.RandomRegular(512, 32, prob.NewSource(5).Rand())
	if err != nil {
		b.Fatal(err)
	}
	m, _ := graph.MultigraphFromGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orient.ApproxSplitDet(m, 0.25)
	}
}

// benchExchange is a fixed-round message-exchange program used to measure
// raw engine throughput: every node accumulates what it hears and forwards
// the sum for `rounds` rounds. The send buffer is reused across rounds so
// steady-state allocation reflects the engine and the message
// representation, not the program — on the boxed plane each per-port
// assignment still boxes one interface value per round.
type benchExchange struct {
	rounds int
	acc    uint64
	send   []local.Message
}

func (n *benchExchange) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for _, m := range recv {
		if m != nil {
			n.acc += m.(uint64)
		}
	}
	if r > n.rounds {
		return nil, true
	}
	x := n.acc + uint64(r)
	for p := range n.send {
		n.send[p] = x
	}
	return n.send, false
}

// benchExchangeW is benchExchange on the word plane: same accumulate-and-
// forward shape, but messages are Words written into the engine-provided
// send row, so a steady-state round allocates nothing at all.
type benchExchangeW struct {
	rounds int
	acc    uint64
}

func (n *benchExchangeW) RoundW(r int, recv, send []local.Word) bool {
	for _, m := range recv {
		if m != local.NilWord {
			n.acc += m.Payload()
		}
	}
	if r > n.rounds {
		return true
	}
	local.Broadcast(send, local.MakeWord(1, n.acc+uint64(r)))
	return false
}

// benchExchangeB is benchExchange on the packed bit plane — the shape of
// every migrated algorithm message (weak-splitting votes, retry bits):
// tally what is heard with the word-parallel aggregates (the idiom the
// shattering and verifier programs use), broadcast one bit, allocate
// nothing. The plane cost drops from 64 to 2 bits per arc (presence +
// value).
type benchExchangeB struct {
	rounds int
	acc    uint64
}

// CastB implements local.BitBroadcaster — every send is a full-row
// broadcast, so the engines' fused scatter+aggregate fast path applies.
// RoundB below must stay observationally identical (it is the path the
// goroutine engine and the NoFuse ablation still take).
func (n *benchExchangeB) CastB(r int, recv local.BitRow) (uint64, bool, bool) {
	n.acc += uint64(recv.CountValue(1))
	if r > n.rounds {
		return 0, false, true
	}
	return (n.acc + uint64(r)) & 1, true, false
}

func (n *benchExchangeB) RoundB(r int, recv, send local.BitRow) bool {
	v, cast, done := n.CastB(r, recv)
	if cast {
		send.Broadcast(v)
	}
	return done
}

// exchangeFactory builds the exchange program for one message plane
// representation ("bit", "word" or "boxed"); rounds is the fixed round
// budget.
func exchangeFactory(rounds int, plane string) local.Factory {
	switch plane {
	case "bit":
		return func(v local.View) local.Node {
			return local.BitProgram(&benchExchangeB{rounds: rounds, acc: uint64(v.ID)})
		}
	case "word":
		return func(v local.View) local.Node {
			return local.WordProgram(&benchExchangeW{rounds: rounds, acc: uint64(v.ID)})
		}
	default:
		return func(v local.View) local.Node {
			return &benchExchange{rounds: rounds, acc: uint64(v.ID), send: make([]local.Message, v.Deg)}
		}
	}
}

// planeBitsPerArc is the per-arc footprint of one message plane: 128 bits
// of interface header on the boxed plane, 64 on the word plane, and
// presence + one value bit on the bit plane (2-bit-lane programs cost one
// more). The double-buffered pair costs twice this.
func planeBitsPerArc(plane string) float64 {
	switch plane {
	case "bit":
		return 2
	case "word":
		return 64
	default:
		return 128
	}
}

// planeBytesPerNode is the per-node footprint of the double-buffered
// message plane pair (per trial, for batches).
func planeBytesPerNode(arcs, n int, plane string) float64 {
	return 2 * planeBitsPerArc(plane) / 8 * float64(arcs) / float64(n)
}

// measureAllocsPerRound reports the marginal heap allocations of one
// steady-state round: it runs the workload at two round budgets and divides
// the difference in mallocs by the difference in rounds, so one-time setup
// (views, nodes, planes, worker spawn) cancels out. GC stays enabled —
// Mallocs is monotone, and the boxed 1M-node cases would otherwise pile up
// gigabytes of uncollectable garbage; the strict zero-allocation pins (with
// GC disabled, on small graphs) live in internal/local's regression tests.
func measureAllocsPerRound(run func(rounds int)) float64 {
	const lo, hi = 4, 24
	var m0, m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m0)
	run(lo)
	runtime.ReadMemStats(&m1)
	run(hi)
	runtime.ReadMemStats(&m2)
	d := float64(int64(m2.Mallocs-m1.Mallocs)-int64(m1.Mallocs-m0.Mallocs)) / float64(hi-lo)
	if d < 0 {
		d = 0
	}
	return d
}

// BenchmarkEngines compares the three LOCAL engines on raw synchronous-round
// throughput: a large sparse random graph (100k nodes), a heavy-tailed
// power-law graph of the same size (the case that separates arc-balanced
// from node-count sharding — its hubs serialize a node-count-sharded pool),
// a high-girth bipartite tree, and — in full (non -short) runs — a
// million-node random graph that only fits because the CSR graph core
// stores adjacency in two flat arrays. The seq/goroutine/pool cases run the
// word-plane program (the broadest fast path); pool-bit runs the bit-plane
// program the migrated splitting algorithms use, and pool-boxed keeps the
// boxed Message plane as the in-benchmark baseline. rounds/sec is the
// headline metric; allocs/round (marginal, setup excluded) and
// plane-bytes/node track the message-plane cost next to graph-bytes/node.
func BenchmarkEngines(b *testing.B) {
	cases := []struct {
		name   string
		build  func() *graph.Graph
		rounds int
		large  bool
	}{
		{"random100k", func() *graph.Graph {
			return graph.RandomSparseGraph(100_000, 300_000, prob.NewSource(6).Rand())
		}, 20, false},
		{"powerlaw100k", func() *graph.Graph {
			return graph.RandomPowerLawGraph(100_000, 2.1, 2000, prob.NewSource(12).Rand())
		}, 20, false},
		{"highgirth-tree", func() *graph.Graph {
			t, err := graph.HighGirthTree(7, 5)
			if err != nil {
				b.Fatal(err)
			}
			return t.AsGraph()
		}, 20, false},
		{"random1M", func() *graph.Graph {
			return graph.RandomSparseGraph(1_000_000, 3_000_000, prob.NewSource(8).Rand())
		}, 8, true},
	}
	engines := []struct {
		name  string
		e     local.Engine
		plane string
	}{
		{"seq", local.SequentialEngine{}, "word"},
		{"goroutine", local.GoroutineEngine{}, "word"},
		{"pool", local.WorkerPoolEngine{}, "word"},
		{"pool-bit", local.WorkerPoolEngine{}, "bit"},
		{"pool-boxed", local.WorkerPoolEngine{}, "boxed"},
	}
	for _, tc := range cases {
		if tc.large && testing.Short() {
			continue
		}
		g := tc.build()
		topo := local.NewTopology(g)
		csr := g.CSR()
		n := g.N()
		arcs := len(csr.Edges)
		graphBytesPerNode := float64(4*(len(csr.Off)+arcs)) / float64(n)
		for _, eng := range engines {
			if tc.large && eng.name == "goroutine" {
				continue
			}
			b.Run(tc.name+"/"+eng.name, func(b *testing.B) {
				b.ReportAllocs()
				allocsPerRound := measureAllocsPerRound(func(rounds int) {
					if _, err := eng.e.Run(topo, exchangeFactory(rounds, eng.plane), local.Options{}); err != nil {
						b.Fatal(err)
					}
				})
				factory := exchangeFactory(tc.rounds, eng.plane)
				b.ResetTimer()
				totalRounds := 0
				for i := 0; i < b.N; i++ {
					stats, err := eng.e.Run(topo, factory, local.Options{})
					if err != nil {
						b.Fatal(err)
					}
					totalRounds += stats.Rounds
				}
				b.ReportMetric(float64(totalRounds)/b.Elapsed().Seconds(), "rounds/sec")
				b.ReportMetric(graphBytesPerNode, "graph-bytes/node")
				b.ReportMetric(planeBytesPerNode(arcs, n, eng.plane), "plane-bytes/node")
				b.ReportMetric(allocsPerRound, "allocs/round")
			})
		}
	}
}

// BenchmarkMsgPlane is the message-plane comparison the BENCH_msgplane.json
// and BENCH_bitplane.json CI artifacts snapshot: the same exchange program
// on the bit, word and boxed planes, across all four execution paths
// (sequential, goroutine, worker pool, and a 4-trial batch), at 100k nodes
// and — in full (non -short) runs — at 1M nodes, where the 64-bit word
// planes leave the LLC and stream through DRAM while the packed bit planes
// stay cache-resident (this is where the bit plane's ≥2× shows up).
// allocs/round is the marginal steady-state figure (setup excluded),
// plane-bits/arc the single-plane footprint (≤ 2 for the bit plane), and
// plane-bytes/node the double-buffered per-node cost, so the artifacts
// track GC pressure and memory cost of each representation across PRs. The
// 1M case drops the goroutine path (a goroutine per node is pure overhead
// at that scale), the boxed plane (a million-node boxed batch is gigabytes
// of GC-scanned pointers), and runs 2 batch trials instead of 4.
func BenchmarkMsgPlane(b *testing.B) {
	const rounds = 20
	sizes := []struct {
		name   string
		n, m   int
		trials int
		large  bool
	}{
		{"100k", 100_000, 300_000, 4, false},
		{"1M", 1_000_000, 3_000_000, 2, true},
	}
	for _, sz := range sizes {
		if sz.large && testing.Short() {
			continue
		}
		g := graph.RandomSparseGraph(sz.n, sz.m, prob.NewSource(14).Rand())
		topo := local.NewTopology(g)
		arcs := len(g.CSR().Edges)
		engineRun := func(e local.Engine) func(b *testing.B, rounds, trials int, plane string) int {
			return func(b *testing.B, rounds, _ int, plane string) int {
				stats, err := e.Run(topo, exchangeFactory(rounds, plane), local.Options{})
				if err != nil {
					b.Fatal(err)
				}
				return stats.Rounds
			}
		}
		paths := []struct {
			name string
			run  func(b *testing.B, rounds, trials int, plane string) (totalRounds int)
		}{
			{"seq", engineRun(local.SequentialEngine{})},
			{"goroutine", engineRun(local.GoroutineEngine{})},
			{"pool", engineRun(local.WorkerPoolEngine{})},
			{"batch", func(b *testing.B, rounds, trials int, plane string) int {
				ts := make([]local.Trial, trials)
				for s := range ts {
					ts[s] = local.Trial{Factory: exchangeFactory(rounds, plane)}
				}
				stats, errs := local.BatchRun(topo, ts, local.BatchOptions{})
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				total := 0
				for _, st := range stats {
					total += st.Rounds
				}
				return total
			}},
		}
		for _, pt := range paths {
			if sz.large && pt.name == "goroutine" {
				continue
			}
			for _, plane := range []string{"bit", "word", "boxed"} {
				if sz.large && plane == "boxed" {
					continue
				}
				b.Run(sz.name+"/"+pt.name+"/"+plane, func(b *testing.B) {
					b.ReportAllocs()
					allocsPerRound := measureAllocsPerRound(func(rounds int) { pt.run(b, rounds, sz.trials, plane) })
					b.ResetTimer()
					totalRounds := 0
					for i := 0; i < b.N; i++ {
						totalRounds += pt.run(b, rounds, sz.trials, plane)
					}
					b.ReportMetric(float64(totalRounds)/b.Elapsed().Seconds(), "rounds/sec")
					b.ReportMetric(planeBitsPerArc(plane), "plane-bits/arc")
					b.ReportMetric(planeBytesPerNode(arcs, sz.n, plane), "plane-bytes/node")
					b.ReportMetric(allocsPerRound, "allocs/round")
				})
			}
		}
	}
}

// batchTail is the shattering-shaped benchmark program, the round structure
// of the paper's randomized algorithms (E2/E6): almost every node decides
// locally and terminates in round one — the zero-round splitter — while a
// sparse residual (the unshattered components) keeps exchanging messages
// for a `tail`-round tail. Per-trial engine runs pay setup and per-round
// scheduling for every seed of a sweep; the batched runner pays them once,
// which is exactly what this shape exposes.
type batchTail struct {
	stop int
	acc  uint64
	send []local.Message
}

func (n *batchTail) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for _, m := range recv {
		if m != nil {
			n.acc += m.(uint64)
		}
	}
	if r >= n.stop {
		return nil, true
	}
	// Box the round's value once; per-port interface conversions would
	// allocate deg times per node per round and drown the sweep in GC.
	var x local.Message = n.acc + uint64(r)
	for p := range n.send {
		n.send[p] = x
	}
	return n.send, false
}

func batchTailFactory(tail int) local.Factory {
	return func(v local.View) local.Node {
		stop := 2 + int(v.Rand.Uint64()%2) // coordinate-and-terminate within 3 rounds
		if v.Rand.Uint64()%2048 == 0 {
			stop = tail // residual component node
		}
		return &batchTail{stop: stop, acc: uint64(v.ID), send: make([]local.Message, v.Deg)}
	}
}

// BenchmarkBatch compares a multi-seed sweep (100k nodes × 8 seeds) run the
// pre-batch way — instance and topology rebuilt and the worker-pool engine
// invoked once per trial, as the unbatched harness does — against one
// BatchRun over a shared topology. trials/sec is the headline metric; the
// batched path must stay bit-identical (pinned by the determinism and
// golden suites), so any gap is pure scheduling, setup, and allocation
// amortization. The instance rebuild and the view construction amortize on
// any machine; the merged round barriers and the residual tails only pay
// off across GOMAXPROCS workers, so the ratio grows with core count (CI's
// BENCH_batch.json artifact tracks it per runner).
func BenchmarkBatch(b *testing.B) {
	const (
		nNodes = 100_000
		nEdges = 300_000
		nSeeds = 8
		tail   = 2500
	)
	// The trial grid's instance spec is fixed (seed-independent), as the
	// batch path requires; the unbatched harness still rebuilds the instance
	// and its topology for every cell (see Grid.Run — the isolation is
	// deliberate), so the per-trial baseline pays that rebuild exactly as a
	// pre-batch sweep does.
	buildTopo := func() *local.Topology {
		return local.NewTopology(graph.RandomSparseGraph(nNodes, nEdges, prob.NewSource(9).Rand()))
	}
	mkTrial := func(seed uint64) local.Trial {
		return local.Trial{
			Factory: batchTailFactory(tail),
			Opts:    local.Options{Source: prob.NewSource(seed)},
		}
	}
	b.Run("pool-per-trial", func(b *testing.B) {
		b.ReportAllocs()
		trialCount := 0
		for i := 0; i < b.N; i++ {
			for s := 0; s < nSeeds; s++ {
				tr := mkTrial(uint64(s + 1))
				if _, err := (local.WorkerPoolEngine{}).Run(buildTopo(), tr.Factory, tr.Opts); err != nil {
					b.Fatal(err)
				}
				trialCount++
			}
		}
		b.ReportMetric(float64(trialCount)/b.Elapsed().Seconds(), "trials/sec")
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		trialCount := 0
		for i := 0; i < b.N; i++ {
			topo := buildTopo()
			trials := make([]local.Trial, nSeeds)
			for s := range trials {
				trials[s] = mkTrial(uint64(s + 1))
			}
			_, errs := local.BatchRun(topo, trials, local.BatchOptions{})
			for s, err := range errs {
				if err != nil {
					b.Fatalf("trial %d: %v", s, err)
				}
			}
			trialCount += nSeeds
		}
		b.ReportMetric(float64(trialCount)/b.Elapsed().Seconds(), "trials/sec")
	})
}

// BenchmarkRealGraph is the real-graph ingestion benchmark behind CI's
// BENCH_realgraph.json artifact: a 200k-node heavy-tailed graph is packed
// into the binary CSR snapshot format once, and the benchmark measures (a)
// snapshot load time — file read, checksum verification, structural
// validation, zero-copy CSR adoption, and the Section 1.2 instance
// encoding; the import itself performs no O(m) rebuild, which is the
// contract internal/graph's no-rebuild test pins — and (b) simulated-round
// throughput on the loaded topology, so a regression in either half of the
// "pack once, load fast, run fast" story shows up in the artifact.
func BenchmarkRealGraph(b *testing.B) {
	g := graph.RandomPowerLawGraph(200_000, 2.1, 2000, prob.NewSource(21).Rand())
	path := b.TempDir() + "/powerlaw200k.csr"
	if err := splitting.WriteGraphSnapshot(path, g); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("snapshot-load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := splitting.ReadGraphSnapshot(path); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(fi.Size())/1e6/(b.Elapsed().Seconds()/float64(b.N)), "MB/sec")
	})
	b.Run("snapshot-load-instance", func(b *testing.B) {
		// The wsplit -graph path: snapshot → Section 1.2 splitting instance.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := splitting.ReadInstanceFile(path); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rounds", func(b *testing.B) {
		loaded, err := splitting.ReadGraphSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		topo := local.NewTopology(loaded)
		factory := exchangeFactory(20, "word")
		b.ReportAllocs()
		b.ResetTimer()
		totalRounds := 0
		for i := 0; i < b.N; i++ {
			stats, err := (local.WorkerPoolEngine{}).Run(topo, factory, local.Options{})
			if err != nil {
				b.Fatal(err)
			}
			totalRounds += stats.Rounds
		}
		b.ReportMetric(float64(totalRounds)/b.Elapsed().Seconds(), "rounds/sec")
	})
}

// BenchmarkEnginesColoring keeps the original end-to-end comparison: the
// full Δ+1 coloring pipeline under each engine (ablation E14's wall-clock
// counterpart).
func BenchmarkEnginesColoring(b *testing.B) {
	g := graph.RandomGraph(400, 0.05, prob.NewSource(6).Rand())
	for _, eng := range []struct {
		name string
		e    local.Engine
	}{
		{"seq", local.SequentialEngine{}},
		{"goroutine", local.GoroutineEngine{}},
		{"pool", local.WorkerPoolEngine{}},
	} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coloring.DeltaPlusOne(g, eng.e, local.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkConflictColoringScaling(b *testing.B) {
	for _, nv := range []int{128, 512} {
		b.Run(fmt.Sprintf("nv=%d", nv), func(b *testing.B) {
			inst, err := splitting.RandomInstance(nv/2, nv, 14, splitting.NewSource(uint64(nv)))
			if err != nil {
				b.Fatal(err)
			}
			conflict := inst.VPower(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coloring.DeltaPlusOne(conflict, local.SequentialEngine{}, local.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFaults is the fault-path overhead snapshot the BENCH_faults.json
// CI artifact records: the 100k-node word-plane exchange, clean versus
// under active fault plans, on the sequential and pool engines. The clean
// rows measure the fault-free hot path (the engines carry a nil fault state
// when no plan is active, so any creep here is a regression in the
// zero-cost-when-off contract); the faulty rows price the round-boundary
// drop scan, the redelivery queue and the crash pass in rounds/sec, with
// the injected counts reported per run.
func BenchmarkFaults(b *testing.B) {
	g := graph.RandomSparseGraph(100_000, 300_000, prob.NewSource(6).Rand())
	topo := local.NewTopology(g)
	const rounds = 20
	plans := []struct {
		name string
		fp   *local.FaultPlan
	}{
		{"clean", nil},
		{"drop10", &local.FaultPlan{Seed: 42, Drop: 0.1}},
		{"drop10-delay2", &local.FaultPlan{Seed: 42, Drop: 0.1, Delay: 2}},
		{"crash1e-4", &local.FaultPlan{Seed: 42, Crash: 1e-4}},
	}
	engines := []struct {
		name string
		e    local.Engine
	}{
		{"seq", local.SequentialEngine{}},
		{"pool", local.WorkerPoolEngine{}},
	}
	for _, eng := range engines {
		for _, pc := range plans {
			b.Run(eng.name+"/"+pc.name, func(b *testing.B) {
				b.ReportAllocs()
				factory := exchangeFactory(rounds, "word")
				b.ResetTimer()
				totalRounds := 0
				var dropped, delayed int64
				crashed := 0
				for i := 0; i < b.N; i++ {
					stats, err := eng.e.Run(topo, factory, local.Options{Faults: pc.fp})
					if err != nil {
						b.Fatal(err)
					}
					totalRounds += stats.Rounds
					dropped += stats.Dropped
					delayed += stats.Delayed
					crashed += stats.Crashed
				}
				b.ReportMetric(float64(totalRounds)/b.Elapsed().Seconds(), "rounds/sec")
				b.ReportMetric(float64(dropped)/float64(b.N), "dropped/run")
				b.ReportMetric(float64(delayed)/float64(b.N), "delayed/run")
				b.ReportMetric(float64(crashed)/float64(b.N), "crashed/run")
			})
		}
	}
}
