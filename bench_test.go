package splitting_test

import (
	"fmt"
	"testing"

	splitting "repro"
	"repro/internal/coloring"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/orient"
	"repro/internal/prob"
)

// benchExperiment runs one experiment table per benchmark iteration; these
// are the regeneration targets for EXPERIMENTS.md (DESIGN.md §3).
func benchExperiment(b *testing.B, id string) {
	runner := experiments.All()[id]
	cfg := experiments.Config{Quick: true, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := runner(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1(b *testing.B)  { benchExperiment(b, "E1") }  // Thm 1.1/2.5
func BenchmarkE2(b *testing.B)  { benchExperiment(b, "E2") }  // Thm 1.2
func BenchmarkE3(b *testing.B)  { benchExperiment(b, "E3") }  // Thm 2.7
func BenchmarkE4(b *testing.B)  { benchExperiment(b, "E4") }  // Lemma 2.4
func BenchmarkE5(b *testing.B)  { benchExperiment(b, "E5") }  // Lemma 2.6
func BenchmarkE6(b *testing.B)  { benchExperiment(b, "E6") }  // Lemma 2.9
func BenchmarkE7(b *testing.B)  { benchExperiment(b, "E7") }  // Thm 2.10 / Fig 1
func BenchmarkE8(b *testing.B)  { benchExperiment(b, "E8") }  // Thm 3.2
func BenchmarkE9(b *testing.B)  { benchExperiment(b, "E9") }  // Thm 3.3
func BenchmarkE10(b *testing.B) { benchExperiment(b, "E10") } // Lemma 4.1
func BenchmarkE11(b *testing.B) { benchExperiment(b, "E11") } // Lemma 4.2
func BenchmarkE12(b *testing.B) { benchExperiment(b, "E12") } // Section 5
func BenchmarkE13(b *testing.B) { benchExperiment(b, "E13") } // Thm 2.3 substrate
func BenchmarkE14(b *testing.B) { benchExperiment(b, "E14") } // ablations
func BenchmarkE15(b *testing.B) { benchExperiment(b, "E15") } // §1.1 edge splitting

// --- Microbenchmarks of the primitives -------------------------------------

func BenchmarkDeterministicSplit(b *testing.B) {
	src := splitting.NewSource(1)
	inst, err := splitting.RandomBiregularInstance(128, 256, 36, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splitting.Deterministic(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomizedSplit(b *testing.B) {
	inst, err := splitting.RandomBiregularInstance(256, 1024, 12, splitting.NewSource(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splitting.Randomized(inst, splitting.NewSource(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrivialRandomized(b *testing.B) {
	inst, err := splitting.RandomInstance(512, 1024, 30, splitting.NewSource(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splitting.TrivialRandomized(inst, splitting.NewSource(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEulerianSplitter(b *testing.B) {
	g, err := graph.RandomRegular(512, 32, prob.NewSource(4).Rand())
	if err != nil {
		b.Fatal(err)
	}
	m, _ := graph.MultigraphFromGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orient.EulerianSplit(m)
	}
}

func BenchmarkApproxSplitter(b *testing.B) {
	g, err := graph.RandomRegular(512, 32, prob.NewSource(5).Rand())
	if err != nil {
		b.Fatal(err)
	}
	m, _ := graph.MultigraphFromGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orient.ApproxSplitDet(m, 0.25)
	}
}

// BenchmarkEngines compares the two LOCAL engines on the same coloring
// program (ablation E14's wall-clock counterpart).
func BenchmarkEngines(b *testing.B) {
	g := graph.RandomGraph(400, 0.05, prob.NewSource(6).Rand())
	for _, eng := range []struct {
		name string
		e    local.Engine
	}{
		{"sequential", local.SequentialEngine{}},
		{"goroutine", local.GoroutineEngine{}},
	} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coloring.DeltaPlusOne(g, eng.e, local.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkConflictColoringScaling(b *testing.B) {
	for _, nv := range []int{128, 512} {
		b.Run(fmt.Sprintf("nv=%d", nv), func(b *testing.B) {
			inst, err := splitting.RandomInstance(nv/2, nv, 14, splitting.NewSource(uint64(nv)))
			if err != nil {
				b.Fatal(err)
			}
			conflict := inst.VPower(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coloring.DeltaPlusOne(conflict, local.SequentialEngine{}, local.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
