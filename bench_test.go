package splitting_test

import (
	"fmt"
	"testing"

	splitting "repro"
	"repro/internal/coloring"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/orient"
	"repro/internal/prob"
)

// benchExperiment runs one experiment table per benchmark iteration; these
// are the regeneration targets for EXPERIMENTS.md (DESIGN.md §3).
func benchExperiment(b *testing.B, id string) {
	runner := experiments.All()[id]
	cfg := experiments.Config{Quick: true, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := runner(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1(b *testing.B)  { benchExperiment(b, "E1") }  // Thm 1.1/2.5
func BenchmarkE2(b *testing.B)  { benchExperiment(b, "E2") }  // Thm 1.2
func BenchmarkE3(b *testing.B)  { benchExperiment(b, "E3") }  // Thm 2.7
func BenchmarkE4(b *testing.B)  { benchExperiment(b, "E4") }  // Lemma 2.4
func BenchmarkE5(b *testing.B)  { benchExperiment(b, "E5") }  // Lemma 2.6
func BenchmarkE6(b *testing.B)  { benchExperiment(b, "E6") }  // Lemma 2.9
func BenchmarkE7(b *testing.B)  { benchExperiment(b, "E7") }  // Thm 2.10 / Fig 1
func BenchmarkE8(b *testing.B)  { benchExperiment(b, "E8") }  // Thm 3.2
func BenchmarkE9(b *testing.B)  { benchExperiment(b, "E9") }  // Thm 3.3
func BenchmarkE10(b *testing.B) { benchExperiment(b, "E10") } // Lemma 4.1
func BenchmarkE11(b *testing.B) { benchExperiment(b, "E11") } // Lemma 4.2
func BenchmarkE12(b *testing.B) { benchExperiment(b, "E12") } // Section 5
func BenchmarkE13(b *testing.B) { benchExperiment(b, "E13") } // Thm 2.3 substrate
func BenchmarkE14(b *testing.B) { benchExperiment(b, "E14") } // ablations
func BenchmarkE15(b *testing.B) { benchExperiment(b, "E15") } // §1.1 edge splitting

// --- Microbenchmarks of the primitives -------------------------------------

func BenchmarkDeterministicSplit(b *testing.B) {
	src := splitting.NewSource(1)
	inst, err := splitting.RandomBiregularInstance(128, 256, 36, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splitting.Deterministic(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomizedSplit(b *testing.B) {
	inst, err := splitting.RandomBiregularInstance(256, 1024, 12, splitting.NewSource(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splitting.Randomized(inst, splitting.NewSource(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrivialRandomized(b *testing.B) {
	inst, err := splitting.RandomInstance(512, 1024, 30, splitting.NewSource(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splitting.TrivialRandomized(inst, splitting.NewSource(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEulerianSplitter(b *testing.B) {
	g, err := graph.RandomRegular(512, 32, prob.NewSource(4).Rand())
	if err != nil {
		b.Fatal(err)
	}
	m, _ := graph.MultigraphFromGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orient.EulerianSplit(m)
	}
}

func BenchmarkApproxSplitter(b *testing.B) {
	g, err := graph.RandomRegular(512, 32, prob.NewSource(5).Rand())
	if err != nil {
		b.Fatal(err)
	}
	m, _ := graph.MultigraphFromGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orient.ApproxSplitDet(m, 0.25)
	}
}

// benchExchange is a fixed-round message-exchange program used to measure
// raw engine throughput: every node accumulates what it hears and forwards
// the sum for `rounds` rounds. The send buffer is reused across rounds so
// steady-state allocation reflects the engine, not the program.
type benchExchange struct {
	rounds int
	acc    uint64
	send   []local.Message
}

func (n *benchExchange) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for _, m := range recv {
		if m != nil {
			n.acc += m.(uint64)
		}
	}
	if r > n.rounds {
		return nil, true
	}
	x := n.acc + uint64(r)
	for p := range n.send {
		n.send[p] = x
	}
	return n.send, false
}

// BenchmarkEngines compares the three LOCAL engines on raw synchronous-round
// throughput: a large sparse random graph (100k nodes), a high-girth
// bipartite tree, and — in full (non -short) runs — a million-node random
// graph that only fits because the CSR graph core stores adjacency in two
// flat arrays. rounds/sec is the headline metric and graph-bytes/node shows
// the storage footprint; GoroutineEngine pays two channel operations per
// node per round (and is skipped at 1M nodes, where a goroutine per node is
// pure overhead), WorkerPoolEngine amortizes the whole round over
// GOMAXPROCS workers.
func BenchmarkEngines(b *testing.B) {
	cases := []struct {
		name   string
		build  func() *graph.Graph
		rounds int
		large  bool
	}{
		{"random100k", func() *graph.Graph {
			return graph.RandomSparseGraph(100_000, 300_000, prob.NewSource(6).Rand())
		}, 20, false},
		{"highgirth-tree", func() *graph.Graph {
			t, err := graph.HighGirthTree(7, 5)
			if err != nil {
				b.Fatal(err)
			}
			return t.AsGraph()
		}, 20, false},
		{"random1M", func() *graph.Graph {
			return graph.RandomSparseGraph(1_000_000, 3_000_000, prob.NewSource(8).Rand())
		}, 8, true},
	}
	engines := []struct {
		name string
		e    local.Engine
	}{
		{"seq", local.SequentialEngine{}},
		{"goroutine", local.GoroutineEngine{}},
		{"pool", local.WorkerPoolEngine{}},
	}
	for _, tc := range cases {
		if tc.large && testing.Short() {
			continue
		}
		g := tc.build()
		topo := local.NewTopology(g)
		csr := g.CSR()
		graphBytesPerNode := float64(4*(len(csr.Off)+len(csr.Edges))) / float64(g.N())
		factory := func(v local.View) local.Node {
			return &benchExchange{rounds: tc.rounds, acc: uint64(v.ID), send: make([]local.Message, v.Deg)}
		}
		for _, eng := range engines {
			if tc.large && eng.name == "goroutine" {
				continue
			}
			b.Run(tc.name+"/"+eng.name, func(b *testing.B) {
				b.ReportAllocs()
				totalRounds := 0
				for i := 0; i < b.N; i++ {
					stats, err := eng.e.Run(topo, factory, local.Options{})
					if err != nil {
						b.Fatal(err)
					}
					totalRounds += stats.Rounds
				}
				b.ReportMetric(float64(totalRounds)/b.Elapsed().Seconds(), "rounds/sec")
				b.ReportMetric(graphBytesPerNode, "graph-bytes/node")
			})
		}
	}
}

// batchTail is the shattering-shaped benchmark program, the round structure
// of the paper's randomized algorithms (E2/E6): almost every node decides
// locally and terminates in round one — the zero-round splitter — while a
// sparse residual (the unshattered components) keeps exchanging messages
// for a `tail`-round tail. Per-trial engine runs pay setup and per-round
// scheduling for every seed of a sweep; the batched runner pays them once,
// which is exactly what this shape exposes.
type batchTail struct {
	stop int
	acc  uint64
	send []local.Message
}

func (n *batchTail) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for _, m := range recv {
		if m != nil {
			n.acc += m.(uint64)
		}
	}
	if r >= n.stop {
		return nil, true
	}
	// Box the round's value once; per-port interface conversions would
	// allocate deg times per node per round and drown the sweep in GC.
	var x local.Message = n.acc + uint64(r)
	for p := range n.send {
		n.send[p] = x
	}
	return n.send, false
}

func batchTailFactory(tail int) local.Factory {
	return func(v local.View) local.Node {
		stop := 2 + int(v.Rand.Uint64()%2) // coordinate-and-terminate within 3 rounds
		if v.Rand.Uint64()%2048 == 0 {
			stop = tail // residual component node
		}
		return &batchTail{stop: stop, acc: uint64(v.ID), send: make([]local.Message, v.Deg)}
	}
}

// BenchmarkBatch compares a multi-seed sweep (100k nodes × 8 seeds) run the
// pre-batch way — instance and topology rebuilt and the worker-pool engine
// invoked once per trial, as the unbatched harness does — against one
// BatchRun over a shared topology. trials/sec is the headline metric; the
// batched path must stay bit-identical (pinned by the determinism and
// golden suites), so any gap is pure scheduling, setup, and allocation
// amortization. The instance rebuild and the view construction amortize on
// any machine; the merged round barriers and the residual tails only pay
// off across GOMAXPROCS workers, so the ratio grows with core count (CI's
// BENCH_batch.json artifact tracks it per runner).
func BenchmarkBatch(b *testing.B) {
	const (
		nNodes = 100_000
		nEdges = 300_000
		nSeeds = 8
		tail   = 2500
	)
	// The trial grid's instance spec is fixed (seed-independent), as the
	// batch path requires; the unbatched harness still rebuilds the instance
	// and its topology for every cell (see Grid.Run — the isolation is
	// deliberate), so the per-trial baseline pays that rebuild exactly as a
	// pre-batch sweep does.
	buildTopo := func() *local.Topology {
		return local.NewTopology(graph.RandomSparseGraph(nNodes, nEdges, prob.NewSource(9).Rand()))
	}
	mkTrial := func(seed uint64) local.Trial {
		return local.Trial{
			Factory: batchTailFactory(tail),
			Opts:    local.Options{Source: prob.NewSource(seed)},
		}
	}
	b.Run("pool-per-trial", func(b *testing.B) {
		b.ReportAllocs()
		trialCount := 0
		for i := 0; i < b.N; i++ {
			for s := 0; s < nSeeds; s++ {
				tr := mkTrial(uint64(s + 1))
				if _, err := (local.WorkerPoolEngine{}).Run(buildTopo(), tr.Factory, tr.Opts); err != nil {
					b.Fatal(err)
				}
				trialCount++
			}
		}
		b.ReportMetric(float64(trialCount)/b.Elapsed().Seconds(), "trials/sec")
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		trialCount := 0
		for i := 0; i < b.N; i++ {
			topo := buildTopo()
			trials := make([]local.Trial, nSeeds)
			for s := range trials {
				trials[s] = mkTrial(uint64(s + 1))
			}
			_, errs := local.BatchRun(topo, trials, local.BatchOptions{})
			for s, err := range errs {
				if err != nil {
					b.Fatalf("trial %d: %v", s, err)
				}
			}
			trialCount += nSeeds
		}
		b.ReportMetric(float64(trialCount)/b.Elapsed().Seconds(), "trials/sec")
	})
}

// BenchmarkEnginesColoring keeps the original end-to-end comparison: the
// full Δ+1 coloring pipeline under each engine (ablation E14's wall-clock
// counterpart).
func BenchmarkEnginesColoring(b *testing.B) {
	g := graph.RandomGraph(400, 0.05, prob.NewSource(6).Rand())
	for _, eng := range []struct {
		name string
		e    local.Engine
	}{
		{"seq", local.SequentialEngine{}},
		{"goroutine", local.GoroutineEngine{}},
		{"pool", local.WorkerPoolEngine{}},
	} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coloring.DeltaPlusOne(g, eng.e, local.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkConflictColoringScaling(b *testing.B) {
	for _, nv := range []int{128, 512} {
		b.Run(fmt.Sprintf("nv=%d", nv), func(b *testing.B) {
			inst, err := splitting.RandomInstance(nv/2, nv, 14, splitting.NewSource(uint64(nv)))
			if err != nil {
				b.Fatal(err)
			}
			conflict := inst.VPower(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coloring.DeltaPlusOne(conflict, local.SequentialEngine{}, local.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
