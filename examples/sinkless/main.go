// Sinkless orientation via weak splitting — Figure 1 of the paper, run
// forwards. A d-regular graph is encoded as a rank-2 bipartite instance
// (one constraint per node, one variable per edge, connected by the
// ID-majority rule); any weak splitting of the instance orients every edge
// so that no node is a sink. This is the reduction behind the
// Ω(log_Δ log n) lower bound of Theorem 2.10.
package main

import (
	"fmt"
	"os"

	splitting "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "sinkless: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	src := splitting.NewSource(7)
	// δ_G = 24 makes δ_B = 12 = 6·r, so the deterministic Theorem 2.7
	// algorithm solves the instance.
	g, err := splitting.RandomRegularGraph(240, 24, src)
	if err != nil {
		return err
	}
	fmt.Printf("input graph: %d nodes, %d edges, %d-regular\n", g.N(), g.M(), g.MaxDeg())

	toward, edges, err := splitting.SinklessOrientation(g, src)
	if err != nil {
		return err
	}

	outDeg := make([]int, g.N())
	for i, e := range edges {
		if toward[i] {
			outDeg[e[0]]++
		} else {
			outDeg[e[1]]++
		}
	}
	minOut, maxOut := g.N(), 0
	for _, d := range outDeg {
		if d < minOut {
			minOut = d
		}
		if d > maxOut {
			maxOut = d
		}
	}
	fmt.Printf("orientation: out-degrees in [%d, %d] — no sinks\n", minOut, maxOut)
	fmt.Println("Figure 1 pipeline: graph → rank-2 bipartite instance → weak splitting → orientation")
	return nil
}
