// Edge coloring via edge splitting — the Section 1.1 pipeline of
// Ghaffari–Su that motivated the paper's (much harder) vertex splitting
// program. Edges are recursively 2-split (each class keeps per-node degrees
// ≈ half of its parent's) and each low-degree class is colored with its own
// palette, beating the greedy 2Δ−1 bound.
package main

import (
	"fmt"
	"os"

	splitting "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgecoloring: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	src := splitting.NewSource(5)
	g, err := splitting.RandomRegularGraph(128, 64, src)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d, %d-regular, %d edges\n", g.N(), g.MaxDeg(), g.M())

	res, err := splitting.EdgeColorViaSplitting(g, splitting.NewSource(6))
	if err != nil {
		return err
	}
	fmt.Printf("edge coloring: %d colors across %d classes\n", res.Num, res.Parts)
	fmt.Printf("landmarks: Vizing floor Δ+1 = %d, sequential greedy worst case 2Δ-1 = %d\n",
		g.MaxDeg()+1, 2*g.MaxDeg()-1)
	fmt.Printf("ratio: %.3f·Δ — the 'comfortably below 2Δ' shape of [GS17]\n",
		float64(res.Num)/float64(g.MaxDeg()))
	fmt.Println()
	fmt.Println("the paper asks for the same trick on VERTICES: an efficient deterministic")
	fmt.Println("vertex splitting would give (1+o(1))Δ vertex coloring — and derandomize")
	fmt.Println("every efficient randomized LOCAL algorithm (weak splitting completeness)")
	return nil
}
