// Shattering walk-through — Section 2.4 / Theorem 1.2. The randomized weak
// splitting algorithm colors most variables with a single random round,
// leaving only small "shattered" components of unsatisfied constraints,
// each solved deterministically with n := component size. This example
// instruments every stage.
package main

import (
	"fmt"
	"os"

	splitting "repro"
	"repro/internal/core"
	"repro/internal/prob"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "shattering: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	src := prob.NewSource(21)
	b, err := splitting.RandomBiregularInstance(512, 2048, 12, splitting.NewSource(20))
	if err != nil {
		return err
	}
	fmt.Printf("instance: |U|=%d |V|=%d δ=%d r=%d (δ < 2·log n: the shattering path)\n",
		b.NU(), b.NV(), b.MinDegU(), b.Rank())

	// Stage 1: the shattering round (color w.p. 1/4+1/4, uncolor crowded
	// constraints).
	sh := core.Shatter(b, src.Fork(1))
	unsat, uncolored := 0, 0
	for _, bad := range sh.UnsatU {
		if bad {
			unsat++
		}
	}
	for _, c := range sh.Colors {
		if c == core.Uncolored {
			uncolored++
		}
	}
	fmt.Printf("after shattering: %d/%d constraints unsatisfied, %d/%d variables uncolored\n",
		unsat, b.NU(), uncolored, b.NV())

	// Stage 2: the residual graph and its components.
	h, _, _ := sh.Residual(b)
	compUs, compVs := h.ConnectedComponents()
	maxComp := 0
	for i := range compUs {
		if s := len(compUs[i]) + len(compVs[i]); s > maxComp {
			maxComp = s
		}
	}
	fmt.Printf("residual graph: %d components, largest has %d nodes (Theorem 2.8 predicts poly(r, log n))\n",
		len(compUs), maxComp)

	// Stage 3: the full Theorem 1.2 pipeline, end to end.
	res, err := splitting.Randomized(b, splitting.NewSource(22))
	if err != nil {
		return err
	}
	if err := splitting.Verify(b, res.Colors, 0); err != nil {
		return err
	}
	fmt.Printf("full pipeline: valid weak splitting in %d simulated rounds\n", res.Trace.Rounds())
	for _, note := range res.Trace.Notes {
		fmt.Printf("  note: %s\n", note)
	}
	return nil
}
