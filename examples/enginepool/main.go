// Engine pool: the same deterministic weak-splitting run under all three
// LOCAL engines. The outputs are bit-for-bit identical — per-node randomness
// is keyed by (seed, ID), never by scheduling — so the engines differ only
// in wall-clock time: the sequential engine iterates nodes in one goroutine,
// the goroutine engine spawns one goroutine per node (and collapses under
// scheduler pressure at scale), and the worker-pool engine shards the active
// nodes over GOMAXPROCS workers with reused double-buffered message arrays.
package main

import (
	"fmt"
	"os"
	"time"

	splitting "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "enginepool: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A mid-size instance: 256 constraints over 2048 variables, δ = 24 ≥
	// 2·log₂n ≈ 22.3 — the regime of Theorem 1.1.
	src := splitting.NewSource(7)
	b, err := splitting.RandomInstance(256, 2048, 24, src)
	if err != nil {
		return err
	}
	fmt.Printf("instance: |U|=%d |V|=%d δ=%d r=%d\n", b.NU(), b.NV(), b.MinDegU(), b.Rank())

	engines := []struct {
		name string
		e    splitting.Engine
	}{
		{"sequential", splitting.Sequential()},
		{"goroutine-per-node", splitting.Goroutines()},
		{"worker-pool", splitting.WorkerPool(0)},
	}
	var ref *splitting.Result
	for _, eng := range engines {
		start := time.Now()
		res, err := splitting.DeterministicOn(b, eng.e)
		if err != nil {
			return fmt.Errorf("%s: %w", eng.name, err)
		}
		if err := splitting.Verify(b, res.Colors, 0); err != nil {
			return fmt.Errorf("%s: invalid output: %w", eng.name, err)
		}
		fmt.Printf("%-20s %6d rounds  %10s wall\n",
			eng.name, res.Trace.Rounds(), time.Since(start).Round(time.Millisecond))
		if ref == nil {
			ref = res
			continue
		}
		for v := range res.Colors {
			if res.Colors[v] != ref.Colors[v] {
				return fmt.Errorf("%s: engines disagree at variable %d — determinism broken", eng.name, v)
			}
		}
	}
	fmt.Println("all engines produced bit-identical splittings")
	return nil
}
