// MIS via heavy-node elimination — Section 4.2, Lemma 4.2. The maximal
// independent set problem reduces to the splitting problem on (a subgraph
// of) the same network: repeated splitting whittles the heavy-degree
// neighborhoods down to O(log n) degrees, where an MIS is easy, and every
// such MIS eliminates a polylog fraction of the heavy nodes.
package main

import (
	"fmt"
	"os"

	splitting "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mis: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	src := splitting.NewSource(11)
	g, err := splitting.RandomRegularGraph(400, 64, src)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d, %d-regular\n", g.N(), g.MaxDeg())

	viaSplitting, err := splitting.MISViaSplitting(g, splitting.NewSource(12))
	if err != nil {
		return err
	}
	luby, err := splitting.MISLuby(g, splitting.NewSource(13))
	if err != nil {
		return err
	}

	count := func(set []bool) int {
		c := 0
		for _, in := range set {
			if in {
				c++
			}
		}
		return c
	}
	fmt.Printf("heavy-node elimination (Lemma 4.2): |MIS| = %d, %d accounted rounds\n",
		count(viaSplitting.InSet), viaSplitting.Trace.Rounds())
	fmt.Printf("Luby baseline:                      |MIS| = %d, %d rounds\n",
		count(luby.InSet), luby.Trace.Rounds())
	fmt.Printf("Lemma 4.3 floor n/(Δ+1) = %d\n", g.N()/(g.MaxDeg()+1))
	return nil
}
