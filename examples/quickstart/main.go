// Quickstart: generate a random weak splitting instance, solve it with the
// paper's main deterministic algorithm (Theorem 1.1/2.5), and verify.
package main

import (
	"fmt"
	"os"

	splitting "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// An instance B = (U ∪ V, E): 80 constraints over 160 variables, every
	// constraint watching 18 variables. n = 240, so δ = 18 ≥ 2·log₂n ≈ 15.8
	// — the regime of Theorem 1.1.
	src := splitting.NewSource(42)
	b, err := splitting.RandomInstance(80, 160, 18, src)
	if err != nil {
		return err
	}
	fmt.Printf("instance: |U|=%d |V|=%d δ=%d r=%d\n", b.NU(), b.NV(), b.MinDegU(), b.Rank())

	// Deterministic weak splitting: every constraint must end up with at
	// least one red and one blue variable.
	res, err := splitting.Deterministic(b)
	if err != nil {
		return err
	}
	if err := splitting.Verify(b, res.Colors, 0); err != nil {
		return err
	}

	red := 0
	for _, c := range res.Colors {
		if c == splitting.Red {
			red++
		}
	}
	fmt.Printf("valid weak splitting: %d red, %d blue\n", red, len(res.Colors)-red)
	fmt.Printf("simulated LOCAL rounds: %d\n", res.Trace.Rounds())
	for _, p := range res.Trace.Phases {
		fmt.Printf("  phase %-30s %6d rounds\n", p.Name, p.Rounds)
	}

	// The zero-round randomized baseline solves the same instance without
	// any communication (Section 2.1) — the gap between these two is the
	// whole point of the paper.
	triv, err := splitting.TrivialRandomized(b, src)
	if err != nil {
		return err
	}
	fmt.Printf("randomized baseline: %d rounds (verified)\n", triv.Trace.Rounds())
	return nil
}
