// Coloring via splitting — Lemma 4.1. A graph of maximum degree Δ is
// recursively divided by the uniform splitting algorithm until every part
// has small degree, and the parts are colored with disjoint palettes. The
// paper's ε = 1/log²n yields (1+o(1))Δ colors; with a finite ε the palette
// tracks (1+2ε)^levels·Δ, which this example prints for several ε.
package main

import (
	"fmt"
	"os"

	splitting "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "coloring: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	src := splitting.NewSource(3)
	g := splitting.RandomGraphGNP(1024, 0.5, src)
	fmt.Printf("graph: n=%d Δ=%d\n", g.N(), g.MaxDeg())
	fmt.Println("greedy sequential baseline would need up to Δ+1 =", g.MaxDeg()+1, "colors")

	for _, eps := range []float64{0.3, 0.25} {
		res, err := splitting.ColorViaSplitting(g, eps, splitting.NewSource(uint64(eps*100)))
		if err != nil {
			return err
		}
		ratio := float64(res.Num) / float64(g.MaxDeg())
		fmt.Printf("ε=%.2f: %4d parts, %5d colors (%.3f·Δ)\n", eps, res.Parts, res.Num, ratio)
	}
	fmt.Println("palette ≈ (1+2ε)^levels·Δ; ε also sets the constraint threshold, so levels")
	fmt.Println("and ε trade off — the paper's asymptotic ε=1/log²n drives the ratio to 1+o(1)")
	return nil
}
