// Command wsplitd serves weak-splitting sweeps over HTTP: a bounded job
// queue in front of a worker pool running the same generator/algorithm
// registry as wsplit, with an LRU cache of built instances shared across
// jobs.
//
// Usage:
//
//	wsplitd -addr 127.0.0.1:8080 -queue 64 -workers 4 -cache 64 -drain 30s
//
// Endpoints (JSON everywhere):
//
//	POST   /v1/sweeps       submit a sweep spec; 202 with the job status,
//	                        400 on an invalid spec, 429 with Retry-After
//	                        when the queue is full or the server drains
//	                        (retryable: back off and resubmit)
//	GET    /v1/sweeps       list all jobs, newest first
//	GET    /v1/sweeps/{id}  one job's status; trial results once terminal
//	DELETE /v1/sweeps/{id}  cancel: queued jobs retire unrun, running jobs
//	                        stop at their next LOCAL round boundary
//	GET    /healthz         liveness (always 200 while the process serves)
//	GET    /readyz          readiness: server stats, 503 once draining
//
// On SIGTERM or SIGINT the listener stops accepting connections and the
// service drains: queued and running jobs get -drain to finish, then are
// cancelled at round boundaries. Either way every job reaches a terminal
// state and the process exits 0. A second signal terminates immediately
// with the Go runtime's default signal exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		queue   = flag.Int("queue", 64, "job queue capacity; submissions beyond it get 429")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", 64, "instance cache capacity in entries")
		drain   = flag.Duration("drain", 30*time.Second, "shutdown budget before remaining jobs are cancelled")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "wsplitd: unexpected arguments %q\n", flag.Args())
		return 2
	}

	svc := service.New(service.Options{QueueCap: *queue, Workers: *workers, CacheCap: *cache})
	httpSrv := &http.Server{Handler: newMux(svc)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsplitd: %v\n", err)
		return 1
	}
	st := svc.Stats()
	fmt.Printf("wsplitd: listening on %s (queue %d, workers %d)\n", ln.Addr(), st.QueueCap, st.Workers)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		svc.Close()
		fmt.Fprintf(os.Stderr, "wsplitd: serve: %v\n", err)
		return 1
	case <-sigCtx.Done():
	}
	// Restore default signal handling: a second SIGTERM/SIGINT during the
	// drain terminates immediately instead of being swallowed.
	stop()
	fmt.Println("wsplitd: signal received, draining")

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "wsplitd: http shutdown: %v\n", err)
	}
	if err := svc.Drain(dctx); err != nil {
		// Deadline expired: jobs were cancelled at round boundaries. Still a
		// clean exit — every job is terminal and the workers are gone.
		fmt.Fprintf(os.Stderr, "wsplitd: %v\n", err)
	}
	fmt.Println("wsplitd: drained")
	return 0
}

// newMux wires the service into the HTTP surface. Split out of run so the
// handler tests drive the exact production routing.
func newMux(svc *service.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var spec service.SweepSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		st, err := svc.Submit(spec)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, st)
		case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrDraining):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
	})
	mux.HandleFunc("GET /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.List())
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := svc.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := svc.Cancel(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		st := svc.Stats()
		code := http.StatusOK
		if st.Draining {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, st)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing to do but note it for the operator.
		fmt.Fprintf(os.Stderr, "wsplitd: encoding response: %v\n", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
