package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

func newTestServer(t *testing.T, opts service.Options) (*service.Server, *httptest.Server) {
	t.Helper()
	svc := service.New(opts)
	ts := httptest.NewServer(newMux(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (*http.Response, service.JobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

const smallSweep = `{"gen":"star","d":16,"algos":["trivial"],"seed":1,"trials":2}`

func TestSubmitGetLifecycle(t *testing.T) {
	_, ts := newTestServer(t, service.Options{QueueCap: 4, Workers: 2})

	resp, st := submit(t, ts, smallSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.State != service.StateQueued {
		t.Fatalf("unexpected accepted status %+v", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	var got service.JobStatus
	for {
		if code := getJSON(t, ts, "/v1/sweeps/"+st.ID, &got); code != http.StatusOK {
			t.Fatalf("get status = %d, want 200", code)
		}
		if got.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got.State != service.StateDone || len(got.Trials) != 2 {
		t.Fatalf("terminal status %+v, want done with 2 trials", got)
	}

	var list []service.JobStatus
	if code := getJSON(t, ts, "/v1/sweeps", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list: code %d, %d jobs, want 200 with 1", code, len(list))
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, service.Options{QueueCap: 4, Workers: 1})
	for _, body := range []string{
		`{not json`,
		`{"gen":"star","d":16,"algos":["trivial"],"bogus":1}`, // unknown field
		`{"gen":"nope","d":16,"algos":["trivial"]}`,           // unknown generator
		`{"gen":"star","d":16,"algos":["nope"]}`,              // unknown algorithm
	} {
		resp, _ := submit(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit(%s) status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestQueueFullGives429(t *testing.T) {
	const q = 2
	_, ts := newTestServer(t, service.Options{QueueCap: q, Workers: 1})
	// A long job pins the lone worker so subsequent submissions queue.
	blocker := `{"gen":"leftregular","nu":200,"nv":800,"d":16,"algos":["det"],"seed":1,"trials":4096}`
	resp, bst := submit(t, ts, blocker)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st service.JobStatus
		getJSON(t, ts, "/v1/sweeps/"+bst.ID, &st)
		if st.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never ran (state %s)", st.State)
		}
		time.Sleep(time.Millisecond)
	}

	accepted, rejected := 0, 0
	for i := 0; i < 4*q; i++ {
		resp, _ := submit(t, ts, smallSweep)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			rejected++
		default:
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
	}
	if accepted != q || rejected != 3*q {
		t.Fatalf("accepted %d rejected %d, want %d and %d", accepted, rejected, q, 3*q)
	}

	// DELETE cancels the blocker; it retires at a round boundary.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+bst.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", dresp.StatusCode)
	}
	for {
		var st service.JobStatus
		getJSON(t, ts, "/v1/sweeps/"+bst.ID, &st)
		if st.State.Terminal() {
			if st.State != service.StateCancelled {
				t.Fatalf("blocker state = %s, want cancelled", st.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never cancelled")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, service.Options{QueueCap: 2, Workers: 1})
	if code := getJSON(t, ts, "/v1/sweeps/sweep-999", nil); code != http.StatusNotFound {
		t.Fatalf("get unknown = %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/sweep-999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown = %d, want 404", resp.StatusCode)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	svc, ts := newTestServer(t, service.Options{QueueCap: 2, Workers: 1})
	if code := getJSON(t, ts, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var st service.Stats
	if code := getJSON(t, ts, "/readyz", &st); code != http.StatusOK {
		t.Fatalf("readyz = %d", code)
	}
	if st.QueueCap != 2 || st.Workers != 1 || st.Draining {
		t.Fatalf("readyz stats %+v", st)
	}

	svc.Close() // drains: readyz flips to 503, submissions to 429
	if code := getJSON(t, ts, "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", code)
	}
	resp, _ := submit(t, ts, smallSweep)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit while draining = %d, want 429", resp.StatusCode)
	}
}
