package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConvertEdgeList(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "g.txt", "# triangle, both arc directions\n0 1\n1 0\n1 2\n2 1\n2 0\n0 2\n")
	out := filepath.Join(dir, "g.csr")

	// A raw SNAP export needs the dedup policy; strict mode must refuse it.
	if code := convert(in, out, "auto", graph.EdgeListOptions{}); code == 0 {
		t.Fatal("duplicate arcs accepted without -drop-duplicates")
	}
	if _, err := os.Stat(out); err == nil {
		t.Fatal("failed conversion left a partial output file behind")
	}
	if code := convert(in, out, "auto", graph.EdgeListOptions{DropDuplicates: true}); code != 0 {
		t.Fatalf("convert exited %d", code)
	}
	g, err := graph.ReadSnapshot(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("packed graph shape wrong: n=%d m=%d", g.N(), g.M())
	}
}

func TestConvertInstance(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "inst.txt", "2 3\n0 0\n0 1\n1 1\n1 2\n")
	out := filepath.Join(dir, "inst.csr")
	if code := convert(in, out, "auto", graph.EdgeListOptions{}); code != 0 {
		t.Fatalf("convert exited %d", code)
	}
	b, err := graph.ReadBipartiteSnapshot(out)
	if err != nil {
		t.Fatal(err)
	}
	if b.NU() != 2 || b.NV() != 3 || b.M() != 4 {
		t.Fatalf("packed instance shape wrong: NU=%d NV=%d M=%d", b.NU(), b.NV(), b.M())
	}
	// The packed snapshot round-trips through the wsplit -graph dispatcher.
	if b, err = graph.ReadBipartiteFile(out); err != nil || b.M() != 4 {
		t.Fatalf("dispatcher cannot load the packed file: %v", err)
	}
}

func TestConvertForcedFormat(t *testing.T) {
	dir := t.TempDir()
	// Headerless edge list: auto-detection would read it as instance text
	// ("2 3" header), so -format edgelist is the only correct route.
	in := write(t, dir, "bare.txt", "2 3\n3 4\n4 2\n")
	out := filepath.Join(dir, "bare.csr")
	if code := convert(in, out, "edgelist", graph.EdgeListOptions{}); code != 0 {
		t.Fatalf("convert exited %d", code)
	}
	g, err := graph.ReadSnapshot(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("forced edgelist shape wrong: n=%d m=%d", g.N(), g.M())
	}

	if code := convert(in, filepath.Join(dir, "x.csr"), "nope", graph.EdgeListOptions{}); code == 0 {
		t.Error("unknown -format accepted")
	}
	// Policy flags are edge-list-only.
	inst := write(t, dir, "inst.txt", "1 1\n0 0\n")
	if code := convert(inst, filepath.Join(dir, "y.csr"), "instance", graph.EdgeListOptions{DropSelfLoops: true}); code == 0 {
		t.Error("drop policies accepted for instance input")
	}
}

func TestRunInfo(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "g.txt", "# graph\n0 1\n")
	out := filepath.Join(dir, "g.csr")
	if code := convert(in, out, "auto", graph.EdgeListOptions{}); code != 0 {
		t.Fatal("convert failed")
	}
	if code := runInfo(out); code != 0 {
		t.Errorf("runInfo on a valid snapshot exited %d", code)
	}
	if code := runInfo(in); code == 0 {
		t.Error("runInfo on a text file must fail")
	}
	if code := runInfo(filepath.Join(dir, "missing.csr")); code == 0 {
		t.Error("runInfo on a missing file must fail")
	}
	// Converting an already-packed snapshot is refused, not double-packed.
	if code := convert(out, filepath.Join(dir, "z.csr"), "auto", graph.EdgeListOptions{}); code == 0 {
		t.Error("re-packing a snapshot accepted")
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestRunInfoEdgeCounts pins the printed edge counts: a graph snapshot
// stores two arcs per edge, a bipartite side one arc per edge — halving
// the bipartite count too is the bug this guards against.
func TestRunInfoEdgeCounts(t *testing.T) {
	dir := t.TempDir()

	gin := write(t, dir, "g.txt", "# path with 3 edges\n0 1\n1 2\n2 3\n")
	gout := filepath.Join(dir, "g.csr")
	if code := convert(gin, gout, "auto", graph.EdgeListOptions{}); code != 0 {
		t.Fatal("graph convert failed")
	}
	if got := captureStdout(t, func() { runInfo(gout) }); !strings.Contains(got, "edges: 3 (arcs: 6)") {
		t.Errorf("graph info reports wrong counts:\n%s", got)
	}

	bin := write(t, dir, "b.txt", "2 3\n0 0\n0 1\n1 2\n")
	bout := filepath.Join(dir, "b.csr")
	if code := convert(bin, bout, "auto", graph.EdgeListOptions{}); code != 0 {
		t.Fatal("instance convert failed")
	}
	if got := captureStdout(t, func() { runInfo(bout) }); !strings.Contains(got, "edges: 3") {
		t.Errorf("bipartite info reports wrong edge count:\n%s", got)
	}
}
