// Command csrpack converts text graph files into the binary CSR snapshot
// format (DESIGN.md §"CSR snapshot format") and inspects existing
// snapshots. Snapshots load with no O(m) rebuild — the payload arrays are
// checksummed and validated in place — so packing once pays off on every
// subsequent wsplit/splitbench run over a large graph.
//
// Usage:
//
//	csrpack -o web-Stanford.csr web-Stanford.txt
//	csrpack -format edgelist -drop-self-loops -drop-duplicates -o g.csr g.txt
//	csrpack -info web-Stanford.csr
//
// Input formats:
//
//   - SNAP-style edge list ("# ..."/"% ..." comments, "u v" or adjacency
//     "u v1 v2 ..." lines, arbitrary integer node IDs) → graph snapshot.
//     Node IDs are remapped to dense 0-based indices in first-seen order.
//   - Splitting-instance text (header "nu nv", then "u v" edges, 0-based)
//     → bipartite snapshot.
//
// -format auto (the default) uses the same detection rule as wsplit -graph:
// a first non-blank line starting with '#' or '%' means edge list,
// otherwise instance text. Headerless edge lists need -format edgelist.
//
// -drop-self-loops and -drop-duplicates apply to edge-list input only; by
// default both are rejected with a descriptive error (real SNAP exports
// that list both arc directions of every edge need -drop-duplicates).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/graph"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out       = flag.String("o", "", "write the snapshot to this file")
		info      = flag.Bool("info", false, "print snapshot header/section stats instead of converting")
		format    = flag.String("format", "auto", "input format: auto|edgelist|instance")
		dropLoops = flag.Bool("drop-self-loops", false, "edge lists: drop u-u edges instead of rejecting the file")
		dropDups  = flag.Bool("drop-duplicates", false, "edge lists: drop repeated edges instead of rejecting the file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "csrpack: exactly one input file expected; run csrpack -h for usage\n")
		return 2
	}
	in := flag.Arg(0)

	if *info {
		if *out != "" || *dropLoops || *dropDups || *format != "auto" {
			fmt.Fprintf(os.Stderr, "csrpack: -info only inspects; drop the conversion flags\n")
			return 2
		}
		return runInfo(in)
	}
	if *out == "" {
		fmt.Fprintf(os.Stderr, "csrpack: -o OUT required (or -info to inspect a snapshot)\n")
		return 2
	}
	return convert(in, *out, *format, graph.EdgeListOptions{DropSelfLoops: *dropLoops, DropDuplicates: *dropDups})
}

func runInfo(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csrpack: %v\n", err)
		return 2
	}
	st, err := graph.StatSnapshot(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csrpack: %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("%s: CSR snapshot v%d, %s\n", path, st.Version, st.Kind)
	switch st.Kind {
	case "graph":
		// Arcs counts both directions of every undirected edge.
		fmt.Printf("  nodes: %d\n  edges: %d (arcs: %d)\n", st.N, st.Arcs/2, st.Arcs)
	default:
		// A bipartite side stores one arc per edge, so Arcs is already m.
		fmt.Printf("  left nodes:  %d\n  right nodes: %d\n  edges: %d\n", st.NU, st.NV, st.Arcs)
	}
	fmt.Printf("  file bytes: %d\n", len(data))
	return 0
}

func convert(in, out, format string, opt graph.EdgeListOptions) int {
	asEdgeList := false
	switch format {
	case "edgelist":
		asEdgeList = true
	case "instance":
	case "auto":
		data, err := os.ReadFile(in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csrpack: %v\n", err)
			return 2
		}
		if graph.IsSnapshot(data) {
			fmt.Fprintf(os.Stderr, "csrpack: %s is already a CSR snapshot (use -info to inspect it)\n", in)
			return 1
		}
		asEdgeList = graph.TextLooksLikeEdgeList(data)
	default:
		fmt.Fprintf(os.Stderr, "csrpack: unknown -format %q (have auto, edgelist, instance)\n", format)
		return 2
	}
	if !asEdgeList && (opt.DropSelfLoops || opt.DropDuplicates) {
		fmt.Fprintf(os.Stderr, "csrpack: -drop-self-loops/-drop-duplicates apply to edge lists only; instance text is already canonical\n")
		return 2
	}

	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csrpack: %v\n", err)
		return 2
	}
	// A half-written snapshot would fail its checksum on load but still sit
	// on disk looking like a finished pack: on SIGINT/SIGTERM remove the
	// partial output before dying (exit 130, the interrupt convention).
	sigs := make(chan os.Signal, 1)
	stop := make(chan struct{})
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-sigs:
			f.Close()
			os.Remove(out)
			fmt.Fprintf(os.Stderr, "csrpack: interrupted, removed partial %s\n", out)
			os.Exit(130)
		case <-stop:
		}
	}()
	defer func() {
		signal.Stop(sigs)
		close(stop)
	}()
	var export error
	var summary string
	if asEdgeList {
		g, ids, err := graph.ReadEdgeList(in, opt)
		if err != nil {
			f.Close()
			os.Remove(out)
			fmt.Fprintf(os.Stderr, "csrpack: %v\n", err)
			return 1
		}
		export = g.ExportSnapshot(f)
		summary = fmt.Sprintf("graph snapshot: %d nodes (remapped from %d external IDs), %d edges", g.N(), len(ids), g.M())
	} else {
		b, err := graph.ReadInstance(in)
		if err != nil {
			f.Close()
			os.Remove(out)
			fmt.Fprintf(os.Stderr, "csrpack: %v\n", err)
			return 1
		}
		export = b.ExportSnapshot(f)
		summary = fmt.Sprintf("bipartite snapshot: |U|=%d |V|=%d, %d edges", b.NU(), b.NV(), b.M())
	}
	if export == nil {
		export = f.Close()
	} else {
		f.Close()
	}
	if export != nil {
		os.Remove(out)
		fmt.Fprintf(os.Stderr, "csrpack: writing %s: %v\n", out, export)
		return 1
	}
	fmt.Printf("%s → %s (%s)\n", in, out, summary)
	return 0
}
