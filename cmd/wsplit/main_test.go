package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/check"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// TestBuildInstanceFromFile pins that the -graph path routes through the
// graph package's format dispatcher: instance text and binary snapshots
// both load, and malformed files surface the parser's descriptive error.
func TestBuildInstanceFromFile(t *testing.T) {
	dir := t.TempDir()
	src := prob.NewSource(1)

	path := filepath.Join(dir, "inst.txt")
	if err := os.WriteFile(path, []byte("2 3\n0 0\n0 1\n1 1\n1 2\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := buildInstance("leftregular", path, 64, 128, 16, src)
	if err != nil {
		t.Fatal(err)
	}
	if b.NU() != 2 || b.NV() != 3 || b.M() != 4 {
		t.Fatalf("parsed sizes wrong: NU=%d NV=%d M=%d", b.NU(), b.NV(), b.M())
	}

	snapPath := filepath.Join(dir, "inst.csr")
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ExportSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if b, err = buildInstance("", snapPath, 0, 0, 0, src); err != nil || b.NU() != 2 || b.NV() != 3 {
		t.Fatalf("snapshot load through -graph failed: %v", err)
	}

	for name, content := range map[string]string{
		"empty.txt":     "",
		"badhdr.txt":    "x y\n",
		"badedge.txt":   "2 2\n0 z\n",
		"oorange.txt":   "2 2\n0 5\n",
		"truncated.csr": "CSRSNAP1\x01\x02\x03",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := buildInstance("", path, 0, 0, 0, src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
	if _, err := buildInstance("", filepath.Join(dir, "missing.txt"), 0, 0, 0, src); err == nil {
		t.Error("missing file should error")
	}
}

func TestBuildInstanceGenerators(t *testing.T) {
	src := prob.NewSource(1)
	for _, gen := range []string{"leftregular", "biregular", "girth10"} {
		b, err := buildInstance(gen, "", 16, 64, 8, src)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if b.NU() == 0 || b.NV() == 0 {
			t.Fatalf("%s: empty instance", gen)
		}
	}
	if b, err := buildInstance("tree", "", 0, 0, 4, src); err != nil || b.MinDegU() < 4 {
		t.Errorf("tree generator wrong: %v", err)
	}
	if b, err := buildInstance("star", "", 0, 0, 8, src); err != nil || b.Rank() != 2 {
		t.Errorf("star generator wrong: %v", err)
	}
	if _, err := buildInstance("nope", "", 1, 1, 1, src); err == nil {
		t.Error("unknown generator should error")
	}
}

func TestSolveDispatch(t *testing.T) {
	src := prob.NewSource(2)
	b, err := buildInstance("leftregular", "", 40, 80, 16, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []local.Engine{local.SequentialEngine{}, local.WorkerPoolEngine{}} {
		for _, algo := range []string{"det", "trivial", "ref"} {
			res, err := solve(algo, b, src.Fork(1), eng)
			if err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			if err := check.WeakSplit(b, res.Colors, 0); err != nil {
				t.Fatalf("%s: invalid output: %v", algo, err)
			}
		}
	}
	if _, err := solve("nope", b, src, nil); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestSolveEngineIndependence(t *testing.T) {
	src := prob.NewSource(5)
	b, err := buildInstance("leftregular", "", 32, 96, 16, src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := solve("det", b, src.Fork(1), local.SequentialEngine{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []local.Engine{local.GoroutineEngine{}, local.WorkerPoolEngine{Workers: 3}} {
		res, err := solve("det", b, src.Fork(1), eng)
		if err != nil {
			t.Fatalf("%T: %v", eng, err)
		}
		if res.Trace.Rounds() != ref.Trace.Rounds() {
			t.Errorf("%T: rounds %d != %d", eng, res.Trace.Rounds(), ref.Trace.Rounds())
		}
		for v := range res.Colors {
			if res.Colors[v] != ref.Colors[v] {
				t.Fatalf("%T: color differs at variable %d", eng, v)
			}
		}
	}
}

func TestValidateFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name    string
		set     map[string]bool
		sweep   bool
		engine  string
		gen, in string
		batch   bool
		plane   local.Plane
		faults  local.FaultPlan
		wantErr bool
	}{
		{"defaults", set(), false, "seq", "leftregular", "", false, local.PlaneAuto, local.FaultPlan{}, false},
		{"workers+seq+single", set("workers"), false, "seq", "leftregular", "", false, local.PlaneAuto, local.FaultPlan{}, true},
		{"workers+goroutine+single", set("workers"), false, "goroutine", "leftregular", "", false, local.PlaneAuto, local.FaultPlan{}, true},
		{"workers+pool+single", set("workers"), false, "pool", "leftregular", "", false, local.PlaneAuto, local.FaultPlan{}, false},
		{"workers+batch-engine+single", set("workers"), false, "batch", "leftregular", "", false, local.PlaneAuto, local.FaultPlan{}, false},
		{"workers+seq+sweep", set("workers"), true, "seq", "leftregular", "", false, local.PlaneAuto, local.FaultPlan{}, false},
		{"batch+single", set("batch"), false, "seq", "star", "", true, local.PlaneAuto, local.FaultPlan{}, true},
		{"batch+sweep+random-gen", set("batch"), true, "seq", "leftregular", "", true, local.PlaneAuto, local.FaultPlan{}, true},
		{"batch+sweep+star", set("batch"), true, "seq", "star", "", true, local.PlaneAuto, local.FaultPlan{}, false},
		{"batch+sweep+tree", set("batch"), true, "seq", "tree", "", true, local.PlaneAuto, local.FaultPlan{}, false},
		{"batch+sweep+file", set("batch"), true, "seq", "leftregular", "inst.txt", true, local.PlaneAuto, local.FaultPlan{}, false},
		{"plane+single", set("plane"), false, "seq", "leftregular", "", false, local.PlaneBit, local.FaultPlan{}, false},
		{"plane+batch", set("plane", "batch"), true, "seq", "star", "", true, local.PlaneWord, local.FaultPlan{}, true},
		{"graph-alone", set("graph"), false, "seq", "leftregular", "inst.txt", false, local.PlaneAuto, local.FaultPlan{}, false},
		{"graph+gen", set("graph", "gen"), false, "seq", "tree", "inst.txt", false, local.PlaneAuto, local.FaultPlan{}, true},
		{"graph+nu", set("graph", "nu"), false, "seq", "leftregular", "inst.txt", false, local.PlaneAuto, local.FaultPlan{}, true},
		{"graph+nv", set("in", "nv"), false, "seq", "leftregular", "inst.txt", false, local.PlaneAuto, local.FaultPlan{}, true},
		{"graph+d", set("graph", "d"), false, "seq", "leftregular", "inst.txt", false, local.PlaneAuto, local.FaultPlan{}, true},
		{"gen-knobs-no-graph", set("gen", "nu", "nv", "d"), false, "seq", "biregular", "", false, local.PlaneAuto, local.FaultPlan{}, false},
		{"faults+single", set("drop"), false, "seq", "leftregular", "", false, local.PlaneAuto, local.FaultPlan{Seed: 1, Drop: 0.1}, false},
		{"faults+sweep", set("crash"), true, "seq", "leftregular", "", false, local.PlaneAuto, local.FaultPlan{Seed: 1, Crash: 0.01}, false},
		{"faults+batch", set("drop", "batch"), true, "seq", "star", "", true, local.PlaneAuto, local.FaultPlan{Seed: 1, Drop: 0.1}, true},
		{"delay-without-drop", set("delay"), false, "seq", "leftregular", "", false, local.PlaneAuto, local.FaultPlan{Seed: 1, Delay: 2}, true},
		{"faultseed-without-plan", set("faultseed"), false, "seq", "leftregular", "", false, local.PlaneAuto, local.FaultPlan{Seed: 9}, true},
		{"drop-out-of-range", set("drop"), false, "seq", "leftregular", "", false, local.PlaneAuto, local.FaultPlan{Seed: 1, Drop: 1.5}, true},
	}
	for _, tc := range cases {
		err := validateFlags(tc.set, tc.sweep, tc.engine, tc.gen, tc.in, tc.batch, tc.plane, tc.faults)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: got err %v, wantErr=%t", tc.name, err, tc.wantErr)
		}
	}
}

// TestBatchedSweepMatchesUnbatched runs the sweep grid exactly as the
// -batch CLI path does and pins it against the unbatched sweep.
func TestBatchedSweepMatchesUnbatched(t *testing.T) {
	algos := []string{"trivial", "sixr"}
	seeds := []uint64{1, 2, 3}
	build := func(batch bool) []experiments.TrialResult {
		var specs []experiments.AlgoSpec
		for _, name := range algos {
			spec, ok := experiments.AlgoSpecFor(name)
			if !ok {
				t.Fatalf("unknown algorithm %q", name)
			}
			specs = append(specs, spec)
		}
		return experiments.Grid{
			Graphs: []experiments.GraphSpec{{
				Name:  "tree",
				Build: func(src *prob.Source) (*graph.Bipartite, error) { return buildInstance("tree", "", 0, 0, 12, src) },
				Fixed: fixedInstance("tree", ""),
			}},
			Algos:  specs,
			Seeds:  seeds,
			Engine: local.SequentialEngine{},
			Batch:  batch,
		}.Run()
	}
	ref := build(false)
	got := build(true)
	if len(got) != len(ref) || len(ref) != len(algos)*len(seeds) {
		t.Fatalf("trial counts differ: %d vs %d", len(got), len(ref))
	}
	for i := range got {
		g, r := got[i], ref[i]
		g.Elapsed, r.Elapsed = 0, 0
		if g != r {
			t.Fatalf("batched sweep trial %d differs:\n got %+v\nwant %+v", i, g, r)
		}
	}
}

func TestKnownAlgo(t *testing.T) {
	for _, a := range []string{"det", "rand", "sixr", "trivial", "ref", "hg-det", "hg-rand"} {
		if !knownAlgo(a) {
			t.Errorf("%s should be known", a)
		}
	}
	if knownAlgo("nope") || knownAlgo("") {
		t.Error("unknown algorithms must be rejected before the sweep starts")
	}
}
