// Command wsplit solves weak splitting instances from the command line:
// generate a random instance (or read one from a file) and run a chosen
// algorithm from the paper, printing the verification verdict and the
// simulated LOCAL round breakdown.
//
// Usage:
//
//	wsplit -gen biregular -nu 128 -nv 512 -d 12 -algo rand
//	wsplit -graph instance.txt -algo det
//	wsplit -graph web-Stanford.csr -algo det
//	wsplit -gen leftregular -algo det,rand -trials 8 -workers 4 -format csv
//
// -graph reads the instance from a file instead of generating one (-in is a
// kept-for-compatibility alias). Three formats are auto-detected: a binary
// CSR snapshot (written by csrpack or ExportSnapshot; a graph snapshot is
// converted through the Section 1.2 splitting-instance encoding), a
// SNAP-style edge list (first non-blank line starts with '#' or '%'), and
// the instance text format — a header line "nu nv" followed by one "u v"
// edge per line (0-based indices; u is a constraint, v a variable).
// Combining -graph with an explicitly set -gen, -nu, -nv or -d is rejected:
// the file fixes the instance, so those generator knobs would be silently
// ignored.
//
// -engine selects the LOCAL simulation engine (seq|goroutine|pool|batch);
// engines are observationally identical, so it only changes wall-clock time.
// With -engine=pool or -engine=batch, -workers also sizes the engine's
// worker pool; passing -workers with any other engine outside a sweep is an
// error rather than silently ignored.
//
// -plane pins the message-plane representation (auto|boxed|word|bit) the
// engine uses; planes are observationally identical, so this is the knob
// for plane ablations. Forcing a plane the chosen algorithm's programs
// cannot take fails loudly instead of silently falling back, and -plane
// with -batch is rejected (the batched solvers do not route through the
// plane-forced engine).
//
// -tune sets the engines' cache-tuning knobs — sticky shard affinity,
// scatter prefetch, fused broadcast scatter, tiled rounds — as a
// comma-separated list of "noprefetch", "prefetch=N", "nosticky",
// "nofuse", "notile", "tile=R" and "tilebudget=W" tokens. Knobs change
// wall-clock time only; results are bit-identical. The batched solvers of
// -batch run with default knobs.
//
// With -trials N > 1 (or several comma-separated algorithms), wsplit fans
// the (algorithm, seed) grid over a bounded worker pool — seeds seed,
// seed+1, ..., seed+N-1 — and reports one line per trial in a fixed order
// regardless of scheduling. -format text|csv|json selects the report shape.
//
// -batch routes a sweep through the batched multi-seed trial path: the
// instance is built once and shared by all seeds, and algorithms with a
// batched solver (currently "trivial") run every seed in one pass. Trial
// results are bit-identical to an unbatched sweep. It requires a
// seed-independent instance (-gen tree|star or -graph FILE) and a sweep; any
// other combination is rejected.
//
// -drop, -delay, -crash and -faultseed inject deterministic faults (message
// drops, bounded redelivery delay, crash-stop failures) into every LOCAL
// phase of the run, keyed by -faultseed independently of -seed; the same
// plan replays bit-identically on every engine, plane and worker count.
// The paper's solvers self-check, so under faults expect failed runs — the
// point of the knob is to observe exactly how they fail (the splitbench
// experiment EF grades degradation systematically). -delay and -faultseed
// only modulate an active plan, so they require -drop or -crash; -batch
// rejects fault flags (the batched solvers run through BatchRun directly
// and would ignore the fault-wrapped engine).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		gen     = flag.String("gen", "leftregular", "generator: leftregular|biregular|powerlaw|tree|star|girth10")
		graphF  = flag.String("graph", "", "read the instance from this file (CSR snapshot, SNAP edge list, or instance text) instead of generating")
		in      = flag.String("in", "", "alias of -graph (kept for compatibility)")
		nu      = flag.Int("nu", 64, "number of constraint (left) nodes")
		nv      = flag.Int("nv", 128, "number of variable (right) nodes")
		d       = flag.Int("d", 16, "left degree")
		algo    = flag.String("algo", "det", "comma-separated algorithms: det|rand|sixr|trivial|ref|hg-det|hg-rand")
		seed    = flag.Uint64("seed", 1, "randomness seed (first seed of a -trials sweep)")
		engine  = flag.String("engine", "seq", "LOCAL engine: seq|goroutine|pool|batch")
		plane   = flag.String("plane", "auto", "message plane: auto|boxed|word|bit (forced planes fail loudly on incapable algorithms)")
		tuneF   = flag.String("tune", "", "cache tuning knobs: noprefetch|prefetch=N|nosticky|nofuse|notile|tile=R|tilebudget=W, comma-separated (default: all mechanisms on)")
		workers = flag.Int("workers", 0, "trial/engine pool size (0 = GOMAXPROCS)")
		trials  = flag.Int("trials", 1, "number of seeds to sweep (seed..seed+N-1)")
		format  = flag.String("format", "text", "trial report format: text|csv|json")
		batch   = flag.Bool("batch", false, "run the sweep through the batched multi-seed trial path (needs -gen tree|star or -graph)")
		drop    = flag.Float64("drop", 0, "fault injection: per-message drop probability in [0,1]")
		delay   = flag.Int("delay", 0, "fault injection: dropped messages are redelivered up to N rounds late instead of lost (needs -drop)")
		crash   = flag.Float64("crash", 0, "fault injection: per-node per-round crash-stop probability in [0,1]")
		fseed   = flag.Uint64("faultseed", 1, "fault stream seed, independent of -seed (needs -drop or -crash)")
	)
	flag.Parse()
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	// -in is an alias of -graph; merge them before validation so the rest of
	// the program sees a single instance-file path.
	if *in != "" {
		if *graphF != "" && *graphF != *in {
			fmt.Fprintf(os.Stderr, "wsplit: -graph %s and -in %s name different files; -in is an alias of -graph, pass one\n", *graphF, *in)
			return 2
		}
		*graphF = *in
	}

	eng, err := local.ParseEngine(*engine, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsplit: %v\n", err)
		return 2
	}
	pl, err := local.ParsePlane(*plane)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsplit: %v\n", err)
		return 2
	}
	eng = local.ForcePlane(eng, pl)
	tn, err := local.ParseTuning(*tuneF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsplit: %v\n", err)
		return 2
	}
	eng = local.ForceTuning(eng, tn)
	algos := strings.Split(*algo, ",")
	for i, a := range algos {
		algos[i] = strings.TrimSpace(a)
	}
	// Anything beyond a single text-mode run goes through the sweep harness,
	// so -format behaves identically with and without -trials.
	sweep := *trials > 1 || len(algos) > 1 || *format != "text"
	faults := local.FaultPlan{Seed: *fseed, Drop: *drop, Delay: *delay, Crash: *crash}
	if err := validateFlags(setFlags, sweep, *engine, *gen, *graphF, *batch, pl, faults); err != nil {
		fmt.Fprintf(os.Stderr, "wsplit: %v\n", err)
		return 2
	}
	eng = local.ForceFaults(eng, faults)
	// First SIGINT/SIGTERM cancels at the next LOCAL round boundary — a
	// sweep still prints the rows it finished and exits nonzero — and a
	// second one hard-kills (exit 130).
	ctx, release := cliutil.InterruptContext()
	defer release()
	if sweep {
		return runSweep(*gen, *graphF, *nu, *nv, *d, algos, *seed, *trials, *workers, *format, eng, *batch, ctx)
	}
	eng = local.ForceControl(eng, ctx)

	src := prob.NewSource(*seed)
	b, err := buildInstance(*gen, *graphF, *nu, *nv, *d, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsplit: %v\n", err)
		return 2
	}
	fmt.Printf("instance: |U|=%d |V|=%d m=%d δ=%d Δ=%d r=%d\n",
		b.NU(), b.NV(), b.M(), b.MinDegU(), b.MaxDegU(), b.Rank())

	res, err := solve(algos[0], b, src.Fork(1), eng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsplit: %v\n", err)
		return 1
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		fmt.Fprintf(os.Stderr, "wsplit: INVALID OUTPUT: %v\n", err)
		return 1
	}
	red := 0
	for _, c := range res.Colors {
		if c == core.Red {
			red++
		}
	}
	fmt.Printf("valid weak splitting: %d red / %d blue variables\n", red, len(res.Colors)-red)
	fmt.Printf("simulated LOCAL rounds: %d\n", res.Trace.Rounds())
	for _, p := range res.Trace.Phases {
		fmt.Printf("  %-40s %6d rounds\n", p.Name, p.Rounds)
	}
	for _, n := range res.Trace.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	return 0
}

// fixedInstance reports whether the chosen instance source is
// seed-independent — every seed of a sweep yields the same graph — which is
// what makes a sweep eligible for the batched trial path.
func fixedInstance(gen, in string) bool { return experiments.FixedInstance(gen, in) }

// validateFlags rejects flag combinations that would otherwise be silently
// ignored: -workers with an engine that has no worker pool outside a sweep
// (inside one, it sizes the trial pool), generator knobs alongside -graph
// (the file fixes the instance), -batch without a sweep or with an instance
// that is rebuilt per seed, and -plane with -batch (the batched solvers run
// through BatchRun directly and would ignore the forced plane).
func validateFlags(set map[string]bool, sweep bool, engine, gen, in string, batch bool, plane local.Plane, faults local.FaultPlan) error {
	if set["workers"] && !sweep && !local.EngineUsesWorkers(engine) {
		return fmt.Errorf("-workers is ignored with -engine=%s on a single run; use -engine=pool|batch or a multi-trial sweep", engine)
	}
	if err := faults.Validate(); err != nil {
		return err
	}
	if !faults.Active() {
		for _, knob := range []string{"delay", "faultseed"} {
			if set[knob] {
				return fmt.Errorf("-%s only modulates an active fault plan; add -drop or -crash", knob)
			}
		}
	}
	if in != "" {
		for _, knob := range []string{"gen", "nu", "nv", "d"} {
			if set[knob] {
				return fmt.Errorf("-%s is ignored when the instance comes from a file; drop -%s or drop -graph/-in", knob, knob)
			}
		}
	}
	if batch {
		if !sweep {
			return fmt.Errorf("-batch is ignored on a single run; add -trials N, several -algo entries, or -format csv|json")
		}
		if !fixedInstance(gen, in) {
			return fmt.Errorf("-batch needs a seed-independent instance shared by all trials; -gen %s rebuilds per seed (use -gen tree|star or -graph FILE)", gen)
		}
		if plane != local.PlaneAuto {
			return fmt.Errorf("-plane=%s cannot be combined with -batch: batched solvers would ignore the forced plane", plane)
		}
		if faults.Active() {
			return fmt.Errorf("-drop/-crash cannot be combined with -batch: batched solvers would ignore the fault-wrapped engine")
		}
	}
	return nil
}

// runSweep fans the (algorithm, seed) grid across the experiment harness's
// worker pool and reports one row per trial in deterministic order.
func runSweep(gen, in string, nu, nv, d int, algos []string, seed uint64, trials, workers int, format string, eng local.Engine, batch bool, ctx context.Context) int {
	if trials < 1 {
		trials = 1
	}
	switch format {
	case "text", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "wsplit: unknown format %q (have text, csv, json)\n", format)
		return 2
	}
	var algoSpecs []experiments.AlgoSpec
	for _, name := range algos {
		spec, ok := experiments.AlgoSpecFor(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "wsplit: unknown algorithm %q\n", name)
			return 2
		}
		algoSpecs = append(algoSpecs, spec)
	}
	seeds := make([]uint64, trials)
	for i := range seeds {
		seeds[i] = seed + uint64(i)
	}
	graphName := gen
	if in != "" {
		graphName = in
	}
	grid := experiments.Grid{
		Graphs: []experiments.GraphSpec{{
			Name: graphName,
			Build: func(src *prob.Source) (*graph.Bipartite, error) {
				return buildInstance(gen, in, nu, nv, d, src)
			},
			Fixed: fixedInstance(gen, in),
		}},
		Algos:   algoSpecs,
		Seeds:   seeds,
		Engine:  eng,
		Workers: workers,
		Batch:   batch,
		Control: &local.RunControl{Ctx: ctx},
	}
	results := grid.Run()
	failed := 0
	for _, tr := range results {
		if tr.Err != "" || !tr.Valid {
			failed++
		}
	}
	switch format {
	case "text":
		fmt.Printf("%-12s %-8s %8s %8s %6s %6s %6s %s\n",
			"graph", "algo", "seed", "rounds", "red", "blue", "valid", "elapsed")
		for _, tr := range results {
			if tr.Err != "" {
				fmt.Printf("%-12s %-8s %8d %s\n", tr.Graph, tr.Algo, tr.Seed, "ERROR: "+tr.Err)
				continue
			}
			fmt.Printf("%-12s %-8s %8d %8d %6d %6d %6t %s\n",
				tr.Graph, tr.Algo, tr.Seed, tr.Rounds, tr.Red, tr.Blue, tr.Valid, tr.Elapsed.Round(1000))
		}
		fmt.Printf("%d/%d trials valid\n", len(results)-failed, len(results))
	case "csv":
		fmt.Print(experiments.TrialsCSV(results))
	case "json":
		out, err := experiments.TrialsJSON(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsplit: %v\n", err)
			return 1
		}
		fmt.Println(string(out))
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// buildInstance, fixedInstance, knownAlgo and solve delegate to the shared
// registry in internal/experiments, which wsplitd reads too — a new
// generator or algorithm is added there, in exactly one place.
func buildInstance(gen, in string, nu, nv, d int, src *prob.Source) (*graph.Bipartite, error) {
	return experiments.BuildInstance(gen, in, nu, nv, d, src)
}

func knownAlgo(algo string) bool { return experiments.KnownAlgo(algo) }

func solve(algo string, b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
	return experiments.Solve(algo, b, src, eng)
}
