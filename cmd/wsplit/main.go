// Command wsplit solves weak splitting instances from the command line:
// generate a random instance (or read one from a file) and run a chosen
// algorithm from the paper, printing the verification verdict and the
// simulated LOCAL round breakdown.
//
// Usage:
//
//	wsplit -gen biregular -nu 128 -nv 512 -d 12 -algo rand
//	wsplit -in instance.txt -algo det
//
// The input file format is a header line "nu nv" followed by one "u v" edge
// per line (0-based indices; u is a constraint, v a variable).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prob"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		gen  = flag.String("gen", "leftregular", "generator: leftregular|biregular|tree|star|girth10")
		in   = flag.String("in", "", "read the instance from this file instead of generating")
		nu   = flag.Int("nu", 64, "number of constraint (left) nodes")
		nv   = flag.Int("nv", 128, "number of variable (right) nodes")
		d    = flag.Int("d", 16, "left degree")
		algo = flag.String("algo", "det", "algorithm: det|rand|sixr|trivial|ref|hg-det|hg-rand")
		seed = flag.Uint64("seed", 1, "randomness seed")
	)
	flag.Parse()

	src := prob.NewSource(*seed)
	b, err := buildInstance(*gen, *in, *nu, *nv, *d, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsplit: %v\n", err)
		return 2
	}
	fmt.Printf("instance: |U|=%d |V|=%d m=%d δ=%d Δ=%d r=%d\n",
		b.NU(), b.NV(), b.M(), b.MinDegU(), b.MaxDegU(), b.Rank())

	res, err := solve(*algo, b, src.Fork(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsplit: %v\n", err)
		return 1
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		fmt.Fprintf(os.Stderr, "wsplit: INVALID OUTPUT: %v\n", err)
		return 1
	}
	red := 0
	for _, c := range res.Colors {
		if c == core.Red {
			red++
		}
	}
	fmt.Printf("valid weak splitting: %d red / %d blue variables\n", red, len(res.Colors)-red)
	fmt.Printf("simulated LOCAL rounds: %d\n", res.Trace.Rounds())
	for _, p := range res.Trace.Phases {
		fmt.Printf("  %-40s %6d rounds\n", p.Name, p.Rounds)
	}
	for _, n := range res.Trace.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	return 0
}

func buildInstance(gen, in string, nu, nv, d int, src *prob.Source) (*graph.Bipartite, error) {
	if in != "" {
		return readInstance(in)
	}
	switch gen {
	case "leftregular":
		return graph.RandomBipartiteLeftRegular(nu, nv, d, src.Rand())
	case "biregular":
		return graph.RandomBipartiteBiregular(nu, nv, d, src.Rand())
	case "tree":
		return graph.HighGirthTree(d, 3)
	case "star":
		return graph.SubdividedStar(d)
	case "girth10":
		b, err := graph.RandomBipartiteLeftRegular(nu, nv, d, src.Rand())
		if err != nil {
			return nil, err
		}
		fixed, removed := graph.EnsureGirthAtLeast(b, 10)
		if removed > 0 {
			fmt.Printf("girth repair removed %d edges\n", removed)
		}
		return fixed, nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func readInstance(path string) (*graph.Bipartite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "wsplit: closing %s: %v\n", path, cerr)
		}
	}()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return nil, fmt.Errorf("%s: missing header", path)
	}
	var nu, nv int
	if _, err := fmt.Sscan(sc.Text(), &nu, &nv); err != nil {
		return nil, fmt.Errorf("%s: bad header: %w", path, err)
	}
	b := graph.NewBipartite(nu, nv)
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		var u, v int
		if _, err := fmt.Sscan(text, &u, &v); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if err := b.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b.Normalize()
	return b, nil
}

func solve(algo string, b *graph.Bipartite, src *prob.Source) (*core.Result, error) {
	switch algo {
	case "det":
		return core.DeterministicSplit(b, core.DeterministicOptions{})
	case "rand":
		return core.RandomizedSplit(b, src, core.RandomizedOptions{})
	case "sixr":
		return core.SixRSplit(b, core.SixROptions{})
	case "trivial":
		return core.ZeroRoundRandomRetry(b, src, 16)
	case "ref":
		return core.ExhaustiveSplit(b, 0)
	case "hg-det":
		return core.HighGirthDeterministic(b, nil)
	case "hg-rand":
		return core.HighGirthRandomized(b, src, 8)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}
