// Command splitbench regenerates the evaluation tables of the reproduction
// (EXPERIMENTS.md). Each experiment E1..E15 validates one theorem, lemma or
// figure of the paper; see DESIGN.md §3 for the per-experiment index.
//
// Usage:
//
//	splitbench [-experiment E1,E7,...] [-quick] [-seed N] [-batch]
//	           [-engine seq|goroutine|pool|batch] [-plane auto|boxed|word|bit]
//	           [-tune SPEC] [-workers N] [-format text|csv|json] [-graph FILE]
//	           [-cpuprofile FILE] [-memprofile FILE]
//	           [-blockprofile FILE] [-mutexprofile FILE]
//
// With no -experiment flag every experiment runs in order.
//
// -graph FILE runs the real-graph experiment EG on an instance loaded from
// FILE (CSR snapshot, SNAP edge list, or instance text — the same formats
// and auto-detection as wsplit -graph). With -graph and no -experiment the
// selection is just EG; selecting EG explicitly requires -graph, and -graph
// alongside a selection that omits EG is rejected rather than silently
// ignored. EG reuses the -engine/-plane/-seed plumbing like any other
// experiment.
//
// -cpuprofile and -memprofile write standard runtime/pprof profiles of the
// selected experiments (the CPU profile covers the whole run; the heap
// profile is taken after a final GC), so engine hot paths can be inspected
// with `go tool pprof` without writing a throwaway harness. -blockprofile
// and -mutexprofile additionally record goroutine blocking and mutex
// contention at full sampling rate — the pool engine's round barrier and
// shard handoff show up here, which is how scheduling stalls (as opposed to
// CPU burn) are attributed.
//
// -tune sets the cache-tuning knobs of every engine-routed LOCAL run:
// a comma-separated list of "noprefetch", "prefetch=N", "nosticky",
// "nofuse", "notile", "tile=R" and "tilebudget=W" (empty means every
// mechanism at its default). Knobs change wall-clock time only — outputs
// are bit-identical — so this is the ablation companion to -engine and
// -plane. The batched-trial ablations of -batch run with default knobs.
//
// -batch enables the batched-trial ablations of the batch-capable
// experiments (E14): multi-seed sweeps additionally run through the batched
// trial runner and are checked bit-identical against per-seed runs.
// Selecting only experiments that cannot honor -batch is an error rather
// than a silent no-op.
//
// # Running experiments in parallel
//
// Experiments are independent — each derives all of its randomness from its
// own (seed, experiment) pair — so they fan out across a bounded worker
// pool. -workers sets the experiment pool size only (0, the default, means
// GOMAXPROCS; 1 recovers the serial behavior); with -engine=pool the
// engine's own worker pool is always GOMAXPROCS. Results are printed in
// experiment order no matter how the pool schedules them, and every table
// is bit-identical to a serial run.
//
// -engine selects the LOCAL simulation engine used inside the experiments:
// "seq" iterates nodes in one goroutine, "goroutine" spawns one goroutine
// per node, "pool" shards nodes over a fixed worker pool (the fastest
// choice on large instances), and "batch" routes single runs through the
// batched trial runner. Engines are observationally identical, so this flag
// changes wall-clock time only.
//
// -plane pins the message-plane representation of every LOCAL run inside
// the selected experiments ("auto", the default, lets each run take the
// fastest plane its programs support — bit, then word, then boxed). Planes
// are observationally identical; the flag exists for plane ablations.
// Forcing a plane some program cannot take fails that experiment loudly
// rather than silently falling back, and combining -plane with -batch is
// rejected (the batched-trial ablations do not route through the plane-
// forced engine).
//
// -format selects the output: "text" (default) prints aligned tables,
// "csv" prints one CSV block per experiment separated by "# id" comment
// lines, and "json" prints a single JSON array of table objects.
//
// -drop, -delay, -crash and -faultseed inject a deterministic fault plan
// (message drops, bounded redelivery delay, crash-stop failures) into every
// LOCAL simulation inside the selected experiments, keyed by -faultseed
// independently of -seed. Most experiments self-check their solvers, so
// faults generally surface as loud failures — the flags are a stress knob.
// The fault sweep experiment EF generates its own fault grid and rejects
// them, as does -batch (the batched-trial ablations run through BatchRun
// directly and would ignore the fault-wrapped engine).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/local"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag = flag.String("experiment", "", "comma-separated experiment ids (default: all)")
		quick   = flag.Bool("quick", false, "smaller instances and fewer trials")
		seed    = flag.Uint64("seed", 1, "randomness seed")
		engine  = flag.String("engine", "seq", "LOCAL engine: seq|goroutine|pool|batch")
		plane   = flag.String("plane", "auto", "message plane: auto|boxed|word|bit (forced planes fail loudly on incapable programs)")
		tuneF   = flag.String("tune", "", "cache tuning knobs: noprefetch|prefetch=N|nosticky|nofuse|notile|tile=R|tilebudget=W, comma-separated (default: all mechanisms on)")
		workers = flag.Int("workers", 0, "experiment pool size (0 = GOMAXPROCS, 1 = serial)")
		format  = flag.String("format", "text", "output format: text|csv|json")
		batch   = flag.Bool("batch", false, "add the batched-trial ablations of batch-capable experiments (E14)")
		graphF  = flag.String("graph", "", "run experiment EG on the instance in this file (CSR snapshot, SNAP edge list, or instance text)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile (after a final GC) to this file")
		blkProf = flag.String("blockprofile", "", "write a goroutine blocking profile to this file")
		mtxProf = flag.String("mutexprofile", "", "write a mutex contention profile to this file")
		drop    = flag.Float64("drop", 0, "fault injection: per-message drop probability in [0,1]")
		delay   = flag.Int("delay", 0, "fault injection: dropped messages are redelivered up to N rounds late instead of lost (needs -drop)")
		crash   = flag.Float64("crash", 0, "fault injection: per-node per-round crash-stop probability in [0,1]")
		fseed   = flag.Uint64("faultseed", 1, "fault stream seed, independent of -seed (needs -drop or -crash)")
	)
	flag.Parse()
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: -cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: -cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: -memprofile: %v\n", err)
			return 2
		}
		// Written on exit so the profile reflects the experiments' retained
		// heap, not the startup state.
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "splitbench: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	// Blocking and contention are sampled at full rate for the whole run —
	// profiling runs trade a little throughput for complete barrier and
	// handoff attribution — and written on exit, like the heap profile.
	for _, pp := range []struct {
		path, name string
		enable     func()
	}{
		{*blkProf, "block", func() { runtime.SetBlockProfileRate(1) }},
		{*mtxProf, "mutex", func() { runtime.SetMutexProfileFraction(1) }},
	} {
		if pp.path == "" {
			continue
		}
		f, err := os.Create(pp.path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: -%sprofile: %v\n", pp.name, err)
			return 2
		}
		pp.enable()
		name := pp.name
		defer func() {
			if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "splitbench: -%sprofile: %v\n", name, err)
			}
			f.Close()
		}()
	}

	eng, err := local.ParseEngine(*engine, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "splitbench: %v\n", err)
		return 2
	}
	pl, err := local.ParsePlane(*plane)
	if err != nil {
		fmt.Fprintf(os.Stderr, "splitbench: %v\n", err)
		return 2
	}
	if pl != local.PlaneAuto && *batch {
		fmt.Fprintf(os.Stderr, "splitbench: -plane=%s cannot be combined with -batch: the batched-trial ablations run through BatchRun directly and would ignore the forced plane\n", pl)
		return 2
	}
	eng = local.ForcePlane(eng, pl)
	tn, err := local.ParseTuning(*tuneF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "splitbench: %v\n", err)
		return 2
	}
	eng = local.ForceTuning(eng, tn)
	faults := local.FaultPlan{Seed: *fseed, Drop: *drop, Delay: *delay, Crash: *crash}
	if err := faults.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "splitbench: %v\n", err)
		return 2
	}
	if !faults.Active() {
		for _, knob := range []string{"delay", "faultseed"} {
			if setFlags[knob] {
				fmt.Fprintf(os.Stderr, "splitbench: -%s only modulates an active fault plan; add -drop or -crash\n", knob)
				return 2
			}
		}
	}
	if faults.Active() && *batch {
		fmt.Fprintf(os.Stderr, "splitbench: -drop/-crash cannot be combined with -batch: the batched-trial ablations run through BatchRun directly and would ignore the fault-wrapped engine\n")
		return 2
	}
	switch *format {
	case "text", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "splitbench: unknown format %q (have text, csv, json)\n", *format)
		return 2
	}

	registry := experiments.All()
	ids := experiments.IDs()
	if *expFlag != "" {
		ids = nil
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "splitbench: unknown experiment %q (have EG, %s)\n",
					id, strings.Join(experiments.IDs(), ", "))
				return 2
			}
			ids = append(ids, id)
		}
	} else if *graphF != "" {
		// -graph with no explicit selection means "run the real-graph
		// experiment on this file".
		ids = []string{"EG"}
	}
	if selected := slices.Contains(ids, "EG"); selected != (*graphF != "") {
		if selected {
			fmt.Fprintf(os.Stderr, "splitbench: experiment EG needs an instance file; add -graph FILE\n")
		} else {
			fmt.Fprintf(os.Stderr, "splitbench: -graph is ignored by the selected experiments (%s); add EG to -experiment or drop -experiment\n",
				strings.Join(ids, ", "))
		}
		return 2
	}

	if faults.Active() && slices.Contains(ids, "EF") {
		fmt.Fprintf(os.Stderr, "splitbench: experiment EF sweeps its own fault grid; drop -drop/-crash or deselect EF\n")
		return 2
	}

	if *batch {
		any := false
		for _, id := range ids {
			if experiments.BatchCapable(id) {
				any = true
				break
			}
		}
		if !any {
			fmt.Fprintf(os.Stderr, "splitbench: -batch has no effect: none of the selected experiments (%s) is batch-capable\n",
				strings.Join(ids, ", "))
			return 2
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Engine: eng, Batch: *batch, GraphFile: *graphF}
	if faults.Active() {
		cfg.Faults = &faults
	}
	// First SIGINT/SIGTERM stops at the next round boundary: experiments not
	// yet started are skipped, finished tables still print, and the run
	// exits nonzero. A second signal hard-kills (exit 130).
	ctx, release := cliutil.InterruptContext()
	defer release()
	cfg.Control = &local.RunControl{Ctx: ctx}
	start := time.Now()
	results := experiments.RunParallel(ids, cfg, *workers)
	failed := 0
	tables := []json.RawMessage{}
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: %s failed: %v\n", res.ID, res.Err)
			failed++
			continue
		}
		switch *format {
		case "text":
			fmt.Print(res.Table.Format())
			fmt.Printf("  elapsed: %s\n\n", res.Elapsed.Round(time.Millisecond))
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", res.Table.ID, res.Table.Title, res.Table.CSV())
		case "json":
			raw, err := res.Table.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "splitbench: %s: %v\n", res.ID, err)
				failed++
				continue
			}
			tables = append(tables, raw)
		}
	}
	if *format == "json" {
		out, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: %v\n", err)
			return 1
		}
		fmt.Println(string(out))
	}
	if *format == "text" {
		effective := *workers
		if effective <= 0 {
			effective = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("total: %d experiment(s) in %s (workers=%d, engine=%s)\n",
			len(results)-failed, time.Since(start).Round(time.Millisecond), effective, *engine)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "splitbench: %d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}
