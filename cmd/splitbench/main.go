// Command splitbench regenerates the evaluation tables of the reproduction
// (EXPERIMENTS.md). Each experiment E1..E14 validates one theorem, lemma or
// figure of the paper; see DESIGN.md §3 for the per-experiment index.
//
// Usage:
//
//	splitbench [-experiment E1,E7,...] [-quick] [-seed N]
//
// With no -experiment flag every experiment runs in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag = flag.String("experiment", "", "comma-separated experiment ids (default: all)")
		quick   = flag.Bool("quick", false, "smaller instances and fewer trials")
		seed    = flag.Uint64("seed", 1, "randomness seed")
	)
	flag.Parse()

	registry := experiments.All()
	ids := experiments.IDs()
	if *expFlag != "" {
		ids = nil
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "splitbench: unknown experiment %q (have %s)\n",
					id, strings.Join(experiments.IDs(), ", "))
				return 2
			}
			ids = append(ids, id)
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		table, err := registry[id](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(table.Format())
		fmt.Printf("  elapsed: %s\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "splitbench: %d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}
