package main

// The go command's external vet-tool protocol, reimplemented on the
// standard library (the real one lives in
// golang.org/x/tools/go/analysis/unitchecker, which the hermetic build
// cannot import).
//
// `go vet -vettool=splitlint pkgs` drives the tool once per package:
//
//	splitlint -V=full          version handshake used for build caching
//	splitlint <unit>.cfg       analyze one package unit
//
// The .cfg is a JSON file naming the package's Go files and mapping each
// import path to the compiler export data of the dependency, which the go
// command has already built. Diagnostics go to stderr as file:line:col
// lines; exit status 2 means diagnostics, 0 clean. The tool must also write
// the "facts" output file (VetxOutput) for the go command to cache —
// splitlint's analyzers exchange no facts, so a fixed placeholder is
// written. Dependency-only runs (VetxOnly) therefore skip analysis
// entirely.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/build"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// vetConfig mirrors the JSON the go command writes for vet tools (the field
// set of unitchecker.Config; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion emits the `-V=full` handshake: the go command hashes the
// reply (which embeds a digest of the executable) into its build cache key,
// so a rebuilt splitlint invalidates cached vet results.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

func unitcheck(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("%s: bad config: %v", cfgFile, err)
		return 1
	}

	// The go command caches the vetx (facts) output per package; it must
	// exist even though splitlint has no facts to record.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("splitlint has no facts\n"), 0o666); err != nil {
			log.Print(err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: only the facts file was wanted.
		return 0
	}

	fset := token.NewFileSet()
	files, err := load.ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Print(err)
		return 1
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	pkg := load.CheckConfig(cfg.ImportPath, fset, files, types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	})
	if pkg.TypeError != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Printf("%s: type-check: %v", cfg.ImportPath, pkg.TypeError)
		return 1
	}

	diags, err := analyze(pkg, analyzers)
	if err != nil {
		log.Print(err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
