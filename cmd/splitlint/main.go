// Command splitlint is the repo's multichecker: it runs the four splitlint
// analyzers (determinism, zeroalloc, checkederr, loudflags) that enforce the
// house invariants at compile time. See DESIGN.md §"Static analysis".
//
// It runs three ways:
//
//	splitlint [packages]             standalone over package patterns
//	                                 (default ./...); exits 0 when clean,
//	                                 2 when diagnostics were reported,
//	                                 1 on load/internal errors
//	go vet -vettool=$(which splitlint) ./...
//	                                 as a vet tool, speaking the go command's
//	                                 unitchecker .cfg protocol
//	splitlint -list                  print each analyzer with the one-line
//	                                 invariant it enforces
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splitlint: ")
	analyzers := lint.Analyzers()
	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	listFlag := flag.Bool("list", false, "list analyzers and the invariant each enforces, then exit")
	vFlag := flag.String("V", "", "if 'full', print the tool version handshake expected by the go command")
	flagsFlag := flag.Bool("flags", false, "print the tool's analyzer flags as JSON (go vet handshake)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: splitlint [-list] [packages]\n       go vet -vettool=$(which splitlint) [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *vFlag == "full":
		printVersion()
		return
	case *vFlag != "":
		log.Fatalf("unsupported flag value: -V=%s", *vFlag)
	case *flagsFlag:
		// splitlint's analyzers expose no flags of their own.
		fmt.Println("[]")
		return
	case *listFlag:
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], analyzers))
	}
	os.Exit(standalone(args, analyzers))
}

// standalone loads the matching packages via `go list -export` and analyzes
// every non-dependency match (non-test files; the vet path also covers test
// files).
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	pkgs, err := load.GoList(".", patterns...)
	if err != nil {
		log.Print(err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		if pkg.TypeError != nil {
			log.Printf("%s: type-check: %v", pkg.Path, pkg.TypeError)
			exit = 1
			continue
		}
		diags, err := analyze(pkg, analyzers)
		if err != nil {
			log.Print(err)
			return 1
		}
		printDiags(pkg, diags)
		if len(diags) > 0 && exit == 0 {
			exit = 2
		}
	}
	return exit
}

type namedDiag struct {
	analysis.Diagnostic
	analyzer string
}

func printDiags(pkg *load.Package, diags []namedDiag) {
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.analyzer, d.Message)
	}
}

// analyze runs every analyzer over one loaded package and returns the
// position-sorted diagnostics.
func analyze(pkg *load.Package, analyzers []*analysis.Analyzer) ([]namedDiag, error) {
	var diags []namedDiag
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, namedDiag{Diagnostic: d, analyzer: name})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
