package main

// End-to-end tests for the splitlint binary: exit codes on clean and
// violating synthetic modules (both standalone and through the go command's
// -vettool protocol), the -list mode, and a smoke test that the real repo
// is clean. Everything runs the actual executable — these tests are the
// proof that the CI invocation works.

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildBin  string
	buildErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

// splitlintBin builds the splitlint executable once per test process.
func splitlintBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "splitlint-test-")
		if buildErr != nil {
			return
		}
		buildBin = filepath.Join(buildDir, "splitlint")
		cmd := exec.Command("go", "build", "-o", buildBin, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			buildBin = ""
			t.Logf("building splitlint: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building splitlint: %v", buildErr)
	}
	return buildBin
}

// run executes the binary in dir and returns combined output and exit code.
func run(t *testing.T, dir string, env []string, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("running %s %v: %v\n%s", name, args, err, out)
	return "", -1
}

// writeModule materializes a synthetic single-package module in a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `// Package clean has nothing for splitlint to object to.
package clean

func Add(a, b int) int { return a + b }
`

const violatingSrc = `// Package det opts into the determinism invariant and then breaks it.
//
//splitlint:deterministic
package det

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`

func TestStandaloneExitCodes(t *testing.T) {
	bin := splitlintBin(t)

	t.Run("clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":   "module scratch\n\ngo 1.24\n",
			"clean.go": cleanSrc,
		})
		out, code := run(t, dir, nil, bin, "./...")
		if code != 0 {
			t.Fatalf("clean module: exit %d, want 0\n%s", code, out)
		}
	})

	t.Run("violating", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module scratch\n\ngo 1.24\n",
			"det.go": violatingSrc,
		})
		out, code := run(t, dir, nil, bin, "./...")
		if code != 2 {
			t.Fatalf("violating module: exit %d, want 2\n%s", code, out)
		}
		if !strings.Contains(out, "determinism") || !strings.Contains(out, "time.Now") {
			t.Fatalf("diagnostic does not name the violation:\n%s", out)
		}
	})
}

// TestVetTool drives the binary through `go vet -vettool`, the protocol CI
// uses: the go command must accept the -V=full handshake and relay the
// analyzer's diagnostics (clean exit 0, diagnostics nonzero).
func TestVetTool(t *testing.T) {
	bin := splitlintBin(t)

	t.Run("clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":   "module scratch\n\ngo 1.24\n",
			"clean.go": cleanSrc,
		})
		out, code := run(t, dir, nil, "go", "vet", "-vettool="+bin, "./...")
		if code != 0 {
			t.Fatalf("go vet on clean module: exit %d, want 0\n%s", code, out)
		}
	})

	t.Run("violating", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module scratch\n\ngo 1.24\n",
			"det.go": violatingSrc,
		})
		out, code := run(t, dir, nil, "go", "vet", "-vettool="+bin, "./...")
		if code == 0 {
			t.Fatalf("go vet on violating module: exit 0, want nonzero\n%s", out)
		}
		if !strings.Contains(out, "time.Now") {
			t.Fatalf("go vet did not relay the diagnostic:\n%s", out)
		}
	})
}

func TestListMode(t *testing.T) {
	bin := splitlintBin(t)
	out, code := run(t, t.TempDir(), nil, bin, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d, want 0\n%s", code, out)
	}
	for _, name := range []string{"determinism", "zeroalloc", "checkederr", "loudflags"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output is missing analyzer %q:\n%s", name, out)
		}
	}
}

// TestRepoClean is the smoke test the issue asks for: the suite must pass
// over the repo's own tree. A regression that introduces a violation (or a
// loader breakage) fails here before it fails in CI.
func TestRepoClean(t *testing.T) {
	bin := splitlintBin(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	out, code := run(t, root, nil, bin, "./...")
	if code != 0 {
		t.Fatalf("splitlint ./... over the repo: exit %d, want 0\n%s", code, out)
	}
}
