package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// ZeroAlloc reports alloc-prone constructs inside code marked
// //splitlint:zeroalloc. It complements the runtime Test*ZeroAllocsPerRound
// pins: the pins prove the steady state allocates nothing, this analyzer
// points at the exact statement when somebody breaks it — including in code
// paths the pins don't cover.
var ZeroAlloc = &analysis.Analyzer{
	Name: "zeroalloc",
	Doc: "functions and loops marked //splitlint:zeroalloc must not allocate on the steady-state path" + `

The marker goes in a function's doc comment, or on its own line directly
above a statement (typically the engine's inner round loop). Inside a marked
region the analyzer reports: make/new, append, slice/map composite literals
and &-literals, closures, fmt calls, string concatenation and
string<->[]byte conversions, map writes, go and defer statements, and values
boxed into interface parameters. Cold paths inside a marked region (error
exits that run at most once) are waived with //lint:alloc <why>. panic
arguments are exempt: dying loudly is the house style and its cost is
irrelevant.`,
	Run: runZeroAlloc,
}

func runZeroAlloc(pass *analysis.Pass) (any, error) {
	w := newWaivers(pass)
	for _, file := range pass.Files {
		lines := markerLines(pass, file, markerZeroAlloc)
		var regions []ast.Node
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if funcMarked(fd, markerZeroAlloc) {
				regions = append(regions, fd.Body)
				continue
			}
			if len(lines) == 0 {
				continue
			}
			// Statement-level markers: the outermost statement on the
			// marker's line or the line below it.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if inAny(regions, n) {
					return false
				}
				s, ok := n.(ast.Stmt)
				if !ok {
					return true
				}
				p := pass.Fset.Position(s.Pos())
				if lines[lineKey(p.Filename, p.Line)] || lines[lineKey(p.Filename, p.Line-1)] {
					regions = append(regions, s)
					return false
				}
				return true
			})
		}
		z := &zeroAllocRegion{pass: pass, w: w}
		for _, r := range regions {
			ast.Inspect(r, z.visit)
		}
	}
	return nil, nil
}

func inAny(regions []ast.Node, n ast.Node) bool {
	if n == nil {
		return false
	}
	for _, r := range regions {
		if n.Pos() >= r.Pos() && n.End() <= r.End() {
			return true
		}
	}
	return false
}

type zeroAllocRegion struct {
	pass *analysis.Pass
	w    *waivers

	// handled marks nodes a parent construct already reported (the literal
	// under an &-literal, the args of a reported fmt call) so they are not
	// reported twice.
	handled map[ast.Node]bool
}

func (z *zeroAllocRegion) report(pos token.Pos, format string, args ...any) {
	if z.w.waived(pos, waiverAlloc) {
		return
	}
	z.pass.Reportf(pos, format, args...)
}

func (z *zeroAllocRegion) markHandled(n ast.Node) {
	if z.handled == nil {
		z.handled = map[ast.Node]bool{}
	}
	z.handled[n] = true
}

func (z *zeroAllocRegion) visit(n ast.Node) bool {
	if z.handled[n] {
		return true
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		z.checkCall(n)
	case *ast.CompositeLit:
		switch z.typeOf(n).(type) {
		case *types.Slice, *types.Map:
			z.report(n.Pos(), "zeroalloc: composite literal allocates its backing store every round — hoist it out of the marked region")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				z.markHandled(cl)
				z.report(n.Pos(), "zeroalloc: &-composite literal heap-allocates if it escapes — reuse a preallocated value")
			}
		}
	case *ast.FuncLit:
		z.report(n.Pos(), "zeroalloc: closure allocates (captured variables escape to the heap) — hoist it out of the marked region or pass state explicitly")
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isStringType(z.typeOf(n)) {
			z.report(n.Pos(), "zeroalloc: string concatenation allocates — build strings outside the marked region")
		}
	case *ast.GoStmt:
		z.report(n.Pos(), "zeroalloc: go statement allocates a goroutine every round — start workers once outside the round loop")
	case *ast.DeferStmt:
		z.report(n.Pos(), "zeroalloc: defer in a marked region may allocate and runs per call — handle cleanup explicitly")
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if _, isMap := z.underlying(ix.X).(*types.Map); isMap {
					z.report(lhs.Pos(), "zeroalloc: map write may allocate on growth — preallocate or use a flat array keyed by id")
				}
			}
		}
	}
	return true
}

func (z *zeroAllocRegion) typeOf(e ast.Expr) types.Type {
	t := z.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func (z *zeroAllocRegion) underlying(e ast.Expr) types.Type { return z.typeOf(e) }

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (z *zeroAllocRegion) checkCall(call *ast.CallExpr) {
	tv, ok := z.pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		z.checkConversion(call, tv.Type)
		return
	}

	// Builtins.
	if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
		if b, isB := z.pass.TypesInfo.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make":
				z.report(call.Pos(), "zeroalloc: make allocates — hoist the buffer out of the marked region and reuse it")
			case "new":
				z.report(call.Pos(), "zeroalloc: new allocates — reuse a preallocated value")
			case "append":
				z.report(call.Pos(), "zeroalloc: append may grow its backing array — preallocate capacity outside the round loop")
			case "panic":
				// Dying loudly is fine; don't flag the boxed argument.
				for _, a := range call.Args {
					z.markSubtree(a)
				}
			}
			return
		}
	}

	f := calleeFunc(z.pass, call)
	if pkgPathOf(f) == "fmt" {
		z.report(call.Pos(), "zeroalloc: fmt.%s allocates (formats into fresh buffers, boxes its operands) — precompute messages off the hot path", f.Name())
		for _, a := range call.Args {
			z.markSubtree(a)
		}
		return
	}

	// Interface boxing at call boundaries: a non-pointer-shaped concrete
	// value passed to an interface parameter is copied to the heap.
	sig, _ := tv.Type.(*types.Signature)
	if sig == nil {
		return
	}
	if call.Ellipsis != token.NoPos && sig.Variadic() {
		// f(xs...) passes the slice through unchanged.
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := z.pass.TypesInfo.TypeOf(arg)
		if at == nil || boxFree(at) {
			continue
		}
		z.report(arg.Pos(), "zeroalloc: %s value boxed into interface parameter (heap-allocates the copy) — pass a pointer or avoid the interface on the hot path", at.String())
	}
}

// markSubtree suppresses reports for every node inside e (used for args of
// constructs already reported at the call level).
func (z *zeroAllocRegion) markSubtree(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if n != nil {
			z.markHandled(n)
		}
		return true
	})
}

// boxFree reports whether converting a value of type t to an interface can
// avoid a heap allocation: interfaces themselves, pointer-shaped types, and
// untyped nil.
func boxFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UntypedNil
	}
	return false
}

func (z *zeroAllocRegion) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := z.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if _, isIface := toU.(*types.Interface); isIface && !boxFree(from) {
		z.report(call.Pos(), "zeroalloc: conversion of %s to interface boxes on the heap", from.String())
		return
	}
	toStr, fromStr := isStringType(toU), isStringType(fromU)
	_, toSlice := toU.(*types.Slice)
	_, fromSlice := fromU.(*types.Slice)
	if (toStr && fromSlice) || (toSlice && fromStr) {
		z.report(call.Pos(), "zeroalloc: string<->slice conversion copies and allocates — keep one representation on the hot path")
	}
}
