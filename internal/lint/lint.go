package lint

import "repro/internal/lint/analysis"

// Analyzers returns the full splitlint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Determinism, ZeroAlloc, CheckedErr, LoudFlags}
}
