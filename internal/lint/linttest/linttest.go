// Package linttest is a dependency-free stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture package
// from testdata/src/<name>, runs one analyzer over it, and matches the
// diagnostics against `// want` expectations embedded in the fixture.
//
// Expectation syntax (a subset of analysistest's):
//
//	code() // want `regexp`
//	code() // want `re1` `re2`        (two diagnostics expected on this line)
//
// Every diagnostic must match an expectation on its line and every
// expectation must be matched by exactly one diagnostic; anything else
// fails the test with a per-line report.
package linttest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// expectation is one backquoted regexp from a // want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// Run loads testdata/src/<pkgname> under dir and checks a's diagnostics
// against the fixture's // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	pkg, err := load.Dir(filepath.Join(dir, "src", pkgname))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgname, err)
	}
	if pkg.TypeError != nil {
		t.Fatalf("fixture %s does not type-check: %v", pkgname, pkg.TypeError)
	}

	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[i:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: m[1],
					})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.raw)
		}
	}
}

func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// RunClean asserts the analyzer reports nothing on the fixture (for
// negative fixtures that contain no // want comments at all).
func RunClean(t *testing.T, dir string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	pkg, err := load.Dir(filepath.Join(dir, "src", pkgname))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgname, err)
	}
	if pkg.TypeError != nil {
		t.Fatalf("fixture %s does not type-check: %v", pkgname, pkg.TypeError)
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			t.Errorf("%s: unexpected diagnostic: %s", pkg.Fset.Position(d.Pos), d.Message)
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", a.Name, err)
	}
}
