package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
)

// LoudFlags extends the CLI discipline from PRs 6/7 — "reject
// silently-ignored combos" — to every flag: a registered flag whose value is
// never read is a promise to the user that the program does not keep.
var LoudFlags = &analysis.Analyzer{
	Name: "loudflags",
	Doc: "every registered CLI flag must be read by a use or validation site — a flag that parses but changes nothing is a silent lie" + `

In package main, every flag registration (flag.String/Int/..., the ...Var
forms, flag.Var/TextVar, and the same methods on a *flag.FlagSet) must bind
a variable that is referenced somewhere outside the registration itself.
flag.Func/BoolFunc registrations carry their use in the callback and always
pass. Registrations whose target the analyzer cannot track (&struct.field,
a flag.Value built elsewhere) are given the benefit of the doubt. Waive a
deliberately inert flag with //lint:flagok <why>.`,
	Run: runLoudFlags,
}

// flagValueFns return a pointer to the value; the flag name is argument 0.
var flagValueFns = map[string]bool{
	"Bool": true, "Duration": true, "Float64": true, "Int": true,
	"Int64": true, "String": true, "Uint": true, "Uint64": true,
}

// flagVarFns take a target pointer/value first; the flag name is argument 1.
var flagVarFns = map[string]bool{
	"BoolVar": true, "DurationVar": true, "Float64Var": true, "IntVar": true,
	"Int64Var": true, "StringVar": true, "UintVar": true, "Uint64Var": true,
	"Var": true, "TextVar": true,
}

type flagReg struct {
	name string        // the flag's command-line name, best effort
	obj  types.Object  // the variable holding the value, nil if untrackable
	call *ast.CallExpr // the registration call
}

func runLoudFlags(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() != "main" {
		return nil, nil
	}
	w := newWaivers(pass)

	var regs []flagReg
	// claimed maps registration calls already bound to a variable through an
	// assignment or var declaration, so the bare-call scan below only sees
	// discarded registrations.
	claimed := map[*ast.CallExpr]bool{}

	flagFn := func(call *ast.CallExpr) (*types.Func, bool) {
		f := calleeFunc(pass, call)
		if f == nil || pkgPathOf(f) != "flag" {
			return nil, false
		}
		return f, true
	}
	flagName := func(call *ast.CallExpr, idx int) string {
		if idx < len(call.Args) {
			if lit, ok := ast.Unparen(call.Args[idx]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil {
					return s
				}
			}
		}
		return "?"
	}
	objOf := func(id *ast.Ident) types.Object {
		if o := pass.TypesInfo.Defs[id]; o != nil {
			return o
		}
		return pass.TypesInfo.Uses[id]
	}

	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// x := flag.String(...) / x = flag.String(...)
				if len(n.Rhs) != 1 || len(n.Lhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				f, ok := flagFn(call)
				if !ok || !flagValueFns[f.Name()] {
					return true
				}
				claimed[call] = true
				var obj types.Object
				if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					obj = objOf(id)
				}
				// obj == nil here means _ = flag.String(...) or an
				// untrackable LHS: reported below as discarded.
				regs = append(regs, flagReg{name: flagName(call, 0), obj: obj, call: call})
			case *ast.ValueSpec:
				// var x = flag.String(...)
				for i, v := range n.Values {
					call, ok := ast.Unparen(v).(*ast.CallExpr)
					if !ok {
						continue
					}
					f, ok := flagFn(call)
					if !ok || !flagValueFns[f.Name()] {
						continue
					}
					claimed[call] = true
					var obj types.Object
					if i < len(n.Names) && n.Names[i].Name != "_" {
						obj = objOf(n.Names[i])
					}
					regs = append(regs, flagReg{name: flagName(call, 0), obj: obj, call: call})
				}
			case *ast.CallExpr:
				f, ok := flagFn(n)
				if !ok {
					return true
				}
				switch {
				case flagVarFns[f.Name()]:
					var obj types.Object
					if len(n.Args) > 0 {
						if un, ok := ast.Unparen(n.Args[0]).(*ast.UnaryExpr); ok && un.Op == token.AND {
							if id, ok := ast.Unparen(un.X).(*ast.Ident); ok {
								obj = objOf(id)
							}
						}
					}
					if obj == nil && f.Name() == "Var" {
						// flag.Var(v, ...) with an opaque flag.Value: the
						// value object itself may be tracked if it is a
						// plain identifier.
						if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
							obj = objOf(id)
						}
					}
					if obj == nil {
						return true // &struct.field etc.: benefit of the doubt
					}
					regs = append(regs, flagReg{name: flagName(n, 1), obj: obj, call: n})
				case flagValueFns[f.Name()] && !claimed[n]:
					// ast.Inspect visits the enclosing assignment or var
					// spec before the call, so an unclaimed value-returning
					// registration here had its pointer discarded.
					regs = append(regs, flagReg{name: flagName(n, 0), obj: nil, call: n})
				}
			}
			return true
		})
	}

	for _, reg := range regs {
		if reg.obj != nil && usedOutside(pass, reg.obj, reg.call) {
			continue
		}
		if w.waived(reg.call.Pos(), waiverFlagOK) {
			continue
		}
		what := "is registered but its value is never read"
		if reg.obj == nil {
			what = "is registered and its value pointer is discarded"
		}
		pass.Reportf(reg.call.Pos(),
			"loudflags: flag %q %s — a value the user sets would be silently ignored; wire it to a use or validation site, or waive with //lint:flagok <why>",
			reg.name, what)
	}
	return nil, nil
}

// usedOutside reports whether obj is referenced anywhere outside the
// registration call's source range.
func usedOutside(pass *analysis.Pass, obj types.Object, reg *ast.CallExpr) bool {
	for id, o := range pass.TypesInfo.Uses {
		if o != obj {
			continue
		}
		if id.Pos() >= reg.Pos() && id.End() <= reg.End() {
			continue // the &x inside the registration itself
		}
		return true
	}
	return false
}
