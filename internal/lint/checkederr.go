package lint

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"

	"repro/internal/lint/analysis"
)

// CheckedErr enforces loud failure for the repo's validating call family:
// the ...E error-returning variants (BuildE, NewTopologyE), Validate, and
// the snapshot Import*/Export* functions. Dropping one of those errors is
// exactly how the int32-overflow class of bug stays invisible until a trace
// hash diverges.
var CheckedErr = &analysis.Analyzer{
	Name: "checkederr",
	Doc: "errors from the ...E/Validate/Import*/Export* call family must be consumed, never dropped or blanked" + `

A call to a function whose name ends in the ...E error-variant convention
(a lowercase letter followed by a final capital E, like BuildE or
NewTopologyE), is exactly Validate, or starts with Import or Export, and
whose results include an error, must not appear as a bare statement, under
go/defer, or with its error result assigned to _. Waive a deliberate drop
with //lint:checked <why>.`,
	Run: runCheckedErr,
}

// familyFunc reports whether f belongs to the checked-error family and
// returns the index of its error result (-1 if it has none).
func familyFunc(f *types.Func) (errIndex int, ok bool) {
	if f == nil {
		return -1, false
	}
	name := f.Name()
	switch {
	case name == "Validate":
	case strings.HasPrefix(name, "Import"), strings.HasPrefix(name, "Export"):
	default:
		// The ...E convention: a final capital E right after a lowercase
		// letter ("BuildE", "NewTopologyE" — but not "CE", "SolveDone").
		r := []rune(name)
		if len(r) < 2 || r[len(r)-1] != 'E' || !unicode.IsLower(r[len(r)-2]) {
			return -1, false
		}
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil {
		return -1, false
	}
	for i := sig.Results().Len() - 1; i >= 0; i-- {
		if isErrorType(sig.Results().At(i).Type()) {
			return i, true
		}
	}
	return -1, false
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorIface) }

func runCheckedErr(pass *analysis.Pass) (any, error) {
	w := newWaivers(pass)
	report := func(call *ast.CallExpr, f *types.Func, form string) {
		if w.waived(call.Pos(), waiverChecked) {
			return
		}
		pass.Reportf(call.Pos(),
			"checkederr: error from %s is %s — an unvalidated input or failed export must fail loudly, not vanish; handle the error or waive with //lint:checked <why>",
			f.Name(), form)
	}
	familyCall := func(e ast.Expr) (*ast.CallExpr, *types.Func, int) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, nil, -1
		}
		f := calleeFunc(pass, call)
		errIdx, ok := familyFunc(f)
		if !ok {
			return nil, nil, -1
		}
		return call, f, errIdx
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, f, _ := familyCall(n.X); call != nil {
					report(call, f, "discarded (call used as a statement)")
				}
			case *ast.GoStmt:
				if call, f, _ := familyCall(n.Call); call != nil {
					report(call, f, "unobservable under go")
				}
			case *ast.DeferStmt:
				if call, f, _ := familyCall(n.Call); call != nil {
					report(call, f, "discarded under defer")
				}
			case *ast.AssignStmt:
				checkAssign(pass, n, familyCall, report)
			}
			return true
		})
	}
	return nil, nil
}

func checkAssign(pass *analysis.Pass, s *ast.AssignStmt,
	familyCall func(ast.Expr) (*ast.CallExpr, *types.Func, int),
	report func(*ast.CallExpr, *types.Func, string)) {

	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// a, err := f(): tuple assignment.
		call, f, errIdx := familyCall(s.Rhs[0])
		if call == nil || errIdx < 0 || errIdx >= len(s.Lhs) {
			return
		}
		if isBlank(s.Lhs[errIdx]) {
			report(call, f, "assigned to _")
		}
		return
	}
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		call, f, errIdx := familyCall(rhs)
		if call == nil {
			continue
		}
		// Single-result error function in a parallel assignment.
		if errIdx == 0 && isBlank(s.Lhs[i]) {
			report(call, f, "assigned to _")
		}
	}
}
