// Package lint holds the four splitlint analyzers that turn the repo's house
// invariants — determinism of engine paths, zero allocation in round loops,
// loud failure on every error, no silently-ignored CLI flag — into
// compile-time checks. See DESIGN.md §"Static analysis" for the invariant
// catalogue and the marker/waiver syntax.
//
// Two comment namespaces drive the suite:
//
//	//splitlint:<marker>    opts code IN to a check (deterministic, zeroalloc)
//	//lint:<kind> <why>     waives one diagnostic, with a mandatory justification
//
// A waiver covers its own source line and the line directly below it, so it
// can sit either at the end of the offending line or on its own line above.
// A waiver without a justification is itself a diagnostic: the analyzers
// never accept "because I said so" silently.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Marker directives (opt-in).
const (
	markerZeroAlloc     = "//splitlint:zeroalloc"
	markerDeterministic = "//splitlint:deterministic"
)

// Waiver kinds (opt-out, one per rule family).
const (
	waiverOrdered    = "ordered"    // determinism: map range is intentionally orderless
	waiverWallTime   = "walltime"   // determinism: wall clock read is harmless here
	waiverGlobalRand = "globalrand" // determinism: global rand draw is harmless here
	waiverAlloc      = "alloc"      // zeroalloc: this allocation is off the steady-state path
	waiverChecked    = "checked"    // checkederr: dropping this error is safe
	waiverFlagOK     = "flagok"     // loudflags: flag is consumed in a way the analyzer can't see
)

// A directive is one parsed //lint:<kind> comment.
type directive struct {
	kind          string
	justification string
	pos           token.Pos
	used          bool
}

// waivers indexes every //lint: comment of a pass by file and line.
type waivers struct {
	pass   *analysis.Pass
	byLine map[string][]*directive // "filename:line" → directives on that line
}

func newWaivers(pass *analysis.Pass) *waivers {
	w := &waivers{pass: pass, byLine: map[string][]*directive{}}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				kind, just, _ := strings.Cut(text, " ")
				// A trailing "// want ..." inside the same comment line is
				// linttest expectation syntax, not justification text.
				if i := strings.Index(just, "// want"); i >= 0 {
					just = just[:i]
				}
				p := pass.Fset.Position(c.Pos())
				key := lineKey(p.Filename, p.Line)
				w.byLine[key] = append(w.byLine[key], &directive{
					kind:          kind,
					justification: strings.TrimSpace(just),
					pos:           c.Pos(),
				})
			}
		}
	}
	return w
}

func lineKey(file string, line int) string {
	var sb strings.Builder
	sb.WriteString(file)
	sb.WriteByte(':')
	// small manual itoa to avoid fmt in a hot helper
	if line == 0 {
		sb.WriteByte('0')
	} else {
		var buf [12]byte
		i := len(buf)
		for line > 0 {
			i--
			buf[i] = byte('0' + line%10)
			line /= 10
		}
		sb.Write(buf[i:])
	}
	return sb.String()
}

// waived reports whether a diagnostic of the given kind at pos is covered by
// a //lint:<kind> directive on the same line or the line above. A matching
// directive with an empty justification suppresses the original diagnostic
// but reports the missing justification instead (once per directive).
func (w *waivers) waived(pos token.Pos, kind string) bool {
	p := w.pass.Fset.Position(pos)
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, d := range w.byLine[lineKey(p.Filename, line)] {
			if d.kind != kind {
				continue
			}
			if d.justification == "" && !d.used {
				d.used = true
				w.pass.Reportf(d.pos, "//lint:%s waiver needs a justification (say why the invariant holds anyway)", kind)
			}
			d.used = true
			return true
		}
	}
	return false
}

// funcMarked reports whether the function declaration carries the marker in
// its doc comment.
func funcMarked(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}

// fileMarked reports whether any comment in the file is the given marker
// (used for //splitlint:deterministic package opt-in).
func fileMarked(file *ast.File, marker string) bool {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
				return true
			}
		}
	}
	return false
}

// markerLines returns the set of "filename:line" keys holding the marker as
// a comment, for statement-level markers (the marked statement is on the
// marker's line or the line below).
func markerLines(pass *analysis.Pass, file *ast.File, marker string) map[string]bool {
	var lines map[string]bool
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if c.Text != marker && !strings.HasPrefix(c.Text, marker+" ") {
				continue
			}
			if lines == nil {
				lines = map[string]bool{}
			}
			p := pass.Fset.Position(c.Pos())
			lines[lineKey(p.Filename, p.Line)] = true
		}
	}
	return lines
}

// isTestFile reports whether the file's name ends in _test.go.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.Package).Filename, "_test.go")
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and calls of function-typed values.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// pkgPathOf returns the import path of the package a function belongs to,
// or "" for builtins and universe-scope objects.
func pkgPathOf(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}
