// Package checkederr_a exercises the checkederr analyzer: the
// ...E/Validate/Import*/Export* family must have its error consumed.
package checkederr_a

import "errors"

type plan struct{ bad bool }

func (p plan) Validate() error {
	if p.bad {
		return errors.New("bad plan")
	}
	return nil
}

// BuildE follows the repo's ...E error-variant convention.
func BuildE() (int, error) { return 1, nil }

// ImportSnapshot and ExportSnapshot match the Import*/Export* family.
func ImportSnapshot(b []byte) (int, error) { return len(b), nil }
func ExportSnapshot() error                { return nil }

// done and prepare do not match any family name (no trailing capital E, not
// Validate/Import*/Export*) and may be dropped freely.
func done() error    { return nil }
func prepare() error { return nil }

var sink int

func violations(p plan) {
	BuildE() // want `checkederr: error from BuildE is discarded`

	_, _ = BuildE() // want `checkederr: error from BuildE is assigned to _`

	n, _ := ImportSnapshot(nil) // want `checkederr: error from ImportSnapshot is assigned to _`
	sink = n

	_ = p.Validate() // want `checkederr: error from Validate is assigned to _`

	go ExportSnapshot() // want `checkederr: error from ExportSnapshot is unobservable under go`

	defer ExportSnapshot() // want `checkederr: error from ExportSnapshot is discarded under defer`
}

func consumed(p plan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n, err := BuildE()
	if err != nil {
		return err
	}
	sink = n
	if err := ExportSnapshot(); err != nil {
		return err
	}
	// Non-family calls may drop errors (other linters own that ground).
	done()
	_ = prepare()
	return nil
}

func waived() {
	_, _ = BuildE() //lint:checked size probe; error path covered by TestBuildEOverflow
}
