// Package zeroalloc_a exercises the zeroalloc analyzer: alloc-prone
// constructs inside //splitlint:zeroalloc regions, the statement-level
// marker form, waivers, and the exemption of unmarked code.
package zeroalloc_a

import "fmt"

type point struct{ x, y int }

var sink any

func sinkAny(v any) { sink = v }

func sinkInt(v int)    { sink = v }
func sinkPtr(p *point) { sink = p }

// round is a marked hot function: everything alloc-prone inside is
// reported.
//
//splitlint:zeroalloc
func round(recv []int, send []int, m map[int]int, s string) {
	buf := make([]int, 8) // want `zeroalloc: make allocates`
	_ = buf

	send = append(send, 1) // want `zeroalloc: append may grow`

	msg := fmt.Sprintf("round %d", 1) // want `zeroalloc: fmt.Sprintf allocates`
	_ = msg

	lit := []int{1, 2, 3} // want `zeroalloc: composite literal allocates`
	_ = lit

	p := &point{1, 2} // want `zeroalloc: &-composite literal heap-allocates`
	_ = p

	f := func() int { return 1 } // want `zeroalloc: closure allocates`
	_ = f

	s2 := s + "x" // want `zeroalloc: string concatenation allocates`
	_ = s2

	bs := []byte(s) // want `zeroalloc: string<->slice conversion`
	_ = bs

	sinkAny(42) // want `zeroalloc: int value boxed into interface parameter`

	boxed := any(7) // want `zeroalloc: conversion of int to interface`
	_ = boxed

	m[3] = 4 // want `zeroalloc: map write may allocate`

	go helper() // want `zeroalloc: go statement allocates`

	defer helper() // want `zeroalloc: defer in a marked region`

	// Allowed steady-state constructs: index writes, arithmetic, plain
	// struct values, pointer and non-interface calls, panic's boxed arg.
	for i := range recv {
		send[i] = recv[i] * 2
	}
	pt := point{1, 2}
	sinkInt(pt.x)
	sinkPtr(&pt) // pointer arg to pointer param: no box
	if len(recv) > 1<<30 {
		panic(recv[0]) // dying loudly is exempt
	}

	waived := fmt.Sprint("cold") //lint:alloc error path, runs at most once per trial
	_ = waived
}

func helper() {}

// unmarked is identical alloc-heavy code with no marker: the analyzer must
// stay silent.
func unmarked(s string) string {
	buf := make([]byte, 8)
	buf = append(buf, s...)
	return fmt.Sprintf("%s+%s", string(buf), s+"!")
}

// loop shows the statement-level marker: only the marked round loop is
// checked, not the setup above it.
func loop(n int) []int {
	acc := make([]int, 0, n) // setup: fine
	//splitlint:zeroalloc
	for i := 0; i < n; i++ {
		acc = append(acc, i) // want `zeroalloc: append may grow`
	}
	return acc
}
