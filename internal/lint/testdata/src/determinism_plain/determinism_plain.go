// Package determinism_plain is NOT designated deterministic (no
// //splitlint:deterministic marker, not in the designated-path list), so the
// determinism analyzer must stay silent even though every rule is violated.
package determinism_plain

import (
	"math/rand/v2"
	"time"
)

var sink int

func free(m map[int]int) []int {
	sink = int(time.Now().UnixNano())
	sink += rand.IntN(10)
	var order []int
	for k := range m {
		order = append(order, k)
	}
	return order
}
