// Package checkederr_service pins the checkederr analyzer on the sweep
// service's idioms: a Submit path gated on spec.Validate, service-internal
// ...E error variants, and the deliberate forced-drain waiver. The fixture
// exists so a refactor of the service package cannot silently move one of
// these drops out of the analyzer's reach.
package checkederr_service

import "errors"

type spec struct{ trials int }

func (s spec) Validate() error {
	if s.trials < 0 {
		return errors.New("negative trials")
	}
	return nil
}

type server struct{ draining bool }

// submitE is the service-internal error variant of a submission: named in
// the ...E convention, so callers must consume its error.
func (sv *server) submitE(s spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if sv.draining {
		return errors.New("draining")
	}
	return nil
}

// drainE mirrors Server.Drain: the deadline-expiry error reports cancelled
// jobs, which the forced-close path deliberately ignores.
func (sv *server) drainE() error {
	if sv.draining {
		return errors.New("drain deadline expired")
	}
	return nil
}

func (sv *server) violations(s spec) {
	sv.submitE(s) // want `checkederr: error from submitE is discarded`

	_ = s.Validate() // want `checkederr: error from Validate is assigned to _`

	// A fire-and-forget submission loses the queue-full signal entirely.
	go sv.submitE(s) // want `checkederr: error from submitE is unobservable under go`

	defer sv.drainE() // want `checkederr: error from drainE is discarded under defer`
}

func (sv *server) consumed(s spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := sv.submitE(s); err != nil {
		return err
	}
	return sv.drainE()
}

// close mirrors Server.Close: the forced path drains with an expired
// deadline, so the drain error only restates what the caller asked for.
func (sv *server) close() {
	sv.draining = true
	_ = sv.drainE() //lint:checked forced close; the drain error only reports what the caller asked for
}
