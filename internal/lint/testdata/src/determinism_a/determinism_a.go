// Package determinism_a exercises the determinism analyzer: wall-clock
// reads, global randomness, time-derived seeds, and map-range order
// sensitivity, plus the waiver forms.
//
//splitlint:deterministic
package determinism_a

import (
	"math/rand/v2"
	"sort"
	"time"
)

var sink int

// Wall-clock reads are forbidden in deterministic packages.
func clocks() {
	t0 := time.Now()           // want `determinism: time.Now`
	sink = int(time.Since(t0)) // want `determinism: time.Since`

	t1 := time.Now() //lint:walltime boot banner only, value never reaches an engine
	sink += t1.Second()
}

// Global draws are forbidden; keyed streams and explicit generators pass.
func draws() {
	sink = rand.IntN(10) // want `determinism: global rand.IntN`

	r := rand.New(rand.NewPCG(1, 2)) // explicit seed: fine
	sink += r.IntN(10)

	sink += rand.Int() //lint:globalrand jitter for a log message, not engine state

	bad := rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 2)) // want `determinism: time-derived seed for rand.New`
	sink += bad.IntN(3)
}

// Order-sensitive map ranges are reported...
func sensitive(m map[int]int) []int {
	var order []int
	for k := range m { // want `determinism: range over map`
		order = append(order, k)
	}

	best := 0
	for _, v := range m { // want `determinism: range over map`
		if v > best {
			best = v
		}
	}
	sink = best
	return order
}

// ...but provably order-insensitive bodies pass: commutative integer
// accumulation, map/set writes, deletes, slice writes keyed by the map key,
// per-iteration locals, and collect-then-sort.
func insensitive(m map[int]int, other map[int]int, slots []int) (int, []int) {
	sum := 0
	inv := make(map[int]int, len(m))
	for k, v := range m {
		sum += v
		inv[v] = k
		slots[k] = v
		if v == 0 {
			delete(other, k)
		}
		double := v * 2
		sum ^= double
	}

	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return sum, keys
}

// An //lint:ordered waiver suppresses the range diagnostic; an empty
// justification is its own diagnostic.
func waivers(m map[int]int) []int {
	var a []int
	//lint:ordered dedup set — callers sort downstream
	for k := range m {
		a = append(a, k)
	}

	var b []int
	//lint:ordered // want `//lint:ordered waiver needs a justification`
	for k := range m {
		b = append(b, k)
	}
	return append(a, b...)
}
