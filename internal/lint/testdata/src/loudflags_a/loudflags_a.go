// Package main (fixture loudflags_a) exercises the loudflags analyzer:
// every registered flag must be read somewhere, or it is silently ignored.
// Unread flag variables are package-level so the fixture still compiles —
// the &x reference inside the registration satisfies the compiler, but not
// the analyzer, which excludes the registration call itself.
package main

import (
	"flag"
	"fmt"
	"strings"
)

var (
	used  = flag.String("used", "", "read in main")
	dead  = flag.Int("dead", 0, "never read")                   // want `loudflags: flag "dead" is registered but its value is never read`
	inert = flag.Bool("inert", false, "kept for script compat") //lint:flagok legacy wrapper scripts still pass it
)

var (
	target int
	quiet  bool
)

type listVal []string

func (l *listVal) String() string     { return strings.Join(*l, ",") }
func (l *listVal) Set(s string) error { *l = append(*l, s); return nil }

var vals listVal
var ghost listVal

func main() {
	flag.IntVar(&target, "target", 0, "read below")
	flag.BoolVar(&quiet, "quiet", false, "never read") // want `loudflags: flag "quiet" is registered but its value is never read`

	flag.Var(&vals, "vals", "read below")
	flag.Var(&ghost, "ghost", "never read") // want `loudflags: flag "ghost" is registered but its value is never read`

	_ = flag.String("drop", "", "pointer discarded") // want `loudflags: flag "drop" is registered and its value pointer is discarded`

	flag.Func("mode", "callback carries the use", func(string) error { return nil })

	flag.Parse()
	fmt.Println(*used, target, vals)
}
