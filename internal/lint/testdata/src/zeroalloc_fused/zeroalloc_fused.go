// Package zeroalloc_fused pins the zeroalloc analyzer on the fused
// broadcast-scatter helper shape of the engine hot path: a clean fused
// kernel (indexed stores, shifts and masks only) must stay silent, the
// tiled drain's one-time retirement buffer rides a waiver, and the easy
// regressions — boxing the broadcast value for a debug sink, growing the
// retirement buffer without preallocated capacity — are reported.
package zeroalloc_fused

type bitPlane struct {
	lanes []uint64
	width int
}

var sink any

func observe(v any) { sink = v }

// castRow is the fused scatter+aggregate kernel shape: one lane value
// computed outside the arc loop, per-arc dead-target skips and masked OR
// stores. Entirely allocation-free — the marker must report nothing.
//
//splitlint:zeroalloc
func castRow(deliver []int32, next bitPlane, lo, hi int32, v uint64) int64 {
	lane := 1 | v&(1<<next.width-1)<<1
	msgs := int64(0)
	for arc := lo; arc < hi; arc++ {
		dst := deliver[arc]
		if dst < 0 {
			continue
		}
		dj := uint32(dst) << 1
		next.lanes[dj>>6] |= lane << (dj & 63)
		msgs++
	}
	return msgs
}

// castRowTraced is the regression shape: handing the broadcast value to an
// interface-typed observer boxes it on every call of the hot kernel.
//
//splitlint:zeroalloc
func castRowTraced(deliver []int32, next bitPlane, lo, hi int32, v uint64) {
	observe(v) // want `zeroalloc: uint64 value boxed into interface parameter`
	for arc := lo; arc < hi; arc++ {
		if dst := deliver[arc]; dst >= 0 {
			dj := uint32(dst) << uint(next.width)
			next.lanes[dj>>6] |= v << (dj & 63)
		}
	}
}

// drainTile is the tiled-block drain shape: the retirement buffer is
// allocated once per worker (waived — it is sized to a run-invariant bound
// and reused across every block), while appends beyond that capacity and
// per-tile scratch are exactly the bugs the marker must catch.
//
//splitlint:zeroalloc
func drainTile(active []int32, done []bool, nd []int32, cap int) []int32 {
	if len(nd) == 0 {
		nd = make([]int32, 0, cap) //lint:alloc once per worker, sized to the run-invariant tile-node bound
	}
	scratch := make([]int32, 4) // want `zeroalloc: make allocates`
	_ = scratch
	for _, v := range active {
		if done[v] {
			nd = append(nd, v) // want `zeroalloc: append may grow`
		}
	}
	return nd
}
