package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	t.Parallel()
	linttest.Run(t, "testdata", lint.Determinism, "determinism_a")
}

// TestDeterminismUndesignated pins the opt-in boundary: a package without
// the //splitlint:deterministic marker and outside the designated list is
// not checked at all.
func TestDeterminismUndesignated(t *testing.T) {
	t.Parallel()
	linttest.RunClean(t, "testdata", lint.Determinism, "determinism_plain")
}

func TestZeroAlloc(t *testing.T) {
	t.Parallel()
	linttest.Run(t, "testdata", lint.ZeroAlloc, "zeroalloc_a")
}

// TestZeroAllocFused pins the analyzer on the fused broadcast-scatter and
// tiled-drain shapes of the engine hot path: the clean fused kernel stays
// silent, the once-per-worker retirement buffer rides its waiver, and
// boxing or per-tile scratch inside the marked kernels is reported.
func TestZeroAllocFused(t *testing.T) {
	t.Parallel()
	linttest.Run(t, "testdata", lint.ZeroAlloc, "zeroalloc_fused")
}

func TestCheckedErr(t *testing.T) {
	t.Parallel()
	linttest.Run(t, "testdata", lint.CheckedErr, "checkederr_a")
}

// TestCheckedErrService pins the analyzer on the sweep-service idioms
// (Validate-gated Submit, service-internal ...E variants, the forced-drain
// waiver) so a service refactor cannot move a drop out of reach.
func TestCheckedErrService(t *testing.T) {
	t.Parallel()
	linttest.Run(t, "testdata", lint.CheckedErr, "checkederr_service")
}

func TestLoudFlags(t *testing.T) {
	t.Parallel()
	linttest.Run(t, "testdata", lint.LoudFlags, "loudflags_a")
}
