// Package load turns Go source into the type-checked Packages the splitlint
// analyzers run over, without importing anything outside the standard
// library.
//
// Two loaders cover splitlint's two worlds:
//
//   - GoList shells out to `go list -deps -export -json` once and type-checks
//     every non-dependency package against the compiler's cached export data
//     (importer.ForCompiler "gc" with a lookup into the build cache). This is
//     how `splitlint ./...` analyzes a real module: one subprocess total, no
//     network, no per-import source re-checking.
//
//   - Dir parses a single fixture directory (internal/lint/testdata/src/...)
//     and type-checks it with the source importer, which resolves standard
//     library imports straight from GOROOT. Fixtures must import only the
//     standard library.
//
// The `go vet -vettool` path does not go through this package at all: there
// the go command hands cmd/splitlint a ready-made .cfg with explicit file
// lists and export-data maps.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/local", or the fixture dir name)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeError holds the first type-checking error, if any. Analyzers
	// still run on partially-checked packages; drivers decide whether a
	// type error is fatal.
	TypeError error
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// ParseFiles parses the named files into fset with the mode every splitlint
// loader must use (comments kept — the analyzers read directives and
// waivers from them).
func ParseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks files as package path using imp, returning a Package.
// Type errors are recorded, not fatal: splitlint analyzers tolerate
// partially-checked trees.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) *Package {
	return CheckConfig(path, fset, files, types.Config{Importer: imp})
}

// CheckConfig is Check with a caller-prepared types.Config (GoVersion,
// Sizes, ...). conf.Error is overridden to collect rather than abort.
func CheckConfig(path string, fset *token.FileSet, files []*ast.File, conf types.Config) *Package {
	info := newInfo()
	var firstErr error
	conf.Error = func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	return &Package{
		Path:      path,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TypeError: firstErr,
	}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Name       string
	Error      *struct{ Err string }
}

// GoList loads the packages matching patterns in dir (a directory inside the
// module) and type-checks each non-dependency, non-standard-library match.
// Dependencies are imported from the compiler's cached export data, so the
// whole load costs a single `go list` subprocess and works fully offline.
func GoList(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Name,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, p := range targets {
		names := make([]string, len(p.GoFiles))
		for i, gf := range p.GoFiles {
			names[i] = filepath.Join(p.Dir, gf)
		}
		files, err := ParseFiles(fset, names)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, Check(p.ImportPath, fset, files, imp))
	}
	return pkgs, nil
}

// Fixture loading shares one file set and one source importer across calls:
// the source importer re-type-checks standard-library packages from GOROOT
// source and caches them per instance, so sharing makes the second fixture
// load nearly free.
var (
	fixtureMu   sync.Mutex
	fixtureFset *token.FileSet
	fixtureImp  types.Importer
)

// Dir loads the single package in dir (non-test .go files only) and
// type-checks it with the GOROOT source importer. The package's import path
// is the directory's base name. Intended for analysistest-style fixtures;
// the fixture may import only the standard library.
func Dir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(names)

	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if fixtureFset == nil {
		fixtureFset = token.NewFileSet()
		fixtureImp = importer.ForCompiler(fixtureFset, "source", nil)
	}
	files, err := ParseFiles(fixtureFset, names)
	if err != nil {
		return nil, err
	}
	return Check(filepath.Base(dir), fixtureFset, files, fixtureImp), nil
}
