package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// deterministicPkgs lists the packages whose non-test code must be
// bit-reproducible: everything that runs inside an engine round, draws
// randomness, or verifies outputs. A package outside this list can opt in
// with a //splitlint:deterministic comment in any non-test file.
var deterministicPkgs = map[string]bool{
	"repro/internal/local":      true,
	"repro/internal/core":       true,
	"repro/internal/coloring":   true,
	"repro/internal/mis":        true,
	"repro/internal/prob":       true,
	"repro/internal/check":      true,
	"repro/internal/slocal":     true,
	"repro/internal/derand":     true,
	"repro/internal/orient":     true,
	"repro/internal/multicolor": true,
	"repro/internal/reduction":  true,
}

// randConstructors are the math/rand{,/v2} entry points that are fine in
// deterministic code because they build an explicitly-seeded generator —
// provided the seed is not derived from the wall clock.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewZipf": true, "NewChaCha8": true,
}

// Determinism enforces the repo's bit-identity contract in designated
// packages: no wall-clock reads, no process-global randomness, and no map
// iteration whose order can leak into outputs.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "engine-path packages must be bit-reproducible: no time.Now/Since/Until, no global math/rand draws or time-derived seeds (randomness flows through prob keyed streams), and no order-sensitive range over a map" + `

In packages listed as deterministic (internal/local, core, coloring, mis,
prob, check, slocal, derand, orient, multicolor, reduction — or any package
carrying a //splitlint:deterministic comment), non-test files may not read
the wall clock, draw from math/rand's process-global state, or seed a
generator from the clock. Ranging over a map is allowed only when the loop
body is provably order-insensitive (commutative integer updates, writes
keyed by the map key, appends to a slice that is sorted before use) or when
the loop carries a //lint:ordered <why> waiver.`,
	Run: runDeterminism,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	if !isDeterministicPkg(pass) {
		return nil, nil
	}
	w := newWaivers(pass)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		d := &determinismFile{pass: pass, w: w}
		d.sortCalls(file)
		ast.Inspect(file, d.visit)
	}
	return nil, nil
}

func isDeterministicPkg(pass *analysis.Pass) bool {
	path := pass.Pkg.Path()
	// "repro/internal/local [repro/internal/local.test]" is the test variant
	// of the same package; strip the vet/test suffix before matching.
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if deterministicPkgs[path] {
		return true
	}
	for _, file := range pass.Files {
		if !isTestFile(pass, file) && fileMarked(file, markerDeterministic) {
			return true
		}
	}
	return false
}

type determinismFile struct {
	pass *analysis.Pass
	w    *waivers

	// seedSuppressed records time.* calls already reported as part of a
	// time-derived-seed diagnostic, so the plain wall-clock rule does not
	// double-report them.
	seedSuppressed map[*ast.CallExpr]bool

	// sortedAfter records (slice object, position) pairs for calls like
	// sort.Ints(x) / slices.Sort(x): appends to x inside a map range that
	// ends before the sort position are order-insensitive.
	sortedAfter []sortedSlice
}

type sortedSlice struct {
	obj types.Object
	pos token.Pos
}

var sortFuncNames = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Ints": true, "Strings": true, "Float64s": true,
}

// sortCalls pre-scans the file for sorting calls so the map-range heuristic
// can recognize the collect-then-sort idiom.
func (d *determinismFile) sortCalls(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		f := calleeFunc(d.pass, call)
		if f == nil {
			return true
		}
		pkg := pkgPathOf(f)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if !sortFuncNames[f.Name()] && !strings.HasPrefix(f.Name(), "Sort") {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := d.pass.TypesInfo.Uses[id]; obj != nil {
				d.sortedAfter = append(d.sortedAfter, sortedSlice{obj: obj, pos: call.Pos()})
			}
		}
		return true
	})
}

func (d *determinismFile) sortedLater(obj types.Object, after token.Pos) bool {
	for _, s := range d.sortedAfter {
		if s.obj == obj && s.pos > after {
			return true
		}
	}
	return false
}

func (d *determinismFile) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		d.checkCall(n)
	case *ast.RangeStmt:
		d.checkRange(n)
	}
	return true
}

func isWallClockFunc(f *types.Func) bool {
	if pkgPathOf(f) != "time" {
		return false
	}
	switch f.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func (d *determinismFile) checkCall(call *ast.CallExpr) {
	f := calleeFunc(d.pass, call)
	if f == nil {
		return
	}
	sig, _ := f.Type().(*types.Signature)

	if isWallClockFunc(f) {
		if d.seedSuppressed[call] {
			return
		}
		if d.w.waived(call.Pos(), waiverWallTime) {
			return
		}
		d.pass.Reportf(call.Pos(),
			"determinism: time.%s in deterministic package %s — wall-clock values shatter bit-identity; key timing off round numbers or move it to the experiments layer",
			f.Name(), d.pass.Pkg.Name())
		return
	}

	if !isRandPkg(pkgPathOf(f)) {
		return
	}

	// Seeding calls: constructors and the v1 (*Rand).Seed / rand.Seed. Any
	// of them fed a wall-clock-derived argument is a time-derived seed.
	seeding := randConstructors[f.Name()] || f.Name() == "Seed"
	if seeding {
		for _, arg := range call.Args {
			if tc := findWallClockCall(d.pass, arg); tc != nil {
				if d.seedSuppressed[tc] {
					return // already reported at the outer constructor
				}
				if d.seedSuppressed == nil {
					d.seedSuppressed = map[*ast.CallExpr]bool{}
				}
				d.seedSuppressed[tc] = true
				if d.w.waived(call.Pos(), waiverGlobalRand) {
					return
				}
				d.pass.Reportf(call.Pos(),
					"determinism: time-derived seed for %s.%s — seeds must be explicit and flow through prob keyed streams",
					f.Pkg().Name(), f.Name())
				return
			}
		}
	}
	if randConstructors[f.Name()] {
		return // explicitly-seeded generator: fine
	}
	if sig != nil && sig.Recv() != nil {
		return // method on an explicit *rand.Rand/Source instance: fine
	}
	if d.w.waived(call.Pos(), waiverGlobalRand) {
		return
	}
	d.pass.Reportf(call.Pos(),
		"determinism: global %s.%s draws from process-global state — route randomness through prob keyed streams",
		f.Pkg().Name(), f.Name())
}

// findWallClockCall returns a time.Now/Since/Until call nested anywhere in
// expr, or nil.
func findWallClockCall(pass *analysis.Pass, expr ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if f := calleeFunc(pass, call); f != nil && isWallClockFunc(f) {
				found = call
				return false
			}
		}
		return true
	})
	return found
}

func (d *determinismFile) checkRange(rs *ast.RangeStmt) {
	t := d.pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if d.w.waived(rs.For, waiverOrdered) {
		return
	}
	if d.orderInsensitive(rs) {
		return
	}
	d.pass.Reportf(rs.For,
		"determinism: range over map has nondeterministic order that can leak into outputs — sort the keys first, restrict the body to commutative updates, or waive with //lint:ordered <why>")
}

// orderInsensitive reports whether the body of the map-range statement is
// order-insensitive under a conservative syntactic policy: per-iteration
// locals, writes into maps, writes into slices indexed by the range key,
// commutative integer accumulation, delete, and appends to a slice that is
// sorted after the loop. Everything else (early exits, plain assignments to
// outer variables, arbitrary calls) is treated as order-sensitive.
func (d *determinismFile) orderInsensitive(rs *ast.RangeStmt) bool {
	var keyObj types.Object
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = d.pass.TypesInfo.Defs[id]
		if keyObj == nil {
			keyObj = d.pass.TypesInfo.Uses[id] // "for k = range m" with outer k
		}
	}
	var allowed func(s ast.Stmt) bool
	allowedAll := func(list []ast.Stmt) bool {
		for _, s := range list {
			if !allowed(s) {
				return false
			}
		}
		return true
	}
	allowed = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case nil:
			return true
		case *ast.AssignStmt:
			return d.allowedAssign(s, rs, keyObj)
		case *ast.IncDecStmt:
			return isIntegerType(d.pass.TypesInfo.TypeOf(s.X))
		case *ast.DeclStmt:
			return true // declares per-iteration locals
		case *ast.ExprStmt:
			call, ok := ast.Unparen(s.X).(*ast.CallExpr)
			if !ok {
				return false
			}
			// delete(m, k) is the one side-effecting call that is always
			// order-insensitive: the deletes commute.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := d.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
			return false
		case *ast.IfStmt:
			if !allowed(s.Init) || !allowedAll(s.Body.List) {
				return false
			}
			return s.Else == nil || allowed(s.Else)
		case *ast.BlockStmt:
			return allowedAll(s.List)
		case *ast.ForStmt:
			return allowed(s.Init) && allowed(s.Post) && allowedAll(s.Body.List)
		case *ast.RangeStmt:
			return allowedAll(s.Body.List)
		case *ast.SwitchStmt:
			if !allowed(s.Init) {
				return false
			}
			for _, c := range s.Body.List {
				if !allowedAll(c.(*ast.CaseClause).Body) {
					return false
				}
			}
			return true
		case *ast.BranchStmt:
			// continue is fine (skips to the next key); break/goto make the
			// outcome depend on which key comes first.
			return s.Tok == token.CONTINUE && s.Label == nil
		default:
			// return, break, goto, send, go, defer, select, labeled, ...:
			// all can make behavior depend on which key comes first.
			return false
		}
	}
	return allowedAll(rs.Body.List)
}

func (d *determinismFile) allowedAssign(s *ast.AssignStmt, rs *ast.RangeStmt, keyObj types.Object) bool {
	switch s.Tok {
	case token.DEFINE:
		return true // per-iteration locals
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			if !d.allowedTarget(lhs, rs, keyObj, rhsFor(s, i)) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		// Commutative-associative integer accumulation (+, *, |, &, ^; -= and
		// &^= compose to a single commutative aggregate).
		return len(s.Lhs) == 1 && isIntegerType(d.pass.TypesInfo.TypeOf(s.Lhs[0]))
	default:
		return false
	}
}

// rhsFor returns the RHS expression assigned to LHS index i, handling both
// n:=n and tuple (single-RHS) assignments; nil when unavailable.
func rhsFor(s *ast.AssignStmt, i int) ast.Expr {
	if len(s.Rhs) == len(s.Lhs) {
		return s.Rhs[i]
	}
	return nil
}

// allowedTarget reports whether assigning to lhs inside the map range rs is
// order-insensitive.
func (d *determinismFile) allowedTarget(lhs ast.Expr, rs *ast.RangeStmt, keyObj types.Object, rhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return true
		}
		obj := d.pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = d.pass.TypesInfo.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		// A variable declared inside the loop body is per-iteration state.
		if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
			return true
		}
		// x = append(x, ...) is fine when x is sorted after the loop.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, isB := d.pass.TypesInfo.Uses[id].(*types.Builtin); isB && b.Name() == "append" {
					return d.sortedLater(obj, rs.End())
				}
			}
		}
		return false
	case *ast.IndexExpr:
		xt := d.pass.TypesInfo.TypeOf(lhs.X)
		if xt == nil {
			return false
		}
		switch xt.Underlying().(type) {
		case *types.Map:
			return true // distinct keys land in distinct entries
		case *types.Slice, *types.Array, *types.Pointer:
			// Slice/array writes are keyed iff the index mentions the range
			// key (distinct keys → distinct slots).
			return keyObj != nil && mentionsObject(d.pass, lhs.Index, keyObj)
		}
		return false
	default:
		return false
	}
}

func mentionsObject(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
