// Package analysis is a minimal, dependency-free subset of the
// golang.org/x/tools/go/analysis API.
//
// The repo's hermetic-build rule (no modules outside the standard library)
// rules out importing x/tools, so the splitlint analyzers are written against
// this clone of the upstream surface instead: the Analyzer/Pass/Diagnostic
// shapes, field names and reporting helpers match x/tools exactly, so every
// analyzer in internal/lint can be lifted verbatim onto the real framework
// the day the dependency becomes available. Only the subset splitlint needs
// is provided — in particular there is no Fact machinery (the four splitlint
// analyzers are strictly intra-package) and no Requires graph.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis function: its name, a documentation
// string whose first line is the one-sentence invariant it enforces, and the
// Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer on the command line and in diagnostics.
	// It must be a valid Go identifier.
	Name string

	// Doc documents the analyzer. The first line is the short one-sentence
	// summary printed by `splitlint -list`.
	Doc string

	// Run applies the analyzer to a package. It returns an analyzer-specific
	// result value (unused by splitlint's analyzers, kept for API fidelity)
	// or an error if the analysis itself failed — an error is an analyzer
	// bug or environment problem, not a diagnostic.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the type-checked syntax of a single
// package plus the Report sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer // the identity of the current analyzer

	Fset      *token.FileSet // file position information
	Files     []*ast.File    // the package's syntax trees, with comments
	Pkg       *types.Package // type information about the package
	TypesInfo *types.Info    // type information about the syntax trees

	// Report records a diagnostic. Drivers install it; analyzers should
	// prefer the Reportf helper.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with the formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (p *Pass) String() string {
	return fmt.Sprintf("%s@%s", p.Analyzer.Name, p.Pkg.Path())
}

// A Diagnostic is a message associated with a source location.
type Diagnostic struct {
	Pos      token.Pos
	Category string // optional sub-category of the check, e.g. "maprange"
	Message  string
}

// Validate reports an error if any analyzer is misconfigured (nil Run,
// empty or duplicate name). Drivers call it once at startup so a broken
// registration fails loudly instead of silently analyzing nothing.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a == nil {
			return fmt.Errorf("nil *Analyzer")
		}
		if a.Name == "" {
			return fmt.Errorf("analyzer with empty name (doc: %.40q)", a.Doc)
		}
		if a.Run == nil {
			return fmt.Errorf("analyzer %q has nil Run", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
