package graph

import "fmt"

// FromGraph encodes a general graph G as a weak-splitting bipartite instance
// following Section 1.2: every node v of G gets a left copy vL ∈ U and a
// right copy vR ∈ V, and every edge {u, v} of G contributes the bipartite
// edges (uL, vR) and (vL, uR). Copy i of node v is index v on both sides.
//
// A weak splitting of the result 2-colors the right copies, i.e. the nodes
// of G, such that every node (whose degree is large enough) has a neighbor
// of each color — exactly the weak splitting problem on G.
func FromGraph(g *Graph) *Bipartite {
	c := g.CSR()
	n := c.N()
	b := NewBipartite(n, n)
	for u := 0; u < n; u++ {
		for _, v := range c.Row(u) {
			b.addEdgeUnchecked(int32(u), v)
		}
	}
	b.Normalize()
	return b
}

// VirtualSplit is the virtual-node degree normalization of Section 2.4: a
// left node u with deg(u) > 2δ is split into ⌊deg(u)/δ⌋ virtual nodes, each
// receiving between δ and 2δ-1 of u's edges, so the resulting instance has
// δ ≤ deg < 2δ on the left. A weak splitting of the virtual instance
// directly induces one on the original (each virtual node's constraint is
// stricter than the original's).
type VirtualSplit struct {
	B      *Bipartite // the normalized instance
	Origin []int      // Origin[u'] = original left node of virtual node u'
}

// NormalizeLeftDegrees performs the virtual split with parameter delta,
// which must be ≤ the minimum left degree.
func NormalizeLeftDegrees(b *Bipartite, delta int) (*VirtualSplit, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("graph: delta must be positive, got %d", delta)
	}
	if md := b.MinDegU(); md < delta {
		return nil, fmt.Errorf("graph: delta %d exceeds minimum left degree %d", delta, md)
	}
	// First pass: count virtual nodes so the result is sized up front.
	partsOf := func(d int) int {
		if d > 2*delta {
			return d / delta
		}
		return 1
	}
	var nuVirtual int
	for u := 0; u < b.NU(); u++ {
		nuVirtual += partsOf(b.DegU(u))
	}
	var origin []int
	nb := NewBipartite(nuVirtual, b.NV())
	uid := 0
	for u := 0; u < b.NU(); u++ {
		nbrs := b.NbrU(u)
		d := len(nbrs)
		parts := partsOf(d)
		base, extra := d/parts, d%parts
		at := 0
		for p := 0; p < parts; p++ {
			size := base
			if p < extra {
				size++
			}
			for _, v := range nbrs[at : at+size] {
				nb.addEdgeUnchecked(int32(uid), v)
			}
			origin = append(origin, u)
			uid++
			at += size
		}
	}
	nb.Normalize()
	return &VirtualSplit{B: nb, Origin: origin}, nil
}

// TruncateLeftDegrees returns a subgraph in which every left node keeps only
// its first keep edges (an arbitrary subset, as in Lemma 2.2). Left nodes
// with degree ≤ keep are unchanged. The weak splitting property is preserved
// under adding edges back.
func TruncateLeftDegrees(b *Bipartite, keep int) *Bipartite {
	nb := NewBipartite(b.NU(), b.NV())
	for u := 0; u < b.NU(); u++ {
		take := b.NbrU(u)
		if len(take) > keep {
			take = take[:keep]
		}
		for _, v := range take {
			nb.addEdgeUnchecked(int32(u), v)
		}
	}
	nb.Normalize()
	return nb
}

// CliqueGadgetResult is the outcome of AttachCliqueGadgets.
type CliqueGadgetResult struct {
	G        *Graph // the augmented graph
	Original int    // nodes 0..Original-1 are the original nodes
}

// AttachCliqueGadgets implements the Remark of Section 4.1: every node v
// with deg(v) < delta gets a fresh delta-clique, with edges from
// delta−deg(v) clique nodes to v, raising v's degree to delta while keeping
// all degrees ≤ delta + 1. A uniform splitting of the augmented graph
// restricted to the original nodes solves the modified (no low-degree
// constraint) problem.
func AttachCliqueGadgets(g *Graph, delta int) *CliqueGadgetResult {
	c := g.CSR()
	n := c.N()
	low := 0
	for v := 0; v < n; v++ {
		if c.Deg(v) < delta {
			low++
		}
	}
	bld := NewCSRBuilder(n+low*delta, c.Arcs()/2+low*delta*(delta+1)/2)
	for u := 0; u < n; u++ {
		for _, v := range c.Row(u) {
			if int32(u) < v {
				bld.Edge(int32(u), v)
			}
		}
	}
	base := n
	for v := 0; v < n; v++ {
		need := delta - c.Deg(v)
		if need <= 0 {
			continue
		}
		for i := 0; i < delta; i++ {
			for j := i + 1; j < delta; j++ {
				bld.Edge(int32(base+i), int32(base+j))
			}
		}
		for i := 0; i < need; i++ {
			bld.Edge(int32(base+i), int32(v))
		}
		base += delta
	}
	return &CliqueGadgetResult{G: fromCSR(bld.Build()), Original: n}
}
