// Native fuzz targets for the graph file readers, following the
// internal/check discipline: decode untrusted bytes through the public
// import API — which must return descriptive errors, never panic — and
// corrupt every accepted input in ways that are invalid by construction,
// which the reader must then reject. Seed corpora live in testdata/fuzz.
package graph_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/graph"
)

// fuzzCap bounds the input size so the fuzzer explores formats, not
// allocator limits.
const fuzzCap = 1 << 20

func FuzzImportEdgeList(f *testing.F) {
	f.Add([]byte("# comment\n0 1\n1 2\n2 0\n"))
	f.Add([]byte("% adjacency rows\n7 8 9\n8 9\n"))
	f.Add([]byte("101 7\n7 300\n300 101\n"))
	f.Add([]byte("1 1\n"))       // self loop
	f.Add([]byte("1 2\n2 1\n"))  // duplicate in the reverse orientation
	f.Add([]byte("x y\n"))       // unparsable IDs
	f.Add([]byte("-3 -4\n-4 9")) // negative IDs are fine (they get remapped)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzCap {
			return
		}
		strictG, ids, strictErr := graph.ImportEdgeList(bytes.NewReader(data), "fuzz", graph.EdgeListOptions{})
		//lint:checked lenient-mode call only probes for panics; the strict call's result is what gets verified
		_, _, _ = graph.ImportEdgeList(bytes.NewReader(data), "fuzz",
			graph.EdgeListOptions{DropSelfLoops: true, DropDuplicates: true})
		if strictErr != nil {
			return
		}
		// Strict acceptance means a simple graph: the ID table matches the
		// node count and the snapshot round trip preserves the CSR.
		if len(ids) != strictG.N() {
			t.Fatalf("ID table has %d entries for %d nodes", len(ids), strictG.N())
		}
		seen := make(map[int64]bool, len(ids))
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("external ID %d remapped twice", id)
			}
			seen[id] = true
		}
		var buf bytes.Buffer
		if err := strictG.ExportSnapshot(&buf); err != nil {
			t.Fatalf("exporting an accepted graph: %v", err)
		}
		back, err := graph.ImportSnapshot(buf.Bytes())
		if err != nil {
			t.Fatalf("re-importing an accepted graph: %v", err)
		}
		if back.N() != strictG.N() || back.M() != strictG.M() {
			t.Fatalf("snapshot round trip changed the shape: %d/%d vs %d/%d",
				back.N(), back.M(), strictG.N(), strictG.M())
		}
	})
}

func FuzzImportSnapshot(f *testing.F) {
	for _, g := range []*graph.Graph{graph.NewGraph(0), graph.Cycle(5), graph.Cycle(16)} {
		var buf bytes.Buffer
		if err := g.ExportSnapshot(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	if b, err := graph.BipartiteFromEdges(2, 3, [][2]int{{0, 0}, {0, 1}, {1, 2}}); err == nil {
		var buf bytes.Buffer
		if err := b.ExportSnapshot(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("CSRSNAP1 truncated"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzCap {
			return
		}
		g, b, err := graph.ImportAnySnapshot(data)
		if err != nil {
			return
		}
		// Accepted data must satisfy the structural contract and survive an
		// export→import round trip.
		st, err := graph.StatSnapshot(data)
		if err != nil {
			t.Fatalf("import accepted what StatSnapshot rejects: %v", err)
		}
		var buf bytes.Buffer
		switch {
		case g != nil:
			if st.Kind != "graph" || st.N != g.N() || st.Arcs != 2*g.M() {
				t.Fatalf("stat disagrees with import: %+v vs n=%d m=%d", st, g.N(), g.M())
			}
			if err := g.ExportSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			if _, err := graph.ImportSnapshot(buf.Bytes()); err != nil {
				t.Fatalf("re-import of accepted graph failed: %v", err)
			}
		case b != nil:
			if st.Kind != "bipartite" || st.NU != b.NU() || st.NV != b.NV() {
				t.Fatalf("stat disagrees with import: %+v vs nu=%d nv=%d", st, b.NU(), b.NV())
			}
			if err := b.ExportSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			if _, err := graph.ImportBipartiteSnapshot(buf.Bytes()); err != nil {
				t.Fatalf("re-import of accepted bipartite failed: %v", err)
			}
		default:
			t.Fatal("nil error with neither graph nor bipartite")
		}

		// Guaranteed-invalid corruptions of the accepted bytes. The header
		// geometry is fixed by the format spec (DESIGN.md): a 24-byte header
		// whose section count sits at offset 20, then 32-byte table entries,
		// then the checksummed payloads.
		corrupt := func(name string, mutate func(d []byte) []byte) {
			t.Helper()
			if c := mutate(append([]byte(nil), data...)); c != nil {
				if _, _, err := graph.ImportAnySnapshot(c); err == nil {
					t.Fatalf("corruption %q accepted", name)
				}
			}
		}
		corrupt("magic flip", func(d []byte) []byte { d[0] ^= 0xff; return d })
		corrupt("halved", func(d []byte) []byte { return d[:len(d)/2] })
		corrupt("first payload bit flip", func(d []byte) []byte {
			// The first section (META, never empty) starts right after the
			// table; its CRC must catch a single flipped bit.
			tableEnd := 24 + 32*int(binary.NativeEndian.Uint32(d[20:]))
			d[tableEnd] ^= 1
			return d
		})
	})
}
