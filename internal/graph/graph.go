// Package graph provides the graph substrates of the reproduction: simple
// undirected graphs, bipartite constraint/variable graphs B = (U ∪ V, E) as
// used throughout the paper, and multigraphs (needed by the directed degree
// splitting of Definition 2.1 and by Degree-Rank Reduction II).
//
// It also provides the instance generators used by the experiments and the
// structural transforms the paper relies on: the graph → bipartite encoding
// of Section 1.2, virtual-node degree normalization (Section 2.4), clique
// gadgets (Section 4.1), and power graphs B², B⁴ (used to compile SLOCAL
// algorithms into LOCAL ones).
//
// All three graph types store their adjacency in compressed-sparse-row form
// (see CSR): one flat offset array plus one flat edge array, so neighbor
// scans are contiguous and million-node instances fit in a handful of
// allocations. AddEdge buffers into a flat pending array; Normalize (or the
// first read accessor) merges the buffer in O(n + m). Neighbor slices
// returned by accessors are zero-copy views into the flat arrays.
//
// Because the merge is lazy, a read accessor on a graph with buffered edges
// mutates it: call Normalize after the last AddEdge before sharing a graph
// across goroutines. A normalized graph is immutable under reads and safe
// for concurrent use (every generator and transform in this package returns
// graphs already normalized).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on nodes 0..N()-1 with sorted,
// CSR-backed adjacency rows. Read accessors merge buffered AddEdge calls
// lazily (see the package comment for the concurrency contract).
type Graph struct {
	csr     CSR
	pending []int32 // flat (u, v) directed-arc pairs awaiting a merge
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{csr: emptyCSR(n)}
}

// fromCSR wraps an already sorted-and-deduplicated CSR as a Graph.
func fromCSR(c CSR) *Graph { return &Graph{csr: c} }

// FromEdges builds a graph on n nodes from an edge list. Duplicate edges and
// self loops are rejected.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	g := NewGraph(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	g.Normalize()
	return g, nil
}

// AddEdge inserts the undirected edge {u, v}. It returns an error for self
// loops or out-of-range endpoints. Call Normalize after bulk insertion.
func (g *Graph) AddEdge(u, v int) error {
	n := g.N()
	if u == v {
		return fmt.Errorf("graph: self loop at node %d", u)
	}
	if u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, n)
	}
	g.pending = append(g.pending, int32(u), int32(v), int32(v), int32(u))
	return nil
}

// Normalize merges buffered edges into the CSR core, sorting rows and
// removing duplicate parallel edges. Read accessors call it implicitly, so
// it is only required for callers that want to control when the O(n + m)
// rebuild happens.
func (g *Graph) Normalize() {
	if g.pending == nil {
		return
	}
	g.csr = mergeCSR(g.N(), g.csr, g.pending)
	g.pending = nil
}

// CSR exposes the flat offset/edge arrays (zero-copy; callers must not
// modify them). Engines and checkers iterate neighbors directly off these.
func (g *Graph) CSR() CSR {
	g.Normalize()
	return g.csr
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.csr.N() }

// M returns the number of edges.
func (g *Graph) M() int {
	g.Normalize()
	return g.csr.Arcs() / 2
}

// Deg returns the degree of node v.
func (g *Graph) Deg(v int) int {
	g.Normalize()
	return g.csr.Deg(v)
}

// Neighbors returns the sorted neighbor list of v as a view into the flat
// edge array; it must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	g.Normalize()
	return g.csr.Row(v)
}

// HasEdge reports whether {u, v} is an edge, in O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	return i < len(nbrs) && nbrs[i] == int32(v)
}

// MaxDeg returns the maximum degree Δ (0 for the empty graph).
func (g *Graph) MaxDeg() int {
	g.Normalize()
	var d int
	for v := 0; v < g.csr.N(); v++ {
		if dv := g.csr.Deg(v); dv > d {
			d = dv
		}
	}
	return d
}

// MinDeg returns the minimum degree δ (0 for the empty graph).
func (g *Graph) MinDeg() int {
	g.Normalize()
	n := g.csr.N()
	if n == 0 {
		return 0
	}
	d := g.csr.Deg(0)
	for v := 1; v < n; v++ {
		if dv := g.csr.Deg(v); dv < d {
			d = dv
		}
	}
	return d
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	return &Graph{
		csr:     g.csr.clone(),
		pending: append([]int32(nil), g.pending...),
	}
}

// Edges returns the edge list with u < v in each pair.
func (g *Graph) Edges() [][2]int {
	g.Normalize()
	edges := make([][2]int, 0, g.M())
	for u := 0; u < g.csr.N(); u++ {
		for _, v := range g.csr.Row(u) {
			if int32(u) < v {
				edges = append(edges, [2]int{u, int(v)})
			}
		}
	}
	return edges
}

// InducedSubgraph returns the subgraph induced by keep, together with the
// mapping from new node ids to original ids.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	g.Normalize()
	idx := make(map[int]int, len(keep))
	orig := make([]int, len(keep))
	for i, v := range keep {
		idx[v] = i
		orig[i] = v
	}
	bld := NewCSRBuilder(len(keep), 0)
	for i, v := range keep {
		for _, w := range g.csr.Row(v) {
			if j, ok := idx[int(w)]; ok && i < j {
				bld.Edge(int32(i), int32(j))
			}
		}
	}
	return fromCSR(bld.Build()), orig
}

// ConnectedComponents returns the node sets of the connected components.
func (g *Graph) ConnectedComponents() [][]int {
	g.Normalize()
	n := g.csr.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		comp[s] = id
		queue = append(queue[:0], int32(s))
		members := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.csr.Row(int(v)) {
				if comp[w] < 0 {
					comp[w] = id
					members = append(members, int(w))
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, members)
	}
	return comps
}

// Girth returns the length of a shortest cycle, or 0 if the graph is a
// forest. It runs a BFS from every node, which is fine at the scale of the
// experiment instances.
func (g *Graph) Girth() int {
	g.Normalize()
	n := g.csr.N()
	best := 0
	dist := make([]int32, n)
	parent := make([]int32, n)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		parent[s] = -1
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.csr.Row(int(v)) {
				if w == parent[v] {
					// Skip exactly one copy of the tree edge back to the
					// parent; a second parallel edge would be a multi-edge,
					// which simple graphs exclude.
					parent[v] = -2
					continue
				}
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					parent[w] = v
					queue = append(queue, w)
				} else {
					// Found a cycle through s of length <= dist[v]+dist[w]+1.
					cyc := int(dist[v] + dist[w] + 1)
					if best == 0 || cyc < best {
						best = cyc
					}
				}
			}
			parent[v] = -2
		}
	}
	return best
}

// Power returns the k-th power graph: nodes are the same, and two distinct
// nodes are adjacent iff their distance in g is at most k.
func (g *Graph) Power(k int) *Graph {
	g.Normalize()
	n := g.csr.N()
	if k < 1 {
		return NewGraph(n)
	}
	bld := NewCSRBuilder(n, g.csr.Arcs())
	visited := make([]int32, n)
	for i := range visited {
		visited[i] = -1
	}
	var queue []int32
	depth := make([]int8, n)
	for s := 0; s < n; s++ {
		queue = append(queue[:0], int32(s))
		visited[s] = int32(s)
		depth[s] = 0
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if int(depth[v]) == k {
				continue
			}
			for _, w := range g.csr.Row(int(v)) {
				if visited[w] != int32(s) {
					visited[w] = int32(s)
					depth[w] = depth[v] + 1
					queue = append(queue, w)
					if int(w) > s {
						bld.Edge(int32(s), w)
					}
				}
			}
		}
	}
	return fromCSR(bld.Build())
}

// DegreeHistogram returns a map degree → count.
func (g *Graph) DegreeHistogram() map[int]int {
	g.Normalize()
	h := make(map[int]int)
	for v := 0; v < g.csr.N(); v++ {
		h[g.csr.Deg(v)]++
	}
	return h
}

// IsForest reports whether g is acyclic, in O(n + m): a graph is a forest
// iff m = n - (number of connected components).
func (g *Graph) IsForest() bool {
	return g.M() == g.N()-len(g.ConnectedComponents())
}

// GirthAtLeast reports whether the girth of g is at least want (forests
// pass vacuously). It short-circuits the O(n·m) girth computation for
// forests, which the high-girth experiments use at scale.
func (g *Graph) GirthAtLeast(want int) bool {
	if g.IsForest() {
		return true
	}
	girth := g.Girth()
	return girth == 0 || girth >= want
}
