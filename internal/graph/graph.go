// Package graph provides the graph substrates of the reproduction: simple
// undirected graphs, bipartite constraint/variable graphs B = (U ∪ V, E) as
// used throughout the paper, and multigraphs (needed by the directed degree
// splitting of Definition 2.1 and by Degree-Rank Reduction II).
//
// It also provides the instance generators used by the experiments and the
// structural transforms the paper relies on: the graph → bipartite encoding
// of Section 1.2, virtual-node degree normalization (Section 2.4), clique
// gadgets (Section 4.1), and power graphs B², B⁴ (used to compile SLOCAL
// algorithms into LOCAL ones).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on nodes 0..N()-1, stored as sorted
// adjacency lists.
type Graph struct {
	adj [][]int32
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]int32, n)}
}

// FromEdges builds a graph on n nodes from an edge list. Duplicate edges and
// self loops are rejected.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	g := NewGraph(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	g.Normalize()
	return g, nil
}

// AddEdge inserts the undirected edge {u, v}. It returns an error for self
// loops or out-of-range endpoints. Call Normalize after bulk insertion.
func (g *Graph) AddEdge(u, v int) error {
	n := len(g.adj)
	if u == v {
		return fmt.Errorf("graph: self loop at node %d", u)
	}
	if u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, n)
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	return nil
}

// Normalize sorts adjacency lists and removes duplicate parallel edges.
func (g *Graph) Normalize() {
	for i, nbrs := range g.adj {
		sort.Slice(nbrs, func(a, b int) bool { return nbrs[a] < nbrs[b] })
		g.adj[i] = dedupInt32(nbrs)
	}
}

func dedupInt32(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int {
	var m int
	for _, nbrs := range g.adj {
		m += len(nbrs)
	}
	return m / 2
}

// Deg returns the degree of node v.
func (g *Graph) Deg(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge, in O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	nbrs := g.adj[u]
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	return i < len(nbrs) && nbrs[i] == int32(v)
}

// MaxDeg returns the maximum degree Δ (0 for the empty graph).
func (g *Graph) MaxDeg() int {
	var d int
	for _, nbrs := range g.adj {
		if len(nbrs) > d {
			d = len(nbrs)
		}
	}
	return d
}

// MinDeg returns the minimum degree δ (0 for the empty graph).
func (g *Graph) MinDeg() int {
	if len(g.adj) == 0 {
		return 0
	}
	d := len(g.adj[0])
	for _, nbrs := range g.adj[1:] {
		if len(nbrs) < d {
			d = len(nbrs)
		}
	}
	return d
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	adj := make([][]int32, len(g.adj))
	for i, nbrs := range g.adj {
		adj[i] = append([]int32(nil), nbrs...)
	}
	return &Graph{adj: adj}
}

// Edges returns the edge list with u < v in each pair.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.M())
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if int32(u) < v {
				edges = append(edges, [2]int{u, int(v)})
			}
		}
	}
	return edges
}

// InducedSubgraph returns the subgraph induced by keep, together with the
// mapping from new node ids to original ids.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	idx := make(map[int]int, len(keep))
	orig := make([]int, len(keep))
	for i, v := range keep {
		idx[v] = i
		orig[i] = v
	}
	sub := NewGraph(len(keep))
	for i, v := range keep {
		for _, w := range g.adj[v] {
			if j, ok := idx[int(w)]; ok && i < j {
				sub.adj[i] = append(sub.adj[i], int32(j))
				sub.adj[j] = append(sub.adj[j], int32(i))
			}
		}
	}
	sub.Normalize()
	return sub, orig
}

// ConnectedComponents returns the node sets of the connected components.
func (g *Graph) ConnectedComponents() [][]int {
	n := len(g.adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		comp[s] = id
		queue = append(queue[:0], int32(s))
		members := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if comp[w] < 0 {
					comp[w] = id
					members = append(members, int(w))
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, members)
	}
	return comps
}

// Girth returns the length of a shortest cycle, or 0 if the graph is a
// forest. It runs a BFS from every node, which is fine at the scale of the
// experiment instances.
func (g *Graph) Girth() int {
	n := len(g.adj)
	best := 0
	dist := make([]int32, n)
	parent := make([]int32, n)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		parent[s] = -1
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if w == parent[v] {
					// Skip exactly one copy of the tree edge back to the
					// parent; a second parallel edge would be a multi-edge,
					// which simple graphs exclude.
					parent[v] = -2
					continue
				}
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					parent[w] = v
					queue = append(queue, w)
				} else {
					// Found a cycle through s of length <= dist[v]+dist[w]+1.
					cyc := int(dist[v] + dist[w] + 1)
					if best == 0 || cyc < best {
						best = cyc
					}
				}
			}
			parent[v] = -2
		}
	}
	return best
}

// Power returns the k-th power graph: nodes are the same, and two distinct
// nodes are adjacent iff their distance in g is at most k.
func (g *Graph) Power(k int) *Graph {
	n := len(g.adj)
	out := NewGraph(n)
	if k < 1 {
		return out
	}
	visited := make([]int32, n)
	for i := range visited {
		visited[i] = -1
	}
	var queue []int32
	depth := make([]int8, n)
	for s := 0; s < n; s++ {
		queue = append(queue[:0], int32(s))
		visited[s] = int32(s)
		depth[s] = 0
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if int(depth[v]) == k {
				continue
			}
			for _, w := range g.adj[v] {
				if visited[w] != int32(s) {
					visited[w] = int32(s)
					depth[w] = depth[v] + 1
					queue = append(queue, w)
					if int(w) > s {
						out.adj[s] = append(out.adj[s], w)
						out.adj[w] = append(out.adj[w], int32(s))
					}
				}
			}
		}
	}
	out.Normalize()
	return out
}

// DegreeHistogram returns a map degree → count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, nbrs := range g.adj {
		h[len(nbrs)]++
	}
	return h
}

// IsForest reports whether g is acyclic, in O(n + m): a graph is a forest
// iff m = n - (number of connected components).
func (g *Graph) IsForest() bool {
	return g.M() == g.N()-len(g.ConnectedComponents())
}

// GirthAtLeast reports whether the girth of g is at least want (forests
// pass vacuously). It short-circuits the O(n·m) girth computation for
// forests, which the high-girth experiments use at scale.
func (g *Graph) GirthAtLeast(want int) bool {
	if g.IsForest() {
		return true
	}
	girth := g.Girth()
	return girth == 0 || girth >= want
}
