package graph

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestCSRBuilderEndpointValidation(t *testing.T) {
	// The regression this pins: fillCSR used to index off[arc+1] with no
	// bounds check, so a bad endpoint panicked with a raw index error deep
	// inside the builder. Arc/Edge now record a descriptive error.
	cases := []struct {
		name string
		u, v int32
	}{
		{"negative-src", -1, 0},
		{"negative-dst", 0, -3},
		{"src==n", 4, 0},
		{"dst==n", 0, 4},
		{"src>n", 9, 0},
		{"dst>n", 1, 100},
	}
	for _, tc := range cases {
		t.Run("arc/"+tc.name, func(t *testing.T) {
			b := NewCSRBuilder(4, 0)
			b.Arc(0, 1)
			b.Arc(tc.u, tc.v)
			if b.Err() == nil {
				t.Fatal("out-of-range arc not recorded")
			}
			if _, err := b.BuildE(); err == nil || !strings.Contains(err.Error(), "out of range") {
				t.Fatalf("BuildE error not descriptive: %v", err)
			}
		})
		t.Run("edge/"+tc.name, func(t *testing.T) {
			b := NewCSRBuilder(4, 0)
			b.Edge(tc.u, tc.v)
			if _, err := b.BuildE(); err == nil {
				t.Fatal("out-of-range edge not rejected")
			}
		})
	}
	t.Run("build-panic-descriptive", func(t *testing.T) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Build on an out-of-range builder must panic")
			}
			if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "out of range") {
				t.Fatalf("panic value not the descriptive error: %v", r)
			}
		}()
		b := NewCSRBuilder(2, 0)
		b.Arc(0, 2)
		b.Build()
	})
	t.Run("in-range-unchanged", func(t *testing.T) {
		b := NewCSRBuilder(3, 2)
		b.Edge(0, 1)
		b.Edge(1, 2)
		if b.Err() != nil {
			t.Fatalf("in-range edges recorded an error: %v", b.Err())
		}
		c, err := b.BuildE()
		if err != nil {
			t.Fatal(err)
		}
		if c.N() != 3 || c.Arcs() != 4 {
			t.Fatalf("BuildE shape wrong: n=%d arcs=%d", c.N(), c.Arcs())
		}
	})
}

func TestImportEdgeList(t *testing.T) {
	in := `# SNAP-style comment
% percent comment too

101 7
7 300
300 101
9 101 7 300
`
	g, ids, err := ImportEdgeList(strings.NewReader(in), "test", EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 6 {
		t.Fatalf("shape wrong: n=%d m=%d", g.N(), g.M())
	}
	// First-seen remapping: 101, 7, 300, 9.
	want := []int64{101, 7, 300, 9}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %d, want %d", i, ids[i], id)
		}
	}
	// The adjacency row "9 101 7 300" makes node 9 adjacent to the triangle.
	if g.Deg(3) != 3 {
		t.Fatalf("adjacency-row node degree = %d, want 3", g.Deg(3))
	}
}

func TestImportEdgeListPolicies(t *testing.T) {
	loops := "1 1\n1 2\n"
	if _, _, err := ImportEdgeList(strings.NewReader(loops), "t", EdgeListOptions{}); err == nil || !strings.Contains(err.Error(), "self loop") {
		t.Fatalf("self loop not rejected: %v", err)
	}
	g, _, err := ImportEdgeList(strings.NewReader(loops), "t", EdgeListOptions{DropSelfLoops: true})
	if err != nil || g.M() != 1 {
		t.Fatalf("drop-self-loops failed: m=%v err=%v", g, err)
	}

	dups := "1 2\n2 1\n"
	if _, _, err := ImportEdgeList(strings.NewReader(dups), "t", EdgeListOptions{}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate not rejected: %v", err)
	}
	g, _, err = ImportEdgeList(strings.NewReader(dups), "t", EdgeListOptions{DropDuplicates: true})
	if err != nil || g.M() != 1 {
		t.Fatalf("drop-duplicates failed: err=%v", err)
	}
}

func TestImportEdgeListErrors(t *testing.T) {
	for name, in := range map[string]string{
		"single-token": "42\n",
		"bad-src":      "x 1\n",
		"bad-dst":      "1 0x10\n",
		"float-id":     "1.5 2\n",
	} {
		if _, _, err := ImportEdgeList(strings.NewReader(in), name, EdgeListOptions{}); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
	if g, ids, err := ImportEdgeList(strings.NewReader("# only comments\n"), "empty", EdgeListOptions{}); err != nil || g.N() != 0 || len(ids) != 0 {
		t.Errorf("comment-only file should import empty: %v", err)
	}
}

func TestImportInstance(t *testing.T) {
	in := "# header comment\n2 3\n0 0\n0 1\n1 1\n1 2\n\n"
	b, err := ImportInstance(strings.NewReader(in), "test")
	if err != nil {
		t.Fatal(err)
	}
	if b.NU() != 2 || b.NV() != 3 || b.M() != 4 {
		t.Fatalf("parsed sizes wrong: NU=%d NV=%d M=%d", b.NU(), b.NV(), b.M())
	}
}

func TestImportInstanceErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":           "",
		"comments-only":   "# nothing\n\n",
		"bad-header":      "x y\n",
		"negative-header": "-1 2\n",
		"bad-edge":        "2 2\n0 z\n",
		"edge-u-range":    "2 2\n5 0\n",
		"edge-v-range":    "2 2\n0 5\n",
		"truncated-edge":  "2 2\n0\n",
	} {
		if _, err := ImportInstance(strings.NewReader(in), name); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestReadBipartiteFileDispatch(t *testing.T) {
	dir := t.TempDir()

	// Instance text.
	inst := filepath.Join(dir, "inst.txt")
	if err := os.WriteFile(inst, []byte("2 3\n0 0\n0 1\n1 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBipartiteFile(inst)
	if err != nil || b.NU() != 2 || b.NV() != 3 {
		t.Fatalf("instance dispatch failed: %v", err)
	}

	// SNAP edge list (leading comment marks it): triangle, both arc
	// directions listed like a real SNAP export.
	snap := filepath.Join(dir, "snap.txt")
	edge := "# Nodes: 3 Edges: 3\n0 1\n1 0\n1 2\n2 1\n2 0\n0 2\n"
	if err := os.WriteFile(snap, []byte(edge), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err = ReadBipartiteFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	// FromGraph encoding of a triangle: 3 left, 3 right, 6 edges.
	if b.NU() != 3 || b.NV() != 3 || b.M() != 6 {
		t.Fatalf("edge-list dispatch shape wrong: NU=%d NV=%d M=%d", b.NU(), b.NV(), b.M())
	}

	// Bipartite snapshot.
	csrPath := filepath.Join(dir, "inst.csr")
	want, err := BipartiteFromEdges(2, 3, [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(csrPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.ExportSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err = ReadBipartiteFile(csrPath)
	if err != nil || b.NU() != 2 || b.NV() != 3 || b.M() != 4 {
		t.Fatalf("snapshot dispatch failed: %v", err)
	}

	// Graph snapshot goes through the Section 1.2 encoding.
	gPath := filepath.Join(dir, "g.csr")
	g, err := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	f, err = os.Create(gPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ExportSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err = ReadBipartiteFile(gPath)
	if err != nil || b.NU() != 3 || b.NV() != 3 || b.M() != 6 {
		t.Fatalf("graph-snapshot dispatch failed: %v", err)
	}

	if _, err := ReadBipartiteFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
}

func TestEdgeListSnapshotRoundTripLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	g := RandomSparseGraph(2000, 6000, rng)
	var sb strings.Builder
	sb.WriteString("# random graph\n")
	for _, e := range g.Edges() {
		// Scatter the external IDs so the dense remap is exercised.
		sb.WriteString(strconv.FormatInt(int64(e[0])*3+100, 10) + " " + strconv.FormatInt(int64(e[1])*3+100, 10) + "\n")
	}
	got, ids, err := ImportEdgeList(strings.NewReader(sb.String()), "rand", EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != g.M() {
		t.Fatalf("edge count changed: %d vs %d", got.M(), g.M())
	}
	// Check adjacency is preserved under the ID mapping.
	back := make(map[int64]int, len(ids))
	for i, id := range ids {
		back[id] = i
	}
	for _, e := range g.Edges() {
		u, okU := back[int64(e[0])*3+100]
		v, okV := back[int64(e[1])*3+100]
		if !okU || !okV || !got.HasEdge(u, v) {
			t.Fatalf("edge %v lost in import", e)
		}
	}
}
