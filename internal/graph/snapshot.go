package graph

// Versioned binary CSR snapshots: the on-disk format behind "file.csr"
// arguments. A snapshot is a header, a section table, and 8-byte-aligned
// raw section payloads:
//
//	[0:8)   magic "CSRSNAP1"
//	[8:12)  endianness tag 0x01020304, written in host byte order
//	[12:16) format version (uint32, currently 1)
//	[16:20) kind (uint32): 1 = Graph, 2 = Bipartite
//	[20:24) section count (uint32)
//	[24:..) section table, 32 bytes per section:
//	        id [4]byte, reserved uint32, offset uint64, length uint64,
//	        CRC-32C of the payload (uint64, checksum in the low 32 bits)
//	...     payloads at their table offsets, 8-byte aligned
//
// A Graph snapshot has sections META (n, arcs as uint64s), OFFS and EDGE;
// a Bipartite one has META (nu, nv, arcs) plus UOFF/UEDG/VOFF/VEDG. OFFS-
// class payloads are the CSR offset arrays ((n+1) int32s), EDGE-class ones
// the flat edge arrays, both in host byte order — so Import reinterprets
// the file bytes in place (zero copy, O(n + m) validation scans, no sort/
// dedup rebuild) and an mmap'd file works the same way. Compatibility
// rules: the magic never changes; a byte-order mismatch or a newer version
// is a descriptive error; unknown extra sections are ignored so minor
// additions stay forward-readable; every known section is checksummed and
// structurally validated (monotone offsets, in-range endpoints, sorted
// duplicate-free rows, mutually transposed bipartite sides), so corrupted
// or adversarial files fail loudly instead of corrupting a run.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"
)

// SnapshotVersion is the current binary snapshot format version.
const SnapshotVersion = 1

const (
	snapMagic     = "CSRSNAP1"
	snapEndianTag = 0x01020304
	snapKindGraph = 1
	snapKindBip   = 2
	snapHeaderLen = 24
	snapEntryLen  = 32
	snapMaxSects  = 64
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// int32Bytes reinterprets an int32 slice as its raw bytes (host order).
func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

// bytesInt32 reinterprets raw bytes as an int32 slice (host order). File
// payloads are 8-byte aligned by construction, so the reinterpretation is
// zero-copy; an unaligned buffer (a caller slicing mid-allocation) falls
// back to a decoding copy rather than faulting.
func bytesInt32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		out := make([]int32, len(b)/4)
		for i := range out {
			out[i] = int32(binary.NativeEndian.Uint32(b[4*i:]))
		}
		return out
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// snapSection is one section of a snapshot being written or read.
type snapSection struct {
	id      string
	payload []byte
}

// writeSnapshot lays out and writes a snapshot with the given kind and
// sections (in order, each payload padded to 8 bytes).
func writeSnapshot(w io.Writer, kind uint32, sections []snapSection) error {
	head := make([]byte, snapHeaderLen+snapEntryLen*len(sections))
	copy(head, snapMagic)
	le := binary.NativeEndian
	le.PutUint32(head[8:], snapEndianTag)
	le.PutUint32(head[12:], SnapshotVersion)
	le.PutUint32(head[16:], kind)
	le.PutUint32(head[20:], uint32(len(sections)))
	offset := uint64(len(head)) // header length is a multiple of 8
	for i, s := range sections {
		e := head[snapHeaderLen+snapEntryLen*i:]
		copy(e, s.id)
		le.PutUint64(e[8:], offset)
		le.PutUint64(e[16:], uint64(len(s.payload)))
		le.PutUint64(e[24:], uint64(crc32.Checksum(s.payload, snapCRC)))
		offset += (uint64(len(s.payload)) + 7) &^ 7
	}
	if _, err := w.Write(head); err != nil {
		return err
	}
	var pad [8]byte
	for _, s := range sections {
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
		if rem := len(s.payload) & 7; rem != 0 {
			if _, err := w.Write(pad[:8-rem]); err != nil {
				return err
			}
		}
	}
	return nil
}

// metaWords packs uint64 metadata values as a payload.
func metaWords(vals ...uint64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.NativeEndian.PutUint64(b[8*i:], v)
	}
	return b
}

// ExportSnapshot writes g as a binary CSR snapshot.
func (g *Graph) ExportSnapshot(w io.Writer) error {
	c := g.CSR()
	return writeSnapshot(w, snapKindGraph, []snapSection{
		{"META", metaWords(uint64(c.N()), uint64(c.Arcs()))},
		{"OFFS", int32Bytes(c.Off)},
		{"EDGE", int32Bytes(c.Edges)},
	})
}

// ExportSnapshot writes b as a binary CSR snapshot holding both sides, so
// Import rebuilds neither.
func (b *Bipartite) ExportSnapshot(w io.Writer) error {
	u, v := b.CSRU(), b.CSRV()
	return writeSnapshot(w, snapKindBip, []snapSection{
		{"META", metaWords(uint64(u.N()), uint64(v.N()), uint64(u.Arcs()))},
		{"UOFF", int32Bytes(u.Off)},
		{"UEDG", int32Bytes(u.Edges)},
		{"VOFF", int32Bytes(v.Off)},
		{"VEDG", int32Bytes(v.Edges)},
	})
}

// IsSnapshot reports whether data starts with the snapshot magic.
func IsSnapshot(data []byte) bool {
	return len(data) >= len(snapMagic) && string(data[:len(snapMagic)]) == snapMagic
}

// SnapshotInfo describes a validated snapshot.
type SnapshotInfo struct {
	Kind    string // "graph" or "bipartite"
	Version int
	N       int // nodes (graph) or nu+nv (bipartite)
	NU, NV  int // bipartite sides (0 for graph snapshots)
	Arcs    int // directed arcs per side
}

// parseSnapshot validates the header and section table of data and returns
// the kind plus the checksum-verified payload of every known section.
func parseSnapshot(data []byte) (kind uint32, sections map[string][]byte, err error) {
	if len(data) < snapHeaderLen {
		return 0, nil, fmt.Errorf("snapshot: truncated header: %d bytes, want at least %d", len(data), snapHeaderLen)
	}
	if !IsSnapshot(data) {
		return 0, nil, fmt.Errorf("snapshot: bad magic %q, want %q", data[:len(snapMagic)], snapMagic)
	}
	le := binary.NativeEndian
	switch tag := le.Uint32(data[8:]); tag {
	case snapEndianTag:
	case 0x04030201:
		return 0, nil, fmt.Errorf("snapshot: byte-order mismatch: written on a foreign-endian machine")
	default:
		return 0, nil, fmt.Errorf("snapshot: corrupt endianness tag %#08x", tag)
	}
	if v := le.Uint32(data[12:]); v != SnapshotVersion {
		return 0, nil, fmt.Errorf("snapshot: unsupported version %d (this build reads version %d)", v, SnapshotVersion)
	}
	kind = le.Uint32(data[16:])
	if kind != snapKindGraph && kind != snapKindBip {
		return 0, nil, fmt.Errorf("snapshot: unknown kind %d", kind)
	}
	count := le.Uint32(data[20:])
	if count > snapMaxSects {
		return 0, nil, fmt.Errorf("snapshot: implausible section count %d (max %d)", count, snapMaxSects)
	}
	tableEnd := snapHeaderLen + snapEntryLen*int(count)
	if len(data) < tableEnd {
		return 0, nil, fmt.Errorf("snapshot: truncated section table: %d bytes, want %d", len(data), tableEnd)
	}
	sections = make(map[string][]byte, count)
	fileEnd := uint64(tableEnd) // expected total size: sections tile the tail
	for i := 0; i < int(count); i++ {
		e := data[snapHeaderLen+snapEntryLen*i:]
		id := string(e[:4])
		off, length := le.Uint64(e[8:]), le.Uint64(e[16:])
		if off%8 != 0 || off < uint64(tableEnd) || length > uint64(len(data)) || off > uint64(len(data))-length {
			return 0, nil, fmt.Errorf("snapshot: section %q out of bounds: offset %d length %d in %d-byte file", id, off, length, len(data))
		}
		payload := data[off : off+length]
		if got, want := uint64(crc32.Checksum(payload, snapCRC)), le.Uint64(e[24:]); got != want {
			return 0, nil, fmt.Errorf("snapshot: section %q checksum mismatch: computed %#08x, stored %#08x", id, got, want)
		}
		sections[id] = payload
		if end := off + (length+7)&^7; end > fileEnd {
			fileEnd = end
		}
	}
	// The file must end exactly at the last padded payload: trailing bytes
	// would make re-export non-canonical and give corruption a place to hide
	// from the checksums.
	if uint64(len(data)) != fileEnd {
		return 0, nil, fmt.Errorf("snapshot: file is %d bytes but sections end at %d", len(data), fileEnd)
	}
	return kind, sections, nil
}

// sectionCSR assembles and structurally validates one CSR from its OFFS-
// and EDGE-class sections: n+1 monotone offsets starting at 0 and closing
// at arcs, and every row strictly increasing with endpoints in [0, cols).
// The returned CSR aliases the snapshot bytes.
func sectionCSR(sections map[string][]byte, offID, edgeID string, n, arcs, cols int) (CSR, error) {
	offB, ok := sections[offID]
	if !ok {
		return CSR{}, fmt.Errorf("snapshot: missing section %q", offID)
	}
	edgeB, ok := sections[edgeID]
	if !ok {
		return CSR{}, fmt.Errorf("snapshot: missing section %q", edgeID)
	}
	if len(offB) != 4*(n+1) {
		return CSR{}, fmt.Errorf("snapshot: section %q is %d bytes, want %d for %d rows", offID, len(offB), 4*(n+1), n)
	}
	if len(edgeB) != 4*arcs {
		return CSR{}, fmt.Errorf("snapshot: section %q is %d bytes, want %d for %d arcs", edgeID, len(edgeB), 4*arcs, arcs)
	}
	c := CSR{Off: bytesInt32(offB), Edges: bytesInt32(edgeB)}
	if c.Off[0] != 0 {
		return CSR{}, fmt.Errorf("snapshot: %q[0] = %d, want 0", offID, c.Off[0])
	}
	if int(c.Off[n]) != arcs {
		return CSR{}, fmt.Errorf("snapshot: %q closes at %d, want %d arcs", offID, c.Off[n], arcs)
	}
	for v := 0; v < n; v++ {
		if c.Off[v+1] < c.Off[v] {
			return CSR{}, fmt.Errorf("snapshot: %q decreases at row %d: %d -> %d", offID, v, c.Off[v], c.Off[v+1])
		}
		row := c.Edges[c.Off[v]:c.Off[v+1]]
		for i, w := range row {
			if int(w) < 0 || int(w) >= cols {
				return CSR{}, fmt.Errorf("snapshot: row %d endpoint %d out of range [0, %d)", v, w, cols)
			}
			if i > 0 && w <= row[i-1] {
				return CSR{}, fmt.Errorf("snapshot: row %d not sorted/duplicate-free at position %d (%d after %d)", v, i, w, row[i-1])
			}
		}
	}
	return c, nil
}

// metaVals decodes the META section as k uint64 values, each required to
// fit the int32-indexed CSR layout.
func metaVals(sections map[string][]byte, k int) ([]int, error) {
	meta, ok := sections["META"]
	if !ok {
		return nil, fmt.Errorf("snapshot: missing section %q", "META")
	}
	if len(meta) != 8*k {
		return nil, fmt.Errorf("snapshot: META is %d bytes, want %d", len(meta), 8*k)
	}
	vals := make([]int, k)
	for i := range vals {
		v := binary.NativeEndian.Uint64(meta[8*i:])
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("snapshot: META value %d = %d exceeds the int32 CSR layout", i, v)
		}
		vals[i] = int(v)
	}
	return vals, nil
}

// importAny decodes and fully validates a snapshot of either kind. The
// returned graph aliases data: keep data alive and unmodified for the
// lifetime of the graph (an mmap'd region works).
func importAny(data []byte) (*Graph, *Bipartite, error) {
	kind, sections, err := parseSnapshot(data)
	if err != nil {
		return nil, nil, err
	}
	if kind == snapKindGraph {
		vals, err := metaVals(sections, 2)
		if err != nil {
			return nil, nil, err
		}
		n, arcs := vals[0], vals[1]
		c, err := sectionCSR(sections, "OFFS", "EDGE", n, arcs, n)
		if err != nil {
			return nil, nil, err
		}
		for v := 0; v < n; v++ {
			for _, w := range c.Row(v) {
				if int(w) == v {
					return nil, nil, fmt.Errorf("snapshot: self loop at node %d", v)
				}
			}
		}
		if err := checkTranspose(c, c, "adjacency not symmetric"); err != nil {
			return nil, nil, err
		}
		return fromCSR(c), nil, nil
	}
	vals, err := metaVals(sections, 3)
	if err != nil {
		return nil, nil, err
	}
	nu, nv, arcs := vals[0], vals[1], vals[2]
	u, err := sectionCSR(sections, "UOFF", "UEDG", nu, arcs, nv)
	if err != nil {
		return nil, nil, err
	}
	v, err := sectionCSR(sections, "VOFF", "VEDG", nv, arcs, nu)
	if err != nil {
		return nil, nil, err
	}
	if err := checkTranspose(u, v, "U and V sides disagree"); err != nil {
		return nil, nil, err
	}
	return nil, &Bipartite{u: u, v: v}, nil
}

// checkTranspose verifies that every arc (a, b) of fwd appears as (b, a) in
// rev. Scanning fwd in row order visits, for each fixed b, the sources a in
// strictly increasing order; rev's rows are strictly sorted too (sectionCSR
// checked), so one cursor per reverse row consumes rev arcs in lockstep with
// no searching. A cursor that would have to skip an entry marks a rev arc
// whose mirror was already passed — asymmetric either way — so each fwd arc
// must land exactly on its cursor. With equal total arc counts the lockstep
// match is a bijection. O(n + m) with a single cursor allocation — cheap
// next to the checksum scan and far cheaper than the O(m) sort/dedup rebuild
// the snapshot exists to avoid.
func checkTranspose(fwd, rev CSR, what string) error {
	cursor := make([]int32, rev.N())
	copy(cursor, rev.Off[:rev.N()])
	for a := 0; a < fwd.N(); a++ {
		for _, b := range fwd.Row(a) {
			c := cursor[b]
			if c == rev.Off[b+1] || rev.Edges[c] != int32(a) {
				return fmt.Errorf("snapshot: %s: arc (%d, %d) has no reverse", what, a, b)
			}
			cursor[b] = c + 1
		}
	}
	return nil
}

// ImportSnapshot decodes a Graph snapshot from data, verifying checksums
// and structural invariants without rebuilding the CSR. The graph aliases
// data; keep data alive and unmodified while the graph is in use.
func ImportSnapshot(data []byte) (*Graph, error) {
	g, b, err := ImportAnySnapshot(data)
	if err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("snapshot: holds a bipartite instance (nu=%d nv=%d), want a graph", b.NU(), b.NV())
	}
	return g, nil
}

// ImportBipartiteSnapshot decodes a Bipartite snapshot from data; see
// ImportSnapshot for the aliasing contract.
func ImportBipartiteSnapshot(data []byte) (*Bipartite, error) {
	g, b, err := ImportAnySnapshot(data)
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("snapshot: holds a graph (n=%d), want a bipartite instance", g.N())
	}
	return b, nil
}

// ImportAnySnapshot decodes a snapshot of either kind: exactly one of the
// returned graphs is non-nil. See ImportSnapshot for the aliasing contract.
func ImportAnySnapshot(data []byte) (*Graph, *Bipartite, error) {
	return importAny(data)
}

// StatSnapshot fully validates a snapshot and reports its shape.
func StatSnapshot(data []byte) (SnapshotInfo, error) {
	g, b, err := importAny(data)
	if err != nil {
		return SnapshotInfo{}, err
	}
	if g != nil {
		c := g.CSR()
		return SnapshotInfo{Kind: "graph", Version: SnapshotVersion, N: c.N(), Arcs: c.Arcs()}, nil
	}
	return SnapshotInfo{
		Kind: "bipartite", Version: SnapshotVersion,
		N: b.N(), NU: b.NU(), NV: b.NV(), Arcs: b.M(),
	}, nil
}

// ReadSnapshot loads a Graph snapshot from path in one read and a zero-copy
// decode: no per-element parsing and no O(m) rebuild.
func ReadSnapshot(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := ImportSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// ReadBipartiteSnapshot loads a Bipartite snapshot from path; see
// ReadSnapshot.
func ReadBipartiteSnapshot(path string) (*Bipartite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := ImportBipartiteSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}
