package graph

import (
	"math/rand/v2"
	"slices"
	"sort"
	"testing"
)

// refAdjacency is the pre-CSR reference construction: slices-of-slices with
// per-row sort + dedup, kept here as the oracle for round-trip tests.
func refAdjacency(n int, edges [][2]int32) [][]int32 {
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for v := range adj {
		sort.Slice(adj[v], func(a, b int) bool { return adj[v][a] < adj[v][b] })
		out := adj[v][:0]
		for i, x := range adj[v] {
			if i == 0 || x != adj[v][i-1] {
				out = append(out, x)
			}
		}
		adj[v] = out
	}
	return adj
}

func randomEdgeList(n, m int, rng *rand.Rand) [][2]int32 {
	edges := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		u, v := int32(rng.IntN(n)), int32(rng.IntN(n))
		if u == v {
			continue
		}
		edges = append(edges, [2]int32{u, v})
	}
	return edges
}

// TestCSRRoundTripGraph cross-checks every CSR construction path (builder,
// AddEdge + Normalize, lazy accessor-triggered merge) against the old
// adjacency-list construction on random multigraph-ish edge lists.
func TestCSRRoundTripGraph(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 0))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(60)
		m := rng.IntN(4 * n)
		edges := randomEdgeList(n, m, rng)
		want := refAdjacency(n, edges)

		// Path 1: CSRBuilder.
		bld := NewCSRBuilder(n, len(edges))
		for _, e := range edges {
			bld.Edge(e[0], e[1])
		}
		fromBuilder := fromCSR(bld.Build())

		// Path 2: AddEdge + explicit Normalize.
		viaAdd := NewGraph(n)
		for _, e := range edges {
			if err := viaAdd.AddEdge(int(e[0]), int(e[1])); err != nil {
				t.Fatal(err)
			}
		}
		viaAdd.Normalize()

		// Path 3: AddEdge with the merge triggered lazily by the first read.
		lazy := NewGraph(n)
		for _, e := range edges {
			if err := lazy.AddEdge(int(e[0]), int(e[1])); err != nil {
				t.Fatal(err)
			}
		}

		for _, g := range []*Graph{fromBuilder, viaAdd, lazy} {
			if g.N() != n {
				t.Fatalf("trial %d: N = %d, want %d", trial, g.N(), n)
			}
			var wantM int
			for _, row := range want {
				wantM += len(row)
			}
			if got := g.M(); got != wantM/2 {
				t.Fatalf("trial %d: M = %d, want %d", trial, got, wantM/2)
			}
			for v := 0; v < n; v++ {
				if !slices.Equal(g.Neighbors(v), want[v]) {
					t.Fatalf("trial %d: node %d neighbors %v, want %v", trial, v, g.Neighbors(v), want[v])
				}
			}
		}
	}
}

// TestCSRRoundTripBipartite does the same for both sides of Bipartite.
func TestCSRRoundTripBipartite(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 0))
	for trial := 0; trial < 50; trial++ {
		nu, nv := 1+rng.IntN(30), 1+rng.IntN(30)
		m := rng.IntN(3 * (nu + nv))
		adjU := make([][]int32, nu)
		adjV := make([][]int32, nv)
		b := NewBipartite(nu, nv)
		for i := 0; i < m; i++ {
			u, v := rng.IntN(nu), rng.IntN(nv)
			adjU[u] = append(adjU[u], int32(v))
			adjV[v] = append(adjV[v], int32(u))
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		sortDedup := func(adj [][]int32) {
			for i := range adj {
				slices.Sort(adj[i])
				adj[i] = slices.Compact(adj[i])
			}
		}
		sortDedup(adjU)
		sortDedup(adjV)
		for u := 0; u < nu; u++ {
			if !slices.Equal(b.NbrU(u), adjU[u]) {
				t.Fatalf("trial %d: NbrU(%d) = %v, want %v", trial, u, b.NbrU(u), adjU[u])
			}
		}
		for v := 0; v < nv; v++ {
			if !slices.Equal(b.NbrV(v), adjV[v]) {
				t.Fatalf("trial %d: NbrV(%d) = %v, want %v", trial, v, b.NbrV(v), adjV[v])
			}
		}
	}
}

// TestCSRRoundTripMultigraph checks that incidence rows keep edge ids in
// insertion order and retain parallel edges.
func TestCSRRoundTripMultigraph(t *testing.T) {
	m := NewMultigraph(4)
	ids := make([]int, 0, 5)
	for _, e := range [][2]int{{0, 1}, {0, 1}, {1, 2}, {2, 0}, {1, 3}} {
		id, err := m.AddEdge(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if got := m.Deg(0); got != 3 {
		t.Fatalf("Deg(0) = %d, want 3 (parallel edges count)", got)
	}
	if got := m.Incident(1); !slices.Equal(got, []int32{0, 1, 2, 4}) {
		t.Fatalf("Incident(1) = %v, want edge ids in insertion order [0 1 2 4]", got)
	}
	// Incremental growth after a read must be reflected by the next read.
	id, err := m.AddEdge(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Incident(3); !slices.Equal(got, []int32{4, int32(id)}) {
		t.Fatalf("Incident(3) after growth = %v, want [4 %d]", got, id)
	}
	_ = ids
}

// TestCSRBuilderAllocs is the acceptance guard for the CSR tentpole: a
// Build over a pre-filled arc buffer performs a small constant number of
// allocations (offsets, edges, fill cursor) regardless of node count — no
// per-node adjacency slices.
func TestCSRBuilderAllocs(t *testing.T) {
	const n, m = 100_000, 300_000
	rng := rand.New(rand.NewPCG(13, 0))
	bld := NewCSRBuilder(n, m)
	for i := 0; i < m; i++ {
		u, v := int32(rng.IntN(n)), int32(rng.IntN(n))
		if u != v {
			bld.Edge(u, v)
		}
	}
	allocs := testing.AllocsPerRun(3, func() {
		bld.Build()
	})
	if allocs > 8 {
		t.Fatalf("CSRBuilder.Build allocated %.0f times for %d nodes; want a small constant (per-node slices would be ~%d)", allocs, n, n)
	}
}

// TestRandomSparseGraphAllocs pins the end-to-end generator: building a
// 100k-node random graph must not allocate per node.
func TestRandomSparseGraphAllocs(t *testing.T) {
	const n, m = 100_000, 300_000
	allocs := testing.AllocsPerRun(2, func() {
		rng := rand.New(rand.NewPCG(14, 0))
		g := RandomSparseGraph(n, m, rng)
		if g.N() != n {
			t.Fatal("wrong size")
		}
	})
	if allocs > 16 {
		t.Fatalf("RandomSparseGraph allocated %.0f times for %d nodes; want a small constant", allocs, n)
	}
}

// TestGraphCSRView checks the zero-copy contract: Neighbors and CSR().Row
// return views into one flat array, and Off/Edges are consistent.
func TestGraphCSRView(t *testing.T) {
	g := RandomSparseGraph(200, 600, rand.New(rand.NewPCG(15, 0)))
	c := g.CSR()
	if c.N() != g.N() || c.Arcs() != 2*g.M() {
		t.Fatalf("CSR shape mismatch: N=%d/%d arcs=%d m=%d", c.N(), g.N(), c.Arcs(), g.M())
	}
	if c.Off[0] != 0 || int(c.Off[c.N()]) != len(c.Edges) {
		t.Fatalf("offset invariants broken: Off[0]=%d Off[n]=%d len=%d", c.Off[0], c.Off[c.N()], len(c.Edges))
	}
	for v := 0; v < g.N(); v++ {
		row := g.Neighbors(v)
		if len(row) != c.Deg(v) {
			t.Fatalf("node %d: Neighbors len %d != CSR deg %d", v, len(row), c.Deg(v))
		}
		if len(row) > 0 && &row[0] != &c.Edges[c.Off[v]] {
			t.Fatalf("node %d: Neighbors is not a view into the flat edge array", v)
		}
		if !slices.IsSorted(row) {
			t.Fatalf("node %d: row not sorted: %v", v, row)
		}
	}
}
