package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
)

// RandomGraph returns an Erdős–Rényi graph G(n, p).
func RandomGraph(n int, p float64, rng *rand.Rand) *Graph {
	bld := NewCSRBuilder(n, 0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				bld.Edge(int32(u), int32(v))
			}
		}
	}
	return fromCSR(bld.Build())
}

// RandomSparseGraph returns a random simple graph on n nodes with at most m
// edges, drawn as m uniform endpoint pairs (self loops and duplicates are
// discarded). It is the O(m) counterpart of RandomGraph for instances large
// enough that the O(n²) G(n, p) scan is prohibitive; the degree distribution
// is Poisson-like with mean ≈ 2m/n.
func RandomSparseGraph(n, m int, rng *rand.Rand) *Graph {
	if n < 2 {
		return NewGraph(n)
	}
	bld := NewCSRBuilder(n, m)
	for i := 0; i < m; i++ {
		u := int32(rng.IntN(n))
		v := int32(rng.IntN(n))
		if u == v {
			continue
		}
		bld.Edge(u, v)
	}
	return fromCSR(bld.Build())
}

// ceilLog2 returns ⌈log₂(n)⌉ for n ≥ 1, and 0 for n ≤ 1.
func ceilLog2(n int) int {
	k := 0
	for x := 1; x < n; x <<= 1 {
		k++
	}
	return k
}

// powerLawDegree draws one target degree from the truncated power law
// P(D ≥ k) = k^(1-gamma) on [1, maxDeg] by inverse-transform sampling; the
// pmf decays like d^-gamma. The draw is clamped while still a float: near
// the gamma clamp the tail exponent is ~20, so u^(-1/(gamma-1)) overflows
// int for small u, and int(overflow) is MinInt64 — which would silently
// turn the heaviest draws into degree-1 nodes.
func powerLawDegree(gamma float64, maxDeg int, rng *rand.Rand) int {
	u := 1 - rng.Float64() // (0, 1]
	x := math.Pow(u, -1/(gamma-1))
	if x >= float64(maxDeg) {
		return maxDeg
	}
	if x < 1 {
		return 1
	}
	return int(x)
}

// RandomPowerLawGraph returns a random simple graph on n nodes whose degree
// sequence follows a truncated power law: per-node targets are drawn from
// P(d) ∝ d^-gamma on [1, maxDeg] (gamma > 1; 2–3 gives the social/web-shaped
// skew) and realized by configuration-model stub pairing, with self loops
// dropped and parallel edges merged by the builder. Targets are assigned in
// descending order — hubs get the low node indices, the age–degree
// correlation preferential-attachment growth and crawl-ordered datasets
// exhibit. The construction streams through the CSR builder in O(m) work
// (plus one sort of the n degree targets) with a constant number of
// allocations, like RandomSparseGraph — but unlike it a few hub nodes hold
// a large share of all arcs, and the hubs cluster in index space: exactly
// the shape under which node-count-balanced scheduling serializes on the
// hub shard and arc-balanced sharding is measurable (the powerlaw100k
// benchmark case).
func RandomPowerLawGraph(n int, gamma float64, maxDeg int, rng *rand.Rand) *Graph {
	if n < 2 {
		return NewGraph(n)
	}
	if gamma <= 1.05 {
		gamma = 1.05 // the tail exponent must stay integrable
	}
	if maxDeg >= n {
		maxDeg = n - 1
	}
	if maxDeg < 1 {
		maxDeg = 1
	}
	degs := make([]int, n)
	total := 0
	for v := range degs {
		degs[v] = powerLawDegree(gamma, maxDeg, rng)
		total += degs[v]
	}
	slices.SortFunc(degs, func(a, b int) int { return b - a })
	stubs := make([]int32, 0, total)
	for v, d := range degs {
		for ; d > 0; d-- {
			stubs = append(stubs, int32(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	bld := NewCSRBuilder(n, len(stubs)/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		if stubs[i] != stubs[i+1] {
			bld.Edge(stubs[i], stubs[i+1])
		}
	}
	return fromCSR(bld.Build())
}

// RandomBipartitePowerLaw returns a bipartite graph whose left degrees
// follow the truncated power law P(d) ∝ d^-gamma shifted to
// [δmin, maxDeg], with δmin = 2·⌈log₂(nu+nv)⌉ — the weak-splitting
// solvability floor (below δ ≈ 2·log n even the existence of a splitting
// is not guaranteed, so the skew lives in the tail, where it belongs) —
// and neighbors chosen uniformly without replacement. The skewed-workload
// counterpart of RandomBipartiteLeftRegular for CLI sweeps
// (wsplit -gen powerlaw); maxDeg must be ≥ δmin.
func RandomBipartitePowerLaw(nu, nv int, gamma float64, maxDeg int, rng *rand.Rand) (*Bipartite, error) {
	if maxDeg > nv {
		return nil, fmt.Errorf("graph: power-law max degree %d > |V| = %d", maxDeg, nv)
	}
	dMin := 2 * ceilLog2(nu+nv)
	if maxDeg < dMin {
		return nil, fmt.Errorf("graph: power-law max degree %d < solvability floor δmin = %d", maxDeg, dMin)
	}
	if gamma <= 1.05 {
		gamma = 1.05
	}
	b := NewBipartite(nu, nv)
	perm := make([]int32, nv)
	for i := range perm {
		perm[i] = int32(i)
	}
	for u := 0; u < nu; u++ {
		// Shift the draw: the power-law tail rides on top of the floor.
		d := min(maxDeg, dMin-1+powerLawDegree(gamma, maxDeg, rng))
		// Partial Fisher-Yates: draw d distinct right nodes.
		for i := 0; i < d; i++ {
			j := i + rng.IntN(nv-i)
			perm[i], perm[j] = perm[j], perm[i]
			b.addEdgeUnchecked(int32(u), perm[i])
		}
	}
	b.Normalize()
	return b, nil
}

// RandomRegular returns a d-regular simple graph on n nodes (n*d must be
// even, d < n) via the configuration model with rejection: the stub pairing
// is re-drawn until it contains no self loop or parallel edge. For d = o(√n)
// this succeeds in O(1) expected attempts.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d = %d*%d is odd", n, d)
	}
	if d >= n {
		return nil, fmt.Errorf("graph: degree %d >= n %d", d, n)
	}
	stubs := make([]int32, n*d)
	for i := range stubs {
		stubs[i] = int32(i / d)
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	// Pair consecutive stubs, then repair self loops and parallel edges by
	// double-edge swaps, which preserve the degree sequence.
	nPairs := len(stubs) / 2
	pairKey := func(i int) int64 {
		lo, hi := stubs[2*i], stubs[2*i+1]
		if lo > hi {
			lo, hi = hi, lo
		}
		return int64(lo)<<32 | int64(hi)
	}
	count := make(map[int64]int, nPairs)
	for i := 0; i < nPairs; i++ {
		count[pairKey(i)]++
	}
	bad := func(i int) bool {
		return stubs[2*i] == stubs[2*i+1] || count[pairKey(i)] > 1
	}
	maxSwaps := 200 * nPairs
	for swaps := 0; swaps < maxSwaps; swaps++ {
		// Find a bad pair (scan from a random start to avoid bias).
		badIdx := -1
		start := rng.IntN(nPairs)
		for off := 0; off < nPairs; off++ {
			if i := (start + off) % nPairs; bad(i) {
				badIdx = i
				break
			}
		}
		if badIdx < 0 {
			bld := NewCSRBuilder(n, nPairs)
			for i := 0; i < nPairs; i++ {
				bld.Edge(stubs[2*i], stubs[2*i+1])
			}
			return fromCSR(bld.Build()), nil
		}
		j := rng.IntN(nPairs)
		if j == badIdx {
			continue
		}
		// Swap one endpoint of each pair and keep the result only if it does
		// not increase the number of bad pairs.
		before := boolToInt(bad(badIdx)) + boolToInt(bad(j))
		count[pairKey(badIdx)]--
		count[pairKey(j)]--
		stubs[2*badIdx+1], stubs[2*j+1] = stubs[2*j+1], stubs[2*badIdx+1]
		count[pairKey(badIdx)]++
		count[pairKey(j)]++
		after := boolToInt(bad(badIdx)) + boolToInt(bad(j))
		if after >= before {
			count[pairKey(badIdx)]--
			count[pairKey(j)]--
			stubs[2*badIdx+1], stubs[2*j+1] = stubs[2*j+1], stubs[2*badIdx+1]
			count[pairKey(badIdx)]++
			count[pairKey(j)]++
		}
	}
	return nil, fmt.Errorf("graph: random %d-regular on %d nodes: repair did not converge", d, n)
}

// RandomBipartiteLeftRegular returns a bipartite graph where every left node
// has exactly degree d, with neighbors chosen uniformly without replacement
// from V. Right-side degrees concentrate around nu*d/nv.
func RandomBipartiteLeftRegular(nu, nv, d int, rng *rand.Rand) (*Bipartite, error) {
	if d > nv {
		return nil, fmt.Errorf("graph: left degree %d > |V| = %d", d, nv)
	}
	b := NewBipartite(nu, nv)
	perm := make([]int32, nv)
	for i := range perm {
		perm[i] = int32(i)
	}
	for u := 0; u < nu; u++ {
		// Partial Fisher-Yates: draw d distinct right nodes.
		for i := 0; i < d; i++ {
			j := i + rng.IntN(nv-i)
			perm[i], perm[j] = perm[j], perm[i]
			b.addEdgeUnchecked(int32(u), perm[i])
		}
	}
	b.Normalize()
	return b, nil
}

// RandomBipartiteBiregular returns a bipartite graph where every left node
// has degree exactly dU and right-side degrees differ by at most one
// (they are ⌊nu·dU/nv⌋ or ⌈nu·dU/nv⌉). It pairs left stubs with a balanced,
// shuffled multiset of right slots and repairs the few parallel edges by
// swapping.
func RandomBipartiteBiregular(nu, nv, dU int, rng *rand.Rand) (*Bipartite, error) {
	total := nu * dU
	if nv <= 0 || nu <= 0 {
		return nil, fmt.Errorf("graph: empty side nu=%d nv=%d", nu, nv)
	}
	if total < nv {
		return nil, fmt.Errorf("graph: %d edges cannot give every right node a slot (nv=%d)", total, nv)
	}
	if dU > nv {
		return nil, fmt.Errorf("graph: left degree %d > |V| = %d", dU, nv)
	}
	slots := make([]int32, total)
	for i := range slots {
		slots[i] = int32(i % nv)
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	// slots[u*dU : (u+1)*dU] are u's neighbors; repair duplicates within a
	// block by swapping with random slots of other blocks (degree sequences
	// on both sides are preserved by any swap).
	dupInBlock := func(u int) int { // returns slot index of a duplicate, or -1
		seen := make(map[int32]int, dU)
		for i := 0; i < dU; i++ {
			v := slots[u*dU+i]
			if _, dup := seen[v]; dup {
				return u*dU + i
			}
			seen[v] = i
		}
		return -1
	}
	blockHas := func(u int, v int32) bool {
		for i := 0; i < dU; i++ {
			if slots[u*dU+i] == v {
				return true
			}
		}
		return false
	}
	maxSwaps := 200 * total
	for swaps := 0; swaps < maxSwaps; swaps++ {
		badSlot := -1
		for u := 0; u < nu; u++ {
			if s := dupInBlock(u); s >= 0 {
				badSlot = s
				break
			}
		}
		if badSlot < 0 {
			b := NewBipartite(nu, nv)
			for u := 0; u < nu; u++ {
				for i := 0; i < dU; i++ {
					b.addEdgeUnchecked(int32(u), slots[u*dU+i])
				}
			}
			b.Normalize()
			return b, nil
		}
		j := rng.IntN(total)
		uBad, uOther := badSlot/dU, j/dU
		if uBad == uOther {
			continue
		}
		// Swap only if it removes the duplicate without creating new ones.
		if blockHas(uBad, slots[j]) || blockHas(uOther, slots[badSlot]) {
			continue
		}
		slots[badSlot], slots[j] = slots[j], slots[badSlot]
	}
	return nil, fmt.Errorf("graph: biregular bipartite (nu=%d nv=%d dU=%d): repair did not converge", nu, nv, dU)
}

// RandomBipartiteDegreeRange returns a bipartite graph in which every left
// node independently gets a degree drawn uniformly from [dMin, dMax] and
// neighbors chosen without replacement, producing the "nearly regular"
// instances of Theorem 1.1 when dMax/dMin is small.
func RandomBipartiteDegreeRange(nu, nv, dMin, dMax int, rng *rand.Rand) (*Bipartite, error) {
	if dMin > dMax || dMax > nv {
		return nil, fmt.Errorf("graph: bad degree range [%d,%d] with nv=%d", dMin, dMax, nv)
	}
	b := NewBipartite(nu, nv)
	perm := make([]int32, nv)
	for i := range perm {
		perm[i] = int32(i)
	}
	for u := 0; u < nu; u++ {
		d := dMin + rng.IntN(dMax-dMin+1)
		for i := 0; i < d; i++ {
			j := i + rng.IntN(nv-i)
			perm[i], perm[j] = perm[j], perm[i]
			b.addEdgeUnchecked(int32(u), perm[i])
		}
	}
	b.Normalize()
	return b, nil
}

// Cycle returns the cycle C_n (n >= 3).
func Cycle(n int) *Graph {
	bld := NewCSRBuilder(n, n)
	for i := 0; i < n; i++ {
		bld.Edge(int32(i), int32((i+1)%n))
	}
	return fromCSR(bld.Build())
}

// PathGraph returns the path P_n.
func PathGraph(n int) *Graph {
	bld := NewCSRBuilder(n, n)
	for i := 0; i+1 < n; i++ {
		bld.Edge(int32(i), int32(i+1))
	}
	return fromCSR(bld.Build())
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	bld := NewCSRBuilder(n, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			bld.Edge(int32(u), int32(v))
		}
	}
	return fromCSR(bld.Build())
}

// CompleteBipartite returns K_{nu,nv} as a Bipartite.
func CompleteBipartite(nu, nv int) *Bipartite {
	b := NewBipartite(nu, nv)
	for u := 0; u < nu; u++ {
		for v := 0; v < nv; v++ {
			b.addEdgeUnchecked(int32(u), int32(v))
		}
	}
	b.Normalize()
	return b
}

// HighGirthTree returns a bipartite graph of girth ∞ (a tree) in which every
// left node has degree ≥ d: it is the complete d-ary tree of the given odd
// depth with even levels on the U side and odd levels on the V side, so all
// leaves land in V and every U node has degree d or d+1. Section 5 requires
// girth ≥ 10, which trees satisfy vacuously; rank is d+1.
func HighGirthTree(d, depth int) (*Bipartite, error) {
	if depth%2 == 0 {
		return nil, fmt.Errorf("graph: depth %d must be odd so leaves are on the V side", depth)
	}
	if d < 2 {
		return nil, fmt.Errorf("graph: arity %d < 2", d)
	}
	type nodeRef struct {
		side  byte
		index int32
	}
	var nu, nv int
	var edges [][2]int
	// BFS construction level by level.
	level := []nodeRef{{'U', 0}}
	nu = 1
	for l := 0; l < depth; l++ {
		next := make([]nodeRef, 0, len(level)*d)
		for _, parent := range level {
			for c := 0; c < d; c++ {
				var child nodeRef
				if (l+1)%2 == 0 {
					child = nodeRef{'U', int32(nu)}
					nu++
				} else {
					child = nodeRef{'V', int32(nv)}
					nv++
				}
				if parent.side == 'U' {
					edges = append(edges, [2]int{int(parent.index), int(child.index)})
				} else {
					edges = append(edges, [2]int{int(child.index), int(parent.index)})
				}
				next = append(next, child)
			}
		}
		level = next
	}
	return BipartiteFromEdges(nu, nv, edges)
}

// SubdividedCycleBipartite returns the cycle C_{2k} viewed as a bipartite
// graph (even positions in U, odd in V); its girth is 2k, which is ≥ 10 for
// k ≥ 5. Every node has degree exactly 2.
func SubdividedCycleBipartite(k int) (*Bipartite, error) {
	if k < 2 {
		return nil, fmt.Errorf("graph: need k >= 2, got %d", k)
	}
	edges := make([][2]int, 0, 2*k)
	for i := 0; i < k; i++ {
		// U_i -- V_i -- U_{i+1}
		edges = append(edges, [2]int{i, i}, [2]int{(i + 1) % k, i})
	}
	return BipartiteFromEdges(k, k, edges)
}

// EnsureGirthAtLeast removes one edge from every cycle shorter than g until
// the bipartite graph has girth ≥ g (or is acyclic). It returns the repaired
// graph and the number of removed edges. Left-side degrees can shrink, so
// callers should re-check MinDegU. Used to build random-ish high-girth
// instances for Section 5 experiments.
func EnsureGirthAtLeast(b *Bipartite, g int) (*Bipartite, int) {
	cur := b.Clone()
	removed := 0
	for {
		girth := cur.Girth()
		if girth == 0 || girth >= g {
			return cur, removed
		}
		u, v, ok := findShortCycleEdge(cur, girth)
		if !ok {
			return cur, removed
		}
		cur = cur.SubgraphKeepEdges(func(uu, vv int) bool { return !(uu == u && vv == v) })
		removed++
	}
}

// findShortCycleEdge locates one edge lying on some cycle of length exactly
// `target` and returns its (u, v) endpoints.
func findShortCycleEdge(b *Bipartite, target int) (int, int, bool) {
	gg := b.AsGraph()
	n := gg.N()
	nu := b.NU()
	dist := make([]int32, n)
	parent := make([]int32, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		parent[s] = -1
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range gg.Neighbors(int(v)) {
				if w == parent[v] {
					parent[v] = -2
					continue
				}
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					parent[w] = v
					queue = append(queue, w)
				} else if int(dist[v]+dist[w]+1) <= target {
					// The edge {v, w} closes a short cycle; return it in
					// bipartite (u, v) coordinates.
					a, bb := int(v), int(w)
					if a >= nu {
						a, bb = bb, a
					}
					return a, bb - nu, true
				}
			}
			parent[v] = -2
		}
	}
	return 0, 0, false
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// SubdividedStar returns a high-girth bipartite instance with large left
// degrees and rank 2: a two-level tree of U-nodes whose edges are
// subdivided by degree-2 V-nodes, topped up with pendant (degree-1)
// V-leaves so every U-node has degree exactly d. Girth is infinite (a
// tree), δ = d, r = 2 — the regime where Theorem 5.2's potential argument
// goes through at simulation scale.
func SubdividedStar(d int) (*Bipartite, error) {
	if d < 2 {
		return nil, fmt.Errorf("graph: SubdividedStar needs d ≥ 2, got %d", d)
	}
	// U: root 0, children 1..d. V: internal connectors 0..d-1 (root–child),
	// then d·(d-1) pendant leaves under the children.
	nu := 1 + d
	nv := d + d*(d-1)
	b := NewBipartite(nu, nv)
	for i := 0; i < d; i++ {
		// Root – connector i – child i+1.
		if err := b.AddEdge(0, i); err != nil {
			return nil, err
		}
		if err := b.AddEdge(1+i, i); err != nil {
			return nil, err
		}
	}
	next := d
	for c := 1; c <= d; c++ {
		for j := 0; j < d-1; j++ {
			if err := b.AddEdge(c, next); err != nil {
				return nil, err
			}
			next++
		}
	}
	b.Normalize()
	return b, nil
}
