package graph

import (
	"fmt"
	"sort"
)

// Bipartite is a bipartite graph B = (U ∪ V, E) in the paper's convention:
// U is the left, constraint side (hypergraph vertices) and V is the right,
// variable side (hyperedges). Following Section 1.1, δ and Δ denote the
// minimum and maximum degree of nodes in U, and the rank r is the maximum
// degree of nodes in V.
//
// U-nodes are indexed 0..NU()-1 and V-nodes 0..NV()-1, independently.
type Bipartite struct {
	adjU [][]int32 // adjU[u] = sorted V-neighbors of u
	adjV [][]int32 // adjV[v] = sorted U-neighbors of v
}

// NewBipartite returns an empty bipartite graph with nu left and nv right
// nodes.
func NewBipartite(nu, nv int) *Bipartite {
	return &Bipartite{
		adjU: make([][]int32, nu),
		adjV: make([][]int32, nv),
	}
}

// BipartiteFromEdges builds a bipartite graph from (u, v) pairs.
func BipartiteFromEdges(nu, nv int, edges [][2]int) (*Bipartite, error) {
	b := NewBipartite(nu, nv)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	b.Normalize()
	return b, nil
}

// AddEdge inserts the edge (u ∈ U, v ∈ V). Call Normalize after bulk
// insertion.
func (b *Bipartite) AddEdge(u, v int) error {
	if u < 0 || u >= len(b.adjU) || v < 0 || v >= len(b.adjV) {
		return fmt.Errorf("bipartite: edge (%d,%d) out of range U=[0,%d) V=[0,%d)",
			u, v, len(b.adjU), len(b.adjV))
	}
	b.adjU[u] = append(b.adjU[u], int32(v))
	b.adjV[v] = append(b.adjV[v], int32(u))
	return nil
}

// Normalize sorts adjacency lists and removes parallel edges.
func (b *Bipartite) Normalize() {
	for i, nbrs := range b.adjU {
		sort.Slice(nbrs, func(a, c int) bool { return nbrs[a] < nbrs[c] })
		b.adjU[i] = dedupInt32(nbrs)
	}
	for i, nbrs := range b.adjV {
		sort.Slice(nbrs, func(a, c int) bool { return nbrs[a] < nbrs[c] })
		b.adjV[i] = dedupInt32(nbrs)
	}
}

// NU returns the number of constraint (left) nodes.
func (b *Bipartite) NU() int { return len(b.adjU) }

// NV returns the number of variable (right) nodes.
func (b *Bipartite) NV() int { return len(b.adjV) }

// N returns the total number of nodes |U| + |V|, the n of the paper's
// round bounds.
func (b *Bipartite) N() int { return len(b.adjU) + len(b.adjV) }

// M returns the number of edges.
func (b *Bipartite) M() int {
	var m int
	for _, nbrs := range b.adjU {
		m += len(nbrs)
	}
	return m
}

// DegU returns the degree of left node u.
func (b *Bipartite) DegU(u int) int { return len(b.adjU[u]) }

// DegV returns the degree of right node v.
func (b *Bipartite) DegV(v int) int { return len(b.adjV[v]) }

// NbrU returns the sorted V-neighbors of u (shared slice, do not modify).
func (b *Bipartite) NbrU(u int) []int32 { return b.adjU[u] }

// NbrV returns the sorted U-neighbors of v (shared slice, do not modify).
func (b *Bipartite) NbrV(v int) []int32 { return b.adjV[v] }

// MinDegU returns δ, the minimum degree on the left side (0 if U is empty).
func (b *Bipartite) MinDegU() int {
	if len(b.adjU) == 0 {
		return 0
	}
	d := len(b.adjU[0])
	for _, nbrs := range b.adjU[1:] {
		if len(nbrs) < d {
			d = len(nbrs)
		}
	}
	return d
}

// MaxDegU returns Δ, the maximum degree on the left side.
func (b *Bipartite) MaxDegU() int {
	var d int
	for _, nbrs := range b.adjU {
		if len(nbrs) > d {
			d = len(nbrs)
		}
	}
	return d
}

// Rank returns r, the maximum degree on the right side (the rank of the
// corresponding hypergraph).
func (b *Bipartite) Rank() int {
	var d int
	for _, nbrs := range b.adjV {
		if len(nbrs) > d {
			d = len(nbrs)
		}
	}
	return d
}

// Clone returns a deep copy.
func (b *Bipartite) Clone() *Bipartite {
	c := &Bipartite{
		adjU: make([][]int32, len(b.adjU)),
		adjV: make([][]int32, len(b.adjV)),
	}
	for i, nbrs := range b.adjU {
		c.adjU[i] = append([]int32(nil), nbrs...)
	}
	for i, nbrs := range b.adjV {
		c.adjV[i] = append([]int32(nil), nbrs...)
	}
	return c
}

// Edges returns all (u, v) pairs.
func (b *Bipartite) Edges() [][2]int {
	edges := make([][2]int, 0, b.M())
	for u, nbrs := range b.adjU {
		for _, v := range nbrs {
			edges = append(edges, [2]int{u, int(v)})
		}
	}
	return edges
}

// SubgraphKeepEdges returns a new bipartite graph on the same node sets
// containing exactly the edges for which keep returns true.
func (b *Bipartite) SubgraphKeepEdges(keep func(u, v int) bool) *Bipartite {
	c := NewBipartite(len(b.adjU), len(b.adjV))
	for u, nbrs := range b.adjU {
		for _, v := range nbrs {
			if keep(u, int(v)) {
				c.adjU[u] = append(c.adjU[u], v)
				c.adjV[v] = append(c.adjV[v], int32(u))
			}
		}
	}
	return c
}

// InducedSubgraph returns the bipartite subgraph induced by the given U and
// V node subsets, with mappings from new indices to original ones.
func (b *Bipartite) InducedSubgraph(usKeep, vsKeep []int) (*Bipartite, []int, []int) {
	uIdx := make(map[int]int, len(usKeep))
	for i, u := range usKeep {
		uIdx[u] = i
	}
	vIdx := make(map[int]int, len(vsKeep))
	for i, v := range vsKeep {
		vIdx[v] = i
	}
	sub := NewBipartite(len(usKeep), len(vsKeep))
	for i, u := range usKeep {
		for _, v := range b.adjU[u] {
			if j, ok := vIdx[int(v)]; ok {
				sub.adjU[i] = append(sub.adjU[i], int32(j))
				sub.adjV[j] = append(sub.adjV[j], int32(i))
			}
		}
	}
	origU := append([]int(nil), usKeep...)
	origV := append([]int(nil), vsKeep...)
	return sub, origU, origV
}

// ConnectedComponents returns the connected components of B as parallel
// slices of U-indices and V-indices per component.
func (b *Bipartite) ConnectedComponents() (us [][]int, vs [][]int) {
	nu, nv := len(b.adjU), len(b.adjV)
	compU := make([]int, nu)
	compV := make([]int, nv)
	for i := range compU {
		compU[i] = -1
	}
	for i := range compV {
		compV[i] = -1
	}
	// BFS alternating sides; encode queue entries as side, index.
	type item struct {
		side byte // 'U' or 'V'
		idx  int32
	}
	var queue []item
	for s := 0; s < nu; s++ {
		if compU[s] >= 0 {
			continue
		}
		id := len(us)
		compU[s] = id
		queue = append(queue[:0], item{'U', int32(s)})
		var cu, cv []int
		cu = append(cu, s)
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			if it.side == 'U' {
				for _, v := range b.adjU[it.idx] {
					if compV[v] < 0 {
						compV[v] = id
						cv = append(cv, int(v))
						queue = append(queue, item{'V', v})
					}
				}
			} else {
				for _, u := range b.adjV[it.idx] {
					if compU[u] < 0 {
						compU[u] = id
						cu = append(cu, int(u))
						queue = append(queue, item{'U', u})
					}
				}
			}
		}
		us = append(us, cu)
		vs = append(vs, cv)
	}
	// Isolated V nodes form their own (trivial) components.
	for v := 0; v < nv; v++ {
		if compV[v] < 0 {
			us = append(us, nil)
			vs = append(vs, []int{v})
		}
	}
	return us, vs
}

// AsGraph returns B as a plain graph with U-nodes 0..NU()-1 followed by
// V-nodes NU()..NU()+NV()-1. It is used for girth computation and power
// graphs of the whole bipartite graph.
func (b *Bipartite) AsGraph() *Graph {
	nu := len(b.adjU)
	g := NewGraph(nu + len(b.adjV))
	for u, nbrs := range b.adjU {
		for _, v := range nbrs {
			g.adj[u] = append(g.adj[u], v+int32(nu))
			g.adj[int(v)+nu] = append(g.adj[int(v)+nu], int32(u))
		}
	}
	g.Normalize()
	return g
}

// Girth returns the girth of B (always even), or 0 if B is acyclic.
func (b *Bipartite) Girth() int { return b.AsGraph().Girth() }

// VPower returns the graph on V-nodes where two distinct variable nodes are
// adjacent iff their distance in B is at most 2k (bipartite distances
// between same-side nodes are even). VPower(1) is the "B²" conflict graph
// used to compile SLOCAL(2) algorithms; VPower(2) is the "B⁴" graph used by
// Theorem 5.2.
func (b *Bipartite) VPower(k int) *Graph {
	nv := len(b.adjV)
	out := NewGraph(nv)
	visitedV := make([]int32, nv)
	visitedU := make([]int32, len(b.adjU))
	for i := range visitedV {
		visitedV[i] = -1
	}
	for i := range visitedU {
		visitedU[i] = -1
	}
	var frontier, next []int32
	for s := 0; s < nv; s++ {
		visitedV[s] = int32(s)
		frontier = append(frontier[:0], int32(s))
		for hop := 0; hop < k; hop++ {
			next = next[:0]
			for _, v := range frontier {
				for _, u := range b.adjV[v] {
					if visitedU[u] == int32(s) {
						continue
					}
					visitedU[u] = int32(s)
					for _, w := range b.adjU[u] {
						if visitedV[w] != int32(s) {
							visitedV[w] = int32(s)
							next = append(next, w)
							if int(w) > s {
								out.adj[s] = append(out.adj[s], w)
								out.adj[w] = append(out.adj[w], int32(s))
							}
						}
					}
				}
			}
			frontier, next = next, frontier
		}
	}
	out.Normalize()
	return out
}

// UGraph returns the graph on U-nodes where two constraints are adjacent iff
// they share a variable node (the graph G in the proof of Theorem 1.2).
func (b *Bipartite) UGraph() *Graph {
	nu := len(b.adjU)
	out := NewGraph(nu)
	seen := make([]int32, nu)
	for i := range seen {
		seen[i] = -1
	}
	for u := 0; u < nu; u++ {
		seen[u] = int32(u)
		for _, v := range b.adjU[u] {
			for _, w := range b.adjV[v] {
				if seen[w] != int32(u) {
					seen[w] = int32(u)
					if int(w) > u {
						out.adj[u] = append(out.adj[u], w)
						out.adj[w] = append(out.adj[w], int32(u))
					}
				}
			}
		}
	}
	out.Normalize()
	return out
}
