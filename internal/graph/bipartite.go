package graph

import "fmt"

// Bipartite is a bipartite graph B = (U ∪ V, E) in the paper's convention:
// U is the left, constraint side (hypergraph vertices) and V is the right,
// variable side (hyperedges). Following Section 1.1, δ and Δ denote the
// minimum and maximum degree of nodes in U, and the rank r is the maximum
// degree of nodes in V.
//
// U-nodes are indexed 0..NU()-1 and V-nodes 0..NV()-1, independently. Each
// side has its own CSR row set; edges are stored once in a flat pending
// buffer until Normalize (or any read accessor) merges them into both
// sides — call Normalize after the last AddEdge before sharing an instance
// across goroutines (see the package comment).
type Bipartite struct {
	u, v    CSR     // u rows hold V-neighbors of U-nodes; v rows the reverse
	pending []int32 // flat (u, v) pairs awaiting a merge into both sides
}

// NewBipartite returns an empty bipartite graph with nu left and nv right
// nodes.
func NewBipartite(nu, nv int) *Bipartite {
	return &Bipartite{u: emptyCSR(nu), v: emptyCSR(nv)}
}

// BipartiteFromEdges builds a bipartite graph from (u, v) pairs.
func BipartiteFromEdges(nu, nv int, edges [][2]int) (*Bipartite, error) {
	b := NewBipartite(nu, nv)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	b.Normalize()
	return b, nil
}

// AddEdge inserts the edge (u ∈ U, v ∈ V). Call Normalize after bulk
// insertion.
func (b *Bipartite) AddEdge(u, v int) error {
	if u < 0 || u >= b.NU() || v < 0 || v >= b.NV() {
		return fmt.Errorf("bipartite: edge (%d,%d) out of range U=[0,%d) V=[0,%d)",
			u, v, b.NU(), b.NV())
	}
	b.pending = append(b.pending, int32(u), int32(v))
	return nil
}

// addEdgeUnchecked buffers an in-range edge without validation; internal
// constructions that derive edges from an existing graph use it.
func (b *Bipartite) addEdgeUnchecked(u, v int32) {
	b.pending = append(b.pending, u, v)
}

// Normalize merges buffered edges into both CSR sides, sorting rows and
// removing parallel edges. Read accessors call it implicitly.
func (b *Bipartite) Normalize() {
	if b.pending == nil {
		return
	}
	b.u = mergeCSR(b.NU(), b.u, b.pending)
	b.v = mergeCSRFlipped(b.NV(), b.v, b.pending)
	b.pending = nil
}

// CSRU exposes the left side's flat offset/edge arrays (zero-copy; do not
// modify): row u lists the V-neighbors of U-node u. Hot loops over many
// left nodes (the verifiers in internal/check) iterate these directly.
func (b *Bipartite) CSRU() CSR {
	b.Normalize()
	return b.u
}

// CSRV exposes the right side's flat offset/edge arrays (zero-copy; do not
// modify): row v lists the U-neighbors of V-node v.
func (b *Bipartite) CSRV() CSR {
	b.Normalize()
	return b.v
}

// NU returns the number of constraint (left) nodes.
func (b *Bipartite) NU() int { return b.u.N() }

// NV returns the number of variable (right) nodes.
func (b *Bipartite) NV() int { return b.v.N() }

// N returns the total number of nodes |U| + |V|, the n of the paper's
// round bounds.
func (b *Bipartite) N() int { return b.NU() + b.NV() }

// M returns the number of edges.
func (b *Bipartite) M() int {
	b.Normalize()
	return b.u.Arcs()
}

// DegU returns the degree of left node u.
func (b *Bipartite) DegU(u int) int {
	b.Normalize()
	return b.u.Deg(u)
}

// DegV returns the degree of right node v.
func (b *Bipartite) DegV(v int) int {
	b.Normalize()
	return b.v.Deg(v)
}

// NbrU returns the sorted V-neighbors of u (a view into the flat edge
// array; do not modify).
func (b *Bipartite) NbrU(u int) []int32 {
	b.Normalize()
	return b.u.Row(u)
}

// NbrV returns the sorted U-neighbors of v (a view into the flat edge
// array; do not modify).
func (b *Bipartite) NbrV(v int) []int32 {
	b.Normalize()
	return b.v.Row(v)
}

// MinDegU returns δ, the minimum degree on the left side (0 if U is empty).
func (b *Bipartite) MinDegU() int {
	b.Normalize()
	nu := b.u.N()
	if nu == 0 {
		return 0
	}
	d := b.u.Deg(0)
	for u := 1; u < nu; u++ {
		if du := b.u.Deg(u); du < d {
			d = du
		}
	}
	return d
}

// MaxDegU returns Δ, the maximum degree on the left side.
func (b *Bipartite) MaxDegU() int {
	b.Normalize()
	var d int
	for u := 0; u < b.u.N(); u++ {
		if du := b.u.Deg(u); du > d {
			d = du
		}
	}
	return d
}

// Rank returns r, the maximum degree on the right side (the rank of the
// corresponding hypergraph).
func (b *Bipartite) Rank() int {
	b.Normalize()
	var d int
	for v := 0; v < b.v.N(); v++ {
		if dv := b.v.Deg(v); dv > d {
			d = dv
		}
	}
	return d
}

// Clone returns a deep copy.
func (b *Bipartite) Clone() *Bipartite {
	return &Bipartite{
		u:       b.u.clone(),
		v:       b.v.clone(),
		pending: append([]int32(nil), b.pending...),
	}
}

// Edges returns all (u, v) pairs.
func (b *Bipartite) Edges() [][2]int {
	b.Normalize()
	edges := make([][2]int, 0, b.M())
	for u := 0; u < b.u.N(); u++ {
		for _, v := range b.u.Row(u) {
			edges = append(edges, [2]int{u, int(v)})
		}
	}
	return edges
}

// SubgraphKeepEdges returns a new bipartite graph on the same node sets
// containing exactly the edges for which keep returns true.
func (b *Bipartite) SubgraphKeepEdges(keep func(u, v int) bool) *Bipartite {
	b.Normalize()
	c := NewBipartite(b.NU(), b.NV())
	for u := 0; u < b.u.N(); u++ {
		for _, v := range b.u.Row(u) {
			if keep(u, int(v)) {
				c.addEdgeUnchecked(int32(u), v)
			}
		}
	}
	c.Normalize()
	return c
}

// InducedSubgraph returns the bipartite subgraph induced by the given U and
// V node subsets, with mappings from new indices to original ones.
func (b *Bipartite) InducedSubgraph(usKeep, vsKeep []int) (*Bipartite, []int, []int) {
	b.Normalize()
	uIdx := make(map[int]int, len(usKeep))
	for i, u := range usKeep {
		uIdx[u] = i
	}
	vIdx := make(map[int]int, len(vsKeep))
	for i, v := range vsKeep {
		vIdx[v] = i
	}
	sub := NewBipartite(len(usKeep), len(vsKeep))
	for i, u := range usKeep {
		for _, v := range b.u.Row(u) {
			if j, ok := vIdx[int(v)]; ok {
				sub.addEdgeUnchecked(int32(i), int32(j))
			}
		}
	}
	sub.Normalize()
	origU := append([]int(nil), usKeep...)
	origV := append([]int(nil), vsKeep...)
	return sub, origU, origV
}

// ConnectedComponents returns the connected components of B as parallel
// slices of U-indices and V-indices per component.
func (b *Bipartite) ConnectedComponents() (us [][]int, vs [][]int) {
	b.Normalize()
	nu, nv := b.u.N(), b.v.N()
	compU := make([]int, nu)
	compV := make([]int, nv)
	for i := range compU {
		compU[i] = -1
	}
	for i := range compV {
		compV[i] = -1
	}
	// BFS alternating sides; encode queue entries as side, index.
	type item struct {
		side byte // 'U' or 'V'
		idx  int32
	}
	var queue []item
	for s := 0; s < nu; s++ {
		if compU[s] >= 0 {
			continue
		}
		id := len(us)
		compU[s] = id
		queue = append(queue[:0], item{'U', int32(s)})
		var cu, cv []int
		cu = append(cu, s)
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			if it.side == 'U' {
				for _, v := range b.u.Row(int(it.idx)) {
					if compV[v] < 0 {
						compV[v] = id
						cv = append(cv, int(v))
						queue = append(queue, item{'V', v})
					}
				}
			} else {
				for _, u := range b.v.Row(int(it.idx)) {
					if compU[u] < 0 {
						compU[u] = id
						cu = append(cu, int(u))
						queue = append(queue, item{'U', u})
					}
				}
			}
		}
		us = append(us, cu)
		vs = append(vs, cv)
	}
	// Isolated V nodes form their own (trivial) components.
	for v := 0; v < nv; v++ {
		if compV[v] < 0 {
			us = append(us, nil)
			vs = append(vs, []int{v})
		}
	}
	return us, vs
}

// AsGraph returns B as a plain graph with U-nodes 0..NU()-1 followed by
// V-nodes NU()..NU()+NV()-1. It is used for girth computation and power
// graphs of the whole bipartite graph.
func (b *Bipartite) AsGraph() *Graph {
	b.Normalize()
	nu := b.u.N()
	bld := NewCSRBuilder(nu+b.v.N(), b.u.Arcs())
	for u := 0; u < nu; u++ {
		for _, v := range b.u.Row(u) {
			bld.Edge(int32(u), v+int32(nu))
		}
	}
	return fromCSR(bld.Build())
}

// Girth returns the girth of B (always even), or 0 if B is acyclic.
func (b *Bipartite) Girth() int { return b.AsGraph().Girth() }

// VPower returns the graph on V-nodes where two distinct variable nodes are
// adjacent iff their distance in B is at most 2k (bipartite distances
// between same-side nodes are even). VPower(1) is the "B²" conflict graph
// used to compile SLOCAL(2) algorithms; VPower(2) is the "B⁴" graph used by
// Theorem 5.2.
func (b *Bipartite) VPower(k int) *Graph {
	b.Normalize()
	nv := b.v.N()
	bld := NewCSRBuilder(nv, 0)
	visitedV := make([]int32, nv)
	visitedU := make([]int32, b.u.N())
	for i := range visitedV {
		visitedV[i] = -1
	}
	for i := range visitedU {
		visitedU[i] = -1
	}
	var frontier, next []int32
	for s := 0; s < nv; s++ {
		visitedV[s] = int32(s)
		frontier = append(frontier[:0], int32(s))
		for hop := 0; hop < k; hop++ {
			next = next[:0]
			for _, v := range frontier {
				for _, u := range b.v.Row(int(v)) {
					if visitedU[u] == int32(s) {
						continue
					}
					visitedU[u] = int32(s)
					for _, w := range b.u.Row(int(u)) {
						if visitedV[w] != int32(s) {
							visitedV[w] = int32(s)
							next = append(next, w)
							if int(w) > s {
								bld.Edge(int32(s), w)
							}
						}
					}
				}
			}
			frontier, next = next, frontier
		}
	}
	return fromCSR(bld.Build())
}

// UGraph returns the graph on U-nodes where two constraints are adjacent iff
// they share a variable node (the graph G in the proof of Theorem 1.2).
func (b *Bipartite) UGraph() *Graph {
	b.Normalize()
	nu := b.u.N()
	bld := NewCSRBuilder(nu, 0)
	seen := make([]int32, nu)
	for i := range seen {
		seen[i] = -1
	}
	for u := 0; u < nu; u++ {
		seen[u] = int32(u)
		for _, v := range b.u.Row(u) {
			for _, w := range b.v.Row(int(v)) {
				if seen[w] != int32(u) {
					seen[w] = int32(u)
					if int(w) > u {
						bld.Edge(int32(u), w)
					}
				}
			}
		}
	}
	return fromCSR(bld.Build())
}
