package graph

// Text-format graph I/O: SNAP-style edge-list / adjacency import with
// arbitrary node-ID remapping, the splitting-instance text format (a
// "nu nv" header followed by one "u v" edge per line, previously parsed
// inside cmd/wsplit), and a dispatcher that loads any supported file as a
// splitting instance. The binary snapshot format lives in snapshot.go.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// EdgeListOptions is the input-hygiene policy of ImportEdgeList. The zero
// value is strict: a self loop or a duplicate edge is a descriptive error.
// Real-world exports usually need both drops enabled — SNAP files list a
// directed arc per line, so an undirected import sees every edge twice.
type EdgeListOptions struct {
	// DropSelfLoops silently skips u→u lines instead of rejecting the file.
	DropSelfLoops bool
	// DropDuplicates silently deduplicates repeated edges (in either
	// orientation) instead of rejecting the file.
	DropDuplicates bool
}

// ImportEdgeList parses a SNAP-style text graph from r: lines starting with
// '#' or '%' are comments, blank lines are skipped, and every other line is
// whitespace-separated integer node IDs — either an edge "u v" or an
// adjacency row "u v1 v2 ... vk". Node IDs are arbitrary int64s (SNAP files
// routinely skip IDs); they are remapped to dense indices 0..n-1 in first-
// seen order, streamed through a CSRBuilder, and the returned slice maps
// each dense index back to its original ID. name labels parse errors
// (typically the file path).
func ImportEdgeList(r io.Reader, name string, opt EdgeListOptions) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	remap := make(map[int64]int32)
	var ids []int64
	dense := func(id int64) (int32, error) {
		if i, ok := remap[id]; ok {
			return i, nil
		}
		if len(ids) == math.MaxInt32 {
			return 0, fmt.Errorf("more than %d distinct node IDs", math.MaxInt32)
		}
		i := int32(len(ids))
		remap[id] = i
		ids = append(ids, id)
		return i, nil
	}
	var pairs []int32 // flat dense (u, v) endpoint pairs, one per input edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("%s:%d: want an edge \"u v\" or adjacency row \"u v1 v2 ...\", got %q", name, line, text)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%s:%d: bad node ID %q: %w", name, line, fields[0], err)
		}
		u, err := dense(src)
		if err != nil {
			return nil, nil, fmt.Errorf("%s:%d: %w", name, line, err)
		}
		for _, f := range fields[1:] {
			dst, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s:%d: bad node ID %q: %w", name, line, f, err)
			}
			if dst == src {
				if opt.DropSelfLoops {
					continue
				}
				return nil, nil, fmt.Errorf("%s:%d: self loop at node ID %d (enable the drop-self-loops policy to skip)", name, line, src)
			}
			v, err := dense(dst)
			if err != nil {
				return nil, nil, fmt.Errorf("%s:%d: %w", name, line, err)
			}
			pairs = append(pairs, u, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", name, err)
	}
	bld := NewCSRBuilder(len(ids), len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		bld.Edge(pairs[i], pairs[i+1])
	}
	c, err := bld.BuildE()
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", name, err)
	}
	// Build deduplicates rows, so a shortfall against the accepted edge
	// count is exactly the number of duplicate edges (either orientation).
	if dup := len(pairs)/2 - c.Arcs()/2; dup > 0 && !opt.DropDuplicates {
		return nil, nil, fmt.Errorf("%s: %d duplicate edge(s) — SNAP exports list both arc directions; enable the drop-duplicates policy to deduplicate", name, dup)
	}
	return fromCSR(c), ids, nil
}

// ReadEdgeList is ImportEdgeList over the contents of path.
func ReadEdgeList(path string, opt EdgeListOptions) (*Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ImportEdgeList(f, path, opt)
}

// ImportInstance parses the splitting-instance text format: a header line
// "nu nv" followed by one "u v" edge per line (0-based indices; u is a
// constraint, v a variable). Blank lines and '#'/'%' comment lines are
// skipped. name labels parse errors (typically the file path).
func ImportInstance(r io.Reader, name string) (*Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	header := ""
	for sc.Scan() {
		line++
		header = strings.TrimSpace(sc.Text())
		if header != "" && header[0] != '#' && header[0] != '%' {
			break
		}
		header = ""
	}
	if header == "" {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		return nil, fmt.Errorf("%s: missing \"nu nv\" header", name)
	}
	var nu, nv int
	if _, err := fmt.Sscan(header, &nu, &nv); err != nil {
		return nil, fmt.Errorf("%s:%d: bad header %q (want \"nu nv\"): %w", name, line, header, err)
	}
	if nu < 0 || nv < 0 {
		return nil, fmt.Errorf("%s:%d: negative instance shape %d %d", name, line, nu, nv)
	}
	b := NewBipartite(nu, nv)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		var u, v int
		if _, err := fmt.Sscan(text, &u, &v); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, line, err)
		}
		if err := b.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	b.Normalize()
	return b, nil
}

// ReadInstance is ImportInstance over the contents of path.
func ReadInstance(path string) (*Bipartite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ImportInstance(f, path)
}

// ReadBipartiteFile loads a splitting instance from any supported on-disk
// format, dispatching on content:
//
//   - a binary CSR snapshot (detected by magic, regardless of extension):
//     a bipartite snapshot loads directly and without an O(m) rebuild; a
//     graph snapshot is converted via the Section 1.2 encoding (FromGraph).
//   - text whose first non-blank line is a '#'/'%' comment: a SNAP-style
//     edge list (self loops and duplicate arcs dropped — real exports list
//     both arc directions), converted via FromGraph.
//   - any other text: the "nu nv"-header instance format.
//
// Headerless edge lists are ambiguous with the instance format; convert
// them explicitly with csrpack -format edgelist.
func ReadBipartiteFile(path string) (*Bipartite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if IsSnapshot(data) {
		g, b, err := ImportAnySnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if b != nil {
			return b, nil
		}
		return FromGraph(g), nil
	}
	if TextLooksLikeEdgeList(data) {
		g, _, err := ImportEdgeList(bytes.NewReader(data), path, EdgeListOptions{DropSelfLoops: true, DropDuplicates: true})
		if err != nil {
			return nil, err
		}
		return FromGraph(g), nil
	}
	return ImportInstance(bytes.NewReader(data), path)
}

// TextLooksLikeEdgeList reports whether the first non-blank line of a text
// graph file is a
// '#'/'%' comment — the conventional SNAP edge-list header.
func TextLooksLikeEdgeList(data []byte) bool {
	for _, line := range bytes.Split(data, []byte("\n")) {
		text := bytes.TrimSpace(line)
		if len(text) == 0 {
			continue
		}
		return text[0] == '#' || text[0] == '%'
	}
	return false
}
