package graph

import (
	"fmt"
	"math"
	"slices"
)

// CSR is a compressed-sparse-row adjacency structure: the canonical storage
// behind Graph, Bipartite and Multigraph. Row v occupies
// Edges[Off[v]:Off[v+1]]; Off has N()+1 entries. Two flat arrays per graph
// (8 bytes per directed arc plus 4 bytes per node) replace the
// pointer-per-node slices-of-slices layout, which at 1M+ nodes costs an
// extra 24-byte header plus an independently-allocated backing array per
// node and defeats hardware prefetching during neighbor scans.
//
// Rows of Graph and Bipartite are sorted ascending and duplicate-free;
// Multigraph incidence rows are in edge-id order. The zero value is an
// empty graph on zero nodes.
type CSR struct {
	Off   []int32 // len N()+1; Off[0] = 0, monotonically nondecreasing
	Edges []int32 // len Off[N()]; row v is Edges[Off[v]:Off[v+1]]
}

// N returns the number of rows (nodes).
func (c CSR) N() int {
	if len(c.Off) == 0 {
		return 0
	}
	return len(c.Off) - 1
}

// Arcs returns the total number of directed arcs, i.e. len(Edges). For an
// undirected Graph this is twice the edge count.
func (c CSR) Arcs() int { return len(c.Edges) }

// Row returns row v as a subslice of the flat edge array (zero-copy; do not
// modify).
func (c CSR) Row(v int) []int32 { return c.Edges[c.Off[v]:c.Off[v+1]] }

// Deg returns the length of row v.
func (c CSR) Deg(v int) int { return int(c.Off[v+1] - c.Off[v]) }

// clone returns a deep copy of c.
func (c CSR) clone() CSR {
	return CSR{
		Off:   append([]int32(nil), c.Off...),
		Edges: append([]int32(nil), c.Edges...),
	}
}

// emptyCSR returns a CSR with n empty rows.
func emptyCSR(n int) CSR { return CSR{Off: make([]int32, n+1)} }

// CSRBuilder accumulates directed arcs in a single flat buffer and builds a
// CSR in two O(m) passes (degree count, then fill). No per-node intermediate
// slices are allocated, so million-node instances build with a constant
// number of allocations; TestCSRBuilderAllocs pins this down.
//
// Arc and Edge validate endpoints against [0, n) and record the first
// violation (one predictable branch per endpoint — negligible next to the
// append): fillCSR indexes the offset array by endpoint, so an unchecked
// out-of-range arc would otherwise surface as a raw index-out-of-range panic
// deep inside the fill passes. Trusted in-range callers use Build, which
// panics with the recorded descriptive error on misuse; untrusted input
// paths (the file importers) use BuildE, which returns it.
type CSRBuilder struct {
	n    int
	arcs []int32 // flat (src, dst) pairs
	err  error   // first out-of-range endpoint or arc-count overflow, if any
}

// maxCSRArcs caps the number of directed arcs a builder accepts. The CSR
// layout indexes the edge array with int32 offsets, so a build past
// math.MaxInt32 arcs would silently wrap during the fill passes and come out
// structurally corrupt. A var rather than a const so the overflow test can
// lower it instead of materializing a 2^31-arc buffer.
var maxCSRArcs = math.MaxInt32

// NewCSRBuilder returns a builder for a CSR with n rows. edgeHint is the
// expected number of Edge calls (0 is fine): it sizes the arc buffer so an
// accurately hinted build never regrows. Arc-only callers add one arc per
// Edge's two, so a hint of half the Arc count is exact for them.
func NewCSRBuilder(n, edgeHint int) *CSRBuilder {
	return &CSRBuilder{n: n, arcs: make([]int32, 0, 4*edgeHint)}
}

// checkRoom records a descriptive error once the builder is asked to hold
// more directed arcs than the int32 offset layout can index.
func (b *CSRBuilder) checkRoom(add int) {
	if b.err == nil && len(b.arcs)/2+add > maxCSRArcs {
		b.err = fmt.Errorf("graph: %d directed arcs exceed the int32 CSR layout limit of %d",
			len(b.arcs)/2+add, maxCSRArcs)
	}
}

// check records the first out-of-range endpoint; later arcs keep
// accumulating so the builder stays usable for error reporting.
func (b *CSRBuilder) check(u, v int32) {
	if b.err == nil && (int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n) {
		b.err = fmt.Errorf("graph: arc %d endpoint out of range: (%d, %d) not in [0, %d)",
			len(b.arcs)/2, u, v, b.n)
	}
}

// Arc appends the directed arc u → v. Endpoints must be in [0, n); an
// out-of-range endpoint is recorded and surfaced by Err/Build/BuildE.
func (b *CSRBuilder) Arc(u, v int32) {
	b.check(u, v)
	b.checkRoom(1)
	b.arcs = append(b.arcs, u, v)
}

// arcToCol appends a row → column entry where the column is not a node
// index (Multigraph incidence rows store edge ids as columns). Only the row
// is validated — it is what indexes the offset array during the fill.
func (b *CSRBuilder) arcToCol(row, col int32) {
	if b.err == nil && (int(row) < 0 || int(row) >= b.n) {
		b.err = fmt.Errorf("graph: arc %d row %d out of range [0, %d)", len(b.arcs)/2, row, b.n)
	}
	b.checkRoom(1)
	b.arcs = append(b.arcs, row, col)
}

// Edge appends both directed arcs of the undirected edge {u, v}.
func (b *CSRBuilder) Edge(u, v int32) {
	b.check(u, v)
	b.checkRoom(2)
	b.arcs = append(b.arcs, u, v, v, u)
}

// Err returns the first error recorded by Arc or Edge — an out-of-range
// endpoint or an arc count past the int32 layout limit — or nil if every
// added arc was acceptable.
func (b *CSRBuilder) Err() error { return b.err }

// Build assembles the CSR with every row sorted ascending and deduplicated
// (the invariant Graph and Bipartite maintain). The builder can be reused
// afterwards; already-added arcs remain. Build panics with the descriptive
// endpoint error if any added arc was out of range — in-package callers
// construct arcs in range; callers fed from untrusted input use BuildE.
func (b *CSRBuilder) Build() CSR {
	if b.err != nil {
		panic(b.err)
	}
	c := fillCSR(b.n, nil, b.arcs, false)
	sortDedupRows(&c)
	return c
}

// BuildE is Build for untrusted input: it returns the recorded endpoint
// error instead of panicking, so file importers surface a descriptive
// error rather than crashing inside the fill passes.
func (b *CSRBuilder) BuildE() (CSR, error) {
	if b.err != nil {
		return CSR{}, b.err
	}
	c := fillCSR(b.n, nil, b.arcs, false)
	sortDedupRows(&c)
	return c, nil
}

// BuildRaw assembles the CSR preserving arc insertion order within each row
// and keeping duplicates (the invariant Multigraph incidence lists need:
// edge ids per node stay in ascending edge-id order). Like Build, it panics
// with the recorded endpoint error on out-of-range arcs.
func (b *CSRBuilder) BuildRaw() CSR {
	if b.err != nil {
		panic(b.err)
	}
	return fillCSR(b.n, nil, b.arcs, false)
}

// fillCSR runs degree-count-then-fill over an optional existing CSR plus a
// flat (src, dst) arc buffer. Rows come out with base's arcs first (in row
// order) followed by the buffered arcs in insertion order. flip swaps the
// roles of src and dst in the buffer (used for the reverse side of a
// bipartite graph, which shares one pending buffer with the forward side).
func fillCSR(n int, base *CSR, arcs []int32, flip bool) CSR {
	s, d := 0, 1
	if flip {
		s, d = 1, 0
	}
	off := make([]int32, n+1)
	if base != nil {
		for v := 0; v < base.N(); v++ {
			off[v+1] = int32(base.Deg(v))
		}
	}
	for i := 0; i < len(arcs); i += 2 {
		off[arcs[i+s]+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	edges := make([]int32, off[n])
	cursor := make([]int32, n)
	copy(cursor, off[:n])
	if base != nil {
		for v := 0; v < base.N(); v++ {
			row := base.Row(v)
			copy(edges[cursor[v]:], row)
			cursor[v] += int32(len(row))
		}
	}
	for i := 0; i < len(arcs); i += 2 {
		u := arcs[i+s]
		edges[cursor[u]] = arcs[i+d]
		cursor[u]++
	}
	return CSR{Off: off, Edges: edges}
}

// sortDedupRows sorts every row ascending and removes duplicates in place,
// compacting the edge array and offsets.
func sortDedupRows(c *CSR) {
	n := c.N()
	var w int32 // write cursor into the compacted edge array
	for v := 0; v < n; v++ {
		lo, hi := c.Off[v], c.Off[v+1]
		row := c.Edges[lo:hi]
		slices.Sort(row)
		c.Off[v] = w
		for i, x := range row {
			if i > 0 && x == row[i-1] {
				continue
			}
			c.Edges[w] = x
			w++
		}
	}
	c.Off[n] = w
	c.Edges = c.Edges[:w]
}

// mergeCSR rebuilds a sorted, deduplicated CSR over n rows from an existing
// CSR plus a flat buffer of new arcs: the lazy-normalization step behind
// Graph.AddEdge/Normalize. base may have fewer than n rows (node growth).
func mergeCSR(n int, base CSR, arcs []int32) CSR {
	c := fillCSR(n, &base, arcs, false)
	sortDedupRows(&c)
	return c
}

// mergeCSRFlipped is mergeCSR with the buffered arcs read as (dst, src):
// the reverse-side merge of Bipartite, which stores its pending edges once
// as (u, v) pairs and materializes both row sets from them.
func mergeCSRFlipped(n int, base CSR, arcs []int32) CSR {
	c := fillCSR(n, &base, arcs, true)
	sortDedupRows(&c)
	return c
}
