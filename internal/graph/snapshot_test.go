package graph

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand/v2"
	"testing"
	"time"
)

func exportGraphBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.ExportSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func exportBipBytes(t *testing.T, b *Bipartite) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := b.ExportSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sameCSR(a, b CSR) bool {
	if a.N() != b.N() || a.Arcs() != b.Arcs() {
		return false
	}
	for i := range a.Off {
		if a.Off[i] != b.Off[i] {
			return false
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

func TestSnapshotGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for _, g := range []*Graph{
		NewGraph(0),
		NewGraph(5),
		Cycle(17),
		RandomSparseGraph(3000, 9000, rng),
		RandomPowerLawGraph(2000, 2.2, 200, rng),
	} {
		data := exportGraphBytes(t, g)
		got, err := ImportSnapshot(data)
		if err != nil {
			t.Fatalf("n=%d: %v", g.N(), err)
		}
		if !sameCSR(g.CSR(), got.CSR()) {
			t.Fatalf("n=%d: CSR changed across the round trip", g.N())
		}
		// Export→import→export is byte-stable.
		if again := exportGraphBytes(t, got); !bytes.Equal(data, again) {
			t.Fatalf("n=%d: second export differs", g.N())
		}
		info, err := StatSnapshot(data)
		if err != nil || info.Kind != "graph" || info.N != g.N() || info.Arcs != 2*g.M() {
			t.Fatalf("n=%d: stat wrong: %+v err=%v", g.N(), info, err)
		}
	}
}

func TestSnapshotBipartiteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 2))
	lr, err := RandomBipartiteLeftRegular(64, 256, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []*Bipartite{
		NewBipartite(0, 0),
		NewBipartite(3, 0),
		lr,
	} {
		data := exportBipBytes(t, b)
		got, err := ImportBipartiteSnapshot(data)
		if err != nil {
			t.Fatalf("nu=%d: %v", b.NU(), err)
		}
		if !sameCSR(b.CSRU(), got.CSRU()) || !sameCSR(b.CSRV(), got.CSRV()) {
			t.Fatalf("nu=%d: sides changed across the round trip", b.NU())
		}
		if again := exportBipBytes(t, got); !bytes.Equal(data, again) {
			t.Fatalf("nu=%d: second export differs", b.NU())
		}
	}
}

func TestSnapshotKindMismatch(t *testing.T) {
	g := Cycle(8)
	if _, err := ImportBipartiteSnapshot(exportGraphBytes(t, g)); err == nil {
		t.Error("graph snapshot accepted as bipartite")
	}
	b, err := BipartiteFromEdges(2, 2, [][2]int{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ImportSnapshot(exportBipBytes(t, b)); err == nil {
		t.Error("bipartite snapshot accepted as graph")
	}
}

// TestSnapshotMalformedCorpus drives the reader through a corpus of broken
// files: every case must come back as a descriptive error — never a panic,
// never a silently wrong graph.
func TestSnapshotMalformedCorpus(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 1))
	good := exportGraphBytes(t, RandomSparseGraph(200, 600, rng))

	mutate := func(mut func(d []byte)) []byte {
		d := append([]byte(nil), good...)
		mut(d)
		return d
	}
	le := binary.NativeEndian
	cases := map[string][]byte{
		"empty":            nil,
		"short-header":     good[:10],
		"table-truncated":  good[:30],
		"payload-missing":  good[:len(good)/2],
		"one-byte-short":   good[:len(good)-1],
		"bad-magic":        mutate(func(d []byte) { d[0] = 'X' }),
		"foreign-endian":   mutate(func(d []byte) { d[8], d[9], d[10], d[11] = d[11], d[10], d[9], d[8] }),
		"garbage-endian":   mutate(func(d []byte) { le.PutUint32(d[8:], 0xdeadbeef) }),
		"future-version":   mutate(func(d []byte) { le.PutUint32(d[12:], SnapshotVersion+1) }),
		"unknown-kind":     mutate(func(d []byte) { le.PutUint32(d[16:], 9) }),
		"section-count":    mutate(func(d []byte) { le.PutUint32(d[20:], 1000) }),
		"misaligned-sect":  mutate(func(d []byte) { le.PutUint64(d[snapHeaderLen+8:], 121) }),
		"sect-past-eof":    mutate(func(d []byte) { le.PutUint64(d[snapHeaderLen+16:], 1<<40) }),
		"payload-bit-flip": mutate(func(d []byte) { d[len(d)-5] ^= 0x20 }),
		"crc-bit-flip":     mutate(func(d []byte) { d[snapHeaderLen+24] ^= 1 }),
	}
	for name, data := range cases {
		if _, _, err := ImportAnySnapshot(data); err == nil {
			t.Errorf("%s: malformed snapshot accepted", name)
		}
	}
}

// TestSnapshotStructuralValidation hand-builds payload corruptions that
// keep the checksums valid (recomputed after the mutation), so the
// structural scans are what must catch them.
func TestSnapshotStructuralValidation(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	le := binary.NativeEndian
	// Rewrites section sect's payload via mut and recomputes its CRC.
	resealed := func(t *testing.T, sect string, mut func(p []byte)) []byte {
		t.Helper()
		d := exportGraphBytes(t, g)
		count := int(le.Uint32(d[20:]))
		for i := 0; i < count; i++ {
			e := d[snapHeaderLen+snapEntryLen*i:]
			if string(e[:4]) != sect {
				continue
			}
			off, length := le.Uint64(e[8:]), le.Uint64(e[16:])
			p := d[off : off+length]
			mut(p)
			le.PutUint64(e[24:], uint64(crc32.Checksum(p, snapCRC)))
			return d
		}
		t.Fatalf("section %q not found", sect)
		return nil
	}
	cases := map[string]func(t *testing.T) []byte{
		"offsets-decrease": func(t *testing.T) []byte {
			return resealed(t, "OFFS", func(p []byte) { le.PutUint32(p[4:], 7) })
		},
		"offsets-open-high": func(t *testing.T) []byte {
			return resealed(t, "OFFS", func(p []byte) { le.PutUint32(p[:4], 2) })
		},
		"edge-out-of-range": func(t *testing.T) []byte {
			return resealed(t, "EDGE", func(p []byte) { le.PutUint32(p[:4], 100) })
		},
		"edge-negative": func(t *testing.T) []byte {
			return resealed(t, "EDGE", func(p []byte) { le.PutUint32(p[:4], 0x80000001) })
		},
		"row-unsorted": func(t *testing.T) []byte {
			return resealed(t, "EDGE", func(p []byte) {
				a, b := le.Uint32(p[:4]), le.Uint32(p[4:8])
				le.PutUint32(p[:4], b)
				le.PutUint32(p[4:8], a)
			})
		},
		"self-loop": func(t *testing.T) []byte {
			// Node 0's first neighbor becomes 0 itself.
			return resealed(t, "EDGE", func(p []byte) { le.PutUint32(p[:4], 0) })
		},
		"asymmetric": func(t *testing.T) []byte {
			// Node 0's row becomes {2, 3} while no other row gains 0.
			return resealed(t, "EDGE", func(p []byte) { le.PutUint32(p[:4], 2) })
		},
		"meta-n-huge": func(t *testing.T) []byte {
			return resealed(t, "META", func(p []byte) { le.PutUint64(p[:8], 1<<40) })
		},
		"meta-arcs-wrong": func(t *testing.T) []byte {
			return resealed(t, "META", func(p []byte) { le.PutUint64(p[8:], 2) })
		},
	}
	for name, build := range cases {
		if _, err := ImportSnapshot(build(t)); err == nil {
			t.Errorf("%s: structurally invalid snapshot accepted", name)
		}
	}
}

// TestSnapshotImportNoRebuild pins the "no O(m) rebuild" contract: import
// of a 100k-arc snapshot performs a constant number of allocations (the
// payloads are reinterpreted in place, never copied or re-sorted) and is
// far faster than rebuilding the CSR through the builder.
func TestSnapshotImportNoRebuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	g := RandomSparseGraph(20_000, 60_000, rng)
	data := exportGraphBytes(t, g)

	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ImportSnapshot(data); err != nil {
			t.Fatal(err)
		}
	})
	// Header map + a handful of wrappers; payloads alias data. 32 leaves
	// headroom while staying orders of magnitude below the ~n+m an O(m)
	// rebuild would cost.
	if allocs > 32 {
		t.Errorf("ImportSnapshot allocates %.0f times, want a small constant (payload copies or a rebuild crept in)", allocs)
	}

	// Wall-clock sanity: import (checksum + validation scans only) should
	// beat a full builder rebuild. Generous 3-attempt retry so a noisy
	// scheduler cannot flake the pin; the margin is typically >5x.
	edges := g.Edges()
	rebuild := func() {
		bld := NewCSRBuilder(g.N(), len(edges))
		for _, e := range edges {
			bld.Edge(int32(e[0]), int32(e[1]))
		}
		bld.Build()
	}
	ok := false
	for attempt := 0; attempt < 3 && !ok; attempt++ {
		t0 := time.Now()
		for i := 0; i < 5; i++ {
			if _, err := ImportSnapshot(data); err != nil {
				t.Fatal(err)
			}
		}
		importTime := time.Since(t0)
		t0 = time.Now()
		for i := 0; i < 5; i++ {
			rebuild()
		}
		ok = importTime < time.Since(t0)
	}
	if !ok {
		t.Error("snapshot import not faster than a builder rebuild — the zero-copy path regressed")
	}
}
