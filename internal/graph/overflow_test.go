package graph

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"strings"
	"testing"
)

// TestCSRBuilderArcOverflow pins the int32 arc-count guard. The regression:
// offsets and delivery slots are int32, so a build past math.MaxInt32 arcs
// used to wrap silently inside fillCSR and come out structurally corrupt.
// The limit is a package var so the test exercises the guard with synthetic
// builder state instead of a 2^31-arc allocation.
func TestCSRBuilderArcOverflow(t *testing.T) {
	defer func(old int) { maxCSRArcs = old }(maxCSRArcs)
	maxCSRArcs = 4

	t.Run("arc", func(t *testing.T) {
		b := NewCSRBuilder(8, 0)
		for i := int32(0); i < 4; i++ {
			b.Arc(i, i+1)
		}
		if b.Err() != nil {
			t.Fatalf("at-limit builder recorded an error: %v", b.Err())
		}
		b.Arc(4, 5)
		if b.Err() == nil || !strings.Contains(b.Err().Error(), "int32 CSR layout") {
			t.Fatalf("over-limit arc error not descriptive: %v", b.Err())
		}
		if _, err := b.BuildE(); err == nil {
			t.Fatal("BuildE accepted an over-limit builder")
		}
	})
	t.Run("edge-counts-two-arcs", func(t *testing.T) {
		b := NewCSRBuilder(8, 0)
		b.Arc(0, 1)
		b.Arc(1, 2)
		b.Arc(2, 3)
		b.Edge(4, 5) // 3 + 2 = 5 arcs > 4
		if b.Err() == nil || !strings.Contains(b.Err().Error(), "int32 CSR layout") {
			t.Fatalf("over-limit edge error not descriptive: %v", b.Err())
		}
	})
	t.Run("incidence-row", func(t *testing.T) {
		b := NewCSRBuilder(8, 0)
		for i := int32(0); i < 5; i++ {
			b.arcToCol(i, 100+i)
		}
		if b.Err() == nil || !strings.Contains(b.Err().Error(), "int32 CSR layout") {
			t.Fatalf("over-limit incidence error not descriptive: %v", b.Err())
		}
	})
	t.Run("build-panics", func(t *testing.T) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Build on an over-limit builder must panic")
			}
			if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "int32 CSR layout") {
				t.Fatalf("panic value not the descriptive error: %v", r)
			}
		}()
		b := NewCSRBuilder(8, 0)
		for i := int32(0); i < 5; i++ {
			b.Arc(i, i+1)
		}
		b.Build()
	})
}

// TestSnapshotArcOverflow pins that ImportSnapshot rejects a header claiming
// more arcs than the int32 CSR layout can index, with a descriptive error
// rather than a wrapped offset deep in the section scans.
func TestSnapshotArcOverflow(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	d := exportGraphBytes(t, g)
	le := binary.NativeEndian
	count := int(le.Uint32(d[20:]))
	found := false
	for i := 0; i < count; i++ {
		e := d[snapHeaderLen+snapEntryLen*i:]
		if string(e[:4]) != "META" {
			continue
		}
		off, length := le.Uint64(e[8:]), le.Uint64(e[16:])
		p := d[off : off+length]
		le.PutUint64(p[8:], uint64(math.MaxInt32)+1) // arcs field
		le.PutUint64(e[24:], uint64(crc32.Checksum(p, snapCRC)))
		found = true
		break
	}
	if !found {
		t.Fatal("META section not found")
	}
	if _, err := ImportSnapshot(d); err == nil || !strings.Contains(err.Error(), "int32") {
		t.Fatalf("oversized arc count error not descriptive: %v", err)
	}
}
