package graph

import (
	"math/rand/v2"
	"testing"
)

// Edge-case coverage for the generators: empty and single-node instances,
// infeasible regular requests, and self-loop rejection across all three
// graph types.

func TestGeneratorsEmpty(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 0))
	for name, g := range map[string]*Graph{
		"NewGraph":          NewGraph(0),
		"RandomGraph":       RandomGraph(0, 0.5, rng),
		"RandomSparseGraph": RandomSparseGraph(0, 10, rng),
		"PathGraph":         PathGraph(0),
		"Complete":          Complete(0),
		"Cycle":             Cycle(0),
	} {
		if g.N() != 0 || g.M() != 0 {
			t.Errorf("%s: want empty graph, got n=%d m=%d", name, g.N(), g.M())
		}
		if g.MaxDeg() != 0 || g.MinDeg() != 0 {
			t.Errorf("%s: degrees of empty graph must be 0", name)
		}
		if comps := g.ConnectedComponents(); len(comps) != 0 {
			t.Errorf("%s: empty graph has %d components", name, len(comps))
		}
		if g.Girth() != 0 || !g.IsForest() {
			t.Errorf("%s: empty graph must be an acyclic forest", name)
		}
	}
	b := NewBipartite(0, 0)
	if b.N() != 0 || b.M() != 0 || b.MinDegU() != 0 || b.Rank() != 0 {
		t.Error("empty bipartite graph has nonzero shape")
	}
	if g := b.AsGraph(); g.N() != 0 {
		t.Error("AsGraph of empty bipartite graph is nonempty")
	}
}

func TestGeneratorsSingleNode(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 0))
	for name, g := range map[string]*Graph{
		"RandomGraph":       RandomGraph(1, 1.0, rng),
		"RandomSparseGraph": RandomSparseGraph(1, 10, rng),
		"PathGraph":         PathGraph(1),
		"Complete":          Complete(1),
	} {
		if g.N() != 1 || g.M() != 0 {
			t.Errorf("%s: want isolated node, got n=%d m=%d", name, g.N(), g.M())
		}
		if g.Deg(0) != 0 || len(g.Neighbors(0)) != 0 {
			t.Errorf("%s: single node must have no neighbors", name)
		}
		if comps := g.ConnectedComponents(); len(comps) != 1 || len(comps[0]) != 1 {
			t.Errorf("%s: want one singleton component, got %v", name, comps)
		}
	}
}

func TestRandomRegularInfeasible(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 0))
	// Odd n*d has no regular graph.
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("RandomRegular(5, 3): odd degree sum must be rejected")
	}
	// d >= n is impossible in a simple graph.
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("RandomRegular(4, 4): d >= n must be rejected")
	}
	if _, err := RandomRegular(4, 5, rng); err == nil {
		t.Error("RandomRegular(4, 5): d > n must be rejected")
	}
	// Sanity: a feasible request still works after the rejections above.
	g, err := RandomRegular(8, 3, rng)
	if err != nil {
		t.Fatalf("RandomRegular(8, 3): %v", err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) != 3 {
			t.Fatalf("node %d has degree %d, want 3", v, g.Deg(v))
		}
	}
}

func TestSelfLoopRejection(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("Graph.AddEdge(1,1): self loop must be rejected")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("Graph.AddEdge(-1,0): out of range must be rejected")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("Graph.AddEdge(0,3): out of range must be rejected")
	}
	if _, err := FromEdges(2, [][2]int{{0, 0}}); err == nil {
		t.Error("FromEdges with a self loop must fail")
	}
	m := NewMultigraph(3)
	if _, err := m.AddEdge(2, 2); err == nil {
		t.Error("Multigraph.AddEdge(2,2): self loop must be rejected")
	}
	b := NewBipartite(2, 2)
	if err := b.AddEdge(2, 0); err == nil {
		t.Error("Bipartite.AddEdge(2,0): out-of-range U must be rejected")
	}
	if err := b.AddEdge(0, -1); err == nil {
		t.Error("Bipartite.AddEdge(0,-1): out-of-range V must be rejected")
	}
	// The graph must stay usable after rejected insertions.
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g.Normalize()
	if g.M() != 1 || !g.HasEdge(0, 1) {
		t.Error("valid edge lost after rejected insertions")
	}
}

func TestBipartiteGeneratorEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(24, 0))
	if _, err := RandomBipartiteLeftRegular(3, 2, 5, rng); err == nil {
		t.Error("left degree > |V| must be rejected")
	}
	if _, err := RandomBipartiteBiregular(0, 3, 2, rng); err == nil {
		t.Error("empty left side must be rejected")
	}
	if _, err := RandomBipartiteDegreeRange(3, 4, 5, 2, rng); err == nil {
		t.Error("inverted degree range must be rejected")
	}
	if _, err := HighGirthTree(3, 4); err == nil {
		t.Error("even depth must be rejected (leaves would land in U)")
	}
	if _, err := SubdividedStar(1); err == nil {
		t.Error("SubdividedStar(1) must be rejected")
	}
	// Degenerate but legal: zero requested edges.
	b, err := RandomBipartiteLeftRegular(4, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.M() != 0 || b.MinDegU() != 0 {
		t.Errorf("degree-0 instance has m=%d minDegU=%d", b.M(), b.MinDegU())
	}
}
