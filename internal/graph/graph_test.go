package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/prob"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.Normalize()
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N=%d M=%d, want 4,4", g.N(), g.M())
	}
	if g.MaxDeg() != 2 || g.MinDeg() != 2 {
		t.Fatalf("degrees: max=%d min=%d, want 2,2", g.MaxDeg(), g.MinDeg())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Girth() != 4 {
		t.Fatalf("girth of C4 = %d, want 4", g.Girth())
	}
}

func TestGraphErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self loop should error")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out of range should error")
	}
	if _, err := FromEdges(2, [][2]int{{0, 2}}); err == nil {
		t.Error("FromEdges should propagate errors")
	}
}

func TestNormalizeDedups(t *testing.T) {
	g := NewGraph(2)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(0, 1)
	g.Normalize()
	if g.M() != 1 {
		t.Fatalf("duplicate edge survived: M=%d", g.M())
	}
}

func TestGirth(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{PathGraph(10), 0},
		{Cycle(3), 3},
		{Cycle(7), 7},
		{Complete(4), 3},
	}
	for i, c := range cases {
		if got := c.g.Girth(); got != c.want {
			t.Errorf("case %d: girth = %d, want %d", i, got, c.want)
		}
	}
	// Two triangles joined by a path: girth 3.
	g, err := FromEdges(8, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Girth() != 3 {
		t.Errorf("girth = %d, want 3", g.Girth())
	}
}

func TestPowerGraph(t *testing.T) {
	p := PathGraph(5)
	p2 := p.Power(2)
	// In P5^2, node 0 is adjacent to 1 and 2.
	if p2.Deg(0) != 2 {
		t.Errorf("deg_P5^2(0) = %d, want 2", p2.Deg(0))
	}
	if p2.Deg(2) != 4 {
		t.Errorf("deg_P5^2(2) = %d, want 4", p2.Deg(2))
	}
	if !p2.HasEdge(0, 2) || p2.HasEdge(0, 3) {
		t.Error("P5^2 adjacency wrong")
	}
	if p.Power(0).M() != 0 {
		t.Error("0th power should have no edges")
	}
}

func TestConnectedComponents(t *testing.T) {
	g, err := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("component sizes wrong: %v", sizes)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub, orig := g.InducedSubgraph([]int{0, 2, 4})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3: N=%d M=%d", sub.N(), sub.M())
	}
	if orig[0] != 0 || orig[1] != 2 || orig[2] != 4 {
		t.Errorf("orig mapping wrong: %v", orig)
	}
}

func TestBipartiteBasics(t *testing.T) {
	b, err := BipartiteFromEdges(2, 3, [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if b.NU() != 2 || b.NV() != 3 || b.N() != 5 || b.M() != 4 {
		t.Fatalf("sizes wrong: NU=%d NV=%d N=%d M=%d", b.NU(), b.NV(), b.N(), b.M())
	}
	if b.MinDegU() != 2 || b.MaxDegU() != 2 || b.Rank() != 2 {
		t.Fatalf("δ=%d Δ=%d r=%d, want 2,2,2", b.MinDegU(), b.MaxDegU(), b.Rank())
	}
	if err := b.AddEdge(2, 0); err == nil {
		t.Error("out-of-range U should error")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range V should error")
	}
}

func TestBipartiteCloneIndependence(t *testing.T) {
	b := CompleteBipartite(2, 2)
	c := b.Clone()
	_ = c.AddEdge(0, 0) // duplicate; normalize removes it
	c.Normalize()
	if b.M() != 4 || c.M() != 4 {
		t.Errorf("clone not independent: %d %d", b.M(), c.M())
	}
}

func TestBipartiteComponents(t *testing.T) {
	// Two disjoint edges plus one isolated V node.
	b, err := BipartiteFromEdges(2, 3, [][2]int{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	us, vs := b.ConnectedComponents()
	if len(us) != 3 {
		t.Fatalf("got %d components, want 3", len(us))
	}
	// The isolated V node must appear as a trivial component.
	found := false
	for i := range us {
		if len(us[i]) == 0 && len(vs[i]) == 1 && vs[i][0] == 2 {
			found = true
		}
	}
	if !found {
		t.Error("isolated V node not reported")
	}
}

func TestBipartiteInducedSubgraph(t *testing.T) {
	b := CompleteBipartite(3, 3)
	sub, origU, origV := b.InducedSubgraph([]int{0, 2}, []int{1})
	if sub.NU() != 2 || sub.NV() != 1 || sub.M() != 2 {
		t.Fatalf("induced: NU=%d NV=%d M=%d", sub.NU(), sub.NV(), sub.M())
	}
	if origU[1] != 2 || origV[0] != 1 {
		t.Error("index mappings wrong")
	}
}

func TestVPower(t *testing.T) {
	// Path in bipartite form: v0 - u0 - v1 - u1 - v2.
	b, err := BipartiteFromEdges(2, 3, [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	sq := b.VPower(1)
	// v0 and v1 share u0; v1 and v2 share u1; v0 and v2 do not share.
	if !sq.HasEdge(0, 1) || !sq.HasEdge(1, 2) || sq.HasEdge(0, 2) {
		t.Error("VPower(1) adjacency wrong")
	}
	p4 := b.VPower(2)
	if !p4.HasEdge(0, 2) {
		t.Error("VPower(2) should connect v0 and v2")
	}
}

func TestUGraph(t *testing.T) {
	b, err := BipartiteFromEdges(3, 2, [][2]int{{0, 0}, {1, 0}, {1, 1}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ug := b.UGraph()
	if !ug.HasEdge(0, 1) || !ug.HasEdge(1, 2) || ug.HasEdge(0, 2) {
		t.Error("UGraph adjacency wrong")
	}
}

func TestBipartiteGirth(t *testing.T) {
	c4 := CompleteBipartite(2, 2)
	if g := c4.Girth(); g != 4 {
		t.Errorf("girth K2,2 = %d, want 4", g)
	}
	cyc, err := SubdividedCycleBipartite(5)
	if err != nil {
		t.Fatal(err)
	}
	if g := cyc.Girth(); g != 10 {
		t.Errorf("girth of subdivided C10 = %d, want 10", g)
	}
}

func TestMultigraph(t *testing.T) {
	m := NewMultigraph(3)
	e1, err := m.AddEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := m.AddEdge(0, 1) // parallel edge allowed
	_, _ = m.AddEdge(1, 2)
	if m.M() != 3 || m.Deg(0) != 2 || m.Deg(1) != 3 {
		t.Fatalf("multigraph degrees wrong: M=%d deg0=%d deg1=%d", m.M(), m.Deg(0), m.Deg(1))
	}
	if m.Other(e1, 0) != 1 || m.Other(e2, 1) != 0 {
		t.Error("Other wrong")
	}
	if _, err := m.AddEdge(1, 1); err == nil {
		t.Error("self loop should error")
	}
	if _, err := m.AddEdge(0, 5); err == nil {
		t.Error("out of range should error")
	}
	o := &Orientation{Toward: []bool{true, false, true}}
	// e1: 0->1, e2: 1->0, e3: 1->2. Node 1: in=1 out=2 → disc 1; node 0: disc 0.
	if d := m.Discrepancy(o, 1); d != 1 {
		t.Errorf("disc(1) = %d, want 1", d)
	}
	if d := m.Discrepancy(o, 0); d != 0 {
		t.Errorf("disc(0) = %d, want 0", d)
	}
	if m.MaxDiscrepancy(o) != 1 {
		t.Error("max discrepancy wrong")
	}
}

func TestRandomGraph(t *testing.T) {
	rng := prob.NewSource(1).Rand()
	g := RandomGraph(50, 0.2, rng)
	if g.N() != 50 {
		t.Fatal("wrong node count")
	}
	m := g.M()
	if m < 100 || m > 400 { // mean ≈ 245
		t.Errorf("G(50,.2) edge count %d far from expectation", m)
	}
}

func TestRandomRegular(t *testing.T) {
	rng := prob.NewSource(2).Rand()
	g, err := RandomRegular(100, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) != 6 {
			t.Fatalf("node %d has degree %d, want 6", v, g.Deg(v))
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd n*d should error")
	}
	if _, err := RandomRegular(4, 5, rng); err == nil {
		t.Error("d >= n should error")
	}
}

func TestRandomBipartiteLeftRegular(t *testing.T) {
	rng := prob.NewSource(3).Rand()
	b, err := RandomBipartiteLeftRegular(40, 60, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.MinDegU() != 10 || b.MaxDegU() != 10 {
		t.Fatalf("left degrees not exactly 10: δ=%d Δ=%d", b.MinDegU(), b.MaxDegU())
	}
	if _, err := RandomBipartiteLeftRegular(5, 3, 4, rng); err == nil {
		t.Error("d > nv should error")
	}
}

func TestRandomBipartiteBiregular(t *testing.T) {
	rng := prob.NewSource(4).Rand()
	b, err := RandomBipartiteBiregular(30, 20, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.MinDegU() != 8 || b.MaxDegU() != 8 {
		t.Fatalf("left degrees: δ=%d Δ=%d, want 8,8", b.MinDegU(), b.MaxDegU())
	}
	// Right degrees must be 30*8/20 = 12 exactly.
	for v := 0; v < b.NV(); v++ {
		if b.DegV(v) != 12 {
			t.Fatalf("right node %d has degree %d, want 12", v, b.DegV(v))
		}
	}
	if _, err := RandomBipartiteBiregular(2, 30, 3, rng); err == nil {
		t.Error("too few edges for nv should error")
	}
}

func TestRandomBipartiteDegreeRange(t *testing.T) {
	rng := prob.NewSource(5).Rand()
	b, err := RandomBipartiteDegreeRange(50, 50, 5, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.MinDegU() < 5 || b.MaxDegU() > 15 {
		t.Fatalf("degrees out of range: δ=%d Δ=%d", b.MinDegU(), b.MaxDegU())
	}
	if _, err := RandomBipartiteDegreeRange(5, 5, 4, 3, rng); err == nil {
		t.Error("inverted range should error")
	}
}

func TestHighGirthTree(t *testing.T) {
	b, err := HighGirthTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Girth() != 0 {
		t.Error("tree should be acyclic")
	}
	if b.MinDegU() < 4 {
		t.Errorf("δ = %d, want ≥ 4", b.MinDegU())
	}
	if b.Rank() > 5 {
		t.Errorf("rank = %d, want ≤ 5", b.Rank())
	}
	if _, err := HighGirthTree(4, 2); err == nil {
		t.Error("even depth should error")
	}
	if _, err := HighGirthTree(1, 3); err == nil {
		t.Error("arity 1 should error")
	}
}

func TestEnsureGirthAtLeast(t *testing.T) {
	rng := prob.NewSource(6).Rand()
	b, err := RandomBipartiteLeftRegular(30, 30, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	fixed, removed := EnsureGirthAtLeast(b, 10)
	if g := fixed.Girth(); g != 0 && g < 10 {
		t.Errorf("girth after repair = %d, want ≥ 10 or acyclic", g)
	}
	if removed == 0 {
		t.Log("no edges removed (instance already had high girth)")
	}
	if fixed.M()+removed != b.M() {
		t.Error("edge accounting wrong")
	}
}

func TestFromGraph(t *testing.T) {
	g := Cycle(5)
	b := FromGraph(g)
	if b.NU() != 5 || b.NV() != 5 || b.M() != 10 {
		t.Fatalf("encoding sizes wrong: NU=%d NV=%d M=%d", b.NU(), b.NV(), b.M())
	}
	// Left degree of vL equals deg_G(v); rank equals Δ(G).
	if b.MinDegU() != 2 || b.Rank() != 2 {
		t.Errorf("δ=%d r=%d, want 2,2", b.MinDegU(), b.Rank())
	}
	// (uL, vR) edge exists iff {u,v} ∈ G.
	for u := 0; u < 5; u++ {
		for _, v := range b.NbrU(u) {
			if !g.HasEdge(u, int(v)) {
				t.Errorf("bipartite edge (%d,%d) has no graph edge", u, v)
			}
		}
	}
}

func TestNormalizeLeftDegrees(t *testing.T) {
	// One left node with degree 10, delta 3 → 3 virtual nodes with degrees 4,3,3.
	edges := make([][2]int, 10)
	for i := range edges {
		edges[i] = [2]int{0, i}
	}
	b, err := BipartiteFromEdges(1, 10, edges)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := NormalizeLeftDegrees(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if vs.B.NU() != 3 {
		t.Fatalf("got %d virtual nodes, want 3", vs.B.NU())
	}
	if vs.B.MinDegU() < 3 || vs.B.MaxDegU() > 5 {
		t.Errorf("virtual degrees out of [δ,2δ): δ=%d Δ=%d", vs.B.MinDegU(), vs.B.MaxDegU())
	}
	total := 0
	for u := 0; u < vs.B.NU(); u++ {
		if vs.Origin[u] != 0 {
			t.Error("origin mapping wrong")
		}
		total += vs.B.DegU(u)
	}
	if total != 10 {
		t.Errorf("edges not partitioned: %d", total)
	}
	if _, err := NormalizeLeftDegrees(b, 11); err == nil {
		t.Error("delta above min degree should error")
	}
	if _, err := NormalizeLeftDegrees(b, 0); err == nil {
		t.Error("non-positive delta should error")
	}
}

func TestNormalizeLeftDegreesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prob.NewSource(seed).Rand()
		b, err := RandomBipartiteDegreeRange(20, 40, 4, 25, rng)
		if err != nil {
			return false
		}
		vs, err := NormalizeLeftDegrees(b, 4)
		if err != nil {
			return false
		}
		// Every virtual degree in [4, 8); edge multiset preserved per origin.
		degPerOrigin := make([]int, b.NU())
		for u := 0; u < vs.B.NU(); u++ {
			d := vs.B.DegU(u)
			if d < 4 || d >= 9 { // allow d/parts rounding: strictly < 2δ+1
				return false
			}
			degPerOrigin[vs.Origin[u]] += d
		}
		for u := 0; u < b.NU(); u++ {
			if degPerOrigin[u] != b.DegU(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTruncateLeftDegrees(t *testing.T) {
	b := CompleteBipartite(3, 10)
	tb := TruncateLeftDegrees(b, 4)
	if tb.MaxDegU() != 4 || tb.MinDegU() != 4 {
		t.Errorf("truncated degrees: δ=%d Δ=%d, want 4,4", tb.MinDegU(), tb.MaxDegU())
	}
	// Truncating below existing degree is a no-op for those nodes.
	tb2 := TruncateLeftDegrees(b, 99)
	if tb2.M() != b.M() {
		t.Error("truncation above degree should keep all edges")
	}
}

func TestAttachCliqueGadgets(t *testing.T) {
	g := PathGraph(4) // degrees 1,2,2,1
	res := AttachCliqueGadgets(g, 3)
	if res.Original != 4 {
		t.Fatal("original count wrong")
	}
	for v := 0; v < res.Original; v++ {
		if res.G.Deg(v) < 3 {
			t.Errorf("node %d still has degree %d < 3", v, res.G.Deg(v))
		}
	}
	for v := res.Original; v < res.G.N(); v++ {
		if res.G.Deg(v) > 4 {
			t.Errorf("gadget node %d has degree %d > delta+1", v, res.G.Deg(v))
		}
	}
	// A graph already meeting the degree bound is unchanged.
	k := Complete(5)
	res2 := AttachCliqueGadgets(k, 3)
	if res2.G.N() != 5 {
		t.Error("no gadgets expected")
	}
}

func TestSubdividedCycleErrors(t *testing.T) {
	if _, err := SubdividedCycleBipartite(1); err == nil {
		t.Error("k < 2 should error")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := PathGraph(4)
	h := g.DegreeHistogram()
	if h[1] != 2 || h[2] != 2 {
		t.Errorf("histogram wrong: %v", h)
	}
}

func TestVPowerAgainstBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prob.NewSource(seed).Rand()
		b, err := RandomBipartiteLeftRegular(8, 12, 3, rng)
		if err != nil {
			return false
		}
		// Brute-force distances on the underlying graph: V-nodes v, w are
		// VPower(k)-adjacent iff their graph distance is ≤ 2k.
		g := b.AsGraph()
		nu := b.NU()
		dist := func(a, c int) int {
			d := make([]int, g.N())
			for i := range d {
				d[i] = -1
			}
			d[a] = 0
			queue := []int{a}
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, w := range g.Neighbors(v) {
					if d[w] < 0 {
						d[w] = d[v] + 1
						queue = append(queue, int(w))
					}
				}
			}
			return d[c]
		}
		for _, k := range []int{1, 2} {
			pw := b.VPower(k)
			for v := 0; v < b.NV(); v++ {
				for w := v + 1; w < b.NV(); w++ {
					d := dist(nu+v, nu+w)
					want := d > 0 && d <= 2*k
					if pw.HasEdge(v, w) != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestAsGraphRoundTrip(t *testing.T) {
	b := CompleteBipartite(3, 4)
	g := b.AsGraph()
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("AsGraph sizes wrong: N=%d M=%d", g.N(), g.M())
	}
	// U nodes come first; no U-U or V-V edges may exist.
	for u := 0; u < 3; u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) < 3 {
				t.Fatal("U-U edge in AsGraph")
			}
		}
	}
}

func TestIsForestAndGirthAtLeast(t *testing.T) {
	if !PathGraph(10).IsForest() {
		t.Error("path is a forest")
	}
	if Cycle(5).IsForest() {
		t.Error("cycle is not a forest")
	}
	if !PathGraph(10).GirthAtLeast(100) {
		t.Error("forests pass any girth bound")
	}
	if Cycle(5).GirthAtLeast(6) {
		t.Error("C5 has girth 5 < 6")
	}
	if !Cycle(5).GirthAtLeast(5) {
		t.Error("C5 has girth exactly 5")
	}
	// Disconnected: forest + cycle.
	g, err := FromEdges(7, [][2]int{{0, 1}, {2, 3}, {3, 4}, {4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.IsForest() {
		t.Error("graph contains a triangle")
	}
}

func TestSubdividedStarInvariants(t *testing.T) {
	for _, d := range []int{2, 5, 12} {
		b, err := SubdividedStar(d)
		if err != nil {
			t.Fatal(err)
		}
		if b.MinDegU() != d || b.MaxDegU() != d {
			t.Errorf("d=%d: degrees δ=%d Δ=%d", d, b.MinDegU(), b.MaxDegU())
		}
		if b.Rank() != 2 {
			t.Errorf("d=%d: rank %d", d, b.Rank())
		}
		if !b.AsGraph().IsForest() {
			t.Errorf("d=%d: not a tree", d)
		}
		if b.NU() != 1+d || b.NV() != d*d {
			t.Errorf("d=%d: sizes NU=%d NV=%d", d, b.NU(), b.NV())
		}
	}
	if _, err := SubdividedStar(1); err == nil {
		t.Error("d < 2 should error")
	}
}

func TestRandomSparseGraph(t *testing.T) {
	rng := prob.NewSource(77).Rand()
	g := RandomSparseGraph(10_000, 40_000, rng)
	if g.N() != 10_000 {
		t.Fatalf("n = %d", g.N())
	}
	if m := g.M(); m == 0 || m > 40_000 {
		t.Fatalf("m = %d, want (0, 40000]", m)
	}
	// Simple graph: no self loops, no duplicate edges, symmetric adjacency.
	for v := 0; v < g.N(); v++ {
		prev := int32(-1)
		for _, w := range g.Neighbors(v) {
			if w == int32(v) {
				t.Fatalf("self loop at %d", v)
			}
			if w == prev {
				t.Fatalf("duplicate edge %d-%d", v, w)
			}
			prev = w
			if !g.HasEdge(int(w), v) {
				t.Fatalf("asymmetric edge %d-%d", v, w)
			}
		}
	}
	// Same seed, same graph.
	g2 := RandomSparseGraph(10_000, 40_000, prob.NewSource(77).Rand())
	if g2.M() != g.M() {
		t.Errorf("not reproducible: %d vs %d edges", g2.M(), g.M())
	}
	if tiny := RandomSparseGraph(1, 10, rng); tiny.M() != 0 {
		t.Errorf("n=1 should have no edges")
	}
}

func TestRandomPowerLawGraph(t *testing.T) {
	rng := prob.NewSource(33).Rand()
	const n, maxDeg = 20000, 500
	g := RandomPowerLawGraph(n, 2.1, maxDeg, rng)
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	top, total := 0, 0
	for v := 0; v < n; v++ {
		d := g.Deg(v)
		if d > maxDeg {
			t.Fatalf("node %d has degree %d > maxDeg %d", v, d, maxDeg)
		}
		if d > top {
			top = d
		}
		total += d
		for _, w := range g.Neighbors(v) {
			if int(w) == v {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
	avg := float64(total) / float64(n)
	// The degree sequence must actually be heavy-tailed: the largest degree
	// dwarfs the mean (a Poisson-like RandomSparseGraph would fail this).
	if float64(top) < 20*avg {
		t.Errorf("max degree %d is not heavy-tailed vs mean %.1f", top, avg)
	}
	// Deterministic given the stream.
	h := RandomPowerLawGraph(n, 2.1, maxDeg, prob.NewSource(33).Rand())
	if h.M() != g.M() {
		t.Errorf("not deterministic: %d vs %d edges", h.M(), g.M())
	}
	if tiny := RandomPowerLawGraph(1, 2.5, 4, rng); tiny.N() != 1 || tiny.M() != 0 {
		t.Errorf("n=1 graph wrong: N=%d M=%d", tiny.N(), tiny.M())
	}
}

func TestRandomBipartitePowerLaw(t *testing.T) {
	rng := prob.NewSource(34).Rand()
	b, err := RandomBipartitePowerLaw(400, 800, 2.3, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The solvability floor for nu+nv = 1200 is 2·⌈log₂ 1200⌉ = 22.
	for u := 0; u < b.NU(); u++ {
		if d := b.DegU(u); d < 22 || d > 60 {
			t.Fatalf("left node %d has degree %d outside [22, 60]", u, d)
		}
	}
	if _, err := RandomBipartitePowerLaw(4, 8, 2.3, 9, rng); err == nil {
		t.Error("maxDeg > nv should error")
	}
	if _, err := RandomBipartitePowerLaw(400, 800, 2.3, 10, rng); err == nil {
		t.Error("maxDeg below the solvability floor should error")
	}
}
