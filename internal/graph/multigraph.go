package graph

import "fmt"

// Multigraph is an undirected multigraph with explicit edge identities.
// Parallel edges are allowed (Degree-Rank Reduction II produces them:
// "there can be multiple edges between two nodes in G with distinct
// corresponding nodes"), and the directed degree splitting of
// Definition 2.1 is computed on multigraphs.
//
// Endpoints are stored in two flat arrays indexed by edge id; the per-node
// incidence lists are a CSR over edge ids, rebuilt lazily after AddEdge
// calls. Incidence rows list edge ids in ascending order (insertion order),
// exactly as the former slices-of-slices layout did, so Euler tours and
// splitters iterate edges in the same sequence.
type Multigraph struct {
	n        int
	tails    []int32 // tails[e], heads[e] are the endpoints of edge e
	heads    []int32
	inc      CSR // inc row v = edge ids incident to v (both endpoints listed)
	incEdges int // number of edges reflected in inc
}

// NewMultigraph returns an empty multigraph on n nodes.
func NewMultigraph(n int) *Multigraph {
	return &Multigraph{n: n, inc: emptyCSR(n)}
}

// AddEdge appends an edge {u, v} (u != v) and returns its edge id.
func (m *Multigraph) AddEdge(u, v int) (int, error) {
	if u == v {
		return 0, fmt.Errorf("multigraph: self loop at node %d", u)
	}
	if u < 0 || v < 0 || u >= m.n || v >= m.n {
		return 0, fmt.Errorf("multigraph: edge {%d,%d} out of range [0,%d)", u, v, m.n)
	}
	id := len(m.tails)
	m.tails = append(m.tails, int32(u))
	m.heads = append(m.heads, int32(v))
	return id, nil
}

// Normalize rebuilds the incidence CSR from the endpoint arrays, like
// Graph.Normalize: call it after the last AddEdge before sharing the
// multigraph across goroutines (read accessors otherwise trigger the
// rebuild lazily, which mutates the receiver).
func (m *Multigraph) Normalize() { m.buildInc() }

// buildInc rebuilds the incidence CSR from the endpoint arrays. Iterating
// edges in id order fills every row in ascending edge-id order, matching
// per-edge insertion order.
func (m *Multigraph) buildInc() {
	if m.incEdges == len(m.tails) {
		return
	}
	bld := NewCSRBuilder(m.n, len(m.tails))
	for e := range m.tails {
		bld.arcToCol(m.tails[e], int32(e))
		bld.arcToCol(m.heads[e], int32(e))
	}
	m.inc = bld.BuildRaw()
	m.incEdges = len(m.tails)
}

// N returns the number of nodes.
func (m *Multigraph) N() int { return m.n }

// M returns the number of edges.
func (m *Multigraph) M() int { return len(m.tails) }

// Deg returns the degree of v, counting parallel edges.
func (m *Multigraph) Deg(v int) int {
	m.buildInc()
	return m.inc.Deg(v)
}

// Incident returns the edge ids incident to v as a view into the flat
// incidence array (do not modify).
func (m *Multigraph) Incident(v int) []int32 {
	m.buildInc()
	return m.inc.Row(v)
}

// Endpoints returns the two endpoints of edge e.
func (m *Multigraph) Endpoints(e int) (int, int) {
	return int(m.tails[e]), int(m.heads[e])
}

// Other returns the endpoint of e that is not v.
func (m *Multigraph) Other(e, v int) int {
	if int(m.tails[e]) == v {
		return int(m.heads[e])
	}
	return int(m.tails[e])
}

// MaxDeg returns the maximum degree.
func (m *Multigraph) MaxDeg() int {
	m.buildInc()
	var d int
	for v := 0; v < m.n; v++ {
		if dv := m.inc.Deg(v); dv > d {
			d = dv
		}
	}
	return d
}

// Orientation assigns a direction to every edge of a multigraph:
// Toward[e] == true means edge e points from Endpoints(e) tail to head,
// false means head to tail.
type Orientation struct {
	Toward []bool
}

// Out reports whether edge e leaves node v under o.
func (m *Multigraph) Out(o *Orientation, e, v int) bool {
	if o.Toward[e] {
		return int(m.tails[e]) == v
	}
	return int(m.heads[e]) == v
}

// Discrepancy returns |out(v) - in(v)| for node v under orientation o,
// the quantity bounded by Definition 2.1.
func (m *Multigraph) Discrepancy(o *Orientation, v int) int {
	var out, in int
	for _, e := range m.Incident(v) {
		if m.Out(o, int(e), v) {
			out++
		} else {
			in++
		}
	}
	d := out - in
	if d < 0 {
		d = -d
	}
	return d
}

// MaxDiscrepancy returns the maximum discrepancy over all nodes.
func (m *Multigraph) MaxDiscrepancy(o *Orientation) int {
	var worst int
	for v := 0; v < m.n; v++ {
		if d := m.Discrepancy(o, v); d > worst {
			worst = d
		}
	}
	return worst
}

// MultigraphFromGraph copies a simple graph into multigraph form, returning
// also the edge list in the multigraph's edge-id order.
func MultigraphFromGraph(g *Graph) (*Multigraph, [][2]int) {
	m := NewMultigraph(g.N())
	edges := g.Edges()
	for _, e := range edges {
		if _, err := m.AddEdge(e[0], e[1]); err != nil {
			// Unreachable: a valid simple graph has no loops or range errors.
			panic(err)
		}
	}
	return m, edges
}
