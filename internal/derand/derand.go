// Package derand implements the method of conditional expectations behind
// [GHK16, Theorem III.1], which the paper uses to turn zero/one-round
// randomized algorithms into deterministic SLOCAL algorithms (Lemma 2.1,
// Lemma 3.1, Theorems 3.2/3.3, Section 4.1).
//
// A randomized assignment of labels to variables is derandomized against a
// pessimistic estimator Φ: an upper bound on the expected number of violated
// constraints under random completion of the remaining variables, which (i)
// can be evaluated under partial assignments and (ii) does not increase in
// expectation when a variable is fixed to a uniformly random label. Greedily
// fixing each variable to the label minimizing Φ keeps Φ non-increasing, so
// if the initial Φ < 1 the final (integer) violation count is 0.
package derand

import (
	"fmt"
	"math"
)

// Estimator is a pessimistic estimator over variables 0..Vars()-1, each
// taking a label in 0..Labels()-1.
type Estimator interface {
	// Vars returns the number of variables.
	Vars() int
	// Labels returns the size of the label alphabet.
	Labels() int
	// Cost returns the current potential Φ under the partial assignment.
	Cost() float64
	// CostIf returns the potential that fixing variable v to label x would
	// produce. It must not mutate state.
	CostIf(v, x int) float64
	// Fix assigns label x to variable v.
	Fix(v, x int)
}

// Greedy fixes the variables in the given order (every variable exactly
// once), each to the label minimizing the potential. It returns the full
// assignment. An error is returned if the initial potential is ≥ 1 — the
// precondition of the derandomization (e.g. δ ≥ 2·log n in Lemma 2.1) does
// not hold.
func Greedy(est Estimator, order []int) ([]int, error) {
	if len(order) != est.Vars() {
		return nil, fmt.Errorf("derand: order has %d entries for %d variables", len(order), est.Vars())
	}
	if c := est.Cost(); c >= 1 {
		return nil, fmt.Errorf("derand: initial potential %.4g >= 1; precondition violated", c)
	}
	labels := make([]int, est.Vars())
	for i := range labels {
		labels[i] = -1
	}
	for _, v := range order {
		if labels[v] >= 0 {
			return nil, fmt.Errorf("derand: variable %d appears twice in order", v)
		}
		best, bestCost := 0, math.Inf(1)
		for x := 0; x < est.Labels(); x++ {
			if c := est.CostIf(v, x); c < bestCost {
				best, bestCost = x, c
			}
		}
		est.Fix(v, best)
		labels[v] = best
	}
	for v, x := range labels {
		if x < 0 {
			return nil, fmt.Errorf("derand: variable %d never fixed", v)
		}
	}
	return labels, nil
}

// constraintRef lists which constraints a variable participates in.
type constraintRef struct {
	varToCons [][]int32
}

// WeakSplitEstimator is the exact potential of Lemma 2.1: for every
// constraint u, Φ_u = Pr[no red neighbor] + Pr[no blue neighbor] under
// uniform red/blue completion of the undecided variables. Initially
// Φ = Σ_u 2·2^{-deg(u)} < 1 whenever deg(u) ≥ 2·log n for all u.
type WeakSplitEstimator struct {
	refs    constraintRef
	undec   []int // per constraint: undecided neighbor count
	hasRed  []bool
	hasBlue []bool
	cost    float64
}

// Label values for two-coloring estimators.
const (
	Red  = 0
	Blue = 1
)

// NewWeakSplitEstimator builds the estimator. varToCons[v] lists the
// constraints adjacent to variable v; degrees[u] is the (current) degree of
// constraint u.
func NewWeakSplitEstimator(varToCons [][]int32, degrees []int) *WeakSplitEstimator {
	e := &WeakSplitEstimator{
		refs:    constraintRef{varToCons: varToCons},
		undec:   append([]int(nil), degrees...),
		hasRed:  make([]bool, len(degrees)),
		hasBlue: make([]bool, len(degrees)),
	}
	for u := range degrees {
		e.cost += e.term(u)
	}
	return e
}

// term is Φ_u under the current partial assignment.
func (e *WeakSplitEstimator) term(u int) float64 {
	p := math.Exp2(-float64(e.undec[u]))
	var t float64
	if !e.hasRed[u] {
		t += p
	}
	if !e.hasBlue[u] {
		t += p
	}
	return t
}

// termIf is Φ_u if one more undecided neighbor were fixed to label x.
func (e *WeakSplitEstimator) termIf(u, x int) float64 {
	undec := e.undec[u] - 1
	p := math.Exp2(-float64(undec))
	var t float64
	if !e.hasRed[u] && x != Red {
		t += p
	}
	if !e.hasBlue[u] && x != Blue {
		t += p
	}
	return t
}

// Vars implements Estimator.
func (e *WeakSplitEstimator) Vars() int { return len(e.refs.varToCons) }

// Labels implements Estimator.
func (e *WeakSplitEstimator) Labels() int { return 2 }

// Cost implements Estimator.
func (e *WeakSplitEstimator) Cost() float64 { return e.cost }

// CostIf implements Estimator.
func (e *WeakSplitEstimator) CostIf(v, x int) float64 {
	c := e.cost
	for _, u := range e.refs.varToCons[v] {
		c += e.termIf(int(u), x) - e.term(int(u))
	}
	return c
}

// Fix implements Estimator.
func (e *WeakSplitEstimator) Fix(v, x int) {
	for _, u := range e.refs.varToCons[v] {
		e.cost -= e.term(int(u))
		e.undec[u]--
		if x == Red {
			e.hasRed[u] = true
		} else {
			e.hasBlue[u] = true
		}
		e.cost += e.term(int(u))
	}
}

// Violations counts constraints that still lack a color among their decided
// neighbors once all variables are fixed (for tests; 0 after a successful
// Greedy run).
func (e *WeakSplitEstimator) Violations() int {
	var bad int
	for u := range e.undec {
		if !e.hasRed[u] || !e.hasBlue[u] {
			bad++
		}
	}
	return bad
}

// MulticolorCoverEstimator is the potential of Theorem 3.2's membership
// proof: variables choose one of C colors uniformly; for every constraint u
// and color x, the term Pr[no neighbor of u has color x] =
// [x unseen]·(1-1/C)^{undec(u)}. Final potential 0 means every constraint
// sees all C colors (stronger than the required 2·log n distinct colors).
type MulticolorCoverEstimator struct {
	refs   constraintRef
	colors int
	undec  []int
	seen   [][]bool // seen[u][x]
	nSeen  []int
	cost   float64
}

// NewMulticolorCoverEstimator builds the estimator for C colors.
func NewMulticolorCoverEstimator(varToCons [][]int32, degrees []int, colors int) *MulticolorCoverEstimator {
	e := &MulticolorCoverEstimator{
		refs:   constraintRef{varToCons: varToCons},
		colors: colors,
		undec:  append([]int(nil), degrees...),
		seen:   make([][]bool, len(degrees)),
		nSeen:  make([]int, len(degrees)),
	}
	for u := range degrees {
		e.seen[u] = make([]bool, colors)
		e.cost += e.term(u)
	}
	return e
}

func (e *MulticolorCoverEstimator) missProb(undec int) float64 {
	return math.Pow(1-1/float64(e.colors), float64(undec))
}

func (e *MulticolorCoverEstimator) term(u int) float64 {
	return float64(e.colors-e.nSeen[u]) * e.missProb(e.undec[u])
}

// Vars implements Estimator.
func (e *MulticolorCoverEstimator) Vars() int { return len(e.refs.varToCons) }

// Labels implements Estimator.
func (e *MulticolorCoverEstimator) Labels() int { return e.colors }

// Cost implements Estimator.
func (e *MulticolorCoverEstimator) Cost() float64 { return e.cost }

// CostIf implements Estimator.
func (e *MulticolorCoverEstimator) CostIf(v, x int) float64 {
	c := e.cost
	for _, ui := range e.refs.varToCons[v] {
		u := int(ui)
		nSeen := e.nSeen[u]
		if !e.seen[u][x] {
			nSeen++
		}
		after := float64(e.colors-nSeen) * e.missProb(e.undec[u]-1)
		c += after - e.term(u)
	}
	return c
}

// Fix implements Estimator.
func (e *MulticolorCoverEstimator) Fix(v, x int) {
	for _, ui := range e.refs.varToCons[v] {
		u := int(ui)
		e.cost -= e.term(u)
		e.undec[u]--
		if !e.seen[u][x] {
			e.seen[u][x] = true
			e.nSeen[u]++
		}
		e.cost += e.term(u)
	}
}

// SeenCount returns how many distinct colors constraint u sees (tests).
func (e *MulticolorCoverEstimator) SeenCount(u int) int { return e.nSeen[u] }

// CLambdaEstimator is the Chernoff/MGF pessimistic estimator for
// (C,λ)-multicolor splitting (Definition 1.2, Theorem 3.3): variables pick
// one of C colors uniformly; for every constraint u and color x, the term
// bounds Pr[more than ⌈λ·deg(u)⌉ neighbors of u get color x] by
// e^{t(fixed_x - k_u)} · (1 + (e^t-1)/C)^{undec(u)}, with the per-constraint
// t chosen as in the proof of inequality (2).
type CLambdaEstimator struct {
	refs   constraintRef
	colors int
	undec  []int
	fixed  [][]int32 // fixed[u][x] = decided neighbors of u with color x
	kk     []int     // k_u = ⌈λ·deg(u)⌉ threshold
	tt     []float64 // per-constraint MGF parameter
	cost   float64
}

// NewCLambdaEstimator builds the estimator.
func NewCLambdaEstimator(varToCons [][]int32, degrees []int, colors int, lambda float64) *CLambdaEstimator {
	e := &CLambdaEstimator{
		refs:   constraintRef{varToCons: varToCons},
		colors: colors,
		undec:  append([]int(nil), degrees...),
		fixed:  make([][]int32, len(degrees)),
		kk:     make([]int, len(degrees)),
		tt:     make([]float64, len(degrees)),
	}
	for u, d := range degrees {
		e.fixed[u] = make([]int32, colors)
		k := int(math.Ceil(lambda * float64(d)))
		if k < 1 {
			k = 1
		}
		e.kk[u] = k
		// Optimal Chernoff parameter for Pr[Bin(d,1/C) ≥ k]:
		// t = ln(k·C/d), clamped to be positive.
		t := math.Log(float64(k) * float64(colors) / math.Max(float64(d), 1))
		if t <= 0 {
			t = 0.1
		}
		e.tt[u] = t
		e.cost += e.term(u)
	}
	return e
}

func (e *CLambdaEstimator) termWith(u, undec int, extra int, x int) float64 {
	t := e.tt[u]
	base := math.Pow(1+(math.Exp(t)-1)/float64(e.colors), float64(undec))
	var sum float64
	for c := 0; c < e.colors; c++ {
		fx := float64(e.fixed[u][c])
		if c == x {
			fx += float64(extra)
		}
		// Per-color exceedance term: e^{t(fx - k)} · E[e^{tB}] with
		// B ~ Bin(undec, 1/C).
		sum += math.Exp(t*(fx-float64(e.kk[u]))) * base
	}
	return sum
}

func (e *CLambdaEstimator) term(u int) float64 { return e.termWith(u, e.undec[u], 0, -1) }

// Vars implements Estimator.
func (e *CLambdaEstimator) Vars() int { return len(e.refs.varToCons) }

// Labels implements Estimator.
func (e *CLambdaEstimator) Labels() int { return e.colors }

// Cost implements Estimator.
func (e *CLambdaEstimator) Cost() float64 { return e.cost }

// CostIf implements Estimator.
func (e *CLambdaEstimator) CostIf(v, x int) float64 {
	c := e.cost
	for _, ui := range e.refs.varToCons[v] {
		u := int(ui)
		c += e.termWith(u, e.undec[u]-1, 1, x) - e.term(u)
	}
	return c
}

// Fix implements Estimator.
func (e *CLambdaEstimator) Fix(v, x int) {
	for _, ui := range e.refs.varToCons[v] {
		u := int(ui)
		e.cost -= e.term(u)
		e.undec[u]--
		e.fixed[u][x]++
		e.cost += e.term(u)
	}
}

// MaxLoad returns max over colors of fixed[u][x] for constraint u (tests).
func (e *CLambdaEstimator) MaxLoad(u int) int {
	var worst int32
	for _, f := range e.fixed[u] {
		if f > worst {
			worst = f
		}
	}
	return int(worst)
}

// Threshold returns k_u = ⌈λ·deg(u)⌉ for constraint u.
func (e *CLambdaEstimator) Threshold(u int) int { return e.kk[u] }

// UniformSplitEstimator derandomizes the uniform (strong) splitting of
// Section 4.1: every graph node is a variable (red/blue) and every node is
// also a constraint requiring its red-neighbor count X_v to lie in
// [(1/2-ε)d(v), (1/2+ε)d(v)] (and symmetrically for blue, which is implied).
// The potential is the Hoeffding MGF bound on both tails with t = 2ε.
type UniformSplitEstimator struct {
	refs  constraintRef
	undec []int
	red   []int // decided red neighbors per constraint
	deg   []int
	eps   float64
	t     float64
	cost  float64
}

// NewUniformSplitEstimator builds the estimator; varToCons is typically the
// adjacency of the graph itself (variable v affects constraint u iff
// {u,v} ∈ E).
func NewUniformSplitEstimator(varToCons [][]int32, degrees []int, eps float64) *UniformSplitEstimator {
	e := &UniformSplitEstimator{
		refs:  constraintRef{varToCons: varToCons},
		undec: append([]int(nil), degrees...),
		red:   make([]int, len(degrees)),
		deg:   append([]int(nil), degrees...),
		eps:   eps,
		t:     2 * eps,
	}
	for u := range degrees {
		e.cost += e.term(u)
	}
	return e
}

func (e *UniformSplitEstimator) termWith(u, undec, red int) float64 {
	d := float64(e.deg[u])
	hi := (0.5 + e.eps) * d
	lo := (0.5 - e.eps) * d
	t := e.t
	mgfUp := math.Exp(t*(float64(red)-hi)) * math.Pow((1+math.Exp(t))/2, float64(undec)) * math.Exp(-0) // E e^{tX} / e^{t·hi}
	mgfLo := math.Exp(t*(lo-float64(red))) * math.Pow((1+math.Exp(-t))/2, float64(undec))
	return mgfUp + mgfLo
}

func (e *UniformSplitEstimator) term(u int) float64 { return e.termWith(u, e.undec[u], e.red[u]) }

// Vars implements Estimator.
func (e *UniformSplitEstimator) Vars() int { return len(e.refs.varToCons) }

// Labels implements Estimator.
func (e *UniformSplitEstimator) Labels() int { return 2 }

// Cost implements Estimator.
func (e *UniformSplitEstimator) Cost() float64 { return e.cost }

// CostIf implements Estimator.
func (e *UniformSplitEstimator) CostIf(v, x int) float64 {
	c := e.cost
	for _, ui := range e.refs.varToCons[v] {
		u := int(ui)
		red := e.red[u]
		if x == Red {
			red++
		}
		c += e.termWith(u, e.undec[u]-1, red) - e.term(u)
	}
	return c
}

// Fix implements Estimator.
func (e *UniformSplitEstimator) Fix(v, x int) {
	for _, ui := range e.refs.varToCons[v] {
		u := int(ui)
		e.cost -= e.term(u)
		e.undec[u]--
		if x == Red {
			e.red[u]++
		}
		e.cost += e.term(u)
	}
}

// DefectiveSplitEstimator derandomizes the defective 2-coloring of the
// paper's footnote 2 (Section 1.1): color the nodes of a graph red/blue so
// that every node of degree ≥ minDeg has at most (1/2+ε)·d(v) neighbors of
// its *own* color — a weaker requirement than uniform splitting, but
// already enough for the coloring application. The potential is a Hoeffding
// MGF bound on the own-color count; a node's own term averages over its two
// possible colors until the node itself is fixed.
type DefectiveSplitEstimator struct {
	adj    [][]int32 // graph adjacency among constrained/variable nodes
	deg    []int
	active []bool // whether the node carries a constraint
	label  []int  // fixed label or -1
	same   []int  // fixed neighbors matching the node's fixed label
	red    []int  // fixed red neighbors (to resolve terms when v gets fixed)
	undec  []int
	eps    float64
	t      float64
	cost   float64
}

// NewDefectiveSplitEstimator builds the estimator over the graph adjacency;
// nodes of degree < minDeg carry no constraint.
func NewDefectiveSplitEstimator(adj [][]int32, minDeg int, eps float64) *DefectiveSplitEstimator {
	n := len(adj)
	e := &DefectiveSplitEstimator{
		adj:    adj,
		deg:    make([]int, n),
		active: make([]bool, n),
		label:  make([]int, n),
		same:   make([]int, n),
		red:    make([]int, n),
		undec:  make([]int, n),
		eps:    eps,
		t:      2 * eps,
	}
	for v := range adj {
		e.deg[v] = len(adj[v])
		e.undec[v] = len(adj[v])
		e.label[v] = -1
		e.active[v] = len(adj[v]) >= minDeg
		e.cost += e.term(v)
	}
	return e
}

// termFixed is the MGF bound for a node whose own label is fixed: it has
// `same` matching fixed neighbors and `undec` undecided ones (each matching
// with probability 1/2).
func (e *DefectiveSplitEstimator) termFixed(v, same, undec int) float64 {
	hi := (0.5 + e.eps) * float64(e.deg[v])
	return math.Exp(e.t*(float64(same)-hi)) * math.Pow((1+math.Exp(e.t))/2, float64(undec))
}

// term is the current potential contribution of node v.
func (e *DefectiveSplitEstimator) term(v int) float64 {
	if !e.active[v] {
		return 0
	}
	if e.label[v] >= 0 {
		return e.termFixed(v, e.same[v], e.undec[v])
	}
	// Own label undecided: average over red and blue.
	fixed := e.deg[v] - e.undec[v]
	sameIfRed := e.red[v]
	sameIfBlue := fixed - e.red[v]
	return (e.termFixed(v, sameIfRed, e.undec[v]) + e.termFixed(v, sameIfBlue, e.undec[v])) / 2
}

// Vars implements Estimator.
func (e *DefectiveSplitEstimator) Vars() int { return len(e.adj) }

// Labels implements Estimator.
func (e *DefectiveSplitEstimator) Labels() int { return 2 }

// Cost implements Estimator.
func (e *DefectiveSplitEstimator) Cost() float64 { return e.cost }

// CostIf implements Estimator.
func (e *DefectiveSplitEstimator) CostIf(v, x int) float64 {
	undo := e.apply(v, x)
	c := e.cost
	undo()
	return c
}

// Fix implements Estimator.
func (e *DefectiveSplitEstimator) Fix(v, x int) { e.apply(v, x) }

func (e *DefectiveSplitEstimator) apply(v, x int) func() {
	type snap struct {
		v         int
		same, red int
		undec     int
		label     int
	}
	touched := make([]snap, 0, len(e.adj[v])+1)
	prevCost := e.cost
	record := func(u int) {
		touched = append(touched, snap{v: u, same: e.same[u], red: e.red[u], undec: e.undec[u], label: e.label[u]})
	}
	record(v)
	e.cost -= e.term(v)
	e.label[v] = x
	// same[v] resolves from the fixed-neighbor counts.
	fixed := e.deg[v] - e.undec[v]
	if x == Red {
		e.same[v] = e.red[v]
	} else {
		e.same[v] = fixed - e.red[v]
	}
	e.cost += e.term(v)
	for _, ui := range e.adj[v] {
		u := int(ui)
		record(u)
		e.cost -= e.term(u)
		e.undec[u]--
		if x == Red {
			e.red[u]++
		}
		if e.label[u] == x {
			e.same[u]++
		}
		e.cost += e.term(u)
	}
	return func() {
		for i := len(touched) - 1; i >= 0; i-- {
			s := touched[i]
			e.same[s.v] = s.same
			e.red[s.v] = s.red
			e.undec[s.v] = s.undec
			e.label[s.v] = s.label
		}
		e.cost = prevCost
	}
}
