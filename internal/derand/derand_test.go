package derand

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/prob"
)

// varToCons extracts the variable→constraint adjacency from a bipartite
// instance (variables = V side, constraints = U side).
func varToCons(b *graph.Bipartite) ([][]int32, []int) {
	vtc := make([][]int32, b.NV())
	for v := range vtc {
		vtc[v] = b.NbrV(v)
	}
	degs := make([]int, b.NU())
	for u := range degs {
		degs[u] = b.DegU(u)
	}
	return vtc, degs
}

func TestWeakSplitGreedySolves(t *testing.T) {
	// 60 constraints of degree 16 over 80 variables; n = 140 so
	// δ = 16 ≥ 2·log2(140) ≈ 14.3 and the initial potential is < 1.
	rng := prob.NewSource(1).Rand()
	b, err := graph.RandomBipartiteLeftRegular(60, 80, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	vtc, degs := varToCons(b)
	est := NewWeakSplitEstimator(vtc, degs)
	order := make([]int, b.NV())
	for i := range order {
		order[i] = i
	}
	labels, err := Greedy(est, order)
	if err != nil {
		t.Fatal(err)
	}
	if est.Violations() != 0 {
		t.Fatalf("%d constraints unsatisfied after derandomization", est.Violations())
	}
	// Independent verification against the actual graph.
	for u := 0; u < b.NU(); u++ {
		var red, blue bool
		for _, v := range b.NbrU(u) {
			if labels[v] == Red {
				red = true
			} else {
				blue = true
			}
		}
		if !red || !blue {
			t.Fatalf("constraint %d monochromatic", u)
		}
	}
}

func TestWeakSplitPotentialMonotone(t *testing.T) {
	rng := prob.NewSource(2).Rand()
	b, err := graph.RandomBipartiteLeftRegular(30, 50, 14, rng)
	if err != nil {
		t.Fatal(err)
	}
	vtc, degs := varToCons(b)
	est := NewWeakSplitEstimator(vtc, degs)
	prev := est.Cost()
	for v := 0; v < b.NV(); v++ {
		// Greedy choice never increases the potential.
		c0, c1 := est.CostIf(v, Red), est.CostIf(v, Blue)
		x := Red
		if c1 < c0 {
			x = Blue
		}
		est.Fix(v, x)
		if est.Cost() > prev+1e-9 {
			t.Fatalf("potential increased at step %d: %v -> %v", v, prev, est.Cost())
		}
		prev = est.Cost()
	}
}

func TestWeakSplitCostIfMatchesFix(t *testing.T) {
	rng := prob.NewSource(3).Rand()
	b, err := graph.RandomBipartiteLeftRegular(20, 30, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	vtc, degs := varToCons(b)
	est := NewWeakSplitEstimator(vtc, degs)
	for v := 0; v < 10; v++ {
		want := est.CostIf(v, Blue)
		est.Fix(v, Blue)
		if math.Abs(est.Cost()-want) > 1e-9 {
			t.Fatalf("CostIf/Fix mismatch at %d: %v vs %v", v, want, est.Cost())
		}
	}
}

func TestGreedyPreconditionRejected(t *testing.T) {
	// Degree-2 constraints: potential 2·2^{-2}·|U| ≥ 1 for |U| ≥ 2.
	b, err := graph.BipartiteFromEdges(2, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	vtc, degs := varToCons(b)
	est := NewWeakSplitEstimator(vtc, degs)
	if _, err := Greedy(est, []int{0, 1}); err == nil {
		t.Fatal("expected precondition error for tiny degrees")
	}
}

func TestGreedyOrderValidation(t *testing.T) {
	b, _ := graph.BipartiteFromEdges(1, 3, [][2]int{{0, 0}, {0, 1}, {0, 2}})
	vtc, degs := varToCons(b)
	if _, err := Greedy(NewWeakSplitEstimator(vtc, degs), []int{0, 1}); err == nil {
		t.Error("short order should error")
	}
	if _, err := Greedy(NewWeakSplitEstimator(vtc, degs), []int{0, 1, 1}); err == nil {
		t.Error("duplicate in order should error")
	}
}

func TestMulticolorCoverGreedy(t *testing.T) {
	// With C = 8 colors and degree 64 ≥ C·ln(C·|U|) ≈ 8·ln(320) ≈ 46,
	// the initial potential Σ C(1-1/C)^d is < 1.
	rng := prob.NewSource(4).Rand()
	b, err := graph.RandomBipartiteLeftRegular(40, 120, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	vtc, degs := varToCons(b)
	const colors = 8
	est := NewMulticolorCoverEstimator(vtc, degs, colors)
	order := make([]int, b.NV())
	for i := range order {
		order[i] = i
	}
	labels, err := Greedy(est, order)
	if err != nil {
		t.Fatal(err)
	}
	// Every constraint must see all C colors.
	for u := 0; u < b.NU(); u++ {
		seen := make(map[int]bool)
		for _, v := range b.NbrU(u) {
			seen[labels[v]] = true
		}
		if len(seen) != colors {
			t.Fatalf("constraint %d sees %d of %d colors", u, len(seen), colors)
		}
		if est.SeenCount(u) != colors {
			t.Fatalf("estimator bookkeeping wrong for %d", u)
		}
	}
}

func TestMulticolorCostIfMatchesFix(t *testing.T) {
	rng := prob.NewSource(5).Rand()
	b, err := graph.RandomBipartiteLeftRegular(10, 40, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	vtc, degs := varToCons(b)
	est := NewMulticolorCoverEstimator(vtc, degs, 4)
	for v := 0; v < 10; v++ {
		x := v % 4
		want := est.CostIf(v, x)
		est.Fix(v, x)
		if math.Abs(est.Cost()-want) > 1e-9 {
			t.Fatalf("CostIf/Fix mismatch at %d", v)
		}
	}
}

func TestCLambdaGreedy(t *testing.T) {
	// C = 4 colors, λ = 0.5: every constraint of degree d must end with at
	// most ⌈d/2⌉ neighbors of each color. Degrees 40 with 30 constraints
	// give a comfortably small initial potential.
	rng := prob.NewSource(6).Rand()
	b, err := graph.RandomBipartiteLeftRegular(30, 100, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	vtc, degs := varToCons(b)
	const colors = 4
	const lambda = 0.5
	est := NewCLambdaEstimator(vtc, degs, colors, lambda)
	if est.Cost() >= 1 {
		t.Fatalf("initial potential %v >= 1; test parameters too weak", est.Cost())
	}
	order := make([]int, b.NV())
	for i := range order {
		order[i] = i
	}
	labels, err := Greedy(est, order)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < b.NU(); u++ {
		loads := make([]int, colors)
		for _, v := range b.NbrU(u) {
			loads[labels[v]]++
		}
		k := est.Threshold(u)
		for x, load := range loads {
			if load > k {
				t.Fatalf("constraint %d color %d load %d > ⌈λd⌉ = %d", u, x, load, k)
			}
		}
		if est.MaxLoad(u) > k {
			t.Fatalf("estimator bookkeeping wrong for %d", u)
		}
	}
}

func TestCLambdaCostIfMatchesFix(t *testing.T) {
	rng := prob.NewSource(7).Rand()
	b, err := graph.RandomBipartiteLeftRegular(10, 30, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	vtc, degs := varToCons(b)
	est := NewCLambdaEstimator(vtc, degs, 3, 0.6)
	for v := 0; v < 10; v++ {
		x := v % 3
		want := est.CostIf(v, x)
		est.Fix(v, x)
		if math.Abs(est.Cost()-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("CostIf/Fix mismatch at %d: %v vs %v", v, want, est.Cost())
		}
	}
}

func TestUniformSplitGreedy(t *testing.T) {
	// 64-regular graph, ε = 0.25: constraints want red-degree within
	// [16, 48]; MGF potential is ≪ 1 for these parameters.
	g, err := graph.RandomRegular(120, 64, prob.NewSource(8).Rand())
	if err != nil {
		t.Fatal(err)
	}
	vtc := make([][]int32, g.N())
	degs := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		vtc[v] = g.Neighbors(v)
		degs[v] = g.Deg(v)
	}
	eps := 0.25
	est := NewUniformSplitEstimator(vtc, degs, eps)
	if est.Cost() >= 1 {
		t.Fatalf("initial potential %v >= 1", est.Cost())
	}
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	labels, err := Greedy(est, order)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		red := 0
		for _, w := range g.Neighbors(v) {
			if labels[w] == Red {
				red++
			}
		}
		d := float64(g.Deg(v))
		if float64(red) > (0.5+eps)*d || float64(red) < (0.5-eps)*d {
			t.Fatalf("node %d red-degree %d outside [%v,%v]", v, red, (0.5-eps)*d, (0.5+eps)*d)
		}
	}
}

func TestUniformSplitCostIfMatchesFix(t *testing.T) {
	g := graph.Complete(20)
	vtc := make([][]int32, g.N())
	degs := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		vtc[v] = g.Neighbors(v)
		degs[v] = g.Deg(v)
	}
	est := NewUniformSplitEstimator(vtc, degs, 0.3)
	for v := 0; v < 10; v++ {
		x := v % 2
		want := est.CostIf(v, x)
		est.Fix(v, x)
		if math.Abs(est.Cost()-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("CostIf/Fix mismatch at %d", v)
		}
	}
}

func TestEstimatorPotentialsAreMartingales(t *testing.T) {
	// Property: for every estimator, the average of CostIf over all labels
	// must not exceed the current cost (pessimistic estimator property).
	f := func(seed uint64) bool {
		rng := prob.NewSource(seed).Rand()
		b, err := graph.RandomBipartiteLeftRegular(15, 30, 12, rng)
		if err != nil {
			return false
		}
		vtc, degs := varToCons(b)
		ests := []Estimator{
			NewWeakSplitEstimator(vtc, degs),
			NewMulticolorCoverEstimator(vtc, degs, 3),
			NewCLambdaEstimator(vtc, degs, 3, 0.7),
		}
		for _, est := range ests {
			for v := 0; v < 5; v++ {
				var avg float64
				for x := 0; x < est.Labels(); x++ {
					avg += est.CostIf(v, x)
				}
				avg /= float64(est.Labels())
				if avg > est.Cost()+1e-9*math.Max(1, est.Cost()) {
					return false
				}
				est.Fix(v, int(seed%uint64(est.Labels())))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDefectiveSplitEstimator(t *testing.T) {
	g, err := graph.RandomRegular(150, 96, prob.NewSource(9).Rand())
	if err != nil {
		t.Fatal(err)
	}
	adj := make([][]int32, g.N())
	for v := range adj {
		adj[v] = g.Neighbors(v)
	}
	est := NewDefectiveSplitEstimator(adj, 50, 0.3)
	if est.Cost() >= 1 {
		t.Fatalf("initial potential %v >= 1 at degree 96, ε=0.3", est.Cost())
	}
	// CostIf must equal the post-Fix cost exactly (apply/rollback).
	for v := 0; v < 20; v++ {
		x := v % 2
		want := est.CostIf(v, x)
		est.Fix(v, x)
		if got := est.Cost(); got != want {
			t.Fatalf("CostIf/Fix mismatch at %d: %v vs %v", v, want, got)
		}
	}
	if est.Vars() != g.N() || est.Labels() != 2 {
		t.Error("dimensions wrong")
	}
}

func TestDefectiveSplitEstimatorMartingale(t *testing.T) {
	g, err := graph.RandomRegular(80, 40, prob.NewSource(10).Rand())
	if err != nil {
		t.Fatal(err)
	}
	adj := make([][]int32, g.N())
	for v := range adj {
		adj[v] = g.Neighbors(v)
	}
	est := NewDefectiveSplitEstimator(adj, 10, 0.3)
	for v := 0; v < 30; v++ {
		avg := (est.CostIf(v, Red) + est.CostIf(v, Blue)) / 2
		if cur := est.Cost(); avg > cur*(1+1e-9)+1e-12 {
			t.Fatalf("not a supermartingale at %d: avg %v > cur %v", v, avg, cur)
		}
		if est.CostIf(v, Red) <= est.CostIf(v, Blue) {
			est.Fix(v, Red)
		} else {
			est.Fix(v, Blue)
		}
	}
	// Full greedy must succeed and leave every constrained node within
	// bound (cross-checked by the reduction package's verifier tests).
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	est2 := NewDefectiveSplitEstimator(adj, 10, 0.3)
	if _, err := Greedy(est2, order); err != nil {
		t.Fatal(err)
	}
}
