package service

import (
	"context"
	"testing"
	"time"
)

// BenchmarkService measures end-to-end job throughput through the queue,
// worker pool and instance cache: b.N small sweeps submitted as fast as the
// bounded queue admits them, then drained. Reports jobs/sec, the cache hit
// rate and the p99 queue wait alongside the usual ns/op.
func BenchmarkService(b *testing.B) {
	s := New(Options{QueueCap: 256, Workers: 4})
	ids := make([]string, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		spec := smallSpec(uint64(i % 16))
		for {
			st, err := s.Submit(spec)
			if err == nil {
				ids = append(ids, st.ID)
				break
			}
			// Queue full: yield to the workers and retry, like a client would.
			time.Sleep(time.Millisecond)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start)
	b.StopTimer()

	for _, id := range ids {
		st, ok := s.Get(id)
		if !ok || st.State != StateDone {
			b.Fatalf("job %s: state %s (err %q)", id, st.State, st.Error)
		}
	}
	stats := s.Stats()
	b.ReportMetric(float64(len(ids))/elapsed.Seconds(), "jobs/sec")
	if total := stats.CacheHits + stats.CacheMisses; total > 0 {
		b.ReportMetric(float64(stats.CacheHits)/float64(total), "cache-hit-rate")
	}
	b.ReportMetric(float64(stats.QueueWaitP99MS), "queue-wait-p99-ms")
}
