package service

import (
	"sync/atomic"

	"repro/internal/local"
)

// countingEngine sums the LOCAL work (rounds, delivered messages) across
// every run executed through it — the per-job resource ledger. It changes
// no observable behavior: the wrapped engine's stats and errors pass
// through untouched, including partial stats from a cancelled run, so the
// ledger counts work actually performed.
type countingEngine struct {
	e      local.Engine
	rounds atomic.Int64
	msgs   atomic.Int64
}

// Run implements local.Engine.
func (ce *countingEngine) Run(t *local.Topology, f local.Factory, opts local.Options) (local.Stats, error) {
	stats, err := ce.e.Run(t, f, opts)
	ce.rounds.Add(int64(stats.Rounds))
	ce.msgs.Add(stats.Messages)
	return stats, err
}
