// Package service runs weak-splitting sweeps as jobs behind a bounded
// queue: the execution layer of the wsplitd HTTP daemon. A job is one
// SweepSpec — an instance generator, a set of algorithms, and a seed range —
// fanned over the experiment harness's trial grid under the run-control
// layer, so every job is cancellable at LOCAL round boundaries, panic
// isolated, and bounded by a per-trial deadline.
//
// The server owns three resources the HTTP layer must not: a FIFO job queue
// of fixed capacity that rejects loudly when full (the 429 surface), a
// worker pool sized by GOMAXPROCS, and an LRU topology cache keyed by
// (generator, params, seed) with singleflight build dedup so concurrent
// jobs over the same instance share one built CSR.
package service

import (
	"fmt"
	"time"

	"repro/internal/experiments"
)

// Limits on a single sweep, protecting the shared server from one
// pathological spec rather than from load (the queue handles load).
const (
	MaxNodes  = 1 << 21 // per side
	MaxTrials = 1 << 12
	MaxAlgos  = 16
)

// SweepSpec is one job's request: build instances from the named generator
// and run every (algorithm, seed) trial of the sweep.
type SweepSpec struct {
	// Gen names the instance generator (see experiments.GeneratorNames).
	Gen string `json:"gen"`
	// NU, NV, D size the generated instance (constraints, variables, left
	// degree); generators that ignore a knob accept 0.
	NU int `json:"nu"`
	NV int `json:"nv"`
	D  int `json:"d"`
	// Algos lists the algorithms to run per seed (experiments.AlgoNames).
	Algos []string `json:"algos"`
	// Seed is the first seed; Trials sweeps seeds Seed..Seed+Trials-1
	// (Trials 0 means 1).
	Seed   uint64 `json:"seed"`
	Trials int    `json:"trials"`
	// TrialTimeoutMS bounds each trial attempt's wall time in milliseconds
	// (0 = none); an attempt over budget is retried per Retries.
	TrialTimeoutMS int64 `json:"trial_timeout_ms,omitempty"`
	// Retries re-runs transient trial failures (deadline expiry, node-program
	// panic) up to this many extra attempts.
	Retries int `json:"retries,omitempty"`
}

// Validate rejects a spec the server must not queue: unknown generator or
// algorithm names, and sizes beyond the single-job limits. It normalizes
// nothing — the spec echoed back in job status is the one submitted.
func (s *SweepSpec) Validate() error {
	if !experiments.KnownGenerator(s.Gen) {
		return fmt.Errorf("service: unknown generator %q (have %v)", s.Gen, experiments.GeneratorNames())
	}
	if len(s.Algos) == 0 {
		return fmt.Errorf("service: spec names no algorithms")
	}
	if len(s.Algos) > MaxAlgos {
		return fmt.Errorf("service: %d algorithms exceeds the per-job limit %d", len(s.Algos), MaxAlgos)
	}
	for _, a := range s.Algos {
		if !experiments.KnownAlgo(a) {
			return fmt.Errorf("service: unknown algorithm %q (have %v)", a, experiments.AlgoNames())
		}
	}
	if s.NU < 0 || s.NV < 0 || s.D < 0 {
		return fmt.Errorf("service: negative instance size (nu=%d nv=%d d=%d)", s.NU, s.NV, s.D)
	}
	if s.NU > MaxNodes || s.NV > MaxNodes {
		return fmt.Errorf("service: instance side %d exceeds the per-job limit %d", max(s.NU, s.NV), MaxNodes)
	}
	if s.Trials < 0 || s.Trials > MaxTrials {
		return fmt.Errorf("service: %d trials outside [0, %d]", s.Trials, MaxTrials)
	}
	if s.TrialTimeoutMS < 0 {
		return fmt.Errorf("service: negative trial timeout %dms", s.TrialTimeoutMS)
	}
	if s.Retries < 0 {
		return fmt.Errorf("service: negative retry count %d", s.Retries)
	}
	return nil
}

// trials returns the effective trial count (a zero spec means one trial).
func (s *SweepSpec) trials() int {
	if s.Trials <= 0 {
		return 1
	}
	return s.Trials
}

// State is a job's lifecycle position. Terminal states are StateDone,
// StateFailed and StateCancelled.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Accounting is a job's resource ledger.
type Accounting struct {
	// QueueWaitMS is the time between submission and a worker picking the
	// job up; WallMS the execution time after that.
	QueueWaitMS int64 `json:"queue_wait_ms"`
	WallMS      int64 `json:"wall_ms"`
	// Rounds and Messages sum the LOCAL simulation work over every engine
	// run the job's trials performed (retries included).
	Rounds   int64 `json:"rounds"`
	Messages int64 `json:"messages"`
}

// JobStatus is the externally visible snapshot of one job — what
// GET /v1/sweeps/{id} serializes.
type JobStatus struct {
	ID    string    `json:"id"`
	State State     `json:"state"`
	Spec  SweepSpec `json:"spec"`
	// Error is set for failed (and some cancelled) jobs.
	Error string `json:"error,omitempty"`
	// Trials carries the per-cell results once the job is terminal.
	Trials     []experiments.TrialResult `json:"trials,omitempty"`
	Accounting Accounting                `json:"accounting"`
}

// durMS converts a measured duration to the ledger's milliseconds.
func durMS(d time.Duration) int64 { return d.Milliseconds() }
