package service

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// smallSpec is a sweep that finishes in milliseconds.
func smallSpec(seed uint64) SweepSpec {
	return SweepSpec{Gen: "star", D: 16, Algos: []string{"trivial"}, Seed: seed, Trials: 2}
}

// longSpec is a sweep that runs long enough to observe mid-flight (and is
// ended by Cancel/Drain, never waited out).
func longSpec() SweepSpec {
	return SweepSpec{Gen: "leftregular", NU: 200, NV: 800, D: 16, Algos: []string{"det"}, Seed: 1, Trials: MaxTrials}
}

func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.Get(id)
	t.Fatalf("job %s stuck in state %s", id, st.State)
	return JobStatus{}
}

func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, _ := s.Get(id)
		if st.State == StateRunning {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s finished (%s) before it was observed running", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

// waitNoExtraGoroutines asserts the goroutine count returns to the baseline
// (draining deferred runtime bookkeeping with retries).
func waitNoExtraGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

func TestSubmitRunsJob(t *testing.T) {
	s := New(Options{QueueCap: 4, Workers: 2})
	defer s.Close()
	st, err := s.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("fresh job state = %s, want queued", st.State)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job state = %s (err %q), want done", fin.State, fin.Error)
	}
	if len(fin.Trials) != 2 {
		t.Fatalf("got %d trials, want 2", len(fin.Trials))
	}
	for _, tr := range fin.Trials {
		if tr.Err != "" || !tr.Valid {
			t.Fatalf("trial %+v not valid", tr)
		}
	}
	if fin.Accounting.Rounds <= 0 || fin.Accounting.WallMS < 0 {
		t.Fatalf("accounting not populated: %+v", fin.Accounting)
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	s := New(Options{QueueCap: 1, Workers: 1})
	defer s.Close()
	for _, spec := range []SweepSpec{
		{Gen: "nope", Algos: []string{"det"}},
		{Gen: "star", D: 8},
		{Gen: "star", D: 8, Algos: []string{"nope"}},
		{Gen: "leftregular", NU: MaxNodes + 1, NV: 4, D: 2, Algos: []string{"det"}},
		{Gen: "star", D: 8, Algos: []string{"trivial"}, Trials: MaxTrials + 1},
		{Gen: "star", D: 8, Algos: []string{"trivial"}, TrialTimeoutMS: -1},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %+v was accepted", spec)
		}
	}
	if st := s.Stats(); st.Submitted != 0 {
		t.Fatalf("invalid specs counted as submitted: %+v", st)
	}
}

// TestQueueFullExactRejection pins the acceptance criterion: with capacity
// Q and the lone worker pinned by a running job, submitting 4Q more jobs
// accepts exactly Q and rejects the rest with the retryable ErrQueueFull.
func TestQueueFullExactRejection(t *testing.T) {
	const q = 8
	s := New(Options{QueueCap: q, Workers: 1})
	defer s.Close()

	blocker, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, blocker.ID)

	accepted, rejected := 0, 0
	for i := 0; i < 4*q; i++ {
		_, err := s.Submit(smallSpec(uint64(i)))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrQueueFull):
			rejected++
		default:
			t.Fatalf("submission %d: unexpected error %v", i, err)
		}
	}
	if accepted != q || rejected != 3*q {
		t.Fatalf("accepted %d rejected %d, want exactly %d accepted and %d rejected", accepted, rejected, q, 3*q)
	}
	st := s.Stats()
	if st.Rejected != 3*q || st.QueueDepth != q {
		t.Fatalf("stats disagree: %+v", st)
	}
	if _, ok := s.Cancel(blocker.ID); !ok {
		t.Fatal("cancel of running blocker failed")
	}
	fin := waitTerminal(t, s, blocker.ID)
	if fin.State != StateCancelled {
		t.Fatalf("blocker state = %s, want cancelled", fin.State)
	}
}

func TestCancelQueuedAndUnknown(t *testing.T) {
	s := New(Options{QueueCap: 4, Workers: 1})
	defer s.Close()
	blocker, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, blocker.ID)
	queued, err := s.Submit(smallSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cancel(queued.ID); !ok {
		t.Fatal("cancel of queued job failed")
	}
	if _, ok := s.Cancel("sweep-999"); ok {
		t.Fatal("cancel of unknown job succeeded")
	}
	if _, ok := s.Cancel(blocker.ID); !ok {
		t.Fatal("cancel of blocker failed")
	}
	fin := waitTerminal(t, s, queued.ID)
	if fin.State != StateCancelled {
		t.Fatalf("queued-then-cancelled job state = %s, want cancelled", fin.State)
	}
	if len(fin.Trials) != 0 {
		t.Fatalf("cancelled-before-start job ran %d trials", len(fin.Trials))
	}
	waitTerminal(t, s, blocker.ID)
}

// TestDrainGraceful pins the clean path: Drain with headroom finishes every
// job, later submissions are refused, and no worker goroutine survives.
func TestDrainGraceful(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Options{QueueCap: 16, Workers: 2})
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		st, err := s.Submit(smallSpec(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	for _, id := range ids {
		st, _ := s.Get(id)
		if st.State != StateDone {
			t.Fatalf("job %s state = %s after drain, want done", id, st.State)
		}
	}
	if _, err := s.Submit(smallSpec(99)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
	waitNoExtraGoroutines(t, base)
}

// TestDrainDeadlineCancels pins the forced path: an expired drain deadline
// cancels the running and queued jobs, every job still reaches a terminal
// state, and the workers exit.
func TestDrainDeadlineCancels(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Options{QueueCap: 8, Workers: 1})
	blocker, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, blocker.ID)
	queued, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("forced drain reported success")
	}
	for _, id := range []string{blocker.ID, queued.ID} {
		st, _ := s.Get(id)
		if st.State != StateCancelled {
			t.Fatalf("job %s state = %s after forced drain, want cancelled", id, st.State)
		}
	}
	waitNoExtraGoroutines(t, base)
}

// TestCacheSharedAcrossJobs pins the instance cache: two jobs sweeping the
// same fixed instance build it once; a different key misses again.
func TestCacheSharedAcrossJobs(t *testing.T) {
	s := New(Options{QueueCap: 8, Workers: 1})
	defer s.Close()
	a, err := s.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, a.ID)
	b, err := s.Submit(smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, b.ID)
	st := s.Stats()
	// star is seed-independent: both jobs (2 trials each) share one entry.
	if st.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1 (second job should hit)", st.CacheMisses)
	}
	if st.CacheHits != 3 {
		t.Fatalf("cache hits = %d, want 3", st.CacheHits)
	}
	other := smallSpec(1)
	other.D = 24
	c, err := s.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, c.ID)
	if st := s.Stats(); st.CacheMisses != 2 {
		t.Fatalf("cache misses = %d after a new key, want 2", st.CacheMisses)
	}
}

// TestJobTimeoutAndRetry pins the spec's per-trial deadline: an impossible
// budget fails the job with a deadline error after the configured retries.
func TestJobTimeoutAndRetry(t *testing.T) {
	s := New(Options{QueueCap: 4, Workers: 1})
	defer s.Close()
	// trivial's runtime is engine-dominated and a 50k-node topology cannot
	// even be set up inside 1ms, so the round-boundary check trips reliably.
	spec := SweepSpec{Gen: "leftregular", NU: 10_000, NV: 40_000, D: 32,
		Algos: []string{"trivial"}, Seed: 1, Trials: 1, TrialTimeoutMS: 1, Retries: 1}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != StateFailed {
		t.Fatalf("job state = %s, want failed (deadline)", fin.State)
	}
	if len(fin.Trials) != 1 || fin.Trials[0].Retried != 1 {
		t.Fatalf("trial retry accounting wrong: %+v", fin.Trials)
	}
}

// TestLoadSmoke is the CI load test: hundreds of small sweeps plus one
// 100k-node whale through a small queue/pool, asserting no job is starved,
// the whale completes, and a graceful drain leaves no goroutine behind.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke skipped in -short")
	}
	base := runtime.NumGoroutine()
	s := New(Options{QueueCap: 512, Workers: 4})

	// D=32 keeps the zero-round splitter's per-attempt failure probability
	// (~nu·2^(1-d)) negligible, so the whale reliably completes.
	whale := SweepSpec{Gen: "leftregular", NU: 20_000, NV: 80_000, D: 32,
		Algos: []string{"trivial"}, Seed: 42, Trials: 1}
	wst, err := s.Submit(whale)
	if err != nil {
		t.Fatal(err)
	}

	const small = 300
	ids := make([]string, 0, small)
	for i := 0; i < small; i++ {
		st, err := s.Submit(smallSpec(uint64(i % 7)))
		if err != nil {
			// The queue is deliberately larger than the burst; rejection
			// here means the capacity accounting is broken.
			t.Fatalf("small sweep %d rejected: %v", i, err)
		}
		ids = append(ids, st.ID)
	}

	for _, id := range ids {
		if st := waitTerminal(t, s, id); st.State != StateDone {
			t.Fatalf("small job %s: state %s (err %q)", id, st.State, st.Error)
		}
	}
	if st := waitTerminal(t, s, wst.ID); st.State != StateDone {
		t.Fatalf("whale: state %s (err %q)", st.State, st.Error)
	}

	stats := s.Stats()
	if stats.Done != small+1 {
		t.Fatalf("done = %d, want %d", stats.Done, small+1)
	}
	if stats.CacheHits == 0 {
		t.Fatalf("load run never hit the cache: %+v", stats)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after load: %v", err)
	}
	waitNoExtraGoroutines(t, base)
}
