package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// ErrQueueFull is Submit's backpressure signal: the bounded queue has no
// slot. The HTTP layer maps it to 429 with a retryable hint — the client
// should back off and resubmit, nothing is wrong with the spec.
var ErrQueueFull = errors.New("service: job queue full, retry later")

// ErrDraining rejects submissions during graceful shutdown.
var ErrDraining = errors.New("service: shutting down, not accepting jobs")

// Options tunes a Server.
type Options struct {
	// QueueCap bounds the number of queued (not yet running) jobs; <= 0
	// means 64. Submissions beyond it fail with ErrQueueFull.
	QueueCap int
	// Workers sizes the job worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// CacheCap bounds the instance cache entries; <= 0 means 64.
	CacheCap int
}

// Server owns the job queue, the worker pool and the instance cache. Create
// one with New, stop it with Drain (graceful) or Close (immediate).
type Server struct {
	queueCap int
	workers  int

	ctx    context.Context // parent of every job context; Close/Drain-expiry cancels it
	cancel context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup
	cache *instanceCache

	mu       sync.Mutex
	draining bool
	nextID   int
	jobs     map[string]*job

	// Counters and a bounded queue-wait sample ring for Stats.
	submitted, rejected int64
	done, failed        int64
	cancelled           int64
	waits               []time.Duration
	waitPos             int
}

// job is the internal job record; all mutable fields are guarded by the
// server mutex.
type job struct {
	id     string
	spec   SweepSpec
	state  State
	err    string
	trials []experiments.TrialResult
	acct   Accounting

	submitted time.Time
	cancel    context.CancelFunc
	ctx       context.Context
}

const waitSamples = 4096

// New starts a server: opts.Workers goroutines consuming the job queue.
func New(opts Options) *Server {
	if opts.QueueCap <= 0 {
		opts.QueueCap = 64
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		queueCap: opts.QueueCap,
		workers:  opts.Workers,
		ctx:      ctx,
		cancel:   cancel,
		queue:    make(chan *job, opts.QueueCap),
		cache:    newInstanceCache(opts.CacheCap),
		jobs:     make(map[string]*job),
		waits:    make([]time.Duration, 0, waitSamples),
	}
	for w := 0; w < s.workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates and enqueues a sweep. It never blocks: a full queue
// fails fast with ErrQueueFull (retryable), a draining server with
// ErrDraining, an invalid spec with the validation error.
func (s *Server) Submit(spec SweepSpec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected++
		return JobStatus{}, ErrDraining
	}
	s.nextID++
	jctx, jcancel := context.WithCancel(s.ctx)
	j := &job{
		id:        fmt.Sprintf("sweep-%d", s.nextID),
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		ctx:       jctx,
		cancel:    jcancel,
	}
	select {
	case s.queue <- j:
	default:
		s.nextID--
		s.rejected++
		jcancel()
		return JobStatus{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.submitted++
	return j.statusLocked(), nil
}

// Get returns the status snapshot of a job.
func (s *Server) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.statusLocked(), true
}

// Cancel requests cancellation of a queued or running job: queued jobs
// retire without running a trial, running jobs stop at their next LOCAL
// round boundary. Cancelling a terminal job is a no-op. The returned status
// is the snapshot at call time — poll Get for the terminal state.
func (s *Server) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	if !j.state.Terminal() {
		j.cancel()
	}
	return j.statusLocked(), true
}

// List returns a status snapshot of every job, newest submission first.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.statusLocked())
	}
	// IDs are "sweep-N": a longer ID is a larger N, so (length, lexical)
	// descending is newest-first without parsing.
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i].ID, out[k].ID
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return a > b
	})
	return out
}

// Stats is the server-level ledger the /readyz and benchmark surfaces read.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// QueueDepth is the current number of queued-not-running jobs.
	QueueDepth  int   `json:"queue_depth"`
	QueueCap    int   `json:"queue_cap"`
	Workers     int   `json:"workers"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheSize   int   `json:"cache_size"`
	// Queue-wait percentiles over a bounded recent-sample window.
	QueueWaitP50MS int64 `json:"queue_wait_p50_ms"`
	QueueWaitP99MS int64 `json:"queue_wait_p99_ms"`
	// Draining reports graceful shutdown in progress (readyz turns 503).
	Draining bool `json:"draining"`
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	hits, misses, size := s.cache.stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Submitted: s.submitted, Rejected: s.rejected,
		Done: s.done, Failed: s.failed, Cancelled: s.cancelled,
		QueueDepth: len(s.queue), QueueCap: s.queueCap, Workers: s.workers,
		CacheHits: hits, CacheMisses: misses, CacheSize: size,
		Draining: s.draining,
	}
	if n := len(s.waits); n > 0 {
		sorted := make([]time.Duration, n)
		copy(sorted, s.waits)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		st.QueueWaitP50MS = durMS(sorted[n/2])
		st.QueueWaitP99MS = durMS(sorted[min(n-1, n*99/100)])
	}
	return st
}

// Drain stops accepting jobs and waits for the queue and the running jobs
// to finish. If ctx expires first, every remaining job is cancelled (they
// observe it at round boundaries and retire as cancelled) and Drain still
// waits for the workers to exit, so after it returns no worker goroutine is
// left. Safe to call once; Close after Drain is a no-op.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-finished
		return fmt.Errorf("service: drain deadline expired, jobs cancelled: %w", ctx.Err())
	}
}

// Close cancels everything immediately and waits for the workers: Drain
// with an already-expired deadline.
func (s *Server) Close() {
	s.cancel()
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	//lint:checked Close is the forced path; the drain error only reports what the caller asked for
	_ = s.Drain(expired)
}

// worker consumes jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job: per-seed cache-backed instance builds fanned
// through the experiment grid under the job's control context.
func (s *Server) runJob(j *job) {
	start := time.Now()
	wait := start.Sub(j.submitted)

	s.mu.Lock()
	if len(s.waits) < waitSamples {
		s.waits = append(s.waits, wait)
	} else {
		s.waits[s.waitPos] = wait
		s.waitPos = (s.waitPos + 1) % waitSamples
	}
	j.acct.QueueWaitMS = durMS(wait)
	cancelled := j.ctx.Err() != nil
	if !cancelled {
		j.state = StateRunning
	}
	s.mu.Unlock()

	var trials []experiments.TrialResult
	var rounds, msgs int64
	if !cancelled {
		trials, rounds, msgs = s.runSweep(j)
	}

	s.mu.Lock()
	j.trials = trials
	j.acct.WallMS = durMS(time.Since(start))
	j.acct.Rounds = rounds
	j.acct.Messages = msgs
	switch {
	case j.ctx.Err() != nil:
		j.state = StateCancelled
		j.err = local.ErrCancelled.Error()
		s.cancelled++
	case anyFailed(trials):
		j.state = StateFailed
		j.err = firstError(trials)
		s.failed++
	default:
		j.state = StateDone
		s.done++
	}
	s.mu.Unlock()
	j.cancel() // release the job context's resources
}

// runSweep fans the job's (algorithm, seed) cells through the trial grid,
// one grid per seed so each seed's instance comes out of the shared cache.
func (s *Server) runSweep(j *job) (trials []experiments.TrialResult, rounds, msgs int64) {
	spec := j.spec
	algos := make([]experiments.AlgoSpec, 0, len(spec.Algos))
	for _, name := range spec.Algos {
		as, ok := experiments.AlgoSpecFor(name)
		if !ok { // Validate checked already; defend anyway
			continue
		}
		algos = append(algos, as)
	}
	eng := &countingEngine{e: local.SequentialEngine{}}
	ctl := &local.RunControl{Ctx: j.ctx}
	for t := 0; t < spec.trials(); t++ {
		seed := spec.Seed + uint64(t)
		key := cacheKey(spec, seed)
		b, err := s.cache.get(key, s.cache.buildFor(spec, seed))
		grid := experiments.Grid{
			Graphs: []experiments.GraphSpec{{
				Name: spec.Gen,
				Build: func(*prob.Source) (*graph.Bipartite, error) {
					// The shared cached instance (normalized, read-only);
					// build failures surface per cell like any build error.
					return b, err
				},
				Fixed: true,
			}},
			Algos:        algos,
			Seeds:        []uint64{seed},
			Engine:       eng,
			Workers:      1,
			Control:      ctl,
			TrialTimeout: time.Duration(spec.TrialTimeoutMS) * time.Millisecond,
			Retries:      spec.Retries,
		}
		trials = append(trials, grid.Run()...)
		if j.ctx.Err() != nil {
			break
		}
	}
	return trials, eng.rounds.Load(), eng.msgs.Load()
}

func anyFailed(trials []experiments.TrialResult) bool {
	for _, tr := range trials {
		if tr.Err != "" || !tr.Valid {
			return true
		}
	}
	return false
}

func firstError(trials []experiments.TrialResult) string {
	for _, tr := range trials {
		if tr.Err != "" {
			return tr.Err
		}
		if !tr.Valid {
			return fmt.Sprintf("%s/%s/seed %d: invalid splitting", tr.Graph, tr.Algo, tr.Seed)
		}
	}
	return ""
}

// statusLocked snapshots the job; the server mutex must be held.
func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID:         j.id,
		State:      j.state,
		Spec:       j.spec,
		Error:      j.err,
		Accounting: j.acct,
	}
	if j.state.Terminal() {
		st.Trials = j.trials
	}
	return st
}
