package service

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/prob"
)

// instanceCache is the LRU instance cache: built, normalized bipartite CSRs
// keyed by (generator, params, seed), shared read-only by every job that
// sweeps the same instance. Builds are deduplicated singleflight-style —
// concurrent jobs missing on the same key wait for one build instead of
// racing their own — and failed builds are never cached, so a transient
// failure does not poison the key.
type instanceCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent; values are *cacheEntry
	m   map[string]*cacheEntry

	hits, misses int64
}

type cacheEntry struct {
	key  string
	elem *list.Element
	// ready is closed when the build finished; b/err are immutable after.
	ready chan struct{}
	b     *graph.Bipartite
	err   error
}

func newInstanceCache(capacity int) *instanceCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &instanceCache{cap: capacity, ll: list.New(), m: make(map[string]*cacheEntry)}
}

// cacheKey identifies one built instance. Seed-independent generators fold
// every seed onto one entry, which is what lets a whole multi-seed sweep —
// and every job after it — share a single CSR.
func cacheKey(spec SweepSpec, seed uint64) string {
	if experiments.FixedInstance(spec.Gen, "") {
		seed = 0
	}
	return fmt.Sprintf("%s/%d/%d/%d/%d", spec.Gen, spec.NU, spec.NV, spec.D, seed)
}

// get returns the cached instance for key, building it (once, even under
// concurrent misses) when absent. The returned instance is shared: callers
// must treat it as read-only — it is normalized before publication so no
// lazy CSR merge races the readers.
func (c *instanceCache) get(key string, build func() (*graph.Bipartite, error)) (*graph.Bipartite, error) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.hits++
		c.ll.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		// A failed build removed itself from the map before closing ready,
		// but a waiter that arrived earlier still observes the error here.
		return e.b, e.err
	}
	c.misses++
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.ll.PushFront(e)
	c.m[key] = e
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		ev := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.m, ev.key)
	}
	c.mu.Unlock()

	b, err := build()
	if err == nil {
		// Settle lazily-merged CSR state before other goroutines read it.
		b.Normalize()
	}
	e.b, e.err = b, err
	if err != nil {
		c.mu.Lock()
		// Only drop the entry if it is still ours — it may have been evicted
		// (and the key even rebuilt) while we were building.
		if cur, ok := c.m[key]; ok && cur == e {
			c.ll.Remove(e.elem)
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return b, err
}

// stats returns the hit/miss counters and current size.
func (c *instanceCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// buildFor returns the cache-backed builder for one (spec, seed) instance.
func (c *instanceCache) buildFor(spec SweepSpec, seed uint64) func() (*graph.Bipartite, error) {
	return func() (*graph.Bipartite, error) {
		return experiments.BuildInstance(spec.Gen, "", spec.NU, spec.NV, spec.D, prob.NewSource(seed))
	}
}
