package local

import "sync/atomic"

// Tiled (shard × round) execution for the packed bit planes.
//
// Once a run's active residue has shattered into small connected components
// — the normal end-game of the paper's shattering algorithms — streaming
// the whole plane once per round wastes the caches: each row is touched
// once and evicted before the next round returns to it. A tile is a group
// of connected components of the live subgraph whose combined weight
// (1+deg per node, proportional to its plane-row bytes) fits a per-worker
// cache budget. Because components are closed under the live adjacency,
// tiles exchange no messages, so one worker can legally run R rounds of
// its tile back-to-back — rows stay L2-resident across all R rounds — while
// another worker is rounds ahead on a different tile. If any single
// component overflows the budget, boundary traffic would dominate and the
// planner refuses: the block falls back to ordinary one-round execution.
//
// Everything observable is preserved: per-node round numbers, delivered
// message sets, Stats counters, and termination bookkeeping are identical
// to the untiled schedule because no information ever crosses a tile
// boundary. Tiling only runs when faults and run-control are absent (both
// need a global round barrier) and wholesale clearing is off (tiles imply
// a sparse residue, where per-row clears win anyway).

// bitTile is a [lo, hi) range of the component-reordered active slice.
type bitTile struct {
	lo, hi int
}

// bitTiler plans tiles for a block of rounds. All scratch is retained
// across plans so steady-state planning allocates nothing.
type bitTiler struct {
	t       *Topology
	budget  int64
	visited []int32 // epoch marks, indexed by node
	epoch   int32
	queue   []int32
	order   []int32 // component-ordered rewrite of the active prefix
	tiles   []bitTile
	maxTileNodes int
	// lastRemaining/lastOK memoize the previous plan: while no node
	// terminates, the component structure cannot change, so neither can
	// the answer (and on success active[] is already component-ordered).
	lastRemaining int
	lastOK        bool
}

func newBitTiler(t *Topology, budget int64) *bitTiler {
	n := len(t.off) - 1
	return &bitTiler{
		t:             t,
		budget:        budget,
		visited:       make([]int32, n),
		order:         make([]int32, 0, n),
		lastRemaining: -1,
	}
}

// plan partitions the live subgraph under active[:remaining] into tiles,
// reordering active in place so each tile is a contiguous range. It
// returns false — leaving active untouched — when any single component
// overflows the budget (the R=1 fallback).
func (tl *bitTiler) plan(active []int32, remaining int, done []bool) bool {
	if remaining == tl.lastRemaining {
		return tl.lastOK
	}
	tl.lastRemaining = remaining
	tl.lastOK = false
	t := tl.t
	tl.epoch++
	ep := tl.epoch
	order := tl.order[:0]
	tl.tiles = tl.tiles[:0]
	tl.maxTileNodes = 0
	var tileWeight int64
	tileLo := 0
	for _, seed := range active[:remaining] {
		if tl.visited[seed] == ep {
			continue
		}
		// BFS one connected component of the live subgraph.
		compLo := len(order)
		var compWeight int64
		q := append(tl.queue[:0], seed)
		tl.visited[seed] = ep
		for head := 0; head < len(q); head++ {
			v := q[head]
			order = append(order, v)
			compWeight += 1 + int64(t.off[v+1]-t.off[v])
			for i := t.off[v]; i < t.off[v+1]; i++ {
				w := t.adj[i]
				if tl.visited[w] == ep || done[w] {
					continue
				}
				tl.visited[w] = ep
				q = append(q, w)
			}
		}
		tl.queue = q[:0]
		if compWeight > tl.budget {
			tl.order = order[:0]
			return false
		}
		if tileWeight+compWeight > tl.budget && tileWeight > 0 {
			tl.closeTile(tileLo, compLo)
			tileLo, tileWeight = compLo, 0
		}
		tileWeight += compWeight
	}
	tl.closeTile(tileLo, len(order))
	copy(active[:remaining], order)
	tl.order = order[:0]
	tl.lastOK = true
	return true
}

func (tl *bitTiler) closeTile(lo, hi int) {
	if hi == lo {
		return
	}
	tl.tiles = append(tl.tiles, bitTile{lo: lo, hi: hi})
	if hi-lo > tl.maxTileNodes {
		tl.maxTileNodes = hi - lo
	}
}

// bitTileState is the coordinator→worker contract for one tiled block. A
// single instance lives for the whole run; the coordinator rewrites its
// fields before waking workers (the work-channel send publishes them) and
// workers claim tiles from the shared cursor, so a fast worker drains many
// tiles while a slow one finishes its first.
type bitTileState struct {
	t          *Topology
	nodes      []BitNode
	casters    []BitBroadcaster
	active     []int32
	done       []bool
	dead       *deadDeliver
	deliver    []int32
	inbox      bitPlane
	next       bitPlane
	tiles      []bitTile
	firstRound int
	rounds     int
	par        bool
	pf         int
	ndCap      int
	cursor     atomic.Int64
}

// reset rewrites the state for one block. The coordinator calls it before
// waking workers; the work-channel sends publish the fields.
func (ts *bitTileState) reset(t *Topology, nodes []BitNode, casters []BitBroadcaster, active []int32, done []bool, dead *deadDeliver, inbox, next bitPlane, tiler *bitTiler, firstRound, rounds int, par bool, pf, ndCap int) {
	ts.t = t
	ts.nodes = nodes
	ts.casters = casters
	ts.active = active
	ts.done = done
	ts.dead = dead
	ts.deliver = dead.table()
	ts.inbox = inbox
	ts.next = next
	ts.tiles = tiler.tiles
	ts.firstRound = firstRound
	ts.rounds = rounds
	ts.par = par
	ts.pf = pf
	ts.ndCap = ndCap
	ts.cursor.Store(0)
}

// tileGuard tracks the node and round a worker is executing so a program
// panic can be attributed; shared by pointer with the recover handler.
type tileGuard struct {
	curV int
	curR int
}

// drainTiles claims and runs tiles until none remain, reusing (and
// returning) the worker's retirement buffer nd.
func (ts *bitTileState) drainTiles(st *poolWorker, send BitRow, nd []int32) []int32 {
	if cap(nd) < ts.ndCap {
		//lint:alloc once per worker: sized to the run-invariant tile-node
		// bound, then reused across every tiled block of the run
		nd = make([]int32, 0, ts.ndCap)
	}
	g := tileGuard{curV: -1, curR: ts.firstRound}
	defer func() {
		if p := recover(); p != nil {
			st.err = newPanicError(g.curV, g.curR, p)
			st.errNode = g.curV
		}
	}()
	for {
		i := int(ts.cursor.Add(1)) - 1
		if i >= len(ts.tiles) {
			return nd
		}
		ts.runTile(ts.tiles[i], send, nd, st, &g)
	}
}

// runTile executes up to ts.rounds rounds of one tile back-to-back,
// applying retirement (row uncount + clear + arc kill) locally at every
// local round boundary so later local rounds see exactly the state the
// untiled schedule would have produced.
func (ts *bitTileState) runTile(tile bitTile, send BitRow, nd []int32, st *poolWorker, g *tileGuard) {
	t := ts.t
	cur, nxt := ts.inbox, ts.next
	left := tile.hi - tile.lo
	for rr := 0; rr < ts.rounds && left > 0; rr++ {
		r := ts.firstRound + rr
		g.curR = r
		nd = nd[:0]
		var msgs int64
		//splitlint:zeroalloc
		for i := tile.lo; i < tile.hi; i++ {
			v := int(ts.active[i])
			if ts.done[v] {
				continue
			}
			g.curV = v
			lo, hi := t.off[v], t.off[v+1]
			if ts.pf > 0 {
				prefetchBitTargets(ts.deliver, nxt, lo, hi, ts.pf)
			}
			var fin bool
			if c := caster(ts.casters, v); c != nil {
				val, cast, cfin := c.CastB(r, cur.row(lo, hi))
				if cast {
					msgs += castBitRow(ts.deliver, nxt, lo, hi, val, ts.par)
				}
				fin = cfin
			} else {
				row := send.ports(int(hi - lo))
				fin = ts.nodes[v].RoundB(r, cur.row(lo, hi), row)
				msgs += scatterBitRow(ts.deliver, nxt, lo, row, ts.par)
			}
			cur.clearRow(lo, hi, ts.par)
			if fin {
				ts.done[v] = true
				//lint:alloc amortized: capacity preallocated in drainTiles
				nd = append(nd, int32(v))
				left--
			}
		}
		g.curV = -1
		// Local retirement — the coordinator's per-round compaction applied
		// in-tile. Counting must be atomic under par: a retiring row can
		// share a plane word with a neighboring tile another worker is
		// scattering into. kill() is safe concurrently because the deliver
		// table is materialized before dispatch and a node's inbox slots
		// are written only from inside its own (closed) tile.
		for _, v := range nd {
			lo, hi := t.off[v], t.off[v+1]
			if ts.par {
				msgs -= nxt.countRowAtomic(lo, hi)
			} else {
				msgs -= nxt.countRow(lo, hi)
			}
			nxt.clearRow(lo, hi, ts.par)
			ts.dead.kill(v)
		}
		st.msgs += msgs
		if rr+1 > st.tileExec {
			st.tileExec = rr + 1
		}
		cur, nxt = nxt, cur
	}
}
