// Batch determinism suite: every trial of a BatchRun must be bit-identical —
// outputs and full Stats — to a standalone SequentialEngine run with the same
// Options, whatever the worker count and however the trials' lifetimes
// interleave. Error handling is per-trial: one failing trial must not disturb
// its batchmates.
package local_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// chatterbox terminates at a per-node, randomness-dependent round but sends
// on every round up to and including its last, so its messages routinely
// target neighbors that terminated rounds earlier — the delivered-message
// accounting and the buffer hygiene of every runner are both on the hook.
type chatterbox struct {
	v    local.View
	stop int
	acc  uint64
	out  []uint64
	idx  int
}

func (c *chatterbox) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for p, m := range recv {
		if m != nil {
			c.acc = c.acc*1099511628211 + uint64(p)<<32 ^ m.(uint64)
		}
	}
	send := make([]local.Message, c.v.Deg)
	for p := range send {
		send[p] = c.acc ^ uint64(r)<<16 ^ uint64(p)
	}
	done := r >= c.stop
	if done {
		c.out[c.idx] = c.acc
	}
	return send, done
}

// chatterFactory staggers termination rounds over [1, spread] keyed by each
// node's private random stream.
func chatterFactory(spread int, out []uint64) local.Factory {
	idx := 0
	return func(v local.View) local.Node {
		c := &chatterbox{
			v:    v,
			stop: 1 + int(v.Rand.Uint64()%uint64(spread)),
			acc:  v.Rand.Uint64(),
			out:  out,
			idx:  idx,
		}
		idx++
		return c
	}
}

// batchCase runs one trial standalone under SequentialEngine and returns its
// outputs and stats, as the reference for the batched run.
func sequentialReference(t *testing.T, topo *local.Topology, mk func(out []uint64) local.Trial) ([]uint64, local.Stats) {
	t.Helper()
	out := make([]uint64, topo.N())
	trial := mk(out)
	stats, err := local.SequentialEngine{}.Run(topo, trial.Factory, trial.Opts)
	if err != nil {
		t.Fatalf("sequential reference: %v", err)
	}
	return out, stats
}

func TestBatchMatchesSequential(t *testing.T) {
	t.Parallel()
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"sparse", graph.RandomSparseGraph(400, 1200, prob.NewSource(5).Rand())},
		{"cycle", graph.Cycle(33)},
		{"path", graph.PathGraph(10)},
	}
	seeds := []uint64{3, 17, 99, 1234}
	for _, tg := range graphs {
		for _, workers := range []int{0, 1, 3} {
			tg, workers := tg, workers
			t.Run(fmt.Sprintf("%s/workers=%d", tg.name, workers), func(t *testing.T) {
				t.Parallel()
				topo := local.NewTopology(tg.g)
				n := tg.g.N()
				mk := func(seed uint64) func(out []uint64) local.Trial {
					return func(out []uint64) local.Trial {
						src := prob.NewSource(seed)
						return local.Trial{
							Factory: chatterFactory(9, out),
							Opts:    local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1))},
						}
					}
				}
				wantOut := make([][]uint64, len(seeds))
				wantStats := make([]local.Stats, len(seeds))
				for i, seed := range seeds {
					wantOut[i], wantStats[i] = sequentialReference(t, topo, mk(seed))
				}
				gotOut := make([][]uint64, len(seeds))
				trials := make([]local.Trial, len(seeds))
				for i, seed := range seeds {
					gotOut[i] = make([]uint64, n)
					trials[i] = mk(seed)(gotOut[i])
				}
				stats, errs := local.BatchRun(topo, trials, local.BatchOptions{Workers: workers})
				for i := range seeds {
					if errs[i] != nil {
						t.Fatalf("trial %d: %v", i, errs[i])
					}
					if stats[i] != wantStats[i] {
						t.Errorf("trial %d stats %+v != sequential %+v", i, stats[i], wantStats[i])
					}
					for v := range gotOut[i] {
						if gotOut[i][v] != wantOut[i][v] {
							t.Fatalf("trial %d disagrees with sequential at node %d: %x vs %x",
								i, v, gotOut[i][v], wantOut[i][v])
						}
					}
				}
			})
		}
	}
}

// TestBatchMatchesSequentialEchoHash reruns the cross-engine echo-hash
// program through the batch path: same graph, three seeds, outputs and Stats
// must match per-seed standalone runs.
func TestBatchMatchesSequentialEchoHash(t *testing.T) {
	t.Parallel()
	g := graph.RandomGraph(120, 0.05, prob.NewSource(77).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	seeds := []uint64{1, 7, 42}
	var trials []local.Trial
	batchOut := make([][]uint64, len(seeds))
	for i, seed := range seeds {
		src := prob.NewSource(seed)
		batchOut[i] = make([]uint64, n)
		trials = append(trials, local.Trial{
			Factory: echoFactory(4, batchOut[i]),
			Opts:    local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1))},
		})
	}
	stats, errs := local.BatchRun(topo, trials, local.BatchOptions{})
	for i, seed := range seeds {
		if errs[i] != nil {
			t.Fatalf("trial %d: %v", i, errs[i])
		}
		src := prob.NewSource(seed)
		out := make([]uint64, n)
		want, err := local.SequentialEngine{}.Run(topo, echoFactory(4, out),
			local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1))})
		if err != nil {
			t.Fatal(err)
		}
		if stats[i] != want {
			t.Errorf("trial %d stats %+v != sequential %+v", i, stats[i], want)
		}
		for v := range out {
			if batchOut[i][v] != out[v] {
				t.Fatalf("trial %d output differs at node %d", i, v)
			}
		}
	}
}

// TestBatchTrialErrorIsolation mixes a trial with invalid options, a trial
// whose program violates the port contract, and two healthy trials: the
// failures must land in their own error slots and the healthy trials must
// still match their standalone runs.
func TestBatchTrialErrorIsolation(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(16)
	topo := local.NewTopology(g)
	n := g.N()
	healthy := func(out []uint64) local.Trial {
		src := prob.NewSource(8)
		return local.Trial{Factory: chatterFactory(5, out), Opts: local.Options{Source: src}}
	}
	out0 := make([]uint64, n)
	out3 := make([]uint64, n)
	trials := []local.Trial{
		healthy(out0),
		{Factory: func(local.View) local.Node { return badSenderNode{} }, Opts: local.Options{}},
		{Factory: func(local.View) local.Node { return badSenderNode{} }, Opts: local.Options{IDs: []int{1, 2}}},
		healthy(out3),
		{Opts: local.Options{}}, // nil factory
	}
	stats, errs := local.BatchRun(topo, trials, local.BatchOptions{Workers: 2})
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "ports") {
		t.Errorf("port violation not reported: %v", errs[1])
	}
	if errs[2] == nil {
		t.Error("short ID slice not reported")
	}
	if errs[4] == nil || !strings.Contains(errs[4].Error(), "nil Factory") {
		t.Errorf("nil factory not reported: %v", errs[4])
	}
	wantOut, wantStats := sequentialReference(t, topo, healthy)
	for _, i := range []int{0, 3} {
		if errs[i] != nil {
			t.Fatalf("healthy trial %d failed: %v", i, errs[i])
		}
		if stats[i] != wantStats {
			t.Errorf("healthy trial %d stats %+v != sequential %+v", i, stats[i], wantStats)
		}
	}
	for v := range wantOut {
		if out0[v] != wantOut[v] || out3[v] != wantOut[v] {
			t.Fatalf("healthy trial output differs at node %d", v)
		}
	}
}

// badSenderNode sends the wrong number of messages (external-package twin of
// the internal badSender used by the engine tests).
type badSenderNode struct{}

func (badSenderNode) Round(int, []local.Message) ([]local.Message, bool) {
	return []local.Message{1, 2, 3, 4, 5}, false
}

// TestBatchPerTrialMaxRounds gives each trial its own cap around the exact
// finishing round: the trial at the boundary succeeds, the one a round short
// fails, and neither outcome leaks into the other trials.
func TestBatchPerTrialMaxRounds(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(20)
	topo := local.NewTopology(g)
	n := g.N()
	// echoFactory(rounds, out) finishes in round rounds+1.
	const rounds = 6
	mk := func(maxRounds int) local.Trial {
		src := prob.NewSource(4)
		return local.Trial{
			Factory: echoFactory(rounds, make([]uint64, n)),
			Opts:    local.Options{Source: src, MaxRounds: maxRounds},
		}
	}
	trials := []local.Trial{mk(rounds + 1), mk(rounds), mk(0)}
	stats, errs := local.BatchRun(topo, trials, local.BatchOptions{})
	if errs[0] != nil {
		t.Errorf("MaxRounds at the exact finishing round must succeed: %v", errs[0])
	}
	if stats[0].Rounds != rounds+1 {
		t.Errorf("trial 0 ran %d rounds, want %d", stats[0].Rounds, rounds+1)
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "MaxRounds") {
		t.Errorf("MaxRounds one short of the finishing round must fail: %v", errs[1])
	}
	if stats[1].Rounds != rounds {
		t.Errorf("failed trial executed %d rounds, want %d", stats[1].Rounds, rounds)
	}
	if errs[2] != nil {
		t.Errorf("defaulted MaxRounds trial failed: %v", errs[2])
	}
	if stats[2] != stats[0] {
		t.Errorf("unbounded trial stats %+v != bounded twin %+v", stats[2], stats[0])
	}
}

func TestBatchEdgeCases(t *testing.T) {
	t.Parallel()
	stats, errs := local.BatchRun(local.NewTopology(graph.Cycle(4)), nil, local.BatchOptions{})
	if len(stats) != 0 || len(errs) != 0 {
		t.Errorf("empty batch should return empty slices")
	}
	empty := local.NewTopology(graph.NewGraph(0))
	stats, errs = local.BatchRun(empty, []local.Trial{
		{Factory: func(local.View) local.Node { return badSenderNode{} }},
		{Factory: func(local.View) local.Node { return badSenderNode{} }},
	}, local.BatchOptions{})
	for i := range stats {
		if errs[i] != nil || stats[i].Rounds != 0 || stats[i].Messages != 0 {
			t.Errorf("trial %d on the empty topology should be free: %+v, %v", i, stats[i], errs[i])
		}
	}
}
