// Package local implements the LOCAL model of distributed computing
// [Lin92, Pel00]: a synchronous message-passing network in which, in every
// round, each node may send an arbitrarily large message to each of its
// neighbors and then update its state. Round complexity is the only
// resource; message size and local computation are unbounded.
//
// Algorithms are written as per-node state machines (the Node interface).
// Three engines execute them:
//
//   - SequentialEngine iterates nodes in a single goroutine. Zero
//     synchronization overhead; the baseline every other engine must match
//     bit-for-bit, and the right choice for small instances and debugging.
//   - GoroutineEngine runs one goroutine per node with a barrier per round —
//     the natural Go embedding of synchronous rounds. It exists to
//     demonstrate that the model maps onto real concurrency, but collapses
//     under scheduler pressure at large n (two channel operations per node
//     per round).
//   - WorkerPoolEngine shards the active nodes over a fixed pool of
//     GOMAXPROCS workers with double-buffered, reused message arrays. It is
//     the throughput engine: pick it for large instances and batch
//     experiments; it beats GoroutineEngine by orders of magnitude at
//     100k+ nodes (see BenchmarkEngines).
//
// All engines are observationally identical: per-node randomness is derived
// from (seed, node ID) only, never from scheduling, so a program produces
// bit-for-bit the same outputs under every engine (ablation E14 and the
// cross-engine determinism suite in determinism_test.go enforce this).
//
// Programs whose messages are small scalars should implement the WordNode
// fast path (see word.go): message planes become pointer-free []Word arrays
// and a steady-state round performs zero heap allocations on every engine
// and on the batched trial runner. Programs whose messages are single bits
// or trits — the paper's weak-splitting votes, retry bits and shattering
// trits — should implement the BitNode fast path on top (see bit.go): the
// planes pack 64 messages per uint64 and stay LLC-resident at million-node
// scale. Engines pick the fastest plane automatically (bit, then word,
// then boxed); Options.Plane forces one for ablations.
package local

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/prob"
)

// Message is an arbitrary value exchanged between neighbors; the LOCAL model
// does not bound message size.
type Message = any

// View is the static information a node starts with: its unique ID, its
// degree and port-numbered neighborhood, the network size n (standard
// knowledge in the LOCAL model), an optional per-node input, and a private
// random stream.
type View struct {
	ID     int   // unique identifier, O(log n) bits
	Deg    int   // number of incident ports
	NbrIDs []int // NbrIDs[p] = ID of the neighbor behind port p
	N      int   // number of nodes in the network
	Input  any   // per-node problem input (nil if none)
	Rand   *rand.Rand
}

// Node is a per-node program. Round is called once per synchronous round
// with the messages received on each port (nil for silent ports); it
// returns the messages to send per port (nil entries send nothing) and
// whether the node has terminated with its final output. A terminated
// node's last messages are still delivered, but Round is not called again.
type Node interface {
	Round(r int, recv []Message) (send []Message, done bool)
}

// Factory creates the program instance for one node.
type Factory func(v View) Node

// Topology is a port-numbered network in CSR layout: the adjacency and
// delivery arrays are flat, with node v's ports occupying
// [off[v], off[v+1]). adj aliases the graph's own CSR edge array (zero-copy)
// and is never written; engines iterate neighbors directly off these flat
// arrays, and message buffers use the same offsets.
//
// deliver is the precomputed delivery table every message-plane scatter
// uses: deliver[arc] is the inbox slot (within the receiver's row) of the
// message sent on that arc — what used to be the dependent two-load chain
// off[adj[arc]] + portBack[arc], fused at topology-build time into a single
// streamed lookup.
type Topology struct {
	off     []int32 // len N()+1; ports of v are indices off[v]..off[v+1]-1
	adj     []int32 // adj[off[v]+p] = neighbor behind port p of v
	deliver []int32 // deliver[off[v]+p] = inbox arc slot of that message at the neighbor
	maxDeg  int     // max degree; sizes the fast paths' send scratch rows
}

// maxTopologyArcs caps the directed-arc count a topology will index: off and
// deliver are int32, so anything past math.MaxInt32 would wrap silently
// during the delivery-table pass. A var so the overflow test can lower it
// instead of allocating a 2^31-arc graph.
var maxTopologyArcs = math.MaxInt32

// NewTopology builds a port-numbered topology from a graph. Like
// graph.CSRBuilder.Build, it panics with a descriptive error if the graph
// exceeds the int32 arc-index limit — in-package graphs are built through the
// guarded CSR builder, so this is unreachable for them; paths fed from
// untrusted input use NewTopologyE.
func NewTopology(g *graph.Graph) *Topology {
	t, err := NewTopologyE(g)
	if err != nil {
		panic(err)
	}
	return t
}

// NewTopologyE is NewTopology returning the arc-limit violation as an error
// instead of panicking.
func NewTopologyE(g *graph.Graph) (*Topology, error) {
	c := g.CSR()
	n := c.N()
	if c.Arcs() > maxTopologyArcs {
		return nil, fmt.Errorf("local: graph has %d directed arcs, exceeding the int32 delivery-table limit of %d",
			c.Arcs(), maxTopologyArcs)
	}
	t := &Topology{
		off:     c.Off,
		adj:     c.Edges,
		deliver: make([]int32, len(c.Edges)),
	}
	// Port p of v is its p-th sorted neighbor. Delivery slots fall out of
	// one counting pass: scanning v ascending, the arcs arriving at any w do
	// so with v ascending, which is exactly the order of w's sorted row — so
	// the reverse port of arc (v, w) is the number of arcs seen at w so far,
	// and the delivery slot is w's row offset plus that port.
	cursor := make([]int32, n)
	for v := 0; v < n; v++ {
		if d := int(c.Off[v+1] - c.Off[v]); d > t.maxDeg {
			t.maxDeg = d
		}
		for i := c.Off[v]; i < c.Off[v+1]; i++ {
			w := t.adj[i]
			t.deliver[i] = c.Off[w] + cursor[w]
			cursor[w]++
		}
	}
	return t, nil
}

// MaxDeg returns the maximum degree of the topology.
func (t *Topology) MaxDeg() int { return t.maxDeg }

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.off) - 1 }

// Deg returns the degree of node v.
func (t *Topology) Deg(v int) int { return int(t.off[v+1] - t.off[v]) }

// row returns the neighbor array of v (a view into the flat adjacency).
func (t *Topology) row(v int) []int32 { return t.adj[t.off[v]:t.off[v+1]] }

// Options configure a run.
type Options struct {
	// Source provides the per-node random streams; required for randomized
	// algorithms, optional for deterministic ones.
	Source *prob.Source
	// IDs assigns unique identifiers; nil means IDs[v] = v. Experiments use
	// random permutations to exercise ID-dependent symmetry breaking.
	IDs []int
	// Inputs carries per-node problem inputs; nil means all-nil.
	Inputs []any
	// MaxRounds aborts runaway algorithms; 0 means a generous default.
	MaxRounds int
	// Plane pins the message-plane representation; the zero value PlaneAuto
	// picks the fastest plane the program supports. Forcing a plane the
	// program cannot take makes the run fail loudly instead of silently
	// falling back — that is what makes plane ablations trustworthy.
	Plane Plane
	// Faults injects seeded message drops, bounded delivery delay and
	// crash-stop failures (see FaultPlan). nil — or a plan with no active
	// knob — runs fault-free with the hot paths untouched. Fault decisions
	// are keyed by (fault seed, arc|node, round) only, so a faulty run is
	// bit-identical across engines, planes and worker counts.
	Faults *FaultPlan
	// Control makes the run cancellable (see RunControl): engines poll it
	// at round boundaries and abort with ErrCancelled/ErrDeadline and
	// partial Stats. nil runs uncontrolled with the hot paths untouched.
	Control *RunControl
	// Tune carries the cache-tuning knobs (see Tuning). The zero value is
	// every default; no knob changes observable behavior, only wall-clock.
	Tune Tuning
}

const defaultMaxRounds = 1 << 20

func maxRoundsErr(maxRounds int) error {
	return fmt.Errorf("local: exceeded MaxRounds=%d", maxRounds)
}

// Plane selects the message-plane representation of a run. Every plane is
// observationally identical (delivery, termination, Stats); they differ in
// bytes per arc and allocations per round only.
type Plane uint8

// Plane values, in ladder order: engines on PlaneAuto try bit, then word,
// then boxed.
const (
	// PlaneAuto picks the fastest plane every node of the run supports.
	PlaneAuto Plane = iota
	// PlaneBoxed forces the Message = any planes (always possible).
	PlaneBoxed
	// PlaneWord forces the []Word planes; every node must be a WordNode.
	PlaneWord
	// PlaneBit forces the packed bit planes; every node must be a BitNode.
	PlaneBit
)

func (p Plane) String() string {
	switch p {
	case PlaneAuto:
		return "auto"
	case PlaneBoxed:
		return "boxed"
	case PlaneWord:
		return "word"
	case PlaneBit:
		return "bit"
	default:
		return fmt.Sprintf("Plane(%d)", uint8(p))
	}
}

// ParsePlane resolves a command-line plane name: "auto", "boxed", "word" or
// "bit".
func ParsePlane(name string) (Plane, error) {
	switch name {
	case "auto", "":
		return PlaneAuto, nil
	case "boxed":
		return PlaneBoxed, nil
	case "word":
		return PlaneWord, nil
	case "bit":
		return PlaneBit, nil
	default:
		return PlaneAuto, fmt.Errorf("local: unknown plane %q (have auto, boxed, word, bit)", name)
	}
}

// ForcePlane wraps an engine so every run takes the given message plane:
// CLIs hand algorithms a plane-forced engine and the restriction follows
// the engine wherever it is used. PlaneAuto returns the engine unchanged.
func ForcePlane(e Engine, p Plane) Engine {
	if p == PlaneAuto {
		return e
	}
	return planeEngine{e: e, p: p}
}

type planeEngine struct {
	e Engine
	p Plane
}

// Run implements Engine.
func (pe planeEngine) Run(t *Topology, f Factory, opts Options) (Stats, error) {
	opts.Plane = pe.p
	return pe.e.Run(t, f, opts)
}

// planeNodes resolves the plane ladder for a run's nodes under the
// requested plane: bit (bs non-nil, with the lane width), word (ws
// non-nil), or boxed (both nil). Requesting a plane the nodes cannot take
// is a loud error, never a silent fallback; every engine and the batch
// runner route their detection through this one helper.
func planeNodes(nodes []Node, plane Plane) (bs []BitNode, bitWidth int, ws []WordNode, err error) {
	switch plane {
	case PlaneAuto:
		if bs, bitWidth = asBitNodes(nodes); bs != nil {
			return
		}
		ws = asWordNodes(nodes)
	case PlaneBit:
		if bs, bitWidth = asBitNodes(nodes); bs == nil {
			err = fmt.Errorf("local: plane bit forced, but not every node implements BitNode")
		}
	case PlaneWord:
		if ws = asWordNodes(nodes); ws == nil {
			err = fmt.Errorf("local: plane word forced, but not every node implements WordNode")
		}
	case PlaneBoxed:
	default:
		err = fmt.Errorf("local: unknown plane %d", uint8(plane))
	}
	return
}

// deliverBoxed scatters one node's boxed send row (first arc lo) into
// next[base:] through the precomputed delivery table, dropping (and not
// counting) messages to dead nodes; it returns the delivered count. Shared
// by the sequential, goroutine, pool and batch boxed loops. The send slice
// is program-owned and left untouched.
//
// pf is the scatter look-ahead window (see Tuning): the first pf target
// slots are touched up front so their cache misses overlap instead of
// serializing behind the deliver[] indirection. The reads fold into warm,
// kept alive past the loop so the compiler cannot eliminate them; the
// values are never used. Race-instrumented builds run with pf == 0 (see
// Tuning.prefetchScalar).
//
//splitlint:zeroalloc
func (t *Topology) deliverBoxed(next []Message, dead []bool, base int, lo int32, send []Message, pf int) int64 {
	if pf > len(send) {
		pf = len(send)
	}
	var warm Message
	for k := 0; k < pf; k++ {
		if m := next[base+int(t.deliver[lo+int32(k)])]; m != nil {
			warm = m
		}
	}
	runtime.KeepAlive(warm)
	var msgs int64
	for p, msg := range send {
		if msg != nil {
			arc := lo + int32(p)
			if !dead[t.adj[arc]] {
				next[base+int(t.deliver[arc])] = msg
				msgs++
			}
		}
	}
	return msgs
}

// deliverWords is deliverBoxed for a word send row. The row is
// engine-owned scratch, so it is cleared as it is scattered — after the
// call it is all-NilWord and ready for the next node. The prefetch touch
// loads are atomic so the compiler cannot eliminate them (Word's underlying
// type is uint64, making the pointer conversion legal); race builds run
// with pf == 0.
//
//splitlint:zeroalloc
func (t *Topology) deliverWords(next []Word, dead []bool, base int, lo int32, send []Word, pf int) int64 {
	if pf > len(send) {
		pf = len(send)
	}
	for k := 0; k < pf; k++ {
		_ = atomic.LoadUint64((*uint64)(&next[base+int(t.deliver[lo+int32(k)])]))
	}
	var msgs int64
	for p, msg := range send {
		if msg != NilWord {
			arc := lo + int32(p)
			if !dead[t.adj[arc]] {
				next[base+int(t.deliver[arc])] = msg
				msgs++
			}
			send[p] = NilWord
		}
	}
	return msgs
}

// Stats reports the cost of a run.
//
// Messages counts only delivered messages: ones consumed by a Round call of
// a still-running node. A message sent to a node that has already terminated
// is dropped at delivery and not counted — the recipient never reads it. The
// set of terminated nodes is fixed at round boundaries, so the count is
// identical under every engine regardless of intra-round scheduling (the
// determinism suite asserts full Stats equality across engines).
type Stats struct {
	Rounds   int   // number of synchronous rounds executed
	Messages int64 // number of (non-nil) point-to-point messages delivered

	// Fault-model counters, all zero on a fault-free run (Options.Faults nil
	// or inactive) and engine-identical by construction under faults:
	// Dropped counts messages the fault model removed for good (lost drops,
	// redelivery collisions, redeliveries to down nodes, crash-lost inbox
	// rows), Delayed counts messages taken off their round and queued for
	// redelivery (a delayed message that is later discarded also counts in
	// Dropped), and Crashed counts crash-stopped nodes.
	Dropped int64
	Delayed int64
	Crashed int
}

// Engine executes a Factory on a Topology.
type Engine interface {
	Run(t *Topology, f Factory, opts Options) (Stats, error)
}

// views prepares the per-node Views and validates options.
func views(t *Topology, opts Options) ([]View, error) {
	vs, ids, err := baseViews(t, opts)
	if err != nil {
		return nil, err
	}
	if opts.Source != nil {
		rngs := opts.Source.NodeStreams(ids)
		for v := range vs {
			vs[v].Rand = rngs[v]
		}
	}
	return vs, nil
}

// baseViews prepares the per-node Views minus their random streams, and
// returns the effective ID assignment. The split exists for the batch
// runner: trials with identity IDs and no inputs share one base view set
// and differ only in the streams attached per trial.
func baseViews(t *Topology, opts Options) ([]View, []int, error) {
	n := t.N()
	ids := opts.IDs
	if ids == nil {
		ids = make([]int, n)
		for i := range ids {
			ids[i] = i
		}
	} else if len(ids) != n {
		return nil, nil, fmt.Errorf("local: got %d IDs for %d nodes", len(ids), n)
	} else {
		// Identity IDs (the nil case above) cannot collide; only explicit
		// assignments need the duplicate check.
		seen := make(map[int]struct{}, n)
		for _, id := range ids {
			if _, dup := seen[id]; dup {
				return nil, nil, fmt.Errorf("local: duplicate ID %d", id)
			}
			seen[id] = struct{}{}
		}
	}
	if opts.Inputs != nil && len(opts.Inputs) != n {
		return nil, nil, fmt.Errorf("local: got %d inputs for %d nodes", len(opts.Inputs), n)
	}
	vs := make([]View, n)
	// All NbrIDs rows share one flat backing array (the topology's arc
	// layout) and the random streams come from one bulk allocation, so view
	// construction costs O(1) allocations instead of O(n) — at batch scale
	// (trials × nodes) the difference is GC-visible.
	flatNbrIDs := make([]int, len(t.adj))
	for v := 0; v < n; v++ {
		row := t.row(v)
		nbrIDs := flatNbrIDs[t.off[v]:t.off[v+1]:t.off[v+1]]
		for p, w := range row {
			nbrIDs[p] = ids[w]
		}
		var input any
		if opts.Inputs != nil {
			input = opts.Inputs[v]
		}
		vs[v] = View{
			ID:     ids[v],
			Deg:    len(row),
			NbrIDs: nbrIDs,
			N:      n,
			Input:  input,
		}
	}
	return vs, ids, nil
}

// SequentialEngine executes all nodes in one goroutine.
type SequentialEngine struct{}

var _ Engine = SequentialEngine{}

// Run implements Engine.
func (SequentialEngine) Run(t *Topology, f Factory, opts Options) (stats Stats, err error) {
	vs, err := views(t, opts)
	if err != nil {
		return Stats{}, err
	}
	n := t.N()
	nodes, err := buildNodes(f, vs)
	if err != nil {
		return Stats{}, err
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	bs, bw, ws, err := planeNodes(nodes, opts.Plane)
	if err != nil {
		return Stats{}, err
	}
	fs, err := newFaultState(t, opts.Faults)
	if err != nil {
		return Stats{}, err
	}
	ctl := opts.Control
	if bs != nil {
		return runSeqBit(t, bs, bw, maxRounds, fs, ctl, opts.Tune)
	}
	if ws != nil {
		return runSeqWord(t, ws, maxRounds, fs, ctl, opts.Tune.prefetchScalar())
	}
	pfs := opts.Tune.prefetchScalar()
	// Double-buffered flat message arrays sharing the topology's offsets:
	// node v's inbox is inbox[off[v]:off[v+1]].
	arcs := len(t.adj)
	inbox := make([]Message, arcs)
	next := make([]Message, arcs)
	done := make([]bool, n)
	// dead[v] means v terminated in a strictly earlier round; deliveries to
	// dead nodes are dropped (and not counted), because the recipient will
	// never read them. done is updated mid-round, dead only at round
	// boundaries, so delivery semantics cannot depend on iteration order.
	dead := make([]bool, n)
	var newlyDone []int32
	remaining := n
	// Panic isolation: a panic in a Round call becomes the run's error with
	// the (node, round) coordinates, instead of killing the process.
	curV := -1
	defer func() {
		if p := recover(); p != nil {
			err = newPanicError(curV, stats.Rounds, p)
		}
	}()
	for r := 1; remaining > 0; r++ {
		if r > maxRounds {
			return stats, fmt.Errorf("local: exceeded MaxRounds=%d", maxRounds)
		}
		// The cancellation point: before round r runs, so rounds 1..r-1 are
		// untouched and Stats cover exactly the rounds that executed.
		if cerr := ctl.Err(); cerr != nil {
			return stats, cerr
		}
		stats.Rounds = r
		for i := range next {
			next[i] = nil
		}
		newlyDone = newlyDone[:0]
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			curV = v
			lo, hi := t.off[v], t.off[v+1]
			send, fin := nodes[v].Round(r, inbox[lo:hi:hi])
			if fin {
				done[v] = true
				newlyDone = append(newlyDone, int32(v))
				remaining--
			}
			if send == nil {
				continue
			}
			if len(send) != int(hi-lo) {
				return stats, fmt.Errorf("local: node %d sent %d messages on %d ports", v, len(send), hi-lo)
			}
			stats.Messages += t.deliverBoxed(next, dead, 0, lo, send, pfs)
		}
		curV = -1
		// Messages addressed to nodes that terminated this round will never
		// be consumed: uncount and drop them, then retire the nodes.
		for _, v := range newlyDone {
			for i := t.off[v]; i < t.off[v+1]; i++ {
				if next[i] != nil {
					next[i] = nil
					stats.Messages--
				}
			}
			dead[v] = true
		}
		if fs != nil {
			for _, v := range newlyDone {
				fs.markDown(v)
			}
			for _, v := range fs.boundaryBoxed(r, next, 0, &stats) {
				done[v] = true
				dead[v] = true
				remaining--
			}
		}
		inbox, next = next, inbox
	}
	return stats, nil
}

// runSeqWord is the sequential engine's word-plane fast path: pointer-free
// double-buffered []Word planes, one reused send scratch row, and per-row
// clearing on consumption — a steady-state round allocates nothing. The
// delivery, termination and Stats semantics mirror the boxed loop exactly
// (a delivered message is a non-NilWord slot addressed to a non-dead node;
// messages to nodes that terminated this round are uncounted and dropped).
func runSeqWord(t *Topology, nodes []WordNode, maxRounds int, fs *faultState, ctl *RunControl, pf int) (stats Stats, err error) {
	n := t.N()
	arcs := len(t.adj)
	inbox := make([]Word, arcs)
	next := make([]Word, arcs)
	sendBuf := make([]Word, t.maxDeg)
	done := make([]bool, n)
	dead := make([]bool, n)
	var newlyDone []int32
	remaining := n
	// Panic isolation: see SequentialEngine.Run. The guard sits outside the
	// marked region (defers are banned inside) and costs one open-coded
	// defer for the whole run.
	curV := -1
	defer func() {
		if p := recover(); p != nil {
			err = newPanicError(curV, stats.Rounds, p)
		}
	}()
	//splitlint:zeroalloc
	for r := 1; remaining > 0; r++ {
		if r > maxRounds {
			//lint:alloc cold failure exit: runs at most once, ending the run
			return stats, fmt.Errorf("local: exceeded MaxRounds=%d", maxRounds)
		}
		if cerr := ctl.Err(); cerr != nil {
			return stats, cerr
		}
		stats.Rounds = r
		newlyDone = newlyDone[:0]
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			curV = v
			lo, hi := t.off[v], t.off[v+1]
			recv := inbox[lo:hi:hi]
			send := sendBuf[:hi-lo]
			if nodes[v].RoundW(r, recv, send) {
				done[v] = true
				//lint:alloc amortized: reslice of a buffer whose capacity stops growing after the first rounds
				newlyDone = append(newlyDone, int32(v))
				remaining--
			}
			stats.Messages += t.deliverWords(next, dead, 0, lo, send, pf)
			// Clear the consumed row so that after the swap the new next
			// rows are already all-NilWord (nothing is re-zeroed wholesale).
			for p := range recv {
				recv[p] = NilWord
			}
		}
		curV = -1
		// Messages addressed to nodes that terminated this round will never
		// be consumed: uncount and drop them, then retire the nodes.
		for _, v := range newlyDone {
			for i := t.off[v]; i < t.off[v+1]; i++ {
				if next[i] != NilWord {
					next[i] = NilWord
					stats.Messages--
				}
			}
			dead[v] = true
		}
		if fs != nil {
			for _, v := range newlyDone {
				fs.markDown(v)
			}
			for _, v := range fs.boundaryWord(r, next, 0, &stats) {
				done[v] = true
				dead[v] = true
				remaining--
			}
		}
		inbox, next = next, inbox
	}
	return stats, nil
}

// GoroutineEngine runs one goroutine per node, synchronized by a per-round
// barrier. All goroutines are joined before Run returns.
type GoroutineEngine struct{}

var _ Engine = GoroutineEngine{}

type roundResult struct {
	v    int
	send []Message
	done bool
	err  error
}

// Run implements Engine.
func (GoroutineEngine) Run(t *Topology, f Factory, opts Options) (Stats, error) {
	vs, err := views(t, opts)
	if err != nil {
		return Stats{}, err
	}
	n := t.N()
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}

	// Create node programs in the coordinator so that factories may keep
	// (unsynchronized) shared state, exactly as under SequentialEngine.
	nodes, err := buildNodes(f, vs)
	if err != nil {
		return Stats{}, err
	}
	bs, bw, ws, err := planeNodes(nodes, opts.Plane)
	if err != nil {
		return Stats{}, err
	}
	fs, err := newFaultState(t, opts.Faults)
	if err != nil {
		return Stats{}, err
	}
	ctl := opts.Control
	if bs != nil {
		return runGoroutineBit(t, bs, bw, maxRounds, fs, ctl, opts.Tune)
	}
	if ws != nil {
		return runGoroutineWord(t, ws, maxRounds, fs, ctl, opts.Tune.prefetchScalar())
	}
	pfs := opts.Tune.prefetchScalar()
	start := make([]chan []Message, n)
	results := make(chan roundResult, n)
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		start[v] = make(chan []Message, 1)
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			node := nodes[v]
			deg := t.Deg(v)
			r := 0
			for recv := range start[v] {
				r++
				send, fin, rerr := safeRound(node, v, r, recv)
				if rerr == nil && send != nil && len(send) != deg {
					rerr = fmt.Errorf("local: node %d sent %d messages on %d ports", v, len(send), deg)
				}
				if rerr != nil {
					results <- roundResult{v: v, err: rerr}
					return
				}
				results <- roundResult{v: v, send: send, done: fin}
			}
		}(v)
	}
	defer func() {
		for v := 0; v < n; v++ {
			if start[v] != nil {
				close(start[v])
			}
		}
		wg.Wait()
	}()

	// Double-buffered flat message arrays sharing the topology's offsets.
	arcs := len(t.adj)
	inbox := make([]Message, arcs)
	next := make([]Message, arcs)
	active := make([]bool, n)
	// dead[v]: terminated in a strictly earlier round; deliveries to dead
	// nodes are dropped and not counted (see SequentialEngine).
	dead := make([]bool, n)
	var newlyDone []int32
	remaining := n
	for v := range active {
		active[v] = true
	}
	var stats Stats
	for r := 1; remaining > 0; r++ {
		if r > maxRounds {
			return stats, fmt.Errorf("local: exceeded MaxRounds=%d", maxRounds)
		}
		// Cancellation point: before round r launches, rounds 1..r-1 stand.
		if cerr := ctl.Err(); cerr != nil {
			return stats, cerr
		}
		stats.Rounds = r
		launched := 0
		for v := 0; v < n; v++ {
			if active[v] {
				lo, hi := t.off[v], t.off[v+1]
				start[v] <- inbox[lo:hi:hi]
				launched++
			}
		}
		for i := range next {
			next[i] = nil
		}
		newlyDone = newlyDone[:0]
		for i := 0; i < launched; i++ {
			res := <-results
			if res.err != nil {
				start[res.v] = nil // goroutine already exited
				return stats, res.err
			}
			if res.done {
				close(start[res.v])
				start[res.v] = nil
				active[res.v] = false
				newlyDone = append(newlyDone, int32(res.v))
				remaining--
			}
			if res.send == nil {
				continue
			}
			stats.Messages += t.deliverBoxed(next, dead, 0, t.off[res.v], res.send, pfs)
		}
		// Drop undeliverable messages to nodes that terminated this round.
		for _, v := range newlyDone {
			for i := t.off[v]; i < t.off[v+1]; i++ {
				if next[i] != nil {
					next[i] = nil
					stats.Messages--
				}
			}
			dead[v] = true
		}
		if fs != nil {
			for _, v := range newlyDone {
				fs.markDown(v)
			}
			for _, v := range fs.boundaryBoxed(r, next, 0, &stats) {
				close(start[v])
				start[v] = nil
				active[v] = false
				dead[v] = true
				remaining--
			}
		}
		inbox, next = next, inbox
	}
	return stats, nil
}

// wordRoundResult is the per-round report of a word-path node goroutine;
// its sends are read from the node's own row of the shared send plane. A
// non-nil err (a recovered node-program panic) ends the run; the reporting
// goroutine has already exited.
type wordRoundResult struct {
	v    int
	done bool
	err  error
}

// runGoroutineWord is the goroutine engine's word-plane fast path. Every
// node goroutine owns one row of a flat send plane for the whole run — the
// per-node send scratch is allocated once and reused across rounds, so
// per-round allocations are zero regardless of n (the boxed path's send
// slices are gone entirely). The coordinator hands each node its inbox row,
// the node runs RoundW against its persistent send row and clears its
// consumed inbox row, and the coordinator scatters the send row into the
// next plane after the result arrives (the channel receive orders the
// row's writes before the scatter).
func runGoroutineWord(t *Topology, nodes []WordNode, maxRounds int, fs *faultState, ctl *RunControl, pf int) (Stats, error) {
	n := t.N()
	arcs := len(t.adj)
	inbox := make([]Word, arcs)
	next := make([]Word, arcs)
	sendPlane := make([]Word, arcs)
	start := make([]chan []Word, n)
	results := make(chan wordRoundResult, n)
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		start[v] = make(chan []Word, 1)
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			node := nodes[v]
			send := sendPlane[t.off[v]:t.off[v+1]:t.off[v+1]]
			r := 0
			//splitlint:zeroalloc
			for recv := range start[v] {
				r++
				fin, rerr := safeRoundW(node, v, r, recv, send)
				if rerr != nil {
					results <- wordRoundResult{v: v, err: rerr}
					return
				}
				// Clear the consumed row; after the swap the new next rows
				// are then already all-NilWord.
				for p := range recv {
					recv[p] = NilWord
				}
				results <- wordRoundResult{v: v, done: fin}
			}
		}(v)
	}
	defer func() {
		for v := 0; v < n; v++ {
			if start[v] != nil {
				close(start[v])
			}
		}
		wg.Wait()
	}()

	active := make([]bool, n)
	dead := make([]bool, n)
	var newlyDone []int32
	remaining := n
	for v := range active {
		active[v] = true
	}
	var stats Stats
	for r := 1; remaining > 0; r++ {
		if r > maxRounds {
			return stats, fmt.Errorf("local: exceeded MaxRounds=%d", maxRounds)
		}
		// Cancellation point: before round r launches, rounds 1..r-1 stand.
		if cerr := ctl.Err(); cerr != nil {
			return stats, cerr
		}
		stats.Rounds = r
		launched := 0
		for v := 0; v < n; v++ {
			if active[v] {
				lo, hi := t.off[v], t.off[v+1]
				start[v] <- inbox[lo:hi:hi]
				launched++
			}
		}
		newlyDone = newlyDone[:0]
		for i := 0; i < launched; i++ {
			res := <-results
			if res.err != nil {
				start[res.v] = nil // goroutine already exited
				return stats, res.err
			}
			if res.done {
				close(start[res.v])
				start[res.v] = nil
				active[res.v] = false
				newlyDone = append(newlyDone, int32(res.v))
				remaining--
			}
			lo, hi := t.off[res.v], t.off[res.v+1]
			stats.Messages += t.deliverWords(next, dead, 0, lo, sendPlane[lo:hi:hi], pf)
		}
		// Drop undeliverable messages to nodes that terminated this round.
		for _, v := range newlyDone {
			for i := t.off[v]; i < t.off[v+1]; i++ {
				if next[i] != NilWord {
					next[i] = NilWord
					stats.Messages--
				}
			}
			dead[v] = true
		}
		if fs != nil {
			for _, v := range newlyDone {
				fs.markDown(v)
			}
			for _, v := range fs.boundaryWord(r, next, 0, &stats) {
				close(start[v])
				start[v] = nil
				active[v] = false
				dead[v] = true
				remaining--
			}
		}
		inbox, next = next, inbox
	}
	return stats, nil
}

// PermutationIDs returns a pseudo-random permutation of 0..n-1 to use as
// Options.IDs, so that experiments do not accidentally rely on IDs matching
// topology indices.
func PermutationIDs(n int, src *prob.Source) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	rng := src.Rand()
	rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return ids
}
