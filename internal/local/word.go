package local

// This file defines the compact word-encoded message plane — the
// zero-allocation fast path of every engine. The paper's algorithms exchange
// only small scalars (colors, trits, bits, priorities), yet the boxed
// Message = any representation heap-allocates every send and fills the
// double-buffered planes with pointers the GC must rescan on every cycle. A
// Word packs the same information into one uint64, so the planes become
// pointer-free flat arrays the GC skips entirely and a steady-state round
// performs no heap allocation at all:
//
//   - programs implement WordNode and write sends into an engine-provided
//     buffer instead of allocating a []Message per round;
//   - engines detect WordNode programs (all nodes of a run must implement
//     it) and switch the planes from []Message to []Word;
//   - the boxed Node path is untouched and remains the fallback for
//     programs with large or structured messages, and WordProgram adapts a
//     WordNode to it so the Engine/Factory interfaces are unchanged.
//
// Encoding convention: a Word is tag bits (top WordTagBits) plus a payload
// (low WordPayloadBits). The all-zero word is the reserved nil/silent
// sentinel, so real messages must be non-zero — MakeWord enforces this by
// requiring a tag in 1..7, which leaves the full payload range (including 0)
// representable. Programs that need several message kinds on one plane (e.g.
// Luby's priority/joined/dropped) dispatch on Tag(); single-kind programs
// just use tag 1.

// Word is a compact message: WordTagBits of tag, WordPayloadBits of payload.
// The zero value is NilWord, the silent sentinel — it is never delivered.
type Word uint64

// NilWord is the reserved "no message" sentinel: a slot holding NilWord in a
// send buffer sends nothing, and in a recv buffer means the port was silent.
const NilWord Word = 0

// Word layout constants.
const (
	// WordTagBits is the width of the tag field (top bits).
	WordTagBits = 3
	// WordPayloadBits is the width of the payload field (low bits).
	WordPayloadBits = 64 - WordTagBits
	// WordPayloadMask masks a value to the payload field's width; programs
	// that transmit raw random draws (e.g. Luby priorities) mask their local
	// copy with it so that sender and receiver compare identical values.
	WordPayloadMask = 1<<WordPayloadBits - 1
)

// MakeWord packs a tag (1..7; tag 0 is reserved so that NilWord stays
// unambiguous) and a payload truncated to WordPayloadBits. Tags outside 1..7
// are reduced to their low WordTagBits; callers own keeping tags in range.
func MakeWord(tag uint8, payload uint64) Word {
	return Word(payload&WordPayloadMask) | Word(tag&(1<<WordTagBits-1))<<WordPayloadBits
}

// Tag returns the tag field.
func (w Word) Tag() uint8 { return uint8(w >> WordPayloadBits) }

// Payload returns the payload field.
func (w Word) Payload() uint64 { return uint64(w) & WordPayloadMask }

// MakeIntWord packs a signed payload (zigzag-encoded, so small negative
// values like the Uncolored = -1 trit cost only low bits) under the given
// tag. The value must fit in WordPayloadBits-1 magnitude bits.
func MakeIntWord(tag uint8, x int) Word {
	return MakeWord(tag, uint64(x)<<1^uint64(x>>63))
}

// Int returns the payload decoded as the signed value MakeIntWord packed.
func (w Word) Int() int {
	p := w.Payload()
	return int(p>>1) ^ -int(p&1)
}

// WordNode is the zero-allocation fast path of the engines: a per-node
// program whose messages are Words. RoundW is called once per synchronous
// round with recv a read-only view of the node's inbox row (NilWord for
// silent ports) and send an all-NilWord buffer of the same length; the
// program writes the words it wants delivered per port (leaving a slot
// NilWord sends nothing) and returns whether it has terminated. Both slices
// are engine-owned and valid only for the duration of the call — a program
// must not retain them across rounds.
//
// Engines use this path only when every node of a run implements WordNode;
// a mixed program falls back to the boxed path, where WordNode programs
// wrapped by WordProgram exchange their Words as boxed messages with
// unchanged meaning. Termination, delivery and Stats semantics are exactly
// those of Node.Round: a delivered message is a non-NilWord slot addressed
// to a node that has not already terminated.
type WordNode interface {
	RoundW(r int, recv []Word, send []Word) (done bool)
}

// WordFunc adapts a closure to WordNode, for programs without per-node
// state. Wrap it with WordProgram to obtain a Node for a Factory.
type WordFunc func(r int, recv []Word, send []Word) bool

// RoundW implements WordNode.
func (f WordFunc) RoundW(r int, recv []Word, send []Word) bool { return f(r, recv, send) }

// Broadcast fills every slot of send with w — the shared broadcast helper
// of the word path. It writes into the caller-provided buffer and allocates
// nothing; programs that broadcast selectively (e.g. only to still-alive
// neighbors) fill the slots themselves.
//
//splitlint:zeroalloc
func Broadcast(send []Word, w Word) {
	for p := range send {
		send[p] = w
	}
}

// WordProgram adapts a WordNode to the boxed Node interface, so factories
// can return word programs without engines or callers changing type: the
// engines detect the WordNode (the adapter forwards RoundW verbatim, so the
// fast path pays nothing for the wrapper), and any boxed-path consumer sees
// an ordinary Node whose messages are Words boxed as `any`.
func WordProgram(w WordNode) Node { return &wordAdapter{w: w} }

// wordAdapter implements both Node and WordNode over an underlying
// WordNode. The boxed Round reuses per-node scratch buffers across rounds,
// so even the fallback path allocates only the messages it must box.
type wordAdapter struct {
	w    WordNode
	recv []Word
	send []Word
}

var (
	_ Node     = (*wordAdapter)(nil)
	_ WordNode = (*wordAdapter)(nil)
)

// RoundW implements WordNode by delegation; engines on the word path call
// this directly and never touch the boxed shim below.
func (a *wordAdapter) RoundW(r int, recv []Word, send []Word) bool {
	return a.w.RoundW(r, recv, send)
}

// Round implements Node: it decodes boxed Words into the scratch recv
// buffer, runs the word program, and boxes the non-nil sends.
func (a *wordAdapter) Round(r int, recv []Message) ([]Message, bool) {
	deg := len(recv)
	if a.recv == nil {
		a.recv = make([]Word, deg)
		a.send = make([]Word, deg)
	}
	for p, m := range recv {
		if m != nil {
			a.recv[p] = m.(Word)
		} else {
			a.recv[p] = NilWord
		}
	}
	done := a.w.RoundW(r, a.recv, a.send)
	var out []Message
	for p, w := range a.send {
		if w != NilWord {
			if out == nil {
				out = make([]Message, deg)
			}
			out[p] = w
			a.send[p] = NilWord
		}
	}
	return out, done
}

// asWordNodes returns the nodes viewed as WordNodes when every one of them
// implements the fast path, and nil otherwise (the engines then use the
// boxed path for the whole run — word and boxed programs never share a
// plane). The check runs before the slice is allocated, so a boxed-path
// run costs no allocation here.
func asWordNodes(nodes []Node) []WordNode {
	for _, n := range nodes {
		if _, ok := n.(WordNode); !ok {
			return nil
		}
	}
	ws := make([]WordNode, len(nodes))
	for i, n := range nodes {
		ws[i] = n.(WordNode)
	}
	return ws
}
