package local

import (
	"fmt"
	"strconv"
	"strings"
)

// This file defines the cache-tuning knobs of the execution engines. All of
// them are observationally invisible — golden traces, Stats and outputs are
// bit-identical with every combination of knobs, which is what makes the
// ablations trustworthy — and exist so regressions can be bisected to one
// mechanism and so the identity suite can force each mechanism on and off.
//
// The four mechanisms (see DESIGN.md §3 "Memory layout and tiling"):
//
//   - sticky shard affinity: the pool engines reuse the previous round's
//     shard carve instead of re-carving (and re-assigning plane rows to
//     other cores) every round; see shardPlan.
//   - scatter prefetch: the deliver[] indirection makes every scatter store
//     a dependent random access; a small look-ahead window touches the
//     target plane lines before the store loop so the misses overlap.
//   - fused broadcast scatter: programs whose sends are whole-row
//     broadcasts skip the send scratch row entirely; see BitBroadcaster.
//   - tiled rounds: when the active residue shatters into components small
//     enough to stay cache-resident, a worker runs several rounds of one
//     tile back-to-back instead of streaming the whole plane per round;
//     see bitTiler.

// Default knob values; zero Tuning fields resolve to these.
const (
	defaultPrefetchWindow = 8
	defaultTileRounds     = 4
	// defaultTileBudget is the tile weight cap in carveShards' 1+deg units.
	// 32k weight ≈ 32k arcs ≈ 16 KB of 4-bit plane rows per buffer — the
	// working set of one tile block stays far inside L2.
	defaultTileBudget = 1 << 15
)

// Tuning carries the cache-tuning knobs of a run. The zero value selects
// every default (all mechanisms on); knobs only change wall-clock time,
// never observable behavior.
type Tuning struct {
	// Prefetch is the scatter look-ahead window in arcs: 0 means the
	// default window, < 0 disables prefetching.
	Prefetch int
	// NoSticky re-carves pool shards every round (the pre-affinity
	// behavior), for ablations.
	NoSticky bool
	// NoFuse disables the fused broadcast scatter fast path, forcing every
	// program through the send scratch row.
	NoFuse bool
	// TileRounds is the number of rounds a tiled block executes
	// back-to-back per tile: 0 means the default, 1 or < 0 disables tiling.
	TileRounds int
	// TileBudget is the per-tile weight cap in 1+deg units: 0 means the
	// default, < 0 disables tiling.
	TileBudget int
}

// prefetchBit resolves the scatter look-ahead window for the packed bit
// planes, where the touch loads are atomic and therefore safe (and clean
// under the race detector) against concurrent atomic-OR deliveries.
func (tn Tuning) prefetchBit() int {
	switch {
	case tn.Prefetch < 0:
		return 0
	case tn.Prefetch == 0:
		return defaultPrefetchWindow
	}
	return tn.Prefetch
}

// prefetchScalar resolves the look-ahead window for the word and boxed
// planes. Their touch loads race benignly with the owning writer's plain
// stores (the loaded value is discarded, and 64-bit aligned loads cannot
// tear), but the race detector rightly flags mixed plain/atomic access —
// so race-instrumented builds turn the scalar windows off.
func (tn Tuning) prefetchScalar() int {
	if raceDetector {
		return 0
	}
	return tn.prefetchBit()
}

// tileRounds resolves the rounds-per-block knob; < 2 means untiled.
func (tn Tuning) tileRounds() int {
	if tn.TileRounds == 0 {
		return defaultTileRounds
	}
	if tn.TileRounds < 2 {
		return 1
	}
	return tn.TileRounds
}

// tileBudget resolves the per-tile weight cap; 0 means untiled.
func (tn Tuning) tileBudget() int64 {
	if tn.TileBudget == 0 {
		return defaultTileBudget
	}
	if tn.TileBudget < 0 {
		return 0
	}
	return int64(tn.TileBudget)
}

// ParseTuning resolves a command-line tuning spec: a comma-separated list
// of "noprefetch", "prefetch=N", "nosticky", "nofuse", "notile", "tile=R"
// and "tilebudget=W" tokens (empty string means all defaults).
func ParseTuning(spec string) (Tuning, error) {
	var tn Tuning
	if spec == "" {
		return tn, nil
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		key, val, hasVal := strings.Cut(tok, "=")
		var err error
		switch {
		case tok == "noprefetch":
			tn.Prefetch = -1
		case tok == "nosticky":
			tn.NoSticky = true
		case tok == "nofuse":
			tn.NoFuse = true
		case tok == "notile":
			tn.TileRounds = -1
		case key == "prefetch" && hasVal:
			if tn.Prefetch, err = parseTuneInt(tok, val, 1); err != nil {
				return Tuning{}, err
			}
		case key == "tile" && hasVal:
			if tn.TileRounds, err = parseTuneInt(tok, val, 2); err != nil {
				return Tuning{}, err
			}
		case key == "tilebudget" && hasVal:
			if tn.TileBudget, err = parseTuneInt(tok, val, 1); err != nil {
				return Tuning{}, err
			}
		default:
			return Tuning{}, fmt.Errorf("local: unknown tuning token %q (have noprefetch, prefetch=N, nosticky, nofuse, notile, tile=R, tilebudget=W)", tok)
		}
	}
	return tn, nil
}

func parseTuneInt(tok, val string, min int) (int, error) {
	x, err := strconv.Atoi(val)
	if err != nil || x < min {
		return 0, fmt.Errorf("local: tuning token %q needs an integer >= %d", tok, min)
	}
	return x, nil
}

// ForceTuning wraps an engine so every run uses the given tuning knobs,
// mirroring ForcePlane: CLIs hand algorithms a tuned engine and the knobs
// follow it wherever it is used. The zero Tuning returns the engine
// unchanged (the defaults are what an unwrapped run uses anyway).
func ForceTuning(e Engine, tn Tuning) Engine {
	if tn == (Tuning{}) {
		return e
	}
	return tuneEngine{e: e, tn: tn}
}

type tuneEngine struct {
	e  Engine
	tn Tuning
}

// Run implements Engine.
func (te tuneEngine) Run(t *Topology, f Factory, opts Options) (Stats, error) {
	opts.Tune = te.tn
	return te.e.Run(t, f, opts)
}
