package local

// This file implements run control: cooperative cancellation and deadlines
// for every execution path, plus panic isolation for node programs.
//
// Control follows the fault layer's zero-cost-when-off discipline: a run
// with no RunControl carries a nil pointer and the hot paths are untouched —
// golden traces and the zero-allocation pins are byte-identical to a build
// without this file. An active control is observed only at round
// boundaries, in the engines' single-threaded coordinator sections, before
// round r executes: a run cancelled between rounds k and k+1 has executed
// rounds 1..k bit-identically to an uncancelled run (the control suite pins
// this across all four paths and all three planes), returns partial Stats
// covering those rounds, and leaves the shared Topology untouched (engines
// never write it, control or not).
//
// Deadlines are carried by the context itself (context.WithTimeout /
// WithDeadline): the engines only poll ctx.Err(), so this package never
// reads the wall clock and stays inside the determinism discipline.
// Cancellation is mapped to ErrCancelled and a deadline expiry to
// ErrDeadline, both wrapping the context cause for errors.Is chains.
//
// Panic isolation converts a panic inside a node program (or its factory)
// into a *PanicError carrying the (node, round) coordinates and the stack:
// a per-trial error in BatchRun — sibling trials run to completion
// bit-identically — and an engine-level error on the sequential, goroutine
// and pool paths. Recovery happens on the cold exit path only; the
// steady-state round loops pay at most one deferred guard per shard.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrCancelled is returned (wrapped) by a run whose RunControl context was
// cancelled; the run's partial Stats cover the rounds that executed.
var ErrCancelled = errors.New("local: run cancelled")

// ErrDeadline is ErrCancelled's deadline twin: the control context expired.
var ErrDeadline = errors.New("local: run deadline exceeded")

// RunControl makes a run cancellable: engines poll the context at every
// round boundary and abort with ErrCancelled/ErrDeadline (wrapping the
// context's error) before executing the next round. nil — or a RunControl
// with a nil context — runs uncontrolled with the hot paths untouched.
//
// The deadline, if any, lives in the context (context.WithTimeout): the
// engines never read the clock themselves, so controlled runs stay inside
// the determinism discipline — a control that never fires perturbs nothing.
type RunControl struct {
	// Ctx is polled at round boundaries; its cancellation ends the run.
	Ctx context.Context
}

// Err returns nil while the run may continue, and the distinguished
// ErrCancelled/ErrDeadline (wrapping the context error) once the control
// context is done. Nil-safe: a nil control never fires.
func (rc *RunControl) Err() error {
	if rc == nil || rc.Ctx == nil {
		return nil
	}
	cerr := rc.Ctx.Err()
	if cerr == nil {
		return nil
	}
	if errors.Is(cerr, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadline, cerr)
	}
	return fmt.Errorf("%w: %w", ErrCancelled, cerr)
}

// ForceControl wraps an engine so every run is governed by the given
// context, exactly as ForcePlane forces a plane and ForceFaults a fault
// plan: harness layers hand algorithms a control-wrapped engine and every
// LOCAL phase they run becomes cancellable. A nil context returns the
// engine unchanged.
func ForceControl(e Engine, ctx context.Context) Engine {
	if ctx == nil {
		return e
	}
	return controlEngine{e: e, ctx: ctx}
}

type controlEngine struct {
	e   Engine
	ctx context.Context
}

// Run implements Engine.
func (ce controlEngine) Run(t *Topology, f Factory, opts Options) (Stats, error) {
	opts.Control = &RunControl{Ctx: ce.ctx}
	return ce.e.Run(t, f, opts)
}

// PanicError is a node-program (or factory) panic converted into an error:
// the run that hit it fails with the panic's coordinates while the process
// — and, in a batch, the sibling trials — keeps running.
type PanicError struct {
	Node  int    // topology node index being executed; -1 outside any node
	Round int    // round being executed; 0 during setup
	Value any    // the recovered panic value
	Stack []byte // stack captured at the recovery site
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("local: node program panicked (node %d, round %d): %v", e.Node, e.Round, e.Value)
}

// newPanicError builds the error on the cold recovery path; capturing the
// stack here (not at panic time) still points into the unwound frames
// because recover runs before they are popped.
func newPanicError(node, round int, v any) *PanicError {
	return &PanicError{Node: node, Round: round, Value: v, Stack: debug.Stack()}
}

// safeRound runs one boxed Round call under a panic guard — the goroutine
// engine's per-node isolation (its unit of execution is one node's round).
// The single defer is open-coded by the compiler, so the guard allocates
// nothing on the non-panicking path.
func safeRound(node Node, v, r int, recv []Message) (send []Message, done bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			send, done, err = nil, false, newPanicError(v, r, p)
		}
	}()
	send, done = node.Round(r, recv)
	return
}

// safeRoundW is safeRound for the word plane. A recovered panic may leave
// the node's send row partially staged; the caller must not scatter it.
func safeRoundW(node WordNode, v, r int, recv, send []Word) (done bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			done, err = false, newPanicError(v, r, p)
		}
	}()
	return node.RoundW(r, recv, send), nil
}

// safeRoundB is safeRound for the bit plane.
func safeRoundB(node BitNode, v, r int, recv, send BitRow) (done bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			done, err = false, newPanicError(v, r, p)
		}
	}()
	return node.RoundB(r, recv, send), nil
}

// buildNodes instantiates the per-node programs, converting a factory panic
// into an engine-level *PanicError (round 0). Shared by the sequential,
// goroutine and pool engines; the batch runner guards its view-sharing
// setup loop separately.
func buildNodes(f Factory, vs []View) (nodes []Node, err error) {
	cur := -1
	defer func() {
		if p := recover(); p != nil {
			nodes, err = nil, newPanicError(cur, 0, p)
		}
	}()
	nodes = make([]Node, len(vs))
	for v := range vs {
		cur = v
		nodes[v] = f(vs[v])
	}
	return nodes, nil
}
