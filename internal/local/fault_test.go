// Fault-injection determinism suite: a fault plan is part of a run's
// specification, so a faulty run must be exactly as reproducible as a clean
// one — identical Stats (including the fault counters) and bit-identical
// outputs across every engine, every forced plane, and every worker count.
// The suite also pins that an inactive plan costs the fast paths nothing.
package local_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// faultConfigs are the fault plans the determinism suite sweeps: each knob
// alone, and all of them together.
func faultConfigs() []struct {
	name string
	fp   local.FaultPlan
} {
	return []struct {
		name string
		fp   local.FaultPlan
	}{
		{"drop", local.FaultPlan{Seed: 11, Drop: 0.2}},
		{"drop+delay", local.FaultPlan{Seed: 11, Drop: 0.3, Delay: 3}},
		{"crash", local.FaultPlan{Seed: 7, Crash: 0.03}},
		{"drop+delay+crash", local.FaultPlan{Seed: 13, Drop: 0.15, Delay: 2, Crash: 0.02}},
	}
}

// outHash folds a run's per-node outputs into one trace hash (FNV-1a), so
// failures print a single word per engine before the per-node diff.
func outHash(out []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range out {
		h = (h ^ x) * 1099511628211
	}
	return h
}

// TestFaultDeterminismAcrossEngines runs the cross-plane bit2 echo program
// under every fault config × engine × forced plane and demands agreement
// with the sequential boxed reference: same Stats (fault counters included),
// same outputs. Fault decisions key on inbox arc slots and topology node
// indices, which mean the same thing on every plane, so even the forced
// planes must agree bit-for-bit. A crashed node never writes its output
// slot, so the output vector also pins the crash schedule.
func TestFaultDeterminismAcrossEngines(t *testing.T) {
	g := graph.RandomGraph(150, 0.05, prob.NewSource(77).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	for _, fc := range faultConfigs() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			t.Parallel()
			var refOut []uint64
			var refStats local.Stats
			first := true
			for _, eng := range allEngines() {
				for _, plane := range planeCases() {
					out := make([]uint64, n)
					fp := fc.fp
					stats, err := eng.e.Run(topo, bit2EchoFactory(8, out), local.Options{
						Source: prob.NewSource(3),
						Plane:  plane,
						Faults: &fp,
					})
					if err != nil {
						t.Fatalf("%s/%v: %v", eng.name, plane, err)
					}
					if first {
						refOut, refStats = out, stats
						first = false
						continue
					}
					if stats != refStats {
						t.Errorf("%s/%v stats %+v != seq/auto stats %+v", eng.name, plane, stats, refStats)
					}
					if outHash(out) != outHash(refOut) {
						for v := range out {
							if out[v] != refOut[v] {
								t.Fatalf("%s/%v disagrees with seq/auto at node %d: %x vs %x",
									eng.name, plane, v, out[v], refOut[v])
							}
						}
					}
				}
			}
			// The advertised knobs must actually fire on this topology.
			if fc.fp.Drop > 0 && fc.fp.Delay == 0 && refStats.Dropped == 0 {
				t.Errorf("drop config injected no drops: %+v", refStats)
			}
			if fc.fp.Delay > 0 && refStats.Delayed == 0 {
				t.Errorf("delay config delayed no messages: %+v", refStats)
			}
			if fc.fp.Crash > 0 && refStats.Crashed == 0 {
				t.Errorf("crash config crashed no nodes: %+v", refStats)
			}
		})
	}
}

// TestFaultDeterminismBoxedAccounting is the chatterbox accounting stress
// under faults: staggered terminations mean many messages target terminated
// or crashed receivers, and every engine (multi-trial batch included) must
// draw drop, redelivery and crash boundaries at exactly the same place.
func TestFaultDeterminismBoxedAccounting(t *testing.T) {
	g := graph.RandomGraph(120, 0.06, prob.NewSource(78).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	for _, fc := range faultConfigs() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			t.Parallel()
			mkOpts := func() local.Options {
				fp := fc.fp
				src := prob.NewSource(9)
				return local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1)), Faults: &fp}
			}
			var refOut []uint64
			var refStats local.Stats
			for i, eng := range allEngines() {
				out := make([]uint64, n)
				stats, err := eng.e.Run(topo, chatterFactory(7, out), mkOpts())
				if err != nil {
					t.Fatalf("%s: %v", eng.name, err)
				}
				if i == 0 {
					refOut, refStats = out, stats
					continue
				}
				if stats != refStats {
					t.Errorf("%s stats %+v != seq stats %+v", eng.name, stats, refStats)
				}
				for v := range out {
					if out[v] != refOut[v] {
						t.Fatalf("%s disagrees with seq at node %d", eng.name, v)
					}
				}
			}
			// A multi-trial batch mixing faulty and clean trials must fault
			// each trial independently: the faulty trial matches the faulty
			// reference, the clean trial matches a clean sequential run.
			cleanRef := make([]uint64, n)
			cleanOpts := mkOpts()
			cleanOpts.Faults = nil
			cleanStats, err := (local.SequentialEngine{}).Run(topo, chatterFactory(7, cleanRef), cleanOpts)
			if err != nil {
				t.Fatal(err)
			}
			faultyOut := make([]uint64, n)
			cleanOut := make([]uint64, n)
			co := mkOpts()
			co.Faults = nil
			stats, errs := local.BatchRun(topo, []local.Trial{
				{Factory: chatterFactory(7, faultyOut), Opts: mkOpts()},
				{Factory: chatterFactory(7, cleanOut), Opts: co},
			}, local.BatchOptions{Workers: 3})
			for s, err := range errs {
				if err != nil {
					t.Fatalf("batch trial %d: %v", s, err)
				}
			}
			if stats[0] != refStats {
				t.Errorf("batch faulty trial stats %+v != %+v", stats[0], refStats)
			}
			if stats[1] != cleanStats {
				t.Errorf("batch clean trial stats %+v != %+v", stats[1], cleanStats)
			}
			if outHash(faultyOut) != outHash(refOut) || outHash(cleanOut) != outHash(cleanRef) {
				t.Errorf("batch outputs diverge from their standalone references")
			}
		})
	}
}

// TestForceFaults pins the engine-wrapper route CLIs use: wrapping is
// equivalent to setting Options.Faults, and an inactive plan returns the
// engine unchanged.
func TestForceFaults(t *testing.T) {
	g := graph.Cycle(40)
	topo := local.NewTopology(g)
	n := g.N()
	fp := local.FaultPlan{Seed: 21, Drop: 0.25}
	wrapped := local.ForceFaults(local.SequentialEngine{}, fp)
	out1 := make([]uint64, n)
	s1, err := wrapped.Run(topo, chatterFactory(5, out1), local.Options{Source: prob.NewSource(2)})
	if err != nil {
		t.Fatal(err)
	}
	out2 := make([]uint64, n)
	s2, err := (local.SequentialEngine{}).Run(topo, chatterFactory(5, out2), local.Options{Source: prob.NewSource(2), Faults: &fp})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || outHash(out1) != outHash(out2) {
		t.Errorf("ForceFaults run differs from Options.Faults run: %+v vs %+v", s1, s2)
	}
	if s1.Dropped == 0 {
		t.Errorf("wrapped run dropped nothing: %+v", s1)
	}
	if e := local.ForceFaults(local.SequentialEngine{}, local.FaultPlan{Seed: 9}); e != (local.SequentialEngine{}) {
		t.Errorf("inactive plan should return the engine unchanged, got %T", e)
	}
}

// TestFaultPlanValidation pins that malformed plans are rejected up front on
// both the active and inactive paths.
func TestFaultPlanValidation(t *testing.T) {
	g := graph.Cycle(8)
	topo := local.NewTopology(g)
	bad := []local.FaultPlan{
		{Drop: -0.1},
		{Drop: 1.5},
		{Crash: 2},
		{Crash: -1},
		{Drop: 0.5, Delay: -1},
	}
	for _, fp := range bad {
		fp := fp
		if _, err := (local.SequentialEngine{}).Run(topo, chatterFactory(3, make([]uint64, g.N())), local.Options{Source: prob.NewSource(1), Faults: &fp}); err == nil {
			t.Errorf("plan %+v was not rejected", fp)
		}
	}
}

// TestFaultsOffZeroAllocs pins that carrying an inactive fault plan (or none)
// leaves the word and bit fast paths at zero allocations per steady-state
// round: the boundary pass must compile down to one nil check when nothing
// is injected.
func TestFaultsOffZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	g := graph.RandomGraph(300, 0.03, prob.NewSource(55).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	const lo, hi = 5, 105
	const slack = 16
	inactive := &local.FaultPlan{Seed: 5}
	paths := []struct {
		name string
		run  func(rounds int)
	}{
		{"seq-word", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.SequentialEngine{}).Run(topo, wordEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3), Faults: inactive}); err != nil {
				t.Fatal(err)
			}
		}},
		{"seq-bit", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.SequentialEngine{}).Run(topo, bitEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3), Faults: inactive}); err != nil {
				t.Fatal(err)
			}
		}},
		{"pool-word", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.WorkerPoolEngine{Workers: 3}).Run(topo, wordEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3), Faults: inactive}); err != nil {
				t.Fatal(err)
			}
		}},
		{"batch-bit", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.BatchEngine{Workers: 3}).Run(topo, bitEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3), Faults: inactive}); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, pt := range paths {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			extra := marginalAllocs(t, lo, hi, pt.run)
			if extra > slack {
				t.Errorf("%s: %d extra allocations for %d extra rounds with faults off, want ≈ 0 (≤ %d)",
					pt.name, extra, hi-lo, slack)
			}
		})
	}
}

// TestFaultSeedIndependence pins that the fault seed is a real axis: two
// fault seeds give different traces, and the same fault seed replayed gives
// the same trace, independent of the algorithmic seed.
func TestFaultSeedIndependence(t *testing.T) {
	g := graph.RandomGraph(100, 0.08, prob.NewSource(79).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	run := func(algoSeed, faultSeed uint64) (local.Stats, uint64) {
		out := make([]uint64, n)
		fp := local.FaultPlan{Seed: faultSeed, Drop: 0.3, Delay: 2, Crash: 0.02}
		stats, err := (local.SequentialEngine{}).Run(topo, chatterFactory(6, out), local.Options{Source: prob.NewSource(algoSeed), Faults: &fp})
		if err != nil {
			t.Fatal(err)
		}
		return stats, outHash(out)
	}
	s1, h1 := run(1, 100)
	s2, h2 := run(1, 100)
	if s1 != s2 || h1 != h2 {
		t.Fatalf("same (algo, fault) seeds diverged: %+v/%x vs %+v/%x", s1, h1, s2, h2)
	}
	_, h3 := run(1, 101)
	if h3 == h1 {
		t.Errorf("different fault seeds produced identical traces (hash %x)", h1)
	}
}
