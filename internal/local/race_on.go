//go:build race

package local

// raceDetector reports whether this build is race-instrumented. The scalar
// scatter-prefetch windows (see Tuning.prefetchScalar) mix atomic touch
// loads with the owners' plain stores — benign by construction, but exactly
// what the detector exists to flag — so they are compiled out of race
// builds via this constant.
const raceDetector = true
