// Tuning-knob tests: the cache mechanisms (sticky shard affinity, scatter
// prefetch, fused broadcast scatter, tiled rounds) must be observationally
// invisible — every knob combination reproduces the checked-in golden
// traces bit-identically on every engine — and the spec parser must accept
// exactly the documented tokens.
package local_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// tuningCombos is the ablation grid: each mechanism forced off alone, all
// off together, and aggressive non-default settings that push the tiling
// and prefetch paths into their edge regimes (tiny tiles force many blocks
// and the R=1 fallback; deep tiles maximize rounds-per-block skew between
// workers). The zero value — all defaults — is what the rest of the suite
// already runs.
func tuningCombos() []struct {
	name string
	tn   local.Tuning
} {
	return []struct {
		name string
		tn   local.Tuning
	}{
		{"all-off", local.Tuning{Prefetch: -1, NoSticky: true, NoFuse: true, TileRounds: -1}},
		{"nosticky", local.Tuning{NoSticky: true}},
		{"nofuse", local.Tuning{NoFuse: true}},
		{"notile", local.Tuning{TileRounds: -1}},
		{"prefetch-1", local.Tuning{Prefetch: 1}},
		{"prefetch-64", local.Tuning{Prefetch: 64}},
		{"tiny-tiles", local.Tuning{TileRounds: 2, TileBudget: 64}},
		{"deep-tiles", local.Tuning{TileRounds: 16, TileBudget: 1 << 20}},
	}
}

// TestTuningAblationGoldenTraces re-runs the golden fixed points under
// every knob combination × engine: the boxed/word trace program and the
// packed bit trace program must reproduce the same checked-in hashes the
// untuned engines pin, which is the bit-identical contract every tuning
// mechanism is built against.
func TestTuningAblationGoldenTraces(t *testing.T) {
	t.Parallel()
	g := graph.RandomSparseGraph(500, 1500, prob.NewSource(77).Rand())
	topo := local.NewTopology(g)
	wantTrace := goldenTraces["sparse500/trace"]
	wantBit := goldenTraces["sparse500/bit-trace"]
	for _, combo := range tuningCombos() {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			t.Parallel()
			for _, eng := range allEngines() {
				tuned := local.ForceTuning(eng.e, combo.tn)
				if got := traceHash(t, g, tuned, 99); got != wantTrace {
					t.Errorf("%s: trace hash %#016x, want golden %#016x", eng.name, got, wantTrace)
				}
				src := prob.NewSource(99)
				ids := local.PermutationIDs(g.N(), src.Fork(1))
				out := make([]uint64, g.N())
				stats, err := tuned.Run(topo, bitTraceFactory(5, out), local.Options{Source: src, IDs: ids})
				if err != nil {
					t.Fatalf("%s: %v", eng.name, err)
				}
				if got := foldRun(out, stats.Rounds, stats.Messages); got != wantBit {
					t.Errorf("%s: bit trace hash %#016x, want golden %#016x", eng.name, got, wantBit)
				}
			}
		})
	}
}

// castTail is the fused-path stress program: a BitBroadcaster with the
// shattering-shaped round structure — most nodes terminate within three
// rounds, a sparse residual keeps broadcasting for a long tail — so runs
// exercise the fused scatter, the sticky clamp under attrition, tiled
// blocks over the shattered residue, and in-tile retirement, all at once.
type castTail struct {
	v    local.View
	acc  uint64
	stop int
	out  []uint64
	idx  int
}

func (n *castTail) CastB(r int, recv local.BitRow) (uint64, bool, bool) {
	n.acc = n.acc*1099511628211 + uint64(recv.CountPresent())<<8 ^ uint64(recv.CountValue(1))
	if r >= n.stop {
		n.out[n.idx] = n.acc
		return uint64(r) & 1, true, true // parting broadcast on the way out
	}
	return (n.acc ^ uint64(r)) & 1, true, false
}

func (n *castTail) RoundB(r int, recv, send local.BitRow) bool {
	v, cast, done := n.CastB(r, recv)
	if cast {
		send.Broadcast(v)
	}
	return done
}

// castTailFactory gives node v a stop round of 2+v%3 rounds, with every
// 37th node surviving to the full tail.
func castTailFactory(tail int, out []uint64) local.Factory {
	idx := 0
	return func(v local.View) local.Node {
		stop := 2 + idx%3
		if idx%37 == 0 {
			stop = tail
		}
		n := &castTail{v: v, stop: stop, out: out, idx: idx}
		idx++
		return local.BitProgram(n)
	}
}

// TestFusedCasterEquivalence runs the fused-path stress program under every
// engine × knob combination and compares outputs and Stats against a
// sequential reference with every mechanism disabled: the fused CastB path,
// the tiled blocks and the prefetched scatters must be indistinguishable
// from the plain scratch-row schedule.
func TestFusedCasterEquivalence(t *testing.T) {
	t.Parallel()
	g := graph.RandomGraph(240, 0.04, prob.NewSource(17).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	const tail = 50
	ref := make([]uint64, n)
	off := local.Tuning{Prefetch: -1, NoSticky: true, NoFuse: true, TileRounds: -1}
	refStats, err := local.ForceTuning(local.SequentialEngine{}, off).Run(
		topo, castTailFactory(tail, ref), local.Options{Source: prob.NewSource(8)})
	if err != nil {
		t.Fatal(err)
	}
	if refStats.Rounds != tail {
		t.Fatalf("reference ran %d rounds, want the %d-round tail", refStats.Rounds, tail)
	}
	combos := append(tuningCombos(), struct {
		name string
		tn   local.Tuning
	}{"defaults", local.Tuning{}})
	for _, combo := range combos {
		combo := combo
		t.Run(combo.name, func(t *testing.T) {
			t.Parallel()
			for _, eng := range allEngines() {
				out := make([]uint64, n)
				stats, err := local.ForceTuning(eng.e, combo.tn).Run(
					topo, castTailFactory(tail, out), local.Options{Source: prob.NewSource(8)})
				if err != nil {
					t.Fatalf("%s: %v", eng.name, err)
				}
				if stats != refStats {
					t.Errorf("%s: stats %+v, want %+v", eng.name, stats, refStats)
				}
				for v := range out {
					if out[v] != ref[v] {
						t.Errorf("%s: node %d output %#x, want %#x", eng.name, v, out[v], ref[v])
						break
					}
				}
			}
		})
	}
}

// TestParseTuning pins the CLI spec grammar.
func TestParseTuning(t *testing.T) {
	t.Parallel()
	good := []struct {
		spec string
		want local.Tuning
	}{
		{"", local.Tuning{}},
		{"noprefetch,nosticky", local.Tuning{Prefetch: -1, NoSticky: true}},
		{"prefetch=3, nofuse", local.Tuning{Prefetch: 3, NoFuse: true}},
		{"tile=2,tilebudget=512", local.Tuning{TileRounds: 2, TileBudget: 512}},
		{"notile", local.Tuning{TileRounds: -1}},
	}
	for _, tc := range good {
		got, err := local.ParseTuning(tc.spec)
		if err != nil {
			t.Errorf("ParseTuning(%q): %v", tc.spec, err)
		} else if got != tc.want {
			t.Errorf("ParseTuning(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	for _, spec := range []string{"bogus", "prefetch=0", "prefetch=x", "tile=1", "tilebudget=", "tile"} {
		if _, err := local.ParseTuning(spec); err == nil {
			t.Errorf("ParseTuning(%q) accepted", spec)
		}
	}
}
