package local

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the batched multi-seed trial runner. Every experiment
// sweep in the evaluation reruns the same topology under many seeds; running
// the trials one engine invocation at a time pays engine setup, per-round
// scheduling, and cache-cold topology traversal once per trial. BatchRun
// executes all trials over one shared Topology in a single pass instead:
//
//   - Message planes are laid out in one flat [S × arcs]Message array per
//     buffer (double-buffered, like the engines): trial s's plane occupies
//     [s·arcs, (s+1)·arcs), and within a plane node v's inbox row uses the
//     topology's own offsets. Directed edge (trial, arc) owns a unique slot,
//     so writes are race-free by construction.
//   - A single worker pool schedules (trial, shard) units: each global round
//     carves every live trial's active set into contiguous shards and the
//     workers drain them from one queue. A trial that terminates (or shrinks
//     to a few active nodes) stops contributing units, so short trials free
//     pool capacity for long ones — exactly the shape of a shattering sweep,
//     where most trials collapse early and a few run long tails.
//
// Trials are observationally independent: per-node randomness is keyed by
// (seed, ID) only, so every trial's message trace, outputs and Stats are
// bit-identical to a standalone SequentialEngine run with the same Options
// (the batch determinism and golden-trace suites pin this).

// Trial is one independent run of a batch: a node-program factory plus its
// per-trial options (randomness source, ID assignment, inputs, round cap).
type Trial struct {
	Factory Factory
	Opts    Options
}

// BatchOptions configure BatchRun.
type BatchOptions struct {
	// Workers sizes the shared worker pool; <= 0 means GOMAXPROCS.
	Workers int
}

// BatchEngine adapts BatchRun to the Engine interface: Run executes a
// single-trial batch. It exists so engine consumers (ablations, ParseEngine,
// the CLI) can route through the batch path without restructuring;
// multi-trial amortization needs BatchRun (or the harness/facade wrappers)
// directly. Like every engine it is bit-identical to SequentialEngine.
type BatchEngine struct {
	// Workers sizes the worker pool; <= 0 means GOMAXPROCS.
	Workers int
}

var _ Engine = BatchEngine{}

// Run implements Engine.
func (e BatchEngine) Run(t *Topology, f Factory, opts Options) (Stats, error) {
	stats, errs := BatchRun(t, []Trial{{Factory: f, Opts: opts}}, BatchOptions{Workers: e.Workers})
	return stats[0], errs[0]
}

// batchMinShard is the smallest (trial, shard) unit the scheduler hands to a
// worker; below this the channel round-trip costs more than the work.
const batchMinShard = 256

// batchTrial is the per-trial state of a batch run.
type batchTrial struct {
	idx       int        // position in the trials slice (and the result slices)
	nodes     []Node
	wnodes    []WordNode // non-nil when every node takes the word fast path
	active    []int32    // indices of still-running nodes; first `remaining` valid
	done      []bool     // terminated (set by workers mid-round)
	dead      []bool     // terminated in a strictly earlier round (coordinator-only writes)
	remaining int
	maxRounds int
	base      int // plane offset of this trial: trial index × arcs
	stats     Stats
	errNode   int // node index of the first per-round error, -1 if none
	err       error
}

// batchUnit is one (trial, shard) work item: shard [lo, hi) of the trial's
// active set, executed at round r. Workers record their message count and
// first error here; the coordinator merges after the round barrier.
type batchUnit struct {
	trial   *batchTrial
	lo, hi  int
	r       int
	msgs    int64
	err     error
	errNode int
}

// BatchRun executes len(trials) independent trials of LOCAL node programs
// over one shared Topology in a single batched pass and returns one Stats
// and one error slot per trial, in trial order. Failed trials (option
// validation, port-count violations, MaxRounds exhaustion) report through
// their error slot without disturbing the other trials.
//
// Each trial is bit-identical to SequentialEngine{}.Run(t, trials[i].Factory,
// trials[i].Opts); batching changes wall-clock time only.
func BatchRun(t *Topology, trials []Trial, opts BatchOptions) ([]Stats, []error) {
	nTrials := len(trials)
	statsOut := make([]Stats, nTrials)
	errsOut := make([]error, nTrials)
	if nTrials == 0 {
		return statsOut, errsOut
	}
	n := t.N()
	arcs := len(t.adj)

	// Per-trial setup. Node programs are created in the coordinator, in node
	// order within each trial, so factories may keep (unsynchronized)
	// per-trial shared state exactly as under the engines. Trials with
	// identity IDs and no inputs — the common sweep shape — share one base
	// view set (NbrIDs and all) and differ only in the random streams
	// attached per trial; views are handed to factories by value, so the
	// sharing is invisible to programs.
	all := make([]batchTrial, nTrials)
	var live []*batchTrial
	var sharedBase []View
	var sharedIDs []int
	for s := range trials {
		tr := &all[s]
		tr.idx = s
		tr.base = s * arcs
		if trials[s].Factory == nil {
			errsOut[s] = fmt.Errorf("local: batch trial %d has a nil Factory", s)
			continue
		}
		opts := trials[s].Opts
		var vs []View
		var ids []int
		if opts.IDs == nil && opts.Inputs == nil {
			if sharedBase == nil {
				var err error
				if sharedBase, sharedIDs, err = baseViews(t, opts); err != nil {
					errsOut[s] = err
					continue
				}
			}
			vs, ids = sharedBase, sharedIDs
		} else {
			var err error
			if vs, ids, err = baseViews(t, opts); err != nil {
				errsOut[s] = err
				continue
			}
		}
		var rngs []*rand.Rand
		if opts.Source != nil {
			rngs = opts.Source.NodeStreams(ids)
		}
		tr.nodes = make([]Node, n)
		for v := 0; v < n; v++ {
			view := vs[v]
			if rngs != nil {
				view.Rand = rngs[v]
			}
			tr.nodes[v] = trials[s].Factory(view)
		}
		tr.wnodes = asWordNodes(tr.nodes)
		tr.active = make([]int32, n)
		for v := range tr.active {
			tr.active[v] = int32(v)
		}
		tr.done = make([]bool, n)
		tr.dead = make([]bool, n)
		tr.remaining = n
		tr.maxRounds = trials[s].Opts.MaxRounds
		if tr.maxRounds <= 0 {
			tr.maxRounds = defaultMaxRounds
		}
		if tr.remaining > 0 {
			live = append(live, tr)
		}
	}
	if len(live) == 0 {
		return statsOut, errsOut
	}

	// One flat plane pair per message representation, allocated once and
	// reused across rounds: word trials share pointer-free [S×arcs]Word
	// planes the GC never scans, boxed trials share [S×arcs]Message planes,
	// and a plane pair is only allocated when a trial of its kind exists
	// (both trials of a kind and trials of the other kind use the same base
	// offsets, so the layouts are interchangeable). Rows are cleared by
	// their owners right after consumption and at termination, so nothing
	// is re-zeroed wholesale.
	var inbox, next []Message
	var winbox, wnext []Word
	for _, tr := range live {
		if tr.wnodes != nil {
			if winbox == nil {
				winbox = make([]Word, nTrials*arcs)
				wnext = make([]Word, nTrials*arcs)
			}
		} else if inbox == nil {
			inbox = make([]Message, nTrials*arcs)
			next = make([]Message, nTrials*arcs)
		}
	}

	nw := opts.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw < 1 {
		nw = 1
	}
	// Workers claim (trial, shard) units off the round's unit list with an
	// atomic cursor: one wakeup per worker per global round, not one channel
	// operation per unit. Merging S trials into one round barrier is the
	// whole point of the batch — S per-trial pool runs pay S barriers per
	// round-equivalent, this pays one. With a single worker the coordinator
	// runs the units inline and no goroutines exist at all.
	var unitBuf []batchUnit
	var cursor atomic.Int64
	var start []chan struct{}
	var barrier sync.WaitGroup
	var lifetime sync.WaitGroup
	if nw > 1 {
		start = make([]chan struct{}, nw)
		for w := 0; w < nw; w++ {
			start[w] = make(chan struct{}, 1)
			lifetime.Add(1)
			go func(w int) {
				defer lifetime.Done()
				// Per-worker word send scratch, reused for every node of
				// every unit the worker ever runs.
				var wsend []Word
				if winbox != nil {
					wsend = make([]Word, t.maxDeg)
				}
				for range start[w] {
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(unitBuf) {
							break
						}
						runBatchUnit(t, inbox, next, winbox, wnext, wsend, &unitBuf[i])
					}
					barrier.Done()
				}
			}(w)
		}
		defer func() {
			for w := 0; w < nw; w++ {
				close(start[w])
			}
			lifetime.Wait()
		}()
	}
	var inlineSend []Word
	if nw == 1 && winbox != nil {
		inlineSend = make([]Word, t.maxDeg)
	}
	runRound := func() {
		if nw == 1 {
			for i := range unitBuf {
				runBatchUnit(t, inbox, next, winbox, wnext, inlineSend, &unitBuf[i])
			}
			return
		}
		cursor.Store(0)
		wake := nw
		if wake > len(unitBuf) {
			wake = len(unitBuf)
		}
		barrier.Add(wake)
		for w := 0; w < wake; w++ {
			start[w] <- struct{}{}
		}
		barrier.Wait()
	}

	// clearTrial nils a retired trial's rows in whichever plane pair it
	// uses, so no message (or stale word) outlives the trial within a
	// long-running batch.
	clearTrial := func(tr *batchTrial) {
		if tr.wnodes != nil {
			clearWordPlaneRegion(winbox, wnext, tr.base, arcs)
		} else {
			clearPlaneRegion(inbox, next, tr.base, arcs)
		}
	}

	for r := 1; len(live) > 0; r++ {
		// Retire trials whose round cap is exhausted before running the
		// round, exactly as the engines do.
		keepLive := live[:0]
		for _, tr := range live {
			if r > tr.maxRounds {
				s := tr.idx
				errsOut[s] = fmt.Errorf("local: exceeded MaxRounds=%d", tr.maxRounds)
				statsOut[s] = tr.stats
				clearTrial(tr)
				continue
			}
			tr.stats.Rounds = r
			tr.errNode = -1
			tr.err = nil
			keepLive = append(keepLive, tr)
		}
		live = keepLive
		if len(live) == 0 {
			break
		}

		// Carve every live trial's active set into (trial, shard) units. The
		// shard size targets a few units per worker across the whole batch,
		// so a trial with a long tail still splits across the pool while
		// near-dead trials cost one small unit each. Units are emitted
		// shard-major (shard k of every trial, then shard k+1): trials
		// executing the same topology region back-to-back keep its CSR rows
		// hot, and on a multi-worker pool the trials' heavy shards spread
		// across workers instead of clumping per trial.
		total := 0
		for _, tr := range live {
			total += tr.remaining
		}
		shardSize := total / (nw * 4)
		if shardSize < batchMinShard {
			shardSize = batchMinShard
		}
		unitBuf = unitBuf[:0]
		for lo := 0; ; lo += shardSize {
			emitted := false
			for _, tr := range live {
				if lo >= tr.remaining {
					continue
				}
				hi := lo + shardSize
				if hi > tr.remaining {
					hi = tr.remaining
				}
				unitBuf = append(unitBuf, batchUnit{trial: tr, lo: lo, hi: hi, r: r})
				emitted = true
			}
			if !emitted {
				break
			}
		}
		runRound()

		// Merge unit results deterministically: message counts sum (order
		// cannot matter) and the reported error is the one at the smallest
		// node index, matching WorkerPoolEngine.
		for i := range unitBuf {
			u := &unitBuf[i]
			tr := u.trial
			tr.stats.Messages += u.msgs
			if u.err != nil && (tr.errNode < 0 || u.errNode < tr.errNode) {
				tr.err = u.err
				tr.errNode = u.errNode
			}
		}

		// Per-trial compaction: drop undeliverable messages to nodes that
		// terminated this round, clear their rows, and retire finished or
		// failed trials so they stop contributing units.
		keepLive = live[:0]
		for _, tr := range live {
			s := tr.idx
			if tr.err != nil {
				errsOut[s] = tr.err
				statsOut[s] = tr.stats
				clearTrial(tr)
				continue
			}
			keep := tr.active[:0]
			for _, v := range tr.active[:tr.remaining] {
				if !tr.done[v] {
					keep = append(keep, v)
					continue
				}
				if tr.wnodes != nil {
					row := wnext[tr.base+int(t.off[v]) : tr.base+int(t.off[v+1])]
					for i := range row {
						if row[i] != NilWord {
							row[i] = NilWord
							tr.stats.Messages--
						}
					}
				} else {
					row := next[tr.base+int(t.off[v]) : tr.base+int(t.off[v+1])]
					for i := range row {
						if row[i] != nil {
							row[i] = nil
							tr.stats.Messages--
						}
					}
				}
				tr.dead[v] = true
			}
			tr.remaining = len(keep)
			if tr.remaining == 0 {
				statsOut[s] = tr.stats
				continue
			}
			keepLive = append(keepLive, tr)
		}
		live = keepLive
		inbox, next = next, inbox
		winbox, wnext = wnext, winbox
	}
	return statsOut, errsOut
}

// runBatchUnit executes one (trial, shard) unit: it runs Round for every
// node of the shard against the trial's inbox plane, delivers sends into the
// trial's next plane (dropping messages to dead nodes, which are never
// consumed), and clears each consumed inbox row. All mutated state is owned
// by this unit for the duration of the round. Word trials route to the
// zero-allocation word-plane variant; wsend is the calling worker's reused
// send scratch (nil when no word trial exists in the batch).
func runBatchUnit(t *Topology, inbox, next []Message, winbox, wnext, wsend []Word, u *batchUnit) {
	if u.trial.wnodes != nil {
		runBatchUnitWord(t, winbox, wnext, wsend, u)
		return
	}
	tr := u.trial
	msgs := int64(0)
	for i := u.lo; i < u.hi; i++ {
		v := int(tr.active[i])
		lo, hi := int(t.off[v]), int(t.off[v+1])
		recv := inbox[tr.base+lo : tr.base+hi : tr.base+hi]
		send, fin := tr.nodes[v].Round(u.r, recv)
		if fin {
			tr.done[v] = true
		}
		if send != nil {
			if len(send) != hi-lo {
				u.err = fmt.Errorf("local: node %d sent %d messages on %d ports", v, len(send), hi-lo)
				u.errNode = v
				break
			}
			for p, msg := range send {
				if msg != nil {
					arc := int32(lo + p)
					w := t.adj[arc]
					if tr.dead[w] {
						continue
					}
					next[tr.base+int(t.off[w]+t.portBack[arc])] = msg
					msgs++
				}
			}
		}
		for p := range recv {
			recv[p] = nil
		}
	}
	u.msgs = msgs
}

// runBatchUnitWord is runBatchUnit for a word trial: same ownership and
// delivery semantics over the pointer-free word planes, with the worker's
// reused send scratch instead of per-node send slices. The engine provides
// the (fixed-size) send buffer, so the port-count violation of the boxed
// path cannot occur here.
func runBatchUnitWord(t *Topology, inbox, next, wsend []Word, u *batchUnit) {
	tr := u.trial
	msgs := int64(0)
	for i := u.lo; i < u.hi; i++ {
		v := int(tr.active[i])
		lo, hi := int(t.off[v]), int(t.off[v+1])
		recv := inbox[tr.base+lo : tr.base+hi : tr.base+hi]
		send := wsend[:hi-lo]
		if tr.wnodes[v].RoundW(u.r, recv, send) {
			tr.done[v] = true
		}
		for p, msg := range send {
			if msg != NilWord {
				arc := int32(lo + p)
				if w := t.adj[arc]; !tr.dead[w] {
					next[tr.base+int(t.off[w]+t.portBack[arc])] = msg
					msgs++
				}
				send[p] = NilWord
			}
		}
		for p := range recv {
			recv[p] = NilWord
		}
	}
	u.msgs = msgs
}

// clearPlaneRegion nils a retired trial's rows in both planes so no Message
// pointers outlive the trial within a long-running batch.
func clearPlaneRegion(inbox, next []Message, base, arcs int) {
	for i := base; i < base+arcs; i++ {
		inbox[i] = nil
		next[i] = nil
	}
}

// clearWordPlaneRegion is clearPlaneRegion for the word planes.
func clearWordPlaneRegion(inbox, next []Word, base, arcs int) {
	for i := base; i < base+arcs; i++ {
		inbox[i] = NilWord
		next[i] = NilWord
	}
}
