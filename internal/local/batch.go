package local

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the batched multi-seed trial runner. Every experiment
// sweep in the evaluation reruns the same topology under many seeds; running
// the trials one engine invocation at a time pays engine setup, per-round
// scheduling, and cache-cold topology traversal once per trial. BatchRun
// executes all trials over one shared Topology in a single pass instead:
//
//   - Message planes are laid out per representation: boxed trials share one
//     flat [S × arcs]Message array per buffer (double-buffered, like the
//     engines), word trials share [S × arcs]Word planes, and bit trials
//     share packed bit planes with word-aligned per-trial strides (so no
//     two trials share a plane word). Within a trial's region node v's
//     inbox row uses the topology's own offsets. Directed edge (trial, arc)
//     owns a unique slot, so writes are race-free by construction on the
//     boxed/word planes; the bit planes use the atomic discipline of
//     bit.go for words shared between adjacent rows.
//   - A single worker pool schedules (trial, shard) units: each global round
//     carves every live trial's active set into contiguous arc-balanced
//     shards (carveByWeight; a node weighs 1 + deg, so a trial's hub-heavy
//     region splits across workers instead of serializing one) and the
//     workers drain them from one queue. A trial that terminates (or
//     shrinks to a few active nodes) stops contributing units, so short
//     trials free pool capacity for long ones — exactly the shape of a
//     shattering sweep, where most trials collapse early and a few run
//     long tails.
//
// Trials are observationally independent: per-node randomness is keyed by
// (seed, ID) only, so every trial's message trace, outputs and Stats are
// bit-identical to a standalone SequentialEngine run with the same Options
// (the batch determinism and golden-trace suites pin this).

// Trial is one independent run of a batch: a node-program factory plus its
// per-trial options (randomness source, ID assignment, inputs, round cap,
// forced plane).
type Trial struct {
	Factory Factory
	Opts    Options
}

// BatchOptions configure BatchRun.
type BatchOptions struct {
	// Workers sizes the shared worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Control cancels the whole batch: at every round boundary each still-
	// live trial is retired with ErrCancelled/ErrDeadline and its partial
	// Stats. Per-trial control lives in each Trial's Options.Control; both
	// levels compose (the batch-level control fires first).
	Control *RunControl
}

// BatchEngine adapts BatchRun to the Engine interface: Run executes a
// single-trial batch. It exists so engine consumers (ablations, ParseEngine,
// the CLI) can route through the batch path without restructuring;
// multi-trial amortization needs BatchRun (or the harness/facade wrappers)
// directly. Like every engine it is bit-identical to SequentialEngine.
type BatchEngine struct {
	// Workers sizes the worker pool; <= 0 means GOMAXPROCS.
	Workers int
}

var _ Engine = BatchEngine{}

// Run implements Engine.
func (e BatchEngine) Run(t *Topology, f Factory, opts Options) (Stats, error) {
	stats, errs := BatchRun(t, []Trial{{Factory: f, Opts: opts}}, BatchOptions{Workers: e.Workers})
	return stats[0], errs[0]
}

// batchMinShard is the smallest (trial, shard) unit weight — in the 1+deg
// units of carveByWeight — the scheduler hands to a worker; below this the
// wakeup costs more than the work.
const batchMinShard = 1024

// batchTrial is the per-trial state of a batch run.
type batchTrial struct {
	idx       int // position in the trials slice (and the result slices)
	nodes     []Node
	wnodes    []WordNode // non-nil when the trial takes the word fast path
	bnodes    []BitNode  // non-nil when the trial takes the bit fast path
	active    []int32    // indices of still-running nodes; first `remaining` valid
	done      []bool     // terminated (set by workers mid-round)
	dead      []bool     // terminated in a strictly earlier round (coordinator-only writes)
	remaining int
	weight    int64   // active-set weight (1+deg per node) for unit carving
	bounds    []int32 // per-round shard boundaries, reused
	// carvedRemaining/carvedUnit memoize the carve above: while no node of
	// the trial terminated (remaining unchanged means the active prefix is
	// bit-identical) and the batch-wide unit target has not drifted past 2×
	// in either direction, the previous bounds are reused as-is.
	carvedRemaining int
	carvedUnit      int64
	pf              int              // scatter look-ahead window (see Tuning)
	wholesale       bool             // bit trial: coordinator memclrs the consumed region this round
	bdead           deadDeliver      // bit trial: delivery-table view with dead arcs marked
	bdeliver        []int32          // bit trial: bdead.table(), refreshed between rounds
	bcasters        []BitBroadcaster // bit trial: per-node fused broadcast paths (nil when unfused)
	faults    *faultState // nil when the trial injects no faults
	ctl       *RunControl // nil when the trial is uncontrolled
	maxRounds int
	base      int // plane offset of this trial in the boxed/word planes: idx × arcs
	stats     Stats
	errNode   int // node index of the first per-round error, -1 if none
	err       error
}

// batchPlanes bundles the double-buffered plane pairs of one batch run, one
// pair per message representation actually present; a pair is only
// allocated when a trial of its kind exists. Trial s's region is
// [s·arcs, (s+1)·arcs) of the boxed/word planes, and words
// [s·stride, (s+1)·stride) of each packed bit sub-plane.
type batchPlanes struct {
	inbox, next   []Message
	winbox, wnext []Word
	binbox, bnext bitPlane
	laneStride    int // words per trial in the packed bit planes
}

// swap flips every double buffer at a round boundary.
func (pl *batchPlanes) swap() {
	pl.inbox, pl.next = pl.next, pl.inbox
	pl.winbox, pl.wnext = pl.wnext, pl.winbox
	pl.binbox, pl.bnext = pl.bnext, pl.binbox
}

// bitTrial returns trial s's regions of the bit planes as standalone
// planes; arc indices within them start at 0, exactly as under the engines,
// and the word-aligned stride means no plane word is shared across trials.
func (pl *batchPlanes) bitTrial(s int) (inbox, next bitPlane) {
	st := pl.laneStride
	inbox = bitPlane{lanes: pl.binbox.lanes[s*st : (s+1)*st], width: pl.binbox.width}
	next = bitPlane{lanes: pl.bnext.lanes[s*st : (s+1)*st], width: pl.bnext.width}
	return
}

// batchUnit is one (trial, shard) work item: shard [lo, hi) of the trial's
// active set, executed at round r. Workers record their message count and
// first error here; the coordinator merges after the round barrier.
type batchUnit struct {
	trial   *batchTrial
	lo, hi  int
	r       int
	msgs    int64
	err     error
	errNode int
}

// BatchRun executes len(trials) independent trials of LOCAL node programs
// over one shared Topology in a single batched pass and returns one Stats
// and one error slot per trial, in trial order. Failed trials (option
// validation, port-count violations, MaxRounds exhaustion, a forced plane
// the programs cannot take) report through their error slot without
// disturbing the other trials.
//
// Each trial is bit-identical to SequentialEngine{}.Run(t, trials[i].Factory,
// trials[i].Opts); batching changes wall-clock time only.
func BatchRun(t *Topology, trials []Trial, opts BatchOptions) ([]Stats, []error) {
	nTrials := len(trials)
	statsOut := make([]Stats, nTrials)
	errsOut := make([]error, nTrials)
	if nTrials == 0 {
		return statsOut, errsOut
	}
	n := t.N()
	arcs := len(t.adj)

	// Per-trial setup. Node programs are created in the coordinator, in node
	// order within each trial, so factories may keep (unsynchronized)
	// per-trial shared state exactly as under the engines. Trials with
	// identity IDs and no inputs — the common sweep shape — share one base
	// view set (NbrIDs and all) and differ only in the random streams
	// attached per trial; views are handed to factories by value, so the
	// sharing is invisible to programs.
	all := make([]batchTrial, nTrials)
	var live []*batchTrial
	var sharedBase []View
	var sharedIDs []int
	bitWidth := 0
	for s := range trials {
		tr := &all[s]
		tr.idx = s
		tr.base = s * arcs
		if trials[s].Factory == nil {
			errsOut[s] = fmt.Errorf("local: batch trial %d has a nil Factory", s)
			continue
		}
		opts := trials[s].Opts
		var vs []View
		var ids []int
		if opts.IDs == nil && opts.Inputs == nil {
			if sharedBase == nil {
				var err error
				if sharedBase, sharedIDs, err = baseViews(t, opts); err != nil {
					errsOut[s] = err
					continue
				}
			}
			vs, ids = sharedBase, sharedIDs
		} else {
			var err error
			if vs, ids, err = baseViews(t, opts); err != nil {
				errsOut[s] = err
				continue
			}
		}
		var rngs []*rand.Rand
		if opts.Source != nil {
			rngs = opts.Source.NodeStreams(ids)
		}
		if tr.nodes, errsOut[s] = buildTrialNodes(trials[s].Factory, vs, rngs); errsOut[s] != nil {
			continue
		}
		var bw int
		var perr error
		tr.bnodes, bw, tr.wnodes, perr = planeNodes(tr.nodes, opts.Plane)
		if perr != nil {
			errsOut[s] = perr
			continue
		}
		if bw > bitWidth {
			bitWidth = bw
		}
		if tr.bnodes != nil {
			tr.bdead = deadDeliver{t: t}
			tr.bdeliver = t.deliver
			if !opts.Tune.NoFuse {
				tr.bcasters = asBitCasters(tr.bnodes)
			}
			tr.pf = opts.Tune.prefetchBit()
		} else {
			tr.pf = opts.Tune.prefetchScalar()
		}
		tr.carvedRemaining = -1
		if tr.faults, perr = newFaultState(t, opts.Faults); perr != nil {
			errsOut[s] = perr
			continue
		}
		tr.ctl = opts.Control
		tr.active = make([]int32, n)
		for v := range tr.active {
			tr.active[v] = int32(v)
		}
		tr.done = make([]bool, n)
		tr.dead = make([]bool, n)
		tr.remaining = n
		tr.weight = int64(n + arcs)
		tr.maxRounds = trials[s].Opts.MaxRounds
		if tr.maxRounds <= 0 {
			tr.maxRounds = defaultMaxRounds
		}
		if tr.remaining > 0 {
			live = append(live, tr)
		}
	}
	if len(live) == 0 {
		return statsOut, errsOut
	}

	// One flat plane pair per message representation actually present,
	// allocated once and reused across rounds: bit trials share packed
	// planes (a mixed-width batch lays every bit trial out at the widest
	// lane — values are unaffected, only the stride grows), word trials
	// share pointer-free [S×arcs]Word planes the GC never scans, and boxed
	// trials share [S×arcs]Message planes. Rows are cleared by their owners
	// right after consumption and at termination, so nothing is re-zeroed
	// wholesale.
	var pl batchPlanes
	for _, tr := range live {
		switch {
		case tr.bnodes != nil:
			if pl.binbox.lanes == nil {
				pl.laneStride = planeWords(arcs, bitWidth)
				pl.binbox = bitPlane{lanes: make([]uint64, nTrials*pl.laneStride), width: uint32(bitWidth)}
				pl.bnext = bitPlane{lanes: make([]uint64, nTrials*pl.laneStride), width: uint32(bitWidth)}
			}
		case tr.wnodes != nil:
			if pl.winbox == nil {
				pl.winbox = make([]Word, nTrials*arcs)
				pl.wnext = make([]Word, nTrials*arcs)
			}
		default:
			if pl.inbox == nil {
				pl.inbox = make([]Message, nTrials*arcs)
				pl.next = make([]Message, nTrials*arcs)
			}
		}
	}

	nw := opts.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw < 1 {
		nw = 1
	}
	// Workers claim (trial, shard) units off the round's unit list with an
	// atomic cursor: one wakeup per worker per global round, not one channel
	// operation per unit. Merging S trials into one round barrier is the
	// whole point of the batch — S per-trial pool runs pay S barriers per
	// round-equivalent, this pays one. With a single worker the coordinator
	// runs the units inline and no goroutines exist at all.
	var unitBuf []batchUnit
	var cursor atomic.Int64
	var start []chan struct{}
	var barrier sync.WaitGroup
	var lifetime sync.WaitGroup
	// Snapshot which plane kinds exist before spawning: the workers must not
	// read pl's fields at startup, because a worker that is never woken (fewer
	// units than workers) can still be starting while the coordinator swaps
	// the planes at a round boundary.
	hasWord := pl.winbox != nil
	hasBit := pl.binbox.lanes != nil
	if nw > 1 {
		start = make([]chan struct{}, nw)
		for w := 0; w < nw; w++ {
			start[w] = make(chan struct{}, 1)
			lifetime.Add(1)
			go func(w int) {
				defer lifetime.Done()
				// Per-worker send scratch, reused for every node of every
				// unit the worker ever runs.
				var wsend []Word
				var bsend BitRow
				if hasWord {
					wsend = make([]Word, t.maxDeg)
				}
				if hasBit {
					bsend = newBitScratch(t.maxDeg, bitWidth)
				}
				for range start[w] {
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(unitBuf) {
							break
						}
						runBatchUnit(t, &pl, wsend, bsend, &unitBuf[i], true)
					}
					barrier.Done()
				}
			}(w)
		}
		defer func() {
			for w := 0; w < nw; w++ {
				close(start[w])
			}
			lifetime.Wait()
		}()
	}
	var inlineSend []Word
	var inlineBSend BitRow
	if nw == 1 {
		if pl.winbox != nil {
			inlineSend = make([]Word, t.maxDeg)
		}
		if pl.binbox.lanes != nil {
			inlineBSend = newBitScratch(t.maxDeg, bitWidth)
		}
	}
	runRound := func() {
		if nw == 1 {
			// A single inline worker owns every plane word mid-round, so the
			// bit path skips its atomics (see WorkerPoolEngine.runBit).
			for i := range unitBuf {
				runBatchUnit(t, &pl, inlineSend, inlineBSend, &unitBuf[i], false)
			}
			return
		}
		cursor.Store(0)
		wake := nw
		if wake > len(unitBuf) {
			wake = len(unitBuf)
		}
		barrier.Add(wake)
		for w := 0; w < wake; w++ {
			start[w] <- struct{}{}
		}
		barrier.Wait()
	}

	// clearTrial zeroes a retired trial's rows in whichever plane pair it
	// uses, so no message (or stale word or bit) outlives the trial within a
	// long-running batch.
	clearTrial := func(tr *batchTrial) {
		switch {
		case tr.bnodes != nil:
			bi, bn := pl.bitTrial(tr.idx)
			bi.clearAll()
			bn.clearAll()
		case tr.wnodes != nil:
			clearWordPlaneRegion(pl.winbox, pl.wnext, tr.base, arcs)
		default:
			clearPlaneRegion(pl.inbox, pl.next, tr.base, arcs)
		}
	}

	for r := 1; len(live) > 0; r++ {
		// Retire trials whose round cap is exhausted — or whose control (the
		// batch-level one, or the trial's own) has fired — before running
		// the round, exactly as the engines do: a cancelled trial keeps the
		// Stats of the rounds that executed, and the rounds that ran are
		// bit-identical to an uncancelled run.
		gerr := opts.Control.Err()
		keepLive := live[:0]
		for _, tr := range live {
			cerr := gerr
			if cerr == nil {
				cerr = tr.ctl.Err()
			}
			if cerr != nil {
				s := tr.idx
				errsOut[s] = cerr
				statsOut[s] = tr.stats
				clearTrial(tr)
				continue
			}
			if r > tr.maxRounds {
				s := tr.idx
				errsOut[s] = maxRoundsErr(tr.maxRounds)
				statsOut[s] = tr.stats
				clearTrial(tr)
				continue
			}
			tr.stats.Rounds = r
			tr.errNode = -1
			tr.err = nil
			keepLive = append(keepLive, tr)
		}
		live = keepLive
		if len(live) == 0 {
			break
		}

		// Carve every live trial's active set into (trial, shard) units of
		// roughly equal arc weight. The unit weight targets a few units per
		// worker across the whole batch, so a trial with a long tail still
		// splits across the pool while near-dead trials cost one small unit
		// each. Units are emitted shard-major (shard k of every trial, then
		// shard k+1): trials executing the same topology region
		// back-to-back keep its CSR rows hot, and on a multi-worker pool
		// the trials' heavy shards spread across workers instead of
		// clumping per trial.
		totalWeight := int64(0)
		for _, tr := range live {
			totalWeight += tr.weight
		}
		unitWeight := totalWeight / int64(nw*4)
		if unitWeight < batchMinShard {
			unitWeight = batchMinShard
		}
		maxUnits := 0
		for _, tr := range live {
			if tr.bnodes != nil {
				tr.wholesale = clearWholesale(tr.weight, n, arcs)
				tr.bdeliver = tr.bdead.table()
			}
			// Sticky unit carve: reuse the previous bounds while the trial's
			// active prefix is unchanged and the batch-wide unit target has
			// not drifted 2× (trials retiring shifts totalWeight, which would
			// otherwise skew unit granularity without bound).
			if tr.remaining != tr.carvedRemaining || unitWeight > 2*tr.carvedUnit || unitWeight*2 < tr.carvedUnit {
				tr.bounds = t.carveByWeight(tr.active, tr.remaining, unitWeight, tr.bounds)
				tr.carvedRemaining = tr.remaining
				tr.carvedUnit = unitWeight
			}
			if u := len(tr.bounds) - 1; u > maxUnits {
				maxUnits = u
			}
		}
		unitBuf = unitBuf[:0]
		for k := 0; k < maxUnits; k++ {
			for _, tr := range live {
				if k+1 < len(tr.bounds) {
					unitBuf = append(unitBuf, batchUnit{trial: tr, lo: int(tr.bounds[k]), hi: int(tr.bounds[k+1]), r: r})
				}
			}
		}
		runRound()

		// Wholesale-clearing bit trials get their consumed region memclr'd
		// here, between the barrier and the swap (see runSeqBit).
		for _, tr := range live {
			if tr.bnodes != nil && tr.wholesale {
				bi, _ := pl.bitTrial(tr.idx)
				bi.clearAll()
			}
		}

		// Merge unit results deterministically: message counts sum (order
		// cannot matter) and the reported error is the one at the smallest
		// node index, matching WorkerPoolEngine.
		for i := range unitBuf {
			u := &unitBuf[i]
			tr := u.trial
			tr.stats.Messages += u.msgs
			if u.err != nil && (tr.errNode < 0 || u.errNode < tr.errNode) {
				tr.err = u.err
				tr.errNode = u.errNode
			}
		}

		// Per-trial compaction: drop undeliverable messages to nodes that
		// terminated this round, clear their rows, and retire finished or
		// failed trials so they stop contributing units.
		keepLive = live[:0]
		for _, tr := range live {
			s := tr.idx
			if tr.err != nil {
				errsOut[s] = tr.err
				statsOut[s] = tr.stats
				clearTrial(tr)
				continue
			}
			keep := tr.active[:0]
			for _, v := range tr.active[:tr.remaining] {
				if !tr.done[v] {
					keep = append(keep, v)
					continue
				}
				lo, hi := t.off[v], t.off[v+1]
				switch {
				case tr.bnodes != nil:
					_, bn := pl.bitTrial(tr.idx)
					tr.stats.Messages -= bn.countRow(lo, hi)
					bn.clearRow(lo, hi, false)
					tr.bdead.kill(v)
				case tr.wnodes != nil:
					row := pl.wnext[tr.base+int(lo) : tr.base+int(hi)]
					for i := range row {
						if row[i] != NilWord {
							row[i] = NilWord
							tr.stats.Messages--
						}
					}
				default:
					row := pl.next[tr.base+int(lo) : tr.base+int(hi)]
					for i := range row {
						if row[i] != nil {
							row[i] = nil
							tr.stats.Messages--
						}
					}
				}
				tr.weight -= 1 + int64(hi-lo)
				tr.dead[v] = true
				if tr.faults != nil {
					tr.faults.markDown(v)
				}
			}
			tr.remaining = len(keep)
			if tr.faults != nil {
				var crashed []int32
				switch {
				case tr.bnodes != nil:
					_, bn := pl.bitTrial(tr.idx)
					crashed = tr.faults.boundaryBit(r, bn, &tr.stats)
				case tr.wnodes != nil:
					crashed = tr.faults.boundaryWord(r, pl.wnext, tr.base, &tr.stats)
				default:
					crashed = tr.faults.boundaryBoxed(r, pl.next, tr.base, &tr.stats)
				}
				for _, v := range crashed {
					tr.done[v] = true
					tr.dead[v] = true
					if tr.bnodes != nil {
						tr.bdead.kill(v)
					}
					tr.weight -= 1 + int64(t.off[v+1]-t.off[v])
				}
				if len(crashed) > 0 {
					keep = tr.active[:0]
					for _, v := range tr.active[:tr.remaining] {
						if !tr.done[v] {
							keep = append(keep, v)
						}
					}
					tr.remaining = len(keep)
				}
			}
			if tr.remaining == 0 {
				statsOut[s] = tr.stats
				continue
			}
			keepLive = append(keepLive, tr)
		}
		live = keepLive
		pl.swap()
	}
	return statsOut, errsOut
}

// runBatchUnit executes one (trial, shard) unit: it runs Round for every
// node of the shard against the trial's inbox plane, delivers sends into the
// trial's next plane (dropping messages to dead nodes, which are never
// consumed), and clears each consumed inbox row. All mutated state is owned
// by this unit for the duration of the round, except the bit planes' shared
// boundary words, which the bit path handles atomically. Word and bit
// trials route to their zero-allocation variants; wsend/bsend are the
// calling worker's reused send scratch (zero when no trial of that kind
// exists in the batch).
func runBatchUnit(t *Topology, pl *batchPlanes, wsend []Word, bsend BitRow, u *batchUnit, par bool) {
	if u.trial.bnodes != nil {
		runBatchUnitBit(t, pl, bsend, u, par)
		return
	}
	if u.trial.wnodes != nil {
		runBatchUnitWord(t, pl.winbox, pl.wnext, wsend, u)
		return
	}
	tr := u.trial
	inbox, next := pl.inbox, pl.next
	msgs := int64(0)
	// Panic isolation: a panic in one trial's Round call becomes that unit's
	// error — merged like a port-count violation, retiring only this trial —
	// while sibling trials and the worker pool keep running.
	curV := -1
	defer func() {
		if p := recover(); p != nil {
			u.err = newPanicError(curV, u.r, p)
			u.errNode = curV
			u.msgs = msgs
		}
	}()
	for i := u.lo; i < u.hi; i++ {
		v := int(tr.active[i])
		curV = v
		lo, hi := int(t.off[v]), int(t.off[v+1])
		recv := inbox[tr.base+lo : tr.base+hi : tr.base+hi]
		send, fin := tr.nodes[v].Round(u.r, recv)
		if fin {
			tr.done[v] = true
		}
		if send != nil {
			if len(send) != hi-lo {
				u.err = fmt.Errorf("local: node %d sent %d messages on %d ports", v, len(send), hi-lo)
				u.errNode = v
				break
			}
			msgs += t.deliverBoxed(next, tr.dead, tr.base, int32(lo), send, tr.pf)
		}
		for p := range recv {
			recv[p] = nil
		}
	}
	u.msgs = msgs
}

// runBatchUnitWord is runBatchUnit for a word trial: same ownership and
// delivery semantics over the pointer-free word planes, with the worker's
// reused send scratch instead of per-node send slices. The engine provides
// the (fixed-size) send buffer, so the port-count violation of the boxed
// path cannot occur here. The panic guard's defer sits outside the marked
// loop (defers are banned inside) and is open-coded — the steady state
// still allocates nothing.
func runBatchUnitWord(t *Topology, inbox, next, wsend []Word, u *batchUnit) {
	tr := u.trial
	msgs := int64(0)
	curV := -1
	defer func() {
		if p := recover(); p != nil {
			u.err = newPanicError(curV, u.r, p)
			u.errNode = curV
			u.msgs = msgs
		}
	}()
	//splitlint:zeroalloc
	for i := u.lo; i < u.hi; i++ {
		v := int(tr.active[i])
		curV = v
		lo, hi := int(t.off[v]), int(t.off[v+1])
		recv := inbox[tr.base+lo : tr.base+hi : tr.base+hi]
		send := wsend[:hi-lo]
		if tr.wnodes[v].RoundW(u.r, recv, send) {
			tr.done[v] = true
		}
		msgs += t.deliverWords(next, tr.dead, tr.base, int32(lo), send, tr.pf)
		for p := range recv {
			recv[p] = NilWord
		}
	}
	u.msgs = msgs
}

// runBatchUnitBit is runBatchUnit for a bit trial: the trial's packed plane
// regions behave exactly like a standalone engine's planes (within-trial
// arc indexing, atomic discipline for shared boundary words), and the
// worker's packed send scratch is reused for every node. The panic guard's
// defer sits outside the marked loop (defers are banned inside) and is
// open-coded — the steady state still allocates nothing.
func runBatchUnitBit(t *Topology, pl *batchPlanes, bsend BitRow, u *batchUnit, par bool) {
	tr := u.trial
	inbox, next := pl.bitTrial(tr.idx)
	rowClear := !tr.wholesale
	msgs := int64(0)
	curV := -1
	defer func() {
		if p := recover(); p != nil {
			u.err = newPanicError(curV, u.r, p)
			u.errNode = curV
			u.msgs = msgs
		}
	}()
	//splitlint:zeroalloc
	for i := u.lo; i < u.hi; i++ {
		v := int(tr.active[i])
		curV = v
		lo, hi := t.off[v], t.off[v+1]
		if tr.pf > 0 {
			prefetchBitTargets(tr.bdeliver, next, lo, hi, tr.pf)
		}
		var fin bool
		if c := caster(tr.bcasters, v); c != nil {
			val, cast, cfin := c.CastB(u.r, inbox.row(lo, hi))
			if cast {
				msgs += castBitRow(tr.bdeliver, next, lo, hi, val, par)
			}
			fin = cfin
		} else {
			row := bsend.ports(int(hi - lo))
			fin = tr.bnodes[v].RoundB(u.r, inbox.row(lo, hi), row)
			msgs += scatterBitRow(tr.bdeliver, next, lo, row, par)
		}
		if fin {
			tr.done[v] = true
		}
		if rowClear {
			inbox.clearRow(lo, hi, par)
		}
	}
	u.msgs = msgs
}

// buildTrialNodes instantiates one trial's node programs, attaching the
// trial's random streams to the (possibly shared) base views, and converts
// a factory panic into that trial's error — sibling trials are untouched.
func buildTrialNodes(f Factory, vs []View, rngs []*rand.Rand) (nodes []Node, err error) {
	cur := -1
	defer func() {
		if p := recover(); p != nil {
			nodes, err = nil, newPanicError(cur, 0, p)
		}
	}()
	nodes = make([]Node, len(vs))
	for v := range vs {
		cur = v
		view := vs[v]
		if rngs != nil {
			view.Rand = rngs[v]
		}
		nodes[v] = f(view)
	}
	return nodes, nil
}

// clearPlaneRegion nils a retired trial's rows in both planes so no Message
// pointers outlive the trial within a long-running batch.
func clearPlaneRegion(inbox, next []Message, base, arcs int) {
	for i := base; i < base+arcs; i++ {
		inbox[i] = nil
		next[i] = nil
	}
}

// clearWordPlaneRegion is clearPlaneRegion for the word planes.
func clearWordPlaneRegion(inbox, next []Word, base, arcs int) {
	for i := base; i < base+arcs; i++ {
		inbox[i] = NilWord
		next[i] = NilWord
	}
}
