// Cross-engine determinism suite: every engine must produce bit-identical
// outputs and identical round counts on every program, because per-node
// randomness is keyed by (seed, ID) and never by scheduling. This is the
// correctness harness for WorkerPoolEngine — a scheduling leak anywhere in
// the sharding shows up here as an engine disagreement.
package local_test

import (
	"fmt"
	"testing"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/mis"
	"repro/internal/prob"
)

// engines under test; every program below runs under all of them and every
// pair of runs must agree exactly. The BatchEngine entries route the same
// cases through single-trial BatchRun, so the batch path is covered on
// every (graph, program, seed) combination of the suite.
func allEngines() []struct {
	name string
	e    local.Engine
} {
	return []struct {
		name string
		e    local.Engine
	}{
		{"seq", local.SequentialEngine{}},
		{"goroutine", local.GoroutineEngine{}},
		{"pool", local.WorkerPoolEngine{}},
		{"pool-1", local.WorkerPoolEngine{Workers: 1}},
		{"pool-3", local.WorkerPoolEngine{Workers: 3}},
		{"batch-1", local.BatchEngine{Workers: 1}},
		{"batch", local.BatchEngine{}},
	}
}

// echoHash draws random values, exchanges them with neighbors for a few
// rounds, and outputs a rolling hash of everything it saw — a program whose
// output depends on every delivered message and every random draw.
type echoHash struct {
	v      View
	acc    uint64
	rounds int
	out    []uint64
	idx    int
}

type View = local.View

func (n *echoHash) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for p, m := range recv {
		if m != nil {
			n.acc = n.acc*1099511628211 + uint64(p) ^ m.(uint64)
		}
	}
	if r > n.rounds {
		n.out[n.idx] = n.acc
		return nil, true
	}
	x := n.v.Rand.Uint64()
	send := make([]local.Message, n.v.Deg)
	for p := range send {
		send[p] = x ^ uint64(p)
	}
	return send, false
}

func echoFactory(rounds int, out []uint64) local.Factory {
	idx := 0
	return func(v View) local.Node {
		n := &echoHash{v: v, rounds: rounds, out: out, idx: idx}
		idx++
		return n
	}
}

// testGraph names one generated topology.
type testGraph struct {
	name string
	g    *graph.Graph
}

func determinismGraphs(t *testing.T) []testGraph {
	t.Helper()
	var gs []testGraph
	add := func(name string, g *graph.Graph, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gs = append(gs, testGraph{name, g})
	}
	rng := prob.NewSource(901).Rand()
	add("random-sparse", graph.RandomGraph(120, 0.04, rng), nil)
	add("random-dense", graph.RandomGraph(80, 0.3, rng), nil)
	reg, err := graph.RandomRegular(96, 8, rng)
	add("regular", reg, err)
	add("cycle", graph.Cycle(64), nil)
	add("path", graph.PathGraph(40), nil)
	bip, err := graph.RandomBipartiteLeftRegular(24, 72, 9, rng)
	add("bipartite", bip.AsGraph(), err)
	star, err := graph.SubdividedStar(16)
	add("bipartite-star", star.AsGraph(), err)
	return gs
}

// TestCrossEngineDeterminismEchoHash is the randomized property test: 7
// generated graphs × 3 seeds = 21 (graph, seed) combos, each run under all 5
// engine configurations of the message-exchange program.
func TestCrossEngineDeterminismEchoHash(t *testing.T) {
	for _, tg := range determinismGraphs(t) {
		for _, seed := range []uint64{1, 7, 42} {
			tg, seed := tg, seed
			t.Run(fmt.Sprintf("%s/seed=%d", tg.name, seed), func(t *testing.T) {
				t.Parallel()
				topo := local.NewTopology(tg.g)
				n := tg.g.N()
				src := prob.NewSource(seed)
				ids := local.PermutationIDs(n, src.Fork(1))
				var refOut []uint64
				var refStats local.Stats
				for i, eng := range allEngines() {
					out := make([]uint64, n)
					stats, err := eng.e.Run(topo, echoFactory(4, out), local.Options{Source: src, IDs: ids})
					if err != nil {
						t.Fatalf("%s: %v", eng.name, err)
					}
					if i == 0 {
						refOut, refStats = out, stats
						continue
					}
					if stats != refStats {
						t.Errorf("%s stats %+v != seq stats %+v", eng.name, stats, refStats)
					}
					for v := range out {
						if out[v] != refOut[v] {
							t.Fatalf("%s disagrees with seq at node %d: %x vs %x", eng.name, v, out[v], refOut[v])
						}
					}
				}
			})
		}
	}
}

// TestCrossEngineDeterminismChatterbox is the accounting stress test:
// termination rounds are staggered per node, and nodes send on every round
// up to and including their last, so many messages target already-terminated
// neighbors. Stats must agree exactly — Messages counts only delivered
// messages, a boundary every engine (and the batch runner) must draw at the
// same place.
func TestCrossEngineDeterminismChatterbox(t *testing.T) {
	for _, tg := range determinismGraphs(t) {
		for _, seed := range []uint64{5, 23} {
			tg, seed := tg, seed
			t.Run(fmt.Sprintf("%s/seed=%d", tg.name, seed), func(t *testing.T) {
				t.Parallel()
				topo := local.NewTopology(tg.g)
				n := tg.g.N()
				mkOpts := func() local.Options {
					src := prob.NewSource(seed)
					return local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1))}
				}
				var refOut []uint64
				var refStats local.Stats
				for i, eng := range allEngines() {
					out := make([]uint64, n)
					stats, err := eng.e.Run(topo, chatterFactory(7, out), mkOpts())
					if err != nil {
						t.Fatalf("%s: %v", eng.name, err)
					}
					if i == 0 {
						refOut, refStats = out, stats
						continue
					}
					if stats != refStats {
						t.Errorf("%s stats %+v != seq stats %+v", eng.name, stats, refStats)
					}
					for v := range out {
						if out[v] != refOut[v] {
							t.Fatalf("%s disagrees with seq at node %d: %x vs %x", eng.name, v, out[v], refOut[v])
						}
					}
				}
				// The batch path must draw the same boundary.
				out := make([]uint64, n)
				stats, errs := local.BatchRun(topo, []local.Trial{{Factory: chatterFactory(7, out), Opts: mkOpts()}}, local.BatchOptions{})
				if errs[0] != nil {
					t.Fatalf("batch: %v", errs[0])
				}
				if stats[0] != refStats {
					t.Errorf("batch stats %+v != seq stats %+v", stats[0], refStats)
				}
				for v := range out {
					if out[v] != refOut[v] {
						t.Fatalf("batch disagrees with seq at node %d", v)
					}
				}
			})
		}
	}
}

// TestCrossEngineDeterminismColoring runs the real Δ+1 coloring program —
// multiple phases, per-node inputs, data-dependent termination — under all
// engines and demands identical colorings and round counts.
func TestCrossEngineDeterminismColoring(t *testing.T) {
	graphs := determinismGraphs(t)
	if testing.Short() {
		graphs = graphs[:4]
	}
	for _, tg := range graphs {
		tg := tg
		t.Run(tg.name, func(t *testing.T) {
			t.Parallel()
			src := prob.NewSource(17)
			ids := local.PermutationIDs(tg.g.N(), src.Fork(2))
			var ref *coloring.Result
			for i, eng := range allEngines() {
				res, err := coloring.DeltaPlusOne(tg.g, eng.e, local.Options{IDs: ids})
				if err != nil {
					t.Fatalf("%s: %v", eng.name, err)
				}
				if i == 0 {
					ref = res
					continue
				}
				if res.Stats != ref.Stats || res.Num != ref.Num {
					t.Errorf("%s: stats/palette differ: %+v/%d vs %+v/%d",
						eng.name, res.Stats, res.Num, ref.Stats, ref.Num)
				}
				for v := range res.Colors {
					if res.Colors[v] != ref.Colors[v] {
						t.Fatalf("%s: color differs at node %d: %d vs %d", eng.name, v, res.Colors[v], ref.Colors[v])
					}
				}
			}
		})
	}
}

// TestCrossEngineDeterminismMIS exercises a two-phase pipeline (coloring,
// then greedy-by-color MIS) whose second phase consumes the first phase's
// outputs as inputs.
func TestCrossEngineDeterminismMIS(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the coloring and echo-hash suites in short mode")
	}
	g, err := graph.RandomRegular(72, 6, prob.NewSource(31).Rand())
	if err != nil {
		t.Fatal(err)
	}
	var ref *mis.Result
	for i, eng := range allEngines() {
		res, err := mis.GreedyByColor(g, eng.e, local.Options{})
		if err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Trace.Rounds() != ref.Trace.Rounds() {
			t.Errorf("%s: rounds %d != %d", eng.name, res.Trace.Rounds(), ref.Trace.Rounds())
		}
		for v := range res.InSet {
			if res.InSet[v] != ref.InSet[v] {
				t.Fatalf("%s: MIS membership differs at node %d", eng.name, v)
			}
		}
	}
}
