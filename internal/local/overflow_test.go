package local

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestTopologyArcOverflow pins the int32 delivery-table guard: off and
// deliver index arcs with int32, so a graph past math.MaxInt32 directed arcs
// must be rejected with a descriptive error, not wrapped offsets. The limit
// is a package var so the test lowers it instead of building a 2^31-arc
// graph.
func TestTopologyArcOverflow(t *testing.T) {
	defer func(old int) { maxTopologyArcs = old }(maxTopologyArcs)
	maxTopologyArcs = 6

	small := graph.PathGraph(4) // 3 edges = 6 arcs: at the limit
	if _, err := NewTopologyE(small); err != nil {
		t.Fatalf("at-limit topology rejected: %v", err)
	}

	big := graph.PathGraph(5) // 4 edges = 8 arcs: over
	if _, err := NewTopologyE(big); err == nil || !strings.Contains(err.Error(), "delivery-table limit") {
		t.Fatalf("over-limit topology error not descriptive: %v", err)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewTopology on an over-limit graph must panic")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "delivery-table limit") {
			t.Fatalf("panic value not the descriptive error: %v", r)
		}
	}()
	NewTopology(big)
}
