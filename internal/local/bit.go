package local

// This file defines the bit-packed message plane — the bandwidth-matched
// fast path of every engine, one rung below the word plane. The paper's
// headline algorithms exchange one- and two-bit messages (weak-splitting
// votes, retry bits, shattering trits), yet on the word plane every arc
// still carries a full 64-bit Word per round: at 1M nodes / 3M edges each
// double-buffered plane is ~48 MB and every round streams it through DRAM.
// Packing the messages 32-per-uint64 shrinks a plane to 2–4 bits per arc —
// LLC-resident even at million-node scale — so the simulator's cost model
// finally matches the paper's bandwidth model and the scatter's random
// access hits cache instead of memory.
//
// A bit message is a (presence, value) pair packed into one lane: bit 0 of
// the lane is the presence bit — it distinguishes "sent 0" from silence,
// the role NilWord plays on the word plane — and the bits above it hold the
// value. 1-bit programs use 2-bit lanes (2 bits per arc); 2-bit (trit)
// programs use 4-bit lanes, the extra pad bit keeping lanes power-of-two so
// they never straddle a word. Delivery, termination and Stats semantics are
// exactly those of the boxed and word paths: a delivered message is a
// present lane addressed to a node that has not already terminated.
//
// Concurrency discipline. Unlike the word plane, adjacent nodes' rows can
// share a uint64 of the packed plane, so the parallel engines cannot rely
// on slot ownership alone:
//
//   - reads from a shared plane always go through atomic loads (free on the
//     architectures we run on);
//   - deliveries into the next plane use one atomic OR per message on the
//     parallel engines (a lane is zero until its unique writer delivers, so
//     OR writes presence and value together) and plain OR on the
//     sequential path;
//   - a consumed row is cleared by its owner with plain stores on its
//     interior words and atomic AND-NOT on the (at most two) words shared
//     with neighboring rows;
//   - send scratch rows are word-aligned and private to one worker or node,
//     so programs write them with plain stores.

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// BitRow is a packed view of one node's inbox or outbox: port p occupies
// one lane of 2·Width() bits (presence bit plus value bits, see the file
// comment). The presence bit distinguishes "sent 0" from silence. Rows are
// engine-owned views into shared planes (recv) or private scratch (send)
// and are valid only for the duration of the RoundB call.
type BitRow struct {
	lanes []uint64
	lo    uint32 // lane index of port 0 within the plane
	n     uint32 // number of ports
	width uint32 // value width in bits (1 or 2); lanes are 2*width bits
}

// Bit2Row is a BitRow whose value lanes are 2 bits wide — the variant that
// carries trits and small enums (see Bit2Node). The alias exists for
// signature readability; the representation is identical.
type Bit2Row = BitRow

// laneBits returns the packed lane width: presence bit + value bits,
// padded to a power of two so lanes never straddle words. For the two
// widths in use, log2(laneBits) == width (2-bit lanes at width 1, 4-bit at
// width 2), so the hot paths shift by width instead of multiplying or —
// fatally, in the scatter loop — dividing by a variable.
func (b BitRow) laneBits() uint32 { return 1 << b.width }

// Len returns the number of ports.
func (b BitRow) Len() int { return int(b.n) }

// Width returns the value width in bits.
func (b BitRow) Width() int { return int(b.width) }

// Has reports whether port p holds a message (recv) or has one staged
// (send). On a silent port the value is zero.
func (b BitRow) Has(p int) bool {
	j := (b.lo + uint32(p)) << b.width
	return atomic.LoadUint64(&b.lanes[j>>6])>>(j&63)&1 != 0
}

// Get returns port p's value. Lanes never straddle words, so one load
// suffices.
func (b BitRow) Get(p int) uint64 {
	j := (b.lo + uint32(p)) << b.width
	return atomic.LoadUint64(&b.lanes[j>>6]) >> (j&63 + 1) & (1<<b.width - 1)
}

// Lane returns port p's value and presence with a single load — the
// accessor for scan loops that need both (Has followed by Get costs two).
func (b BitRow) Lane(p int) (v uint64, present bool) {
	j := (b.lo + uint32(p)) << b.width
	l := atomic.LoadUint64(&b.lanes[j>>6]) >> (j & 63)
	return l >> 1 & (1<<b.width - 1), l&1 != 0
}

// Int returns port p's value decoded as the signed value SetInt packed.
func (b BitRow) Int(p int) int { return LaneInt(b.Get(p)) }

// CountPresent returns the number of ports holding a message, whole words
// at a time — the packed plane's native aggregate (up to 32 ports per
// popcount). Typical rows span one or two words, so the single-word path
// is kept branch-light.
func (b BitRow) CountPresent() int {
	lo := int(b.lo) << b.width
	hi := int(b.lo+b.n) << b.width
	if lo >= hi {
		return 0
	}
	pres := laneMultiplier(b.laneBits())
	loW, hiW := lo>>6, (hi-1)>>6
	head := ^uint64(0) << (lo & 63)
	tail := ^uint64(0) >> (63 - (hi-1)&63)
	if loW == hiW {
		return bits.OnesCount64(atomic.LoadUint64(&b.lanes[loW]) & pres & head & tail)
	}
	c := bits.OnesCount64(atomic.LoadUint64(&b.lanes[loW])&pres&head) +
		bits.OnesCount64(atomic.LoadUint64(&b.lanes[hiW])&pres&tail)
	for w := loW + 1; w < hiW; w++ {
		c += bits.OnesCount64(atomic.LoadUint64(&b.lanes[w]) & pres)
	}
	return c
}

// CountValue returns the number of present ports whose value equals v
// (truncated to the value width), whole words at a time: each 64-bit word
// compares 16–32 lanes at once. Programs that tally message kinds — the
// shattering constraint counting colored neighbors, the verifier counting
// votes — stay word-parallel on the receive side with this.
func (b BitRow) CountValue(v uint64) int {
	lo := int(b.lo) << b.width
	hi := int(b.lo+b.n) << b.width
	if lo >= hi {
		return 0
	}
	lb := b.laneBits()
	pres := laneMultiplier(lb)
	cmp := (1 | v&(1<<b.width-1)<<1) * pres
	// collapse is OR-folding a lane onto its presence bit: after XOR with
	// cmp, a zero lane means "present with value v".
	collapse := uint32(1)
	if lb == 4 {
		collapse = 2
	}
	loW, hiW := lo>>6, (hi-1)>>6
	head := ^uint64(0) << (lo & 63)
	tail := ^uint64(0) >> (63 - (hi-1)&63)
	if loW == hiW {
		d := atomic.LoadUint64(&b.lanes[loW]) ^ cmp
		z := d | d>>1
		if collapse == 2 {
			z |= z >> 2
		}
		return bits.OnesCount64(^z & pres & head & tail)
	}
	c := 0
	for w := loW; w <= hiW; w++ {
		d := atomic.LoadUint64(&b.lanes[w]) ^ cmp
		z := d | d>>1
		if collapse == 2 {
			z |= z >> 2
		}
		m := pres
		if w == loW {
			m &= head
		}
		if w == hiW {
			m &= tail
		}
		c += bits.OnesCount64(^z & m)
	}
	return c
}

// AnyValue reports whether some present port carries value v.
func (b BitRow) AnyValue(v uint64) bool { return b.CountValue(v) > 0 }

// Set stages the message v (truncated to the value width) on port p of a
// send row. Send rows are private scratch, so plain stores suffice; Set
// must not be used on recv rows.
func (b BitRow) Set(p int, v uint64) {
	j := (b.lo + uint32(p)) << b.width
	m := uint64(1<<b.laneBits()-1) << (j & 63)
	b.lanes[j>>6] = b.lanes[j>>6]&^m | (1|v&(1<<b.width-1)<<1)<<(j&63)
}

// SetInt stages a signed value (zigzag-encoded, so the Uncolored = -1 trit
// costs two bits) on port p; decode with Int.
func (b BitRow) SetInt(p int, x int) { b.Set(p, IntLane(x)) }

// Broadcast stages v on every port of a send row (overwriting anything
// staged before), whole words at a time: the common one- or two-word row
// costs a handful of instructions.
//
//splitlint:zeroalloc
func (b BitRow) Broadcast(v uint64) {
	lo := int(b.lo) << b.width
	hi := int(b.lo+b.n) << b.width
	if lo >= hi {
		return
	}
	pat := (1 | v&(1<<b.width-1)<<1) * laneMultiplier(b.laneBits())
	loW, hiW := lo>>6, (hi-1)>>6
	head := ^uint64(0) << (lo & 63)
	tail := ^uint64(0) >> (63 - (hi-1)&63)
	if loW == hiW {
		m := head & tail
		b.lanes[loW] = b.lanes[loW]&^m | pat&m
		return
	}
	b.lanes[loW] = b.lanes[loW]&^head | pat&head
	b.lanes[hiW] = b.lanes[hiW]&^tail | pat&tail
	for w := loW + 1; w < hiW; w++ {
		b.lanes[w] = pat
	}
}

// clear zeroes the row in place; atomicEdge selects atomic AND-NOT for the
// boundary words shared with adjacent rows (required on the parallel
// engines, where neighbors' owners clear concurrently).
func (b BitRow) clear(atomicEdge bool) {
	lb := b.laneBits()
	clearBitRange(b.lanes, int(b.lo*lb), int((b.lo+b.n)*lb), atomicEdge)
}

// ports returns the scratch row viewed at deg ports (the backing must cover
// at least deg); the per-worker send scratch is sized once at maxDeg.
func (b BitRow) ports(deg int) BitRow { b.n = uint32(deg); return b }

// laneMultiplier returns the word with a 1 in the lowest bit of every lane,
// so value * laneMultiplier replicates a lane across a word.
func laneMultiplier(laneBits uint32) uint64 {
	if laneBits == 2 {
		return 0x5555555555555555
	}
	return 0x1111111111111111
}

// IntLane zigzag-encodes a small signed value into a value lane: 0, -1, 1,
// -2, ... become 0, 1, 2, 3, ... so the splitting trits {Uncolored=-1,
// Red=0, Blue=1} fit 2-bit values. The inverse of LaneInt, and the same
// encoding MakeIntWord uses for word payloads.
func IntLane(x int) uint64 { return uint64(x)<<1 ^ uint64(x>>63) }

// LaneInt decodes a zigzag-encoded value lane.
func LaneInt(v uint64) int { return int(v>>1) ^ -int(v&1) }

// BitNode is the bit-plane fast path of the engines: a per-node program
// whose messages are single bits plus a presence bit. RoundB is called once
// per synchronous round with recv a read-only view of the node's packed
// inbox row and send an all-clear scratch row; the program stages the
// messages it wants delivered per port (an un-Set port is silent) and
// returns whether it has terminated. Both rows are engine-owned and valid
// only for the duration of the call.
//
// Engines use this path only when every node of a run implements BitNode
// (and Options.Plane allows it); a mixed run falls one rung down the
// boxed ← word ← bit ladder — BitProgram adapters also implement WordNode,
// so a bit/word mix still avoids boxing. Termination, delivery and Stats
// semantics are exactly those of Node.Round.
type BitNode interface {
	RoundB(r int, recv, send BitRow) (done bool)
}

// Bit2Node marks a BitNode whose messages occupy 2-bit values (trits,
// joined/out enums). When any node of a run is a Bit2Node the planes are
// laid out at the wider lane; plain BitNodes on the same plane are
// unaffected (their values simply use the low bit of the wider lane).
type Bit2Node interface {
	BitNode
	Bit2()
}

// BitFunc adapts a closure to BitNode (1-bit values), for programs without
// per-node state. Wrap with BitProgram to obtain a Node for a Factory.
type BitFunc func(r int, recv, send BitRow) bool

// RoundB implements BitNode.
func (f BitFunc) RoundB(r int, recv, send BitRow) bool { return f(r, recv, send) }

// Bit2Func is BitFunc with 2-bit (trit) values.
type Bit2Func func(r int, recv, send Bit2Row) bool

// RoundB implements BitNode.
func (f Bit2Func) RoundB(r int, recv, send BitRow) bool { return f(r, recv, send) }

// Bit2 implements Bit2Node.
func (Bit2Func) Bit2() {}

// bitMsgTag is the word tag under which adapted bit messages travel when a
// run falls back to the word or boxed plane: the value rides in the
// payload, and the non-zero tag keeps "sent 0" distinct from NilWord.
const bitMsgTag = 1

// BitProgram adapts a BitNode to the boxed Node interface, so factories can
// return bit programs without engines or callers changing type. The
// adapter implements the whole plane ladder: engines on the bit path call
// RoundB directly (the fast path pays nothing for the wrapper), a word-
// plane run exchanges the values as MakeWord(1, value) words, and a boxed
// run boxes those same words.
func BitProgram(b BitNode) Node {
	if b2, ok := b.(Bit2Node); ok {
		a := &bit2Adapter{bitAdapter: bitAdapter{b: b2, width: 2}}
		a.wa.w = a
		return a
	}
	a := &bitAdapter{b: b, width: 1}
	a.wa.w = a
	return a
}

// bitAdapter implements Node, WordNode and BitNode over an underlying
// BitNode. The word shim reuses private scratch rows across rounds, so even
// the fallback paths allocate only what boxing itself requires.
type bitAdapter struct {
	b     BitNode
	width uint32
	recv  BitRow // scratch rows for the word/boxed shims, allocated on first use
	send  BitRow
	wa    wordAdapter // boxed shim: decodes boxed Words, then calls RoundW below
}

// bit2Adapter marks the adapter of a Bit2Node so asBitNodes sizes the
// planes at the wider lane.
type bit2Adapter struct{ bitAdapter }

// Bit2 implements Bit2Node.
func (*bit2Adapter) Bit2() {}

var (
	_ Node     = (*bitAdapter)(nil)
	_ WordNode = (*bitAdapter)(nil)
	_ BitNode  = (*bitAdapter)(nil)
	_ Bit2Node = (*bit2Adapter)(nil)
)

// RoundB implements BitNode by delegation; engines on the bit path call
// this directly and never touch the shims below.
func (a *bitAdapter) RoundB(r int, recv, send BitRow) bool {
	return a.b.RoundB(r, recv, send)
}

// RoundW implements WordNode: it unpacks received words into a scratch recv
// row, runs the bit program, and re-encodes the staged values as words.
func (a *bitAdapter) RoundW(r int, recv []Word, send []Word) bool {
	deg := len(recv)
	if a.recv.lanes == nil {
		a.recv = newBitScratch(deg, int(a.width))
		a.send = newBitScratch(deg, int(a.width))
	}
	for p, m := range recv {
		if m != NilWord {
			a.recv.Set(p, m.Payload())
		}
	}
	done := a.b.RoundB(r, a.recv.ports(deg), a.send.ports(deg))
	a.recv.ports(deg).clear(false)
	for p := 0; p < deg; p++ {
		if a.send.Has(p) {
			send[p] = MakeWord(bitMsgTag, a.send.Get(p))
		}
	}
	a.send.ports(deg).clear(false)
	return done
}

// Round implements Node via the boxed word shim: boxed Words in, boxed
// Words out, with RoundW above in the middle.
func (a *bitAdapter) Round(r int, recv []Message) ([]Message, bool) {
	return a.wa.Round(r, recv)
}

// asBitNodes returns the nodes viewed as BitNodes when every one of them
// implements the bit fast path, plus the plane's value width (2 when any
// node is a Bit2Node); otherwise it returns nil and the engines fall down
// the plane ladder. The check runs before the slice is allocated, so a
// non-bit run costs no allocation here.
func asBitNodes(nodes []Node) ([]BitNode, int) {
	width := 1
	for _, n := range nodes {
		if _, ok := n.(BitNode); !ok {
			return nil, 0
		}
		if _, ok := n.(Bit2Node); ok {
			width = 2
		}
	}
	bs := make([]BitNode, len(nodes))
	for i, n := range nodes {
		bs[i] = n.(BitNode)
	}
	return bs, width
}

// BitBroadcaster is the fused fast path for bit programs whose sends are
// whole-row broadcasts (Luby coins, verifier votes, zero-round proposals).
// CastB must be observationally identical to a RoundB that does
//
//	if cast { send.Broadcast(v) }
//	return done
//
// — same state transitions, same done result, for every round. Engines
// that detect the interface skip the send scratch row entirely and fuse
// the Broadcast with the scatter into one pass over the node's arc range
// (see castBitRow); engines that don't (or runs tuned with NoFuse) keep
// calling RoundB. A program implementing CastB should make RoundB delegate
// to it so the two paths cannot drift.
type BitBroadcaster interface {
	BitNode
	CastB(r int, recv BitRow) (v uint64, cast, done bool)
}

// bitCasterProvider lets adapters forward the fused path of the program
// they wrap. Without it, *bitAdapter itself would have to implement CastB —
// and would then falsely advertise fusion for wrapped programs that lack
// it.
type bitCasterProvider interface {
	bitCaster() BitBroadcaster
}

// bitCaster forwards the wrapped program's fused path (nil when it has
// none). bit2Adapter inherits this via embedding.
func (a *bitAdapter) bitCaster() BitBroadcaster {
	c, _ := a.b.(BitBroadcaster)
	return c
}

// bitCasterOf returns n's fused broadcast implementation, unwrapping
// adapters, or nil when n only has the generic path.
func bitCasterOf(n BitNode) BitBroadcaster {
	if p, ok := n.(bitCasterProvider); ok {
		return p.bitCaster()
	}
	c, _ := n.(BitBroadcaster)
	return c
}

// asBitCasters returns the per-node fused implementations, or nil when no
// node of the run fuses (the common probe result for non-broadcast
// programs, costing no allocation). Nodes without the fast path get a nil
// entry and take the RoundB path.
func asBitCasters(nodes []BitNode) []BitBroadcaster {
	var cs []BitBroadcaster
	for i, n := range nodes {
		c := bitCasterOf(n)
		if c == nil {
			continue
		}
		if cs == nil {
			cs = make([]BitBroadcaster, len(nodes))
		}
		cs[i] = c
	}
	return cs
}

// caster returns node v's fused implementation, nil when the run (cs nil)
// or the node takes the generic scatter path.
func caster(cs []BitBroadcaster, v int) BitBroadcaster {
	if cs == nil {
		return nil
	}
	return cs[v]
}

// --- packed plane internals -------------------------------------------------

// bitPlane is one half of a double-buffered packed message plane: one
// 2·width-bit lane per arc in a flat word array the GC never scans — 2 bits
// per arc for 1-bit programs, 32× smaller than the word plane's 64.
type bitPlane struct {
	lanes []uint64
	width uint32
}

// wordsFor returns the uint64 count covering `bits` bits.
func wordsFor(bits int) int { return (bits + 63) / 64 }

// planeWords returns the word count of a plane over `arcs` arcs at the
// given value width.
func planeWords(arcs, width int) int { return wordsFor(arcs * 2 * width) }

// newBitPlane allocates an all-clear plane for `arcs` arcs.
func newBitPlane(arcs, width int) bitPlane {
	return bitPlane{lanes: make([]uint64, planeWords(arcs, width)), width: uint32(width)}
}

// newBitScratch allocates a private, word-aligned send scratch row of deg
// ports (resize per node with ports()).
func newBitScratch(deg, width int) BitRow {
	return BitRow{lanes: make([]uint64, planeWords(deg, width)), n: uint32(deg), width: uint32(width)}
}

// row returns the plane view of arcs [lo, hi) — node v's inbox when called
// with its arc range.
func (pl bitPlane) row(lo, hi int32) BitRow {
	return BitRow{lanes: pl.lanes, lo: uint32(lo), n: uint32(hi - lo), width: pl.width}
}

// clearRow zeroes arcs [lo, hi); see BitRow.clear for atomicEdge.
func (pl bitPlane) clearRow(lo, hi int32, atomicEdge bool) {
	pl.row(lo, hi).clear(atomicEdge)
}

// countRow returns the number of present messages in arcs [lo, hi): the
// population count of the presence bits, which sit at the lane starts.
func (pl bitPlane) countRow(lo, hi int32) int64 {
	lb := 2 * pl.width
	return countPatternRange(pl.lanes, int(uint32(lo)*lb), int(uint32(hi)*lb), laneMultiplier(lb))
}

// countRowAtomic is countRow through atomic loads, for counts taken while
// another worker may still be delivering into a word shared with the range
// (the tiled path's in-tile retirement).
func (pl bitPlane) countRowAtomic(lo, hi int32) int64 {
	lb := 2 * pl.width
	return countPatternRangeAtomic(pl.lanes, int(uint32(lo)*lb), int(uint32(hi)*lb), laneMultiplier(lb))
}

// clearAll zeroes the whole plane (trial retirement in the batch runner).
func (pl bitPlane) clearAll() { clear(pl.lanes) }

// deadDeliver is a run's view of the delivery table. It starts on the
// topology's shared read-only table and copies on first write, marking
// every arc toward a terminated node with -1: the scatter then drops dead
// deliveries by the sign of the slot it loads anyway, instead of chasing
// adj[arc] plus a dead[] byte per message. Runs in which every node
// terminates in the same round never pay the copy.
type deadDeliver struct {
	t   *Topology
	dlv []int32
}

// table returns the current delivery table.
func (d *deadDeliver) table() []int32 {
	if d.dlv != nil {
		return d.dlv
	}
	return d.t.deliver
}

// materialize forces the copy-on-write now. The tiled path calls it before
// dispatching tiles so concurrent in-tile kills never race on the first
// copy; after it, kill writes from different tiles touch disjoint slots
// (a node's inbox slots are written only from inside its own closed tile).
func (d *deadDeliver) materialize() {
	if d.dlv == nil {
		d.dlv = append([]int32(nil), d.t.deliver...)
	}
}

// kill marks every arc pointing at v dead. Called by coordinators between
// rounds, exactly where the boxed/word paths set dead[v].
func (d *deadDeliver) kill(v int32) {
	if d.dlv == nil {
		d.dlv = append([]int32(nil), d.t.deliver...)
	}
	// The reverse arc of arc i (v → w) is deliver[i] itself: the slot of
	// w's row that points back at v.
	for i := d.t.off[v]; i < d.t.off[v+1]; i++ {
		d.dlv[d.t.deliver[i]] = -1
	}
}

// scatterBitRow delivers the present ports of a node's send scratch row
// into next and clears the scratch: port p maps to arc nodeLo + p, lands in
// lane deliver[arc], and is dropped (not counted) when the slot is marked
// dead (negative — see deadDeliver). One OR writes a lane's presence and
// value together; atomicOr selects the parallel-engine variant, where
// workers of different shards can land in the same plane word concurrently
// (a lane is zero until its unique writer delivers, so OR composes).
// Returns the delivered count.
//
//splitlint:zeroalloc
func scatterBitRow(deliver []int32, next bitPlane, nodeLo int32, row BitRow, atomicOr bool) int64 {
	msgs := int64(0)
	sh := row.width // log2(laneBits), see laneBits
	laneMask := uint64(1)<<(1<<sh) - 1
	presPat := laneMultiplier(uint32(1) << sh)
	nw := wordsFor(int(row.n) << sh)
	for wi := range row.lanes[:nw] {
		lanesW := row.lanes[wi]
		if lanesW == 0 {
			continue
		}
		row.lanes[wi] = 0
		base := uint32(wi) << 6
		bw := lanesW & presPat
		if bw == presPat {
			// Dense word — the broadcast-round common case: walk the lanes
			// linearly, no bit-hunting.
			arc := nodeLo + int32(base>>sh)
			for j := uint32(0); j < 64; j += 1 << sh {
				dst := deliver[arc]
				arc++
				if dst < 0 {
					continue
				}
				lane := lanesW >> j & laneMask
				dj := uint32(dst) << sh
				if atomicOr {
					atomic.OrUint64(&next.lanes[dj>>6], lane<<(dj&63))
				} else {
					next.lanes[dj>>6] |= lane << (dj & 63)
				}
				msgs++
			}
			continue
		}
		for bw != 0 {
			j := uint32(bits.TrailingZeros64(bw))
			bw &= bw - 1
			dst := deliver[nodeLo+int32((base+j)>>sh)]
			if dst < 0 {
				continue
			}
			lane := lanesW >> j & laneMask
			dj := uint32(dst) << sh
			if atomicOr {
				atomic.OrUint64(&next.lanes[dj>>6], lane<<(dj&63))
			} else {
				next.lanes[dj>>6] |= lane << (dj & 63)
			}
			msgs++
		}
	}
	return msgs
}

// castBitRow is the fused Broadcast+scatter: it delivers the single value v
// to every live arc of [arcLo, arcHi) — exactly what staging v on all ports
// of the send row and scattering it would do — without touching the scratch
// row at all. One pass over deliver[], one OR per live arc; dead arcs
// (negative slots) are dropped uncounted, like scatterBitRow. Returns the
// delivered count.
//
//splitlint:zeroalloc
func castBitRow(deliver []int32, next bitPlane, arcLo, arcHi int32, v uint64, atomicOr bool) int64 {
	msgs := int64(0)
	sh := next.width
	lane := 1 | v&(1<<next.width-1)<<1
	for arc := arcLo; arc < arcHi; arc++ {
		dst := deliver[arc]
		if dst < 0 {
			continue
		}
		dj := uint32(dst) << sh
		if atomicOr {
			atomic.OrUint64(&next.lanes[dj>>6], lane<<(dj&63))
		} else {
			next.lanes[dj>>6] |= lane << (dj & 63)
		}
		msgs++
	}
	return msgs
}

// prefetchBitTargets touches the next-plane words the coming scatter of
// arcs [lo, hi) will OR into, up to a look-ahead window of pf arcs. The
// deliver[] indirection makes each scatter store a dependent random access;
// issuing the loads before the node's RoundB/CastB call lets the misses
// resolve while the program computes. The loads are atomic — the gc
// compiler never dead-code-eliminates an atomic load, and atomic load vs.
// the concurrent atomic-OR deliveries is clean under the race detector —
// and their values are discarded.
//
//splitlint:zeroalloc
func prefetchBitTargets(deliver []int32, next bitPlane, lo, hi int32, pf int) {
	if h := lo + int32(pf); hi > h {
		hi = h
	}
	sh := next.width
	for arc := lo; arc < hi; arc++ {
		dst := deliver[arc]
		if dst < 0 {
			continue
		}
		_ = atomic.LoadUint64(&next.lanes[uint32(dst)<<sh>>6])
	}
}

// clearBitRange zeroes bits [lo, hi) of ws: plain stores on interior words,
// and — when atomicEdge is set — atomic AND-NOT on the masked head and tail
// words, which may be shared with ranges cleared concurrently by other
// workers.
func clearBitRange(ws []uint64, lo, hi int, atomicEdge bool) {
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	head := ^uint64(0) << (lo & 63)
	tail := ^uint64(0) >> (63 - (hi-1)&63)
	if loW == hiW {
		andNot(&ws[loW], head&tail, atomicEdge)
		return
	}
	andNot(&ws[loW], head, atomicEdge)
	andNot(&ws[hiW], tail, atomicEdge)
	clear(ws[loW+1 : hiW])
}

// andNot clears the masked bits of *w.
func andNot(w *uint64, mask uint64, atomically bool) {
	if atomically {
		atomic.AndUint64(w, ^mask)
	} else {
		*w &^= mask
	}
}

// countPatternRange returns the population count of bits [lo, hi) of ws
// restricted to the (word-aligned, lane-periodic) pattern — with the
// presence pattern, the number of present messages in a lane range.
func countPatternRange(ws []uint64, lo, hi int, pat uint64) int64 {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	head := ^uint64(0) << (lo & 63) & pat
	tail := ^uint64(0) >> (63 - (hi-1)&63) & pat
	if loW == hiW {
		return int64(bits.OnesCount64(ws[loW] & head & tail))
	}
	c := bits.OnesCount64(ws[loW]&head) + bits.OnesCount64(ws[hiW]&tail)
	for w := loW + 1; w < hiW; w++ {
		c += bits.OnesCount64(ws[w] & pat)
	}
	return int64(c)
}

// countPatternRangeAtomic is countPatternRange with atomic loads; see
// bitPlane.countRowAtomic.
func countPatternRangeAtomic(ws []uint64, lo, hi int, pat uint64) int64 {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	head := ^uint64(0) << (lo & 63) & pat
	tail := ^uint64(0) >> (63 - (hi-1)&63) & pat
	if loW == hiW {
		return int64(bits.OnesCount64(atomic.LoadUint64(&ws[loW]) & head & tail))
	}
	c := bits.OnesCount64(atomic.LoadUint64(&ws[loW])&head) +
		bits.OnesCount64(atomic.LoadUint64(&ws[hiW])&tail)
	for w := loW + 1; w < hiW; w++ {
		c += bits.OnesCount64(atomic.LoadUint64(&ws[w]) & pat)
	}
	return int64(c)
}

// countBitRange returns the population count of bits [lo, hi) of ws.
func countBitRange(ws []uint64, lo, hi int) int64 {
	return countPatternRange(ws, lo, hi, ^uint64(0))
}

// runSeqBit is the sequential engine's bit-plane fast path: double-buffered
// packed planes, one reused send scratch row, per-row clearing on
// consumption — a steady-state round allocates nothing and touches 2–4 bits
// per arc instead of 64. Delivery, termination and Stats semantics mirror
// the boxed/word loops exactly.
func runSeqBit(t *Topology, nodes []BitNode, width, maxRounds int, fs *faultState, ctl *RunControl, tune Tuning) (stats Stats, err error) {
	n := t.N()
	arcs := len(t.adj)
	inbox := newBitPlane(arcs, width)
	next := newBitPlane(arcs, width)
	scratch := newBitScratch(t.maxDeg, width)
	done := make([]bool, n)
	dead := deadDeliver{t: t}
	pfw := tune.prefetchBit()
	var casters []BitBroadcaster
	if !tune.NoFuse {
		casters = asBitCasters(nodes)
	}
	var newlyDone []int32
	remaining := n
	weight := int64(n + arcs)
	// Panic isolation: see SequentialEngine.Run. The guard sits outside the
	// marked region (defers are banned inside) and costs one open-coded
	// defer for the whole run.
	curV := -1
	defer func() {
		if p := recover(); p != nil {
			err = newPanicError(curV, stats.Rounds, p)
		}
	}()
	//splitlint:zeroalloc
	for r := 1; remaining > 0; r++ {
		if r > maxRounds {
			return stats, maxRoundsErr(maxRounds)
		}
		if cerr := ctl.Err(); cerr != nil {
			return stats, cerr
		}
		stats.Rounds = r
		// Consumed rows must be all-clear after the swap. While a decent
		// fraction of the graph is still active, one wholesale memclr of the
		// tiny packed plane beats 100k masked per-row clears; in a sparse
		// tail (the shattering shape: few survivors, many rounds) the
		// wholesale clear would dominate, so clear per row instead.
		wholesale := clearWholesale(weight, n, arcs)
		deliver := dead.table()
		newlyDone = newlyDone[:0]
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			curV = v
			lo, hi := t.off[v], t.off[v+1]
			if pfw > 0 {
				prefetchBitTargets(deliver, next, lo, hi, pfw)
			}
			var fin bool
			if c := caster(casters, v); c != nil {
				val, cast, cfin := c.CastB(r, inbox.row(lo, hi))
				if cast {
					stats.Messages += castBitRow(deliver, next, lo, hi, val, false)
				}
				fin = cfin
			} else {
				send := scratch.ports(int(hi - lo))
				fin = nodes[v].RoundB(r, inbox.row(lo, hi), send)
				stats.Messages += scatterBitRow(deliver, next, lo, send, false)
			}
			if fin {
				done[v] = true
				//lint:alloc amortized: reslice of a buffer whose capacity stops growing after the first rounds
				newlyDone = append(newlyDone, int32(v))
				remaining--
			}
			if !wholesale {
				inbox.clearRow(lo, hi, false)
			}
		}
		curV = -1
		if wholesale {
			inbox.clearAll()
		}
		// Messages addressed to nodes that terminated this round will never
		// be consumed: uncount and drop them, then retire the nodes.
		for _, v := range newlyDone {
			lo, hi := t.off[v], t.off[v+1]
			stats.Messages -= next.countRow(lo, hi)
			next.clearRow(lo, hi, false)
			weight -= 1 + int64(hi-lo)
			dead.kill(v)
		}
		if fs != nil {
			for _, v := range newlyDone {
				fs.markDown(v)
			}
			for _, v := range fs.boundaryBit(r, next, &stats) {
				done[v] = true
				weight -= 1 + int64(t.off[v+1]-t.off[v])
				remaining--
				dead.kill(v)
			}
		}
		inbox, next = next, inbox
	}
	return stats, nil
}

// clearWholesale decides between one wholesale memclr of a packed plane and
// masked per-row clears: wholesale wins while the active set still covers a
// quarter of the graph's weight, per-row wins in long sparse tails.
func clearWholesale(activeWeight int64, n, arcs int) bool {
	return activeWeight*4 >= int64(n+arcs)
}

// runGoroutineBit is the goroutine engine's bit-plane fast path. Each node
// goroutine owns a word-aligned persistent send scratch row (carved from a
// flat backing, so no two nodes share a scratch word), runs RoundB against
// its shared-plane inbox row and clears the consumed row (atomic on
// boundary words — neighbors' goroutines clear concurrently); the
// single-threaded coordinator scatters the scratch after the node's result
// arrives, so deliveries need no atomics. The engine stays unfused and
// untiled by design — it is the reference schedule the tuned engines are
// checked against — but shares the scatter-prefetch window.
func runGoroutineBit(t *Topology, nodes []BitNode, width, maxRounds int, fs *faultState, ctl *RunControl, tune Tuning) (Stats, error) {
	pfw := tune.prefetchBit()
	n := t.N()
	arcs := len(t.adj)
	inbox := newBitPlane(arcs, width)
	next := newBitPlane(arcs, width)
	scratch := make([]BitRow, n)
	total := 0
	for v := 0; v < n; v++ {
		total += planeWords(t.Deg(v), width)
	}
	backing := make([]uint64, total)
	off := 0
	for v := 0; v < n; v++ {
		d := t.Deg(v)
		w := planeWords(d, width)
		scratch[v] = BitRow{lanes: backing[off : off+w : off+w], n: uint32(d), width: uint32(width)}
		off += w
	}
	start := make([]chan BitRow, n)
	results := make(chan wordRoundResult, n)
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		start[v] = make(chan BitRow, 1)
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			node := nodes[v]
			send := scratch[v]
			r := 0
			//splitlint:zeroalloc
			for recv := range start[v] {
				r++
				fin, rerr := safeRoundB(node, v, r, recv, send)
				if rerr != nil {
					results <- wordRoundResult{v: v, err: rerr}
					return
				}
				// Clear the consumed row; after the swap the new next rows
				// are then already all-clear.
				recv.clear(true)
				results <- wordRoundResult{v: v, done: fin}
			}
		}(v)
	}
	defer func() {
		for v := 0; v < n; v++ {
			if start[v] != nil {
				close(start[v])
			}
		}
		wg.Wait()
	}()

	active := make([]bool, n)
	dead := deadDeliver{t: t}
	var newlyDone []int32
	remaining := n
	for v := range active {
		active[v] = true
	}
	var stats Stats
	for r := 1; remaining > 0; r++ {
		if r > maxRounds {
			return stats, maxRoundsErr(maxRounds)
		}
		// Cancellation point: before round r launches, rounds 1..r-1 stand.
		if cerr := ctl.Err(); cerr != nil {
			return stats, cerr
		}
		stats.Rounds = r
		launched := 0
		for v := 0; v < n; v++ {
			if active[v] {
				start[v] <- inbox.row(t.off[v], t.off[v+1])
				launched++
			}
		}
		newlyDone = newlyDone[:0]
		deliver := dead.table()
		for i := 0; i < launched; i++ {
			res := <-results
			if res.err != nil {
				start[res.v] = nil // goroutine already exited
				return stats, res.err
			}
			if res.done {
				close(start[res.v])
				start[res.v] = nil
				active[res.v] = false
				newlyDone = append(newlyDone, int32(res.v))
				remaining--
			}
			// The channel receive orders the scratch row's writes before
			// this scatter; the coordinator is the only deliverer.
			if pfw > 0 {
				prefetchBitTargets(deliver, next, t.off[res.v], t.off[res.v+1], pfw)
			}
			stats.Messages += scatterBitRow(deliver, next, t.off[res.v], scratch[res.v], false)
		}
		// Drop undeliverable messages to nodes that terminated this round.
		for _, v := range newlyDone {
			lo, hi := t.off[v], t.off[v+1]
			stats.Messages -= next.countRow(lo, hi)
			next.clearRow(lo, hi, false)
			dead.kill(v)
		}
		if fs != nil {
			for _, v := range newlyDone {
				fs.markDown(v)
			}
			for _, v := range fs.boundaryBit(r, next, &stats) {
				close(start[v])
				start[v] = nil
				active[v] = false
				remaining--
				dead.kill(v)
			}
		}
		inbox, next = next, inbox
	}
	return stats, nil
}
