package local

import (
	"fmt"
	"runtime"
	"sync"
)

// WorkerPoolEngine executes nodes on a fixed pool of worker goroutines, each
// processing a contiguous shard of the active nodes per round. Unlike
// GoroutineEngine there is no per-node goroutine and no per-round channel
// churn: the workers persist for the whole run, message arrays are
// double-buffered and reused across rounds, and an active-set makes
// terminated nodes cost zero work. Writes are race-free by construction —
// on the boxed and word planes each directed edge (v, port p) owns the
// unique slot next[deliver[arc]] of the flat message array (where
// arc = off[v]+p), on the bit planes shared boundary words go through
// atomics (see bit.go), and every per-node field is touched only by the
// worker that owns v's shard in that round.
//
// Shards are carved by arc weight, not node count: a node costs one Round
// call plus one unit of work per incident arc, so equal-node shards of a
// skewed-degree graph pile most of the arcs onto the workers that drew the
// hubs and the round waits on them. carveShards balances 1+deg instead.
//
// Like the other engines, per-node randomness is derived from (seed, ID)
// only, so a run is bit-for-bit identical to SequentialEngine.
type WorkerPoolEngine struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
}

var _ Engine = WorkerPoolEngine{}

// shard is a half-open range [lo, hi) of indices into the active-set.
type shard struct{ lo, hi int }

// poolWorker is the per-worker scratch state. Workers accumulate message
// counts locally and publish once per round to avoid cross-core traffic.
type poolWorker struct {
	msgs    int64
	err     error
	errNode int
	// tileExec is the largest local round count any tile this worker ran
	// reached during a tiled block (see tile.go); the coordinator takes the
	// max across workers to advance the global round counter, then resets.
	tileExec int
}

// ParseEngine resolves a command-line engine name: "seq" (or "sequential"),
// "goroutine", "pool", or "batch" (the single-trial BatchEngine adapter).
// poolWorkers sizes the worker pool when name is "pool" or "batch" (<= 0
// means GOMAXPROCS) and is ignored otherwise.
func ParseEngine(name string, poolWorkers int) (Engine, error) {
	switch name {
	case "seq", "sequential":
		return SequentialEngine{}, nil
	case "goroutine":
		return GoroutineEngine{}, nil
	case "pool":
		return WorkerPoolEngine{Workers: poolWorkers}, nil
	case "batch":
		return BatchEngine{Workers: poolWorkers}, nil
	default:
		return nil, fmt.Errorf("local: unknown engine %q (have seq, goroutine, pool, batch)", name)
	}
}

// EngineUsesWorkers reports whether the named engine consumes a worker-pool
// size, so CLIs can reject a -workers flag that would be silently ignored.
func EngineUsesWorkers(name string) bool {
	return name == "pool" || name == "batch"
}

// carveShards splits active[:remaining] into at most nw contiguous shards
// of roughly equal weight, where a node weighs 1 + deg (one Round call plus
// one delivery per arc), and returns the shard boundaries reusing bounds.
// weight must be the active set's total weight; the engines maintain it
// incrementally across compactions. Node-count sharding — the previous
// scheme — serializes skewed-degree graphs on whichever worker draws the
// hubs; the powerlaw100k benchmark case is the regression guard.
func (t *Topology) carveShards(active []int32, remaining int, weight int64, nw int, bounds []int) []int {
	bounds = append(bounds[:0], 0)
	if nw > remaining {
		nw = remaining
	}
	target := (weight + int64(nw) - 1) / int64(nw)
	acc := int64(0)
	for i := 0; i < remaining && len(bounds) < nw; i++ {
		v := active[i]
		acc += 1 + int64(t.off[v+1]-t.off[v])
		if acc >= target {
			bounds = append(bounds, i+1)
			acc = 0
		}
	}
	if bounds[len(bounds)-1] != remaining {
		bounds = append(bounds, remaining)
	}
	return bounds
}

// carveByWeight splits active[:remaining] into contiguous chunks each
// weighing at least target (1 + deg per node, as in carveShards) and
// returns the chunk boundaries reusing bounds; the final chunk may be
// lighter. The batch runner carves every live trial's active set with it
// and interleaves the resulting (trial, shard) units shard-major.
func (t *Topology) carveByWeight(active []int32, remaining int, target int64, bounds []int32) []int32 {
	bounds = append(bounds[:0], 0)
	acc := int64(0)
	for i := 0; i < remaining; i++ {
		v := active[i]
		acc += 1 + int64(t.off[v+1]-t.off[v])
		if acc >= target && i+1 < remaining {
			bounds = append(bounds, int32(i+1))
			acc = 0
		}
	}
	bounds = append(bounds, int32(remaining))
	return bounds
}

// Run implements Engine.
func (e WorkerPoolEngine) Run(t *Topology, f Factory, opts Options) (Stats, error) {
	stats, _, _, err := e.run(t, f, opts)
	return stats, err
}

// workerCount resolves the effective pool size for n nodes.
func (e WorkerPoolEngine) workerCount(n int) int {
	nw := e.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > n {
		nw = n
	}
	if nw < 1 {
		nw = 1
	}
	return nw
}

// run is Run with the double-buffered message arrays returned for
// inspection: on a clean finish both are all-nil (every inbox row is cleared
// by its owner right after Round consumes it, and rows of newly-terminated
// nodes are cleared during compaction), which is the buffer-hygiene
// invariant the white-box tests pin. Word- and bit-path runs report nil
// boxed planes (their planes obey the same hygiene invariant, pinned via
// runWord and runBit).
func (e WorkerPoolEngine) run(t *Topology, f Factory, opts Options) (Stats, []Message, []Message, error) {
	vs, err := views(t, opts)
	if err != nil {
		return Stats{}, nil, nil, err
	}
	n := t.N()
	// Node programs are created in the coordinator, in node order, so that
	// factories may keep (unsynchronized) shared state exactly as under the
	// other engines.
	nodes, err := buildNodes(f, vs)
	if err != nil {
		return Stats{}, nil, nil, err
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	nw := e.workerCount(n)
	bs, bw, ws, err := planeNodes(nodes, opts.Plane)
	if err != nil {
		return Stats{}, nil, nil, err
	}
	fs, err := newFaultState(t, opts.Faults)
	if err != nil {
		return Stats{}, nil, nil, err
	}
	ctl := opts.Control
	if bs != nil {
		stats, _, _, err := e.runBit(t, bs, bw, maxRounds, nw, fs, ctl, opts.Tune)
		return stats, nil, nil, err
	}
	if ws != nil {
		stats, _, _, err := e.runWord(t, ws, maxRounds, nw, fs, ctl, opts.Tune)
		return stats, nil, nil, err
	}
	return e.runBoxed(t, nodes, maxRounds, nw, fs, ctl, opts.Tune)
}

// runBoxed is the boxed-plane loop.
func (e WorkerPoolEngine) runBoxed(t *Topology, nodes []Node, maxRounds, nw int, fs *faultState, ctl *RunControl, tune Tuning) (Stats, []Message, []Message, error) {
	pfs := tune.prefetchScalar()
	n := t.N()
	// Double-buffered flat message arrays sharing the topology's offsets,
	// allocated once. A node's inbox row is cleared by its owner right after
	// Round(v) consumes it, so after the swap the new next rows are already
	// all-nil; nothing is re-zeroed wholesale.
	arcs := len(t.adj)
	inbox := make([]Message, arcs)
	next := make([]Message, arcs)
	active := make([]int32, n)
	for v := range active {
		active[v] = int32(v)
	}
	done := make([]bool, n)
	// dead[v]: terminated in a strictly earlier round. Workers drop (and do
	// not count) deliveries to dead nodes — such messages would never be
	// consumed, and writing them would leave stale Message pointers in rows
	// the active set no longer visits. dead is written only by the
	// coordinator between rounds, so reading it inside a round is race-free
	// (done, by contrast, is written by workers mid-round).
	dead := make([]bool, n)

	workers := make([]poolWorker, nw)
	work := make([]chan shard, nw)
	round := 0
	var barrier sync.WaitGroup
	var lifetime sync.WaitGroup
	for w := 0; w < nw; w++ {
		work[w] = make(chan shard, 1)
		lifetime.Add(1)
		go func(w int) {
			defer lifetime.Done()
			st := &workers[w]
			// runShard executes one shard under a panic guard: a node-program
			// panic becomes the worker's error — merged deterministically by
			// the coordinator, like a port-count violation — and the caller
			// still reaches barrier.Done, so the round completes.
			curV := -1
			runShard := func(sh shard) {
				defer func() {
					if p := recover(); p != nil {
						st.err = newPanicError(curV, round, p)
						st.errNode = curV
					}
				}()
				r := round
				msgs := int64(0)
				for i := sh.lo; i < sh.hi; i++ {
					v := int(active[i])
					curV = v
					lo, hi := t.off[v], t.off[v+1]
					recv := inbox[lo:hi:hi]
					send, fin := nodes[v].Round(r, recv)
					if fin {
						done[v] = true
					}
					if send != nil {
						if len(send) != int(hi-lo) {
							st.err = fmt.Errorf("local: node %d sent %d messages on %d ports", v, len(send), hi-lo)
							st.errNode = v
							break
						}
						msgs += t.deliverBoxed(next, dead, 0, lo, send, pfs)
					}
					for p := range recv {
						recv[p] = nil
					}
				}
				st.msgs = msgs
			}
			for sh := range work[w] {
				runShard(sh)
				barrier.Done()
			}
		}(w)
	}
	defer func() {
		for w := 0; w < nw; w++ {
			close(work[w])
		}
		lifetime.Wait()
	}()

	remaining := n
	weight := int64(n + arcs)
	sp := newShardPlan(t, nw, !tune.NoSticky)
	var stats Stats
	for r := 1; remaining > 0; r++ {
		if r > maxRounds {
			return stats, inbox, next, maxRoundsErr(maxRounds)
		}
		// Cancellation point: before round r is dispatched, so rounds
		// 1..r-1 stand and the planes are at a consistent boundary.
		if cerr := ctl.Err(); cerr != nil {
			return stats, inbox, next, cerr
		}
		stats.Rounds = r
		round = r
		// Carve (or reuse, see shardPlan) the contiguous arc-balanced shards;
		// clamped sticky bounds can yield empty shards, which are skipped
		// without disturbing the shard↔worker index alignment.
		bounds := sp.shards(active, remaining, weight)
		launched := len(bounds) - 1
		for w := 0; w < launched; w++ {
			if bounds[w] == bounds[w+1] {
				continue
			}
			barrier.Add(1)
			work[w] <- shard{bounds[w], bounds[w+1]}
		}
		barrier.Wait()
		var firstErr error
		errNode := -1
		for w := 0; w < launched; w++ {
			stats.Messages += workers[w].msgs
			workers[w].msgs = 0
			if workers[w].err != nil && (errNode < 0 || workers[w].errNode < errNode) {
				firstErr = workers[w].err
				errNode = workers[w].errNode
			}
		}
		if firstErr != nil {
			return stats, inbox, next, firstErr
		}
		// Compact the active-set in place so terminated nodes are never
		// visited again. A node that terminated this round may still have
		// received messages (its neighbors could not know it was finishing):
		// those are undeliverable, so uncount them and clear the row — after
		// the swap the new next rows are again all-nil, and no stale Message
		// pointers outlive the node.
		keep := active[:0]
		for _, v := range active[:remaining] {
			if !done[v] {
				keep = append(keep, v)
				continue
			}
			lo, hi := t.off[v], t.off[v+1]
			for i := lo; i < hi; i++ {
				if next[i] != nil {
					next[i] = nil
					stats.Messages--
				}
			}
			weight -= 1 + int64(hi-lo)
			dead[v] = true
			if fs != nil {
				fs.markDown(v)
			}
		}
		remaining = len(keep)
		if fs != nil {
			crashed := fs.boundaryBoxed(r, next, 0, &stats)
			for _, v := range crashed {
				done[v] = true
				weight -= 1 + int64(t.off[v+1]-t.off[v])
				dead[v] = true
			}
			if len(crashed) > 0 {
				keep = active[:0]
				for _, v := range active[:remaining] {
					if !done[v] {
						keep = append(keep, v)
					}
				}
				remaining = len(keep)
			}
		}
		inbox, next = next, inbox
	}
	return stats, inbox, next, nil
}

// runWord is the worker pool's word-plane fast path: the double-buffered
// planes are pointer-free []Word arrays the GC never scans, and each worker
// owns one maxDeg-sized send scratch row reused for every node of every
// round — a steady-state round performs zero heap allocations. Ownership
// and ordering are exactly those of the boxed loop: each directed edge owns
// a unique slot of the next plane, recv rows are cleared by their owner
// right after RoundW consumes them, and rows of newly-terminated nodes are
// cleared (and their messages uncounted) during compaction, so on a clean
// finish both returned planes are all-NilWord.
func (e WorkerPoolEngine) runWord(t *Topology, nodes []WordNode, maxRounds, nw int, fs *faultState, ctl *RunControl, tune Tuning) (Stats, []Word, []Word, error) {
	pfs := tune.prefetchScalar()
	n := t.N()
	arcs := len(t.adj)
	inbox := make([]Word, arcs)
	next := make([]Word, arcs)
	active := make([]int32, n)
	for v := range active {
		active[v] = int32(v)
	}
	done := make([]bool, n)
	// dead[v]: terminated in a strictly earlier round; written only by the
	// coordinator between rounds (see runBoxed).
	dead := make([]bool, n)

	workers := make([]poolWorker, nw)
	work := make([]chan shard, nw)
	round := 0
	var barrier sync.WaitGroup
	var lifetime sync.WaitGroup
	for w := 0; w < nw; w++ {
		work[w] = make(chan shard, 1)
		lifetime.Add(1)
		go func(w int) {
			defer lifetime.Done()
			st := &workers[w]
			send := make([]Word, t.maxDeg)
			// runShard executes one shard under a panic guard (see runBoxed);
			// the guard's defer sits outside the marked region below, so the
			// steady state still allocates nothing.
			curV := -1
			runShard := func(sh shard) {
				defer func() {
					if p := recover(); p != nil {
						st.err = newPanicError(curV, round, p)
						st.errNode = curV
					}
				}()
				r := round
				msgs := int64(0)
				//splitlint:zeroalloc
				for i := sh.lo; i < sh.hi; i++ {
					v := int(active[i])
					curV = v
					lo, hi := t.off[v], t.off[v+1]
					recv := inbox[lo:hi:hi]
					row := send[:hi-lo]
					if nodes[v].RoundW(r, recv, row) {
						done[v] = true
					}
					msgs += t.deliverWords(next, dead, 0, lo, row, pfs)
					for p := range recv {
						recv[p] = NilWord
					}
				}
				st.msgs = msgs
			}
			for sh := range work[w] {
				runShard(sh)
				barrier.Done()
			}
		}(w)
	}
	defer func() {
		for w := 0; w < nw; w++ {
			close(work[w])
		}
		lifetime.Wait()
	}()

	remaining := n
	weight := int64(n + arcs)
	sp := newShardPlan(t, nw, !tune.NoSticky)
	var stats Stats
	for r := 1; remaining > 0; r++ {
		if r > maxRounds {
			return stats, inbox, next, maxRoundsErr(maxRounds)
		}
		// Cancellation point: see runBoxed.
		if cerr := ctl.Err(); cerr != nil {
			return stats, inbox, next, cerr
		}
		stats.Rounds = r
		round = r
		bounds := sp.shards(active, remaining, weight)
		launched := len(bounds) - 1
		for w := 0; w < launched; w++ {
			if bounds[w] == bounds[w+1] {
				continue
			}
			barrier.Add(1)
			work[w] <- shard{bounds[w], bounds[w+1]}
		}
		barrier.Wait()
		var firstErr error
		errNode := -1
		for w := 0; w < launched; w++ {
			stats.Messages += workers[w].msgs
			workers[w].msgs = 0
			if workers[w].err != nil && (errNode < 0 || workers[w].errNode < errNode) {
				firstErr = workers[w].err
				errNode = workers[w].errNode
			}
		}
		if firstErr != nil {
			return stats, inbox, next, firstErr
		}
		// Compact the active-set; see runBoxed for the invariant.
		keep := active[:0]
		for _, v := range active[:remaining] {
			if !done[v] {
				keep = append(keep, v)
				continue
			}
			lo, hi := t.off[v], t.off[v+1]
			for i := lo; i < hi; i++ {
				if next[i] != NilWord {
					next[i] = NilWord
					stats.Messages--
				}
			}
			weight -= 1 + int64(hi-lo)
			dead[v] = true
			if fs != nil {
				fs.markDown(v)
			}
		}
		remaining = len(keep)
		if fs != nil {
			crashed := fs.boundaryWord(r, next, 0, &stats)
			for _, v := range crashed {
				done[v] = true
				weight -= 1 + int64(t.off[v+1]-t.off[v])
				dead[v] = true
			}
			if len(crashed) > 0 {
				keep = active[:0]
				for _, v := range active[:remaining] {
					if !done[v] {
						keep = append(keep, v)
					}
				}
				remaining = len(keep)
			}
		}
		inbox, next = next, inbox
	}
	return stats, inbox, next, nil
}

// runBit is the worker pool's bit-plane fast path: the double-buffered
// planes are packed bit arrays (1–3 bits per arc, LLC-resident at
// million-node scale), each worker owns one maxDeg-sized packed send
// scratch row, and a steady-state round performs zero heap allocations.
// Ownership follows the boxed loop, with the bit plane's concurrency
// discipline on top (bit.go): deliveries use atomic OR (workers of
// different shards can land in the same plane word), consumed rows are
// cleared with atomic AND-NOT on their boundary words, and reads go through
// atomic loads. Rows of newly-terminated nodes are popcounted (to uncount
// their undeliverable messages) and cleared during compaction, so on a
// clean finish both returned planes are all-zero.
func (e WorkerPoolEngine) runBit(t *Topology, nodes []BitNode, width, maxRounds, nw int, fs *faultState, ctl *RunControl, tune Tuning) (Stats, bitPlane, bitPlane, error) {
	n := t.N()
	arcs := len(t.adj)
	inbox := newBitPlane(arcs, width)
	next := newBitPlane(arcs, width)
	active := make([]int32, n)
	for v := range active {
		active[v] = int32(v)
	}
	done := make([]bool, n)
	// dead: arcs toward nodes terminated in a strictly earlier round,
	// marked in the run's delivery-table view; written only by the
	// coordinator between rounds (see runBoxed), read by workers via the
	// deliver variable set before each dispatch.
	dead := deadDeliver{t: t}
	deliver := t.deliver
	pfw := tune.prefetchBit()
	var casters []BitBroadcaster
	if !tune.NoFuse {
		casters = asBitCasters(nodes)
	}
	// Tiled execution (see tile.go) is planned lazily per block; the planner
	// and tile state are allocated up front so steady-state rounds stay
	// zero-alloc even when the residue first shatters mid-run. Faults and
	// run-control both need the global round barrier, so they disable it.
	tileR := 0
	var tiler *bitTiler
	var ts bitTileState
	ndCap := 0
	if b := tune.tileBudget(); b > 0 && fs == nil && ctl == nil {
		if tr := tune.tileRounds(); tr >= 2 {
			tileR = tr
			tiler = newBitTiler(t, b)
			ndCap = n
			if b < int64(n) {
				ndCap = int(b)
			}
		}
	}

	workers := make([]poolWorker, nw)
	work := make([]chan shard, nw)
	round := 0
	// wholesale: the coordinator memclrs the whole consumed plane between
	// rounds instead of the workers masking out one row per node (and
	// paying boundary atomics); set per round, read by workers after their
	// wakeup — see clearWholesale.
	wholesale := false
	// With a single worker no plane word is ever shared mid-round, so the
	// scatter and the row clears can skip the LOCK-prefixed atomics
	// entirely — on a one-core pool the bit path then matches the
	// sequential engine's instruction mix.
	par := nw > 1
	var barrier sync.WaitGroup
	var lifetime sync.WaitGroup
	for w := 0; w < nw; w++ {
		work[w] = make(chan shard, 1)
		lifetime.Add(1)
		go func(w int) {
			defer lifetime.Done()
			st := &workers[w]
			send := newBitScratch(t.maxDeg, width)
			// runShard executes one shard under a panic guard (see runBoxed);
			// the guard's defer sits outside the marked region below, so the
			// steady state still allocates nothing.
			curV := -1
			runShard := func(sh shard) {
				defer func() {
					if p := recover(); p != nil {
						st.err = newPanicError(curV, round, p)
						st.errNode = curV
					}
				}()
				r := round
				rowClear := !wholesale
				msgs := int64(0)
				//splitlint:zeroalloc
				for i := sh.lo; i < sh.hi; i++ {
					v := int(active[i])
					curV = v
					lo, hi := t.off[v], t.off[v+1]
					if pfw > 0 {
						prefetchBitTargets(deliver, next, lo, hi, pfw)
					}
					var fin bool
					if c := caster(casters, v); c != nil {
						val, cast, cfin := c.CastB(r, inbox.row(lo, hi))
						if cast {
							msgs += castBitRow(deliver, next, lo, hi, val, par)
						}
						fin = cfin
					} else {
						row := send.ports(int(hi - lo))
						fin = nodes[v].RoundB(r, inbox.row(lo, hi), row)
						msgs += scatterBitRow(deliver, next, lo, row, par)
					}
					if fin {
						done[v] = true
					}
					if rowClear {
						inbox.clearRow(lo, hi, par)
					}
				}
				st.msgs = msgs
			}
			// The sentinel shard{lo: -1} switches the worker into tiled mode
			// for one block: it claims tiles from the shared cursor and runs
			// each for the block's rounds (see tile.go). tileDone is the
			// worker's reusable in-tile retirement buffer.
			var tileDone []int32
			for sh := range work[w] {
				if sh.lo < 0 {
					tileDone = ts.drainTiles(st, send, tileDone)
				} else {
					runShard(sh)
				}
				barrier.Done()
			}
		}(w)
	}
	defer func() {
		for w := 0; w < nw; w++ {
			close(work[w])
		}
		lifetime.Wait()
	}()

	remaining := n
	weight := int64(n + arcs)
	sp := newShardPlan(t, nw, !tune.NoSticky)
	var stats Stats
	for r := 1; remaining > 0; r++ {
		if r > maxRounds {
			return stats, inbox, next, maxRoundsErr(maxRounds)
		}
		// Cancellation point: see runBoxed.
		if cerr := ctl.Err(); cerr != nil {
			return stats, inbox, next, cerr
		}
		stats.Rounds = r
		round = r
		wholesale = clearWholesale(weight, n, arcs)
		deliver = dead.table()
		// Tiled block: once the residue is sparse (per-row clearing already
		// wins) and splits into cache-budget components, run up to tileR
		// rounds tile-by-tile with no global barrier between them.
		if tileR >= 2 && !wholesale {
			blockR := tileR
			if m := maxRounds - r + 1; blockR > m {
				blockR = m
			}
			if blockR >= 2 && tiler.plan(active, remaining, done) {
				// Force the delivery-table copy now so concurrent in-tile
				// kills are race-free (see deadDeliver.materialize).
				dead.materialize()
				deliver = dead.table()
				ts.reset(t, nodes, casters, active, done, &dead, inbox, next, tiler, r, blockR, par, pfw, ndCap)
				wake := nw
				if wake > len(tiler.tiles) {
					wake = len(tiler.tiles)
				}
				for w := 0; w < wake; w++ {
					barrier.Add(1)
					work[w] <- shard{lo: -1, hi: -1}
				}
				barrier.Wait()
				var firstErr error
				errNode := -1
				// executed is the number of global rounds the block stands
				// for: the max local round any tile reached (a tile stops
				// early only when all its nodes terminated).
				executed := 1
				for w := 0; w < wake; w++ {
					stats.Messages += workers[w].msgs
					workers[w].msgs = 0
					if workers[w].tileExec > executed {
						executed = workers[w].tileExec
					}
					workers[w].tileExec = 0
					if workers[w].err != nil && (errNode < 0 || workers[w].errNode < errNode) {
						firstErr = workers[w].err
						errNode = workers[w].errNode
					}
				}
				stats.Rounds = r + executed - 1
				if firstErr != nil {
					return stats, inbox, next, firstErr
				}
				// In-tile retirement already uncounted undeliverable rows,
				// cleared them and killed their arcs; only the active list
				// and the weight are compacted here.
				keep := active[:0]
				for _, v := range active[:remaining] {
					if !done[v] {
						keep = append(keep, v)
						continue
					}
					weight -= 1 + int64(t.off[v+1]-t.off[v])
				}
				remaining = len(keep)
				// plan reordered active[], so the cached shard carve no
				// longer balances; drop it.
				sp.invalidate()
				// Tiles swapped their local planes once per local round;
				// mirror the net parity globally.
				if executed&1 == 1 {
					inbox, next = next, inbox
				}
				r += executed - 1
				continue
			}
		}
		bounds := sp.shards(active, remaining, weight)
		launched := len(bounds) - 1
		for w := 0; w < launched; w++ {
			if bounds[w] == bounds[w+1] {
				continue
			}
			barrier.Add(1)
			work[w] <- shard{bounds[w], bounds[w+1]}
		}
		barrier.Wait()
		if wholesale {
			inbox.clearAll()
		}
		var firstErr error
		errNode := -1
		for w := 0; w < launched; w++ {
			stats.Messages += workers[w].msgs
			workers[w].msgs = 0
			if workers[w].err != nil && (errNode < 0 || workers[w].errNode < errNode) {
				firstErr = workers[w].err
				errNode = workers[w].errNode
			}
		}
		if firstErr != nil {
			return stats, inbox, next, firstErr
		}
		// Compact the active-set; see runBoxed for the invariant.
		keep := active[:0]
		for _, v := range active[:remaining] {
			if !done[v] {
				keep = append(keep, v)
				continue
			}
			lo, hi := t.off[v], t.off[v+1]
			stats.Messages -= next.countRow(lo, hi)
			next.clearRow(lo, hi, false)
			weight -= 1 + int64(hi-lo)
			dead.kill(v)
			if fs != nil {
				fs.markDown(v)
			}
		}
		remaining = len(keep)
		if fs != nil {
			crashed := fs.boundaryBit(r, next, &stats)
			for _, v := range crashed {
				done[v] = true
				weight -= 1 + int64(t.off[v+1]-t.off[v])
				dead.kill(v)
			}
			if len(crashed) > 0 {
				keep = active[:0]
				for _, v := range active[:remaining] {
					if !done[v] {
						keep = append(keep, v)
					}
				}
				remaining = len(keep)
			}
		}
		inbox, next = next, inbox
	}
	return stats, inbox, next, nil
}
