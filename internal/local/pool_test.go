package local

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/prob"
)

func TestWorkerPoolFloodComputesMax(t *testing.T) {
	g := graph.PathGraph(10)
	topo := NewTopology(g)
	for _, workers := range []int{0, 1, 2, 3, 7, 16, 100} {
		out := make([]int, g.N())
		stats, err := WorkerPoolEngine{Workers: workers}.Run(topo, floodFactory(10, &out), Options{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for v, got := range out {
			if got != 9 {
				t.Fatalf("workers=%d: node %d computed %d, want 9", workers, v, got)
			}
		}
		if stats.Rounds != 11 {
			t.Errorf("workers=%d: rounds=%d, want 11", workers, stats.Rounds)
		}
	}
}

func TestWorkerPoolMatchesSequentialStats(t *testing.T) {
	g := graph.RandomGraph(80, 0.1, prob.NewSource(11).Rand())
	topo := NewTopology(g)
	mk := func(out *[]int) Factory { return floodFactory(6, out) }
	seqOut := make([]int, g.N())
	poolOut := make([]int, g.N())
	seqStats, err := SequentialEngine{}.Run(topo, mk(&seqOut), Options{})
	if err != nil {
		t.Fatal(err)
	}
	poolStats, err := WorkerPoolEngine{}.Run(topo, mk(&poolOut), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seqStats != poolStats {
		t.Errorf("stats differ: seq=%+v pool=%+v", seqStats, poolStats)
	}
	for v := range seqOut {
		if seqOut[v] != poolOut[v] {
			t.Fatalf("outputs differ at node %d: %d vs %d", v, seqOut[v], poolOut[v])
		}
	}
}

// staggered terminates node v after v+1 rounds, exercising the active-set
// compaction: the set shrinks by a few nodes every round.
type staggered struct {
	v   View
	out *[]int
	idx int
}

func (s *staggered) Round(r int, recv []Message) ([]Message, bool) {
	if r > s.idx {
		(*s.out)[s.idx] = r
		return make([]Message, s.v.Deg), true
	}
	return make([]Message, s.v.Deg), false
}

func TestWorkerPoolStaggeredTermination(t *testing.T) {
	g := graph.Cycle(50)
	topo := NewTopology(g)
	out := make([]int, g.N())
	idx := 0
	f := func(v View) Node {
		s := &staggered{v: v, out: &out, idx: idx}
		idx++
		return s
	}
	stats, err := WorkerPoolEngine{Workers: 4}.Run(topo, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range out {
		if r != v+1 {
			t.Fatalf("node %d terminated at round %d, want %d", v, r, v+1)
		}
	}
	if stats.Rounds != 50 {
		t.Errorf("rounds=%d, want 50", stats.Rounds)
	}
}

// noisyHalt sends a non-nil message on every port each round (including its
// final one) and terminates at a fixed per-node round, so long-lived
// neighbors keep delivering into rows of long-dead nodes.
type noisyHalt struct {
	deg  int
	stop int
}

func (h *noisyHalt) Round(r int, recv []Message) ([]Message, bool) {
	send := make([]Message, h.deg)
	for p := range send {
		send[p] = r
	}
	return send, r >= h.stop
}

// noisyHaltFactory halts most nodes within the first few rounds while every
// 40th node runs for `long` rounds.
func noisyHaltFactory(long int) Factory {
	idx := 0
	return func(v View) Node {
		stop := 1 + idx%4
		if idx%40 == 0 {
			stop = long
		}
		idx++
		return &noisyHalt{deg: v.Deg, stop: stop}
	}
}

// TestWorkerPoolClearsTerminatedRows is the stale-inbox regression test: in
// a long-lived run where most nodes halt early, messages delivered to a
// node's next row after it terminated used to be retained (never cleared,
// never consumed) for the rest of the run. Both buffers must come back
// all-nil — rows are cleared on consumption and at termination — and the
// stats must still match SequentialEngine exactly.
func TestWorkerPoolClearsTerminatedRows(t *testing.T) {
	g := graph.RandomGraph(200, 0.06, prob.NewSource(21).Rand())
	topo := NewTopology(g)
	const long = 60
	stats, inbox, next, err := WorkerPoolEngine{Workers: 3}.run(topo, noisyHaltFactory(long), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != long {
		t.Errorf("rounds=%d, want %d", stats.Rounds, long)
	}
	for i := range inbox {
		if inbox[i] != nil {
			t.Fatalf("stale message retained in inbox slot %d: %v", i, inbox[i])
		}
		if next[i] != nil {
			t.Fatalf("stale message retained in next slot %d: %v", i, next[i])
		}
	}
	seqStats, err := SequentialEngine{}.Run(topo, noisyHaltFactory(long), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats != seqStats {
		t.Errorf("stats differ: pool=%+v seq=%+v", stats, seqStats)
	}
}

// TestWorkerPoolGoroutineCleanupOnError pins that the worker goroutines are
// joined before Run returns on the error path: repeated failing runs must
// not accumulate goroutines.
func TestWorkerPoolGoroutineCleanupOnError(t *testing.T) {
	g := graph.Cycle(32)
	topo := NewTopology(g)
	f := func(v View) Node { return &nonTerminating{deg: v.Deg} }
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := (WorkerPoolEngine{Workers: 4}).Run(topo, f, Options{MaxRounds: 3}); err == nil {
			t.Fatal("want MaxRounds error")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across failing runs: %d before, %d after", before, after)
	}
}

func TestWorkerPoolValidation(t *testing.T) {
	g := graph.PathGraph(3)
	topo := NewTopology(g)
	f := func(View) Node { out := []int{0}; return &zeroRound{out: &out} }
	if _, err := (WorkerPoolEngine{}).Run(topo, f, Options{IDs: []int{1, 2}}); err == nil {
		t.Error("short ID slice should error")
	}
	if _, err := (WorkerPoolEngine{}).Run(topo, f, Options{IDs: []int{1, 1, 2}}); err == nil {
		t.Error("duplicate IDs should error")
	}
	if _, err := (WorkerPoolEngine{}).Run(topo, f, Options{Inputs: []any{nil}}); err == nil {
		t.Error("short input slice should error")
	}
}

func TestWorkerPoolMaxRounds(t *testing.T) {
	g := graph.Cycle(4)
	topo := NewTopology(g)
	f := func(v View) Node { return &nonTerminating{deg: v.Deg} }
	if _, err := (WorkerPoolEngine{}).Run(topo, f, Options{MaxRounds: 10}); err == nil {
		t.Error("worker pool engine should abort at MaxRounds")
	}
}

func TestWorkerPoolPortCountValidation(t *testing.T) {
	g := graph.Cycle(4)
	topo := NewTopology(g)
	f := func(View) Node { return badSender{} }
	if _, err := (WorkerPoolEngine{}).Run(topo, f, Options{MaxRounds: 5}); err == nil {
		t.Error("wrong port count should error")
	}
}

func TestWorkerPoolEmptyTopology(t *testing.T) {
	topo := NewTopology(graph.NewGraph(0))
	f := func(View) Node { return badSender{} }
	stats, err := WorkerPoolEngine{}.Run(topo, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 || stats.Messages != 0 {
		t.Errorf("empty run should be free, got %+v", stats)
	}
}
