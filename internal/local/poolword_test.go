package local

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/prob"
)

// wordNoisyHalt is noisyHalt on the word plane: it sends on every port each
// round (including its final one) and terminates at a fixed per-node round,
// so long-lived neighbors keep delivering into rows of long-dead nodes.
type wordNoisyHalt struct{ stop int }

func (h *wordNoisyHalt) RoundW(r int, recv, send []Word) bool {
	Broadcast(send, MakeWord(1, uint64(r)))
	return r >= h.stop
}

// wordNoisyStop mirrors noisyHaltFactory's schedule for node index v.
func wordNoisyStop(v, long int) int {
	stop := 1 + v%4
	if v%40 == 0 {
		stop = long
	}
	return stop
}

// TestWorkerPoolWordClearsTerminatedRows is the word-plane sibling of
// TestWorkerPoolClearsTerminatedRows: on a clean finish both word planes
// must come back all-NilWord (rows are cleared on consumption and at
// termination), and Stats must match the sequential engine exactly.
func TestWorkerPoolWordClearsTerminatedRows(t *testing.T) {
	g := graph.RandomGraph(200, 0.06, prob.NewSource(21).Rand())
	topo := NewTopology(g)
	const long = 60
	n := topo.N()
	nodes := make([]WordNode, n)
	for v := range nodes {
		nodes[v] = &wordNoisyHalt{stop: wordNoisyStop(v, long)}
	}
	e := WorkerPoolEngine{Workers: 3}
	stats, inbox, next, err := e.runWord(topo, nodes, defaultMaxRounds, e.workerCount(n), nil, nil, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != long {
		t.Errorf("rounds=%d, want %d", stats.Rounds, long)
	}
	for i := range inbox {
		if inbox[i] != NilWord {
			t.Fatalf("stale word retained in inbox slot %d: %#x", i, uint64(inbox[i]))
		}
		if next[i] != NilWord {
			t.Fatalf("stale word retained in next slot %d: %#x", i, uint64(next[i]))
		}
	}
	idx := 0
	factory := func(View) Node {
		node := WordProgram(&wordNoisyHalt{stop: wordNoisyStop(idx, long)})
		idx++
		return node
	}
	seqStats, err := SequentialEngine{}.Run(topo, factory, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats != seqStats {
		t.Errorf("stats differ: pool=%+v seq=%+v", stats, seqStats)
	}
}
