// Panic isolation coverage: a node program that panics at a chosen
// (node, round) yields an engine-level *PanicError on the sequential,
// goroutine and pool paths and a per-trial error in BatchRun — with the
// sibling trials' golden hashes unchanged — and a panicking factory is
// reported as a round-0 setup failure. The CI job runs this package under
// -race, so the recovery paths are exercised with the detector on.
package local_test

import (
	"errors"
	"testing"

	"repro/internal/local"
	"repro/internal/prob"
)

// bombNode runs the ctlNode trace program but panics when the node with
// creation index bombIdx executes round bombRound.
type bombNode struct {
	ctlNode
	bombIdx   int
	bombRound int
}

func bombFactory(rec *ctlRecorder, bombIdx, bombRound int) local.Factory {
	idx := 0
	return func(v local.View) local.Node {
		n := &bombNode{ctlNode: ctlNode{v: v, rec: rec, idx: idx}, bombIdx: bombIdx, bombRound: bombRound}
		idx++
		return n
	}
}

func (n *bombNode) arm(r int) {
	if n.idx == n.bombIdx && r == n.bombRound {
		panic("bomb")
	}
}

func (n *bombNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	n.arm(r)
	return n.ctlNode.Round(r, recv)
}

func (n *bombNode) RoundW(r int, recv, send []local.Word) bool {
	n.arm(r)
	return n.ctlNode.RoundW(r, recv, send)
}

func (n *bombNode) RoundB(r int, recv, send local.BitRow) bool {
	n.arm(r)
	return n.ctlNode.RoundB(r, recv, send)
}

var (
	_ local.Node     = (*bombNode)(nil)
	_ local.WordNode = (*bombNode)(nil)
	_ local.BitNode  = (*bombNode)(nil)
)

const (
	bombIdx   = 5 // creation index of the panicking node
	bombRound = 4
)

// TestPanicIsolationEngines pins the engine-level conversion: on every
// engine and plane, the run fails with a *PanicError carrying the panicking
// round (and, where the path can attribute it, the node index), the process
// survives, and the shared topology still serves a clean follow-up run.
func TestPanicIsolationEngines(t *testing.T) {
	g := ctlGraph(t)
	topo := local.NewTopology(g)
	n := g.N()

	for _, plane := range ctlPlanes {
		plane := plane
		t.Run(plane.String(), func(t *testing.T) {
			for _, eng := range ctlEngines() {
				eng := eng
				t.Run(eng.name, func(t *testing.T) {
					rec := newCtlRecorder(n, ctlRounds)
					_, err := eng.e.Run(topo, bombFactory(rec, bombIdx, bombRound), ctlOpts(n, plane))
					var pe *local.PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("err = %v, want *PanicError", err)
					}
					if pe.Round != bombRound {
						t.Fatalf("panic round = %d, want %d", pe.Round, bombRound)
					}
					if pe.Value != "bomb" {
						t.Fatalf("panic value = %v, want \"bomb\"", pe.Value)
					}
					if pe.Node < 0 || pe.Node >= n {
						t.Fatalf("panic node = %d, out of range", pe.Node)
					}
					if len(pe.Stack) == 0 {
						t.Fatalf("panic error carries no stack")
					}

					// The topology is untouched: a clean run after the panic
					// reproduces the sequential reference trace.
					ref := newCtlRecorder(n, ctlRounds)
					if _, err := (local.SequentialEngine{}).Run(topo, ctlFactory(ref), ctlOpts(n, plane)); err != nil {
						t.Fatalf("follow-up run: %v", err)
					}
					clean := newCtlRecorder(n, ctlRounds)
					if _, err := eng.e.Run(topo, ctlFactory(clean), ctlOpts(n, plane)); err != nil {
						t.Fatalf("follow-up run on %s: %v", eng.name, err)
					}
					if !equalU64(clean.row(ctlRounds), ref.row(ctlRounds)) {
						t.Fatalf("follow-up run diverges after a panicked run")
					}
				})
			}
		})
	}
}

// TestPanicNodeAttribution pins exact node attribution on the paths whose
// execution unit is a single node (sequential and goroutine): the reported
// Node is the topology index of the program that panicked.
func TestPanicNodeAttribution(t *testing.T) {
	g := ctlGraph(t)
	topo := local.NewTopology(g)
	n := g.N()
	for _, eng := range []struct {
		name string
		e    local.Engine
	}{
		{"seq", local.SequentialEngine{}},
		{"goroutine", local.GoroutineEngine{}},
	} {
		t.Run(eng.name, func(t *testing.T) {
			rec := newCtlRecorder(n, ctlRounds)
			_, err := eng.e.Run(topo, bombFactory(rec, bombIdx, bombRound), ctlOpts(n, local.PlaneWord))
			var pe *local.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *PanicError", err)
			}
			// Factories run in topology order on these paths, so creation
			// index == topology index.
			if pe.Node != bombIdx {
				t.Fatalf("panic node = %d, want %d", pe.Node, bombIdx)
			}
		})
	}
}

// TestPanicIsolationBatch pins per-trial isolation: a panicking trial fails
// with *PanicError while its siblings complete with traces byte-identical
// to their solo runs.
func TestPanicIsolationBatch(t *testing.T) {
	g := ctlGraph(t)
	topo := local.NewTopology(g)
	n := g.N()

	seeds := []uint64{31, 32, 33}
	refs := make([]*ctlRecorder, len(seeds))
	for i, seed := range seeds {
		refs[i] = newCtlRecorder(n, ctlRounds)
		src := prob.NewSource(seed)
		opts := local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1)), MaxRounds: 64, Plane: local.PlaneWord}
		if _, err := (local.SequentialEngine{}).Run(topo, ctlFactory(refs[i]), opts); err != nil {
			t.Fatalf("solo run %d: %v", i, err)
		}
	}

	recs := make([]*ctlRecorder, len(seeds))
	trials := make([]local.Trial, len(seeds))
	for i, seed := range seeds {
		recs[i] = newCtlRecorder(n, ctlRounds)
		src := prob.NewSource(seed)
		f := ctlFactory(recs[i])
		if i == 1 {
			f = bombFactory(recs[i], bombIdx, bombRound)
		}
		trials[i] = local.Trial{
			Factory: f,
			Opts:    local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1)), MaxRounds: 64, Plane: local.PlaneWord},
		}
	}

	stats, errs := local.BatchRun(topo, trials, local.BatchOptions{Workers: 3})
	var pe *local.PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("trial 1 err = %v, want *PanicError", errs[1])
	}
	if pe.Round != bombRound {
		t.Fatalf("trial 1 panic round = %d, want %d", pe.Round, bombRound)
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("sibling trial %d err = %v", i, errs[i])
		}
		if stats[i].Rounds != ctlRounds {
			t.Fatalf("sibling trial %d rounds = %d, want %d", i, stats[i].Rounds, ctlRounds)
		}
		for r := 1; r <= ctlRounds; r++ {
			if !equalU64(recs[i].row(r), refs[i].row(r)) {
				t.Fatalf("sibling trial %d round %d diverges from solo run", i, r)
			}
		}
	}
}

// TestPanicInFactory pins setup-time conversion: a factory that panics on
// node j is reported as PanicError{Node: j, Round: 0} on every engine, and
// as that trial's error in a batch.
func TestPanicInFactory(t *testing.T) {
	g := ctlGraph(t)
	topo := local.NewTopology(g)
	n := g.N()
	const failAt = 7
	mk := func(rec *ctlRecorder) local.Factory {
		inner := ctlFactory(rec)
		idx := 0
		return func(v local.View) local.Node {
			if idx == failAt {
				panic("factory bomb")
			}
			idx++
			return inner(v)
		}
	}
	for _, eng := range ctlEngines() {
		t.Run(eng.name, func(t *testing.T) {
			if _, ok := eng.e.(local.BatchEngine); ok {
				trials := []local.Trial{{Factory: mk(newCtlRecorder(n, ctlRounds)), Opts: ctlOpts(n, local.PlaneWord)}}
				_, errs := local.BatchRun(topo, trials, local.BatchOptions{Workers: 2})
				var pe *local.PanicError
				if !errors.As(errs[0], &pe) {
					t.Fatalf("trial err = %v, want *PanicError", errs[0])
				}
				if pe.Round != 0 || pe.Node != failAt {
					t.Fatalf("panic at (node %d, round %d), want (%d, 0)", pe.Node, pe.Round, failAt)
				}
				return
			}
			_, err := eng.e.Run(topo, mk(newCtlRecorder(n, ctlRounds)), ctlOpts(n, local.PlaneWord))
			var pe *local.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *PanicError", err)
			}
			if pe.Round != 0 || pe.Node != failAt {
				t.Fatalf("panic at (node %d, round %d), want (%d, 0)", pe.Node, pe.Round, failAt)
			}
		})
	}
}
