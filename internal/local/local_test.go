package local

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/prob"
)

// maxFlood computes the maximum ID in the connected component by flooding;
// every node terminates after exactly `rounds` rounds.
type maxFlood struct {
	v      View
	best   int
	rounds int
	out    *[]int // out[topologyIndex] written at termination via closure
	idx    int
}

func (m *maxFlood) Round(r int, recv []Message) ([]Message, bool) {
	for _, msg := range recv {
		if msg == nil {
			continue
		}
		if id, ok := msg.(int); ok && id > m.best {
			m.best = id
		}
	}
	if r > m.rounds {
		(*m.out)[m.idx] = m.best
		return nil, true
	}
	send := make([]Message, m.v.Deg)
	for p := range send {
		send[p] = m.best
	}
	return send, false
}

func floodFactory(rounds int, out *[]int) Factory {
	idx := 0
	return func(v View) Node {
		n := &maxFlood{v: v, best: v.ID, rounds: rounds, out: out, idx: idx}
		idx++
		return n
	}
}

func runBoth(t *testing.T, g *graph.Graph, mk func(out *[]int) Factory, opts Options) (seq, gor []int, sStats, gStats Stats) {
	t.Helper()
	topo := NewTopology(g)
	seq = make([]int, g.N())
	gor = make([]int, g.N())
	var err error
	sStats, err = SequentialEngine{}.Run(topo, mk(&seq), opts)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	gStats, err = GoroutineEngine{}.Run(topo, mk(&gor), opts)
	if err != nil {
		t.Fatalf("goroutine: %v", err)
	}
	return seq, gor, sStats, gStats
}

func TestFloodComputesMax(t *testing.T) {
	g := graph.PathGraph(10)
	mk := func(out *[]int) Factory { return floodFactory(10, out) }
	seq, gor, sStats, gStats := runBoth(t, g, mk, Options{})
	for v := 0; v < g.N(); v++ {
		if seq[v] != 9 {
			t.Fatalf("sequential: node %d computed %d, want 9", v, seq[v])
		}
		if gor[v] != 9 {
			t.Fatalf("goroutine: node %d computed %d, want 9", v, gor[v])
		}
	}
	if sStats.Rounds != 11 || gStats.Rounds != 11 {
		t.Errorf("rounds: seq=%d gor=%d, want 11", sStats.Rounds, gStats.Rounds)
	}
	if sStats.Messages != gStats.Messages {
		t.Errorf("message counts differ: %d vs %d", sStats.Messages, gStats.Messages)
	}
}

func TestEnginesAgreeOnRandomizedAlgorithm(t *testing.T) {
	// Each node draws a random value, exchanges it with neighbors for 3
	// rounds, and outputs a hash of everything it saw. Both engines must
	// produce identical outputs because randomness is keyed by node ID.
	g := graph.RandomGraph(60, 0.1, prob.NewSource(7).Rand())
	mk := func(out *[]int) Factory {
		idx := 0
		return func(v View) Node {
			n := &randExchange{v: v, out: out, idx: idx}
			idx++
			return n
		}
	}
	src := prob.NewSource(99)
	ids := PermutationIDs(g.N(), src.Fork(1))
	opts := Options{Source: src, IDs: ids}
	seq, gor, _, _ := runBoth(t, g, mk, opts)
	for v := range seq {
		if seq[v] != gor[v] {
			t.Fatalf("engines disagree at node %d: %d vs %d", v, seq[v], gor[v])
		}
	}
}

type randExchange struct {
	v   View
	acc int
	out *[]int
	idx int
}

func (n *randExchange) Round(r int, recv []Message) ([]Message, bool) {
	for _, m := range recv {
		if m != nil {
			n.acc = n.acc*31 + m.(int)
		}
	}
	if r > 3 {
		(*n.out)[n.idx] = n.acc
		return nil, true
	}
	x := int(n.v.Rand.Uint64() % 1000)
	send := make([]Message, n.v.Deg)
	for p := range send {
		send[p] = x
	}
	return send, false
}

// zeroRound terminates immediately without sending.
type zeroRound struct {
	out *[]int
	idx int
}

func (z *zeroRound) Round(int, []Message) ([]Message, bool) {
	(*z.out)[z.idx] = 1
	return nil, true
}

func TestZeroCommunicationAlgorithm(t *testing.T) {
	g := graph.Complete(5)
	mk := func(out *[]int) Factory {
		idx := 0
		return func(View) Node {
			z := &zeroRound{out: out, idx: idx}
			idx++
			return z
		}
	}
	seq, gor, sStats, _ := runBoth(t, g, mk, Options{})
	for v := range seq {
		if seq[v] != 1 || gor[v] != 1 {
			t.Fatal("outputs missing")
		}
	}
	if sStats.Rounds != 1 || sStats.Messages != 0 {
		t.Errorf("expected 1 round 0 messages, got %+v", sStats)
	}
}

func TestViewContents(t *testing.T) {
	g := graph.PathGraph(3)
	topo := NewTopology(g)
	var got []View
	f := func(v View) Node {
		got = append(got, v)
		out := []int{0, 0, 0}
		z := &zeroRound{out: &out, idx: 0}
		return z
	}
	ids := []int{10, 20, 30}
	if _, err := (SequentialEngine{}).Run(topo, f, Options{IDs: ids, Inputs: []any{"a", "b", "c"}}); err != nil {
		t.Fatal(err)
	}
	if got[1].Deg != 2 || got[1].ID != 20 || got[1].N != 3 {
		t.Errorf("middle node view wrong: %+v", got[1])
	}
	if got[1].NbrIDs[0] != 10 || got[1].NbrIDs[1] != 30 {
		t.Errorf("neighbor IDs wrong: %v", got[1].NbrIDs)
	}
	if got[2].Input != "c" {
		t.Errorf("input wrong: %v", got[2].Input)
	}
}

func TestOptionValidation(t *testing.T) {
	g := graph.PathGraph(3)
	topo := NewTopology(g)
	f := func(View) Node { out := []int{0}; return &zeroRound{out: &out} }
	if _, err := (SequentialEngine{}).Run(topo, f, Options{IDs: []int{1, 2}}); err == nil {
		t.Error("short ID slice should error")
	}
	if _, err := (SequentialEngine{}).Run(topo, f, Options{IDs: []int{1, 1, 2}}); err == nil {
		t.Error("duplicate IDs should error")
	}
	if _, err := (SequentialEngine{}).Run(topo, f, Options{Inputs: []any{nil}}); err == nil {
		t.Error("short input slice should error")
	}
	if _, err := (GoroutineEngine{}).Run(topo, f, Options{IDs: []int{1, 2}}); err == nil {
		t.Error("goroutine engine should validate too")
	}
}

// nonTerminating never finishes; used to test MaxRounds.
type nonTerminating struct{ deg int }

func (n *nonTerminating) Round(int, []Message) ([]Message, bool) {
	return make([]Message, n.deg), false
}

func TestMaxRounds(t *testing.T) {
	g := graph.Cycle(4)
	topo := NewTopology(g)
	f := func(v View) Node { return &nonTerminating{deg: v.Deg} }
	if _, err := (SequentialEngine{}).Run(topo, f, Options{MaxRounds: 10}); err == nil {
		t.Error("sequential engine should abort at MaxRounds")
	}
	if _, err := (GoroutineEngine{}).Run(topo, f, Options{MaxRounds: 10}); err == nil {
		t.Error("goroutine engine should abort at MaxRounds")
	}
}

// TestMaxRoundsExactBoundary pins the exhaustion semantics for every
// engine: a program that finishes in round R must succeed with MaxRounds=R
// (the cap is inclusive) and fail with MaxRounds=R-1, reporting R-1 executed
// rounds.
func TestMaxRoundsExactBoundary(t *testing.T) {
	g := graph.Cycle(12)
	topo := NewTopology(g)
	const finish = 8 // floodFactory(finish-1, ·) terminates every node in round `finish`
	engines := []struct {
		name string
		e    Engine
	}{
		{"seq", SequentialEngine{}},
		{"goroutine", GoroutineEngine{}},
		{"pool", WorkerPoolEngine{}},
		{"pool-2", WorkerPoolEngine{Workers: 2}},
	}
	for _, eng := range engines {
		out := make([]int, g.N())
		stats, err := eng.e.Run(topo, floodFactory(finish-1, &out), Options{MaxRounds: finish})
		if err != nil {
			t.Errorf("%s: MaxRounds=%d must allow a round-%d finish: %v", eng.name, finish, finish, err)
		} else if stats.Rounds != finish {
			t.Errorf("%s: ran %d rounds, want %d", eng.name, stats.Rounds, finish)
		}
		out2 := make([]int, g.N())
		stats, err = eng.e.Run(topo, floodFactory(finish-1, &out2), Options{MaxRounds: finish - 1})
		if err == nil {
			t.Errorf("%s: MaxRounds=%d must abort a round-%d finish", eng.name, finish-1, finish)
		} else if stats.Rounds != finish-1 {
			t.Errorf("%s: aborted run executed %d rounds, want %d", eng.name, stats.Rounds, finish-1)
		}
	}
}

// badSender sends the wrong number of messages.
type badSender struct{}

func (badSender) Round(int, []Message) ([]Message, bool) {
	return []Message{1, 2, 3, 4, 5}, false
}

func TestPortCountValidation(t *testing.T) {
	g := graph.Cycle(4)
	topo := NewTopology(g)
	f := func(View) Node { return badSender{} }
	if _, err := (SequentialEngine{}).Run(topo, f, Options{MaxRounds: 5}); err == nil {
		t.Error("sequential: wrong port count should error")
	}
	if _, err := (GoroutineEngine{}).Run(topo, f, Options{MaxRounds: 5}); err == nil {
		t.Error("goroutine: wrong port count should error")
	}
}

func TestDeliverTableConsistency(t *testing.T) {
	g := graph.RandomGraph(40, 0.15, prob.NewSource(3).Rand())
	topo := NewTopology(g)
	for v := 0; v < topo.N(); v++ {
		for p, w := range topo.row(v) {
			arc := topo.off[v] + int32(p)
			// The delivery slot of arc (v, w) must lie inside w's row and
			// name an arc pointing back at v (the reverse port).
			slot := topo.deliver[arc]
			if slot < topo.off[w] || slot >= topo.off[w+1] {
				t.Fatalf("deliver[%d] = %d outside receiver row [%d, %d)", arc, slot, topo.off[w], topo.off[w+1])
			}
			if topo.adj[slot] != int32(v) {
				t.Fatalf("deliver table broken at v=%d p=%d", v, p)
			}
		}
	}
}

func TestPermutationIDs(t *testing.T) {
	ids := PermutationIDs(100, prob.NewSource(5))
	seen := make(map[int]bool)
	for _, id := range ids {
		if id < 0 || id >= 100 || seen[id] {
			t.Fatal("not a permutation")
		}
		seen[id] = true
	}
	// Deterministic given the seed.
	ids2 := PermutationIDs(100, prob.NewSource(5))
	for i := range ids {
		if ids[i] != ids2[i] {
			t.Fatal("permutation not reproducible")
		}
	}
}
