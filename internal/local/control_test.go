// Run-control coverage: cancellation bit-identity (a run cancelled at round
// k executed rounds 1..k byte-identically to an uncancelled run, across all
// four execution paths and all three planes), distinguished
// ErrCancelled/ErrDeadline sentinels with partial Stats, per-trial and
// batch-level control in BatchRun, and the ForceControl engine wrapper.
package local_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// ctlRecorder captures a run's per-round trace: hist[r-1][idx] is node
// idx's accumulated message-trace hash after it executed round r (zero if
// the node never ran that round). hook, when set, is invoked after every
// node step — the cancellation tests use it to fire a context cancel at a
// chosen (round, node), which the engines observe at the next boundary.
type ctlRecorder struct {
	rounds int
	hist   [][]uint64
	hook   func(r, idx int)
}

func newCtlRecorder(n, rounds int) *ctlRecorder {
	h := make([][]uint64, rounds)
	for i := range h {
		h[i] = make([]uint64, n)
	}
	return &ctlRecorder{rounds: rounds, hist: h}
}

// row returns hist row r (1-based round) for comparisons.
func (rec *ctlRecorder) row(r int) []uint64 { return rec.hist[r-1] }

// ctlNode is the trace program behind ctlRecorder. It implements the whole
// plane ladder (boxed, word, bit) so the same program runs under every
// forced plane; each plane folds its received (round, port, payload)
// triples and one random draw per round into the per-node hash.
type ctlNode struct {
	v   local.View
	rec *ctlRecorder
	idx int
	acc uint64
}

func ctlFactory(rec *ctlRecorder) local.Factory {
	idx := 0
	return func(v local.View) local.Node {
		n := &ctlNode{v: v, rec: rec, idx: idx}
		idx++
		return n
	}
}

func (n *ctlNode) step(r int, x uint64) {
	n.acc = fnvFold(n.acc, x)
	n.rec.hist[r-1][n.idx] = n.acc
	if n.rec.hook != nil {
		n.rec.hook(r, n.idx)
	}
}

func (n *ctlNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for p, m := range recv {
		if m != nil {
			n.acc = fnvFold(fnvFold(fnvFold(n.acc, uint64(r)), uint64(p)), m.(uint64))
		}
	}
	x := n.v.Rand.Uint64()
	n.step(r, x)
	if r == n.rec.rounds {
		return nil, true
	}
	send := make([]local.Message, n.v.Deg)
	for p := range send {
		send[p] = x ^ uint64(p)<<32 ^ uint64(n.v.ID)
	}
	return send, false
}

func (n *ctlNode) RoundW(r int, recv, send []local.Word) bool {
	for p, m := range recv {
		if m != local.NilWord {
			n.acc = fnvFold(fnvFold(fnvFold(n.acc, uint64(r)), uint64(p)), m.Payload())
		}
	}
	x := n.v.Rand.Uint64()
	n.step(r, x)
	if r == n.rec.rounds {
		return true
	}
	for p := range send {
		send[p] = local.MakeWord(2, x^uint64(p)<<32^uint64(n.v.ID))
	}
	return false
}

func (n *ctlNode) RoundB(r int, recv, send local.BitRow) bool {
	for p := 0; p < recv.Len(); p++ {
		if v, ok := recv.Lane(p); ok {
			n.acc = fnvFold(fnvFold(fnvFold(n.acc, uint64(r)), uint64(p)), v)
		}
	}
	x := n.v.Rand.Uint64()
	n.step(r, x)
	if r == n.rec.rounds {
		return true
	}
	// Some ports stay silent, the rest carry 0 or 1: exercises the packed
	// plane's presence/value split.
	for p := 0; p < send.Len(); p++ {
		if x>>(uint(p)&63)&1 != 0 {
			send.Set(p, x>>(uint(p+1)&63)&1)
		}
	}
	return false
}

var (
	_ local.Node     = (*ctlNode)(nil)
	_ local.WordNode = (*ctlNode)(nil)
	_ local.BitNode  = (*ctlNode)(nil)
)

const (
	ctlRounds = 7
	ctlCancel = 3 // hook fires during round 3; rounds 1..3 must stand
	ctlSeed   = 11
)

func ctlGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.RandomGraph(160, 0.05, prob.NewSource(9).Rand())
}

func ctlOpts(n int, plane local.Plane) local.Options {
	src := prob.NewSource(ctlSeed)
	return local.Options{
		Source:    src,
		IDs:       local.PermutationIDs(n, src.Fork(1)),
		MaxRounds: 64,
		Plane:     plane,
	}
}

func ctlEngines() []struct {
	name string
	e    local.Engine
} {
	return []struct {
		name string
		e    local.Engine
	}{
		{"seq", local.SequentialEngine{}},
		{"goroutine", local.GoroutineEngine{}},
		{"pool", local.WorkerPoolEngine{Workers: 3}},
		{"batch", local.BatchEngine{Workers: 3}},
	}
}

var ctlPlanes = []local.Plane{local.PlaneBoxed, local.PlaneWord, local.PlaneBit}

// TestCancellationBitIdentity pins the acceptance criterion: a run whose
// control fires during round k returns ErrCancelled with Stats covering
// exactly rounds 1..k, those rounds' per-node trace hashes are byte-
// identical to an uncancelled run's prefix, and no later round executed —
// across every engine and every plane, over one shared Topology (which a
// cancelled run must leave untouched for the runs after it).
func TestCancellationBitIdentity(t *testing.T) {
	g := ctlGraph(t)
	topo := local.NewTopology(g)
	n := g.N()

	for _, plane := range ctlPlanes {
		plane := plane
		t.Run(plane.String(), func(t *testing.T) {
			// Reference: uncancelled sequential run.
			ref := newCtlRecorder(n, ctlRounds)
			refStats, err := local.SequentialEngine{}.Run(topo, ctlFactory(ref), ctlOpts(n, plane))
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if refStats.Rounds != ctlRounds {
				t.Fatalf("reference run took %d rounds, want %d", refStats.Rounds, ctlRounds)
			}

			for _, eng := range ctlEngines() {
				eng := eng
				t.Run(eng.name, func(t *testing.T) {
					// Uncancelled run on this engine: full bit-identity.
					full := newCtlRecorder(n, ctlRounds)
					opts := ctlOpts(n, plane)
					if _, err := eng.e.Run(topo, ctlFactory(full), opts); err != nil {
						t.Fatalf("uncancelled run: %v", err)
					}
					for r := 1; r <= ctlRounds; r++ {
						if !equalU64(full.row(r), ref.row(r)) {
							t.Fatalf("uncancelled round %d diverges from sequential reference", r)
						}
					}

					// Cancelled run: node 0's step in round ctlCancel fires
					// the cancel; the engine observes it at the next round
					// boundary.
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					rec := newCtlRecorder(n, ctlRounds)
					rec.hook = func(r, idx int) {
						if r == ctlCancel && idx == 0 {
							cancel()
						}
					}
					opts = ctlOpts(n, plane)
					opts.Control = &local.RunControl{Ctx: ctx}
					stats, err := eng.e.Run(topo, ctlFactory(rec), opts)
					if !errors.Is(err, local.ErrCancelled) {
						t.Fatalf("cancelled run: err = %v, want ErrCancelled", err)
					}
					if stats.Rounds != ctlCancel {
						t.Fatalf("cancelled run reports %d rounds, want %d", stats.Rounds, ctlCancel)
					}
					for r := 1; r <= ctlCancel; r++ {
						if !equalU64(rec.row(r), ref.row(r)) {
							t.Fatalf("cancelled round %d diverges from uncancelled prefix", r)
						}
					}
					for r := ctlCancel + 1; r <= ctlRounds; r++ {
						for idx, h := range rec.row(r) {
							if h != 0 {
								t.Fatalf("round %d node %d executed after cancellation", r, idx)
							}
						}
					}
				})
			}
		})
	}
}

// TestDeadlineControl pins the deadline twin: a control context whose
// deadline already passed stops the run before round 1 with ErrDeadline and
// zero-round Stats, on every engine.
func TestDeadlineControl(t *testing.T) {
	g := ctlGraph(t)
	topo := local.NewTopology(g)
	n := g.N()
	for _, eng := range ctlEngines() {
		t.Run(eng.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), -1)
			defer cancel()
			rec := newCtlRecorder(n, ctlRounds)
			opts := ctlOpts(n, local.PlaneWord)
			opts.Control = &local.RunControl{Ctx: ctx}
			stats, err := eng.e.Run(topo, ctlFactory(rec), opts)
			if !errors.Is(err, local.ErrDeadline) {
				t.Fatalf("err = %v, want ErrDeadline", err)
			}
			if errors.Is(err, local.ErrCancelled) {
				t.Fatalf("deadline expiry must not alias ErrCancelled (err = %v)", err)
			}
			if stats.Rounds != 0 {
				t.Fatalf("stats.Rounds = %d, want 0", stats.Rounds)
			}
		})
	}
}

// TestBatchPerTrialControl pins trial-level isolation in BatchRun: one
// trial's control firing cancels that trial alone, and the sibling trials'
// full traces are byte-identical to their solo sequential runs.
func TestBatchPerTrialControl(t *testing.T) {
	g := ctlGraph(t)
	topo := local.NewTopology(g)
	n := g.N()

	// Solo references, one per trial seed.
	seeds := []uint64{11, 12, 13}
	refs := make([]*ctlRecorder, len(seeds))
	for i, seed := range seeds {
		refs[i] = newCtlRecorder(n, ctlRounds)
		src := prob.NewSource(seed)
		opts := local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1)), MaxRounds: 64, Plane: local.PlaneWord}
		if _, err := (local.SequentialEngine{}).Run(topo, ctlFactory(refs[i]), opts); err != nil {
			t.Fatalf("solo run %d: %v", i, err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	recs := make([]*ctlRecorder, len(seeds))
	trials := make([]local.Trial, len(seeds))
	for i, seed := range seeds {
		recs[i] = newCtlRecorder(n, ctlRounds)
		src := prob.NewSource(seed)
		trials[i] = local.Trial{
			Factory: ctlFactory(recs[i]),
			Opts:    local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1)), MaxRounds: 64, Plane: local.PlaneWord},
		}
	}
	// Trial 1 cancels itself during round ctlCancel.
	recs[1].hook = func(r, idx int) {
		if r == ctlCancel && idx == 0 {
			cancel()
		}
	}
	trials[1].Opts.Control = &local.RunControl{Ctx: ctx}

	stats, errs := local.BatchRun(topo, trials, local.BatchOptions{Workers: 3})
	if !errors.Is(errs[1], local.ErrCancelled) {
		t.Fatalf("trial 1 err = %v, want ErrCancelled", errs[1])
	}
	if stats[1].Rounds != ctlCancel {
		t.Fatalf("trial 1 rounds = %d, want %d", stats[1].Rounds, ctlCancel)
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("sibling trial %d err = %v", i, errs[i])
		}
		if stats[i].Rounds != ctlRounds {
			t.Fatalf("sibling trial %d rounds = %d, want %d", i, stats[i].Rounds, ctlRounds)
		}
		for r := 1; r <= ctlRounds; r++ {
			if !equalU64(recs[i].row(r), refs[i].row(r)) {
				t.Fatalf("sibling trial %d round %d diverges from solo run", i, r)
			}
		}
	}
	for r := 1; r <= ctlCancel; r++ {
		if !equalU64(recs[1].row(r), refs[1].row(r)) {
			t.Fatalf("cancelled trial round %d diverges from solo prefix", r)
		}
	}
}

// TestBatchLevelControl pins BatchOptions.Control: a pre-cancelled batch
// control retires every trial with ErrCancelled and zero-round Stats.
func TestBatchLevelControl(t *testing.T) {
	g := ctlGraph(t)
	topo := local.NewTopology(g)
	n := g.N()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	trials := make([]local.Trial, 3)
	for i := range trials {
		src := prob.NewSource(uint64(20 + i))
		trials[i] = local.Trial{
			Factory: ctlFactory(newCtlRecorder(n, ctlRounds)),
			Opts:    local.Options{Source: src, MaxRounds: 64},
		}
	}
	stats, errs := local.BatchRun(topo, trials, local.BatchOptions{Workers: 2, Control: &local.RunControl{Ctx: ctx}})
	for i := range trials {
		if !errors.Is(errs[i], local.ErrCancelled) {
			t.Fatalf("trial %d err = %v, want ErrCancelled", i, errs[i])
		}
		if stats[i].Rounds != 0 {
			t.Fatalf("trial %d rounds = %d, want 0", i, stats[i].Rounds)
		}
	}
}

// TestForceControl pins the engine wrapper: a nil context is the identity,
// and a wrapped engine inherits the context on every run.
func TestForceControl(t *testing.T) {
	base := local.SequentialEngine{}
	if e := local.ForceControl(base, nil); e != local.Engine(base) {
		t.Fatalf("ForceControl(e, nil) must return the engine unchanged")
	}
	g := ctlGraph(t)
	topo := local.NewTopology(g)
	n := g.N()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := local.ForceControl(base, ctx)
	stats, err := eng.Run(topo, ctlFactory(newCtlRecorder(n, ctlRounds)), ctlOpts(n, local.PlaneAuto))
	if !errors.Is(err, local.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if stats.Rounds != 0 {
		t.Fatalf("stats.Rounds = %d, want 0", stats.Rounds)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
