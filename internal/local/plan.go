package local

// shardPlan caches a pool engine's shard carve across rounds (sticky
// shard→worker affinity). Re-carving every round costs an O(remaining)
// pass, and — worse — moves every shard boundary, so the plane rows a
// worker's caches accumulated migrate to another core each round. The plan
// therefore reuses the previous carve whenever it is still exactly right
// (no node terminated), and in sticky mode keeps the old boundaries —
// merely clamped to the shrunken active prefix — until the active weight
// decays past stickyReuseNum/stickyReuseDen of its carve-time value, at
// which point imbalance could outweigh locality and a true re-carve runs.
//
// Clamping is sound because compaction preserves the order of active[]: a
// surviving node only moves to a lower index, so old boundaries remain
// monotone, and clamping any boundary above remaining down to remaining
// yields a valid (possibly imbalanced, possibly empty-shard) partition of
// the active prefix. Dispatch loops must skip empty shards while keeping
// the worker index aligned with the shard index — that alignment is the
// whole point of affinity.
type shardPlan struct {
	t      *Topology
	nw     int
	sticky bool
	bounds []int
	// carvedWeight is the active weight at the last true carve; it is
	// deliberately not refreshed on clamp reuse so decay accumulates
	// toward the rebalance trigger.
	carvedWeight int64
	// carvedRemaining is the active count the current bounds partition.
	carvedRemaining int
}

// stickyReuse{Num,Den}: re-carve once the active weight drops below 7/8 of
// the carve-time weight. Tight enough that one worker can never be left
// with more than ~8/7 of its fair share for long, loose enough that
// long-running kernels with slow attrition keep affinity for many rounds.
const (
	stickyReuseNum = 7
	stickyReuseDen = 8
)

func newShardPlan(t *Topology, nw int, sticky bool) shardPlan {
	return shardPlan{t: t, nw: nw, sticky: sticky, bounds: make([]int, 0, nw+1)}
}

// shards returns the shard bounds for this round, reusing or clamping the
// cached carve when allowed (see the type comment).
func (sp *shardPlan) shards(active []int32, remaining int, weight int64) []int {
	if len(sp.bounds) != 0 {
		if remaining == sp.carvedRemaining {
			// No node terminated since the carve: the active prefix is
			// unchanged, the old bounds are exactly the bounds a re-carve
			// would produce. Reused in sticky and non-sticky mode alike.
			return sp.bounds
		}
		if sp.sticky && weight*stickyReuseDen > sp.carvedWeight*stickyReuseNum {
			for i, b := range sp.bounds {
				if b > remaining {
					sp.bounds[i] = remaining
				}
			}
			sp.carvedRemaining = remaining
			return sp.bounds
		}
	}
	sp.bounds = sp.t.carveShards(active, remaining, weight, sp.nw, sp.bounds)
	sp.carvedWeight = weight
	sp.carvedRemaining = remaining
	return sp.bounds
}

// invalidate drops the cached carve; the next shards call re-carves. The
// tiled path uses this after reordering active[] so untiled rounds resume
// from a fresh, balanced partition.
func (sp *shardPlan) invalidate() {
	sp.bounds = sp.bounds[:0]
}
