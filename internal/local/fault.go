package local

// This file implements deterministic fault injection: seeded message drops,
// bounded redelivery delay, and crash-stop node failures, layered under every
// engine and every message plane.
//
// The design constraint is the repository's determinism discipline: a faulty
// run must be bit-identical across the sequential, goroutine, pool and batch
// execution paths, every plane, and every worker count. Two properties give
// that by construction:
//
//   - Every fault decision is a pure function of the fault seed, a stable
//     index (the inbox arc slot for message faults, the topology node index
//     for crashes) and the round number — the same keyed-stream derivation
//     per-node randomness uses (prob.KeyedStream/KeyedAt), never a draw from
//     sequential stream state that scheduling could reorder.
//   - Faults are applied only at round boundaries, in the engines'
//     single-threaded coordinator sections, where the next plane is already
//     bit-identical across engines. Workers and node goroutines never see
//     the fault state.
//
// Per boundary (after round r has executed and nodes that terminated in
// round r have been retired) the pass runs in a fixed order:
//
//  1. Drop scan: every present slot of the next plane is dropped with
//     probability Drop, keyed by (seed, arc, r). With Delay > 0 the dropped
//     message is queued for redelivery 1..Delay rounds later (the delay is
//     keyed the same way); with Delay == 0 it is lost.
//  2. Redelivery: messages queued for this boundary are written back into
//     their original slot. A redelivered message is not scanned again, so
//     delivery delay is bounded by Delay. If the slot is occupied by a
//     fresher message, or the receiver has terminated or crashed, the held
//     message is dropped instead.
//  3. Crash-stop: every still-running node crashes with probability Crash,
//     keyed by (seed, node, r+1). A crashed node halts permanently — its
//     engine retires it exactly like a terminated node (it stops executing
//     and arcs toward it go dead) — and the pending messages in its inbox
//     row are dropped. Crash-stop differs from termination only in who
//     decided: termination is the program's choice and its last sends stand;
//     a crash is the environment's and the node simply stops.
//
// When no fault plan is active the engines carry a nil *faultState and the
// hot paths are untouched: golden traces and the zero-allocation pins are
// byte-identical to a build without this file.

import (
	"fmt"

	"repro/internal/prob"
)

// FaultPlan is a seeded, keyed fault model for a run. The zero value (and
// any plan with Drop and Crash both zero) injects nothing.
type FaultPlan struct {
	// Seed seeds the fault streams. Distinct from Options.Source: the same
	// algorithmic randomness can be replayed under different fault schedules
	// and vice versa.
	Seed uint64
	// Drop is the per-message drop probability in [0, 1], applied once to
	// every delivered message at the round boundary it was sent in.
	Drop float64
	// Delay bounds redelivery: a dropped message is redelivered 1..Delay
	// rounds late instead of lost. 0 means dropped messages are lost.
	Delay int
	// Crash is the per-round crash-stop probability in [0, 1] of every
	// still-running node.
	Crash float64
}

// Active reports whether the plan injects any fault.
func (fp FaultPlan) Active() bool { return fp.Drop > 0 || fp.Crash > 0 }

// Validate checks the plan's parameter ranges: probabilities in [0, 1]
// and a nonnegative delay. Engines validate on every run; CLIs call it to
// reject bad flags before building an instance.
func (fp FaultPlan) Validate() error {
	if !(fp.Drop >= 0 && fp.Drop <= 1) {
		return fmt.Errorf("local: fault drop probability %v outside [0, 1]", fp.Drop)
	}
	if !(fp.Crash >= 0 && fp.Crash <= 1) {
		return fmt.Errorf("local: fault crash probability %v outside [0, 1]", fp.Crash)
	}
	if fp.Delay < 0 {
		return fmt.Errorf("local: fault delay %d is negative", fp.Delay)
	}
	return nil
}

// ForceFaults wraps an engine so every run executes under the given fault
// plan, exactly as ForcePlane forces a message plane: CLIs hand algorithms a
// fault-wrapped engine and every LOCAL phase they run inherits the faults.
// An inactive plan returns the engine unchanged.
func ForceFaults(e Engine, fp FaultPlan) Engine {
	if !fp.Active() {
		return e
	}
	return faultEngine{e: e, fp: fp}
}

type faultEngine struct {
	e  Engine
	fp FaultPlan
}

// Run implements Engine.
func (fe faultEngine) Run(t *Topology, f Factory, opts Options) (Stats, error) {
	fp := fe.fp
	opts.Faults = &fp
	return fe.e.Run(t, f, opts)
}

// Fault-stream kinds: each fault decision family draws from its own keyed
// stream so that, e.g., enabling crashes does not perturb which messages
// drop.
const (
	faultKindDrop  = 1 // (arc, round): does this delivered message drop?
	faultKindDelay = 2 // (arc, round): how late does a dropped message arrive?
	faultKindCrash = 3 // (node, round): does this node crash-stop?
)

// probThreshold converts a probability to a 64-bit threshold: an event with
// 64 keyed uniform bits h fires iff h < probThreshold(p). Scaling by 2^63
// and doubling avoids the float→uint64 overflow at p near 1; the lost low
// bit is 2⁻⁶³ of probability.
func probThreshold(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return ^uint64(0)
	}
	return uint64(p*(1<<63)) << 1
}

// heldMsg is one dropped-for-redelivery message: its inbox slot, its
// receiver, and its payload in whichever representation the run's plane
// uses (val for word and bit runs, msg for boxed runs).
type heldMsg struct {
	arc  int32
	recv int32
	val  uint64
	msg  Message
}

// faultState is the per-run (per-trial, under BatchRun) fault machinery. It
// is touched only by the coordinator between rounds; a run without active
// faults carries a nil *faultState and pays one nil check per boundary.
type faultState struct {
	t          *Topology
	dropK      uint64 // prob.KeyedStream(seed, faultKindDrop)
	delayK     uint64
	crashK     uint64
	dropT      uint64 // drop iff keyed bits < dropT
	crashT     uint64
	delay      int
	down       []bool // nodes that terminated or crashed (coordinator-only)
	buckets    [][]heldMsg
	crashedBuf []int32
}

// newFaultState compiles a plan, or returns nil when the plan injects
// nothing (including a nil plan) so the engines skip the boundary pass
// entirely.
func newFaultState(t *Topology, fp *FaultPlan) (*faultState, error) {
	if fp == nil || !fp.Active() {
		if fp != nil {
			if err := fp.Validate(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	fs := &faultState{
		t:      t,
		dropK:  prob.KeyedStream(fp.Seed, faultKindDrop),
		delayK: prob.KeyedStream(fp.Seed, faultKindDelay),
		crashK: prob.KeyedStream(fp.Seed, faultKindCrash),
		dropT:  probThreshold(fp.Drop),
		crashT: probThreshold(fp.Crash),
		down:   make([]bool, t.N()),
	}
	if fs.dropT > 0 && fp.Delay > 0 {
		fs.delay = fp.Delay
		// Bucket b holds messages redelivered at boundary b mod (delay+1);
		// delays are ≥ 1, so the bucket being flushed is never appended to.
		fs.buckets = make([][]heldMsg, fs.delay+1)
	}
	return fs, nil
}

// markDown records that node v terminated (engines call it exactly where
// they set dead[v] / kill(v) for same-round terminators, before the boundary
// pass runs). Redeliveries to down nodes are dropped and down rows are
// skipped by the drop scan.
func (fs *faultState) markDown(v int32) { fs.down[v] = true }

// pickCrashes draws the crash-stop decisions for the given round over the
// still-running nodes, marks them down, and returns them (in ascending node
// order, reusing an internal buffer). Stats accounting and row cleanup are
// the callers'; engine bookkeeping (active sets, channels, delivery tables)
// is the engines'.
func (fs *faultState) pickCrashes(round int) []int32 {
	if fs.crashT == 0 {
		return nil
	}
	roundK := prob.KeyedAt(fs.crashK, uint64(round))
	crashed := fs.crashedBuf[:0]
	n := int32(fs.t.N())
	for v := int32(0); v < n; v++ {
		if fs.down[v] || prob.KeyedAt(roundK, uint64(v)) >= fs.crashT {
			continue
		}
		fs.down[v] = true
		crashed = append(crashed, v)
	}
	fs.crashedBuf = crashed
	return crashed
}

// boundaryBoxed runs the fault pass over a boxed next plane (the trial's
// region starts at base) after round r; see the file comment for the pass
// order. It returns the nodes crashed for round r+1, which the engine must
// retire exactly like same-round terminators.
func (fs *faultState) boundaryBoxed(r int, next []Message, base int, stats *Stats) []int32 {
	t := fs.t
	if fs.dropT > 0 {
		dropR := prob.KeyedAt(fs.dropK, uint64(r))
		delayR := prob.KeyedAt(fs.delayK, uint64(r))
		n := int32(t.N())
		for w := int32(0); w < n; w++ {
			if fs.down[w] {
				continue
			}
			for i := t.off[w]; i < t.off[w+1]; i++ {
				m := next[base+int(i)]
				if m == nil || prob.KeyedAt(dropR, uint64(i)) >= fs.dropT {
					continue
				}
				next[base+int(i)] = nil
				stats.Messages--
				if fs.buckets != nil {
					d := 1 + int(prob.KeyedAt(delayR, uint64(i))%uint64(fs.delay))
					b := (r + d) % (fs.delay + 1)
					fs.buckets[b] = append(fs.buckets[b], heldMsg{arc: i, recv: w, msg: m})
					stats.Delayed++
				} else {
					stats.Dropped++
				}
			}
		}
	}
	if fs.buckets != nil {
		b := r % (fs.delay + 1)
		for _, h := range fs.buckets[b] {
			if fs.down[h.recv] || next[base+int(h.arc)] != nil {
				stats.Dropped++
				continue
			}
			next[base+int(h.arc)] = h.msg
			stats.Messages++
		}
		fs.buckets[b] = fs.buckets[b][:0]
	}
	crashed := fs.pickCrashes(r + 1)
	for _, v := range crashed {
		for i := t.off[v]; i < t.off[v+1]; i++ {
			if next[base+int(i)] != nil {
				next[base+int(i)] = nil
				stats.Messages--
				stats.Dropped++
			}
		}
	}
	stats.Crashed += len(crashed)
	return crashed
}

// boundaryWord is boundaryBoxed over a word next plane.
func (fs *faultState) boundaryWord(r int, next []Word, base int, stats *Stats) []int32 {
	t := fs.t
	if fs.dropT > 0 {
		dropR := prob.KeyedAt(fs.dropK, uint64(r))
		delayR := prob.KeyedAt(fs.delayK, uint64(r))
		n := int32(t.N())
		for w := int32(0); w < n; w++ {
			if fs.down[w] {
				continue
			}
			for i := t.off[w]; i < t.off[w+1]; i++ {
				m := next[base+int(i)]
				if m == NilWord || prob.KeyedAt(dropR, uint64(i)) >= fs.dropT {
					continue
				}
				next[base+int(i)] = NilWord
				stats.Messages--
				if fs.buckets != nil {
					d := 1 + int(prob.KeyedAt(delayR, uint64(i))%uint64(fs.delay))
					b := (r + d) % (fs.delay + 1)
					fs.buckets[b] = append(fs.buckets[b], heldMsg{arc: i, recv: w, val: uint64(m)})
					stats.Delayed++
				} else {
					stats.Dropped++
				}
			}
		}
	}
	if fs.buckets != nil {
		b := r % (fs.delay + 1)
		for _, h := range fs.buckets[b] {
			if fs.down[h.recv] || next[base+int(h.arc)] != NilWord {
				stats.Dropped++
				continue
			}
			next[base+int(h.arc)] = Word(h.val)
			stats.Messages++
		}
		fs.buckets[b] = fs.buckets[b][:0]
	}
	crashed := fs.pickCrashes(r + 1)
	for _, v := range crashed {
		for i := t.off[v]; i < t.off[v+1]; i++ {
			if next[base+int(i)] != NilWord {
				next[base+int(i)] = NilWord
				stats.Messages--
				stats.Dropped++
			}
		}
	}
	stats.Crashed += len(crashed)
	return crashed
}

// lane returns the packed lane of arc slot i (presence bit and value).
func (pl bitPlane) lane(i int32) uint64 {
	j := uint32(i) << pl.width
	return pl.lanes[j>>6] >> (j & 63) & (uint64(1)<<(1<<pl.width) - 1)
}

// setLane overwrites the packed lane of arc slot i. Coordinator-only: the
// plain read-modify-write races with nothing at a round boundary.
func (pl bitPlane) setLane(i int32, lane uint64) {
	j := uint32(i) << pl.width
	m := (uint64(1)<<(1<<pl.width) - 1) << (j & 63)
	pl.lanes[j>>6] = pl.lanes[j>>6]&^m | lane<<(j&63)
}

// boundaryBit is boundaryBoxed over a packed bit next plane (under BatchRun,
// the trial's own region viewed as a standalone plane). Fault decisions key
// on the same arc slot indices as the other planes, so a program that runs
// on several planes sees identical faults on all of them.
func (fs *faultState) boundaryBit(r int, next bitPlane, stats *Stats) []int32 {
	t := fs.t
	if fs.dropT > 0 {
		dropR := prob.KeyedAt(fs.dropK, uint64(r))
		delayR := prob.KeyedAt(fs.delayK, uint64(r))
		n := int32(t.N())
		for w := int32(0); w < n; w++ {
			if fs.down[w] {
				continue
			}
			for i := t.off[w]; i < t.off[w+1]; i++ {
				lane := next.lane(i)
				if lane&1 == 0 || prob.KeyedAt(dropR, uint64(i)) >= fs.dropT {
					continue
				}
				next.setLane(i, 0)
				stats.Messages--
				if fs.buckets != nil {
					d := 1 + int(prob.KeyedAt(delayR, uint64(i))%uint64(fs.delay))
					b := (r + d) % (fs.delay + 1)
					fs.buckets[b] = append(fs.buckets[b], heldMsg{arc: i, recv: w, val: lane})
					stats.Delayed++
				} else {
					stats.Dropped++
				}
			}
		}
	}
	if fs.buckets != nil {
		b := r % (fs.delay + 1)
		for _, h := range fs.buckets[b] {
			if fs.down[h.recv] || next.lane(h.arc)&1 != 0 {
				stats.Dropped++
				continue
			}
			next.setLane(h.arc, h.val)
			stats.Messages++
		}
		fs.buckets[b] = fs.buckets[b][:0]
	}
	crashed := fs.pickCrashes(r + 1)
	for _, v := range crashed {
		lo, hi := t.off[v], t.off[v+1]
		if k := next.countRow(lo, hi); k > 0 {
			stats.Messages -= k
			stats.Dropped += k
			next.clearRow(lo, hi, false)
		}
	}
	stats.Crashed += len(crashed)
	return crashed
}
