package local

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/prob"
)

// bitNoisyHalt is noisyHalt on the bit plane: it sends a trit on every port
// each round (including its final one) and terminates at a fixed per-node
// round, so long-lived neighbors keep delivering into rows of long-dead
// nodes — the buffer-hygiene stress shape.
type bitNoisyHalt struct{ stop int }

func (h *bitNoisyHalt) RoundB(r int, recv, send BitRow) bool {
	send.Broadcast(uint64(r) % 4)
	return r >= h.stop
}

func (*bitNoisyHalt) Bit2() {}

// TestWorkerPoolBitClearsTerminatedRows is the bit-plane sibling of
// TestWorkerPoolWordClearsTerminatedRows: on a clean finish both packed
// planes must come back all-zero — presence and value sub-planes alike —
// because rows are cleared on consumption and terminated-node rows are
// cleared (and popcount-uncounted) at compaction. Stats must match the
// sequential engine exactly.
func TestWorkerPoolBitClearsTerminatedRows(t *testing.T) {
	g := graph.RandomGraph(200, 0.06, prob.NewSource(21).Rand())
	topo := NewTopology(g)
	const long = 60
	n := topo.N()
	nodes := make([]BitNode, n)
	for v := range nodes {
		nodes[v] = &bitNoisyHalt{stop: wordNoisyStop(v, long)}
	}
	e := WorkerPoolEngine{Workers: 3}
	stats, inbox, next, err := e.runBit(topo, nodes, 2, defaultMaxRounds, e.workerCount(n), nil, nil, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != long {
		t.Errorf("rounds=%d, want %d", stats.Rounds, long)
	}
	for _, pl := range []struct {
		name string
		p    bitPlane
	}{{"inbox", inbox}, {"next", next}} {
		for i, w := range pl.p.lanes {
			if w != 0 {
				t.Fatalf("stale lane bits retained in %s word %d: %#x", pl.name, i, w)
			}
		}
	}
	idx := 0
	factory := func(View) Node {
		node := BitProgram(&bitNoisyHalt{stop: wordNoisyStop(idx, long)})
		idx++
		return node
	}
	seqStats, err := SequentialEngine{}.Run(topo, factory, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats != seqStats {
		t.Errorf("stats differ: pool=%+v seq=%+v", stats, seqStats)
	}
}

// TestBitRangeHelpers pins the masked word arithmetic of the packed-plane
// primitives on the awkward boundaries: ranges inside one word, spanning
// word boundaries, and ending exactly on them.
func TestBitRangeHelpers(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ lo, hi int }{
		{0, 0}, {0, 1}, {3, 9}, {0, 64}, {63, 65}, {64, 128}, {5, 200}, {127, 128},
	} {
		ws := make([]uint64, 4)
		for i := range ws {
			ws[i] = ^uint64(0)
		}
		clearBitRange(ws, tc.lo, tc.hi, false)
		for b := 0; b < 256; b++ {
			got := ws[b>>6]>>(b&63)&1 == 1
			want := b < tc.lo || b >= tc.hi
			if got != want {
				t.Fatalf("clearBitRange(%d, %d): bit %d is %v", tc.lo, tc.hi, b, got)
			}
		}
		if c := countBitRange(ws, 0, 256); int(c) != 256-(tc.hi-tc.lo) {
			t.Fatalf("countBitRange after clear(%d, %d) = %d", tc.lo, tc.hi, c)
		}
		// Restore per bit for the next case (reference semantics).
		for b := tc.lo; b < tc.hi; b++ {
			ws[b>>6] |= 1 << (b & 63)
		}
		for b := 0; b < 256; b++ {
			if ws[b>>6]>>(b&63)&1 != 1 {
				t.Fatalf("restore after clear(%d, %d): bit %d still cleared", tc.lo, tc.hi, b)
			}
		}
	}
}

// TestBitRowSetGetBroadcast pins the row accessors on a 2-bit scratch row
// whose ports straddle word boundaries.
func TestBitRowSetGetBroadcast(t *testing.T) {
	t.Parallel()
	const deg = 70 // value lanes cover 140 bits — three words
	row := newBitScratch(deg, 2)
	for p := 0; p < deg; p++ {
		if row.Has(p) {
			t.Fatalf("fresh row has port %d set", p)
		}
	}
	row.Set(33, 3)
	row.SetInt(64, -1)
	if !row.Has(33) || row.Get(33) != 3 {
		t.Fatalf("port 33 = (%v, %d)", row.Has(33), row.Get(33))
	}
	if !row.Has(64) || row.Int(64) != -1 {
		t.Fatalf("port 64 = (%v, %d)", row.Has(64), row.Int(64))
	}
	if row.Has(32) || row.Has(34) || row.Has(63) || row.Has(65) {
		t.Fatal("Set leaked into neighboring ports")
	}
	row.Set(33, 1) // overwrite must replace, not OR
	if row.Get(33) != 1 {
		t.Fatalf("overwritten port 33 = %d, want 1", row.Get(33))
	}
	row.clear(false)
	row.Broadcast(2)
	for p := 0; p < deg; p++ {
		if !row.Has(p) || row.Get(p) != 2 {
			t.Fatalf("after Broadcast(2), port %d = (%v, %d)", p, row.Has(p), row.Get(p))
		}
	}
	row.clear(false)
	for i, w := range row.lanes {
		if w != 0 {
			t.Fatalf("lane word %d not cleared: %#x", i, w)
		}
	}
}

// TestBitRowAggregates pins the word-parallel aggregates against the
// per-port accessors, on rows that start mid-word and straddle word
// boundaries, for both lane widths.
func TestBitRowAggregates(t *testing.T) {
	t.Parallel()
	rng := prob.NewSource(9).Rand()
	for _, width := range []int{1, 2} {
		pl := newBitPlane(200, width)
		for _, bounds := range [][2]int32{{0, 200}, {3, 9}, {17, 130}, {64, 128}, {199, 200}, {50, 50}} {
			row := pl.row(bounds[0], bounds[1])
			for p := 0; p < row.Len(); p++ {
				if rng.Uint64()&1 == 1 {
					row.Set(p, rng.Uint64())
				}
			}
			for v := uint64(0); v < 1<<width; v++ {
				want := 0
				for p := 0; p < row.Len(); p++ {
					if row.Has(p) && row.Get(p) == v {
						want++
					}
				}
				if got := row.CountValue(v); got != want {
					t.Fatalf("width=%d row=%v: CountValue(%d) = %d, want %d", width, bounds, v, got, want)
				}
				if row.AnyValue(v) != (want > 0) {
					t.Fatalf("width=%d row=%v: AnyValue(%d) disagrees with count %d", width, bounds, v, want)
				}
			}
			wantPresent := 0
			for p := 0; p < row.Len(); p++ {
				if lv, ok := row.Lane(p); ok {
					wantPresent++
					if lv != row.Get(p) {
						t.Fatalf("Lane and Get disagree at port %d", p)
					}
				}
			}
			if got := row.CountPresent(); got != wantPresent {
				t.Fatalf("width=%d row=%v: CountPresent = %d, want %d", width, bounds, got, wantPresent)
			}
			row.clear(false)
		}
	}
}

// TestCarveShardsArcBalance pins the arc-balanced sharding invariants: the
// shards tile the active set, there are at most nw of them, and on a
// skewed-degree graph no shard exceeds roughly twice the ideal arc weight
// unless a single hub forces it.
func TestCarveShardsArcBalance(t *testing.T) {
	t.Parallel()
	g := graph.RandomPowerLawGraph(4000, 2.1, 600, prob.NewSource(7).Rand())
	topo := NewTopology(g)
	n := topo.N()
	active := make([]int32, n)
	weight := int64(0)
	for v := range active {
		active[v] = int32(v)
		weight += 1 + int64(topo.Deg(v))
	}
	for _, nw := range []int{1, 2, 3, 8, 64} {
		bounds := topo.carveShards(active, n, weight, nw, nil)
		if bounds[0] != 0 || bounds[len(bounds)-1] != n {
			t.Fatalf("nw=%d: bounds %v do not tile [0, %d)", nw, bounds, n)
		}
		if len(bounds)-1 > nw {
			t.Fatalf("nw=%d: %d shards", nw, len(bounds)-1)
		}
		maxNode := int64(1 + topo.MaxDeg())
		target := (weight + int64(nw) - 1) / int64(nw)
		for i := 0; i+1 < len(bounds); i++ {
			if bounds[i] >= bounds[i+1] {
				t.Fatalf("nw=%d: empty shard %v", nw, bounds)
			}
			w := int64(0)
			for _, v := range active[bounds[i]:bounds[i+1]] {
				w += 1 + int64(topo.Deg(int(v)))
			}
			// A shard stops growing once it crosses the target, so it can
			// overshoot by at most one node's weight.
			if i+1 < len(bounds)-1 && w > target+maxNode {
				t.Errorf("nw=%d: shard %d weighs %d, target %d (+hub %d)", nw, i, w, target, maxNode)
			}
		}
	}
	// Degenerate cases: fewer nodes than workers, single node.
	b := topo.carveShards(active, 3, 7, 8, nil)
	if len(b)-1 > 3 {
		t.Errorf("3 active nodes carved into %d shards", len(b)-1)
	}
	bw := topo.carveByWeight(active, 5, 1, nil)
	if bw[0] != 0 || bw[len(bw)-1] != 5 {
		t.Errorf("carveByWeight bounds %v do not tile [0, 5)", bw)
	}
}
