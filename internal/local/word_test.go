// Word-plane tests: encoding round-trips, observational equivalence of the
// word fast path with the boxed path on every engine and the batch runner,
// the mixed-program fallback, and the MaxRounds boundary on the word path.
package local_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

func TestWordEncoding(t *testing.T) {
	t.Parallel()
	if local.NilWord != 0 {
		t.Fatalf("NilWord must be the zero word, got %#x", uint64(local.NilWord))
	}
	for _, tc := range []struct {
		tag     uint8
		payload uint64
	}{
		{1, 0}, {1, 1}, {7, 0}, {3, local.WordPayloadMask}, {2, 12345678901234567},
	} {
		w := local.MakeWord(tc.tag, tc.payload)
		if w == local.NilWord {
			t.Errorf("MakeWord(%d, %d) collides with NilWord", tc.tag, tc.payload)
		}
		if w.Tag() != tc.tag || w.Payload() != tc.payload&local.WordPayloadMask {
			t.Errorf("MakeWord(%d, %#x) round-trips to (%d, %#x)", tc.tag, tc.payload, w.Tag(), w.Payload())
		}
	}
	for _, x := range []int{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), 123456789, -987654321} {
		w := local.MakeIntWord(5, x)
		if w.Tag() != 5 || w.Int() != x {
			t.Errorf("MakeIntWord(5, %d) round-trips to (%d, %d)", x, w.Tag(), w.Int())
		}
	}
}

// wordEcho and boxedEcho are the same logical program — accumulate a hash of
// everything heard, broadcast a per-round value, terminate after `rounds` —
// implemented on the word plane and the boxed plane. Every engine must
// produce identical outputs and Stats for the two.
type wordEcho struct {
	v      local.View
	acc    uint64
	rounds int
	out    []uint64
	idx    int
}

func (n *wordEcho) RoundW(r int, recv, send []local.Word) bool {
	for p, m := range recv {
		if m != local.NilWord {
			n.acc = n.acc*1099511628211 + uint64(p) ^ m.Payload()
		}
	}
	if r > n.rounds {
		n.out[n.idx] = n.acc
		return true
	}
	x := n.v.Rand.Uint64() & local.WordPayloadMask
	for p := range send {
		send[p] = local.MakeWord(1, x^uint64(p))
	}
	return false
}

type boxedEcho struct {
	v      local.View
	acc    uint64
	rounds int
	out    []uint64
	idx    int
}

func (n *boxedEcho) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for p, m := range recv {
		if m != nil {
			n.acc = n.acc*1099511628211 + uint64(p) ^ m.(local.Word).Payload()
		}
	}
	if r > n.rounds {
		n.out[n.idx] = n.acc
		return nil, true
	}
	x := n.v.Rand.Uint64() & local.WordPayloadMask
	send := make([]local.Message, n.v.Deg)
	for p := range send {
		send[p] = local.MakeWord(1, x^uint64(p))
	}
	return send, false
}

func wordEchoFactory(rounds int, out []uint64) local.Factory {
	idx := 0
	return func(v local.View) local.Node {
		n := &wordEcho{v: v, rounds: rounds, out: out, idx: idx}
		idx++
		return local.WordProgram(n)
	}
}

func boxedEchoFactory(rounds int, out []uint64) local.Factory {
	idx := 0
	return func(v local.View) local.Node {
		n := &boxedEcho{v: v, rounds: rounds, out: out, idx: idx}
		idx++
		return n
	}
}

// TestWordEnginesMatchBoxed runs the word and boxed implementations of the
// same program under every engine and the batch runner: outputs and Stats
// must agree exactly, which pins that the word plane is observationally
// identical to the boxed plane (delivery, termination, message accounting).
func TestWordEnginesMatchBoxed(t *testing.T) {
	t.Parallel()
	g := graph.RandomGraph(120, 0.05, prob.NewSource(303).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	mkOpts := func() local.Options {
		src := prob.NewSource(8)
		return local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1))}
	}
	refOut := make([]uint64, n)
	refStats, err := local.SequentialEngine{}.Run(topo, boxedEchoFactory(5, refOut), mkOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range allEngines() {
		out := make([]uint64, n)
		stats, err := eng.e.Run(topo, wordEchoFactory(5, out), mkOpts())
		if err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if stats != refStats {
			t.Errorf("%s: word stats %+v != boxed stats %+v", eng.name, stats, refStats)
		}
		for v := range out {
			if out[v] != refOut[v] {
				t.Fatalf("%s: word path diverges from boxed at node %d: %x vs %x", eng.name, v, out[v], refOut[v])
			}
		}
	}
}

// TestWordMixedProgramFallsBack pins the fallback rule: when even one node
// of a run is not a WordNode, the whole run takes the boxed path, and word
// programs (via their WordProgram adapters) still exchange messages
// correctly with the boxed node.
func TestWordMixedProgramFallsBack(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(40)
	topo := local.NewTopology(g)
	n := g.N()
	mk := func(mixed bool) (local.Factory, []uint64) {
		out := make([]uint64, n)
		idx := 0
		return func(v local.View) local.Node {
			i := idx
			idx++
			if mixed && i == n/2 {
				// One plain boxed node speaking the same Word protocol.
				return &boxedEcho{v: v, rounds: 5, out: out, idx: i}
			}
			return local.WordProgram(&wordEcho{v: v, rounds: 5, out: out, idx: i})
		}, out
	}
	mkOpts := func() local.Options {
		src := prob.NewSource(9)
		return local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1))}
	}
	pureF, pureOut := mk(false)
	pureStats, err := local.SequentialEngine{}.Run(topo, pureF, mkOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range allEngines() {
		mixedF, mixedOut := mk(true)
		stats, err := eng.e.Run(topo, mixedF, mkOpts())
		if err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if stats != pureStats {
			t.Errorf("%s: mixed stats %+v != pure word stats %+v", eng.name, stats, pureStats)
		}
		for v := range mixedOut {
			if mixedOut[v] != pureOut[v] {
				t.Fatalf("%s: mixed run diverges at node %d", eng.name, v)
			}
		}
	}
}

// TestBatchMixedWordAndBoxedTrials runs one batch holding both a word trial
// and a boxed trial of the same program: each must match its standalone
// sequential run exactly (the two plane pairs coexist without interference).
func TestBatchMixedWordAndBoxedTrials(t *testing.T) {
	t.Parallel()
	g := graph.RandomGraph(90, 0.06, prob.NewSource(41).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	opts := func(seed uint64) local.Options { return local.Options{Source: prob.NewSource(seed)} }

	wOut := make([]uint64, n)
	bOut := make([]uint64, n)
	stats, errs := local.BatchRun(topo, []local.Trial{
		{Factory: wordEchoFactory(4, wOut), Opts: opts(1)},
		{Factory: boxedEchoFactory(4, bOut), Opts: opts(2)},
	}, local.BatchOptions{})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
	}

	wantW := make([]uint64, n)
	wantStatsW, err := local.SequentialEngine{}.Run(topo, wordEchoFactory(4, wantW), opts(1))
	if err != nil {
		t.Fatal(err)
	}
	wantB := make([]uint64, n)
	wantStatsB, err := local.SequentialEngine{}.Run(topo, boxedEchoFactory(4, wantB), opts(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats[0] != wantStatsW || stats[1] != wantStatsB {
		t.Errorf("batch stats %+v/%+v, want %+v/%+v", stats[0], stats[1], wantStatsW, wantStatsB)
	}
	for v := 0; v < n; v++ {
		if wOut[v] != wantW[v] {
			t.Fatalf("word trial diverges at node %d", v)
		}
		if bOut[v] != wantB[v] {
			t.Fatalf("boxed trial diverges at node %d", v)
		}
	}
}

// wordNonTerminating never finishes; exercises MaxRounds on the word path.
type wordNonTerminating struct{}

func (wordNonTerminating) RoundW(r int, recv, send []local.Word) bool {
	local.Broadcast(send, local.MakeWord(1, uint64(r)))
	return false
}

// TestWordMaxRounds pins the MaxRounds abort on the word path of every
// engine and of the batch runner.
func TestWordMaxRounds(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(8)
	topo := local.NewTopology(g)
	f := func(local.View) local.Node { return local.WordProgram(wordNonTerminating{}) }
	for _, eng := range allEngines() {
		stats, err := eng.e.Run(topo, f, local.Options{MaxRounds: 6})
		if err == nil {
			t.Errorf("%s: word path should abort at MaxRounds", eng.name)
		} else if stats.Rounds != 6 {
			t.Errorf("%s: aborted run executed %d rounds, want 6", eng.name, stats.Rounds)
		}
	}
}

// TestWordProgramAdapterRoundTrip drives the WordProgram adapter's boxed
// Round directly (as a third-party boxed engine would): silent ports decode
// to NilWord, sends are boxed Words, and an all-silent round returns a nil
// send slice.
func TestWordProgramAdapterRoundTrip(t *testing.T) {
	t.Parallel()
	echo := local.WordFunc(func(r int, recv, send []local.Word) bool {
		for p, m := range recv {
			if m != local.NilWord {
				send[p] = m
			}
		}
		return r >= 2
	})
	node := local.WordProgram(echo)
	in := local.MakeWord(3, 77)
	send, done := node.Round(1, []local.Message{nil, in, nil})
	if done {
		t.Fatal("round 1 must not terminate")
	}
	if send == nil || send[0] != nil || send[2] != nil {
		t.Fatalf("silent ports must stay nil, got %v", send)
	}
	if w, ok := send[1].(local.Word); !ok || w != in {
		t.Fatalf("port 1 should echo %v, got %v", in, send[1])
	}
	send, done = node.Round(2, []local.Message{nil, nil, nil})
	if !done {
		t.Fatal("round 2 must terminate")
	}
	if send != nil {
		t.Fatalf("all-silent round must send nothing, got %v", send)
	}
}
