// Golden-trace determinism regression: one fixed (graph, program, seed)
// combination per topology class is executed under every engine, the full
// message trace is folded into an FNV-1a hash, and the result is compared
// against checked-in golden values. The cross-engine suite in
// determinism_test.go proves the engines agree with each other; this file
// pins them to a fixed point in time, so a CSR-induced neighbor-iteration
// or port-numbering change fails loudly even if every engine drifts in the
// same way.
//
// If a deliberate trace-affecting change is made (e.g. a new port-numbering
// convention), regenerate the constants by running the test and copying the
// "got" hashes from the failure output.
package local_test

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

const fnvOffset64 = 14695981039346656037

// fnvFold folds the 8 bytes of x into a running FNV-1a hash.
func fnvFold(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * 1099511628211
		x >>= 8
	}
	return h
}

// traceNode is the trace-capturing program: it folds every received
// (round, port, payload) triple and every random draw into a per-node hash,
// so the final hashes depend on the complete message trace — any change to
// neighbor order, port numbering or delivery reindexing alters them.
type traceNode struct {
	v      local.View
	acc    uint64
	rounds int
	out    []uint64
	idx    int
}

func (n *traceNode) Round(r int, recv []local.Message) ([]local.Message, bool) {
	for p, m := range recv {
		if m != nil {
			n.acc = fnvFold(fnvFold(fnvFold(n.acc, uint64(r)), uint64(p)), m.(uint64))
		}
	}
	if r > n.rounds {
		n.out[n.idx] = n.acc
		return nil, true
	}
	x := n.v.Rand.Uint64()
	n.acc = fnvFold(n.acc, x)
	send := make([]local.Message, n.v.Deg)
	for p := range send {
		send[p] = x ^ uint64(p)<<32 ^ uint64(n.v.ID)
	}
	return send, false
}

func traceFactory(rounds int, out []uint64) local.Factory {
	idx := 0
	return func(v local.View) local.Node {
		n := &traceNode{v: v, rounds: rounds, out: out, idx: idx}
		idx++
		return n
	}
}

// foldRun combines per-node hashes (in topology order) and the run stats
// into the single golden value.
func foldRun(out []uint64, rounds int, messages int64) uint64 {
	h := uint64(fnvOffset64)
	for _, x := range out {
		h = fnvFold(h, x)
	}
	h = fnvFold(h, uint64(rounds))
	h = fnvFold(h, uint64(messages))
	return h
}

// traceHash runs the trace program on g under eng with fixed seeds and
// returns the folded trace hash.
func traceHash(t *testing.T, g *graph.Graph, eng local.Engine, seed uint64) uint64 {
	t.Helper()
	topo := local.NewTopology(g)
	src := prob.NewSource(seed)
	ids := local.PermutationIDs(g.N(), src.Fork(1))
	out := make([]uint64, g.N())
	stats, err := eng.Run(topo, traceFactory(5, out), local.Options{Source: src, IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	return foldRun(out, stats.Rounds, stats.Messages)
}

// coloringHash runs the full Δ+1 coloring pipeline and folds the resulting
// colors (a complete, data-dependent multi-phase trace digest).
func coloringHash(t *testing.T, g *graph.Graph, eng local.Engine) uint64 {
	t.Helper()
	src := prob.NewSource(5)
	ids := local.PermutationIDs(g.N(), src.Fork(2))
	res, err := coloring.DeltaPlusOne(g, eng, local.Options{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, len(res.Colors))
	for v, c := range res.Colors {
		out[v] = uint64(c)
	}
	return foldRun(out, res.Stats.Rounds, res.Stats.Messages)
}

// goldenTraces are the checked-in hashes, one per (graph, program) case;
// every engine must reproduce each bit-identically, on every platform.
var goldenTraces = map[string]uint64{
	"sparse500/trace":     0x7f34371bcd366ebf,
	"cycle64/trace":       0xa29ba09832205403,
	"star8/trace":         0xb3d7b8c1e3482083,
	"sparse300/coloring":  0xfdd6cce7493f9d13,
	"sparse500/bit-trace": 0xe85f728d2a25fc57,
}

// bitTraceNode is traceNode on the packed bit plane: it folds every
// received (round, port, lane) triple and every random draw into a per-node
// hash and sends a draw-dependent pattern of trit messages, so the final
// hashes depend on the complete bit-plane message trace — presence bits
// included.
type bitTraceNode struct {
	v      local.View
	acc    uint64
	rounds int
	out    []uint64
	idx    int
}

var _ local.Bit2Node = (*bitTraceNode)(nil)

func (n *bitTraceNode) Bit2() {}

func (n *bitTraceNode) RoundB(r int, recv, send local.BitRow) bool {
	for p := 0; p < recv.Len(); p++ {
		if recv.Has(p) {
			n.acc = fnvFold(fnvFold(fnvFold(n.acc, uint64(r)), uint64(p)), recv.Get(p))
		}
	}
	if r > n.rounds {
		n.out[n.idx] = n.acc
		return true
	}
	x := n.v.Rand.Uint64()
	n.acc = fnvFold(n.acc, x)
	for p := 0; p < send.Len(); p++ {
		if x>>(p%21)&1 == 1 {
			send.Set(p, x>>(p%21+21)&3)
		}
	}
	return false
}

func bitTraceFactory(rounds int, out []uint64) local.Factory {
	idx := 0
	return func(v local.View) local.Node {
		n := &bitTraceNode{v: v, rounds: rounds, out: out, idx: idx}
		idx++
		return local.BitProgram(n)
	}
}

// TestGoldenTracesBitPlane pins the bit plane to a fixed point in time AND
// to the other planes: the bit trace program must reproduce one checked-in
// hash under every engine on every rung of the plane ladder (bit, word via
// the adapter, boxed), so a packing, delivery-table or port-numbering
// change in any representation fails loudly.
func TestGoldenTracesBitPlane(t *testing.T) {
	t.Parallel()
	g := graph.RandomSparseGraph(500, 1500, prob.NewSource(77).Rand())
	topo := local.NewTopology(g)
	want := goldenTraces["sparse500/bit-trace"]
	for _, eng := range allEngines() {
		for _, plane := range []local.Plane{local.PlaneBit, local.PlaneWord, local.PlaneBoxed} {
			src := prob.NewSource(99)
			ids := local.PermutationIDs(g.N(), src.Fork(1))
			out := make([]uint64, g.N())
			stats, err := local.ForcePlane(eng.e, plane).Run(topo, bitTraceFactory(5, out), local.Options{Source: src, IDs: ids})
			if err != nil {
				t.Fatalf("%s/%s: %v", eng.name, plane, err)
			}
			if got := foldRun(out, stats.Rounds, stats.Messages); got != want {
				t.Errorf("%s/%s: bit trace hash %#016x, want golden %#016x", eng.name, plane, got, want)
			}
		}
	}
}

// goldenBatchSeeds are the per-trial golden hashes of a multi-seed batched
// sweep over the sparse500 topology: trial k of the batch must reproduce
// exactly the hash of a standalone run with seed 99+k (the seed-99 value is
// the same constant TestGoldenTraces pins). Regenerate like goldenTraces.
var goldenBatchSeeds = []uint64{
	0x7f34371bcd366ebf, // seed 99 — identical to goldenTraces["sparse500/trace"]
	0x6ce23e10a12243d4, // seed 100
	0x4371005bf2235e7d, // seed 101
}

// TestGoldenTracesBatch runs the multi-seed sweep through BatchRun: one
// shared topology, one trial per seed, and every trial's folded trace hash
// must equal both the checked-in golden value and a standalone
// SequentialEngine run with the same seed.
func TestGoldenTracesBatch(t *testing.T) {
	t.Parallel()
	g := graph.RandomSparseGraph(500, 1500, prob.NewSource(77).Rand())
	topo := local.NewTopology(g)
	trials := make([]local.Trial, len(goldenBatchSeeds))
	outs := make([][]uint64, len(goldenBatchSeeds))
	for k := range goldenBatchSeeds {
		src := prob.NewSource(99 + uint64(k))
		outs[k] = make([]uint64, g.N())
		trials[k] = local.Trial{
			Factory: traceFactory(5, outs[k]),
			Opts:    local.Options{Source: src, IDs: local.PermutationIDs(g.N(), src.Fork(1))},
		}
	}
	stats, errs := local.BatchRun(topo, trials, local.BatchOptions{})
	for k, want := range goldenBatchSeeds {
		if errs[k] != nil {
			t.Fatalf("trial %d: %v", k, errs[k])
		}
		got := foldRun(outs[k], stats[k].Rounds, stats[k].Messages)
		if got != want {
			t.Errorf("batch trial %d (seed %d) trace hash %#016x, want golden %#016x", k, 99+k, got, want)
		}
		if standalone := traceHash(t, g, local.SequentialEngine{}, 99+uint64(k)); got != standalone {
			t.Errorf("batch trial %d diverges from standalone sequential: %#016x vs %#016x", k, got, standalone)
		}
	}
}

func TestGoldenTraces(t *testing.T) {
	star, err := graph.SubdividedStar(8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		run  func(t *testing.T, eng local.Engine) uint64
	}{
		{"sparse500/trace", func(t *testing.T, eng local.Engine) uint64 {
			return traceHash(t, graph.RandomSparseGraph(500, 1500, prob.NewSource(77).Rand()), eng, 99)
		}},
		{"cycle64/trace", func(t *testing.T, eng local.Engine) uint64 {
			return traceHash(t, graph.Cycle(64), eng, 41)
		}},
		{"star8/trace", func(t *testing.T, eng local.Engine) uint64 {
			return traceHash(t, star.AsGraph(), eng, 23)
		}},
		{"sparse300/coloring", func(t *testing.T, eng local.Engine) uint64 {
			return coloringHash(t, graph.RandomSparseGraph(300, 900, prob.NewSource(61).Rand()), eng)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want := goldenTraces[tc.name]
			for _, eng := range allEngines() {
				got := tc.run(t, eng.e)
				if got != want {
					t.Errorf("%s: engine %s trace hash %#016x, want golden %#016x",
						tc.name, eng.name, got, want)
				}
			}
		})
	}
}
