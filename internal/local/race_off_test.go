//go:build !race

package local_test

// raceEnabled reports whether the race detector is active; allocation pins
// skip under it because instrumentation changes malloc counts.
const raceEnabled = false
