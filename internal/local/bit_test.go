// Bit-plane tests: lane encoding round-trips, observational equivalence of
// the bit fast path with the word and boxed paths on every engine and the
// batch runner, the plane fallback ladder, forced-plane rejection, and the
// MaxRounds boundary on the bit path.
package local_test

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

func TestLaneEncoding(t *testing.T) {
	t.Parallel()
	for _, x := range []int{0, 1, -1, 2, -2} {
		if got := local.LaneInt(local.IntLane(x)); got != x {
			t.Errorf("IntLane(%d) round-trips to %d", x, got)
		}
	}
	// The splitting trits must fit 2-bit lanes.
	for _, x := range []int{-1, 0, 1} {
		if v := local.IntLane(x); v > 3 {
			t.Errorf("trit %d encodes to lane %d, does not fit 2 bits", x, v)
		}
	}
}

// bitEcho is the cross-plane equivalence program: every round it hashes
// everything it hears — presence and value separately, so "sent 0" versus
// silence matters — and sends a draw-dependent subset of single-bit
// messages. Run on the bit plane directly, on the word plane via the
// adapter, or fully boxed, it must produce identical outputs and Stats.
type bitEcho struct {
	v      local.View
	acc    uint64
	rounds int
	out    []uint64
	idx    int
}

func (n *bitEcho) RoundB(r int, recv, send local.BitRow) bool {
	for p := 0; p < recv.Len(); p++ {
		if recv.Has(p) {
			n.acc = n.acc*1099511628211 + uint64(p)<<8 ^ recv.Get(p)
		}
	}
	if r > n.rounds {
		n.out[n.idx] = n.acc
		return true
	}
	x := n.v.Rand.Uint64()
	for p := 0; p < send.Len(); p++ {
		if x>>(p%32)&1 == 1 {
			send.Set(p, x>>(p%32+32)&1)
		}
	}
	return false
}

func bitEchoFactory(rounds int, out []uint64) local.Factory {
	idx := 0
	return func(v local.View) local.Node {
		n := &bitEcho{v: v, rounds: rounds, out: out, idx: idx}
		idx++
		return local.BitProgram(n)
	}
}

// bit2Echo is bitEcho with trit-valued (2-bit) lanes, including negative
// zigzag-encoded values.
type bit2Echo struct {
	bitEcho
}

func (n *bit2Echo) Bit2() {}

func (n *bit2Echo) RoundB(r int, recv, send local.BitRow) bool {
	for p := 0; p < recv.Len(); p++ {
		if recv.Has(p) {
			n.acc = n.acc*1099511628211 + uint64(p)<<8 ^ uint64(int64(recv.Int(p)))
		}
	}
	if r > n.rounds {
		n.out[n.idx] = n.acc
		return true
	}
	x := n.v.Rand.Uint64()
	for p := 0; p < send.Len(); p++ {
		if x>>(p%32)&1 == 1 {
			send.SetInt(p, int(x>>(p%32+32)%3)-1) // a trit in {-1, 0, 1}
		}
	}
	return false
}

func bit2EchoFactory(rounds int, out []uint64) local.Factory {
	idx := 0
	return func(v local.View) local.Node {
		n := &bit2Echo{bitEcho{v: v, rounds: rounds, out: out, idx: idx}}
		idx++
		return local.BitProgram(n)
	}
}

// planeCases are the forced-plane variants a bit program must agree across.
func planeCases() []local.Plane {
	return []local.Plane{local.PlaneAuto, local.PlaneBit, local.PlaneWord, local.PlaneBoxed}
}

// TestBitEnginesMatchAllPlanes runs the bit (and bit2) echo programs under
// every engine and every plane of the fallback ladder: outputs and Stats
// must agree exactly with a boxed sequential reference, which pins that the
// packed planes are observationally identical to the word and boxed planes
// (delivery, termination, presence-vs-silence, message accounting).
func TestBitEnginesMatchAllPlanes(t *testing.T) {
	t.Parallel()
	g := graph.RandomGraph(120, 0.05, prob.NewSource(404).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	mkOpts := func() local.Options {
		src := prob.NewSource(11)
		return local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1))}
	}
	for _, prog := range []struct {
		name string
		mk   func(rounds int, out []uint64) local.Factory
	}{
		{"bit", bitEchoFactory},
		{"bit2", bit2EchoFactory},
	} {
		refOut := make([]uint64, n)
		refStats, err := local.ForcePlane(local.SequentialEngine{}, local.PlaneBoxed).
			Run(topo, prog.mk(5, refOut), mkOpts())
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range allEngines() {
			for _, plane := range planeCases() {
				out := make([]uint64, n)
				stats, err := local.ForcePlane(eng.e, plane).Run(topo, prog.mk(5, out), mkOpts())
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", prog.name, eng.name, plane, err)
				}
				if stats != refStats {
					t.Errorf("%s/%s/%s: stats %+v != boxed seq stats %+v", prog.name, eng.name, plane, stats, refStats)
				}
				for v := range out {
					if out[v] != refOut[v] {
						t.Fatalf("%s/%s/%s: diverges from boxed seq at node %d: %x vs %x",
							prog.name, eng.name, plane, v, out[v], refOut[v])
					}
				}
			}
		}
	}
}

// boxedOnly hides every fast-path interface of a node, leaving bare Round —
// one such node in a run must drop the whole run to the boxed plane.
type boxedOnly struct{ n local.Node }

func (b boxedOnly) Round(r int, recv []local.Message) ([]local.Message, bool) {
	return b.n.Round(r, recv)
}

// wordOnly hides the bit path but keeps the word path.
type wordOnly struct{ n local.Node }

func (w wordOnly) Round(r int, recv []local.Message) ([]local.Message, bool) {
	return w.n.Round(r, recv)
}

func (w wordOnly) RoundW(r int, recv, send []local.Word) bool {
	return w.n.(local.WordNode).RoundW(r, recv, send)
}

// TestBitMixedProgramFallsBack pins the fallback ladder: hiding the bit
// interface of one node drops the run to the word plane, hiding everything
// drops it to the boxed plane, and in both cases the run stays bit-identical
// to the pure bit-plane run on every engine.
func TestBitMixedProgramFallsBack(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(40)
	topo := local.NewTopology(g)
	n := g.N()
	mk := func(wrap func(local.Node) local.Node) (local.Factory, []uint64) {
		out := make([]uint64, n)
		inner := bitEchoFactory(5, out)
		idx := 0
		return func(v local.View) local.Node {
			node := inner(v)
			if idx == n/2 && wrap != nil {
				node = wrap(node)
			}
			idx++
			return node
		}, out
	}
	mkOpts := func() local.Options {
		src := prob.NewSource(12)
		return local.Options{Source: src, IDs: local.PermutationIDs(n, src.Fork(1))}
	}
	pureF, pureOut := mk(nil)
	pureStats, err := local.SequentialEngine{}.Run(topo, pureF, mkOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, mix := range []struct {
		name string
		wrap func(local.Node) local.Node
	}{
		{"to-word", func(n local.Node) local.Node { return wordOnly{n: n} }},
		{"to-boxed", func(n local.Node) local.Node { return boxedOnly{n: n} }},
	} {
		for _, eng := range allEngines() {
			mixedF, mixedOut := mk(mix.wrap)
			stats, err := eng.e.Run(topo, mixedF, mkOpts())
			if err != nil {
				t.Fatalf("%s/%s: %v", mix.name, eng.name, err)
			}
			if stats != pureStats {
				t.Errorf("%s/%s: mixed stats %+v != pure bit stats %+v", mix.name, eng.name, stats, pureStats)
			}
			for v := range mixedOut {
				if mixedOut[v] != pureOut[v] {
					t.Fatalf("%s/%s: mixed run diverges at node %d", mix.name, eng.name, v)
				}
			}
		}
	}
}

// TestBatchMixedBitWordBoxedTrials runs one batch holding a bit trial, a
// word trial and a boxed trial: each must match its standalone sequential
// run exactly (the three plane pairs coexist without interference), which is
// the batch-runner fallback contract.
func TestBatchMixedBitWordBoxedTrials(t *testing.T) {
	t.Parallel()
	g := graph.RandomGraph(90, 0.06, prob.NewSource(42).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	opts := func(seed uint64) local.Options { return local.Options{Source: prob.NewSource(seed)} }

	bOut := make([]uint64, n)
	wOut := make([]uint64, n)
	xOut := make([]uint64, n)
	stats, errs := local.BatchRun(topo, []local.Trial{
		{Factory: bit2EchoFactory(4, bOut), Opts: opts(1)},
		{Factory: wordEchoFactory(4, wOut), Opts: opts(2)},
		{Factory: boxedEchoFactory(4, xOut), Opts: opts(3)},
	}, local.BatchOptions{})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
	}
	for i, ref := range []struct {
		f   func(int, []uint64) local.Factory
		out []uint64
	}{
		{bit2EchoFactory, bOut},
		{wordEchoFactory, wOut},
		{boxedEchoFactory, xOut},
	} {
		want := make([]uint64, n)
		wantStats, err := local.SequentialEngine{}.Run(topo, ref.f(4, want), opts(uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		if stats[i] != wantStats {
			t.Errorf("trial %d stats %+v, want %+v", i, stats[i], wantStats)
		}
		for v := 0; v < n; v++ {
			if ref.out[v] != want[v] {
				t.Fatalf("trial %d diverges at node %d", i, v)
			}
		}
	}
}

// TestForcePlaneRejects pins the loud-rejection contract: forcing a plane
// the program cannot take errors on every engine and in a batch trial
// instead of silently falling back, and ParsePlane rejects unknown names.
func TestForcePlaneRejects(t *testing.T) {
	t.Parallel()
	if _, err := local.ParsePlane("simd"); err == nil {
		t.Error("ParsePlane should reject unknown names")
	}
	for _, name := range []string{"auto", "boxed", "word", "bit"} {
		p, err := local.ParsePlane(name)
		if err != nil {
			t.Fatalf("ParsePlane(%q): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("ParsePlane(%q).String() = %q", name, p)
		}
	}
	g := graph.Cycle(8)
	topo := local.NewTopology(g)
	boxedF := func(local.View) local.Node {
		return boxedOnly{n: local.BitProgram(local.BitFunc(func(int, local.BitRow, local.BitRow) bool { return true }))}
	}
	for _, plane := range []local.Plane{local.PlaneBit, local.PlaneWord} {
		for _, eng := range allEngines() {
			if _, err := local.ForcePlane(eng.e, plane).Run(topo, boxedF, local.Options{}); err == nil {
				t.Errorf("%s: forcing %s on a boxed-only program should fail", eng.name, plane)
			} else if !strings.Contains(err.Error(), plane.String()) {
				t.Errorf("%s: error %q does not name the plane", eng.name, err)
			}
		}
		_, errs := local.BatchRun(topo, []local.Trial{{Factory: boxedF, Opts: local.Options{Plane: plane}}}, local.BatchOptions{})
		if errs[0] == nil {
			t.Errorf("batch: forcing %s on a boxed-only program should fail the trial", plane)
		}
	}
	// A bit program accepts every rung of the ladder (covered in depth by
	// TestBitEnginesMatchAllPlanes); a word program must reject only bit.
	mkWordF := func() local.Factory { return wordEchoFactory(2, make([]uint64, topo.N())) }
	if _, err := local.ForcePlane(local.SequentialEngine{}, local.PlaneBit).Run(topo, mkWordF(), local.Options{Source: prob.NewSource(1)}); err == nil {
		t.Error("forcing bit on a word-only program should fail")
	}
	if _, err := local.ForcePlane(local.SequentialEngine{}, local.PlaneWord).Run(topo, mkWordF(), local.Options{Source: prob.NewSource(1)}); err != nil {
		t.Errorf("forcing word on a word program: %v", err)
	}
}

// bitNonTerminating never finishes; exercises MaxRounds on the bit path.
type bitNonTerminating struct{}

func (bitNonTerminating) RoundB(r int, recv, send local.BitRow) bool {
	send.Broadcast(1)
	return false
}

// TestBitMaxRounds pins the MaxRounds abort on the bit path of every engine
// and of the batch runner.
func TestBitMaxRounds(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(8)
	topo := local.NewTopology(g)
	f := func(local.View) local.Node { return local.BitProgram(bitNonTerminating{}) }
	for _, eng := range allEngines() {
		stats, err := eng.e.Run(topo, f, local.Options{MaxRounds: 6})
		if err == nil {
			t.Errorf("%s: bit path should abort at MaxRounds", eng.name)
		} else if stats.Rounds != 6 {
			t.Errorf("%s: aborted run executed %d rounds, want 6", eng.name, stats.Rounds)
		}
	}
}

// TestBitProgramAdapterRoundTrip drives the BitProgram adapter's boxed
// Round directly (as a third-party boxed engine would): silent ports decode
// to absent lanes, a present 0 stays distinguishable from silence, sends
// are boxed non-zero Words, and an all-silent round returns a nil slice.
func TestBitProgramAdapterRoundTrip(t *testing.T) {
	t.Parallel()
	echo := local.Bit2Func(func(r int, recv, send local.Bit2Row) bool {
		for p := 0; p < recv.Len(); p++ {
			if recv.Has(p) {
				send.Set(p, recv.Get(p))
			}
		}
		return r >= 2
	})
	node := local.BitProgram(echo)
	in0 := local.MakeWord(1, 0) // a present "0" message
	in2 := local.MakeWord(1, 2)
	send, done := node.Round(1, []local.Message{nil, in2, in0})
	if done {
		t.Fatal("round 1 must not terminate")
	}
	if send == nil || send[0] != nil {
		t.Fatalf("silent port must stay nil, got %v", send)
	}
	if w, ok := send[1].(local.Word); !ok || w.Payload() != 2 || w == local.NilWord {
		t.Fatalf("port 1 should echo lane 2 as a non-nil word, got %v", send[1])
	}
	if w, ok := send[2].(local.Word); !ok || w.Payload() != 0 || w == local.NilWord {
		t.Fatalf("port 2 should echo the present 0 as a non-NilWord word, got %v", send[2])
	}
	send, done = node.Round(2, []local.Message{nil, nil, nil})
	if !done {
		t.Fatal("round 2 must terminate")
	}
	if send != nil {
		t.Fatalf("all-silent round must send nothing, got %v", send)
	}
}
