//go:build !race

package local

// raceDetector reports whether this build is race-instrumented; see
// race_on.go.
const raceDetector = false
