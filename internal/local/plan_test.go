package local

import (
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/prob"
)

// planFixture builds the power-law topology and full active set the shard
// plan tests carve.
func planFixture(t *testing.T) (*Topology, []int32, int64) {
	t.Helper()
	g := graph.RandomPowerLawGraph(2000, 2.1, 300, prob.NewSource(7).Rand())
	topo := NewTopology(g)
	n := topo.N()
	active := make([]int32, n)
	weight := int64(0)
	for v := range active {
		active[v] = int32(v)
		weight += 1 + int64(topo.Deg(v))
	}
	return topo, active, weight
}

// prefixWeight is the carve weight of active[:remaining].
func prefixWeight(topo *Topology, active []int32, remaining int) int64 {
	w := int64(0)
	for _, v := range active[:remaining] {
		w += 1 + int64(topo.Deg(int(v)))
	}
	return w
}

// TestShardPlanSticky pins the three regimes of the sticky carve cache:
// exact reuse while no node terminates, boundary clamping under mild
// attrition (affinity preserved, carve-time weight memo untouched so decay
// accumulates), and a true re-carve once the active weight drops past
// stickyReuseNum/stickyReuseDen of its carve-time value.
func TestShardPlanSticky(t *testing.T) {
	t.Parallel()
	topo, active, weight := planFixture(t)
	n := len(active)
	const nw = 4
	sp := newShardPlan(topo, nw, true)
	b := sp.shards(active, n, weight)
	if want := topo.carveShards(active, n, weight, nw, nil); !slices.Equal(b, want) {
		t.Fatalf("initial carve %v, want %v", b, want)
	}
	orig := slices.Clone(b)

	// Unchanged remaining: the cached bounds come back as-is — same values,
	// same backing array (no per-round carve work at all).
	again := sp.shards(active, n, weight)
	if &again[0] != &b[0] || !slices.Equal(again, orig) {
		t.Fatalf("unchanged remaining was not a pure reuse: %v vs %v", again, orig)
	}

	// Mild attrition: a handful of trailing nodes retire, weight stays above
	// the 7/8 threshold. Boundaries must be clamped to the shrunken prefix,
	// not re-carved, and the carve-time weight memo must not refresh.
	rem := n - 3
	w2 := weight - prefixWeight(topo, active[rem:], 3)
	if w2*stickyReuseDen <= weight*stickyReuseNum {
		t.Fatalf("fixture decayed past the sticky threshold with 3 nodes; pick a lighter tail")
	}
	clamped := sp.shards(active, rem, w2)
	for i := range clamped {
		want := min(orig[i], rem)
		if clamped[i] != want {
			t.Errorf("clamped bound %d = %d, want %d (orig %d, remaining %d)", i, clamped[i], want, orig[i], rem)
		}
	}
	if sp.carvedWeight != weight {
		t.Errorf("clamp reuse refreshed carvedWeight to %d; decay must accumulate from %d", sp.carvedWeight, weight)
	}

	// Clamping below an interior boundary yields empty trailing shards — the
	// partition the dispatch loops must skip without breaking worker↔shard
	// alignment. The weight is synthetic (still above threshold) to force
	// the clamp path; shards() trusts its caller's accounting.
	remLow := orig[2] - 1
	low := sp.shards(active, remLow, w2)
	if low[len(low)-1] != remLow {
		t.Fatalf("clamped bounds %v do not end at remaining %d", low, remLow)
	}
	for i := 1; i < len(low); i++ {
		if low[i] < low[i-1] {
			t.Fatalf("clamped bounds %v not monotone", low)
		}
	}
	empties := 0
	for i := 0; i+1 < len(low); i++ {
		if low[i] == low[i+1] {
			empties++
		}
	}
	if empties == 0 {
		t.Errorf("clamp below an interior boundary produced no empty shard: %v (remaining %d)", low, remLow)
	}

	// Heavy attrition: weight below 7/8 of carve time forces a true
	// re-carve, refreshing both memo fields.
	rem2 := n / 2
	w3 := prefixWeight(topo, active, rem2)
	if w3*stickyReuseDen > weight*stickyReuseNum {
		t.Fatalf("half the nodes still hold over 7/8 of the weight; fixture unsuitable")
	}
	rec := sp.shards(active, rem2, w3)
	if want := topo.carveShards(active, rem2, w3, nw, nil); !slices.Equal(rec, want) {
		t.Errorf("post-decay carve %v, want fresh carve %v", rec, want)
	}
	if sp.carvedWeight != w3 || sp.carvedRemaining != rem2 {
		t.Errorf("re-carve memo = (%d, %d), want (%d, %d)", sp.carvedWeight, sp.carvedRemaining, w3, rem2)
	}
}

// TestShardPlanNonSticky pins the NoSticky ablation: any change in
// remaining re-carves (matching the pre-affinity behavior exactly), while
// an unchanged remaining still reuses — that reuse is valid in both modes
// because the carve inputs are identical.
func TestShardPlanNonSticky(t *testing.T) {
	t.Parallel()
	topo, active, weight := planFixture(t)
	n := len(active)
	const nw = 3
	sp := newShardPlan(topo, nw, false)
	b := sp.shards(active, n, weight)
	if again := sp.shards(active, n, weight); &again[0] != &b[0] {
		t.Error("non-sticky plan re-carved despite unchanged remaining")
	}
	rem := n - 1
	w2 := weight - (1 + int64(topo.Deg(int(active[n-1]))))
	rec := sp.shards(active, rem, w2)
	if want := topo.carveShards(active, rem, w2, nw, nil); !slices.Equal(rec, want) {
		t.Errorf("non-sticky carve %v, want fresh carve %v", rec, want)
	}
	if sp.carvedWeight != w2 {
		t.Errorf("non-sticky carve left carvedWeight=%d, want %d", sp.carvedWeight, w2)
	}
}

// TestShardPlanInvalidate pins that invalidate drops the cache: the next
// call re-carves even with unchanged inputs (the tiled path depends on
// this after reordering active[]).
func TestShardPlanInvalidate(t *testing.T) {
	t.Parallel()
	topo, active, weight := planFixture(t)
	n := len(active)
	sp := newShardPlan(topo, 4, true)
	sp.shards(active, n, weight)
	// Shuffle the active order: a stale carve would now split components of
	// weight differently than a fresh one.
	slices.Reverse(active)
	sp.invalidate()
	b := sp.shards(active, n, weight)
	if want := topo.carveShards(active, n, weight, 4, nil); !slices.Equal(b, want) {
		t.Errorf("post-invalidate carve %v, want fresh carve %v", b, want)
	}
}
