// Snapshot round-trip identity: a graph loaded from a binary CSR snapshot
// must be observationally indistinguishable from the freshly generated
// graph it was exported from — same neighbor order, same port numbering,
// same delivery tables — under every engine and every forced message plane.
// The pin is the folded message-trace hash of the golden-trace programs: a
// snapshot reader that reordered rows, dropped arcs, or rebuilt the CSR
// with different tie-breaking would shift ports and change the hash.
package local_test

import (
	"bytes"
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// roundTrip exports g as a snapshot and imports it back.
func roundTrip(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := g.ExportSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := graph.ImportSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestSnapshotRoundTripTraceIdentity runs the bit-capable trace program on
// a skewed power-law topology — fresh versus snapshot-loaded — across every
// engine × forced plane combination and requires bit-identical trace
// hashes. The power-law shape matters: its degree spread exercises the
// arc-balanced sharding and the packed planes' variable-width rows.
func TestSnapshotRoundTripTraceIdentity(t *testing.T) {
	t.Parallel()
	fresh := graph.RandomPowerLawGraph(2000, 2.2, 200, prob.NewSource(13).Rand())
	loaded := roundTrip(t, fresh)

	run := func(g *graph.Graph, eng local.Engine) uint64 {
		src := prob.NewSource(99)
		ids := local.PermutationIDs(g.N(), src.Fork(1))
		out := make([]uint64, g.N())
		stats, err := eng.Run(local.NewTopology(g), bitTraceFactory(5, out), local.Options{Source: src, IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		return foldRun(out, stats.Rounds, stats.Messages)
	}
	for _, eng := range allEngines() {
		for _, plane := range []local.Plane{local.PlaneBit, local.PlaneWord, local.PlaneBoxed} {
			e := local.ForcePlane(eng.e, plane)
			want := run(fresh, e)
			if got := run(loaded, e); got != want {
				t.Errorf("%s/%s: snapshot-loaded trace hash %#016x, fresh %#016x",
					eng.name, plane, got, want)
			}
		}
	}
}

// TestSnapshotRoundTripBoxedTraces repeats the identity check with the
// boxed-only trace program on the golden topologies, so the snapshot path
// is also pinned against the exact graphs whose hashes are checked in.
func TestSnapshotRoundTripBoxedTraces(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		seed uint64
	}{
		{"sparse500", graph.RandomSparseGraph(500, 1500, prob.NewSource(77).Rand()), 99},
		{"cycle64", graph.Cycle(64), 41},
	} {
		loaded := roundTrip(t, tc.g)
		for _, eng := range allEngines() {
			want := traceHash(t, tc.g, eng.e, tc.seed)
			if got := traceHash(t, loaded, eng.e, tc.seed); got != want {
				t.Errorf("%s/%s: snapshot-loaded trace hash %#016x, fresh %#016x",
					tc.name, eng.name, got, want)
			}
		}
		if want, ok := goldenTraces[tc.name+"/trace"]; ok {
			if got := traceHash(t, loaded, local.SequentialEngine{}, tc.seed); got != want {
				t.Errorf("%s: snapshot-loaded hash %#016x misses the checked-in golden %#016x",
					tc.name, got, want)
			}
		}
	}
}
