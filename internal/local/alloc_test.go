// Allocation-regression pins for the word-plane fast path: a steady-state
// round must perform zero heap allocations on every execution path
// (sequential, goroutine, worker pool, batch). The measurement is marginal —
// the same run at two round budgets, so one-time setup (views, nodes,
// planes, goroutine/worker spawn) cancels out and only the per-round cost
// remains; this is the engine-level sibling of the CSR builder's
// TestCSRBuilderAllocs-style constant-allocation pins.
package local_test

import (
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// marginalAllocs reports how many heap allocations `run` performs for the
// extra rounds of the second, longer invocation: allocs(run(hi)) -
// allocs(run(lo)). GC is disabled around the measurement so collector
// bookkeeping does not pollute the counter.
func marginalAllocs(t *testing.T, lo, hi int, run func(rounds int)) int64 {
	t.Helper()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	var m0, m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m0)
	run(lo)
	runtime.ReadMemStats(&m1)
	run(hi)
	runtime.ReadMemStats(&m2)
	return int64(m2.Mallocs-m1.Mallocs) - int64(m1.Mallocs-m0.Mallocs)
}

// TestWordPathZeroAllocsPerRound pins steady-state 0 allocs/round for a
// word program on all four execution paths. The slack of a few mallocs per
// hundred extra rounds absorbs runtime-internal noise (e.g. a goroutine
// stack growth) without letting a real per-round or per-node allocation —
// which would cost hundreds to hundreds of thousands of mallocs here —
// slip through.
func TestWordPathZeroAllocsPerRound(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	g := graph.RandomGraph(300, 0.03, prob.NewSource(55).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	const lo, hi = 5, 105
	const slack = 16 // ≤ 0.16 allocs per extra round ≈ 0
	paths := []struct {
		name string
		run  func(rounds int)
	}{
		{"seq", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.SequentialEngine{}).Run(topo, wordEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3)}); err != nil {
				t.Fatal(err)
			}
		}},
		{"goroutine", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.GoroutineEngine{}).Run(topo, wordEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3)}); err != nil {
				t.Fatal(err)
			}
		}},
		{"pool", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.WorkerPoolEngine{Workers: 3}).Run(topo, wordEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3)}); err != nil {
				t.Fatal(err)
			}
		}},
		{"batch", func(rounds int) {
			out1 := make([]uint64, n)
			out2 := make([]uint64, n)
			_, errs := local.BatchRun(topo, []local.Trial{
				{Factory: wordEchoFactory(rounds, out1), Opts: local.Options{Source: prob.NewSource(4)}},
				{Factory: wordEchoFactory(rounds, out2), Opts: local.Options{Source: prob.NewSource(5)}},
			}, local.BatchOptions{Workers: 3})
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		}},
	}
	for _, pt := range paths {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			extra := marginalAllocs(t, lo, hi, pt.run)
			if extra > slack {
				t.Errorf("%s: %d extra allocations for %d extra rounds, want ≈ 0 (≤ %d)",
					pt.name, extra, hi-lo, slack)
			}
		})
	}
}

// TestBitPathZeroAllocsPerRound is TestWordPathZeroAllocsPerRound for the
// packed bit planes: a steady-state round must allocate nothing on any of
// the four execution paths — the planes, the per-worker (or per-node)
// packed scratch rows, and the delivery table are all set up once.
func TestBitPathZeroAllocsPerRound(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	g := graph.RandomGraph(300, 0.03, prob.NewSource(55).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	const lo, hi = 5, 105
	const slack = 16 // ≤ 0.16 allocs per extra round ≈ 0
	paths := []struct {
		name string
		run  func(rounds int)
	}{
		{"seq", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.SequentialEngine{}).Run(topo, bitEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3)}); err != nil {
				t.Fatal(err)
			}
		}},
		{"goroutine", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.GoroutineEngine{}).Run(topo, bitEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3)}); err != nil {
				t.Fatal(err)
			}
		}},
		{"pool", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.WorkerPoolEngine{Workers: 3}).Run(topo, bitEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3)}); err != nil {
				t.Fatal(err)
			}
		}},
		{"batch", func(rounds int) {
			out1 := make([]uint64, n)
			out2 := make([]uint64, n)
			_, errs := local.BatchRun(topo, []local.Trial{
				{Factory: bitEchoFactory(rounds, out1), Opts: local.Options{Source: prob.NewSource(4)}},
				{Factory: bit2EchoFactory(rounds, out2), Opts: local.Options{Source: prob.NewSource(5)}},
			}, local.BatchOptions{Workers: 3})
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		}},
	}
	for _, pt := range paths {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			extra := marginalAllocs(t, lo, hi, pt.run)
			if extra > slack {
				t.Errorf("%s: %d extra allocations for %d extra rounds, want ≈ 0 (≤ %d)",
					pt.name, extra, hi-lo, slack)
			}
		})
	}
}

// castEchoFactory is castTail with a uniform stop round: every node runs
// the full budget, so the marginal-allocation measurement below sees a
// steady state that rides the fused CastB scatter (and, on the pool
// engine, tiled blocks — the 300-node fixture's weight fits the default
// tile budget, so the whole graph executes as one tile).
func castEchoFactory(rounds int, out []uint64) local.Factory {
	idx := 0
	return func(v local.View) local.Node {
		n := &castTail{v: v, stop: rounds, out: out, idx: idx}
		idx++
		return local.BitProgram(n)
	}
}

// TestFusedTiledZeroAllocsPerRound extends the bit-plane pin to the new
// fast paths: a BitBroadcaster program with prefetch, fusion and tiling
// active (the defaults) must still allocate nothing per steady-state round
// on the sequential, pool and batch paths. The tiled pool path's only
// allocations — the tiler's scratch and the per-worker retirement buffer —
// are one-time and cancel in the marginal measurement by design; a
// per-block or per-tile allocation would show up as ≥ 1 alloc per 4 rounds
// and trip the slack immediately.
func TestFusedTiledZeroAllocsPerRound(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	g := graph.RandomGraph(300, 0.03, prob.NewSource(55).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	const lo, hi = 5, 105
	const slack = 16
	paths := []struct {
		name string
		run  func(rounds int)
	}{
		{"seq", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.SequentialEngine{}).Run(topo, castEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3)}); err != nil {
				t.Fatal(err)
			}
		}},
		{"pool", func(rounds int) {
			out := make([]uint64, n)
			if _, err := (local.WorkerPoolEngine{Workers: 3}).Run(topo, castEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3)}); err != nil {
				t.Fatal(err)
			}
		}},
		{"pool-tiny-tiles", func(rounds int) {
			// Tiny budget: many tiles (or the R=1 fallback) per block, so a
			// hidden per-tile allocation cannot hide behind one big tile.
			e := local.ForceTuning(local.WorkerPoolEngine{Workers: 3}, local.Tuning{TileRounds: 2, TileBudget: 64})
			out := make([]uint64, n)
			if _, err := e.Run(topo, castEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3)}); err != nil {
				t.Fatal(err)
			}
		}},
		{"batch", func(rounds int) {
			out1 := make([]uint64, n)
			out2 := make([]uint64, n)
			_, errs := local.BatchRun(topo, []local.Trial{
				{Factory: castEchoFactory(rounds, out1), Opts: local.Options{Source: prob.NewSource(4)}},
				{Factory: castEchoFactory(rounds, out2), Opts: local.Options{Source: prob.NewSource(5)}},
			}, local.BatchOptions{Workers: 3})
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		}},
	}
	for _, pt := range paths {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			extra := marginalAllocs(t, lo, hi, pt.run)
			if extra > slack {
				t.Errorf("%s: %d extra allocations for %d extra rounds, want ≈ 0 (≤ %d)",
					pt.name, extra, hi-lo, slack)
			}
		})
	}
}

// TestBoxedPathStillAllocates documents the baseline the word plane
// removes: the same program shape on the boxed plane allocates per round
// (send slices and boxed messages), which is exactly what the word pins
// above would catch on a regression.
func TestBoxedPathStillAllocates(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	g := graph.RandomGraph(300, 0.03, prob.NewSource(55).Rand())
	topo := local.NewTopology(g)
	n := g.N()
	extra := marginalAllocs(t, 5, 105, func(rounds int) {
		out := make([]uint64, n)
		if _, err := (local.SequentialEngine{}).Run(topo, boxedEchoFactory(rounds, out), local.Options{Source: prob.NewSource(3)}); err != nil {
			t.Fatal(err)
		}
	})
	// 300 nodes × 100 extra rounds × (1 send slice + deg boxes) each.
	if extra < int64(n)*100 {
		t.Errorf("boxed path allocated only %d extra for 100 extra rounds; the baseline assumption is stale", extra)
	}
}
