// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// InterruptContext returns a context cancelled by the first SIGINT/SIGTERM:
// the CLIs hand it to the run-control layer, so an interrupted run stops at
// the next LOCAL round boundary and still reports the work it finished. A
// second signal skips the graceful path and hard-exits with status 130
// (128+SIGINT, the shell convention for "killed by interrupt").
//
// The returned release func detaches the handler, restoring default signal
// behavior; call it once the graceful-cancellation window is over.
func InterruptContext() (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	done := make(chan struct{})
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "interrupted (%v): finishing the current round, interrupt again to kill\n", sig)
			cancel()
		case <-done:
			return
		}
		select {
		case <-ch:
			os.Exit(130)
		case <-done:
		}
	}()
	var once sync.Once
	release := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			cancel()
		})
	}
	return ctx, release
}
