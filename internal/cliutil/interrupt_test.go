package cliutil

import (
	"runtime"
	"syscall"
	"testing"
	"time"
)

func TestInterruptCancelsContext(t *testing.T) {
	ctx, release := InterruptContext()
	defer release()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the context")
	}
}

func TestReleaseWithoutSignal(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, release := InterruptContext()
	release()
	release() // idempotent
	select {
	case <-ctx.Done():
	default:
		t.Fatal("release did not cancel the context")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("handler goroutine leaked: %d > %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
