// Package mis provides the maximal-independent-set substrates of
// Section 4.2: Luby's randomized algorithm as a LOCAL node program, the
// deterministic color-then-greedy algorithm (the [BEK14b] stand-in, see
// DESIGN.md substitution 4), and the heavy-node-elimination reduction of
// Lemma 4.2, which computes an MIS through repeated applications of the
// splitting problem.
package mis

import (
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/derand"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// Result is an MIS with cost accounting.
type Result struct {
	InSet []bool
	Trace core.Trace
}

// Lane values of the Luby node program's 2-bit messages. A priority message
// is the lane value 0 or 1 (the presence bit distinguishes "priority 0"
// from silence); the sender's identity needed for tie-breaking is already
// known to the receiver (View.NbrIDs), so it never travels.
const (
	lubyJoinedLane = 2 // sender joined the MIS
	lubyOutLane    = 3 // sender dropped out
)

// lubyNode is one node of Luby's algorithm in its single-bit-priority form,
// run as a genuine LOCAL program on the packed bit plane (local.Bit2Node) —
// every message of an iteration is one fresh coin, a join, or a drop-out,
// so the per-arc bandwidth is 2 bits plus presence, matching the paper's
// bandwidth model. Odd rounds: process join/out notifications, then
// broadcast a fresh random coin. Even rounds: a node whose (coin, ID) pair
// lexicographically beats all alive neighbors joins the MIS, announces it,
// and terminates; neighbors that see the announcement drop out in the next
// odd round. (coin, ID) pairs are distinct across any edge, so no two
// adjacent nodes ever join together; the fresh per-iteration coin gives the
// randomized symmetry-breaking progress, with the static ID order closing
// ties — the Métivier-et-al-style answer to "Luby without big priorities".
type lubyNode struct {
	view  local.View
	alive []bool // alive[p]: neighbor behind port p is still undecided
	myVal uint64
	out   *[]bool
	idx   int
}

var _ local.Bit2Node = (*lubyNode)(nil)
var _ local.BitBroadcaster = (*lubyNode)(nil)

// Bit2 implements local.Bit2Node.
func (l *lubyNode) Bit2() {}

// step runs one round's decision logic — shared by CastB and RoundB so the
// two send paths cannot drift — and reports the round's message (value,
// whether to send it, whether to terminate).
//
//splitlint:zeroalloc
func (l *lubyNode) step(r int, recv local.BitRow) (uint64, bool, bool) {
	if l.alive == nil {
		//lint:alloc one-time lazy init: the alive table is built on the node's first round and reused for the rest of the run
		l.alive = make([]bool, l.view.Deg)
		for p := range l.alive {
			l.alive[p] = true
		}
	}
	if r%2 == 1 {
		// Notification processing + coin broadcast.
		for p := 0; p < recv.Len(); p++ {
			if !recv.Has(p) {
				continue
			}
			switch recv.Get(p) {
			case lubyJoinedLane:
				// A neighbor joined: drop out, tell the others, stop.
				return lubyOutLane, true, true
			case lubyOutLane:
				l.alive[p] = false
			}
		}
		l.myVal = l.view.Rand.Uint64() & 1
		return l.myVal, true, false
	}
	// Decision round: compare against alive neighbors' coins.
	isMax := true
	for p := 0; p < recv.Len(); p++ {
		if !recv.Has(p) {
			continue
		}
		switch v := recv.Get(p); {
		case v == lubyOutLane:
			l.alive[p] = false
		case v <= 1 && l.alive[p]:
			if v > l.myVal || (v == l.myVal && l.view.NbrIDs[p] > l.view.ID) {
				isMax = false
			}
		}
	}
	if isMax {
		(*l.out)[l.idx] = true
		return lubyJoinedLane, true, true
	}
	return 0, false, false
}

// CastB implements local.BitBroadcaster, enabling the engines' fused
// scatter+aggregate fast path. CastB broadcasts on every port while RoundB
// stages sends only on still-alive ports, yet they are observationally
// identical: alive[p] goes false only after the neighbor behind p has
// terminated, and a terminated node's inbox arcs are already retired in
// the deliver table, so a message staged for a dead port is dropped —
// and not counted — on either path. Traces and Stats agree exactly.
//
//splitlint:zeroalloc
func (l *lubyNode) CastB(r int, recv local.BitRow) (uint64, bool, bool) {
	return l.step(r, recv)
}

// RoundB implements local.BitNode.
//
//splitlint:zeroalloc
func (l *lubyNode) RoundB(r int, recv, send local.BitRow) bool {
	v, cast, done := l.step(r, recv)
	if cast {
		l.broadcast(send, v)
	}
	return done
}

// broadcast stages v on the ports of still-alive neighbors.
//
//splitlint:zeroalloc
func (l *lubyNode) broadcast(send local.BitRow, v uint64) {
	for p := range l.alive {
		if l.alive[p] {
			send.Set(p, v)
		}
	}
}

// Luby computes an MIS with the single-bit-coin form of Luby's randomized
// algorithm run on the LOCAL engine: two rounds and at most two bits per
// arc per iteration. Iterations are logarithmic-ish in practice (the
// TestLubyOnRandomGraphs bound pins the regime the experiments use); the
// generous MaxRounds below guards the tail.
func Luby(g *graph.Graph, src *prob.Source) (*Result, error) {
	n := g.N()
	inSet := make([]bool, n)
	idx := 0
	factory := func(v local.View) local.Node {
		node := &lubyNode{view: v, out: &inSet, idx: idx}
		idx++
		return local.BitProgram(node)
	}
	topo := local.NewTopology(g)
	stats, err := local.SequentialEngine{}.Run(topo, factory, local.Options{
		Source:    src,
		MaxRounds: 256 * (prob.CeilLog2(max(2, n)) + 2),
	})
	if err != nil {
		return nil, fmt.Errorf("mis: Luby: %w", err)
	}
	res := &Result{InSet: inSet}
	res.Trace.Add("luby", stats.Rounds)
	if err := check.MIS(g, inSet); err != nil {
		return nil, fmt.Errorf("mis: Luby self-check: %w", err)
	}
	return res, nil
}

// GreedyByColor computes an MIS deterministically: (Δ+1)-color the graph
// with the LOCAL coloring program, then process color classes in order
// (one round per class) — nodes of the current class with no MIS neighbor
// join. This is the substitute for the linear-in-Δ MIS of [BEK14b].
func GreedyByColor(g *graph.Graph, eng local.Engine, opts local.Options) (*Result, error) {
	if eng == nil {
		eng = local.SequentialEngine{}
	}
	res := &Result{}
	colRes, err := coloring.DeltaPlusOne(g, eng, opts)
	if err != nil {
		return nil, fmt.Errorf("mis: coloring: %w", err)
	}
	res.Trace.Add("coloring", colRes.Stats.Rounds)
	n := g.N()
	inSet := make([]bool, n)
	blocked := make([]bool, n)
	for c := 0; c < colRes.Num; c++ {
		for v := 0; v < n; v++ {
			if colRes.Colors[v] != c || blocked[v] {
				continue
			}
			inSet[v] = true
			blocked[v] = true
			for _, w := range g.Neighbors(v) {
				blocked[w] = true
			}
		}
	}
	res.Trace.Add("greedy-by-class", colRes.Num)
	res.InSet = inSet
	if err := check.MIS(g, inSet); err != nil {
		return nil, fmt.Errorf("mis: greedy-by-color self-check: %w", err)
	}
	return res, nil
}

// HeavyEliminationOptions tune ViaHeavyElimination.
type HeavyEliminationOptions struct {
	Engine local.Engine
	// Eps is the splitting accuracy (the paper uses 1/log²n; the default
	// 0.15 keeps the derandomized splitter's precondition reachable at
	// simulation scale, cf. DESIGN.md).
	Eps float64
	// LowDegree is the threshold below which the residual graph is finished
	// off directly (the paper's poly log n); default 4·(log₂n + 1).
	LowDegree int
}

func (o *HeavyEliminationOptions) normalize(n int) {
	if o.Engine == nil {
		o.Engine = local.SequentialEngine{}
	}
	if o.Eps <= 0 {
		o.Eps = 0.15
	}
	if o.LowDegree <= 0 {
		o.LowDegree = 4 * (prob.CeilLog2(n) + 1)
	}
}

// ViaHeavyElimination is Lemma 4.2: an MIS computed through repeated
// splitting. In each stage the heavy nodes (degree ≥ Δcur/2 among the
// remaining graph) and their neighbors are split repeatedly until the
// active degrees are O(log n); an MIS of the resulting low-degree graph G*
// eliminates a 1/polylog fraction of the heavy nodes (Lemma 4.4); stages
// repeat until no heavy nodes remain, then Δcur halves. The low-degree
// remainder is finished with the deterministic MIS.
//
// Splits use the derandomized uniform splitter when the active degrees meet
// its precondition and plain random splits (with progress guaranteed by a
// direct fallback) otherwise; the trace records which happened.
func ViaHeavyElimination(g *graph.Graph, src *prob.Source, opts HeavyEliminationOptions) (*Result, error) {
	n := g.N()
	opts.normalize(n)
	logn := math.Max(1, prob.Log2(float64(max(2, n))))
	res := &Result{}
	inSet := make([]bool, n)
	removed := make([]bool, n)

	degRem := func(v int) int {
		d := 0
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				d++
			}
		}
		return d
	}
	eliminate := func(v int) {
		inSet[v] = true
		removed[v] = true
		for _, w := range g.Neighbors(v) {
			removed[int(w)] = true
		}
	}

	stage := 0
	splitRounds := 0
	misRounds := 0
	fallbacks := 0
	for deltaCur := g.MaxDeg(); deltaCur > opts.LowDegree; deltaCur = (deltaCur + 1) / 2 {
		for iter := 0; ; iter++ {
			if iter > 64*n {
				return nil, fmt.Errorf("mis: heavy elimination stalled at Δcur=%d", deltaCur)
			}
			var heavy []int
			for v := 0; v < n; v++ {
				if !removed[v] && degRem(v) >= deltaCur/2 {
					heavy = append(heavy, v)
				}
			}
			if len(heavy) == 0 {
				break
			}
			stage++
			// Active set: heavy nodes and their remaining neighbors.
			activeSet := make(map[int]struct{})
			for _, v := range heavy {
				activeSet[v] = struct{}{}
				for _, w := range g.Neighbors(v) {
					if !removed[w] {
						activeSet[int(w)] = struct{}{}
					}
				}
			}
			active := make([]int, 0, len(activeSet))
			for v := 0; v < n; v++ {
				if _, ok := activeSet[v]; ok {
					active = append(active, v)
				}
			}
			// Repeated splitting until active degrees are ≤ LowDegree.
			stageSrc := src.Fork(uint64(1000 + stage))
			for step := 0; ; step++ {
				sub, orig := g.InducedSubgraph(active)
				if sub.MaxDeg() <= opts.LowDegree || step > 2*prob.CeilLog2(deltaCur)+4 {
					// Low enough (or the schedule is exhausted): MIS on G*.
					misRes, err := GreedyByColor(sub, opts.Engine, local.Options{})
					if err != nil {
						return nil, fmt.Errorf("mis: G* MIS: %w", err)
					}
					misRounds += misRes.Trace.Rounds()
					picked := 0
					for sv, in := range misRes.InSet {
						if in && !removed[orig[sv]] {
							eliminate(orig[sv])
							picked++
						}
					}
					if picked == 0 {
						// Progress fallback: eliminate the first heavy node
						// directly (1 LOCAL round).
						fallbacks++
						eliminate(heavy[0])
						misRounds++
					}
					break
				}
				colors, det, err := splitActive(sub, opts.Eps, stageSrc.Fork(uint64(step)))
				if err != nil {
					return nil, fmt.Errorf("mis: splitting step: %w", err)
				}
				if !det {
					fallbacks++
				}
				splitRounds++
				// Keep red nodes that retain ≥ log n red neighbors.
				redNbrs := make([]int, sub.N())
				for sv := 0; sv < sub.N(); sv++ {
					for _, sw := range sub.Neighbors(sv) {
						if colors[sw] == check.Red {
							redNbrs[sv]++
						}
					}
				}
				var next []int
				for sv := 0; sv < sub.N(); sv++ {
					if colors[sv] == check.Red && float64(redNbrs[sv]) >= math.Min(logn, float64(sub.Deg(sv))) {
						next = append(next, orig[sv])
					}
				}
				if len(next) == 0 {
					// Degenerate split; fall back to direct elimination.
					fallbacks++
					eliminate(heavy[0])
					misRounds++
					break
				}
				active = next
			}
		}
	}
	// Finish the low-degree remainder deterministically.
	var rest []int
	for v := 0; v < n; v++ {
		if !removed[v] {
			rest = append(rest, v)
		}
	}
	if len(rest) > 0 {
		sub, orig := g.InducedSubgraph(rest)
		misRes, err := GreedyByColor(sub, opts.Engine, local.Options{})
		if err != nil {
			return nil, fmt.Errorf("mis: residual MIS: %w", err)
		}
		misRounds += misRes.Trace.Rounds()
		for sv, in := range misRes.InSet {
			if in {
				inSet[orig[sv]] = true
			}
		}
	}
	res.InSet = inSet
	res.Trace.Add("splitting-steps", splitRounds)
	res.Trace.Add("mis-subcalls", misRounds)
	res.Trace.Note("heavy elimination: %d stages, %d fallbacks", stage, fallbacks)
	if err := check.MIS(g, inSet); err != nil {
		return nil, fmt.Errorf("mis: heavy elimination self-check: %w", err)
	}
	return res, nil
}

// splitActive two-colors the active subgraph: derandomized uniform
// splitting when every constrained degree meets the precondition, plain
// per-node random coins otherwise. Returns the colors and whether the
// deterministic path was taken.
func splitActive(sub *graph.Graph, eps float64, src *prob.Source) ([]int, bool, error) {
	n := sub.N()
	vtc := make([][]int32, n)
	var degs []int
	// Constrain only nodes whose degree supports the Chernoff potential.
	minDeg := int(math.Ceil(2 * math.Log(2*float64(max(2, n))) / (eps * eps)))
	consIdx := make([]int32, n)
	for v := 0; v < n; v++ {
		consIdx[v] = -1
		if sub.Deg(v) >= minDeg {
			consIdx[v] = int32(len(degs))
			degs = append(degs, sub.Deg(v))
		}
	}
	for v := 0; v < n; v++ {
		for _, w := range sub.Neighbors(v) {
			if consIdx[w] >= 0 {
				vtc[v] = append(vtc[v], consIdx[w])
			}
		}
	}
	if len(degs) > 0 {
		est := derand.NewUniformSplitEstimator(vtc, degs, eps)
		if est.Cost() < 1 {
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			labels, err := derand.Greedy(est, order)
			if err == nil {
				return labels, true, nil
			}
		}
	}
	// Randomized fallback: independent fair coins.
	labels := make([]int, n)
	for v := range labels {
		labels[v] = int(src.Node(v).Uint64() & 1)
	}
	return labels, false, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
