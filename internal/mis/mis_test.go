package mis

import (
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

func TestLubyOnRandomGraphs(t *testing.T) {
	for _, n := range []int{20, 100, 300} {
		g := graph.RandomGraph(n, 0.08, prob.NewSource(uint64(n)).Rand())
		res, err := Luby(g, prob.NewSource(uint64(n)+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := check.MIS(g, res.InSet); err != nil {
			t.Fatal(err)
		}
		// O(log n) iterations: generously bounded.
		if res.Trace.Rounds() > 40*(prob.CeilLog2(n)+1) {
			t.Errorf("n=%d: Luby took %d rounds", n, res.Trace.Rounds())
		}
	}
}

func TestLubyEdgeCases(t *testing.T) {
	// Edgeless graph: everyone joins.
	g := graph.NewGraph(5)
	res, err := Luby(g, prob.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	for v, in := range res.InSet {
		if !in {
			t.Errorf("isolated node %d not in MIS", v)
		}
	}
	// Complete graph: exactly one joins.
	k := graph.Complete(9)
	res, err = Luby(k, prob.NewSource(2))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, in := range res.InSet {
		if in {
			count++
		}
	}
	if count != 1 {
		t.Errorf("K9 MIS has %d nodes, want 1", count)
	}
}

func TestLubyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.RandomGraph(30+int(seed%50), 0.1, prob.NewSource(seed).Rand())
		res, err := Luby(g, prob.NewSource(seed+7))
		if err != nil {
			return false
		}
		return check.MIS(g, res.InSet) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGreedyByColor(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.PathGraph(30),
		graph.Cycle(31),
		graph.Complete(8),
		graph.RandomGraph(150, 0.05, prob.NewSource(3).Rand()),
	} {
		res, err := GreedyByColor(g, local.SequentialEngine{}, local.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := check.MIS(g, res.InSet); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGreedyByColorDeterministic(t *testing.T) {
	g := graph.RandomGraph(80, 0.1, prob.NewSource(4).Rand())
	a, err := GreedyByColor(g, local.SequentialEngine{}, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyByColor(g, local.SequentialEngine{}, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatal("deterministic MIS differs between runs")
		}
	}
}

func TestViaHeavyElimination(t *testing.T) {
	// A graph with genuinely heavy nodes: Δ = 64 over 400 nodes.
	g, err := graph.RandomRegular(400, 64, prob.NewSource(5).Rand())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ViaHeavyElimination(g, prob.NewSource(6), HeavyEliminationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.MIS(g, res.InSet); err != nil {
		t.Fatal(err)
	}
	// The trace must show split activity (the reduction really ran).
	if res.Trace.Rounds() == 0 {
		t.Error("expected nonzero round accounting")
	}
}

func TestViaHeavyEliminationLowDegree(t *testing.T) {
	// A low-degree graph skips straight to the residual MIS.
	g := graph.Cycle(50)
	res, err := ViaHeavyElimination(g, prob.NewSource(7), HeavyEliminationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.MIS(g, res.InSet); err != nil {
		t.Fatal(err)
	}
}

func TestViaHeavyEliminationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.RandomGraph(60+int(seed%60), 0.2, prob.NewSource(seed).Rand())
		res, err := ViaHeavyElimination(g, prob.NewSource(seed+13), HeavyEliminationOptions{})
		if err != nil {
			return false
		}
		return check.MIS(g, res.InSet) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSplitActive(t *testing.T) {
	g, err := graph.RandomRegular(200, 80, prob.NewSource(8).Rand())
	if err != nil {
		t.Fatal(err)
	}
	// With ε = 0.3 the derandomized path applies at degree 80.
	labels, det, err := splitActive(g, 0.3, prob.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Log("derandomized path not taken (potential >= 1); randomized fallback used")
	}
	red := 0
	for _, l := range labels {
		if l == check.Red {
			red++
		}
	}
	if red == 0 || red == len(labels) {
		t.Error("degenerate split")
	}
}
