package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// side markers for bipartite node programs run on B's underlying graph.
type bipartiteInput struct {
	isConstraint bool
	index        int // U-index or V-index
	deg          int
}

// bipartiteTopology prepares the topology, inputs and IDs for running node
// programs on a bipartite instance: variables get IDs 0..nv-1 (matching the
// per-variable randomness of the centralized implementations) and
// constraints nv..nv+nu-1.
func bipartiteTopology(b *graph.Bipartite) (*local.Topology, []any, []int) {
	g := b.AsGraph()
	nu, nv := b.NU(), b.NV()
	inputs := make([]any, g.N())
	ids := make([]int, g.N())
	for u := 0; u < nu; u++ {
		inputs[u] = bipartiteInput{isConstraint: true, index: u, deg: b.DegU(u)}
		ids[u] = nv + u
	}
	for v := 0; v < nv; v++ {
		inputs[nu+v] = bipartiteInput{isConstraint: false, index: v, deg: b.DegV(v)}
		ids[nu+v] = v
	}
	return local.NewTopology(g), inputs, ids
}

// Word tags of the bipartite node programs below: trit/color announcements
// carry their (signed) value under tagTrit; the constraints' "uncolor"
// directive of the shattering algorithm is a bare tagUncolor word.
const (
	tagTrit    = 1
	tagUncolor = 2
)

// shatterNode is the genuine LOCAL implementation of the shattering
// algorithm (§2.4), 4 rounds end to end:
//
//	round 1: variables draw a trit (red 1/4, blue 1/4, uncolored 1/2) and
//	         announce it;
//	round 2: constraints seeing > 3/4 colored neighbors broadcast "uncolor";
//	round 3: variables apply uncoloring and announce their final trit;
//	round 4: constraints decide satisfaction.
//
// Messages are single tagged words (local.WordNode): trits and the uncolor
// bit travel on the flat word plane without boxing.
type shatterNode struct {
	view   local.View
	in     bipartiteInput
	trit   int
	colors *[]int
	unsat  *[]bool
}

var _ local.WordNode = (*shatterNode)(nil)

// RoundW implements local.WordNode.
func (s *shatterNode) RoundW(r int, recv, send []local.Word) bool {
	if s.in.isConstraint {
		return s.constraintRound(r, recv, send)
	}
	return s.variableRound(r, recv, send)
}

func (s *shatterNode) variableRound(r int, recv, send []local.Word) bool {
	switch r {
	case 1:
		switch x := s.view.Rand.Float64(); {
		case x < 0.25:
			s.trit = Red
		case x < 0.5:
			s.trit = Blue
		default:
			s.trit = Uncolored
		}
		local.Broadcast(send, local.MakeIntWord(tagTrit, s.trit))
		return false
	case 2:
		return false // constraints speak this round
	default: // round 3
		for _, m := range recv {
			if m.Tag() == tagUncolor {
				s.trit = Uncolored
				break
			}
		}
		(*s.colors)[s.in.index] = s.trit
		local.Broadcast(send, local.MakeIntWord(tagTrit, s.trit))
		return true
	}
}

func (s *shatterNode) constraintRound(r int, recv, send []local.Word) bool {
	switch r {
	case 1:
		return false
	case 2:
		colored := 0
		for _, m := range recv {
			if m != local.NilWord && m.Int() != Uncolored {
				colored++
			}
		}
		if 4*colored > 3*s.in.deg {
			local.Broadcast(send, local.MakeWord(tagUncolor, 0))
		}
		return false
	case 3:
		return false // final trits arrive next round
	default: // round 4
		var red, blue bool
		for _, m := range recv {
			if m == local.NilWord {
				continue
			}
			switch m.Int() {
			case Red:
				red = true
			case Blue:
				blue = true
			}
		}
		(*s.unsat)[s.in.index] = !(red && blue)
		return true
	}
}

// ShatterLocal runs the shattering algorithm as a LOCAL node program on the
// given engine. With the same source it reproduces the centralized
// Shatter's coloring exactly (variables' randomness is keyed by V-index in
// both), at the true message-passing cost of 4 rounds.
func ShatterLocal(b *graph.Bipartite, eng local.Engine, src *prob.Source) (*ShatterOutcome, local.Stats, error) {
	if eng == nil {
		eng = local.SequentialEngine{}
	}
	topo, inputs, ids := bipartiteTopology(b)
	out := &ShatterOutcome{
		Colors: make([]int, b.NV()),
		UnsatU: make([]bool, b.NU()),
	}
	factory := func(v local.View) local.Node {
		return local.WordProgram(&shatterNode{
			view:   v,
			in:     v.Input.(bipartiteInput),
			colors: &out.Colors,
			unsat:  &out.UnsatU,
		})
	}
	stats, err := eng.Run(topo, factory, local.Options{Source: src, Inputs: inputs, IDs: ids})
	if err != nil {
		return nil, stats, fmt.Errorf("core: shattering node program: %w", err)
	}
	out.Rounds = stats.Rounds
	return out, stats, nil
}

// checkNode is the 1-round distributed verifier that makes weak splitting
// locally checkable (footnote 4 / the LCL framing of §1): every variable
// announces its color; every constraint outputs "yes" iff it sees both.
type checkNode struct {
	view  local.View
	in    bipartiteInput
	color int
	votes *[]bool
}

var _ local.WordNode = (*checkNode)(nil)

// RoundW implements local.WordNode.
func (c *checkNode) RoundW(r int, recv, send []local.Word) bool {
	if r == 1 {
		if !c.in.isConstraint {
			local.Broadcast(send, local.MakeIntWord(tagTrit, c.color))
			return true
		}
		return false
	}
	// Round 2: constraints vote.
	var red, blue bool
	for _, m := range recv {
		if m == local.NilWord {
			continue
		}
		switch m.Int() {
		case Red:
			red = true
		case Blue:
			blue = true
		}
	}
	(*c.votes)[c.in.index] = red && blue
	return true
}

// LocalCheck runs the 1-round distributed verifier for a weak splitting:
// it returns the per-constraint votes and whether all constraints accepted.
// It demonstrates that weak splitting is 1-locally checkable, the property
// that makes [GHK16]-style derandomization (and the SLOCAL compilation of
// Lemma 2.1) applicable.
func LocalCheck(b *graph.Bipartite, colors []int, eng local.Engine) (votes []bool, allYes bool, err error) {
	if eng == nil {
		eng = local.SequentialEngine{}
	}
	if len(colors) != b.NV() {
		return nil, false, fmt.Errorf("core: %d colors for %d variables", len(colors), b.NV())
	}
	topo, inputs, ids := bipartiteTopology(b)
	votes = make([]bool, b.NU())
	factory := func(v local.View) local.Node {
		in := v.Input.(bipartiteInput)
		n := &checkNode{view: v, in: in, votes: &votes}
		if !in.isConstraint {
			n.color = colors[in.index]
		}
		return local.WordProgram(n)
	}
	if _, err := eng.Run(topo, factory, local.Options{Inputs: inputs, IDs: ids}); err != nil {
		return nil, false, fmt.Errorf("core: local check: %w", err)
	}
	allYes = true
	for _, v := range votes {
		if !v {
			allYes = false
			break
		}
	}
	return votes, allYes, nil
}
