package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// side markers for bipartite node programs run on B's underlying graph.
type bipartiteInput struct {
	isConstraint bool
	index        int // U-index or V-index
	deg          int
}

// bipartiteTopology prepares the topology, inputs and IDs for running node
// programs on a bipartite instance: variables get IDs 0..nv-1 (matching the
// per-variable randomness of the centralized implementations) and
// constraints nv..nv+nu-1.
func bipartiteTopology(b *graph.Bipartite) (*local.Topology, []any, []int) {
	g := b.AsGraph()
	nu, nv := b.NU(), b.NV()
	inputs := make([]any, g.N())
	ids := make([]int, g.N())
	for u := 0; u < nu; u++ {
		inputs[u] = bipartiteInput{isConstraint: true, index: u, deg: b.DegU(u)}
		ids[u] = nv + u
	}
	for v := 0; v < nv; v++ {
		inputs[nu+v] = bipartiteInput{isConstraint: false, index: v, deg: b.DegV(v)}
		ids[nu+v] = v
	}
	return local.NewTopology(g), inputs, ids
}

// laneUncolor is the 2-bit lane value of the constraints' "uncolor"
// directive. The trits travel zigzag-encoded ({Uncolored, Red, Blue} →
// {1, 0, 2}), which leaves lane value 3 free; directives and trits also
// never share a round, so the receiver could tell them apart by round
// number alone — the distinct value is for readability and debugging.
const laneUncolor = 3

// shatterNode is the genuine LOCAL implementation of the shattering
// algorithm (§2.4), 4 rounds end to end:
//
//	round 1: variables draw a trit (red 1/4, blue 1/4, uncolored 1/2) and
//	         announce it;
//	round 2: constraints seeing > 3/4 colored neighbors broadcast "uncolor";
//	round 3: variables apply uncoloring and announce their final trit;
//	round 4: constraints decide satisfaction.
//
// Messages are 2-bit lanes on the packed bit plane (local.Bit2Node): a trit
// costs 2 bits plus a presence bit, matching the paper's bandwidth model,
// and the whole plane stays cache-resident at million-node scale.
type shatterNode struct {
	view   local.View
	in     bipartiteInput
	trit   int
	colors *[]int
	unsat  *[]bool
}

var _ local.Bit2Node = (*shatterNode)(nil)
var _ local.BitBroadcaster = (*shatterNode)(nil)

// Bit2 implements local.Bit2Node.
func (s *shatterNode) Bit2() {}

// CastB implements local.BitBroadcaster: every message the shattering
// program sends — the trit announcements and the "uncolor" directive — is
// a full-row broadcast, so the engines' fused scatter+aggregate fast path
// applies. CastB is the single source of truth; RoundB delegates, which
// keeps the two contracts observationally identical by construction.
//
//splitlint:zeroalloc
func (s *shatterNode) CastB(r int, recv local.BitRow) (uint64, bool, bool) {
	if s.in.isConstraint {
		return s.constraintCast(r, recv)
	}
	return s.variableCast(r, recv)
}

// RoundB implements local.BitNode.
//
//splitlint:zeroalloc
func (s *shatterNode) RoundB(r int, recv, send local.BitRow) bool {
	v, cast, done := s.CastB(r, recv)
	if cast {
		send.Broadcast(v)
	}
	return done
}

//splitlint:zeroalloc
func (s *shatterNode) variableCast(r int, recv local.BitRow) (uint64, bool, bool) {
	switch r {
	case 1:
		switch x := s.view.Rand.Float64(); {
		case x < 0.25:
			s.trit = Red
		case x < 0.5:
			s.trit = Blue
		default:
			s.trit = Uncolored
		}
		return local.IntLane(s.trit), true, false
	case 2:
		return 0, false, false // constraints speak this round
	default: // round 3
		// Only constraints speak in round 2, and only to say "uncolor", so
		// one word-parallel presence count decides.
		if recv.CountPresent() > 0 {
			s.trit = Uncolored
		}
		(*s.colors)[s.in.index] = s.trit
		return local.IntLane(s.trit), true, true
	}
}

//splitlint:zeroalloc
func (s *shatterNode) constraintCast(r int, recv local.BitRow) (uint64, bool, bool) {
	switch r {
	case 1:
		return 0, false, false
	case 2:
		// Word-parallel tally: colored neighbors are the present ports not
		// announcing Uncolored.
		colored := recv.CountPresent() - recv.CountValue(local.IntLane(Uncolored))
		if 4*colored > 3*s.in.deg {
			return laneUncolor, true, false
		}
		return 0, false, false
	case 3:
		return 0, false, false // final trits arrive next round
	default: // round 4
		red := recv.AnyValue(local.IntLane(Red))
		blue := recv.AnyValue(local.IntLane(Blue))
		(*s.unsat)[s.in.index] = !(red && blue)
		return 0, false, true
	}
}

// ShatterLocal runs the shattering algorithm as a LOCAL node program on the
// given engine. With the same source it reproduces the centralized
// Shatter's coloring exactly (variables' randomness is keyed by V-index in
// both), at the true message-passing cost of 4 rounds.
func ShatterLocal(b *graph.Bipartite, eng local.Engine, src *prob.Source) (*ShatterOutcome, local.Stats, error) {
	if eng == nil {
		eng = local.SequentialEngine{}
	}
	topo, inputs, ids := bipartiteTopology(b)
	out := &ShatterOutcome{
		Colors: make([]int, b.NV()),
		UnsatU: make([]bool, b.NU()),
	}
	factory := func(v local.View) local.Node {
		return local.BitProgram(&shatterNode{
			view:   v,
			in:     v.Input.(bipartiteInput),
			colors: &out.Colors,
			unsat:  &out.UnsatU,
		})
	}
	stats, err := eng.Run(topo, factory, local.Options{Source: src, Inputs: inputs, IDs: ids})
	if err != nil {
		return nil, stats, fmt.Errorf("core: shattering node program: %w", err)
	}
	out.Rounds = stats.Rounds
	return out, stats, nil
}

// checkNode is the 1-round distributed verifier that makes weak splitting
// locally checkable (footnote 4 / the LCL framing of §1): every variable
// announces its color; every constraint outputs "yes" iff it sees both.
// The votes are single trits — 2-bit lanes on the packed bit plane.
type checkNode struct {
	view  local.View
	in    bipartiteInput
	color int
	votes *[]bool
}

var _ local.Bit2Node = (*checkNode)(nil)
var _ local.BitBroadcaster = (*checkNode)(nil)

// Bit2 implements local.Bit2Node.
func (c *checkNode) Bit2() {}

// CastB implements local.BitBroadcaster: a variable's color announcement is
// a full-row broadcast and constraints never send, so the verifier rides
// the fused fast path. RoundB delegates to keep the contracts identical.
//
//splitlint:zeroalloc
func (c *checkNode) CastB(r int, recv local.BitRow) (uint64, bool, bool) {
	if r == 1 {
		if !c.in.isConstraint {
			return local.IntLane(c.color), true, true
		}
		return 0, false, false
	}
	// Round 2: constraints vote, one word-parallel scan per color.
	(*c.votes)[c.in.index] = recv.AnyValue(local.IntLane(Red)) && recv.AnyValue(local.IntLane(Blue))
	return 0, false, true
}

// RoundB implements local.BitNode.
//
//splitlint:zeroalloc
func (c *checkNode) RoundB(r int, recv, send local.BitRow) bool {
	v, cast, done := c.CastB(r, recv)
	if cast {
		send.Broadcast(v)
	}
	return done
}

// LocalCheck runs the 1-round distributed verifier for a weak splitting:
// it returns the per-constraint votes and whether all constraints accepted.
// It demonstrates that weak splitting is 1-locally checkable, the property
// that makes [GHK16]-style derandomization (and the SLOCAL compilation of
// Lemma 2.1) applicable.
func LocalCheck(b *graph.Bipartite, colors []int, eng local.Engine) (votes []bool, allYes bool, err error) {
	if eng == nil {
		eng = local.SequentialEngine{}
	}
	if len(colors) != b.NV() {
		return nil, false, fmt.Errorf("core: %d colors for %d variables", len(colors), b.NV())
	}
	topo, inputs, ids := bipartiteTopology(b)
	votes = make([]bool, b.NU())
	factory := func(v local.View) local.Node {
		in := v.Input.(bipartiteInput)
		n := &checkNode{view: v, in: in, votes: &votes}
		if !in.isConstraint {
			n.color = colors[in.index]
			// Values outside the trit range would alias under the 2-bit
			// lane truncation; announce them as Uncolored, which yields the
			// same "neither red nor blue" verdict they always had.
			if n.color < Uncolored || n.color > Blue {
				n.color = Uncolored
			}
		}
		return local.BitProgram(n)
	}
	if _, err := eng.Run(topo, factory, local.Options{Inputs: inputs, IDs: ids}); err != nil {
		return nil, false, fmt.Errorf("core: local check: %w", err)
	}
	allYes = true
	for _, v := range votes {
		if !v {
			allYes = false
			break
		}
	}
	return votes, allYes, nil
}
