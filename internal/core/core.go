// Package core implements the paper's weak splitting algorithms
// (Definition 1.1): the zero-round randomized baseline (§2.1), the
// derandomized basic algorithm (Lemma 2.1) and its degree-truncated variant
// (Lemma 2.2), both Degree-Rank Reductions (§2.2, §2.3), the main
// deterministic algorithm (Theorem 1.1/2.5), the δ ≥ 6r algorithm
// (Theorem 2.7), the shattering-based randomized algorithm (Theorem 1.2),
// and the high-girth algorithms of Section 5.
//
// All entry points self-verify their output with package check before
// returning, and report a Trace with per-phase simulated LOCAL round costs.
package core

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/orient"
	"repro/internal/prob"
)

// Colors of a weak splitting, re-exported from package check so callers
// only need core.
const (
	Red       = check.Red
	Blue      = check.Blue
	Uncolored = check.Uncolored
)

// Phase is one step of a composite algorithm with its simulated LOCAL cost.
type Phase struct {
	Name   string
	Rounds int
}

// Trace records the cost breakdown of a run.
type Trace struct {
	Phases []Phase
	Notes  []string
}

// Add appends a phase.
func (t *Trace) Add(name string, rounds int) {
	t.Phases = append(t.Phases, Phase{Name: name, Rounds: rounds})
}

// Note appends a free-form remark (fallbacks taken, guards triggered, …).
func (t *Trace) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Merge appends all phases and notes of other, prefixing phase names.
func (t *Trace) Merge(prefix string, other *Trace) {
	for _, p := range other.Phases {
		t.Add(prefix+p.Name, p.Rounds)
	}
	for _, n := range other.Notes {
		t.Note("%s%s", prefix, n)
	}
}

// Rounds returns the total simulated LOCAL rounds.
func (t *Trace) Rounds() int {
	var sum int
	for _, p := range t.Phases {
		sum += p.Rounds
	}
	return sum
}

// Result is a weak splitting together with its cost trace.
type Result struct {
	// Colors[v] ∈ {Red, Blue} for every variable node v.
	Colors []int
	Trace  Trace
}

// SplitterKind selects the directed-degree-splitting substrate used inside
// the Degree-Rank Reductions (ablation E14, DESIGN.md substitution 1).
type SplitterKind int

// Splitter kinds.
const (
	// SplitterApproxDet is the deterministic cut-chain splitter,
	// O(1/ε + log* n) rounds, discrepancy ≤ 2·cuts+1 (≈ ε·d+2).
	SplitterApproxDet SplitterKind = iota + 1
	// SplitterApproxRand is the randomized cut-chain splitter.
	SplitterApproxRand
	// SplitterEulerian orients whole chains: discrepancy ≤ 1, rounds equal
	// to the longest chain.
	SplitterEulerian
)

func (k SplitterKind) String() string {
	switch k {
	case SplitterApproxDet:
		return "approx-det"
	case SplitterApproxRand:
		return "approx-rand"
	case SplitterEulerian:
		return "eulerian"
	default:
		return fmt.Sprintf("SplitterKind(%d)", int(k))
	}
}

// split dispatches to the chosen splitter.
func split(kind SplitterKind, m *graph.Multigraph, eps float64, src *prob.Source) *orient.Result {
	switch kind {
	case SplitterApproxRand:
		return orient.ApproxSplit(m, eps, src)
	case SplitterEulerian:
		return orient.EulerianSplit(m)
	default:
		return orient.ApproxSplitDet(m, eps)
	}
}

// log2n returns log2 of the paper's n = |U|+|V| for instance b, at least 1.
func log2n(b *graph.Bipartite) float64 {
	n := b.N()
	if n < 2 {
		return 1
	}
	return prob.Log2(float64(n))
}

// varToCons converts a bipartite instance into the variable→constraint
// adjacency and constraint degree slices the derandomizer consumes.
func varToCons(b *graph.Bipartite) ([][]int32, []int) {
	vtc := make([][]int32, b.NV())
	for v := range vtc {
		vtc[v] = b.NbrV(v)
	}
	degs := make([]int, b.NU())
	for u := range degs {
		degs[u] = b.DegU(u)
	}
	return vtc, degs
}

// ZeroRoundRandom is the trivial randomized algorithm of Section 2.1, run
// as a genuine 0-round LOCAL program: every variable node independently
// colors itself red or blue with probability 1/2. When δ ≥ 2·log n it
// succeeds with probability ≥ 1 − 2/n; the result is verified and an error
// returned on the (low-probability) failure so callers can retry with a
// fresh seed.
func ZeroRoundRandom(b *graph.Bipartite, src *prob.Source) (*Result, error) {
	return ZeroRoundRandomOn(b, src, nil)
}

// ZeroRoundRandomOn is ZeroRoundRandom on a chosen engine (nil means
// sequential). Engines are observationally identical, so the choice — and
// any plane forced through local.ForcePlane — changes wall-clock time and
// representation only; the CLIs use this for plane ablations.
func ZeroRoundRandomOn(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*Result, error) {
	if eng == nil {
		eng = local.SequentialEngine{}
	}
	colors := make([]int, b.NV())
	type vInput struct{ v int }
	g := b.AsGraph()
	topo := local.NewTopology(g)
	inputs := make([]any, g.N())
	for i := range inputs {
		if i >= b.NU() {
			inputs[i] = vInput{v: i - b.NU()}
		}
	}
	// The splitter is a genuine 0-round program — it sends nothing — so it
	// rides the bit plane, the cheapest representation the engines have.
	factory := func(view local.View) local.Node {
		return local.BitProgram(local.BitFunc(func(int, local.BitRow, local.BitRow) bool {
			if in, ok := view.Input.(vInput); ok {
				colors[in.v] = int(view.Rand.Uint64() & 1)
			}
			return true
		}))
	}
	stats, err := eng.Run(topo, factory, local.Options{Source: src, Inputs: inputs})
	if err != nil {
		return nil, fmt.Errorf("core: zero-round splitter: %w", err)
	}
	res := &Result{Colors: colors}
	// The algorithm itself is 0 rounds (no messages); the engine charges one
	// bookkeeping round for termination.
	res.Trace.Add("zero-round-random", stats.Rounds-1)
	if err := check.WeakSplit(b, colors, 0); err != nil {
		return res, fmt.Errorf("core: zero-round splitter failed verification (retry with a new seed): %w", err)
	}
	return res, nil
}

// ZeroRoundRandomRetry retries ZeroRoundRandom up to attempts times with
// forked seeds; the expected number of attempts is 1 + o(1) when
// δ ≥ 2·log n.
func ZeroRoundRandomRetry(b *graph.Bipartite, src *prob.Source, attempts int) (*Result, error) {
	return ZeroRoundRandomRetryOn(b, src, attempts, nil)
}

// ZeroRoundRandomRetryOn is ZeroRoundRandomRetry on a chosen engine; see
// ZeroRoundRandomOn.
func ZeroRoundRandomRetryOn(b *graph.Bipartite, src *prob.Source, attempts int, eng local.Engine) (*Result, error) {
	var lastErr error
	for i := 0; i < attempts; i++ {
		res, err := ZeroRoundRandomOn(b, src.Fork(uint64(i)), eng)
		if err == nil {
			if i > 0 {
				res.Trace.Note("succeeded after %d retries", i)
			}
			return res, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("core: zero-round splitter failed %d attempts: %w", attempts, lastErr)
}
