package core

import (
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/derand"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
	"repro/internal/slocal"
)

// Lemma51Holds checks the conclusion of Lemma 5.1 on a shattering outcome:
// the residual graph H (unsatisfied constraints + uncolored variables) has
// δ_H ≥ 6·r_H. It returns the residual parameters for reporting.
func Lemma51Holds(b *graph.Bipartite, sh *ShatterOutcome) (deltaH, rankH int, ok bool) {
	h, _, _ := sh.Residual(b)
	if h.NU() == 0 {
		return 0, h.Rank(), true // nothing unsatisfied: vacuously fine
	}
	deltaH, rankH = h.MinDegU(), h.Rank()
	return deltaH, rankH, deltaH >= 6*rankH
}

// HighGirthRandomized is Theorem 5.3: on bipartite graphs of girth ≥ 10
// with δ ≥ c·√(ln(Δ·r·ln n)) and Δ ≥ c'·ln r, run the shattering algorithm;
// by Lemma 5.1 the residual graph satisfies δ_H ≥ 6·r_H w.h.p., so every
// residual component is solved by Theorem 2.7 in
// O(Δ²r² + polylog(Δ·r·log n)) rounds. Shattering attempts whose residual
// violates Lemma 5.1 are retried with fresh randomness (each retry succeeds
// w.h.p.).
func HighGirthRandomized(b *graph.Bipartite, src *prob.Source, attempts int) (*Result, error) {
	if attempts <= 0 {
		attempts = 8
	}
	if !b.AsGraph().GirthAtLeast(10) {
		return nil, fmt.Errorf("core: Theorem 5.3 requires girth ≥ 10, have %d", b.Girth())
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		sh := Shatter(b, src.Fork(uint64(i)))
		if dH, rH, ok := Lemma51Holds(b, sh); !ok {
			lastErr = fmt.Errorf("residual has δ_H=%d < 6·r_H=%d", dH, 6*rH)
			continue
		}
		res, err := finishHighGirth(b, sh.Colors, sh.UnsatU, src.Fork(uint64(1000+i)))
		if err != nil {
			lastErr = err
			continue
		}
		res.Trace.Add("shattering", sh.Rounds)
		if i > 0 {
			res.Trace.Note("Lemma 5.1 held after %d retries", i)
		}
		return res, nil
	}
	return nil, fmt.Errorf("core: Theorem 5.3 failed after %d attempts: %w", attempts, lastErr)
}

// finishHighGirth completes a (possibly derandomized) shattering outcome:
// solve every residual component with Theorem 2.7 and fill in the colors.
func finishHighGirth(b *graph.Bipartite, trits []int, unsatU []bool, src *prob.Source) (*Result, error) {
	colors := append([]int(nil), trits...)
	var us, vs []int
	for u, bad := range unsatU {
		if bad {
			us = append(us, u)
		}
	}
	for v, c := range colors {
		if c == Uncolored {
			vs = append(vs, v)
		}
	}
	h, _, origV := b.InducedSubgraph(us, vs)
	res := &Result{}
	compUs, compVs := h.ConnectedComponents()
	maxRounds := 0
	for ci := range compUs {
		sub, _, subOrigV := h.InducedSubgraph(compUs[ci], compVs[ci])
		var compRes *Result
		var err error
		if sub.NU() == 0 {
			compRes = &Result{Colors: make([]int, sub.NV())}
		} else {
			var compSrc *prob.Source
			if src != nil {
				compSrc = src.Fork(uint64(ci))
			}
			compRes, err = SixRSplit(sub, SixROptions{Source: compSrc})
			if err != nil {
				return nil, fmt.Errorf("component %d via Theorem 2.7: %w", ci, err)
			}
		}
		if r := compRes.Trace.Rounds(); r > maxRounds {
			maxRounds = r
		}
		for sv, c := range compRes.Colors {
			colors[origV[subOrigV[sv]]] = c
		}
	}
	res.Trace.Add("residual-components(max)", maxRounds)
	for v := range colors {
		if colors[v] == Uncolored {
			colors[v] = Red
		}
	}
	res.Colors = colors
	if err := check.WeakSplit(b, colors, 0); err != nil {
		return nil, fmt.Errorf("high-girth self-check: %w", err)
	}
	return res, nil
}

// HighGirthDeterministic is Theorem 5.2: the shattering algorithm is a
// 1-round randomized algorithm with checking radius 1, so by
// [GHK16, Thm III.1] it derandomizes into an SLOCAL(4) algorithm, compiled
// into LOCAL with a coloring of B⁴ in O(Δ²r² + polylog n) rounds. The
// pessimistic estimator drives the conclusion of Lemma 5.1 directly: for
// every variable v, the MGF bound on Pr[≥ ⌊δ/24⌋ unsatisfied neighbors]
// (girth ≥ 10 makes the per-neighbor events independent). Afterwards the
// residual satisfies δ_H ≥ 6·r_H and Theorem 2.7 finishes deterministically.
func HighGirthDeterministic(b *graph.Bipartite, eng local.Engine) (*Result, error) {
	if eng == nil {
		eng = local.SequentialEngine{}
	}
	if !b.AsGraph().GirthAtLeast(10) {
		return nil, fmt.Errorf("core: Theorem 5.2 requires girth ≥ 10, have %d", b.Girth())
	}
	if b.NV() == 0 {
		if b.NU() > 0 {
			return nil, fmt.Errorf("core: constraints without variables are unsatisfiable")
		}
		return &Result{}, nil
	}
	res := &Result{}

	// Color B⁴ (distance-4 conflict graph on variables): SLOCAL(4) compile.
	conflict := b.VPower(2)
	colors, num, err := ConflictColoring(conflict, eng, &res.Trace, "B4-coloring", 4)
	if err != nil {
		return nil, err
	}

	est := newShatterEstimator(b)
	compiled, err := slocal.CompileGreedy(est, colors, num, 4)
	if err != nil {
		return nil, fmt.Errorf("core: shattering derandomization: %w", err)
	}
	res.Trace.Add("slocal-derandomized-shattering", compiled.Rounds)

	// Map the estimator's trit alphabet {0,1,2} to the coloring convention
	// {Red, Blue, Uncolored}.
	initial := make([]int, len(compiled.Labels))
	for v, x := range compiled.Labels {
		switch x {
		case tritRed:
			initial[v] = Red
		case tritBlue:
			initial[v] = Blue
		default:
			initial[v] = Uncolored
		}
	}
	// Apply the (now deterministic) uncoloring phase and compute the
	// unsatisfied set.
	trits, unsatU := applyUncoloring(b, initial)
	sh := &ShatterOutcome{Colors: trits, UnsatU: unsatU}
	if dH, rH, ok := Lemma51Holds(b, sh); !ok {
		return nil, fmt.Errorf("core: Theorem 5.2: derandomized residual has δ_H=%d < 6·r_H=%d", dH, 6*rH)
	}
	fin, err := finishHighGirth(b, trits, unsatU, nil)
	if err != nil {
		return nil, fmt.Errorf("core: Theorem 5.2: %w", err)
	}
	fin.Trace.Merge("", &res.Trace)
	return fin, nil
}

// applyUncoloring runs the uncoloring phase deterministically on a full trit
// assignment and returns the final trits plus the unsatisfied flags.
func applyUncoloring(b *graph.Bipartite, trits []int) ([]int, []bool) {
	out := append([]int(nil), trits...)
	uncolor := make([]bool, b.NV())
	for u := 0; u < b.NU(); u++ {
		d := b.DegU(u)
		if d == 0 {
			continue
		}
		colored := 0
		for _, v := range b.NbrU(u) {
			if out[v] != Uncolored {
				colored++
			}
		}
		if 4*colored > 3*d {
			for _, v := range b.NbrU(u) {
				uncolor[v] = true
			}
		}
	}
	for v, un := range uncolor {
		if un {
			out[v] = Uncolored
		}
	}
	unsat := make([]bool, b.NU())
	for u := 0; u < b.NU(); u++ {
		var red, blue bool
		for _, v := range b.NbrU(u) {
			switch out[v] {
			case Red:
				red = true
			case Blue:
				blue = true
			}
		}
		unsat[u] = !(red && blue)
	}
	return out, unsat
}

// Trit labels used by the shattering derandomization. The estimator's label
// distribution is (1/4, 1/4, 1/2) as in the shattering algorithm; greedy
// minimization remains valid for non-uniform distributions because the
// minimum over labels is at most the distribution-weighted average.
const (
	tritRed       = 0
	tritBlue      = 1
	tritUncolored = 2
)

// shatterEstimator is the pessimistic estimator behind Theorem 5.2.
//
// For every constraint u, P̂(u) upper-bounds Pr[u unsatisfied] under random
// completion:
//
//	P̂(u) = P(no red neighbor colored) + P(no blue neighbor colored)
//	     + Σ_{ū ∈ N²(u) ∪ {u}} P(ū colors > 3/4 of its neighbors),
//
// where each summand is an exact event probability (binomial tails over
// undecided trits), valid because a constraint can only become unsatisfied
// through missing a color outright or through an uncoloring event within
// two hops. For every variable v, the potential term is the log-space MGF
// bound
//
//	Φ_v = exp( Σ_{u ∈ N(v)} log1p((e^t-1)·P̂(u)) − t·k ),  k = max(1, ⌊δ/24⌋);
//
// Φ_v < 1 at the end forces v to have < k unsatisfied neighbors, which is
// exactly the conclusion of Lemma 5.1 (r_H ≤ δ/24, hence δ_H ≥ δ/4 ≥ 6·r_H).
// Girth ≥ 10 makes the factors of each product depend on (almost) disjoint
// variables (Lemma 5.1's independence argument), so each Φ_v is a valid
// pessimistic estimator up to the positive-correlation slack of factors
// that share a variable through uncoloring events; Φ = Σ_v Φ_v. The
// per-constraint terms are exact martingales, the greedy trajectory is
// non-increasing in practice, and the pipeline re-verifies the Lemma 5.1
// conclusion on the final assignment, failing loudly if the slack ever
// mattered.
//
// All state is maintained incrementally: pa2sum[u] caches the uncoloring
// term Σ, so a fix touches only the radius-3 ball of the variable.
type shatterEstimator struct {
	b *graph.Bipartite
	// Per-constraint direct state.
	undec   []int // undecided neighbors of u
	hasRed  []bool
	hasBlue []bool
	// Per-constraint uncoloring-event state: colored count so far and the
	// event threshold (colored > 3d/4 ⟺ colored ≥ thresh).
	fixedColored []int
	thresh       []int
	pa2          []float64 // P(A2(u)) under the current partial state
	pa2sum       []float64 // Σ_{ū ∈ n2[u]} pa2[ū]
	// n2[u] = constraints within two hops of u, including u itself.
	n2 [][]int32
	// phat[u] = cached P̂(u).
	phat []float64
	// Per-variable potential bookkeeping: sv[v] = Σ log1p((e^t-1)·P̂(u)),
	// phi[v] = exp(sv[v] - t·k).
	sv  []float64
	phi []float64
	t   float64
	em1 float64 // e^t - 1
	k   int
	sum float64
	// assigned[w] = chosen trit, or -1.
	assigned []int
	// Epoch-stamped dedup scratch for apply().
	epoch  int64
	uStamp []int64
	vStamp []int64
}

var _ derand.Estimator = (*shatterEstimator)(nil)

func newShatterEstimator(b *graph.Bipartite) *shatterEstimator {
	nu, nv := b.NU(), b.NV()
	e := &shatterEstimator{
		b:            b,
		undec:        make([]int, nu),
		hasRed:       make([]bool, nu),
		hasBlue:      make([]bool, nu),
		fixedColored: make([]int, nu),
		thresh:       make([]int, nu),
		pa2:          make([]float64, nu),
		pa2sum:       make([]float64, nu),
		n2:           make([][]int32, nu),
		phat:         make([]float64, nu),
		sv:           make([]float64, nv),
		phi:          make([]float64, nv),
		assigned:     make([]int, nv),
		uStamp:       make([]int64, nu),
		vStamp:       make([]int64, nv),
	}
	for v := range e.assigned {
		e.assigned[v] = -1
	}
	for u := 0; u < nu; u++ {
		d := b.DegU(u)
		e.undec[u] = d
		e.thresh[u] = 3*d/4 + 1 // colored > 3d/4 ⟺ colored ≥ this
		e.pa2[u] = prob.BinomTailGE(d, 0.5, e.thresh[u])
		// N²(u) ∪ {u}, deterministic order, deduplicated.
		e.epoch++
		list := []int32{int32(u)}
		e.uStamp[u] = e.epoch
		for _, v := range b.NbrU(u) {
			for _, w := range b.NbrV(int(v)) {
				if e.uStamp[w] != e.epoch {
					e.uStamp[w] = e.epoch
					list = append(list, w)
				}
			}
		}
		e.n2[u] = list
	}
	for u := 0; u < nu; u++ {
		var s float64
		for _, ub := range e.n2[u] {
			s += e.pa2[ub]
		}
		e.pa2sum[u] = s
		e.phat[u] = e.computePhat(u)
	}
	// Pick the MGF parameter from the worst initial P̂ so that
	// (e^t-1)·P̂ ≈ √P̂ stays small while t·k is as large as possible.
	worst := 1e-300
	for _, p := range e.phat {
		if p > worst {
			worst = p
		}
	}
	e.t = math.Max(1, 0.5*math.Log(1/worst))
	e.em1 = math.Exp(e.t) - 1
	delta := b.MinDegU()
	e.k = delta / 24
	if e.k < 1 {
		e.k = 1
	}
	for v := 0; v < nv; v++ {
		var s float64
		for _, u := range b.NbrV(v) {
			s += math.Log1p(e.em1 * e.phat[u])
		}
		e.sv[v] = s
		e.phi[v] = math.Exp(s - e.t*float64(e.k))
		e.sum += e.phi[v]
	}
	return e
}

// computePhat evaluates P̂(u) in O(1) from the cached states: the exact
// probabilities of "no red / no blue among colored neighbors" plus the
// cached uncoloring-event sum.
func (e *shatterEstimator) computePhat(u int) float64 {
	var p float64
	if !e.hasRed[u] {
		p += math.Pow(0.75, float64(e.undec[u]))
	}
	if !e.hasBlue[u] {
		p += math.Pow(0.75, float64(e.undec[u]))
	}
	return p + e.pa2sum[u]
}

// Vars implements derand.Estimator.
func (e *shatterEstimator) Vars() int { return e.b.NV() }

// Labels implements derand.Estimator.
func (e *shatterEstimator) Labels() int { return 3 }

// Cost implements derand.Estimator.
func (e *shatterEstimator) Cost() float64 { return e.sum }

// CostIf implements derand.Estimator via apply + rollback.
func (e *shatterEstimator) CostIf(w, x int) float64 {
	undo := e.apply(w, x)
	c := e.sum
	e.revert(undo)
	return c
}

// Fix implements derand.Estimator.
func (e *shatterEstimator) Fix(w, x int) { e.apply(w, x) }

// undoLog records prior values so CostIf can roll back exactly (float
// updates are restored from snapshots, not recomputed, to keep CostIf and
// the post-Fix Cost bit-identical).
type undoLog struct {
	w          int
	prevAssign int
	prevSum    float64
	prevRed    []bool // parallel to N(w)
	prevBlue   []bool
	prevPA2    []float64
	uAffected  []int32 // union of n2[ū] over ū ∈ N(w)
	prevPhat   []float64
	prevPa2sum []float64
	vAffected  []int32
	prevSv     []float64
	prevPhi    []float64
}

func (e *shatterEstimator) apply(w, x int) *undoLog {
	u0 := e.b.NbrV(w)
	undo := &undoLog{
		w:          w,
		prevAssign: e.assigned[w],
		prevSum:    e.sum,
	}
	e.assigned[w] = x
	e.epoch++
	// Affected constraints: the union of N²(ū) ∪ {ū} over ū ∈ N(w); their
	// phat (and possibly pa2sum) values change. N(w) ⊆ the union because
	// n2 lists include the node itself.
	for _, ui := range u0 {
		for _, ub := range e.n2[ui] {
			if e.uStamp[ub] != e.epoch {
				e.uStamp[ub] = e.epoch
				undo.uAffected = append(undo.uAffected, ub)
			}
		}
	}
	undo.prevPhat = make([]float64, len(undo.uAffected))
	undo.prevPa2sum = make([]float64, len(undo.uAffected))
	for i, ub := range undo.uAffected {
		undo.prevPhat[i] = e.phat[ub]
		undo.prevPa2sum[i] = e.pa2sum[ub]
	}
	// Direct state and uncoloring-event updates at the constraints of w.
	undo.prevRed = make([]bool, len(u0))
	undo.prevBlue = make([]bool, len(u0))
	undo.prevPA2 = make([]float64, len(u0))
	for i, ui := range u0 {
		u := int(ui)
		undo.prevRed[i] = e.hasRed[u]
		undo.prevBlue[i] = e.hasBlue[u]
		undo.prevPA2[i] = e.pa2[u]
		e.undec[u]--
		switch x {
		case tritRed:
			e.hasRed[u] = true
			e.fixedColored[u]++
		case tritBlue:
			e.hasBlue[u] = true
			e.fixedColored[u]++
		}
		newPA2 := prob.BinomTailGE(e.undec[u], 0.5, e.thresh[u]-e.fixedColored[u])
		if d := newPA2 - e.pa2[u]; d != 0 {
			for _, ub := range e.n2[u] {
				e.pa2sum[ub] += d
			}
		}
		e.pa2[u] = newPA2
	}
	// Refresh phat on the affected ball and push the per-variable deltas.
	for _, ub := range undo.uAffected {
		old := e.phat[ub]
		nw := e.computePhat(int(ub))
		e.phat[ub] = nw
		if nw == old {
			continue
		}
		dlog := math.Log1p(e.em1*nw) - math.Log1p(e.em1*old)
		for _, v := range e.b.NbrU(int(ub)) {
			if e.vStamp[v] != e.epoch {
				e.vStamp[v] = e.epoch
				undo.vAffected = append(undo.vAffected, v)
				undo.prevSv = append(undo.prevSv, e.sv[v])
				undo.prevPhi = append(undo.prevPhi, e.phi[v])
			}
			e.sv[v] += dlog
		}
	}
	for _, v := range undo.vAffected {
		e.sum -= e.phi[v]
		e.phi[v] = math.Exp(e.sv[v] - e.t*float64(e.k))
		e.sum += e.phi[v]
	}
	return undo
}

func (e *shatterEstimator) revert(undo *undoLog) {
	w := undo.w
	x := e.assigned[w]
	e.assigned[w] = undo.prevAssign
	for i, ui := range e.b.NbrV(w) {
		u := int(ui)
		e.undec[u]++
		e.hasRed[u] = undo.prevRed[i]
		e.hasBlue[u] = undo.prevBlue[i]
		if x == tritRed || x == tritBlue {
			e.fixedColored[u]--
		}
		e.pa2[u] = undo.prevPA2[i]
	}
	for i, ub := range undo.uAffected {
		e.phat[ub] = undo.prevPhat[i]
		e.pa2sum[ub] = undo.prevPa2sum[i]
	}
	for i, v := range undo.vAffected {
		e.sv[v] = undo.prevSv[i]
		e.phi[v] = undo.prevPhi[i]
	}
	e.sum = undo.prevSum
}
