package core

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/graph"
)

// ExhaustiveSplit is a centralized backtracking reference solver for weak
// splitting: depth-first search over variable colors with unit propagation
// (a constraint missing one color with a single undecided neighbor forces
// that neighbor). It is the existence oracle for regimes below the paper's
// algorithmic thresholds — e.g. the rank-2, δ_B = 3 instances of the
// Figure 1 reduction — and the last-resort fallback for tiny shattering
// components. The budget caps the number of search steps.
func ExhaustiveSplit(b *graph.Bipartite, budget int) (*Result, error) {
	if budget <= 0 {
		budget = 1 << 20
	}
	nu, nv := b.NU(), b.NV()
	for u := 0; u < nu; u++ {
		if b.DegU(u) < 2 {
			return nil, fmt.Errorf("core: constraint %d has degree %d < 2; unsatisfiable", u, b.DegU(u))
		}
	}
	s := &exhaustiveState{
		b:      b,
		colors: make([]int, nv),
		undec:  make([]int, nu),
		has:    make([][2]bool, nu),
		budget: budget,
	}
	for v := range s.colors {
		s.colors[v] = Uncolored
	}
	for u := 0; u < nu; u++ {
		s.undec[u] = b.DegU(u)
	}
	if !s.search(0) {
		if s.budget <= 0 {
			return nil, fmt.Errorf("core: exhaustive search budget exhausted")
		}
		return nil, fmt.Errorf("core: no weak splitting exists")
	}
	res := &Result{Colors: s.colors}
	res.Trace.Add("exhaustive-reference", 0)
	res.Trace.Note("centralized reference solver (not a LOCAL algorithm)")
	if err := check.WeakSplit(b, s.colors, 0); err != nil {
		return nil, fmt.Errorf("core: exhaustive self-check: %w", err)
	}
	return res, nil
}

type exhaustiveState struct {
	b      *graph.Bipartite
	colors []int
	undec  []int
	has    [][2]bool // has[u][Red/Blue]
	budget int
}

// assign colors variable v and updates constraint state; it returns false
// if some constraint becomes unsatisfiable, together with an undo closure.
func (s *exhaustiveState) assign(v, color int) (ok bool, undo func()) {
	s.colors[v] = color
	type uChange struct {
		u      int32
		hadCol bool
	}
	changes := make([]uChange, 0, len(s.b.NbrV(v)))
	ok = true
	for _, u := range s.b.NbrV(v) {
		s.undec[u]--
		had := s.has[u][color]
		s.has[u][color] = true
		changes = append(changes, uChange{u: u, hadCol: had})
		missing := 0
		if !s.has[u][Red] {
			missing++
		}
		if !s.has[u][Blue] {
			missing++
		}
		if s.undec[u] < missing {
			ok = false
		}
	}
	undo = func() {
		s.colors[v] = Uncolored
		for _, c := range changes {
			s.undec[c.u]++
			s.has[c.u][color] = c.hadCol
		}
	}
	return ok, undo
}

// search assigns variables v, v+1, … by DFS. Variables are tried Red first;
// the forced-move pruning lives in assign's feasibility test.
func (s *exhaustiveState) search(v int) bool {
	if s.budget <= 0 {
		return false
	}
	s.budget--
	nv := s.b.NV()
	for v < nv && s.colors[v] != Uncolored {
		v++
	}
	if v == nv {
		// All assigned; feasibility was maintained incrementally, but make
		// sure every constraint is actually satisfied.
		for u := 0; u < s.b.NU(); u++ {
			if !s.has[u][Red] || !s.has[u][Blue] {
				return false
			}
		}
		return true
	}
	// Try the color the adjacent constraints lack more often first; on
	// satisfiable instances this makes the search essentially greedy.
	needRed, needBlue := 0, 0
	for _, u := range s.b.NbrV(v) {
		if !s.has[u][Red] {
			needRed++
		}
		if !s.has[u][Blue] {
			needBlue++
		}
	}
	order := [2]int{Red, Blue}
	if needBlue > needRed {
		order = [2]int{Blue, Red}
	}
	for _, color := range order {
		ok, undo := s.assign(v, color)
		if ok && s.search(v+1) {
			return true
		}
		undo()
	}
	return false
}
