package core

import (
	"math"
	"testing"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

func subdividedStar(t *testing.T, d int) *graph.Bipartite {
	t.Helper()
	b, err := graph.SubdividedStar(d)
	if err != nil {
		t.Fatal(err)
	}
	if b.MinDegU() != d || b.Rank() != 2 {
		t.Fatalf("SubdividedStar(%d): δ=%d r=%d", d, b.MinDegU(), b.Rank())
	}
	return b
}

func TestHighGirthRandomized(t *testing.T) {
	t.Parallel()
	b := subdividedStar(t, 48)
	res, err := HighGirthRandomized(b, prob.NewSource(41), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
}

func TestHighGirthRandomizedOnTree(t *testing.T) {
	t.Parallel()
	// The d-ary tree has rank d+1; Lemma 5.1 then effectively requires no
	// unsatisfied constraints at all at this scale, which holds for large
	// enough d thanks to the e^{-ηΔ} bound of Lemma 2.9.
	tree, err := graph.HighGirthTree(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HighGirthRandomized(tree, prob.NewSource(42), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(tree, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
}

func TestHighGirthRejectsShortCycles(t *testing.T) {
	b := graph.CompleteBipartite(6, 6) // girth 4
	if _, err := HighGirthRandomized(b, prob.NewSource(43), 2); err == nil {
		t.Error("girth-4 instance must be rejected by Theorem 5.3")
	}
	if _, err := HighGirthDeterministic(b, nil); err == nil {
		t.Error("girth-4 instance must be rejected by Theorem 5.2")
	}
}

func TestHighGirthDeterministic(t *testing.T) {
	t.Parallel()
	b := subdividedStar(t, 81)
	res, err := HighGirthDeterministic(b, local.SequentialEngine{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
	if res.Trace.Rounds() <= 0 {
		t.Error("expected positive round accounting")
	}
	// Determinism: a second run must produce identical colors.
	res2, err := HighGirthDeterministic(b, local.SequentialEngine{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Colors {
		if res.Colors[v] != res2.Colors[v] {
			t.Fatal("Theorem 5.2 output is not deterministic")
		}
	}
}

func TestHighGirthDeterministicRejectsWeakParameters(t *testing.T) {
	// d = 8 makes the initial potential ≥ 1 (the paper's "sufficiently
	// large constants" are genuinely required); the algorithm must fail
	// loudly rather than return something unverified.
	b := subdividedStar(t, 8)
	if _, err := HighGirthDeterministic(b, nil); err == nil {
		t.Error("weak parameters should be rejected via the potential precondition")
	}
}

func TestShatterEstimatorBookkeeping(t *testing.T) {
	b := subdividedStar(t, 32)
	e := newShatterEstimator(b)
	// CostIf must equal Cost after Fix, bit-for-bit (apply/revert
	// consistency), across a mix of labels.
	for w := 0; w < 60; w++ {
		x := w % 3
		want := e.CostIf(w, x)
		e.Fix(w, x)
		if got := e.Cost(); got != want {
			t.Fatalf("CostIf/Fix mismatch at w=%d: %v vs %v", w, want, got)
		}
	}
}

func TestShatterEstimatorNearSupermartingale(t *testing.T) {
	b := subdividedStar(t, 32)
	e := newShatterEstimator(b)
	// Under the shattering distribution (1/4, 1/4, 1/2), the per-constraint
	// terms P̂(u) are exact martingales; the per-variable MGF products pick
	// up positive-correlation slack when two factors share the fixed
	// variable, so the full potential is a supermartingale only up to a
	// tiny relative error (the estimator doc-comment records this caveat —
	// the pipeline verifies Lemma 5.1 on the final assignment regardless).
	// Check the slack stays below 1e-4 relative, and that the greedy
	// trajectory itself never increases the potential.
	for w := 0; w < 40; w++ {
		cur := e.Cost()
		avg := 0.25*e.CostIf(w, tritRed) + 0.25*e.CostIf(w, tritBlue) + 0.5*e.CostIf(w, tritUncolored)
		if avg > cur*(1+1e-4) {
			t.Fatalf("potential slack too large at w=%d: avg %v vs cur %v", w, avg, cur)
		}
		// Fix to the greedy minimizer, as the real run would.
		best, bestC := 0, math.Inf(1)
		for x := 0; x < 3; x++ {
			if c := e.CostIf(w, x); c < bestC {
				best, bestC = x, c
			}
		}
		e.Fix(w, best)
		if e.Cost() > cur*(1+1e-9) {
			t.Fatalf("greedy step increased the potential at w=%d: %v -> %v", w, cur, e.Cost())
		}
	}
}

func TestLemma51Holds(t *testing.T) {
	b := subdividedStar(t, 48)
	sh := Shatter(b, prob.NewSource(44))
	dH, rH, ok := Lemma51Holds(b, sh)
	if ok && rH > 0 && dH < 6*rH {
		t.Error("Lemma51Holds returned inconsistent values")
	}
	// A fully satisfied outcome must be vacuously fine.
	allSat := &ShatterOutcome{
		Colors: make([]int, b.NV()),
		UnsatU: make([]bool, b.NU()),
	}
	for v := range allSat.Colors {
		allSat.Colors[v] = Red
	}
	if _, _, ok := Lemma51Holds(b, allSat); !ok {
		t.Error("no unsatisfied constraints must satisfy Lemma 5.1 vacuously")
	}
}

func TestApplyUncoloring(t *testing.T) {
	// One constraint with 4 neighbors, 4 colored (> 3/4): uncolors all.
	b, err := graph.BipartiteFromEdges(1, 4, [][2]int{{0, 0}, {0, 1}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	trits := []int{Red, Red, Blue, Red}
	out, unsat := applyUncoloring(b, trits)
	for v, c := range out {
		if c != Uncolored {
			t.Errorf("variable %d should be uncolored, got %d", v, c)
		}
	}
	if !unsat[0] {
		t.Error("constraint should be unsatisfied after uncoloring")
	}
	// 3 of 4 colored is not > 3/4: nothing uncolored.
	trits = []int{Red, Blue, Red, Uncolored}
	out, unsat = applyUncoloring(b, trits)
	if out[0] != Red || out[3] != Uncolored {
		t.Error("no uncoloring expected")
	}
	if unsat[0] {
		t.Error("constraint sees both colors")
	}
}
