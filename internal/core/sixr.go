package core

import (
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// SixROptions tune SixRSplit; the zero value is the deterministic variant.
type SixROptions struct {
	Engine local.Engine
	// Source switches the δ ≥ 2·log n branch to the zero-round randomized
	// splitter (the Theorem 2.7 randomized variant); nil keeps everything
	// deterministic.
	Source *prob.Source
}

// SixRSplit is Theorem 2.7: weak splitting when δ ≥ 6·r, in polylog n
// deterministic rounds (polyloglog n randomized). If δ ≥ 2·log n the
// algorithm delegates to Theorem 2.5 (deterministic) or the zero-round
// randomized splitter. Otherwise it runs ⌈log r⌉ iterations of Degree-Rank
// Reduction II, after which the rank is 1 and every constraint still has
// degree ≥ 2 (the Eulerian splitter's discrepancy ≤ 1 matches the paper's
// ε·d(u) < 1 regime), so every constraint can simply pick one red and one
// blue neighbor — no two constraints share a variable at rank 1.
func SixRSplit(b *graph.Bipartite, opts SixROptions) (*Result, error) {
	if opts.Engine == nil {
		opts.Engine = local.SequentialEngine{}
	}
	delta, r := b.MinDegU(), b.Rank()
	if delta < 6*r {
		return nil, fmt.Errorf("core: Theorem 2.7 requires δ ≥ 6r, have δ=%d r=%d", delta, r)
	}
	if b.NV() == 0 {
		if b.NU() > 0 {
			return nil, fmt.Errorf("core: constraints without variables are unsatisfiable")
		}
		return &Result{}, nil
	}
	logn := log2n(b)
	if float64(delta) >= 2*logn {
		if opts.Source != nil {
			res, err := ZeroRoundRandomRetry(b, opts.Source, 16)
			if err != nil {
				return nil, fmt.Errorf("core: Theorem 2.7 randomized branch: %w", err)
			}
			res.Trace.Note("δ ≥ 2·log n: zero-round randomized branch")
			return res, nil
		}
		res, err := DeterministicSplit(b, DeterministicOptions{Engine: opts.Engine})
		if err != nil {
			return nil, fmt.Errorf("core: Theorem 2.7 large-δ branch: %w", err)
		}
		res.Trace.Note("δ ≥ 2·log n: Theorem 2.5 branch")
		return res, nil
	}

	k := int(math.Ceil(prob.Log2(float64(max(r, 1)))))
	if k < 1 {
		k = 1
	}
	drr, err := DegreeRankReductionII(b, k)
	if err != nil {
		return nil, fmt.Errorf("core: Theorem 2.7 DRR-II: %w", err)
	}
	resid := drr.B
	if got := resid.Rank(); got > 1 {
		return nil, fmt.Errorf("core: Theorem 2.7: rank after %d DRR-II iterations is %d, want 1", k, got)
	}
	if md := resid.MinDegU(); md < 2 {
		return nil, fmt.Errorf("core: Theorem 2.7: residual min degree %d < 2 (paper's invariant violated)", md)
	}

	// Rank 1: every variable has at most one constraint neighbor, so the
	// constraints choose independently: first residual neighbor red, second
	// blue, everything untouched defaults to red.
	colors := make([]int, b.NV())
	for v := range colors {
		colors[v] = Red
	}
	for u := 0; u < resid.NU(); u++ {
		nbrs := resid.NbrU(u)
		colors[nbrs[0]] = Red
		colors[nbrs[1]] = Blue
	}
	res := &Result{Colors: colors}
	res.Trace.Merge("", &drr.Trace)
	res.Trace.Add("rank1-assignment", 1)
	res.Trace.Note("DRR-II: k=%d, rank %d→%d, δ %d→%d", k, drr.Ranks[0], drr.Ranks[k], drr.MinDegs[0], drr.MinDegs[k])
	if err := check.WeakSplit(b, colors, 0); err != nil {
		return nil, fmt.Errorf("core: Theorem 2.7 self-check: %w", err)
	}
	return res, nil
}
