package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prob"
)

// DRRIResult is the outcome of Degree-Rank Reduction I.
type DRRIResult struct {
	B     *graph.Bipartite // the residual instance after all iterations
	Trace Trace
	// MinDeg and Rank trajectories, indexed by iteration (0 = input).
	MinDegs []int
	Ranks   []int
}

// DegreeRankReductionI is the reduction of Section 2.2: in each iteration a
// directed degree splitting is computed on the bipartite graph itself, and
// every edge oriented from a variable node towards a constraint node is
// deleted, halving (up to the splitting discrepancy) both the left degrees
// and the rank (Lemma 2.4):
//
//	δ_k > ((1-ε)/2)^k·δ - 2   and   r_k < ((1+ε)/2)^k·r + 3.
func DegreeRankReductionI(b *graph.Bipartite, iterations int, eps float64, kind SplitterKind, src *prob.Source) (*DRRIResult, error) {
	if iterations < 0 {
		return nil, fmt.Errorf("core: negative iteration count %d", iterations)
	}
	cur := b
	res := &DRRIResult{
		MinDegs: []int{b.MinDegU()},
		Ranks:   []int{b.Rank()},
	}
	for it := 0; it < iterations; it++ {
		nu := cur.NU()
		m := graph.NewMultigraph(cur.N())
		type edgeRef struct{ u, v int32 }
		refs := make([]edgeRef, 0, cur.M())
		for u := 0; u < nu; u++ {
			for _, v := range cur.NbrU(u) {
				if _, err := m.AddEdge(u, nu+int(v)); err != nil {
					return nil, fmt.Errorf("core: DRR-I multigraph: %w", err)
				}
				refs = append(refs, edgeRef{u: int32(u), v: v})
			}
		}
		var itSrc *prob.Source
		if src != nil {
			itSrc = src.Fork(uint64(it))
		} else if kind == SplitterApproxRand {
			return nil, fmt.Errorf("core: randomized splitter requires a source")
		}
		sp := split(kind, m, eps, itSrc)
		res.Trace.Add(fmt.Sprintf("drr1-iter%d-split(%s)", it, kind), sp.Rounds)
		// Keep exactly the edges oriented from U towards V (edge id order
		// matches refs order).
		next := graph.NewBipartite(cur.NU(), cur.NV())
		for e, ref := range refs {
			if sp.O.Toward[e] { // tail(u) → head(v): v keeps an incoming edge
				if err := next.AddEdge(int(ref.u), int(ref.v)); err != nil {
					return nil, fmt.Errorf("core: DRR-I rebuild: %w", err)
				}
			}
		}
		next.Normalize()
		cur = next
		res.MinDegs = append(res.MinDegs, cur.MinDegU())
		res.Ranks = append(res.Ranks, cur.Rank())
	}
	res.B = cur
	return res, nil
}

// DRRIIResult is the outcome of Degree-Rank Reduction II.
type DRRIIResult struct {
	B     *graph.Bipartite
	Trace Trace
	// Ranks[k] is the rank after k iterations; Lemma 2.6 proves
	// Ranks[⌈log r⌉] = 1. MinDegs tracks the left degrees.
	Ranks   []int
	MinDegs []int
}

// DegreeRankReductionII is the reduction of Section 2.3: each variable node
// v pairs up its constraint neighbors; every pair becomes an edge of a
// multigraph G on U (with v as "corresponding node"); after a directed
// degree splitting of G, for an edge directed u → ū the bipartite edge
// (ū, v) is deleted. A variable node thus keeps exactly one edge of each of
// its pairs (plus its unpaired edge), so rank halves exactly:
// r_{k+1} = ⌈r_k/2⌉, and r never drops below 1 (Lemma 2.6).
//
// The splitter here is the Eulerian chain splitter (discrepancy ≤ 1), our
// stand-in for the ε·d+2 splitter of [GHK+17b] that Theorem 2.7 invokes
// with ε < 1/d (DESIGN.md substitution 1): a constraint node loses at most
// ⌈deg_G(u)/2⌉+… no more than half of its pairs plus one.
func DegreeRankReductionII(b *graph.Bipartite, iterations int) (*DRRIIResult, error) {
	if iterations < 0 {
		return nil, fmt.Errorf("core: negative iteration count %d", iterations)
	}
	cur := b
	res := &DRRIIResult{
		Ranks:   []int{b.Rank()},
		MinDegs: []int{b.MinDegU()},
	}
	for it := 0; it < iterations; it++ {
		m := graph.NewMultigraph(cur.NU())
		type pairRef struct{ u1, u2, v int32 }
		refs := make([]pairRef, 0, cur.M()/2)
		for v := 0; v < cur.NV(); v++ {
			nbrs := cur.NbrV(v)
			for i := 0; i+1 < len(nbrs); i += 2 {
				if _, err := m.AddEdge(int(nbrs[i]), int(nbrs[i+1])); err != nil {
					return nil, fmt.Errorf("core: DRR-II multigraph: %w", err)
				}
				refs = append(refs, pairRef{u1: nbrs[i], u2: nbrs[i+1], v: int32(v)})
			}
		}
		sp := split(SplitterEulerian, m, 0, nil)
		res.Trace.Add(fmt.Sprintf("drr2-iter%d-split", it), sp.Rounds)
		// Deletion rule: edge u1→u2 deletes (u2, v); u2→u1 deletes (u1, v).
		deleted := make(map[[2]int32]struct{}, len(refs))
		for e, ref := range refs {
			if sp.O.Toward[e] {
				deleted[[2]int32{ref.u2, ref.v}] = struct{}{}
			} else {
				deleted[[2]int32{ref.u1, ref.v}] = struct{}{}
			}
		}
		cur = cur.SubgraphKeepEdges(func(u, v int) bool {
			_, gone := deleted[[2]int32{int32(u), int32(v)}]
			return !gone
		})
		res.Ranks = append(res.Ranks, cur.Rank())
		res.MinDegs = append(res.MinDegs, cur.MinDegU())
	}
	res.B = cur
	return res, nil
}
