package core

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// ZeroRoundRandomRetryBatch is the batched multi-seed counterpart of
// ZeroRoundRandomRetry: it solves the same instance under len(srcs)
// independent seeds in one pass per retry wave. The topology is built once,
// and each wave runs the still-unsolved seeds as one local.BatchRun, so an
// experiment sweep pays engine setup and topology traversal per wave rather
// than per (seed, attempt).
//
// Result i is bit-identical — colors, trace, retry notes, and failure
// errors — to ZeroRoundRandomRetry(b, srcs[i], attempts) run standalone:
// per-node randomness is keyed by (seed, ID), and each seed forks its
// attempt sources exactly as the standalone retry loop does. workers sizes
// the batch worker pool (<= 0 means GOMAXPROCS). ctl, when non-nil, makes
// the batched waves cancellable: seeds retired by the control surface its
// ErrCancelled/ErrDeadline in their error slot (nil runs uncontrolled).
func ZeroRoundRandomRetryBatch(b *graph.Bipartite, srcs []*prob.Source, attempts, workers int, ctl *local.RunControl) ([]*Result, []error) {
	nSeeds := len(srcs)
	results := make([]*Result, nSeeds)
	errs := make([]error, nSeeds)
	if nSeeds == 0 {
		return results, errs
	}
	type vInput struct{ v int }
	g := b.AsGraph()
	topo := local.NewTopology(g)
	inputs := make([]any, g.N())
	for i := range inputs {
		if i >= b.NU() {
			inputs[i] = vInput{v: i - b.NU()}
		}
	}
	pending := make([]int, nSeeds)
	for i := range pending {
		pending[i] = i
	}
	lastErr := make([]error, nSeeds)
	for attempt := 0; attempt < attempts && len(pending) > 0; attempt++ {
		// A fired control ends the retry loop as a whole: the still-pending
		// seeds report the cancellation itself rather than a misleading
		// "failed N attempts".
		if cerr := ctl.Err(); cerr != nil {
			for _, i := range pending {
				errs[i] = cerr
			}
			return results, errs
		}
		colors := make([][]int, len(pending))
		trials := make([]local.Trial, len(pending))
		for j, i := range pending {
			colors[j] = make([]int, b.NV())
			cj := colors[j]
			trials[j] = local.Trial{
				Factory: func(view local.View) local.Node {
					return local.BitProgram(local.BitFunc(func(int, local.BitRow, local.BitRow) bool {
						if in, ok := view.Input.(vInput); ok {
							cj[in.v] = int(view.Rand.Uint64() & 1)
						}
						return true
					}))
				},
				Opts: local.Options{Source: srcs[i].Fork(uint64(attempt)), Inputs: inputs},
			}
		}
		stats, terrs := local.BatchRun(topo, trials, local.BatchOptions{Workers: workers, Control: ctl})
		still := pending[:0]
		for j, i := range pending {
			if terrs[j] != nil {
				lastErr[i] = fmt.Errorf("core: zero-round splitter: %w", terrs[j])
				still = append(still, i)
				continue
			}
			res := &Result{Colors: colors[j]}
			res.Trace.Add("zero-round-random", stats[j].Rounds-1)
			if verr := check.WeakSplit(b, colors[j], 0); verr != nil {
				lastErr[i] = fmt.Errorf("core: zero-round splitter failed verification (retry with a new seed): %w", verr)
				still = append(still, i)
				continue
			}
			if attempt > 0 {
				res.Trace.Note("succeeded after %d retries", attempt)
			}
			results[i] = res
		}
		pending = still
	}
	for _, i := range pending {
		errs[i] = fmt.Errorf("core: zero-round splitter failed %d attempts: %w", attempts, lastErr[i])
	}
	return results, errs
}
