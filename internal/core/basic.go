package core

import (
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/derand"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/slocal"
)

// BasicDerandomized is Lemma 2.1: the zero-round randomized splitter is
// derandomized by the method of conditional expectations into an SLOCAL(2)
// algorithm, which is compiled into the LOCAL model with a coloring of B²
// (the conflict graph on variable nodes). It requires δ ≥ 2·log n so that
// the initial potential Σ_u 2·2^{-deg(u)} ≤ 2/n < 1.
//
// Round complexity: O(Δ·r) — the B² coloring has O(Δ·r) colors and
// dominates; our Linial+KW substitute adds a log factor to the coloring
// step (DESIGN.md substitution 2).
func BasicDerandomized(b *graph.Bipartite, eng local.Engine) (*Result, error) {
	res := &Result{}
	if b.NV() == 0 {
		if b.NU() > 0 {
			return nil, fmt.Errorf("core: constraints without variables are unsatisfiable")
		}
		return res, nil
	}
	// Color the conflict graph B² on the variable side; one round on B²
	// costs two rounds on B.
	conflict := b.VPower(1)
	colors, num, err := ConflictColoring(conflict, eng, &res.Trace, "B2-coloring", 2)
	if err != nil {
		return nil, err
	}

	vtc, degs := varToCons(b)
	est := derand.NewWeakSplitEstimator(vtc, degs)
	compiled, err := slocal.CompileGreedy(est, colors, num, 2)
	if err != nil {
		return nil, fmt.Errorf("core: derandomization: %w", err)
	}
	res.Trace.Add("slocal-greedy", compiled.Rounds)
	res.Colors = compiled.Labels
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		return nil, fmt.Errorf("core: Lemma 2.1 self-check: %w", err)
	}
	return res, nil
}

// TruncatedDerandomized is Lemma 2.2: every constraint node deletes
// arbitrary incident edges down to δ' = ⌈2·log n⌉ and Lemma 2.1 runs on the
// truncated instance H; the weak splitting property is preserved under
// adding the edges back. Requires δ ≥ 2·log n. Round complexity O(r·log n).
func TruncatedDerandomized(b *graph.Bipartite, eng local.Engine) (*Result, error) {
	keep := int(math.Ceil(2 * log2n(b)))
	if md := b.MinDegU(); md < keep {
		return nil, fmt.Errorf("core: Lemma 2.2 requires δ ≥ 2·log n = %d, have %d", keep, md)
	}
	h := graph.TruncateLeftDegrees(b, keep)
	res, err := BasicDerandomized(h, eng)
	if err != nil {
		return nil, fmt.Errorf("core: Lemma 2.2: %w", err)
	}
	res.Trace.Add("truncate", 0) // edge deletion is a local decision
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		return nil, fmt.Errorf("core: Lemma 2.2 self-check on original instance: %w", err)
	}
	return res, nil
}
