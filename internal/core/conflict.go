package core

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/local"
)

// simulationBudget caps the edge·round product for which the conflict-graph
// coloring is executed as a real message-passing simulation (the per-round
// cost of the engine is Θ(m) for inbox scanning); beyond it the centralized
// greedy coloring stands in, with rounds accounted by the same formula the
// simulation would charge (the palette bound Δ+1 is identical).
const simulationBudget = 50_000_000

// ConflictColoring produces a proper coloring of a conflict graph (B² or B⁴
// on the variable side) for SLOCAL compilation, used by Lemma 2.1,
// Theorems 3.2/3.3 and Theorem 5.2. It returns the colors, the palette
// size, and charges the LOCAL rounds to the trace (scaled by hopFactor, the
// cost of simulating one power-graph round on the original network).
func ConflictColoring(conflict *graph.Graph, eng local.Engine, trace *Trace, name string, hopFactor int) ([]int, int, error) {
	n := conflict.N()
	est := coloring.EstimateRounds(n, conflict.MaxDeg())
	work := int64(2*conflict.M()+n) * int64(est)
	if work <= simulationBudget {
		res, err := coloring.DeltaPlusOne(conflict, eng, local.Options{})
		if err != nil {
			return nil, 0, fmt.Errorf("core: %s coloring: %w", name, err)
		}
		trace.Add(name, res.Stats.Rounds*hopFactor)
		return res.Colors, res.Num, nil
	}
	res := coloring.GreedySequential(conflict)
	trace.Add(name, est*hopFactor)
	trace.Note("%s: centralized greedy coloring stood in for the simulation (n=%d, m=%d, est rounds=%d); palette %d ≤ Δ+1=%d",
		name, n, conflict.M(), est, res.Num, conflict.MaxDeg()+1)
	return res.Colors, conflict.MaxDeg() + 1, nil
}
