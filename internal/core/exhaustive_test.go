package core

import (
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/prob"
)

func TestExhaustiveSolvesSatisfiable(t *testing.T) {
	b, err := graph.RandomBipartiteLeftRegular(40, 60, 5, prob.NewSource(1).Rand())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExhaustiveSplit(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveDetectsUnsatisfiable(t *testing.T) {
	// The odd-cycle instance: constraints u_i with neighborhoods
	// {v_i, v_{i+1 mod 3}}. A weak splitting would be a proper 2-coloring
	// of a triangle — impossible (the classic property-B failure).
	b, err := graph.BipartiteFromEdges(3, 3, [][2]int{
		{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}, {2, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExhaustiveSplit(b, 0); err == nil {
		t.Fatal("odd-cycle instance is unsatisfiable and must be rejected")
	}
}

func TestExhaustiveRejectsDegreeOne(t *testing.T) {
	b, err := graph.BipartiteFromEdges(1, 1, [][2]int{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExhaustiveSplit(b, 0); err == nil {
		t.Fatal("degree-1 constraints can never see two colors")
	}
}

func TestExhaustiveBudget(t *testing.T) {
	// A satisfiable instance with an absurdly small budget must fail
	// gracefully rather than hang.
	b, err := graph.RandomBipartiteLeftRegular(30, 40, 4, prob.NewSource(2).Rand())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExhaustiveSplit(b, 1); err == nil {
		t.Fatal("budget 1 cannot finish a 40-variable search")
	}
}

func TestExhaustiveOnFigureOneInstances(t *testing.T) {
	// Rank-2 instances from the Figure 1 construction at δ_G = 6: well
	// below every algorithmic regime, but satisfiable; the guided search
	// must solve them quickly.
	f := func(seed uint64) bool {
		g, err := graph.RandomRegular(60, 6, prob.NewSource(seed).Rand())
		if err != nil {
			return false
		}
		b := graph.FromGraph(g) // δ = 6, rank = 6: weak splitting instance
		res, err := ExhaustiveSplit(b, 1<<20)
		if err != nil {
			return false
		}
		return check.WeakSplit(b, res.Colors, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestWeakSplitMonotoneUnderEdgeAddition is the principle behind Lemma 2.2:
// a weak splitting of a subgraph stays valid after adding edges back.
func TestWeakSplitMonotoneUnderEdgeAddition(t *testing.T) {
	f := func(seed uint64) bool {
		src := prob.NewSource(seed)
		b, err := graph.RandomBipartiteLeftRegular(30, 50, 12, src.Rand())
		if err != nil {
			return false
		}
		// Solve on a truncated subgraph, then check on the full graph.
		h := graph.TruncateLeftDegrees(b, 6)
		res, err := ExhaustiveSplit(h, 1<<20)
		if err != nil {
			return false
		}
		if check.WeakSplit(h, res.Colors, 0) != nil {
			return false
		}
		return check.WeakSplit(b, res.Colors, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
