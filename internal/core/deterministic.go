package core

import (
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// DeterministicOptions tune DeterministicSplit (Theorem 2.5); the zero value
// picks the paper's parameters with the deterministic approximate splitter.
type DeterministicOptions struct {
	// Splitter selects the degree-splitting substrate inside DRR-I
	// (default SplitterApproxDet, the deterministic choice).
	Splitter SplitterKind
	// Source is only needed when Splitter == SplitterApproxRand.
	Source *prob.Source
	// Engine runs the LOCAL phases (default sequential).
	Engine local.Engine
}

func (o *DeterministicOptions) normalize() {
	if o.Splitter == 0 {
		o.Splitter = SplitterApproxDet
	}
	if o.Engine == nil {
		o.Engine = local.SequentialEngine{}
	}
}

// DeterministicSplit is Theorem 1.1 / Theorem 2.5, the paper's main
// deterministic algorithm: if δ ≤ 48·log n it runs Lemma 2.2 directly;
// otherwise it first shrinks the instance with k = ⌊log(δ/(12·log n))⌋
// iterations of Degree-Rank Reduction I at accuracy ε = min(1/k, 1/3) —
// bringing the rank down to O((r/δ)·log n) while keeping δ ≥ 2·log n — and
// then runs Lemma 2.2 on the residual graph. The computed splitting of the
// residual graph is a weak splitting of the original, because the residual
// edge set is a subset.
//
// Round complexity: O((r/δ)·log² n + log³ n·(log log n)^1.1).
//
// Robustness: the approximate splitter guarantees its discrepancy only in
// expectation (DESIGN.md substitution 1), so if the residual instance ever
// misses the δ ≥ 2·log n precondition, the algorithm falls back to
// Lemma 2.2 on the original instance (valid, just slower) and records the
// fallback in the trace.
func DeterministicSplit(b *graph.Bipartite, opts DeterministicOptions) (*Result, error) {
	opts.normalize()
	logn := log2n(b)
	delta := b.MinDegU()
	if float64(delta) < 2*logn {
		return nil, fmt.Errorf("core: Theorem 2.5 requires δ ≥ 2·log n = %.1f, have %d", 2*logn, delta)
	}
	if float64(delta) <= 48*logn {
		res, err := TruncatedDerandomized(b, opts.Engine)
		if err != nil {
			return nil, fmt.Errorf("core: Theorem 2.5 (small-δ branch): %w", err)
		}
		res.Trace.Note("small-δ branch: δ = %d ≤ 48·log n", delta)
		return res, nil
	}

	k := int(math.Floor(prob.Log2(float64(delta) / (12 * logn))))
	eps := math.Min(1.0/float64(k), 1.0/3.0)
	drr, err := DegreeRankReductionI(b, k, eps, opts.Splitter, opts.Source)
	if err != nil {
		return nil, fmt.Errorf("core: Theorem 2.5 DRR-I: %w", err)
	}

	target := drr.B
	var res *Result
	if float64(target.MinDegU()) >= 2*logn {
		res, err = lemma22WithN(target, b.N(), opts.Engine)
		if err == nil {
			res.Trace = mergedTrace(&drr.Trace, &res.Trace)
			res.Trace.Note("DRR-I: k=%d ε=%.3f, rank %d→%d, δ %d→%d",
				k, eps, drr.Ranks[0], drr.Ranks[k], drr.MinDegs[0], drr.MinDegs[k])
		}
	} else {
		err = fmt.Errorf("residual δ = %d < 2·log n", target.MinDegU())
	}
	if err != nil {
		// Fallback: Lemma 2.2 on the original instance.
		res, err = TruncatedDerandomized(b, opts.Engine)
		if err != nil {
			return nil, fmt.Errorf("core: Theorem 2.5 fallback: %w", err)
		}
		res.Trace.Note("fallback to Lemma 2.2 on the original instance")
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		return nil, fmt.Errorf("core: Theorem 2.5 self-check: %w", err)
	}
	return res, nil
}

// lemma22WithN runs Lemma 2.2 on a (sub)instance while truncating degrees
// with respect to an ambient node count n (needed when the instance is a
// residual or component of a larger graph).
func lemma22WithN(b *graph.Bipartite, ambientN int, eng local.Engine) (*Result, error) {
	logn := math.Max(1, prob.Log2(float64(max(ambientN, 2))))
	keep := int(math.Ceil(2 * logn))
	if md := b.MinDegU(); md < keep {
		return nil, fmt.Errorf("core: Lemma 2.2 requires δ ≥ %d, have %d", keep, md)
	}
	h := graph.TruncateLeftDegrees(b, keep)
	res, err := BasicDerandomized(h, eng)
	if err != nil {
		return nil, err
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		return nil, fmt.Errorf("core: Lemma 2.2 self-check: %w", err)
	}
	return res, nil
}

func mergedTrace(first *Trace, second *Trace) Trace {
	var t Trace
	t.Merge("", first)
	t.Merge("", second)
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
