package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/prob"
)

// TestZeroRoundRandomRetryBatchMatchesStandalone pins the batched multi-seed
// splitter to the standalone retry loop: colors, traces (including retry
// notes), and failure errors must be bit-identical per seed. The instance is
// deliberately below the δ ≥ 2·log n threshold so several seeds need
// retries and some exhaust the attempt budget — the interesting paths.
func TestZeroRoundRandomRetryBatchMatchesStandalone(t *testing.T) {
	t.Parallel()
	b, err := graph.RandomBipartiteLeftRegular(12, 30, 3, prob.NewSource(41).Rand())
	if err != nil {
		t.Fatal(err)
	}
	const attempts = 4
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	srcs := make([]*prob.Source, len(seeds))
	for i, s := range seeds {
		srcs[i] = prob.NewSource(s)
	}
	got, gotErrs := ZeroRoundRandomRetryBatch(b, srcs, attempts, 2, nil)
	retried, failed := 0, 0
	for i, s := range seeds {
		want, wantErr := ZeroRoundRandomRetry(b, prob.NewSource(s), attempts)
		if (gotErrs[i] == nil) != (wantErr == nil) {
			t.Fatalf("seed %d: batch err %v, standalone err %v", s, gotErrs[i], wantErr)
		}
		if wantErr != nil {
			failed++
			if gotErrs[i].Error() != wantErr.Error() {
				t.Errorf("seed %d: error text differs:\n batch: %v\n alone: %v", s, gotErrs[i], wantErr)
			}
			continue
		}
		if fmt.Sprintf("%+v", got[i].Trace) != fmt.Sprintf("%+v", want.Trace) {
			t.Errorf("seed %d: traces differ:\n batch: %+v\n alone: %+v", s, got[i].Trace, want.Trace)
		}
		if len(want.Trace.Notes) > 0 {
			retried++
		}
		for v := range want.Colors {
			if got[i].Colors[v] != want.Colors[v] {
				t.Fatalf("seed %d: colors differ at variable %d", s, v)
			}
		}
	}
	// The instance is chosen so the sweep exercises retries; if every seed
	// succeeded first try the test would prove much less than it claims.
	if retried == 0 && failed == 0 {
		t.Error("no seed needed a retry — pick a harder instance")
	}
}

func TestZeroRoundRandomRetryBatchEmpty(t *testing.T) {
	t.Parallel()
	b := graph.NewBipartite(0, 0)
	res, errs := ZeroRoundRandomRetryBatch(b, nil, 4, 0, nil)
	if len(res) != 0 || len(errs) != 0 {
		t.Errorf("empty seed list should yield empty slices")
	}
}
