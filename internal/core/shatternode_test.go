package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

func TestShatterLocalMatchesCentralized(t *testing.T) {
	b, err := graph.RandomBipartiteBiregular(100, 400, 16, prob.NewSource(1).Rand())
	if err != nil {
		t.Fatal(err)
	}
	src := prob.NewSource(2)
	central := Shatter(b, src)
	distributed, stats, err := ShatterLocal(b, local.SequentialEngine{}, src)
	if err != nil {
		t.Fatal(err)
	}
	for v := range central.Colors {
		if central.Colors[v] != distributed.Colors[v] {
			t.Fatalf("colors diverge at variable %d: %d vs %d", v, central.Colors[v], distributed.Colors[v])
		}
	}
	for u := range central.UnsatU {
		if central.UnsatU[u] != distributed.UnsatU[u] {
			t.Fatalf("satisfaction diverges at constraint %d", u)
		}
	}
	if stats.Rounds != 4 {
		t.Errorf("node program took %d rounds, want 4", stats.Rounds)
	}
}

func TestShatterLocalEnginesAgree(t *testing.T) {
	b, err := graph.RandomBipartiteLeftRegular(40, 120, 10, prob.NewSource(3).Rand())
	if err != nil {
		t.Fatal(err)
	}
	src := prob.NewSource(4)
	seq, _, err := ShatterLocal(b, local.SequentialEngine{}, src)
	if err != nil {
		t.Fatal(err)
	}
	gor, _, err := ShatterLocal(b, local.GoroutineEngine{}, src)
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.Colors {
		if seq.Colors[v] != gor.Colors[v] {
			t.Fatal("engines disagree on shattering colors")
		}
	}
}

func TestLocalCheckAcceptsValid(t *testing.T) {
	b, err := graph.RandomBipartiteLeftRegular(50, 70, 15, prob.NewSource(5).Rand())
	if err != nil {
		t.Fatal(err)
	}
	res, err := BasicDerandomized(b, local.SequentialEngine{})
	if err != nil {
		t.Fatal(err)
	}
	votes, allYes, err := LocalCheck(b, res.Colors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !allYes {
		t.Fatal("1-round verifier rejected a valid splitting")
	}
	for u, v := range votes {
		if !v {
			t.Fatalf("constraint %d voted no on a valid splitting", u)
		}
	}
}

func TestLocalCheckRejectsInvalid(t *testing.T) {
	b, err := graph.RandomBipartiteLeftRegular(20, 30, 8, prob.NewSource(6).Rand())
	if err != nil {
		t.Fatal(err)
	}
	// All-red: every constraint must vote no.
	colors := make([]int, b.NV())
	votes, allYes, err := LocalCheck(b, colors, local.GoroutineEngine{})
	if err != nil {
		t.Fatal(err)
	}
	if allYes {
		t.Fatal("verifier accepted an all-red coloring")
	}
	for u, v := range votes {
		if v {
			t.Fatalf("constraint %d accepted a monochromatic neighborhood", u)
		}
	}
	if _, _, err := LocalCheck(b, colors[:3], nil); err == nil {
		t.Error("wrong color-slice length must be rejected")
	}
}

func TestLocalCheckPinpointsViolation(t *testing.T) {
	// A valid splitting with one variable flipped: only constraints whose
	// entire red (or blue) supply came from that variable may flip to "no".
	b, err := graph.RandomBipartiteLeftRegular(40, 60, 12, prob.NewSource(7).Rand())
	if err != nil {
		t.Fatal(err)
	}
	res, err := BasicDerandomized(b, local.SequentialEngine{})
	if err != nil {
		t.Fatal(err)
	}
	colors := append([]int(nil), res.Colors...)
	colors[0] = 1 - colors[0]
	votes, _, err := LocalCheck(b, colors, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every "no" vote must be a constraint adjacent to variable 0.
	adj := make(map[int]bool)
	for _, u := range b.NbrV(0) {
		adj[int(u)] = true
	}
	for u, v := range votes {
		if !v && !adj[u] {
			t.Fatalf("constraint %d rejected but is not adjacent to the flipped variable", u)
		}
	}
}
