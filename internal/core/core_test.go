package core

import (
	"math"
	"testing"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// instance builds a left-regular random bipartite weak splitting instance.
func instance(t *testing.T, nu, nv, d int, seed uint64) *graph.Bipartite {
	t.Helper()
	b, err := graph.RandomBipartiteLeftRegular(nu, nv, d, prob.NewSource(seed).Rand())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestZeroRoundRandom(t *testing.T) {
	// δ = 20 ≥ 2·log2(180) ≈ 15: succeeds w.h.p.
	b := instance(t, 80, 100, 20, 1)
	res, err := ZeroRoundRandomRetry(b, prob.NewSource(2), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
	if res.Trace.Rounds() != 0 {
		t.Errorf("zero-round algorithm charged %d rounds", res.Trace.Rounds())
	}
}

func TestZeroRoundRandomFailsOnTinyDegrees(t *testing.T) {
	// Degree-2 constraints fail with constant probability; over many
	// constraints at least one failure is near-certain, and the verifier
	// must catch it at least sometimes. We only check the error path wiring:
	// with 1 attempt allowed on a hard instance, either outcome is legal,
	// but across 64 seeds at least one must fail.
	b := instance(t, 200, 20, 2, 3)
	failed := false
	for seed := uint64(0); seed < 64 && !failed; seed++ {
		if _, err := ZeroRoundRandom(b, prob.NewSource(seed)); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Error("expected at least one verification failure on degree-2 instance")
	}
}

func TestBasicDerandomized(t *testing.T) {
	b := instance(t, 60, 80, 16, 4) // δ = 16 ≥ 2·log2(140) ≈ 14.3
	res, err := BasicDerandomized(b, local.SequentialEngine{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
	if res.Trace.Rounds() <= 0 {
		t.Error("expected positive round accounting")
	}
}

func TestBasicDerandomizedRejectsLowDegree(t *testing.T) {
	b := instance(t, 50, 50, 3, 5)
	if _, err := BasicDerandomized(b, local.SequentialEngine{}); err == nil {
		t.Fatal("δ = 3 should fail the potential precondition")
	}
}

func TestBasicDerandomizedEmptyInstances(t *testing.T) {
	empty := graph.NewBipartite(0, 0)
	if _, err := BasicDerandomized(empty, local.SequentialEngine{}); err != nil {
		t.Errorf("empty instance should trivially succeed: %v", err)
	}
	impossible := graph.NewBipartite(1, 0)
	if _, err := BasicDerandomized(impossible, local.SequentialEngine{}); err == nil {
		t.Error("constraint with no variables must be rejected")
	}
}

func TestTruncatedDerandomized(t *testing.T) {
	b := instance(t, 60, 90, 40, 6)
	res, err := TruncatedDerandomized(b, local.SequentialEngine{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
	// Degree below 2·log n must be rejected.
	low := instance(t, 60, 90, 5, 7)
	if _, err := TruncatedDerandomized(low, local.SequentialEngine{}); err == nil {
		t.Error("δ = 5 should be rejected")
	}
}

func TestDRRITrajectories(t *testing.T) {
	t.Parallel()
	// Lemma 2.4: δ_k > ((1-ε)/2)^k δ - 2 and r_k < ((1+ε)/2)^k r + 3.
	b, err := graph.RandomBipartiteBiregular(128, 128, 64, prob.NewSource(8).Rand())
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	eps := 1.0 / 3.0
	for _, kind := range []SplitterKind{SplitterApproxDet, SplitterApproxRand, SplitterEulerian} {
		res, err := DegreeRankReductionI(b, k, eps, kind, prob.NewSource(9))
		if err != nil {
			t.Fatal(err)
		}
		delta0, r0 := float64(res.MinDegs[0]), float64(res.Ranks[0])
		for i := 1; i <= k; i++ {
			lower := math.Pow((1-eps)/2, float64(i))*delta0 - 2
			upper := math.Pow((1+eps)/2, float64(i))*r0 + 3
			if float64(res.MinDegs[i]) <= lower {
				t.Errorf("%v iter %d: δ_k = %d ≤ bound %.1f", kind, i, res.MinDegs[i], lower)
			}
			if float64(res.Ranks[i]) >= upper {
				t.Errorf("%v iter %d: r_k = %d ≥ bound %.1f", kind, i, res.Ranks[i], upper)
			}
		}
	}
}

func TestDRRIValidation(t *testing.T) {
	b := instance(t, 10, 10, 4, 10)
	if _, err := DegreeRankReductionI(b, -1, 0.3, SplitterApproxDet, nil); err == nil {
		t.Error("negative iterations should error")
	}
	if _, err := DegreeRankReductionI(b, 1, 0.3, SplitterApproxRand, nil); err == nil {
		t.Error("randomized splitter without source should error")
	}
}

func TestDRRIIRankHalving(t *testing.T) {
	// Lemma 2.6: rank after ⌈log r⌉ iterations is exactly 1, and each
	// iteration satisfies r_{k+1} = ⌈r_k/2⌉ for the max; the min degree
	// shrinks by at most half plus one.
	b, err := graph.RandomBipartiteBiregular(60, 40, 24, prob.NewSource(11).Rand())
	if err != nil {
		t.Fatal(err)
	}
	r0 := b.Rank()
	k := prob.CeilLog2(r0)
	res, err := DegreeRankReductionII(b, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[k] != 1 {
		t.Fatalf("rank after ⌈log r⌉ = %d iterations is %d, want 1", k, res.Ranks[k])
	}
	for i := 1; i <= k; i++ {
		if res.Ranks[i] > (res.Ranks[i-1]+1)/2 {
			t.Errorf("iteration %d: rank %d → %d, exceeds ⌈r/2⌉", i, res.Ranks[i-1], res.Ranks[i])
		}
		// Eulerian splitter: a constraint loses at most ⌈pairs/2⌉+1 edges,
		// so min degree at least halves minus one.
		if res.MinDegs[i] < res.MinDegs[i-1]/2-1 {
			t.Errorf("iteration %d: min degree fell too fast: %d → %d", i, res.MinDegs[i-1], res.MinDegs[i])
		}
	}
	if _, err := DegreeRankReductionII(b, -2); err == nil {
		t.Error("negative iterations should error")
	}
}

func TestSixRSplitSmallDegrees(t *testing.T) {
	// δ = 18, r = 3 satisfies δ ≥ 6r while δ < 2·log n ≈ 21.6; the DRR-II
	// path is exercised.
	b, err := graph.RandomBipartiteBiregular(256, 1536, 18, prob.NewSource(12).Rand())
	if err != nil {
		t.Fatal(err)
	}
	if r := b.Rank(); b.MinDegU() < 6*r {
		t.Fatalf("instance does not satisfy δ ≥ 6r: δ=%d r=%d", b.MinDegU(), r)
	}
	if float64(b.MinDegU()) >= 2*log2n(b) {
		t.Fatalf("instance should have δ < 2·log n to exercise DRR-II (δ=%d, 2logn=%.1f)",
			b.MinDegU(), 2*log2n(b))
	}
	res, err := SixRSplit(b, SixROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSixRSplitLargeDegrees(t *testing.T) {
	t.Parallel()
	// δ = 30 ≥ 2·log2(190) ≈ 15.2 and r small: the Theorem 2.5 branch.
	b, err := graph.RandomBipartiteBiregular(30, 160, 30, prob.NewSource(13).Rand())
	if err != nil {
		t.Fatal(err)
	}
	if b.MinDegU() < 6*b.Rank() {
		t.Skip("instance too irregular for the 6r precondition")
	}
	res, err := SixRSplit(b, SixROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
	// Randomized variant too.
	resR, err := SixRSplit(b, SixROptions{Source: prob.NewSource(14)})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, resR.Colors, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSixRSplitRejectsBadRatio(t *testing.T) {
	b := instance(t, 20, 10, 6, 15) // rank will exceed δ/6
	if b.MinDegU() >= 6*b.Rank() {
		t.Skip("instance accidentally satisfies 6r")
	}
	if _, err := SixRSplit(b, SixROptions{}); err == nil {
		t.Error("δ < 6r must be rejected")
	}
}

func TestShatterBasics(t *testing.T) {
	b := instance(t, 100, 150, 24, 16)
	sh := Shatter(b, prob.NewSource(17))
	if sh.Rounds != 3 {
		t.Errorf("shattering costs O(1) rounds, got %d", sh.Rounds)
	}
	// Every uncolored-marked variable must be Uncolored etc.
	reds, blues, unc := 0, 0, 0
	for _, c := range sh.Colors {
		switch c {
		case Red:
			reds++
		case Blue:
			blues++
		case Uncolored:
			unc++
		default:
			t.Fatalf("invalid trit %d", c)
		}
	}
	if reds == 0 || blues == 0 || unc == 0 {
		t.Errorf("degenerate shattering: %d red %d blue %d uncolored", reds, blues, unc)
	}
	// Unsatisfied flags must agree with a recount.
	for u := 0; u < b.NU(); u++ {
		var red, blue bool
		for _, v := range b.NbrU(u) {
			switch sh.Colors[v] {
			case Red:
				red = true
			case Blue:
				blue = true
			}
		}
		if sh.UnsatU[u] != !(red && blue) {
			t.Fatalf("unsat flag wrong at %d", u)
		}
	}
}

func TestShatterUncoloredFraction(t *testing.T) {
	t.Parallel()
	// After uncoloring, every constraint has ≥ 1/4 of its neighbors
	// uncolored (the δ_H ≥ δ/4 argument of Theorem 1.2).
	b := instance(t, 120, 200, 32, 18)
	sh := Shatter(b, prob.NewSource(19))
	for u := 0; u < b.NU(); u++ {
		unc := 0
		for _, v := range b.NbrU(u) {
			if sh.Colors[v] == Uncolored {
				unc++
			}
		}
		if 4*unc < b.DegU(u) {
			t.Fatalf("constraint %d has only %d/%d uncolored neighbors", u, unc, b.DegU(u))
		}
	}
}

func TestShatterResidual(t *testing.T) {
	b := instance(t, 60, 100, 8, 20)
	sh := Shatter(b, prob.NewSource(21))
	h, origU, origV := sh.Residual(b)
	for i, u := range origU {
		if !sh.UnsatU[u] {
			t.Fatalf("residual U node %d (orig %d) is satisfied", i, u)
		}
	}
	for i, v := range origV {
		if sh.Colors[v] != Uncolored {
			t.Fatalf("residual V node %d (orig %d) is colored", i, v)
		}
	}
	if h.NU() != len(origU) || h.NV() != len(origV) {
		t.Fatal("residual size mismatch")
	}
}

func TestLemma29UnsatisfiedProbability(t *testing.T) {
	t.Parallel()
	// Monte-Carlo estimate of Pr[u unsatisfied] for Δ = 48, r modest: it
	// must be far below a fixed small constant (the paper proves e^{-ηΔ}).
	b, err := graph.RandomBipartiteBiregular(64, 512, 48, prob.NewSource(22).Rand())
	if err != nil {
		t.Fatal(err)
	}
	const trials = 40
	bad := 0
	total := 0
	for trial := 0; trial < trials; trial++ {
		sh := Shatter(b, prob.NewSource(uint64(1000+trial)))
		for _, x := range sh.UnsatU {
			total++
			if x {
				bad++
			}
		}
	}
	frac := float64(bad) / float64(total)
	if frac > 0.01 {
		t.Errorf("unsatisfied fraction %.4f too high for Δ=48", frac)
	}
}

func TestRandomizedSplitLargeDelta(t *testing.T) {
	b := instance(t, 80, 100, 24, 23) // δ = 24 > 2·log2(180)
	res, err := RandomizedSplit(b, prob.NewSource(24), RandomizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedSplitShatteringPath(t *testing.T) {
	t.Parallel()
	// δ = 12 < 2·log2(n) for n = 2560: the shattering path runs.
	b, err := graph.RandomBipartiteBiregular(512, 2048, 12, prob.NewSource(25).Rand())
	if err != nil {
		t.Fatal(err)
	}
	if float64(b.MinDegU()) > 2*log2n(b) {
		t.Fatal("instance does not exercise the shattering path")
	}
	res, err := RandomizedSplit(b, prob.NewSource(26), RandomizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
	// The trace must mention the shattering phase.
	found := false
	for _, p := range res.Trace.Phases {
		if p.Name == "shattering" {
			found = true
		}
	}
	if !found {
		t.Error("trace missing shattering phase")
	}
}

func TestRandomizedSplitRejectsTinyDegrees(t *testing.T) {
	b := instance(t, 5, 5, 1, 27)
	if _, err := RandomizedSplit(b, prob.NewSource(28), RandomizedOptions{}); err == nil {
		t.Error("δ = 1 is unsolvable and must be rejected")
	}
}

func TestDeterministicSplitSmallDeltaBranch(t *testing.T) {
	// 2·log n ≤ δ ≤ 48·log n: the Lemma 2.2 branch.
	b := instance(t, 70, 90, 18, 29)
	res, err := DeterministicSplit(b, DeterministicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicSplitRejectsLowDegree(t *testing.T) {
	b := instance(t, 40, 40, 4, 30)
	if _, err := DeterministicSplit(b, DeterministicOptions{}); err == nil {
		t.Error("δ below 2·log n must be rejected")
	}
}

func TestDeterministicSplitDRRBranch(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	t.Parallel()
	// δ = 512 > 48·log2(1088) ≈ 484: the full DRR-I pipeline runs.
	b, err := graph.RandomBipartiteBiregular(64, 1024, 512, prob.NewSource(31).Rand())
	if err != nil {
		t.Fatal(err)
	}
	res, err := DeterministicSplit(b, DeterministicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WeakSplit(b, res.Colors, 0); err != nil {
		t.Fatal(err)
	}
	// The DRR phase must appear in the trace (no silent fallback).
	sawDRR := false
	for _, p := range res.Trace.Phases {
		if len(p.Name) >= 4 && p.Name[:4] == "drr1" {
			sawDRR = true
		}
	}
	if !sawDRR {
		t.Log("warning: fallback taken instead of DRR path; notes:", res.Trace.Notes)
	}
}

func TestTraceAccounting(t *testing.T) {
	var tr Trace
	tr.Add("a", 3)
	tr.Add("b", 4)
	tr.Note("hello %d", 7)
	if tr.Rounds() != 7 {
		t.Errorf("Rounds = %d, want 7", tr.Rounds())
	}
	var tr2 Trace
	tr2.Merge("x-", &tr)
	if tr2.Phases[1].Name != "x-b" || tr2.Rounds() != 7 {
		t.Error("merge wrong")
	}
	if len(tr2.Notes) != 1 {
		t.Error("notes not merged")
	}
}

func TestSplitterKindString(t *testing.T) {
	if SplitterApproxDet.String() != "approx-det" ||
		SplitterApproxRand.String() != "approx-rand" ||
		SplitterEulerian.String() != "eulerian" {
		t.Error("SplitterKind names wrong")
	}
	if SplitterKind(99).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestDeterministicSplitReproducible(t *testing.T) {
	b := instance(t, 60, 90, 18, 40)
	a, err := DeterministicSplit(b, DeterministicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DeterministicSplit(b, DeterministicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != c.Colors[v] {
			t.Fatal("deterministic algorithm gave different outputs")
		}
	}
}

func TestRandomizedSplitReproducible(t *testing.T) {
	b, err := graph.RandomBipartiteBiregular(256, 1024, 12, prob.NewSource(41).Rand())
	if err != nil {
		t.Fatal(err)
	}
	a, err := RandomizedSplit(b, prob.NewSource(42), RandomizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := RandomizedSplit(b, prob.NewSource(42), RandomizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != c.Colors[v] {
			t.Fatal("same seed must give identical outputs")
		}
	}
}

func TestBasicDerandomizedGoroutineEngine(t *testing.T) {
	b := instance(t, 40, 60, 15, 43)
	seq, err := BasicDerandomized(b, local.SequentialEngine{})
	if err != nil {
		t.Fatal(err)
	}
	gor, err := BasicDerandomized(b, local.GoroutineEngine{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.Colors {
		if seq.Colors[v] != gor.Colors[v] {
			t.Fatal("engines disagree in the Lemma 2.1 pipeline")
		}
	}
}

func TestWeakSplitOnEncodedGraph(t *testing.T) {
	// The Section 1.2 encoding: weak splitting of FromGraph(G) 2-colors the
	// nodes of G so every node sees both colors among its neighbors.
	g, err := graph.RandomRegular(100, 20, prob.NewSource(44).Rand())
	if err != nil {
		t.Fatal(err)
	}
	b := graph.FromGraph(g)
	res, err := TruncatedDerandomized(b, local.SequentialEngine{})
	if err != nil {
		t.Fatal(err)
	}
	// Interpret on the original graph: every node must have both colors in
	// its neighborhood.
	for v := 0; v < g.N(); v++ {
		var red, blue bool
		for _, w := range g.Neighbors(v) {
			if res.Colors[w] == Red {
				red = true
			} else {
				blue = true
			}
		}
		if !red || !blue {
			t.Fatalf("node %d has a monochromatic neighborhood", v)
		}
	}
}
