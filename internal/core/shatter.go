package core

import (
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// ShatterOutcome is the state after the shattering algorithm of Section 2.4.
type ShatterOutcome struct {
	// Colors[v] ∈ {Red, Blue, Uncolored} after the coloring and uncoloring
	// phases.
	Colors []int
	// UnsatU[u] reports whether constraint u is unsatisfied (lacks a red or
	// a blue neighbor among the colored variables).
	UnsatU []bool
	// Rounds is the LOCAL cost: one round of coloring, one of uncoloring,
	// one of checking.
	Rounds int
}

// Shatter runs the shattering algorithm: every variable node colors itself
// red with probability 1/4, blue with probability 1/4, and stays uncolored
// otherwise; every constraint with more than 3/4 of its neighbors colored
// uncolors all of them. By Lemma 2.9, a constraint of degree Δ ≥ c·log r
// remains unsatisfied with probability ≤ e^{-ηΔ} ≤ (eΔr)^{-8}, even under
// adversarial randomness outside its 2-hop neighborhood.
func Shatter(b *graph.Bipartite, src *prob.Source) *ShatterOutcome {
	out := &ShatterOutcome{
		Colors: make([]int, b.NV()),
		UnsatU: make([]bool, b.NU()),
		Rounds: 3,
	}
	// Coloring phase. Randomness is keyed per variable node id, as a LOCAL
	// node program would do.
	for v := 0; v < b.NV(); v++ {
		switch x := src.Node(v).Float64(); {
		case x < 0.25:
			out.Colors[v] = Red
		case x < 0.5:
			out.Colors[v] = Blue
		default:
			out.Colors[v] = Uncolored
		}
	}
	// Uncoloring phase.
	uncolor := make([]bool, b.NV())
	for u := 0; u < b.NU(); u++ {
		d := b.DegU(u)
		if d == 0 {
			continue
		}
		colored := 0
		for _, v := range b.NbrU(u) {
			if out.Colors[v] != Uncolored {
				colored++
			}
		}
		if 4*colored > 3*d {
			for _, v := range b.NbrU(u) {
				uncolor[v] = true
			}
		}
	}
	for v, un := range uncolor {
		if un {
			out.Colors[v] = Uncolored
		}
	}
	// Satisfaction check.
	for u := 0; u < b.NU(); u++ {
		var red, blue bool
		for _, v := range b.NbrU(u) {
			switch out.Colors[v] {
			case Red:
				red = true
			case Blue:
				blue = true
			}
		}
		out.UnsatU[u] = !(red && blue)
	}
	return out
}

// Residual returns the bipartite graph H induced by the unsatisfied
// constraints and the uncolored variables, with index mappings back to b.
func (s *ShatterOutcome) Residual(b *graph.Bipartite) (h *graph.Bipartite, origU, origV []int) {
	var us, vs []int
	for u, bad := range s.UnsatU {
		if bad {
			us = append(us, u)
		}
	}
	for v, c := range s.Colors {
		if c == Uncolored {
			vs = append(vs, v)
		}
	}
	return b.InducedSubgraph(us, vs)
}

// RandomizedOptions tune RandomizedSplit (Theorem 1.2).
type RandomizedOptions struct {
	Engine local.Engine
	// MaxComponentRetries bounds the randomized fallback attempts on
	// components whose parameters miss the deterministic precondition.
	MaxComponentRetries int
}

func (o *RandomizedOptions) normalize() {
	if o.Engine == nil {
		o.Engine = local.SequentialEngine{}
	}
	if o.MaxComponentRetries <= 0 {
		o.MaxComponentRetries = 256
	}
}

// RandomizedSplit is Theorem 1.2: weak splitting in
// O((r/δ)·poly log(r·log n)) randomized rounds when
// δ ≥ c·log(r·log n). The pipeline follows the paper exactly:
//
//  1. if δ > 2·log n the zero-round randomized splitter already succeeds
//     w.h.p.;
//  2. otherwise left degrees are normalized into [δ, 2δ) by virtual
//     splitting (§2.4), which only strengthens the constraints;
//  3. the shattering algorithm colors most variables and satisfies all but
//     a (eΔr)^{-8} fraction of constraints; the residual graph H w.h.p.
//     consists of connected components of size poly(r, log n) with
//     δ_H ≥ δ/4;
//  4. every residual component is solved by the deterministic algorithm
//     (Theorem 2.5 / Lemma 2.2) with n := component size.
//
// Components that miss the deterministic precondition (possible at the
// small scales of a simulation, where "sufficiently large constant c"
// cannot be hidden behind asymptotics) are solved by bounded randomized
// retries; the trace records how often that happened.
func RandomizedSplit(b *graph.Bipartite, src *prob.Source, opts RandomizedOptions) (*Result, error) {
	opts.normalize()
	res := &Result{}
	if b.NV() == 0 {
		if b.NU() > 0 {
			return nil, fmt.Errorf("core: constraints without variables are unsatisfiable")
		}
		return res, nil
	}
	delta := b.MinDegU()
	if delta < 2 {
		return nil, fmt.Errorf("core: Theorem 1.2 needs δ ≥ 2, have %d", delta)
	}
	logn := log2n(b)
	if float64(delta) > 2*logn {
		out, err := ZeroRoundRandomRetry(b, src.Fork(1), 16)
		if err != nil {
			return nil, fmt.Errorf("core: Theorem 1.2 large-δ branch: %w", err)
		}
		out.Trace.Note("δ > 2·log n: zero-round branch")
		return out, nil
	}

	// Degree normalization (§2.4): virtual nodes with degrees in [δ, 2δ).
	vs, err := graph.NormalizeLeftDegrees(b, delta)
	if err != nil {
		return nil, fmt.Errorf("core: Theorem 1.2 normalization: %w", err)
	}
	nb := vs.B
	res.Trace.Add("virtual-split", 0)

	sh := Shatter(nb, src.Fork(2))
	res.Trace.Add("shattering", sh.Rounds)

	colors := append([]int(nil), sh.Colors...)
	h, _, origV := sh.Residual(nb)
	unsat := 0
	for _, bad := range sh.UnsatU {
		if bad {
			unsat++
		}
	}
	res.Trace.Note("shattering: %d/%d constraints unsatisfied, %d/%d variables uncolored",
		unsat, nb.NU(), len(origV), nb.NV())

	if err := solveResidual(h, origV, colors, src.Fork(3), opts, &res.Trace); err != nil {
		return nil, fmt.Errorf("core: Theorem 1.2 residual: %w", err)
	}
	// Any still-uncolored variable is unconstrained; default to red.
	for v := range colors {
		if colors[v] == Uncolored {
			colors[v] = Red
		}
	}
	res.Colors = colors
	if err := check.WeakSplit(b, colors, 0); err != nil {
		return nil, fmt.Errorf("core: Theorem 1.2 self-check: %w", err)
	}
	return res, nil
}

// solveResidual solves weak splitting on every connected component of h and
// writes the colors back through origV. Components run the deterministic
// algorithm when its precondition holds and bounded randomized retries
// otherwise. Component phases run conceptually in parallel, so the trace
// charges the maximum component cost, not the sum.
func solveResidual(h *graph.Bipartite, origV []int, colors []int, src *prob.Source, opts RandomizedOptions, trace *Trace) error {
	if h.NV() == 0 {
		if h.NU() > 0 {
			return fmt.Errorf("unsatisfied constraints with no uncolored variables")
		}
		return nil
	}
	compUs, compVs := h.ConnectedComponents()
	maxRounds := 0
	maxSize := 0
	fallbacks := 0
	for ci := range compUs {
		sub, _, subOrigV := h.InducedSubgraph(compUs[ci], compVs[ci])
		if size := sub.N(); size > maxSize {
			maxSize = size
		}
		compRes, usedFallback, err := solveComponent(sub, src.Fork(uint64(ci)), opts)
		if err != nil {
			return fmt.Errorf("component %d (|U|=%d |V|=%d): %w", ci, sub.NU(), sub.NV(), err)
		}
		if usedFallback {
			fallbacks++
		}
		if r := compRes.Trace.Rounds(); r > maxRounds {
			maxRounds = r
		}
		for sv, c := range compRes.Colors {
			colors[origV[subOrigV[sv]]] = c
		}
	}
	trace.Add("residual-components(max)", maxRounds)
	trace.Note("residual: %d components, max size %d, %d randomized fallbacks",
		len(compUs), maxSize, fallbacks)
	return nil
}

// solveComponent solves one residual component: Lemma 2.2/Theorem 2.5 with
// n := component size when the precondition δ ≥ 2·log n_H holds, randomized
// retries otherwise.
func solveComponent(sub *graph.Bipartite, src *prob.Source, opts RandomizedOptions) (*Result, bool, error) {
	if sub.NU() == 0 {
		// Unconstrained variables; any coloring works.
		cols := make([]int, sub.NV())
		return &Result{Colors: cols}, false, nil
	}
	need := 2 * math.Max(1, prob.Log2(float64(sub.N())))
	if float64(sub.MinDegU()) >= need {
		res, err := lemma22WithN(sub, sub.N(), opts.Engine)
		if err == nil {
			return res, false, nil
		}
		// Fall through to randomized retries.
	}
	for attempt := 0; attempt < opts.MaxComponentRetries; attempt++ {
		res, err := ZeroRoundRandom(sub, src.Fork(uint64(attempt)))
		if err == nil {
			res.Trace.Note("randomized fallback succeeded at attempt %d", attempt)
			return res, true, nil
		}
	}
	// Last resort: the centralized backtracking reference (only sensible on
	// the small components shattering produces).
	if sub.N() <= 4096 {
		if res, err := ExhaustiveSplit(sub, 1<<21); err == nil {
			res.Trace.Note("exhaustive reference fallback used")
			return res, true, nil
		}
	}
	return nil, true, fmt.Errorf("no valid splitting after %d randomized attempts (δ=%d, n=%d)",
		opts.MaxComponentRetries, sub.MinDegU(), sub.N())
}
