package experiments

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// EG runs the weak-splitting algorithms on a real instance loaded from
// Config.GraphFile (splitbench -graph FILE) instead of a generated one. A
// plain-graph input — SNAP edge list or graph snapshot — is converted
// through the Section 1.2 splitting-instance encoding; a bipartite snapshot
// or instance text is used directly. Unlike the generated experiments there
// is no theorem-shaped bound to compare against (real graphs are neither
// regular nor high-girth), so the table reports rounds, the red/blue class
// sizes, and the verifier's verdict per algorithm.
func EG(cfg Config) (*Table, error) {
	if cfg.GraphFile == "" {
		return nil, fmt.Errorf("EG needs an instance file: pass -graph FILE (Config.GraphFile)")
	}
	b, err := graph.ReadBipartiteFile(cfg.GraphFile)
	if err != nil {
		return nil, fmt.Errorf("EG: %w", err)
	}
	t := &Table{
		ID:       "EG",
		Title:    fmt.Sprintf("Weak splitting on %s", cfg.GraphFile),
		PaperRef: "Section 1.2 (graph → splitting instance encoding)",
		Claim:    "the algorithms remain correct off the generated-instance families",
		Header:   []string{"algo", "rounds", "red", "blue", "valid", "elapsed"},
	}
	t.Note("instance: |U|=%d |V|=%d m=%d δ=%d Δ=%d r=%d",
		b.NU(), b.NV(), b.M(), b.MinDegU(), b.MaxDegU(), b.Rank())

	src := prob.NewSource(cfg.seed())
	algos := []struct {
		name  string
		solve func(*graph.Bipartite, *prob.Source, local.Engine) (*core.Result, error)
	}{
		{"det", func(b *graph.Bipartite, _ *prob.Source, eng local.Engine) (*core.Result, error) {
			return core.DeterministicSplit(b, core.DeterministicOptions{Engine: eng})
		}},
		{"rand", func(b *graph.Bipartite, s *prob.Source, eng local.Engine) (*core.Result, error) {
			return core.RandomizedSplit(b, s, core.RandomizedOptions{Engine: eng})
		}},
		{"trivial", func(b *graph.Bipartite, s *prob.Source, eng local.Engine) (*core.Result, error) {
			return core.ZeroRoundRandomRetryOn(b, s, 16, eng)
		}},
	}
	for i, a := range algos {
		start := time.Now()
		res, err := a.solve(b, src.Fork(uint64(i)+1), cfg.engine())
		elapsed := time.Since(start).Round(time.Millisecond)
		if err != nil {
			// Real graphs can fall outside an algorithm's precondition (e.g.
			// the retry budget of "trivial" on skewed degree profiles); that
			// is a per-algorithm observation, not a failed experiment.
			t.AddRow(a.name, "-", "-", "-", "ERROR", elapsed.String())
			t.Note("%s: %v", a.name, err)
			continue
		}
		valid := check.WeakSplit(b, res.Colors, 0) == nil
		red := 0
		for _, c := range res.Colors {
			if c == core.Red {
				red++
			}
		}
		t.AddRow(a.name, itoa(res.Trace.Rounds()), itoa(red), itoa(len(res.Colors)-red),
			btoa(valid), elapsed.String())
	}
	return t, nil
}
