package experiments

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// This file is the parallel experiment harness: a bounded worker pool that
// fans independent work items (whole experiments, or (graph, algorithm,
// seed) trial cells) across goroutines while keeping result order — and
// therefore every rendered table — deterministic. Each experiment draws its
// randomness from its own seed-derived Source, so concurrency cannot change
// any result, only wall-clock time.

// forEachIndexed runs fn(i) for every i in [0, n) on at most `workers`
// goroutines and returns the results in index order. workers <= 0 means
// GOMAXPROCS.
func forEachIndexed[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// RunResult is the outcome of one experiment inside a parallel run.
type RunResult struct {
	ID      string
	Table   *Table
	Err     error
	Elapsed time.Duration
}

// RunParallel executes the named experiments concurrently on at most
// `workers` goroutines and returns the results in the order of ids. Unknown
// ids produce an error entry rather than a panic. When cfg.Control fires,
// experiments not yet started return its cancellation error immediately and
// running ones observe it inside their LOCAL phases (via cfg.engine()).
func RunParallel(ids []string, cfg Config, workers int) []RunResult {
	registry := All()
	return forEachIndexed(workers, len(ids), func(i int) RunResult {
		id := ids[i]
		runner, ok := registry[id]
		if !ok {
			return RunResult{ID: id, Err: fmt.Errorf("unknown experiment %q", id)}
		}
		if cerr := cfg.Control.Err(); cerr != nil {
			return RunResult{ID: id, Err: cerr}
		}
		start := time.Now()
		table, err := runner(cfg)
		return RunResult{ID: id, Table: table, Err: err, Elapsed: time.Since(start)}
	})
}

// GraphSpec names one instance generator of a trial grid. Build receives a
// Source derived from the trial seed, so the same (spec, seed) pair always
// yields the same instance.
type GraphSpec struct {
	Name  string
	Build func(src *prob.Source) (*graph.Bipartite, error)
	// Fixed declares Build seed-independent: every seed yields the same
	// instance (file-loaded and deterministic generators). Only Fixed specs
	// are eligible for the batched path, which builds the instance once and
	// hands it to the trials of all seeds concurrently — solvers must treat
	// it as read-only.
	Fixed bool
}

// AlgoSpec names one weak-splitting algorithm of a trial grid. Solve
// receives the instance, a trial-seed-derived Source, and the engine that
// should run any LOCAL simulation phases.
type AlgoSpec struct {
	Name  string
	Solve func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error)
	// SolveBatch, when non-nil, solves all seeds of one shared instance in a
	// single batched pass (one result and one error slot per source, in
	// order). It must be bit-identical per seed to Solve with the same
	// Source; the batched path uses it only on Fixed graphs. workers sizes
	// any internal worker pool (<= 0 means GOMAXPROCS). ctl, when non-nil,
	// must make the batched pass cancellable (typically by forwarding it to
	// local.BatchOptions.Control); seeds it retires report its error.
	SolveBatch func(b *graph.Bipartite, srcs []*prob.Source, workers int, ctl *local.RunControl) ([]*core.Result, []error)
}

// TrialResult is one cell of a trial grid.
type TrialResult struct {
	Graph   string        `json:"graph"`
	Algo    string        `json:"algo"`
	Seed    uint64        `json:"seed"`
	Rounds  int           `json:"rounds"`
	Red     int           `json:"red"`
	Blue    int           `json:"blue"`
	Valid   bool          `json:"valid"`
	Err     string        `json:"err,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// Retried counts the extra attempts this cell consumed under
	// Grid.Retries; 0 means the first attempt's outcome stands.
	Retried int `json:"retried,omitempty"`
}

// Grid is a (graph, algorithm, seed) product of weak-splitting trials.
type Grid struct {
	Graphs []GraphSpec
	Algos  []AlgoSpec
	Seeds  []uint64
	// Engine runs the LOCAL phases of every trial (nil = sequential).
	Engine local.Engine
	// Workers bounds the trial concurrency (<= 0 = GOMAXPROCS).
	Workers int
	// Batch routes the Fixed graphs of the grid through the batched trial
	// path: each Fixed instance is built and normalized once and shared
	// read-only by all of its (algorithm, seed) cells, and algorithms that
	// provide SolveBatch run all seeds of an instance in one batched pass.
	// Cell results are bit-identical to the unbatched path; only wall-clock
	// time (and the per-trial Elapsed attribution, which becomes the batched
	// call's even share) changes. Non-Fixed graphs fall back to per-cell
	// rebuilds even when Batch is set.
	Batch bool
	// Control cancels the grid as a whole: cells not yet started return its
	// error without running, running cells observe it at their next LOCAL
	// round boundary, and a fired grid control is never retried. nil runs
	// uncontrolled; a control that never fires perturbs no result.
	Control *local.RunControl
	// TrialTimeout bounds each cell attempt's wall-clock time (0 = none).
	// An attempt over budget fails with local.ErrDeadline — a transient
	// failure, so Retries applies.
	TrialTimeout time.Duration
	// Retries re-runs a cell whose failure is transient — a deadline expiry
	// or a node-program panic — up to this many extra attempts (0 = fail
	// fast). Deterministic failures (build errors, solver rejections,
	// invalid splittings) are never retried, and neither is a fired grid
	// Control.
	Retries int
	// RetryBackoff, when positive, sleeps RetryBackoff<<k before retry k —
	// bounded exponential backoff for load-induced deadline expiries.
	RetryBackoff time.Duration
}

// Run executes every (graph, algorithm, seed) cell of the grid across the
// worker pool. Results are returned graph-major, then algorithm, then seed —
// the same deterministic order regardless of Workers and Batch.
//
// Without Batch, each cell rebuilds its instance from (spec, seed) rather
// than sharing one build across the algorithms of a seed: trials stay fully
// independent, so the pool never hands two concurrent solvers the same
// *Bipartite even if a solver mutates its input. The rebuild cost is
// deliberate; Batch trades that isolation for amortization on graphs that
// declare themselves Fixed.
func (g Grid) Run() []TrialResult {
	eng := g.Engine
	if eng == nil {
		eng = local.SequentialEngine{}
	}
	n := len(g.Graphs) * len(g.Algos) * len(g.Seeds)
	cell := func(i int) (GraphSpec, AlgoSpec, uint64) {
		gi := i / (len(g.Algos) * len(g.Seeds))
		ai := i / len(g.Seeds) % len(g.Algos)
		si := i % len(g.Seeds)
		return g.Graphs[gi], g.Algos[ai], g.Seeds[si]
	}
	if !g.Batch {
		return forEachIndexed(g.Workers, n, func(i int) TrialResult {
			gs, as, seed := cell(i)
			return g.runCell(gs, as, seed, eng)
		})
	}
	if n == 0 {
		// No cells: match the unbatched path exactly and in particular do not
		// build (or Normalize) any Fixed instance — an empty Seeds slice used
		// to trigger eager builds seeded with a silently-substituted seed 0.
		return nil
	}

	// Batched path. Build every Fixed instance once up front (Normalize
	// eagerly: lazily-merged CSR state must not be raced by the concurrent
	// readers below), then run the SolveBatch groups, then fan the remaining
	// cells over the worker pool against the shared instances.
	results := make([]TrialResult, n)
	type builtGraph struct {
		b   *graph.Bipartite
		err error
	}
	built := make([]*builtGraph, len(g.Graphs))
	for gi, gs := range g.Graphs {
		if !gs.Fixed {
			continue
		}
		bg := &builtGraph{}
		bg.b, bg.err = gs.Build(prob.NewSource(g.Seeds[0]))
		if bg.err == nil {
			bg.b.Normalize()
		}
		built[gi] = bg
	}
	var rest []int // flat cell indices not covered by a SolveBatch group
	for gi, gs := range g.Graphs {
		for ai, as := range g.Algos {
			base := (gi*len(g.Algos) + ai) * len(g.Seeds)
			if built[gi] == nil || as.SolveBatch == nil {
				for si := range g.Seeds {
					rest = append(rest, base+si)
				}
				continue
			}
			runBatchGroup(gs, as, g.Seeds, built[gi].b, built[gi].err, g.Workers, g.Control, results[base:base+len(g.Seeds)])
		}
	}
	forEachIndexed(g.Workers, len(rest), func(j int) struct{} {
		i := rest[j]
		gs, as, seed := cell(i)
		if bg := built[i/(len(g.Algos)*len(g.Seeds))]; bg != nil && bg.err != nil {
			results[i], _ = runTrialOn(gs, as, seed, eng, nil, bg.err)
		} else {
			// Rebuild per trial even though a shared Fixed instance exists:
			// Solve has no read-only contract (only SolveBatch does), so
			// handing the shared *Bipartite to concurrent Solve calls would
			// break the isolation the unbatched path documents. Fixed builds
			// are seed-independent, so the rebuilt instance is identical.
			results[i] = g.runCell(gs, as, seed, eng)
		}
		return struct{}{}
	})
	return results
}

// runBatchGroup executes all seeds of one (Fixed graph, SolveBatch
// algorithm) pair in a single batched call and fills the group's result
// slots. Elapsed is attributed as the batched call's even per-trial share.
func runBatchGroup(gs GraphSpec, as AlgoSpec, seeds []uint64, b *graph.Bipartite, buildErr error, workers int, ctl *local.RunControl, out []TrialResult) {
	if len(seeds) == 0 {
		return
	}
	for si, seed := range seeds {
		out[si] = TrialResult{Graph: gs.Name, Algo: as.Name, Seed: seed}
	}
	if buildErr != nil {
		for si := range out {
			out[si].Err = fmt.Sprintf("build: %v", buildErr)
		}
		return
	}
	start := time.Now()
	srcs := make([]*prob.Source, len(seeds))
	for si, seed := range seeds {
		srcs[si] = prob.NewSource(seed).Fork(1)
	}
	results, errs := as.SolveBatch(b, srcs, workers, ctl)
	share := time.Since(start) / time.Duration(len(seeds))
	for si := range seeds {
		out[si].Elapsed = share
		if errs[si] != nil {
			out[si].Err = fmt.Sprintf("solve: %v", errs[si])
			continue
		}
		fillTrialResult(&out[si], b, results[si])
	}
}

// runCell runs one (graph, algorithm, seed) cell under the grid's control,
// per-attempt timeout, and retry policy. A fired grid control ends the cell
// immediately — before the first attempt or instead of a retry — with the
// cancellation error; transient failures (deadline expiry, node-program
// panic) are re-attempted up to Retries times with bounded backoff.
func (g Grid) runCell(gs GraphSpec, as AlgoSpec, seed uint64, eng local.Engine) TrialResult {
	for attempt := 0; ; attempt++ {
		if cerr := g.Control.Err(); cerr != nil {
			return TrialResult{Graph: gs.Name, Algo: as.Name, Seed: seed, Err: cerr.Error()}
		}
		attEng, release := g.attemptEngine(eng)
		tr, err := runTrial(gs, as, seed, attEng)
		release()
		tr.Retried = attempt
		if err == nil || attempt >= g.Retries || !transientTrialErr(err) || g.Control.Err() != nil {
			return tr
		}
		if g.RetryBackoff > 0 {
			time.Sleep(g.RetryBackoff << attempt)
		}
	}
}

// transientTrialErr reports whether a cell failure is worth retrying: a
// deadline expiry (load-induced, the next attempt gets a fresh budget) or a
// node-program panic. Deterministic failures — build errors, solver
// rejections, invalid splittings — would only fail the same way again.
func transientTrialErr(err error) bool {
	var pe *local.PanicError
	return errors.Is(err, local.ErrDeadline) || errors.As(err, &pe)
}

// attemptEngine wraps the grid engine with one attempt's control context —
// the grid control plus a fresh TrialTimeout — and returns a release func
// for the timeout's timer. With neither knob set the engine is returned
// untouched, keeping uncontrolled grids on the unwrapped hot path.
func (g Grid) attemptEngine(eng local.Engine) (local.Engine, func()) {
	var base context.Context
	if g.Control != nil {
		base = g.Control.Ctx
	}
	if g.TrialTimeout > 0 {
		if base == nil {
			base = context.Background()
		}
		ctx, cancel := context.WithTimeout(base, g.TrialTimeout)
		return local.ForceControl(eng, ctx), cancel
	}
	if base == nil {
		return eng, func() {}
	}
	return local.ForceControl(eng, base), func() {}
}

func runTrial(gs GraphSpec, as AlgoSpec, seed uint64, eng local.Engine) (TrialResult, error) {
	start := time.Now()
	b, err := gs.Build(prob.NewSource(seed))
	tr, serr := runTrialOn(gs, as, seed, eng, b, err)
	// The per-cell rebuild is part of this cell's cost (it is precisely what
	// the batched path amortizes), so charge it as before.
	tr.Elapsed = time.Since(start)
	return tr, serr
}

// runTrialOn solves one cell against an already-built instance (possibly
// shared with other cells under Grid.Batch — Sources are stateless, so the
// solver's seed-derived Fork is identical either way). The raw error is
// returned alongside the rendered TrialResult so the retry policy can
// classify the failure.
func runTrialOn(gs GraphSpec, as AlgoSpec, seed uint64, eng local.Engine, b *graph.Bipartite, buildErr error) (tr TrialResult, rawErr error) {
	tr = TrialResult{Graph: gs.Name, Algo: as.Name, Seed: seed}
	start := time.Now()
	defer func() { tr.Elapsed = time.Since(start) }()
	if buildErr != nil {
		tr.Err = fmt.Sprintf("build: %v", buildErr)
		return tr, buildErr
	}
	res, err := as.Solve(b, prob.NewSource(seed).Fork(1), eng)
	if err != nil {
		tr.Err = fmt.Sprintf("solve: %v", err)
		return tr, err
	}
	fillTrialResult(&tr, b, res)
	return tr, nil
}

// fillTrialResult derives the reported cell metrics from a solver result.
func fillTrialResult(tr *TrialResult, b *graph.Bipartite, res *core.Result) {
	tr.Rounds = res.Trace.Rounds()
	for _, c := range res.Colors {
		if c == core.Red {
			tr.Red++
		} else {
			tr.Blue++
		}
	}
	tr.Valid = check.WeakSplit(b, res.Colors, 0) == nil
}

// TrialsCSV renders trial results as CSV with a header row.
func TrialsCSV(trials []TrialResult) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"graph", "algo", "seed", "rounds", "red", "blue", "valid", "err", "elapsed", "retried"})
	for _, tr := range trials {
		_ = w.Write([]string{
			tr.Graph, tr.Algo, fmt.Sprintf("%d", tr.Seed), itoa(tr.Rounds),
			itoa(tr.Red), itoa(tr.Blue), fmt.Sprintf("%t", tr.Valid), tr.Err,
			tr.Elapsed.String(), itoa(tr.Retried),
		})
	}
	w.Flush()
	return sb.String()
}

// TrialsJSON renders trial results as an indented JSON array.
func TrialsJSON(trials []TrialResult) ([]byte, error) {
	return json.MarshalIndent(trials, "", "  ")
}

// CSV renders the table as CSV: the header row followed by the data rows.
// Metadata (title, claim, notes) is deliberately dropped — CSV is the
// machine-readable surface.
func (t *Table) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write(t.Header)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return sb.String()
}

// JSON renders the table, including its metadata, as indented JSON.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		ID       string     `json:"id"`
		Title    string     `json:"title"`
		PaperRef string     `json:"paper_ref"`
		Claim    string     `json:"claim"`
		Header   []string   `json:"header"`
		Rows     [][]string `json:"rows"`
		Notes    []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.PaperRef, t.Claim, t.Header, t.Rows, t.Notes}, "", "  ")
}
