package experiments

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/mis"
	"repro/internal/multicolor"
	"repro/internal/orient"
	"repro/internal/prob"
	"repro/internal/reduction"
)

// E8 validates Theorem 3.2: C-weak multicolor splitting (membership and the
// reduction back to weak splitting).
func E8(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E8",
		Title:    "C-weak multicolor splitting and its completeness reduction",
		PaperRef: "Definition 1.3, Theorem 3.2",
		Claim:    "0-round random coloring succeeds w.h.p.; a cover yields weak splitting in O(C) extra rounds",
		Header:   []string{"n", "deg", "C", "rand-ok/trials", "derand-rounds", "reduce-rounds", "valid"},
	}
	src := prob.NewSource(cfg.seed() + 8)
	shapes := []struct{ nu, nv, deg int }{{30, 600, 140}, {40, 900, 170}}
	if cfg.Quick {
		shapes = shapes[:1]
	}
	for i, sh := range shapes {
		b, err := graph.RandomBipartiteLeftRegular(sh.nu, sh.nv, sh.deg, src.Fork(uint64(i)).Rand())
		if err != nil {
			return nil, fmt.Errorf("E8: %w", err)
		}
		p := multicolor.DefaultCoverParams(b)
		if sh.deg < p.MinDeg {
			return nil, fmt.Errorf("E8: instance too weak (deg %d < %d)", sh.deg, p.MinDeg)
		}
		trials := 20
		ok := 0
		for trial := 0; trial < trials; trial++ {
			if _, err := multicolor.CoverRandomized(b, p, src.Fork(uint64(1000+trial))); err == nil {
				ok++
			}
		}
		cover, err := multicolor.CoverDerandomized(b, p, cfg.engine())
		if err != nil {
			return nil, fmt.Errorf("E8 derand: %w", err)
		}
		weak, err := multicolor.WeakSplitViaCover(b, p, cover)
		if err != nil {
			return nil, fmt.Errorf("E8 reduction: %w", err)
		}
		valid := check.WeakSplit(b, weak.Colors, p.MinDeg) == nil
		reduceRounds := weak.Trace.Rounds() - cover.Trace.Rounds()
		t.AddRow(itoa(b.N()), itoa(sh.deg), itoa(p.Palette),
			fmt.Sprintf("%d/%d", ok, trials), itoa(cover.Trace.Rounds()), itoa(reduceRounds), btoa(valid))
	}
	t.Note("reduce-rounds is the O(C)-round compile of the SLOCAL(2) splitter using the cover colors")
	return t, nil
}

// E9 validates Theorem 3.3: (C,λ)-multicolor splitting and the iterated
// reduction to weak multicolor splitting.
func E9(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E9",
		Title:    "(C,λ)-multicolor splitting and the iterated reduction",
		PaperRef: "Definition 1.2, Theorem 3.3",
		Claim:    "per-color load ≤ ⌈λ·deg⌉; ⌈log_{1/λ}(2 log n)⌉ refinement rounds yield ≥ 2·log n distinct colors with palette C^i",
		Header:   []string{"C", "λ", "deg", "rand-ok/trials", "iters", "palette", "min-distinct", "need", "valid"},
	}
	src := prob.NewSource(cfg.seed() + 9)
	params := []multicolor.CLambdaParams{
		{Palette: 6, Lambda: 0.5, MinDeg: 1024},
		{Palette: 4, Lambda: 0.5, MinDeg: 1024},
	}
	if cfg.Quick {
		params = params[:1]
	}
	for i, p := range params {
		b, err := graph.RandomBipartiteLeftRegular(16, 1400, 1280, src.Fork(uint64(i)).Rand())
		if err != nil {
			return nil, fmt.Errorf("E9: %w", err)
		}
		trials := 10
		ok := 0
		for trial := 0; trial < trials; trial++ {
			if _, err := multicolor.CLambdaRandomized(b, p, src.Fork(uint64(2000+trial))); err == nil {
				ok++
			}
		}
		solver := func(hi *graph.Bipartite, hp multicolor.CLambdaParams) (*multicolor.Result, error) {
			return multicolor.CLambdaDerandomized(hi, hp, cfg.engine())
		}
		res, iters, err := multicolor.CoverViaCLambda(b, p, solver)
		if err != nil {
			return nil, fmt.Errorf("E9 reduction: %w", err)
		}
		need := multicolor.DefaultCoverParams(b).NeedColors
		minDistinct := minDistinctColors(b, res.Colors, p.MinDeg)
		valid := check.MulticolorCover(b, res.Colors, res.Palette, p.MinDeg, need) == nil
		t.AddRow(itoa(p.Palette), ftoa(p.Lambda), itoa(p.MinDeg),
			fmt.Sprintf("%d/%d", ok, trials), itoa(iters), itoa(res.Palette),
			itoa(minDistinct), itoa(need), btoa(valid))
	}
	return t, nil
}

func minDistinctColors(b *graph.Bipartite, colors []int, minDeg int) int {
	minD := -1
	for u := 0; u < b.NU(); u++ {
		if b.DegU(u) < minDeg {
			continue
		}
		seen := make(map[int]struct{})
		for _, v := range b.NbrU(u) {
			seen[colors[v]] = struct{}{}
		}
		if minD < 0 || len(seen) < minD {
			minD = len(seen)
		}
	}
	return minD
}

// E10 validates Lemma 4.1: (1+o(1))Δ-coloring via repeated uniform
// splitting — the color-count shape against Δ.
func E10(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E10",
		Title:    "(1+o(1))Δ coloring via splitting",
		PaperRef: "Section 4.1, Lemma 4.1",
		Claim:    "colors ≤ (1+2ε)^levels·Δ + low-order terms; paper's ε = 1/log²n makes this (1+o(1))Δ",
		Header:   []string{"n", "Δ", "ε", "levels", "parts", "colors", "ratio"},
	}
	src := prob.NewSource(cfg.seed() + 10)
	type wl struct {
		n   int
		p   float64
		eps float64
	}
	workloads := []wl{{1024, 0.5, 0.25}, {1024, 0.5, 0.3}, {2048, 0.4, 0.25}}
	if cfg.Quick {
		workloads = workloads[:1]
	}
	for i, w := range workloads {
		g := graph.RandomGraph(w.n, w.p, src.Fork(uint64(i)).Rand())
		res, err := reduction.ColoringViaSplitting(g, cfg.engine(),
			reduction.UniformSplitOptions{Eps: w.eps, Source: src.Fork(uint64(100 + i))})
		if err != nil {
			return nil, fmt.Errorf("E10: %w", err)
		}
		if err := check.ProperColoring(g, res.Colors, res.Num); err != nil {
			return nil, fmt.Errorf("E10 verify: %w", err)
		}
		levels := 0
		for p := res.Parts; p > 1; p /= 2 {
			levels++
		}
		ratio := float64(res.Num) / float64(g.MaxDeg())
		t.AddRow(itoa(w.n), itoa(g.MaxDeg()), ftoa(w.eps), itoa(levels),
			itoa(res.Parts), itoa(res.Num), ftoa(ratio))
	}
	t.Note("ratio tracks (1+2ε)^levels; smaller ε (the paper's 1/log²n) drives it to 1+o(1)")
	return t, nil
}

// E11 validates Lemmas 4.2–4.4: MIS via heavy-node elimination.
func E11(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E11",
		Title:    "MIS via heavy-node elimination",
		PaperRef: "Section 4.2, Lemmas 4.2–4.4",
		Claim:    "repeated splitting + low-degree MIS yields a valid MIS; |I| ≥ n/(Δ+1) (Lemma 4.3)",
		Header:   []string{"n", "Δ", "algorithm", "|MIS|", "n/(Δ+1)", "rounds", "valid"},
	}
	src := prob.NewSource(cfg.seed() + 11)
	n, d := 400, 64
	if cfg.Quick {
		n, d = 200, 32
	}
	g, err := graph.RandomRegular(n, d, src.Rand())
	if err != nil {
		return nil, fmt.Errorf("E11: %w", err)
	}
	floorBound := n / (d + 1)
	heavy, err := mis.ViaHeavyElimination(g, src.Fork(1), mis.HeavyEliminationOptions{})
	if err != nil {
		return nil, fmt.Errorf("E11 heavy: %w", err)
	}
	luby, err := mis.Luby(g, src.Fork(2))
	if err != nil {
		return nil, fmt.Errorf("E11 luby: %w", err)
	}
	greedy, err := mis.GreedyByColor(g, cfg.engine(), local.Options{})
	if err != nil {
		return nil, fmt.Errorf("E11 greedy: %w", err)
	}
	for _, row := range []struct {
		name string
		res  *mis.Result
	}{{"heavy-elimination (Lem 4.2)", heavy}, {"Luby", luby}, {"color+greedy", greedy}} {
		size := 0
		for _, in := range row.res.InSet {
			if in {
				size++
			}
		}
		valid := check.MIS(g, row.res.InSet) == nil
		t.AddRow(itoa(n), itoa(d), row.name, itoa(size), itoa(floorBound),
			itoa(row.res.Trace.Rounds()), btoa(valid))
	}
	return t, nil
}

// E12 validates Lemma 5.1 and Theorems 5.2/5.3 on girth ≥ 10 instances.
func E12(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E12",
		Title:    "High-girth weak splitting",
		PaperRef: "Section 5, Lemma 5.1, Theorems 5.2/5.3",
		Claim:    "after shattering, δ_H ≥ 6·r_H w.h.p.; deterministic variant via derandomized shattering over a B⁴ coloring",
		Header:   []string{"instance", "δ", "r", "L5.1-ok/trials", "det-rounds", "rand-rounds", "valid"},
	}
	src := prob.NewSource(cfg.seed() + 12)
	degrees := []int{64, 81}
	if cfg.Quick {
		degrees = degrees[:1]
	}
	for _, d := range degrees {
		b, err := graph.SubdividedStar(d)
		if err != nil {
			return nil, fmt.Errorf("E12: %w", err)
		}
		trials := 12
		holds := 0
		for trial := 0; trial < trials; trial++ {
			sh := core.Shatter(b, src.Fork(uint64(d*100+trial)))
			if _, _, ok := core.Lemma51Holds(b, sh); ok {
				holds++
			}
		}
		detRounds := -1
		det, err := core.HighGirthDeterministic(b, cfg.engine())
		if err == nil {
			detRounds = det.Trace.Rounds()
		}
		rand, err := core.HighGirthRandomized(b, src.Fork(uint64(d)), 8)
		if err != nil {
			return nil, fmt.Errorf("E12 randomized (d=%d): %w", d, err)
		}
		valid := check.WeakSplit(b, rand.Colors, 0) == nil
		if det != nil {
			valid = valid && check.WeakSplit(b, det.Colors, 0) == nil
		}
		detCell := "precondition"
		if detRounds >= 0 {
			detCell = itoa(detRounds)
		}
		t.AddRow(fmt.Sprintf("star(d=%d)", d), itoa(b.MinDegU()), itoa(b.Rank()),
			fmt.Sprintf("%d/%d", holds, trials), detCell, itoa(rand.Trace.Rounds()), btoa(valid))
	}
	return t, nil
}

// E13 validates the degree-splitting substrate standing in for Theorem 2.3
// ([GHK+17b]): discrepancy vs ε·d+2 and the round accounting.
func E13(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E13",
		Title:    "Directed degree splitting substrate",
		PaperRef: "Definition 2.1, Theorem 2.3 (substituted, DESIGN.md §2)",
		Claim:    "approx splitters: discrepancy ≤ ε·d+2 (mean; expectation for the randomized one); Eulerian: ≤ 1",
		Header:   []string{"splitter", "ε", "d", "mean-disc", "max-disc", "ε·d+2", "rounds"},
	}
	src := prob.NewSource(cfg.seed() + 13)
	n, d := 128, 32
	if cfg.Quick {
		n, d = 64, 16
	}
	g, err := graph.RandomRegular(n, d, src.Rand())
	if err != nil {
		return nil, fmt.Errorf("E13: %w", err)
	}
	m, _ := graph.MultigraphFromGraph(g)
	epss := []float64{0.5, 0.25, 0.125}
	if cfg.Quick {
		epss = epss[:2]
	}
	record := func(name string, eps float64, res *orient.Result) {
		var sum, worst int
		for v := 0; v < m.N(); v++ {
			dv := m.Discrepancy(res.O, v)
			sum += dv
			if dv > worst {
				worst = dv
			}
		}
		mean := float64(sum) / float64(m.N())
		bound := "n/a"
		if eps > 0 {
			bound = ftoa(eps*float64(d) + 2)
		}
		t.AddRow(name, ftoa(eps), itoa(d), ftoa(mean), itoa(worst), bound, itoa(res.Rounds))
	}
	for _, eps := range epss {
		record("approx-det", eps, orient.ApproxSplitDet(m, eps))
		record("approx-rand", eps, orient.ApproxSplit(m, eps, src.Fork(uint64(eps*1000))))
	}
	record("eulerian", 0, orient.EulerianSplit(m))
	record("random-orientation", 0, orient.RandomOrientation(m, src.Fork(99).Rand()))
	t.Note("random-orientation is the 0-round baseline: Θ(√d) discrepancy, no per-node guarantee")
	return t, nil
}

// E14 is the ablation: engine throughput and splitter choice inside
// Theorem 2.5.
func E14(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E14",
		Title:    "Ablations: engine and splitter choices",
		PaperRef: "DESIGN.md §3 (E14)",
		Claim:    "all three engines agree bit-for-bit; splitter choice changes rounds, not validity",
		Header:   []string{"ablation", "variant", "result", "wall-time/rounds"},
	}
	src := prob.NewSource(cfg.seed() + 14)
	n := 300
	if cfg.Quick {
		n = 150
	}
	g := graph.RandomGraph(n, 0.08, src.Rand())
	ids := local.PermutationIDs(n, src.Fork(1))
	// Engine ablation on the coloring program.
	engines := []struct {
		name string
		e    local.Engine
	}{
		{"sequential", local.SequentialEngine{}},
		{"goroutine", local.GoroutineEngine{}},
		{"pool", local.WorkerPoolEngine{}},
	}
	if cfg.Batch {
		engines = append(engines, struct {
			name string
			e    local.Engine
		}{"batch", local.BatchEngine{}})
	}
	var colorsByEngine [][]int
	for _, eng := range engines {
		start := time.Now()
		res, err := coloringRun(g, eng.e, ids)
		if err != nil {
			return nil, fmt.Errorf("E14 engine %s: %w", eng.name, err)
		}
		colorsByEngine = append(colorsByEngine, res)
		t.AddRow("engine", eng.name, "proper coloring", time.Since(start).Round(time.Microsecond).String())
	}
	agree := true
	for _, colors := range colorsByEngine[1:] {
		if len(colors) != len(colorsByEngine[0]) {
			agree = false
			break
		}
		for i := range colors {
			if colors[i] != colorsByEngine[0][i] {
				agree = false
				break
			}
		}
	}
	t.AddRow("engine", "agreement", btoa(agree), "-")
	// Splitter ablation inside Theorem 2.5.
	nv := 1024
	logn := prob.CeilLog2(nv + nv/16)
	deg := 46 * logn // forces the DRR branch: δ > 48·log n fails narrowly → use 52
	deg = 52 * logn
	if deg > nv {
		deg = nv
	}
	b, err := graph.RandomBipartiteBiregular(nv/16, nv, deg, src.Fork(2).Rand())
	if err != nil {
		return nil, fmt.Errorf("E14: %w", err)
	}
	for _, kind := range []core.SplitterKind{core.SplitterApproxDet, core.SplitterApproxRand, core.SplitterEulerian} {
		res, err := core.DeterministicSplit(b, core.DeterministicOptions{Splitter: kind, Source: src.Fork(uint64(kind)), Engine: cfg.engine()})
		if err != nil {
			return nil, fmt.Errorf("E14 splitter %v: %w", kind, err)
		}
		valid := check.WeakSplit(b, res.Colors, 0) == nil
		t.AddRow("splitter", kind.String(), btoa(valid), itoa(res.Trace.Rounds()))
	}
	// Batched-trial ablation: the same multi-seed zero-round sweep run once
	// per seed and once through the batched trial runner; every seed's
	// splitting must agree bit-for-bit, and the wall-time pair shows the
	// amortization a sweep buys on this (small) instance.
	if cfg.Batch {
		sweep := 8
		srcs := make([]*prob.Source, sweep)
		for i := range srcs {
			srcs[i] = src.Fork(uint64(100 + i))
		}
		start := time.Now()
		perSeed := make([]*core.Result, sweep)
		for i, s := range srcs {
			res, err := core.ZeroRoundRandomRetry(b, s, 16)
			if err != nil {
				return nil, fmt.Errorf("E14 batch sweep seed %d: %w", i, err)
			}
			perSeed[i] = res
		}
		perSeedElapsed := time.Since(start)
		start = time.Now()
		batched, errs := core.ZeroRoundRandomRetryBatch(b, srcs, 16, 0, cfg.Control)
		batchedElapsed := time.Since(start)
		batchAgree := true
		for i := range srcs {
			if errs[i] != nil {
				return nil, fmt.Errorf("E14 batched sweep seed %d: %w", i, errs[i])
			}
			for v := range perSeed[i].Colors {
				if batched[i].Colors[v] != perSeed[i].Colors[v] {
					batchAgree = false
				}
			}
		}
		t.AddRow("batch-sweep", fmt.Sprintf("per-seed×%d", sweep), "valid splittings", perSeedElapsed.Round(time.Microsecond).String())
		t.AddRow("batch-sweep", fmt.Sprintf("batched×%d", sweep), "valid splittings", batchedElapsed.Round(time.Microsecond).String())
		t.AddRow("batch-sweep", "agreement", btoa(batchAgree), "-")
	}
	return t, nil
}

func coloringRun(g *graph.Graph, eng local.Engine, ids []int) ([]int, error) {
	res, err := coloringDeltaPlusOne(g, eng, ids)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func coloringDeltaPlusOne(g *graph.Graph, eng local.Engine, ids []int) ([]int, error) {
	res, err := coloring.DeltaPlusOne(g, eng, local.Options{IDs: ids})
	if err != nil {
		return nil, err
	}
	return res.Colors, nil
}

// E15 validates the edge-splitting narrative of Section 1.1 ([GS17]): edge
// splitting via chain alternation and the resulting 2Δ(1+o(1))-edge
// coloring, against the greedy 2Δ−1 and Vizing Δ+1 landmarks.
func E15(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E15",
		Title:    "Edge splitting and edge coloring via splitting",
		PaperRef: "Section 1.1 ([GS17] pipeline the paper builds on)",
		Claim:    "repeated edge splitting yields < 2Δ edge colors (Vizing floor is Δ+1; sequential greedy needs up to 2Δ-1)",
		Header:   []string{"n", "Δ", "mean-split-disc", "classes", "colors", "colors/Δ", "2Δ-1", "Δ+1"},
	}
	src := prob.NewSource(cfg.seed() + 15)
	degs := []int{16, 32, 64}
	if cfg.Quick {
		degs = degs[:2]
	}
	for _, d := range degs {
		n := 128
		g, err := graph.RandomRegular(n, d, src.Fork(uint64(d)).Rand())
		if err != nil {
			return nil, fmt.Errorf("E15: %w", err)
		}
		m, _ := graph.MultigraphFromGraph(g)
		split := orient.EdgeSplit(m, 0, src.Fork(uint64(d)+1))
		var sum int
		for v := 0; v < m.N(); v++ {
			sum += orient.ColorDiscrepancy(m, split.Colors, v)
		}
		meanDisc := float64(sum) / float64(m.N())
		res, err := reduction.EdgeColoringViaSplitting(g, 0, src.Fork(uint64(d)+2))
		if err != nil {
			return nil, fmt.Errorf("E15 coloring: %w", err)
		}
		t.AddRow(itoa(n), itoa(d), ftoa(meanDisc), itoa(res.Parts), itoa(res.Num),
			ftoa(float64(res.Num)/float64(d)), itoa(2*d-1), itoa(d+1))
	}
	t.Note("the paper's vertex splitting program seeks the same '≈ d/2 per class' guarantee for vertices")
	return t, nil
}
