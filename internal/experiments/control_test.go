package experiments

// Grid-level run-control coverage: grid cancellation skips and stops cells,
// TrialTimeout bounds an attempt with local.ErrDeadline, and the retry
// policy re-runs transient failures only.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

func tinyGraphSpec() GraphSpec {
	return GraphSpec{Name: "tiny", Build: func(src *prob.Source) (*graph.Bipartite, error) {
		return graph.SubdividedStar(8)
	}, Fixed: true}
}

func trivialResult() *core.Result {
	return &core.Result{Colors: []int{0}}
}

// TestGridCancelled pins grid-level cancellation: with a fired Control no
// cell's solver runs and every cell reports the cancellation error.
func TestGridCancelled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var solves atomic.Int64
	g := Grid{
		Graphs: []GraphSpec{tinyGraphSpec()},
		Algos: []AlgoSpec{{Name: "count", Solve: func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
			solves.Add(1)
			return trivialResult(), nil
		}}},
		Seeds:   []uint64{1, 2, 3},
		Control: &local.RunControl{Ctx: ctx},
	}
	for _, tr := range g.Run() {
		if !strings.Contains(tr.Err, local.ErrCancelled.Error()) {
			t.Fatalf("cell err = %q, want cancellation", tr.Err)
		}
	}
	if solves.Load() != 0 {
		t.Fatalf("%d solves ran under a fired control", solves.Load())
	}
}

// TestGridTrialTimeout pins the per-attempt deadline: a solver whose LOCAL
// phase never converges is stopped by TrialTimeout with local.ErrDeadline,
// and the expiry counts as transient so Retries applies.
func TestGridTrialTimeout(t *testing.T) {
	t.Parallel()
	var attempts atomic.Int64
	spin := AlgoSpec{Name: "spin", Solve: func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
		attempts.Add(1)
		topo := local.NewTopology(b.AsGraph())
		// Never done: only the attempt deadline can end this run.
		_, err := eng.Run(topo, func(v local.View) local.Node {
			return local.WordProgram(local.WordFunc(func(int, []local.Word, []local.Word) bool { return false }))
		}, local.Options{Source: src, MaxRounds: 1 << 30})
		if err != nil {
			return nil, fmt.Errorf("spin: %w", err)
		}
		return trivialResult(), nil
	}}
	g := Grid{
		Graphs:       []GraphSpec{tinyGraphSpec()},
		Algos:        []AlgoSpec{spin},
		Seeds:        []uint64{1},
		TrialTimeout: 20e6, // 20ms
		Retries:      2,
	}
	res := g.Run()
	if len(res) != 1 {
		t.Fatalf("got %d cells", len(res))
	}
	if !strings.Contains(res[0].Err, local.ErrDeadline.Error()) {
		t.Fatalf("cell err = %q, want deadline expiry", res[0].Err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("solver ran %d times, want 1 attempt + 2 retries", got)
	}
	if res[0].Retried != 2 {
		t.Fatalf("Retried = %d, want 2", res[0].Retried)
	}
}

// TestGridRetryTransient pins the retry classification: a panic is
// transient (the cell succeeds on a later attempt), a plain solver error is
// not (one attempt, no retries).
func TestGridRetryTransient(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	flaky := AlgoSpec{Name: "flaky", Solve: func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
		topo := local.NewTopology(b.AsGraph())
		boom := calls.Add(1) <= 2
		_, err := eng.Run(topo, func(v local.View) local.Node {
			return local.WordProgram(local.WordFunc(func(int, []local.Word, []local.Word) bool {
				if boom {
					panic("flaky bomb")
				}
				return true
			}))
		}, local.Options{Source: src, MaxRounds: 8})
		if err != nil {
			return nil, fmt.Errorf("flaky: %w", err)
		}
		return &core.Result{Colors: make([]int, b.NV())}, nil
	}}
	g := Grid{
		Graphs:  []GraphSpec{tinyGraphSpec()},
		Algos:   []AlgoSpec{flaky},
		Seeds:   []uint64{1},
		Retries: 3,
	}
	res := g.Run()
	if res[0].Err != "" {
		t.Fatalf("cell err = %q, want recovery after transient panics", res[0].Err)
	}
	if res[0].Retried != 2 {
		t.Fatalf("Retried = %d, want 2", res[0].Retried)
	}

	var hard atomic.Int64
	g.Algos = []AlgoSpec{{Name: "hard", Solve: func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
		hard.Add(1)
		return nil, errors.New("deterministic failure")
	}}}
	res = g.Run()
	if res[0].Err == "" || hard.Load() != 1 {
		t.Fatalf("deterministic failure was retried: err=%q solves=%d", res[0].Err, hard.Load())
	}
	if res[0].Retried != 0 {
		t.Fatalf("Retried = %d, want 0", res[0].Retried)
	}
}

// TestConfigControl pins Config-level plumbing: a fired Control makes
// RunParallel skip experiments and cfg.engine() wraps cancellation into
// every LOCAL phase.
func TestConfigControl(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Quick: true, Control: &local.RunControl{Ctx: ctx}}
	for _, r := range RunParallel([]string{"E1", "E2"}, cfg, 2) {
		if !errors.Is(r.Err, local.ErrCancelled) {
			t.Fatalf("%s: err = %v, want ErrCancelled", r.ID, r.Err)
		}
	}
	// The wrapped engine refuses to run rounds once the control fired.
	b, berr := graph.SubdividedStar(4)
	if berr != nil {
		t.Fatal(berr)
	}
	topo := local.NewTopology(b.AsGraph())
	_, err := cfg.engine().Run(topo, func(v local.View) local.Node {
		return local.WordProgram(local.WordFunc(func(int, []local.Word, []local.Word) bool { return true }))
	}, local.Options{Source: prob.NewSource(1), MaxRounds: 4})
	if !errors.Is(err, local.ErrCancelled) {
		t.Fatalf("cfg.engine() err = %v, want ErrCancelled", err)
	}
}
