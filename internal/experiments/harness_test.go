package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

func TestForEachIndexedOrderAndCoverage(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{0, 1, 3, 64} {
		got := forEachIndexed(workers, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result %d out of order: %d", workers, i, v)
			}
		}
	}
	if got := forEachIndexed[int](4, 0, func(int) int { return 1 }); got != nil {
		t.Errorf("n=0 should yield nil, got %v", got)
	}
}

func testGrid(workers int, eng local.Engine) Grid {
	return Grid{
		Graphs: []GraphSpec{
			{Name: "leftregular", Build: func(src *prob.Source) (*graph.Bipartite, error) {
				return graph.RandomBipartiteLeftRegular(24, 96, 16, src.Rand())
			}},
			{Name: "biregular", Build: func(src *prob.Source) (*graph.Bipartite, error) {
				return graph.RandomBipartiteBiregular(16, 64, 20, src.Rand())
			}},
		},
		Algos: []AlgoSpec{
			{Name: "det", Solve: func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
				return core.DeterministicSplit(b, core.DeterministicOptions{Engine: eng})
			}},
			{Name: "trivial", Solve: func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
				return core.ZeroRoundRandomRetry(b, src, 16)
			}},
		},
		Seeds:   []uint64{1, 2, 3},
		Engine:  eng,
		Workers: workers,
	}
}

// TestGridDeterministicAcrossWorkersAndEngines is the harness-level
// determinism check: the full result set must be identical whatever the
// worker count and whatever the engine.
func TestGridDeterministicAcrossWorkersAndEngines(t *testing.T) {
	t.Parallel()
	ref := testGrid(1, local.SequentialEngine{}).Run()
	if len(ref) != 12 {
		t.Fatalf("got %d trials, want 12", len(ref))
	}
	for i, tr := range ref {
		if tr.Err != "" {
			t.Fatalf("trial %d failed: %s", i, tr.Err)
		}
		if !tr.Valid {
			t.Fatalf("trial %d produced an invalid splitting: %+v", i, tr)
		}
	}
	// Order is graph-major, then algorithm, then seed.
	if ref[0].Graph != "leftregular" || ref[0].Algo != "det" || ref[0].Seed != 1 {
		t.Errorf("first trial out of order: %+v", ref[0])
	}
	if ref[11].Graph != "biregular" || ref[11].Algo != "trivial" || ref[11].Seed != 3 {
		t.Errorf("last trial out of order: %+v", ref[11])
	}
	for _, alt := range []Grid{
		testGrid(0, local.SequentialEngine{}),
		testGrid(5, local.SequentialEngine{}),
		testGrid(3, local.WorkerPoolEngine{}),
	} {
		got := alt.Run()
		if len(got) != len(ref) {
			t.Fatalf("trial count changed: %d vs %d", len(got), len(ref))
		}
		for i := range got {
			g, r := got[i], ref[i]
			g.Elapsed, r.Elapsed = 0, 0
			if g != r {
				t.Fatalf("workers=%d engine=%T: trial %d differs:\n got %+v\nwant %+v",
					alt.Workers, alt.Engine, i, g, r)
			}
		}
	}
}

// batchableGrid mixes a Fixed graph carrying a SolveBatch algorithm (the
// batched multi-seed path), the same algorithm without SolveBatch (shared
// instance, per-cell solve), and a seed-dependent graph (per-cell rebuild
// fallback) — every routing the batched Grid supports.
func batchableGrid(workers int, batch bool) Grid {
	trivial := func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
		return core.ZeroRoundRandomRetry(b, src, 16)
	}
	return Grid{
		Graphs: []GraphSpec{
			{Name: "star", Fixed: true, Build: func(src *prob.Source) (*graph.Bipartite, error) {
				return graph.SubdividedStar(24)
			}},
			{Name: "leftregular", Build: func(src *prob.Source) (*graph.Bipartite, error) {
				return graph.RandomBipartiteLeftRegular(24, 96, 16, src.Rand())
			}},
		},
		Algos: []AlgoSpec{
			{Name: "trivial-batched", Solve: trivial,
				SolveBatch: func(b *graph.Bipartite, srcs []*prob.Source, workers int, ctl *local.RunControl) ([]*core.Result, []error) {
					return core.ZeroRoundRandomRetryBatch(b, srcs, 16, workers, ctl)
				}},
			{Name: "trivial", Solve: trivial},
		},
		Seeds:   []uint64{1, 2, 3, 4, 5},
		Workers: workers,
		Batch:   batch,
	}
}

// TestGridBatchMatchesUnbatched is the harness-level bit-identity check for
// the batched trial path: every cell of the batched run must equal its
// unbatched twin (Elapsed aside), across worker counts.
func TestGridBatchMatchesUnbatched(t *testing.T) {
	t.Parallel()
	ref := batchableGrid(1, false).Run()
	if len(ref) != 20 {
		t.Fatalf("got %d trials, want 20", len(ref))
	}
	for i, tr := range ref {
		if tr.Err != "" && tr.Graph != "star" {
			t.Fatalf("trial %d failed: %s", i, tr.Err)
		}
	}
	for _, workers := range []int{0, 1, 3} {
		got := batchableGrid(workers, true).Run()
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: trial count changed: %d vs %d", workers, len(got), len(ref))
		}
		for i := range got {
			g, r := got[i], ref[i]
			g.Elapsed, r.Elapsed = 0, 0
			if g != r {
				t.Fatalf("workers=%d: batched trial %d differs:\n got %+v\nwant %+v", workers, i, g, r)
			}
		}
	}
}

// TestE14BatchAblation runs the engine ablation with Config.Batch: the
// batch engine row and the batched-sweep agreement row must appear, and
// agreement must hold.
func TestE14BatchAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("E14's splitter ablation dominates; the batch path is covered by TestGridBatchMatchesUnbatched in short mode")
	}
	t.Parallel()
	tab, err := E14(Config{Quick: true, Seed: 2, Batch: true})
	if err != nil {
		t.Fatal(err)
	}
	var batchEngineRow, agreeRow bool
	for _, row := range tab.Rows {
		if row[0] == "engine" && row[1] == "batch" {
			batchEngineRow = true
		}
		if row[0] == "batch-sweep" && row[1] == "agreement" {
			agreeRow = true
			if row[2] != "yes" {
				t.Errorf("batched sweep disagreed with per-seed runs: %v", row)
			}
		}
		if row[0] == "engine" && row[1] == "agreement" && row[2] != "yes" {
			t.Errorf("engine ablation disagreed with batch engine included: %v", row)
		}
	}
	if !batchEngineRow || !agreeRow {
		t.Errorf("batch ablation rows missing (engine=%t, sweep=%t):\n%s", batchEngineRow, agreeRow, tab.Format())
	}
	if experiments := BatchCapable("E14"); !experiments {
		t.Error("E14 must register as batch-capable")
	}
}

// TestGridBatchIsolatesMutatingSolvers is the regression test for the
// shared-instance aliasing bug: under Batch, cells of a Fixed graph whose
// algorithm lacks SolveBatch used to receive the single shared *Bipartite
// concurrently, so a solver that mutates its input raced with its siblings.
// The solver below mutates and reports the edge counts it observed; with
// per-trial rebuilds every cell sees the pristine instance (and under -race
// the old sharing is a detected write-write race).
func TestGridBatchIsolatesMutatingSolvers(t *testing.T) {
	t.Parallel()
	pristine, err := graph.SubdividedStar(24)
	if err != nil {
		t.Fatal(err)
	}
	// An edge absent from the pristine instance, so adding it is observable
	// through M() (Normalize dedups parallel edges).
	uAdd, vAdd := 0, -1
	onRow := make(map[int32]bool)
	for _, v := range pristine.NbrU(uAdd) {
		onRow[v] = true
	}
	for v := 0; v < pristine.NV(); v++ {
		if !onRow[int32(v)] {
			vAdd = v
			break
		}
	}
	if vAdd < 0 {
		t.Fatal("no absent edge found on row 0")
	}
	grid := Grid{
		Graphs: []GraphSpec{
			{Name: "star", Fixed: true, Build: func(src *prob.Source) (*graph.Bipartite, error) {
				return graph.SubdividedStar(24)
			}},
		},
		Algos: []AlgoSpec{
			{Name: "mutator", Solve: func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
				m0 := b.M()
				if err := b.AddEdge(uAdd, vAdd); err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("m %d->%d", m0, b.M())
			}},
		},
		Seeds:   []uint64{1, 2, 3, 4, 5, 6, 7, 8},
		Workers: 4,
		Batch:   true,
	}
	want := fmt.Sprintf("solve: m %d->%d", pristine.M(), pristine.M()+1)
	for i, tr := range grid.Run() {
		if tr.Err != want {
			t.Errorf("cell %d observed %q, want %q — solvers are sharing an instance", i, tr.Err, want)
		}
	}
}

// TestGridEmptySeeds pins that a grid with no cells does no work on either
// path: no results, and — the regression — no eager build/Normalize of Fixed
// graphs under Batch.
func TestGridEmptySeeds(t *testing.T) {
	t.Parallel()
	for _, batch := range []bool{false, true} {
		var builds atomic.Int64
		grid := Grid{
			Graphs: []GraphSpec{
				{Name: "counted", Fixed: true, Build: func(src *prob.Source) (*graph.Bipartite, error) {
					builds.Add(1)
					return graph.SubdividedStar(8)
				}},
			},
			Algos: []AlgoSpec{
				{Name: "trivial", Solve: func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
					return core.ZeroRoundRandomRetry(b, src, 16)
				}},
			},
			Seeds: nil,
			Batch: batch,
		}
		if got := grid.Run(); len(got) != 0 {
			t.Errorf("batch=%t: empty-seed grid returned %d results", batch, len(got))
		}
		if n := builds.Load(); n != 0 {
			t.Errorf("batch=%t: empty-seed grid built %d instances, want 0", batch, n)
		}
	}
}

func TestRunParallelOrderAndErrors(t *testing.T) {
	t.Parallel()
	ids := []string{"E5", "nope", "E13"}
	results := RunParallel(ids, Config{Quick: true, Seed: 3}, 2)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, id := range ids {
		if results[i].ID != id {
			t.Errorf("result %d is %s, want %s (order must match input)", i, results[i].ID, id)
		}
	}
	if results[0].Err != nil || results[0].Table == nil {
		t.Errorf("E5 should succeed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("unknown id should produce an error entry")
	}
	if results[2].Err != nil || results[2].Table == nil {
		t.Errorf("E13 should succeed: %v", results[2].Err)
	}
}

// TestRunParallelMatchesSerial asserts that concurrency does not change any
// experiment table: same seeds, same rows.
func TestRunParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	ids := []string{"E4", "E5", "E13"}
	cfg := Config{Quick: true, Seed: 11}
	serial := RunParallel(ids, cfg, 1)
	concurrent := RunParallel(ids, cfg, 3)
	for i := range ids {
		a, b := serial[i].Table, concurrent[i].Table
		if serial[i].Err != nil || concurrent[i].Err != nil {
			t.Fatalf("%s failed: %v / %v", ids[i], serial[i].Err, concurrent[i].Err)
		}
		if a.Format() != b.Format() {
			t.Errorf("%s table changed under concurrency:\n%s\nvs\n%s", ids[i], a.Format(), b.Format())
		}
	}
}

func TestTableCSVAndJSON(t *testing.T) {
	t.Parallel()
	tab := &Table{
		ID: "EX", Title: "title", PaperRef: "ref", Claim: "claim",
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "va,lue")
	tab.Note("note")
	csvOut := tab.CSV()
	if !strings.HasPrefix(csvOut, "a,b\n") || !strings.Contains(csvOut, `"va,lue"`) {
		t.Errorf("CSV malformed:\n%s", csvOut)
	}
	jsonOut, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(jsonOut, &decoded); err != nil {
		t.Fatalf("JSON invalid: %v", err)
	}
	if decoded.ID != "EX" || len(decoded.Rows) != 1 || decoded.Rows[0][1] != "va,lue" {
		t.Errorf("JSON round-trip wrong: %+v", decoded)
	}
}

func TestTrialsCSVAndJSON(t *testing.T) {
	t.Parallel()
	trials := []TrialResult{
		{Graph: "g", Algo: "a", Seed: 9, Rounds: 3, Red: 1, Blue: 2, Valid: true},
		{Graph: "g", Algo: "b", Seed: 9, Err: "solve: boom"},
	}
	csvOut := TrialsCSV(trials)
	lines := strings.Split(strings.TrimSpace(csvOut), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "graph,algo,seed") {
		t.Errorf("CSV malformed:\n%s", csvOut)
	}
	jsonOut, err := TrialsJSON(trials)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []TrialResult
	if err := json.Unmarshal(jsonOut, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[0].Rounds != 3 || decoded[1].Err != "solve: boom" {
		t.Errorf("JSON round-trip wrong: %+v", decoded)
	}
}
