package experiments

// This file is the instance-generator and algorithm registry shared by the
// CLIs (wsplit's -gen/-algo flags) and the sweep service (wsplitd's
// SweepSpec): both surfaces resolve the same names to the same builders and
// solvers, so a new generator or algorithm is added in exactly one place.

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// generators is the instance-generator registry behind BuildInstance,
// KnownGenerator and GeneratorNames.
var generators = map[string]func(nu, nv, d int, src *prob.Source) (*graph.Bipartite, error){
	"leftregular": func(nu, nv, d int, src *prob.Source) (*graph.Bipartite, error) {
		return graph.RandomBipartiteLeftRegular(nu, nv, d, src.Rand())
	},
	"biregular": func(nu, nv, d int, src *prob.Source) (*graph.Bipartite, error) {
		return graph.RandomBipartiteBiregular(nu, nv, d, src.Rand())
	},
	"powerlaw": func(nu, nv, d int, src *prob.Source) (*graph.Bipartite, error) {
		// Heavy-tailed left degrees (exponent 2.5, max degree d): the skewed
		// workload shape that exercises arc-balanced sharding.
		return graph.RandomBipartitePowerLaw(nu, nv, 2.5, d, src.Rand())
	},
	"tree": func(nu, nv, d int, src *prob.Source) (*graph.Bipartite, error) {
		return graph.HighGirthTree(d, 3)
	},
	"star": func(nu, nv, d int, src *prob.Source) (*graph.Bipartite, error) {
		return graph.SubdividedStar(d)
	},
	"girth10": func(nu, nv, d int, src *prob.Source) (*graph.Bipartite, error) {
		b, err := graph.RandomBipartiteLeftRegular(nu, nv, d, src.Rand())
		if err != nil {
			return nil, err
		}
		fixed, _ := graph.EnsureGirthAtLeast(b, 10)
		return fixed, nil
	},
}

// BuildInstance builds a weak-splitting instance: from a file when `file`
// is non-empty (CSR snapshot, SNAP edge list, or instance text,
// auto-detected), otherwise from the named generator. Unlike the CLI's old
// private builder it never writes to stdout — girth repair happens
// silently — so the service can call it per job.
func BuildInstance(gen, file string, nu, nv, d int, src *prob.Source) (*graph.Bipartite, error) {
	if file != "" {
		return graph.ReadBipartiteFile(file)
	}
	g, ok := generators[gen]
	if !ok {
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
	return g(nu, nv, d, src)
}

// KnownGenerator reports whether name is a registered instance generator.
func KnownGenerator(name string) bool {
	_, ok := generators[name]
	return ok
}

// GeneratorNames returns the registered generator names, sorted.
func GeneratorNames() []string {
	names := make([]string, 0, len(generators))
	for name := range generators {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FixedInstance reports whether the chosen instance source is
// seed-independent — every seed of a sweep yields the same graph — which is
// what makes a sweep eligible for the batched trial path and lets the
// service's topology cache share one build across jobs.
func FixedInstance(gen, file string) bool {
	return file != "" || gen == "tree" || gen == "star"
}

// solvers is the single algorithm registry: CLI flags, sweep validation,
// service specs and dispatch all read from it.
var solvers = map[string]func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error){
	"det": func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
		return core.DeterministicSplit(b, core.DeterministicOptions{Engine: eng})
	},
	"rand": func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
		return core.RandomizedSplit(b, src, core.RandomizedOptions{Engine: eng})
	},
	"sixr": func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
		return core.SixRSplit(b, core.SixROptions{Engine: eng})
	},
	"trivial": func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
		return core.ZeroRoundRandomRetryOn(b, src, 16, eng)
	},
	"ref": func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
		return core.ExhaustiveSplit(b, 0)
	},
	"hg-det": func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
		return core.HighGirthDeterministic(b, eng)
	},
	"hg-rand": func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
		return core.HighGirthRandomized(b, src, 8)
	},
}

// batchSolvers provides the batched multi-seed counterparts of solvers for
// the algorithms that support one; the batched sweep path consults it via
// AlgoSpec.SolveBatch (algorithms without an entry fall back to per-seed
// solves against the shared instance).
var batchSolvers = map[string]func(b *graph.Bipartite, srcs []*prob.Source, workers int, ctl *local.RunControl) ([]*core.Result, []error){
	"trivial": func(b *graph.Bipartite, srcs []*prob.Source, workers int, ctl *local.RunControl) ([]*core.Result, []error) {
		return core.ZeroRoundRandomRetryBatch(b, srcs, 16, workers, ctl)
	},
}

// KnownAlgo reports whether name is a registered algorithm.
func KnownAlgo(name string) bool {
	_, ok := solvers[name]
	return ok
}

// AlgoNames returns the registered algorithm names, sorted.
func AlgoNames() []string {
	names := make([]string, 0, len(solvers))
	for name := range solvers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Solve dispatches one solve to the named algorithm.
func Solve(algo string, b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
	s, ok := solvers[algo]
	if !ok {
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
	return s(b, src, eng)
}

// AlgoSpecFor resolves a registered algorithm name to a grid AlgoSpec,
// batched solver included when one exists. ok is false for unknown names.
func AlgoSpecFor(name string) (spec AlgoSpec, ok bool) {
	if !KnownAlgo(name) {
		return AlgoSpec{}, false
	}
	return AlgoSpec{
		Name: name,
		Solve: func(b *graph.Bipartite, src *prob.Source, eng local.Engine) (*core.Result, error) {
			return Solve(name, b, src, eng)
		},
		SolveBatch: batchSolvers[name],
	}, true
}
