package experiments

import (
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
	"repro/internal/reduction"
)

// E1 validates Theorem 1.1 / 2.5: deterministic weak splitting on nearly
// regular bipartite graphs in O((r/δ)·log²n + log³n·(loglog n)^1.1) rounds.
// It sweeps n at fixed r/δ and sweeps r/δ at fixed n, reporting simulated
// rounds against the bound's value.
func E1(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E1",
		Title:    "Deterministic weak splitting on nearly regular graphs",
		PaperRef: "Theorem 1.1 / Theorem 2.5",
		Claim:    "rounds = O((r/δ)·log²n + log³n·(loglog n)^1.1) when δ ≥ 2·log n",
		Header:   []string{"n", "δ", "r", "r/δ", "rounds", "bound", "rounds/bound", "valid"},
	}
	sizes := []int{256, 512, 1024}
	if cfg.Quick {
		sizes = []int{256, 512}
	}
	type shape struct{ nuFrac, degLogs int } // nu = nv/nuFrac, δ = degLogs·⌈log n⌉
	shapes := []shape{{1, 4}, {2, 4}, {4, 4}}
	if cfg.Quick {
		shapes = shapes[:2]
	}
	src := prob.NewSource(cfg.seed())
	for _, nv := range sizes {
		for _, sh := range shapes {
			nu := nv / sh.nuFrac
			logn := prob.CeilLog2(nu + nv)
			deg := sh.degLogs * logn
			if deg > nv {
				continue
			}
			b, err := graph.RandomBipartiteBiregular(nu, nv, deg, src.Fork(uint64(nv*10+sh.nuFrac)).Rand())
			if err != nil {
				return nil, fmt.Errorf("E1: %w", err)
			}
			res, err := core.DeterministicSplit(b, core.DeterministicOptions{Engine: cfg.engine()})
			if err != nil {
				return nil, fmt.Errorf("E1 (n=%d): %w", b.N(), err)
			}
			valid := check.WeakSplit(b, res.Colors, 0) == nil
			delta, r := b.MinDegU(), b.Rank()
			ln := prob.Log2(float64(b.N()))
			bound := float64(r)/float64(delta)*ln*ln + ln*ln*ln*math.Pow(math.Log2(ln+2), 1.1)
			rounds := res.Trace.Rounds()
			t.AddRow(itoa(b.N()), itoa(delta), itoa(r), ftoa(float64(r)/float64(delta)),
				itoa(rounds), ftoa(bound), ftoa(float64(rounds)/bound), btoa(valid))
		}
	}
	t.Note("rounds/bound should stay bounded by a constant across the sweep (shape check)")
	return t, nil
}

// E2 validates Theorem 1.2: randomized weak splitting via shattering. It
// reports residual component sizes against the poly(r, log n) prediction
// and the simulated rounds.
func E2(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E2",
		Title:    "Randomized weak splitting via shattering",
		PaperRef: "Theorem 1.2, Theorem 2.8, Lemma 2.9",
		Claim:    "components of the residual graph have size poly(r, log n); total rounds O((r/δ)·polyloglog)",
		Header:   []string{"n", "δ", "r", "unsat-U", "uncol-V", "max-comp", "r⁴log⁶n", "rounds", "valid"},
	}
	sizes := []int{1024, 4096}
	if cfg.Quick {
		sizes = []int{1024}
	}
	src := prob.NewSource(cfg.seed() + 2)
	for _, nv := range sizes {
		nu := nv / 4
		deg := 12
		b, err := graph.RandomBipartiteBiregular(nu, nv, deg, src.Fork(uint64(nv)).Rand())
		if err != nil {
			return nil, fmt.Errorf("E2: %w", err)
		}
		// Instrument the pipeline pieces directly for the component stats.
		sh := core.Shatter(b, src.Fork(uint64(nv)+1))
		h, _, origV := sh.Residual(b)
		unsat := 0
		for _, bad := range sh.UnsatU {
			if bad {
				unsat++
			}
		}
		maxComp := 0
		compUs, compVs := h.ConnectedComponents()
		for i := range compUs {
			if s := len(compUs[i]) + len(compVs[i]); s > maxComp {
				maxComp = s
			}
		}
		res, err := core.RandomizedSplit(b, src.Fork(uint64(nv)+2), core.RandomizedOptions{Engine: cfg.engine()})
		if err != nil {
			return nil, fmt.Errorf("E2 (n=%d): %w", b.N(), err)
		}
		valid := check.WeakSplit(b, res.Colors, 0) == nil
		ln := prob.Log2(float64(b.N()))
		pred := math.Pow(float64(b.Rank()), 4) * math.Pow(ln, 6)
		t.AddRow(itoa(b.N()), itoa(b.MinDegU()), itoa(b.Rank()), itoa(unsat), itoa(len(origV)),
			itoa(maxComp), ftoa(pred), itoa(res.Trace.Rounds()), btoa(valid))
	}
	t.Note("max-comp ≪ r⁴log⁶n confirms the shattering bound with room to spare")
	return t, nil
}

// E3 validates Theorem 2.7: weak splitting when δ ≥ 6r, deterministic.
func E3(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E3",
		Title:    "Weak splitting when δ ≥ 6r",
		PaperRef: "Theorem 2.7, Lemma 2.6",
		Claim:    "⌈log r⌉ DRR-II iterations reach rank 1 with δ ≥ 2 left; polylog rounds",
		Header:   []string{"n", "δ", "r", "iters", "final-rank", "final-δ", "rounds", "valid"},
	}
	ratios := []struct{ r, mult int }{{2, 8}, {3, 12}, {4, 16}}
	if cfg.Quick {
		ratios = ratios[:2]
	}
	src := prob.NewSource(cfg.seed() + 3)
	for _, rc := range ratios {
		delta := 6 * rc.r
		nu := 128 * rc.mult / 8
		nv := nu * delta / rc.r
		b, err := graph.RandomBipartiteBiregular(nu, nv, delta, src.Fork(uint64(rc.r)).Rand())
		if err != nil {
			return nil, fmt.Errorf("E3: %w", err)
		}
		k := prob.CeilLog2(b.Rank())
		drr, err := core.DegreeRankReductionII(b, k)
		if err != nil {
			return nil, fmt.Errorf("E3 DRR-II: %w", err)
		}
		res, err := core.SixRSplit(b, core.SixROptions{Engine: cfg.engine()})
		if err != nil {
			return nil, fmt.Errorf("E3 (r=%d): %w", rc.r, err)
		}
		valid := check.WeakSplit(b, res.Colors, 0) == nil
		t.AddRow(itoa(b.N()), itoa(b.MinDegU()), itoa(b.Rank()), itoa(k),
			itoa(drr.Ranks[k]), itoa(drr.MinDegs[k]), itoa(res.Trace.Rounds()), btoa(valid))
	}
	return t, nil
}

// E4 validates Lemma 2.4: the degree/rank trajectories of DRR-I.
func E4(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E4",
		Title:    "Degree-Rank Reduction I trajectories",
		PaperRef: "Lemma 2.4",
		Claim:    "δ_k > ((1-ε)/2)^k·δ - 2 and r_k < ((1+ε)/2)^k·r + 3",
		Header:   []string{"splitter", "k", "δ_k", "δ-bound", "r_k", "r-bound", "within"},
	}
	src := prob.NewSource(cfg.seed() + 4)
	nu, nv, deg := 128, 128, 64
	if cfg.Quick {
		nu, nv, deg = 64, 64, 32
	}
	b, err := graph.RandomBipartiteBiregular(nu, nv, deg, src.Rand())
	if err != nil {
		return nil, fmt.Errorf("E4: %w", err)
	}
	const iters = 3
	eps := 1.0 / 3
	for _, kind := range []core.SplitterKind{core.SplitterApproxDet, core.SplitterApproxRand, core.SplitterEulerian} {
		res, err := core.DegreeRankReductionI(b, iters, eps, kind, src.Fork(uint64(kind)))
		if err != nil {
			return nil, fmt.Errorf("E4 %v: %w", kind, err)
		}
		d0, r0 := float64(res.MinDegs[0]), float64(res.Ranks[0])
		for k := 1; k <= iters; k++ {
			lo := math.Pow((1-eps)/2, float64(k))*d0 - 2
			hi := math.Pow((1+eps)/2, float64(k))*r0 + 3
			ok := float64(res.MinDegs[k]) > lo && float64(res.Ranks[k]) < hi
			t.AddRow(kind.String(), itoa(k), itoa(res.MinDegs[k]), ftoa(lo),
				itoa(res.Ranks[k]), ftoa(hi), btoa(ok))
		}
	}
	return t, nil
}

// E5 validates Lemma 2.6: DRR-II halves the rank exactly and reaches 1.
func E5(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E5",
		Title:    "Degree-Rank Reduction II rank halving",
		PaperRef: "Lemma 2.6",
		Claim:    "r_{k+1} = ⌈r_k/2⌉ and r_{⌈log r⌉} = 1",
		Header:   []string{"r₀", "trajectory", "⌈log r⌉", "reached-1"},
	}
	src := prob.NewSource(cfg.seed() + 5)
	ranks := []int{4, 8, 16}
	if cfg.Quick {
		ranks = ranks[:2]
	}
	for _, r := range ranks {
		nu := 32 * r
		nv := 64
		deg := nv * r / nu * 2 // keep it simple: use left degree so right degrees ≈ r
		deg = r * nv / nu      // right degree = nu·deg/nv = r
		if deg < 1 {
			deg = 1
		}
		b, err := graph.RandomBipartiteBiregular(nu, nv, deg, src.Fork(uint64(r)).Rand())
		if err != nil {
			return nil, fmt.Errorf("E5: %w", err)
		}
		k := prob.CeilLog2(b.Rank())
		res, err := core.DegreeRankReductionII(b, k)
		if err != nil {
			return nil, fmt.Errorf("E5 (r=%d): %w", r, err)
		}
		traj := ""
		for i, rv := range res.Ranks {
			if i > 0 {
				traj += "→"
			}
			traj += itoa(rv)
		}
		t.AddRow(itoa(res.Ranks[0]), traj, itoa(k), btoa(res.Ranks[k] == 1))
	}
	return t, nil
}

// E6 validates Lemma 2.9: the probability that a constraint is unsatisfied
// after shattering decays exponentially in Δ.
func E6(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E6",
		Title:    "Shattering failure probability",
		PaperRef: "Lemma 2.9",
		Claim:    "Pr[u unsatisfied] ≤ e^{-ηΔ} (≤ (eΔr)^{-8} for Δ ≥ c·log r)",
		Header:   []string{"Δ", "r", "trials", "unsat-frac", "ln(frac)/Δ"},
	}
	src := prob.NewSource(cfg.seed() + 6)
	degs := []int{16, 32, 48, 64}
	trials := 60
	if cfg.Quick {
		degs = []int{16, 32, 48}
		trials = 25
	}
	for _, deg := range degs {
		nu := 96
		nv := nu * deg / 6 // right degrees ≈ 6
		b, err := graph.RandomBipartiteBiregular(nu, nv, deg, src.Fork(uint64(deg)).Rand())
		if err != nil {
			return nil, fmt.Errorf("E6: %w", err)
		}
		bad, total := 0, 0
		for trial := 0; trial < trials; trial++ {
			sh := core.Shatter(b, src.Fork(uint64(deg*1000+trial)))
			for _, x := range sh.UnsatU {
				total++
				if x {
					bad++
				}
			}
		}
		frac := float64(bad) / float64(total)
		rate := "n/a"
		if frac > 0 {
			rate = ftoa(math.Log(frac) / float64(deg))
		}
		t.AddRow(itoa(deg), itoa(b.Rank()), itoa(trials), ftoa(frac), rate)
	}
	t.Note("ln(frac)/Δ ≈ -η should be roughly constant (exponential decay in Δ)")
	return t, nil
}

// E7 reproduces Figure 1 / Theorem 2.10: sinkless orientation via weak
// splitting on rank-2 instances.
func E7(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E7",
		Title:    "Sinkless orientation via weak splitting (Figure 1)",
		PaperRef: "Section 2.5, Theorem 2.10, Figure 1",
		Claim:    "the Figure 1 instance has rank ≤ 2 and δ_B ≥ ⌈δ_G/2⌉; a weak splitting yields a sinkless orientation",
		Header:   []string{"d-regular", "n", "δ_B", "rank", "solver", "rounds", "sinkless"},
	}
	degs := []int{6, 12, 24, 48}
	if cfg.Quick {
		degs = []int{6, 24}
	}
	src := prob.NewSource(cfg.seed() + 7)
	for _, d := range degs {
		n := 240
		g, err := graph.RandomRegular(n, d, src.Fork(uint64(d)).Rand())
		if err != nil {
			return nil, fmt.Errorf("E7: %w", err)
		}
		ids := local.PermutationIDs(n, src.Fork(uint64(d)+100))
		// The Figure 1 instance has δ_B = d/2: Theorem 2.7 applies from
		// δ_B ≥ 12; below that the instance sits outside every algorithmic
		// regime of the paper (the point of Theorem 2.10 is exactly that
		// fast algorithms cannot exist there), so the centralized
		// backtracking reference demonstrates the reduction instead.
		solverName := "deterministic (Thm 2.7)"
		solver := reduction.WeakSplitSolver(func(b *graph.Bipartite) (*core.Result, error) {
			if b.MinDegU() >= 6*b.Rank() {
				return core.SixRSplit(b, core.SixROptions{Engine: cfg.engine()})
			}
			return core.ExhaustiveSplit(b, 1<<22)
		})
		toward, si, res, err := reduction.SinklessViaWeakSplit(g, ids, solver)
		if err != nil {
			return nil, fmt.Errorf("E7 (d=%d): %w", d, err)
		}
		if si.B.MinDegU() < 6*si.B.Rank() {
			solverName = "reference (exhaustive)"
		}
		ok := check.SinklessOrientation(g, si.Edges, toward, 1) == nil
		t.AddRow(itoa(d), itoa(n), itoa(si.B.MinDegU()), itoa(si.B.Rank()),
			solverName, itoa(res.Trace.Rounds()), btoa(ok))
	}
	return t, nil
}
