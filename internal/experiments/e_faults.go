package experiments

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// EF sweeps the deterministic fault layer (drops, bounded delays,
// crash-stop) over a splitting probe and grades every run with the
// graceful-degradation classifier. The probe is deliberately not one of the
// paper's solvers — those self-check and refuse to return a faulty output —
// but a 3-round echo-commit splitter whose raw colors survive for grading:
//
//	round 1: variables draw a color uniformly and propose it to all ports;
//	round 2: constraints acknowledge exactly the ports whose proposal
//	         arrived;
//	round 3: variables with at least one acknowledged round trip commit
//	         their color; the rest abstain (Uncolored).
//
// A commit therefore needs one surviving proposal→ack round trip, so every
// fault mode is visible in the output: drops sever round trips, delays past
// the commit round are equivalent to losses (the receiver has terminated),
// and crash-stop leaves holes. The classifier then separates degraded
// coverage (holes, starved constraints) from shattered logic (a
// fully-reported constraint ending monochromatic).
type faultProbeNode struct {
	view  local.View
	in    probeInput
	color int
	out   *[]int
}

// probeInput marks which side of the bipartite instance a node simulates.
type probeInput struct {
	isConstraint bool
	index        int
}

// laneAck is the constraints' acknowledgement lane. Variable proposals use
// the zigzag IntLane encoding of {Red, Blue} = {0, 2}, so 3 is free.
const laneAck = 3

var _ local.Bit2Node = (*faultProbeNode)(nil)

// Bit2 implements local.Bit2Node.
func (p *faultProbeNode) Bit2() {}

// RoundB implements local.BitNode.
func (p *faultProbeNode) RoundB(r int, recv, send local.BitRow) bool {
	if p.in.isConstraint {
		if r == 2 {
			for q := 0; q < recv.Len(); q++ {
				if recv.Has(q) {
					send.Set(q, laneAck)
				}
			}
			return true
		}
		return false
	}
	switch r {
	case 1:
		if p.view.Rand.Uint64()&1 == 0 {
			p.color = check.Red
		} else {
			p.color = check.Blue
		}
		send.Broadcast(local.IntLane(p.color))
		return false
	case 2:
		return false
	default: // round 3: commit on any surviving round trip
		if recv.CountPresent() > 0 {
			(*p.out)[p.in.index] = p.color
		}
		return true
	}
}

// probeSetup prepares topology, inputs and IDs for the probe: variables get
// IDs 0..nv-1 (keying their randomness by V-index, engine-independent) and
// constraints nv..nv+nu-1.
func probeSetup(b *graph.Bipartite) (*local.Topology, []any, []int) {
	g := b.AsGraph()
	nu, nv := b.NU(), b.NV()
	inputs := make([]any, g.N())
	ids := make([]int, g.N())
	for u := 0; u < nu; u++ {
		inputs[u] = probeInput{isConstraint: true, index: u}
		ids[u] = nv + u
	}
	for v := 0; v < nv; v++ {
		inputs[nu+v] = probeInput{isConstraint: false, index: v}
		ids[nu+v] = v
	}
	return local.NewTopology(g), inputs, ids
}

// EF quantifies graceful degradation under the deterministic fault layer:
// validity rate versus drop probability, with delay and crash-stop rows.
func EF(cfg Config) (*Table, error) {
	if cfg.Faults != nil {
		return nil, fmt.Errorf("EF sweeps its own fault grid; run it without fault flags")
	}
	t := &Table{
		ID:       "EF",
		Title:    "Graceful degradation of an echo-commit splitting probe under injected faults",
		PaperRef: "model (§1): the paper assumes fault-free synchronous LOCAL",
		Claim:    "faults degrade coverage, not logic: abstentions and crash holes grow smoothly with the fault load while the surviving output stays consistent (degraded, never shattered), and every faulty run replays bit-identically from (seed, plan)",
		Header:   []string{"drop", "delay", "crash", "trials", "valid", "degraded", "shattered", "sat-frac", "uncolored/trial", "drops/trial", "crashes/trial"},
	}
	nu, nv, deg, trials := 200, 2000, 20, 24
	if cfg.Quick {
		nu, nv, deg, trials = 60, 600, 20, 8
	}
	src := prob.NewSource(cfg.seed() + 0xFA)
	b, err := graph.RandomBipartiteBiregular(nu, nv, deg, src.Fork(1).Rand())
	if err != nil {
		return nil, fmt.Errorf("EF: %w", err)
	}
	topo, inputs, ids := probeSetup(b)
	plans := []local.FaultPlan{
		{}, // fault-free baseline
		{Drop: 0.05},
		{Drop: 0.1},
		{Drop: 0.2},
		{Drop: 0.35},
		{Drop: 0.1, Delay: 2},
		{Crash: 0.01},
		{Drop: 0.1, Delay: 1, Crash: 0.005},
	}
	if cfg.Quick {
		plans = []local.FaultPlan{{}, {Drop: 0.1}, {Drop: 0.1, Delay: 2}, {Crash: 0.01}}
	}
	for pi, plan := range plans {
		var valid, degraded, shattered, uncolored int
		var satSum float64
		var dropped, crashed int64
		for trial := 0; trial < trials; trial++ {
			colors := make([]int, nv)
			for i := range colors {
				colors[i] = check.Uncolored
			}
			factory := func(v local.View) local.Node {
				return local.BitProgram(&faultProbeNode{view: v, in: v.Input.(probeInput), out: &colors})
			}
			opts := local.Options{
				Source:    src.Fork(uint64(100 + trial)),
				Inputs:    inputs,
				IDs:       ids,
				MaxRounds: 8,
			}
			if plan.Active() {
				fp := plan
				fp.Seed = cfg.seed() + uint64(pi)*1000 + uint64(trial)
				opts.Faults = &fp
			}
			stats, err := cfg.engine().Run(topo, factory, opts)
			if err != nil {
				return nil, fmt.Errorf("EF (drop %g, trial %d): %w", plan.Drop, trial, err)
			}
			d := check.WeakSplitDegradation(b, colors, 0)
			switch d.Outcome {
			case check.OutcomeValid:
				valid++
			case check.OutcomeDegraded:
				degraded++
			default:
				shattered++
			}
			satSum += d.SatisfiedFraction()
			uncolored += d.Uncolored
			dropped += stats.Dropped
			crashed += int64(stats.Crashed)
		}
		t.AddRow(ftoa(plan.Drop), itoa(plan.Delay), ftoa(plan.Crash), itoa(trials),
			itoa(valid), itoa(degraded), itoa(shattered),
			fmt.Sprintf("%.4f", satSum/float64(trials)),
			fmt.Sprintf("%.1f", float64(uncolored)/float64(trials)),
			fmt.Sprintf("%.1f", float64(dropped)/float64(trials)),
			fmt.Sprintf("%.2f", float64(crashed)/float64(trials)))
	}
	t.Note("probe commits a color only on a surviving proposal→ack round trip; abstentions and crash holes grade degraded, monochromatic fully-reported constraints grade shattered")
	t.Note("delayed messages arriving after the receiver committed count as losses — bounded delay shows up as extra degradation, not reordering")
	return t, nil
}
