// Package experiments regenerates every evaluation artifact of the
// reproduction. The paper is pure theory, so its "tables and figures" are
// its theorems plus Figure 1; each experiment Ek validates one claim
// empirically and prints a table recorded in EXPERIMENTS.md. The
// per-experiment index lives in DESIGN.md §3.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/local"
)

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks instance sizes and trial counts for CI-speed runs.
	Quick bool
	// Seed drives all randomness (default 1 if zero).
	Seed uint64
	// Engine executes the LOCAL simulation phases inside experiments
	// (nil = SequentialEngine). Engines are observationally identical, so
	// this changes wall-clock time only — WorkerPoolEngine pays off on the
	// larger instances.
	Engine local.Engine
	// Batch extends the batch-capable experiments (see BatchCapable) with
	// their batched-trial ablations: multi-seed sweeps run through
	// local.BatchRun and are checked bit-identical against per-seed runs.
	Batch bool
	// GraphFile names an instance file (CSR snapshot, SNAP edge list, or
	// instance text) for the real-graph experiment EG; the other experiments
	// generate their own instances and ignore it.
	GraphFile string
	// Faults injects a deterministic fault plan (drops, delays, crash-stop)
	// into every LOCAL simulation the experiment runs, by wrapping Engine in
	// local.ForceFaults. Most solvers self-check and report failures as
	// errors, so this is a stress knob; EF sweeps its own fault grid and
	// rejects it.
	Faults *local.FaultPlan
	// Control makes the run cancellable: every LOCAL phase the experiment
	// runs observes it at round boundaries (the engine is wrapped in
	// local.ForceControl), and RunParallel skips experiments not yet started
	// once it fires. nil runs uncontrolled. A control that never fires
	// perturbs nothing — tables are bit-identical with and without it.
	Control *local.RunControl
}

// BatchCapable reports whether an experiment honors Config.Batch. CLIs use
// it to reject a -batch flag that would be silently ignored.
func BatchCapable(id string) bool {
	return id == "E14"
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) engine() local.Engine {
	eng := c.Engine
	if eng == nil {
		eng = local.SequentialEngine{}
	}
	if c.Faults != nil {
		eng = local.ForceFaults(eng, *c.Faults)
	}
	if c.Control != nil {
		eng = local.ForceControl(eng, c.Control.Ctx)
	}
	return eng
}

// Table is one experiment's result.
type Table struct {
	ID       string
	Title    string
	PaperRef string
	Claim    string
	Header   []string
	Rows     [][]string
	Notes    []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form note.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "  paper: %s\n  claim: %s\n", t.PaperRef, t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		sb.WriteString("  ")
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// Runner is one experiment entry point.
type Runner func(Config) (*Table, error)

// All returns the experiment registry keyed by id: E1..E15, EF (the
// fault-injection sweep) and EG, the real-graph experiment (EG needs
// Config.GraphFile, so IDs omits it from the default run order).
func All() map[string]Runner {
	return map[string]Runner{
		"EG":  EG,
		"EF":  EF,
		"E1":  E1,
		"E2":  E2,
		"E3":  E3,
		"E4":  E4,
		"E5":  E5,
		"E6":  E6,
		"E7":  E7,
		"E8":  E8,
		"E9":  E9,
		"E10": E10,
		"E11": E11,
		"E12": E12,
		"E13": E13,
		"E14": E14,
		"E15": E15,
	}
}

// IDs returns the self-contained experiment ids in order: EG is excluded
// because it cannot run without an instance file (splitbench -graph); EF
// generates its own instance and fault grid, so it is included.
func IDs() []string {
	ids := make([]string, 0, 16)
	for id := range All() {
		if id == "EG" {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.3g", v) }
func btoa(ok bool) string   { return map[bool]string{true: "yes", false: "NO"}[ok] }
