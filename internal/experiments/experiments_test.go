package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment in quick mode; each must
// produce a non-empty, well-formed table and report no "NO" verdicts in a
// validity column. Experiments are independent (each derives its randomness
// from its own forked Source), so the subtests run in parallel; -short skips
// the one heavyweight ablation.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true, Seed: 7}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			if testing.Short() && id == "E14" {
				t.Skip("E14 runs a large splitter ablation; covered by the full run")
			}
			runner := All()[id]
			table, err := runner(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			if table.PaperRef == "" || table.Claim == "" {
				t.Errorf("%s missing paper reference or claim", id)
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Errorf("%s: row width %d != header width %d", id, len(row), len(table.Header))
				}
				for _, cell := range row {
					if cell == "NO" {
						t.Errorf("%s: failed verdict in row %v", id, row)
					}
				}
			}
			out := table.Format()
			if !strings.Contains(out, table.ID) || !strings.Contains(out, table.Header[0]) {
				t.Errorf("%s: Format output malformed:\n%s", id, out)
			}
		})
	}
}

func TestIDsOrdering(t *testing.T) {
	ids := IDs()
	if len(ids) != 16 {
		t.Fatalf("got %d experiments, want 16", len(ids))
	}
	if ids[0] != "E1" || ids[9] != "EF" || ids[15] != "E15" {
		t.Errorf("ordering wrong: %v", ids)
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "title", PaperRef: "ref", Claim: "claim",
		Header: []string{"a", "bb"},
	}
	tab.AddRow("1", "2")
	tab.Note("hello %d", 3)
	out := tab.Format()
	for _, want := range []string{"EX", "title", "ref", "claim", "a", "bb", "hello 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestConfigSeedDefault(t *testing.T) {
	if (Config{}).seed() != 1 {
		t.Error("zero seed should default to 1")
	}
	if (Config{Seed: 9}).seed() != 9 {
		t.Error("explicit seed ignored")
	}
}
