// Package coloring provides the distributed coloring substrates the paper
// consumes: Linial's O(Δ²)-coloring in O(log* n) rounds, Kuhn–Wattenhofer
// parallel color reduction down to Δ+1 colors, and distance-k colorings of
// power graphs (used to compile SLOCAL algorithms into LOCAL ones, cf.
// Lemma 2.1 and Theorems 3.2/5.2).
//
// Substitution note (DESIGN.md §2): the paper cites [BEK14a] for
// (Δ+1)-coloring in O(Δ + log* n) rounds; this package implements the
// classic Linial + Kuhn–Wattenhofer pipeline with round complexity
// O(Δ·log(n/Δ) + log* n), one log factor more, which keeps every consuming
// bound polylogarithmic.
package coloring

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

// Result is a proper coloring together with the LOCAL cost of computing it.
type Result struct {
	Colors []int // Colors[v] ∈ [0, NumColors)
	Num    int   // number of colors in the palette
	Stats  local.Stats
}

// linialStep holds the per-iteration parameters of Linial's color reduction:
// colors in [K) are re-encoded as degree-(L-1) polynomials over GF(q) and
// mapped into [q²).
type linialStep struct {
	k, q, l int
}

// linialSchedule precomputes the (globally known) iteration parameters,
// starting from K = n colors, until the palette stops shrinking.
func linialSchedule(n, maxDeg int) []linialStep {
	var steps []linialStep
	k := n
	for {
		q, l := linialParams(k, maxDeg)
		if q*q >= k {
			return steps
		}
		steps = append(steps, linialStep{k: k, q: q, l: l})
		k = q * q
	}
}

// linialParams returns the smallest prime q with q ≥ Δ·L+1 where
// L = ⌈log_q K⌉, so that every node has an evaluation point avoiding all
// ≤ Δ·(L-1) collisions with neighbors' polynomials.
func linialParams(k, maxDeg int) (q, l int) {
	if maxDeg < 1 {
		maxDeg = 1
	}
	q = prob.SmallestPrimeAtLeast(maxDeg + 2)
	for {
		l = logCeil(k, q)
		if l < 1 {
			l = 1
		}
		if q >= maxDeg*l+1 {
			return q, l
		}
		q = prob.SmallestPrimeAtLeast(q + 1)
	}
}

// logCeil returns ⌈log_base(k)⌉ for k ≥ 1.
func logCeil(k, base int) int {
	if k <= 1 {
		return 1
	}
	l, pow := 0, 1
	for pow < k {
		pow *= base
		l++
	}
	return l
}

// kwPass describes one Kuhn–Wattenhofer halving pass: colors in [K) are
// grouped into blocks of size 2(Δ+1) and each block is greedily compressed
// into Δ+1 colors over 2(Δ+1) subrounds.
type kwPass struct {
	k int // palette size at the start of the pass
}

func kwSchedule(k, maxDeg int) []kwPass {
	var passes []kwPass
	target := maxDeg + 1
	for k > target {
		passes = append(passes, kwPass{k: k})
		groups := (k + 2*target - 1) / (2 * target)
		k = groups * target
	}
	return passes
}

// colorNode is the per-node LOCAL program: Linial iterations followed by KW
// reduction subrounds. Every node follows the same globally precomputed
// schedule, so all nodes terminate in the same round.
//
// Nodes broadcast their color only when it changes (plus the initial
// announcement) and cache the last received color per port; this keeps the
// message volume at O(recolorings·Δ) instead of O(rounds·m) without
// changing the algorithm: a silent neighbor's color is its cached one.
//
// Colors are exchanged on the word plane (local.WordNode): a message is one
// tagged word carrying the color, so engine rounds move flat uint64s
// instead of boxing every announcement onto the heap.
type colorNode struct {
	view   local.View
	maxDeg int
	linial []linialStep
	kw     []kwPass
	color  int
	cache  []int // cache[p] = last color heard on port p
	out    *[]int
	idx    int
}

var _ local.WordNode = (*colorNode)(nil)

// RoundW implements local.WordNode.
//
//splitlint:zeroalloc
func (c *colorNode) RoundW(r int, recv, send []local.Word) bool {
	if c.cache == nil {
		//lint:alloc one-time lazy init: the cache is built on the node's first round and reused for the rest of the run
		c.cache = make([]int, c.view.Deg)
		for p := range c.cache {
			c.cache[p] = -1
		}
	}
	for p, m := range recv {
		if m != local.NilWord {
			c.cache[p] = m.Int()
		}
	}
	changed := false
	switch {
	case r == 1:
		changed = true // announce the initial color (the ID)
	case r <= 1+len(c.linial):
		st := c.linial[r-2]
		if nc := linialRecolor(c.color, c.cache, st); nc != c.color {
			c.color, changed = nc, true
		}
	default:
		// KW reduction: figure out which pass/subround this round is.
		kwRound := r - 2 - len(c.linial) // 0-based within the KW phase
		_, sub, total := kwLocate(kwRound, c.kw, c.maxDeg)
		if kwRound >= total {
			// Schedule exhausted (only happens when kw is empty).
			(*c.out)[c.idx] = c.color
			return true
		}
		target := c.maxDeg + 1
		s := 2 * target
		// Group and in-group index are recomputed from the current color
		// each subround; every node's index comes up exactly once per pass,
		// and simultaneous recolorers in the same subround have colors that
		// agree mod s and hence lie in different groups with disjoint
		// palettes, so properness is an invariant.
		if group, j := c.color/s, c.color%s; j == sub {
			if nc := greedyPick(group*target, target, c.cache); nc != c.color {
				c.color, changed = nc, true
			}
		}
		if kwRound == total-1 {
			(*c.out)[c.idx] = c.color
			if changed {
				c.broadcast(send)
			}
			return true
		}
	}
	if len(c.linial) == 0 && len(c.kw) == 0 {
		(*c.out)[c.idx] = c.color
		return true
	}
	if changed {
		c.broadcast(send)
	}
	return false
}

//splitlint:zeroalloc
func (c *colorNode) broadcast(send []local.Word) {
	local.Broadcast(send, local.MakeIntWord(1, c.color))
}

// kwLocate maps a 0-based KW round index to (pass, subround); total is the
// total number of KW rounds.
func kwLocate(round int, passes []kwPass, maxDeg int) (pass, sub, total int) {
	s := 2 * (maxDeg + 1)
	total = s * len(passes)
	if round >= total {
		return -1, 0, total
	}
	return round / s, round % s, total
}

// linialRecolor performs one Linial step: encode the color as a polynomial
// over GF(q) and find an evaluation point x whose value differs from every
// neighbor's polynomial at x.
func linialRecolor(color int, nbrColors []int, st linialStep) int {
	own := polyDigits(color, st.q, st.l)
	for x := 0; x < st.q; x++ {
		ok := true
		vx := polyEval(own, x, st.q)
		for _, nc := range nbrColors {
			if nc == color {
				continue // improper input would break Linial; IDs are proper
			}
			if polyEval(polyDigits(nc, st.q, st.l), x, st.q) == vx {
				ok = false
				break
			}
		}
		if ok {
			return x*st.q + vx
		}
	}
	// Unreachable when q ≥ Δ·L+1; keep the old color defensively.
	return color % (st.q * st.q)
}

func polyDigits(c, q, l int) []int {
	d := make([]int, l)
	for i := 0; i < l; i++ {
		d[i] = c % q
		c /= q
	}
	return d
}

func polyEval(digits []int, x, q int) int {
	v := 0
	for i := len(digits) - 1; i >= 0; i-- {
		v = (v*x + digits[i]) % q
	}
	return v
}

// greedyPick returns the smallest color in [base, base+size) not present in
// taken.
func greedyPick(base, size int, taken []int) int {
	used := make(map[int]struct{}, len(taken))
	for _, t := range taken {
		used[t] = struct{}{}
	}
	for c := base; c < base+size; c++ {
		if _, bad := used[c]; !bad {
			return c
		}
	}
	// Unreachable: palette has Δ+1 slots and ≤ Δ neighbors.
	return base
}

// DeltaPlusOne computes a (Δ+1)-coloring of g with the Linial + KW pipeline
// run as a LOCAL node program on the given engine. IDs must be a permutation
// of 0..n-1 (nil for the identity), since Linial starts from the ID space.
func DeltaPlusOne(g *graph.Graph, eng local.Engine, opts local.Options) (*Result, error) {
	n := g.N()
	if n == 0 {
		return &Result{Colors: nil, Num: 0}, nil
	}
	maxDeg := g.MaxDeg()
	lin := linialSchedule(n, maxDeg)
	var kw []kwPass
	if len(lin) > 0 {
		last := lin[len(lin)-1]
		kw = kwSchedule(last.q*last.q, maxDeg)
	} else {
		kw = kwSchedule(n, maxDeg)
	}
	out := make([]int, n)
	idx := 0
	factory := func(v local.View) local.Node {
		node := &colorNode{
			view:   v,
			maxDeg: maxDeg,
			linial: lin,
			kw:     kw,
			color:  v.ID,
			out:    &out,
			idx:    idx,
		}
		idx++
		return local.WordProgram(node)
	}
	topo := local.NewTopology(g)
	stats, err := eng.Run(topo, factory, opts)
	if err != nil {
		return nil, fmt.Errorf("coloring: %w", err)
	}
	res := &Result{Colors: out, Num: maxDeg + 1, Stats: stats}
	if err := Verify(g, res.Colors); err != nil {
		return nil, fmt.Errorf("coloring: self-check failed: %w", err)
	}
	return res, nil
}

// Verify checks that colors is a proper coloring of g.
func Verify(g *graph.Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: %d colors for %d nodes", len(colors), g.N())
	}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if colors[v] == colors[w] {
				return fmt.Errorf("coloring: edge {%d,%d} is monochromatic (color %d)", v, w, colors[v])
			}
		}
	}
	return nil
}

// PowerColoring colors the k-th power of g, i.e. computes a distance-k
// coloring, by running the Linial+KW program on g^k. In the LOCAL model a
// round on g^k is simulated by k rounds on g, so the reported Stats.Rounds
// is scaled by k.
func PowerColoring(g *graph.Graph, k int, eng local.Engine, opts local.Options) (*Result, error) {
	pg := g.Power(k)
	res, err := DeltaPlusOne(pg, eng, opts)
	if err != nil {
		return nil, fmt.Errorf("coloring: power graph: %w", err)
	}
	res.Stats.Rounds *= k
	return res, nil
}

// GreedySequential is the centralized reference: color nodes in index order
// with the smallest free color. Used as a test oracle and for tiny
// components where simulating the full pipeline is pointless.
func GreedySequential(g *graph.Graph) *Result {
	n := g.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	maxC := 0
	for v := 0; v < n; v++ {
		used := make(map[int]struct{}, g.Deg(v))
		for _, w := range g.Neighbors(v) {
			if c := colors[w]; c >= 0 {
				used[c] = struct{}{}
			}
		}
		c := 0
		for {
			if _, bad := used[c]; !bad {
				break
			}
			c++
		}
		colors[v] = c
		if c+1 > maxC {
			maxC = c + 1
		}
	}
	return &Result{Colors: colors, Num: maxC}
}

// EstimateRounds returns the LOCAL round cost that DeltaPlusOne would charge
// on a graph with n nodes and maximum degree maxDeg, without running it.
// Pipelines use it to account rounds honestly when they substitute the
// centralized greedy coloring for the simulated one on very large conflict
// graphs.
func EstimateRounds(n, maxDeg int) int {
	if n == 0 {
		return 0
	}
	lin := linialSchedule(n, maxDeg)
	k := n
	if len(lin) > 0 {
		last := lin[len(lin)-1]
		k = last.q * last.q
	}
	kw := kwSchedule(k, maxDeg)
	return 1 + len(lin) + 2*(maxDeg+1)*len(kw) + 1
}
