package coloring

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

func properAndBounded(t *testing.T, g *graph.Graph, res *Result, maxColors int) {
	t.Helper()
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	for v, c := range res.Colors {
		if c < 0 || c >= maxColors {
			t.Fatalf("node %d got color %d outside [0,%d)", v, c, maxColors)
		}
	}
}

func TestDeltaPlusOneOnPath(t *testing.T) {
	g := graph.PathGraph(50)
	res, err := DeltaPlusOne(g, local.SequentialEngine{}, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	properAndBounded(t, g, res, 3)
}

func TestDeltaPlusOneOnCycle(t *testing.T) {
	g := graph.Cycle(101)
	res, err := DeltaPlusOne(g, local.SequentialEngine{}, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	properAndBounded(t, g, res, 3)
}

func TestDeltaPlusOneOnRandomGraphs(t *testing.T) {
	src := prob.NewSource(11)
	for _, n := range []int{30, 120} {
		g := graph.RandomGraph(n, 0.1, src.Rand())
		res, err := DeltaPlusOne(g, local.SequentialEngine{}, local.Options{
			IDs: local.PermutationIDs(n, src.Fork(uint64(n))),
		})
		if err != nil {
			t.Fatal(err)
		}
		properAndBounded(t, g, res, g.MaxDeg()+1)
	}
}

func TestDeltaPlusOneOnComplete(t *testing.T) {
	g := graph.Complete(12)
	res, err := DeltaPlusOne(g, local.SequentialEngine{}, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	properAndBounded(t, g, res, 12)
}

func TestDeltaPlusOneEdgeless(t *testing.T) {
	g := graph.NewGraph(5)
	res, err := DeltaPlusOne(g, local.SequentialEngine{}, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	properAndBounded(t, g, res, 1)
	empty, err := DeltaPlusOne(graph.NewGraph(0), local.SequentialEngine{}, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Num != 0 {
		t.Error("empty graph should have empty palette")
	}
}

func TestEnginesAgreeOnColoring(t *testing.T) {
	g := graph.RandomGraph(60, 0.15, prob.NewSource(12).Rand())
	ids := local.PermutationIDs(g.N(), prob.NewSource(13))
	seqRes, err := DeltaPlusOne(g, local.SequentialEngine{}, local.Options{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	gorRes, err := DeltaPlusOne(g, local.GoroutineEngine{}, local.Options{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	for v := range seqRes.Colors {
		if seqRes.Colors[v] != gorRes.Colors[v] {
			t.Fatalf("engines disagree at node %d", v)
		}
	}
	if seqRes.Stats != gorRes.Stats {
		t.Errorf("stats differ: %+v vs %+v", seqRes.Stats, gorRes.Stats)
	}
}

func TestRoundComplexityScaling(t *testing.T) {
	// Rounds should scale roughly like O(Δ log n), not like n: compare the
	// path on 100 and 10000 nodes.
	small, err := DeltaPlusOne(graph.PathGraph(100), local.SequentialEngine{}, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := DeltaPlusOne(graph.PathGraph(10000), local.SequentialEngine{}, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if big.Stats.Rounds > 4*small.Stats.Rounds {
		t.Errorf("rounds grew too fast: %d → %d for 100x nodes", small.Stats.Rounds, big.Stats.Rounds)
	}
}

func TestLinialSchedule(t *testing.T) {
	steps := linialSchedule(1<<20, 4)
	if len(steps) == 0 {
		t.Fatal("expected at least one Linial step for n = 2^20, Δ=4")
	}
	// Palette sizes must strictly shrink along the schedule.
	for i, st := range steps {
		if st.q*st.q >= st.k {
			t.Errorf("step %d does not shrink: K=%d q=%d", i, st.k, st.q)
		}
		if st.q < 4*st.l+1 {
			t.Errorf("step %d: q=%d < Δ·L+1=%d", i, st.q, 4*st.l+1)
		}
	}
	// log* behaviour: schedule length should be tiny.
	if len(steps) > 6 {
		t.Errorf("schedule suspiciously long: %d steps", len(steps))
	}
}

func TestKWSchedule(t *testing.T) {
	passes := kwSchedule(1000, 9)
	k := 1000
	for _, p := range passes {
		if p.k != k {
			t.Fatalf("pass K mismatch: %d vs %d", p.k, k)
		}
		groups := (k + 19) / 20
		k = groups * 10
	}
	if k != 10 {
		t.Errorf("final palette %d, want Δ+1=10", k)
	}
	if len(kwSchedule(5, 9)) != 0 {
		t.Error("no passes needed when K <= Δ+1")
	}
}

func TestPolyEval(t *testing.T) {
	// p(x) = 2 + 3x + x² over GF(5); p(2) = 2+6+4 = 12 mod 5 = 2.
	if got := polyEval([]int{2, 3, 1}, 2, 5); got != 2 {
		t.Errorf("polyEval = %d, want 2", got)
	}
	d := polyDigits(7, 3, 3) // 7 = 1 + 2*3
	if d[0] != 1 || d[1] != 2 || d[2] != 0 {
		t.Errorf("polyDigits(7,3) = %v", d)
	}
}

func TestGreedyPick(t *testing.T) {
	if got := greedyPick(10, 3, []int{10, 11}); got != 12 {
		t.Errorf("greedyPick = %d, want 12", got)
	}
	if got := greedyPick(0, 2, nil); got != 0 {
		t.Errorf("greedyPick = %d, want 0", got)
	}
}

func TestVerifyRejects(t *testing.T) {
	g := graph.PathGraph(3)
	if err := Verify(g, []int{0, 0, 1}); err == nil {
		t.Error("monochromatic edge should be rejected")
	}
	if err := Verify(g, []int{0, 1}); err == nil {
		t.Error("wrong length should be rejected")
	}
	if err := Verify(g, []int{0, 1, 0}); err != nil {
		t.Errorf("valid coloring rejected: %v", err)
	}
}

func TestPowerColoring(t *testing.T) {
	g := graph.PathGraph(30)
	res, err := PowerColoring(g, 2, local.SequentialEngine{}, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Distance-2 proper: check on the power graph.
	if err := Verify(g.Power(2), res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Num != g.Power(2).MaxDeg()+1 {
		t.Errorf("palette %d, want %d", res.Num, g.Power(2).MaxDeg()+1)
	}
}

func TestGreedySequential(t *testing.T) {
	g := graph.Complete(7)
	res := GreedySequential(g)
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Num != 7 {
		t.Errorf("K7 greedy used %d colors, want 7", res.Num)
	}
}

func TestColoringProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := prob.NewSource(seed)
		n := 20 + int(seed%40)
		g := graph.RandomGraph(n, 0.12, src.Rand())
		res, err := DeltaPlusOne(g, local.SequentialEngine{}, local.Options{
			IDs: local.PermutationIDs(n, src.Fork(1)),
		})
		if err != nil {
			return false
		}
		if Verify(g, res.Colors) != nil {
			return false
		}
		for _, c := range res.Colors {
			if c >= g.MaxDeg()+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
