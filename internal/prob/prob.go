// Package prob provides seeded randomness with per-node derived streams and
// the probability utilities (binomial tails, Chernoff bounds) used by the
// splitting algorithms and their derandomizations.
//
// All randomized algorithms in this repository draw from a Source created
// from an explicit seed, so every run is reproducible. Per-node streams are
// derived with a SplitMix64 hash of (seed, node id), which keeps the
// goroutine engine and the sequential engine bit-for-bit identical: a node's
// random bits depend only on the seed and its identity, never on scheduling.
package prob

import (
	"math"
	"math/rand/v2"
)

// Source is a reproducible source of randomness that can derive independent
// per-node streams.
type Source struct {
	seed uint64
}

// NewSource returns a Source for the given seed.
func NewSource(seed uint64) *Source {
	return &Source{seed: seed}
}

// Seed returns the seed this source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Rand returns the root random stream of the source.
func (s *Source) Rand() *rand.Rand {
	return rand.New(rand.NewPCG(s.seed, splitmix64(s.seed)))
}

// Node returns an independent random stream for the given node id. Streams
// for distinct ids are computationally independent, and the same (seed, id)
// pair always yields the same stream.
func (s *Source) Node(id int) *rand.Rand {
	h := s.nodeSeed(id)
	return rand.New(rand.NewPCG(h, splitmix64(h)))
}

// NodeStreams returns the streams Node would yield for every id, backed by
// two bulk allocations instead of two per node. At sweep scale
// (trials × nodes) per-stream allocation is GC-visible; the engines build
// their Views through this.
func (s *Source) NodeStreams(ids []int) []*rand.Rand {
	pcgs := make([]rand.PCG, len(ids))
	rands := make([]rand.Rand, len(ids))
	out := make([]*rand.Rand, len(ids))
	for i, id := range ids {
		h := s.nodeSeed(id)
		pcgs[i].Seed(h, splitmix64(h))
		rands[i] = *rand.New(&pcgs[i])
		out[i] = &rands[i]
	}
	return out
}

// nodeSeed derives the PCG seed of a node's stream from (source seed, id).
func (s *Source) nodeSeed(id int) uint64 {
	return splitmix64(s.seed ^ splitmix64(uint64(id)+0x9e3779b97f4a7c15))
}

// Fork returns a derived Source for a named phase, so that independent
// algorithm phases use independent randomness even when they run on the
// same node ids.
func (s *Source) Fork(phase uint64) *Source {
	return &Source{seed: splitmix64(s.seed ^ splitmix64(phase+0x2545f4914f6cdd1d))}
}

// KeyedStream derives an independent 64-bit stream key from a seed and a
// stream kind — the counter-based analogue of Fork for consumers that need
// raw keyed bits instead of a *rand.Rand. The fault-injection layer keys its
// drop/delay/crash streams with it so decisions depend only on
// (seed, kind, index) and never on draw order.
func KeyedStream(seed, kind uint64) uint64 {
	return splitmix64(seed ^ splitmix64(kind+0x2545f4914f6cdd1d))
}

// KeyedAt returns 64 uniform bits at position i of a keyed stream. Chain it
// to key on tuples: KeyedAt(KeyedAt(stream, round), arc).
func KeyedAt(stream, i uint64) uint64 {
	return splitmix64(stream ^ splitmix64(i+0x9e3779b97f4a7c15))
}

// splitmix64 is the SplitMix64 finalizer; it is a strong 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BinomPMF returns the probability mass function values of Bin(n, p) as a
// slice of length n+1, computed with a numerically stable iterative scheme.
func BinomPMF(n int, p float64) []float64 {
	if n < 0 {
		return nil
	}
	pmf := make([]float64, n+1)
	if p <= 0 {
		pmf[0] = 1
		return pmf
	}
	if p >= 1 {
		pmf[n] = 1
		return pmf
	}
	// Work in log space to avoid underflow for large n.
	logP, logQ := math.Log(p), math.Log1p(-p)
	lg := logGammaCache(n)
	for k := 0; k <= n; k++ {
		logC := lg[n] - lg[k] - lg[n-k]
		pmf[k] = math.Exp(logC + float64(k)*logP + float64(n-k)*logQ)
	}
	return pmf
}

// BinomTailGE returns Pr[Bin(n,p) >= k] exactly (up to float rounding).
func BinomTailGE(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	pmf := BinomPMF(n, p)
	var sum float64
	for i := n; i >= k; i-- { // sum smallest terms first for stability
		sum += pmf[i]
	}
	return math.Min(1, sum)
}

// BinomTailLE returns Pr[Bin(n,p) <= k] exactly (up to float rounding).
func BinomTailLE(n int, p float64, k int) float64 {
	if k >= n {
		return 1
	}
	if k < 0 {
		return 0
	}
	pmf := BinomPMF(n, p)
	var sum float64
	for i := 0; i <= k; i++ {
		sum += pmf[i]
	}
	return math.Min(1, sum)
}

// logGammaCache returns lg[i] = ln(i!) for i in [0, n].
func logGammaCache(n int) []float64 {
	lg := make([]float64, n+1)
	for i := 2; i <= n; i++ {
		lg[i] = lg[i-1] + math.Log(float64(i))
	}
	return lg
}

// ChernoffUpper bounds Pr[X >= (1+d)*mu] for X a sum of independent 0/1
// variables with mean mu, using the standard multiplicative Chernoff bound
// exp(-d^2 mu / (2+d)).
func ChernoffUpper(mu, d float64) float64 {
	if d <= 0 {
		return 1
	}
	return math.Exp(-d * d * mu / (2 + d))
}

// ChernoffLower bounds Pr[X <= (1-d)*mu] with exp(-d^2 mu / 2).
func ChernoffLower(mu, d float64) float64 {
	if d <= 0 {
		return 1
	}
	if d >= 1 {
		d = 1
	}
	return math.Exp(-d * d * mu / 2)
}

// HoeffdingMGF returns E[exp(t*Bin(m, half))] for p = 1/2, i.e.
// ((1+e^t)/2)^m. It is the building block of the pessimistic estimators
// used to derandomize the uniform splitting algorithm.
func HoeffdingMGF(m int, t float64) float64 {
	return math.Pow((1+math.Exp(t))/2, float64(m))
}

// Log2 returns log base 2 of x; the paper writes log x for log2 x.
func Log2(x float64) float64 { return math.Log2(x) }

// CeilLog2 returns ceil(log2(n)) for n >= 1, and 0 for n <= 1.
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}

// FloorLog2 returns floor(log2(n)) for n >= 1, and 0 for n < 1.
func FloorLog2(n int) int {
	if n < 1 {
		return 0
	}
	k := -1
	for v := n; v > 0; v >>= 1 {
		k++
	}
	return k
}

// SmallestPrimeAtLeast returns the smallest prime >= n (n >= 2); it is used
// by Linial's coloring construction over GF(q).
func SmallestPrimeAtLeast(n int) int {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for ; ; n += 2 {
		if isPrime(n) {
			return n
		}
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}
