package prob

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42).Node(7)
	b := NewSource(42).Node(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams for same (seed,id) diverged at step %d", i)
		}
	}
}

func TestSourceIndependence(t *testing.T) {
	a := NewSource(42).Node(1)
	b := NewSource(42).Node(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for distinct ids collided %d times", same)
	}
}

func TestNodeStreamsMatchNode(t *testing.T) {
	ids := []int{0, 1, 7, 5, 1 << 20, -3}
	s := NewSource(42)
	bulk := s.NodeStreams(ids)
	if len(bulk) != len(ids) {
		t.Fatalf("got %d streams for %d ids", len(bulk), len(ids))
	}
	for i, id := range ids {
		one := s.Node(id)
		for step := 0; step < 100; step++ {
			if got, want := bulk[i].Uint64(), one.Uint64(); got != want {
				t.Fatalf("id %d: bulk stream diverged from Node at step %d: %x vs %x", id, step, got, want)
			}
		}
	}
	if got := s.NodeStreams(nil); len(got) != 0 {
		t.Errorf("empty id list should yield no streams")
	}
}

func TestForkChangesStream(t *testing.T) {
	s := NewSource(1)
	if s.Fork(1).Node(0).Uint64() == s.Fork(2).Node(0).Uint64() {
		t.Fatal("forked sources should differ")
	}
	if s.Fork(3).Seed() == s.Seed() {
		t.Fatal("fork should change the seed")
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{0, 0.5}, {1, 0.3}, {10, 0.5}, {100, 0.25}, {1000, 0.01}, {500, 0.99}} {
		pmf := BinomPMF(tc.n, tc.p)
		var sum float64
		for _, v := range pmf {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("BinomPMF(%d,%v) sums to %v", tc.n, tc.p, sum)
		}
	}
}

func TestBinomPMFDegenerate(t *testing.T) {
	pmf := BinomPMF(5, 0)
	if pmf[0] != 1 {
		t.Errorf("p=0 should put all mass at 0, got %v", pmf)
	}
	pmf = BinomPMF(5, 1)
	if pmf[5] != 1 {
		t.Errorf("p=1 should put all mass at n, got %v", pmf)
	}
	if BinomPMF(-1, 0.5) != nil {
		t.Error("negative n should yield nil")
	}
}

func TestBinomTails(t *testing.T) {
	// Bin(4, 1/2): Pr[X >= 2] = 11/16, Pr[X <= 1] = 5/16.
	if got := BinomTailGE(4, 0.5, 2); math.Abs(got-11.0/16) > 1e-12 {
		t.Errorf("BinomTailGE(4,.5,2) = %v, want 11/16", got)
	}
	if got := BinomTailLE(4, 0.5, 1); math.Abs(got-5.0/16) > 1e-12 {
		t.Errorf("BinomTailLE(4,.5,1) = %v, want 5/16", got)
	}
	if BinomTailGE(10, 0.5, 0) != 1 || BinomTailGE(10, 0.5, 11) != 0 {
		t.Error("tail boundary cases wrong")
	}
	if BinomTailLE(10, 0.5, 10) != 1 || BinomTailLE(10, 0.5, -1) != 0 {
		t.Error("tail boundary cases wrong")
	}
}

func TestTailsComplementary(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		p := 0.37
		ge := BinomTailGE(n, p, k+1)
		le := BinomTailLE(n, p, k)
		return math.Abs(ge+le-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChernoffBoundsAreBounds(t *testing.T) {
	// The Chernoff bound must upper-bound the exact binomial tail.
	n, p := 200, 0.5
	mu := float64(n) * p
	for _, d := range []float64{0.1, 0.2, 0.5, 1.0} {
		k := int(math.Ceil((1 + d) * mu))
		exact := BinomTailGE(n, p, k)
		bound := ChernoffUpper(mu, d)
		if exact > bound+1e-12 {
			t.Errorf("ChernoffUpper(mu=%v,d=%v)=%v < exact %v", mu, d, bound, exact)
		}
		k = int(math.Floor((1 - d) * mu))
		exact = BinomTailLE(n, p, k)
		bound = ChernoffLower(mu, d)
		if exact > bound+1e-12 {
			t.Errorf("ChernoffLower(mu=%v,d=%v)=%v < exact %v", mu, d, bound, exact)
		}
	}
	if ChernoffUpper(10, 0) != 1 || ChernoffLower(10, -1) != 1 {
		t.Error("non-positive deviation should give trivial bound 1")
	}
}

func TestHoeffdingMGF(t *testing.T) {
	// E[e^{tX}] for X ~ Bin(m, 1/2) equals ((1+e^t)/2)^m; check m=1 directly.
	t1 := 0.7
	want := (1 + math.Exp(t1)) / 2
	if got := HoeffdingMGF(1, t1); math.Abs(got-want) > 1e-12 {
		t.Errorf("HoeffdingMGF(1,%v) = %v, want %v", t1, got, want)
	}
	if got := HoeffdingMGF(0, t1); got != 1 {
		t.Errorf("HoeffdingMGF(0) = %v, want 1", got)
	}
}

func TestLogHelpers(t *testing.T) {
	cases := []struct{ n, ceil, floor int }{
		{1, 0, 0}, {2, 1, 1}, {3, 2, 1}, {4, 2, 2}, {5, 3, 2},
		{1024, 10, 10}, {1025, 11, 10},
	}
	for _, c := range cases {
		if got := CeilLog2(c.n); got != c.ceil {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.n, got, c.ceil)
		}
		if got := FloorLog2(c.n); got != c.floor {
			t.Errorf("FloorLog2(%d) = %d, want %d", c.n, got, c.floor)
		}
	}
	if CeilLog2(0) != 0 || FloorLog2(0) != 0 {
		t.Error("log of 0 should clamp to 0")
	}
}

func TestSmallestPrimeAtLeast(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {14, 17}, {100, 101}, {1000, 1009},
	}
	for _, c := range cases {
		if got := SmallestPrimeAtLeast(c.n); got != c.want {
			t.Errorf("SmallestPrimeAtLeast(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPrimeProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%5000) + 2
		p := SmallestPrimeAtLeast(n)
		if p < n {
			return false
		}
		// p must be prime and every number in [n, p) composite.
		if !isPrime(p) {
			return false
		}
		for m := n; m < p; m++ {
			if isPrime(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
