// Package slocal implements the SLOCAL model of [GKM17] and the
// SLOCAL → LOCAL compilation of [GHK17a, Proposition 3.2]: an SLOCAL(t)
// algorithm processes nodes sequentially, each reading only its t-hop
// neighborhood; given a proper C-coloring of the t-th power of the conflict
// graph, nodes of equal color have disjoint read/write balls, so the whole
// order can be executed color class by color class in O(C·t) LOCAL rounds.
//
// The paper uses this pipeline in Lemma 2.1 (weak splitting via a coloring
// of B²), Theorem 3.2 (via the colors produced by multicolor splitting) and
// Theorem 5.2 (derandomized shattering via a coloring of B⁴).
package slocal

import (
	"fmt"
	"sort"

	"repro/internal/derand"
	"repro/internal/graph"
)

// Order returns the node processing order induced by a coloring: ascending
// by (color, index). Nodes of equal color commute when the coloring is
// proper on the t-th power of the conflict graph.
func Order(colors []int) []int {
	order := make([]int, len(colors))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := colors[order[a]], colors[order[b]]
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	return order
}

// Rounds is the LOCAL round cost of executing an SLOCAL(t) algorithm in
// color-class order with C classes: each class gathers its t-hop ball,
// computes, and writes back, costing 2t+1 rounds per class.
func Rounds(numColors, radius int) int {
	return numColors * (2*radius + 1)
}

// CompiledResult carries the labels produced by a compiled greedy run plus
// the LOCAL round accounting.
type CompiledResult struct {
	Labels []int
	Rounds int
}

// CompileGreedy executes a derandomization (a derand.Estimator greedily
// minimized) as an SLOCAL(radius) algorithm in the class order of the given
// coloring, and accounts the LOCAL rounds per Proposition 3.2. The conflict
// coloring must be proper on the radius-th power of the variables' conflict
// graph; the caller can enforce this with CheckConflictColoring.
func CompileGreedy(est derand.Estimator, colors []int, numColors, radius int) (*CompiledResult, error) {
	if len(colors) != est.Vars() {
		return nil, fmt.Errorf("slocal: %d colors for %d variables", len(colors), est.Vars())
	}
	labels, err := derand.Greedy(est, Order(colors))
	if err != nil {
		return nil, fmt.Errorf("slocal: %w", err)
	}
	return &CompiledResult{Labels: labels, Rounds: Rounds(numColors, radius)}, nil
}

// CheckConflictColoring verifies that the coloring is proper on the given
// conflict graph (typically B² or B⁴ restricted to the variable side), i.e.
// that same-color variables really have disjoint dependency balls and the
// parallel execution implied by the round accounting is sound.
func CheckConflictColoring(conflict *graph.Graph, colors []int) error {
	if len(colors) != conflict.N() {
		return fmt.Errorf("slocal: %d colors for %d conflict nodes", len(colors), conflict.N())
	}
	for v := 0; v < conflict.N(); v++ {
		for _, w := range conflict.Neighbors(v) {
			if colors[v] == colors[w] {
				return fmt.Errorf("slocal: conflict nodes %d and %d share color %d", v, w, colors[v])
			}
		}
	}
	return nil
}
