package slocal

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/derand"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/prob"
)

func TestOrderSortsByColorThenIndex(t *testing.T) {
	order := Order([]int{2, 0, 1, 0})
	want := []int{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRounds(t *testing.T) {
	if Rounds(10, 2) != 50 {
		t.Errorf("Rounds(10,2) = %d, want 50", Rounds(10, 2))
	}
	if Rounds(0, 2) != 0 {
		t.Error("zero classes cost zero rounds")
	}
}

func TestCheckConflictColoring(t *testing.T) {
	g := graph.PathGraph(3)
	if err := CheckConflictColoring(g, []int{0, 1, 0}); err != nil {
		t.Errorf("proper coloring rejected: %v", err)
	}
	if err := CheckConflictColoring(g, []int{0, 0, 1}); err == nil {
		t.Error("improper coloring accepted")
	}
	if err := CheckConflictColoring(g, []int{0, 1}); err == nil {
		t.Error("wrong length accepted")
	}
}

// TestCompilePipeline runs the full Lemma 2.1 pipeline at substrate level:
// color B² with the LOCAL coloring program, then execute the derandomized
// weak splitting in color-class order.
func TestCompilePipeline(t *testing.T) {
	rng := prob.NewSource(20).Rand()
	b, err := graph.RandomBipartiteLeftRegular(50, 70, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	conflict := b.VPower(1) // B² restricted to the variable side
	colRes, err := coloring.DeltaPlusOne(conflict, local.SequentialEngine{}, local.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckConflictColoring(conflict, colRes.Colors); err != nil {
		t.Fatal(err)
	}
	vtc := make([][]int32, b.NV())
	for v := range vtc {
		vtc[v] = b.NbrV(v)
	}
	degs := make([]int, b.NU())
	for u := range degs {
		degs[u] = b.DegU(u)
	}
	est := derand.NewWeakSplitEstimator(vtc, degs)
	res, err := CompileGreedy(est, colRes.Colors, colRes.Num, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != colRes.Num*5 {
		t.Errorf("round accounting %d, want %d", res.Rounds, colRes.Num*5)
	}
	for u := 0; u < b.NU(); u++ {
		var red, blue bool
		for _, v := range b.NbrU(u) {
			if res.Labels[v] == derand.Red {
				red = true
			} else {
				blue = true
			}
		}
		if !red || !blue {
			t.Fatalf("constraint %d not weakly split", u)
		}
	}
}

func TestCompileGreedyValidation(t *testing.T) {
	b, _ := graph.BipartiteFromEdges(1, 3, [][2]int{{0, 0}, {0, 1}, {0, 2}})
	vtc := make([][]int32, 3)
	for v := range vtc {
		vtc[v] = b.NbrV(v)
	}
	est := derand.NewWeakSplitEstimator(vtc, []int{3})
	if _, err := CompileGreedy(est, []int{0, 1}, 2, 2); err == nil {
		t.Error("mismatched coloring length should error")
	}
}
