// Native fuzz targets for the verifiers: each target decodes an instance
// and a candidate output from the fuzz input, cross-checks the verifier
// against an independent reference implementation, and then mutates valid
// outputs in ways that are invalid by construction — the verifier must
// reject every such corruption. Seed corpora for the known-good paths live
// in testdata/fuzz.
package check_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/graph"
)

// decodeBipartite derives a small bipartite instance from fuzz bytes:
// shape from the first three bytes, then one edge per byte pair.
func decodeBipartite(data []byte) (*graph.Bipartite, int, []byte) {
	if len(data) < 3 {
		return nil, 0, nil
	}
	nu := 1 + int(data[0])%12
	nv := 1 + int(data[1])%12
	minDeg := int(data[2]) % 4
	data = data[3:]
	b := graph.NewBipartite(nu, nv)
	nEdges := len(data) / 2
	if nEdges > 64 {
		nEdges = 64
	}
	for i := 0; i < nEdges; i++ {
		u := int(data[2*i]) % nu
		v := int(data[2*i+1]) % nv
		if err := b.AddEdge(u, v); err != nil {
			return nil, 0, nil
		}
	}
	b.Normalize()
	return b, minDeg, data[2*nEdges:]
}

// refWeakSplit is an independent oracle for Definition 1.1 written against
// the edge list only, so a CSR iteration bug in the verifier cannot hide.
func refWeakSplit(b *graph.Bipartite, colors []int, minDeg int) bool {
	if len(colors) != b.NV() {
		return false
	}
	for _, c := range colors {
		if c != check.Red && c != check.Blue {
			return false
		}
	}
	sawRed := make([]bool, b.NU())
	sawBlue := make([]bool, b.NU())
	for _, e := range b.Edges() {
		if colors[e[1]] == check.Red {
			sawRed[e[0]] = true
		} else {
			sawBlue[e[0]] = true
		}
	}
	for u := 0; u < b.NU(); u++ {
		if b.DegU(u) >= minDeg && (!sawRed[u] || !sawBlue[u]) {
			return false
		}
	}
	return true
}

func FuzzWeakSplit(f *testing.F) {
	// Known-good path: a perfect matching plus alternating colors.
	f.Add([]byte{4, 4, 1, 0, 0, 0, 1, 1, 0, 1, 1, 2, 2, 3, 3, 0xAA})
	f.Add([]byte{2, 6, 0, 0, 0, 0, 1, 1, 2, 1, 3, 0x55, 0x0F})
	f.Add([]byte{8, 3, 2, 5, 1, 5, 2, 6, 0, 6, 1, 7, 0, 7, 2, 0xF0, 0x3C})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, minDeg, rest := decodeBipartite(data)
		if b == nil {
			return
		}
		// Candidate coloring from the remaining bits.
		colors := make([]int, b.NV())
		for v := range colors {
			if len(rest) > 0 && rest[0]&(1<<(v%8)) != 0 {
				colors[v] = check.Blue
			} else {
				colors[v] = check.Red
			}
			if v%8 == 7 && len(rest) > 1 {
				rest = rest[1:]
			}
		}

		err := check.WeakSplit(b, colors, minDeg)
		if want := refWeakSplit(b, colors, minDeg); (err == nil) != want {
			t.Fatalf("verifier disagrees with reference: verifier err=%v, reference valid=%v\ncolors=%v", err, want, colors)
		}
		if err != nil {
			return
		}

		// The output is valid; every corruption below must be rejected.
		corrupt := func(name string, mutate func([]int) []int) {
			t.Helper()
			c := mutate(append([]int(nil), colors...))
			if check.WeakSplit(b, c, minDeg) == nil {
				t.Fatalf("corruption %q accepted: colors=%v", name, c)
			}
		}
		corrupt("out-of-range color", func(c []int) []int {
			c[int(data[0])%len(c)] = 2
			return c
		})
		corrupt("negative color", func(c []int) []int {
			c[int(data[1])%len(c)] = check.Uncolored
			return c
		})
		if b.NV() > 1 {
			corrupt("truncated colors", func(c []int) []int { return c[:len(c)-1] })
		}
		// Starve one checked constraint of a color class.
		for u := 0; u < b.NU(); u++ {
			if b.DegU(u) >= minDeg && b.DegU(u) >= 1 {
				corrupt("monochromatic constraint", func(c []int) []int {
					for _, v := range b.NbrU(u) {
						c[v] = check.Red
					}
					return c
				})
				break
			}
		}
	})
}

// FuzzTwoColoring drives ProperColoring with palette 2: a BFS layering is a
// proper 2-coloring exactly when the graph is bipartite, so the verifier's
// verdict on the BFS labels must match the odd-cycle check, and corruptions
// of an accepted coloring must always be rejected.
func FuzzTwoColoring(f *testing.F) {
	f.Add([]byte{6, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0}) // even cycle
	f.Add([]byte{5, 0, 1, 1, 2, 2, 0})                   // odd cycle
	f.Add([]byte{9, 0, 3, 0, 4, 1, 4, 2, 5, 3, 6, 4, 7}) // forest
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		n := 1 + int(data[0])%16
		data = data[1:]
		g := graph.NewGraph(n)
		nEdges := len(data) / 2
		if nEdges > 48 {
			nEdges = 48
		}
		for i := 0; i < nEdges; i++ {
			u := int(data[2*i]) % n
			v := int(data[2*i+1]) % n
			if u == v {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				t.Fatalf("in-range AddEdge failed: %v", err)
			}
		}
		g.Normalize()

		// BFS layering and an odd-cycle witness check, independent of the
		// verifier's own traversal.
		colors := make([]int, n)
		for i := range colors {
			colors[i] = -1
		}
		bipartite := true
		var queue []int
		for s := 0; s < n; s++ {
			if colors[s] >= 0 {
				continue
			}
			colors[s] = 0
			queue = append(queue[:0], s)
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, w := range g.Neighbors(v) {
					if colors[w] < 0 {
						colors[w] = 1 - colors[v]
						queue = append(queue, int(w))
					} else if colors[w] == colors[v] {
						bipartite = false
					}
				}
			}
		}

		err := check.ProperColoring(g, colors, 2)
		if (err == nil) != bipartite {
			t.Fatalf("verifier says err=%v but graph bipartite=%v", err, bipartite)
		}
		if err != nil {
			return
		}

		corrupt := func(name string, mutate func([]int) []int) {
			t.Helper()
			c := mutate(append([]int(nil), colors...))
			if check.ProperColoring(g, c, 2) == nil {
				t.Fatalf("corruption %q accepted: colors=%v", name, c)
			}
		}
		corrupt("out-of-range color", func(c []int) []int {
			c[n/2] = 2
			return c
		})
		corrupt("negative color", func(c []int) []int {
			c[0] = -1
			return c
		})
		if n > 1 {
			corrupt("truncated colors", func(c []int) []int { return c[:n-1] })
		}
		if g.M() > 0 {
			// Make some edge monochromatic.
			e := g.Edges()[0]
			corrupt("monochromatic edge", func(c []int) []int {
				c[e[0]] = c[e[1]]
				return c
			})
		}
	})
}
