package check

import (
	"testing"

	"repro/internal/graph"
)

func TestWeakSplitDegradation(t *testing.T) {
	// Two constraints: u0 sees {v0, v1}, u1 sees {v1, v2}.
	b := mustBipartite(t, 2, 3, [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 2}})

	d := WeakSplitDegradation(b, []int{Red, Blue, Red}, 0)
	if d.Outcome != OutcomeValid || d.Satisfied != 2 || d.SatisfiedFraction() != 1 {
		t.Errorf("valid splitting graded %+v", d)
	}

	// v2 crashed: u1 misses red only through the hole — starved, not
	// shattered; u0 is still satisfied.
	d = WeakSplitDegradation(b, []int{Red, Blue, Uncolored}, 0)
	if d.Outcome != OutcomeDegraded || d.Satisfied != 1 || d.Starved != 1 || d.Uncolored != 1 {
		t.Errorf("crash-hole splitting graded %+v", d)
	}

	// v1 crashed: u0 sees only red with a hole — starved.
	d = WeakSplitDegradation(b, []int{Red, Uncolored, Red}, 0)
	if d.Outcome != OutcomeDegraded || d.Starved != 2 || d.Satisfied != 0 {
		t.Errorf("starved splitting graded %+v", d)
	}

	// Monochromatic on fully-reported data: the invariant itself failed.
	d = WeakSplitDegradation(b, []int{Red, Red, Blue}, 0)
	if d.Outcome != OutcomeShattered || d.Violated != 1 || d.Satisfied != 1 {
		t.Errorf("monochromatic constraint graded %+v", d)
	}
	if d.Detail == "" {
		t.Error("shattered verdict carries no detail")
	}

	// Illegal values and length mismatches shatter immediately.
	if d := WeakSplitDegradation(b, []int{Red, 7, Blue}, 0); d.Outcome != OutcomeShattered {
		t.Errorf("illegal color graded %+v", d)
	}
	if d := WeakSplitDegradation(b, []int{Red, Blue}, 0); d.Outcome != OutcomeShattered {
		t.Errorf("length mismatch graded %+v", d)
	}

	// The degree threshold waives small constraints, as in WeakSplit.
	if d := WeakSplitDegradation(b, []int{Red, Red, Red}, 3); d.Outcome != OutcomeValid || d.Total != 0 {
		t.Errorf("threshold-waived splitting graded %+v", d)
	}
}

func TestProperColoringDegradation(t *testing.T) {
	g := graph.PathGraph(4) // edges 0-1, 1-2, 2-3

	d := ProperColoringDegradation(g, []int{0, 1, 0, 1}, 2)
	if d.Outcome != OutcomeValid || d.Satisfied != 3 {
		t.Errorf("proper coloring graded %+v", d)
	}

	// Node 2 crashed: both its edges starve, the rest holds.
	d = ProperColoringDegradation(g, []int{0, 1, Uncolored, 1}, 2)
	if d.Outcome != OutcomeDegraded || d.Starved != 2 || d.Satisfied != 1 || d.Uncolored != 1 {
		t.Errorf("crash-hole coloring graded %+v", d)
	}

	// Adjacent nodes committed to the same color: shattered.
	d = ProperColoringDegradation(g, []int{0, 0, 1, 0}, 2)
	if d.Outcome != OutcomeShattered || d.Violated != 1 {
		t.Errorf("conflicting coloring graded %+v", d)
	}

	if d := ProperColoringDegradation(g, []int{0, 5, 1, 0}, 2); d.Outcome != OutcomeShattered {
		t.Errorf("out-of-palette coloring graded %+v", d)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{OutcomeValid: "valid", OutcomeDegraded: "degraded", OutcomeShattered: "shattered", Outcome(9): "Outcome(9)"} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}
