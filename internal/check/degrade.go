package check

// This file contains the graceful-degradation classifiers used by the
// fault-injection experiments. Under message drops and crash-stop failures a
// pass/fail verifier is the wrong instrument: a run in which two constraints
// starve because their neighbors crashed is a different outcome from a run
// in which a fully-reporting constraint ends up monochromatic. The
// classifiers therefore grade an output into three bands:
//
//   - Valid: every node reported and every invariant holds — the fault load
//     was absorbed completely.
//   - Degraded: the output is consistent with what the surviving nodes
//     reported (no illegal values, no invariant violated on fully-reported
//     data), but crashes left holes: some nodes have no output, and some
//     constraints cannot be satisfied for that reason alone.
//   - Shattered: the output is wrong on its own terms — an illegal value, or
//     an invariant violated among nodes that all reported. Message loss has
//     corrupted the algorithm's logic, not merely its coverage.
//
// The distinction is exactly the one a production sweep service needs:
// Degraded quantifies acceptable data loss, Shattered flags runs whose
// results cannot be trusted at all.

import (
	"fmt"

	"repro/internal/graph"
)

// Outcome is the three-band grade of a faulty run's output.
type Outcome int

const (
	// OutcomeValid: full coverage, every invariant holds.
	OutcomeValid Outcome = iota
	// OutcomeDegraded: holes from crashed nodes, but consistent on the data
	// that survived.
	OutcomeDegraded
	// OutcomeShattered: an invariant is violated on fully-reported data (or a
	// value is illegal) — the output is untrustworthy.
	OutcomeShattered
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeValid:
		return "valid"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeShattered:
		return "shattered"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Degradation is the graded verdict on one faulty run: the outcome band plus
// the counts behind it, so sweeps can report rates instead of booleans.
type Degradation struct {
	Outcome   Outcome
	Total     int    // constraints (or edges) the invariant quantifies over
	Satisfied int    // of Total: invariant holds outright
	Starved   int    // of Total: unsatisfiable only because a neighbor is uncolored
	Violated  int    // of Total: violated despite every participant reporting
	Uncolored int    // output slots with no value (crashed or silenced nodes)
	Detail    string // first violation, empty unless Shattered
}

// SatisfiedFraction returns Satisfied/Total (1 when Total is 0): the
// validity-rate metric the fault sweep tabulates.
func (d Degradation) SatisfiedFraction() float64 {
	if d.Total == 0 {
		return 1
	}
	return float64(d.Satisfied) / float64(d.Total)
}

// grade folds the counts into the outcome band.
func (d *Degradation) grade() {
	switch {
	case d.Violated > 0:
		d.Outcome = OutcomeShattered
	case d.Starved > 0 || d.Uncolored > 0:
		d.Outcome = OutcomeDegraded
	default:
		d.Outcome = OutcomeValid
	}
}

// WeakSplitDegradation grades a weak splitting (Definition 1.1, with the
// usual degree threshold) produced under faults. Uncolored (-1) variables
// are crash holes; any other value outside {Red, Blue} shatters the run. A
// qualifying constraint is Satisfied when it sees both colors, Starved when
// it misses one but has an uncolored neighbor that could have supplied it,
// and Violated when all its neighbors reported and a color is still missing
// — the invariant failed on complete data.
func WeakSplitDegradation(b *graph.Bipartite, colors []int, minDeg int) Degradation {
	var d Degradation
	if len(colors) != b.NV() {
		d.Violated = 1
		d.Detail = fmt.Sprintf("%d colors for %d variable nodes", len(colors), b.NV())
		d.grade()
		return d
	}
	for v, c := range colors {
		switch c {
		case Red, Blue:
		case Uncolored:
			d.Uncolored++
		default:
			d.Violated++
			if d.Detail == "" {
				d.Detail = fmt.Sprintf("variable %d has illegal color %d", v, c)
			}
		}
	}
	if d.Violated > 0 {
		d.grade()
		return d
	}
	cu := b.CSRU()
	for u := 0; u < cu.N(); u++ {
		if cu.Deg(u) < minDeg {
			continue
		}
		d.Total++
		var red, blue, hole bool
		for _, v := range cu.Row(u) {
			switch colors[v] {
			case Red:
				red = true
			case Blue:
				blue = true
			default:
				hole = true
			}
		}
		switch {
		case red && blue:
			d.Satisfied++
		case hole:
			d.Starved++
		default:
			d.Violated++
			if d.Detail == "" {
				d.Detail = fmt.Sprintf("constraint %d (degree %d) fully reported but lacks a %s neighbor",
					u, cu.Deg(u), missing(red))
			}
		}
	}
	d.grade()
	return d
}

// ProperColoringDegradation grades a proper coloring produced under faults:
// Total counts edges with both endpoints colored plus edges starved by an
// uncolored endpoint; an edge whose reported endpoints share a color is
// Violated (shattered — adjacent nodes committed to conflicting outputs),
// colors outside [0, palette) ∪ {Uncolored} likewise.
func ProperColoringDegradation(g *graph.Graph, colors []int, palette int) Degradation {
	var d Degradation
	if len(colors) != g.N() {
		d.Violated = 1
		d.Detail = fmt.Sprintf("%d colors for %d nodes", len(colors), g.N())
		d.grade()
		return d
	}
	for v, c := range colors {
		switch {
		case c == Uncolored:
			d.Uncolored++
		case c < 0 || c >= palette:
			d.Violated++
			if d.Detail == "" {
				d.Detail = fmt.Sprintf("node %d color %d outside [0,%d)", v, c, palette)
			}
		}
	}
	if d.Violated > 0 {
		d.grade()
		return d
	}
	for v := 0; v < g.N(); v++ {
		for _, w32 := range g.Neighbors(v) {
			w := int(w32)
			if w <= v {
				continue
			}
			d.Total++
			switch {
			case colors[v] == Uncolored || colors[w] == Uncolored:
				d.Starved++
			case colors[v] == colors[w]:
				d.Violated++
				if d.Detail == "" {
					d.Detail = fmt.Sprintf("edge (%d,%d) endpoints share color %d", v, w, colors[v])
				}
			default:
				d.Satisfied++
			}
		}
	}
	d.grade()
	return d
}
